//! MD5-chained pseudo-random generator mirroring OpenSSL's `md_rand.c`.
//!
//! The paper's crypto-time breakdown has an "other" category that is mostly
//! random-number generation (`rand_pseudo_bytes` appears in handshake steps
//! 1 and 2 of Table 2). OpenSSL 0.9.7 generated randomness by chaining MD5
//! over an entropy pool; [`SslRng`] reproduces that structure — a pool of
//! [`POOL_LEN`] bytes, a rolling MD5 chaining value, and pool feedback on
//! every extraction — so the cost profile lands in the same place (MD5 block
//! operations).
//!
//! Determinism: seeding fully determines the output stream, which keeps every
//! experiment in this workspace reproducible.
//!
//! # Examples
//!
//! ```
//! use sslperf_rng::SslRng;
//!
//! let mut rng = SslRng::from_seed(b"experiment-42");
//! let a = rng.bytes(16);
//! let b = rng.bytes(16);
//! assert_ne!(a, b);
//!
//! let mut rng2 = SslRng::from_seed(b"experiment-42");
//! assert_eq!(a, rng2.bytes(16));
//! ```
//!
//! # Security
//!
//! This is a reproduction of a 2005-era design for performance study only;
//! it must not be used where cryptographic randomness matters.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use sslperf_bignum::EntropySource;
use sslperf_hashes::Md5;
use sslperf_profile::counters;

/// Size of the entropy pool, matching OpenSSL's `STATE_SIZE`.
pub const POOL_LEN: usize = 1023;

/// An MD5-chained PRNG with an entropy pool (OpenSSL `md_rand` style).
#[derive(Debug, Clone)]
pub struct SslRng {
    pool: [u8; POOL_LEN],
    md: [u8; 16],
    counter: u64,
    index: usize,
}

impl SslRng {
    /// Creates a generator seeded from the system clock and a process-unique
    /// counter. Use [`SslRng::from_seed`] for reproducible streams.
    #[must_use]
    pub fn new() -> Self {
        use std::sync::atomic::{AtomicU64, Ordering};
        static UNIQUE: AtomicU64 = AtomicU64::new(0);
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        let unique = UNIQUE.fetch_add(1, Ordering::Relaxed);
        let mut seed = Vec::with_capacity(16);
        seed.extend_from_slice(&nanos.to_le_bytes());
        seed.extend_from_slice(&unique.to_le_bytes());
        Self::from_seed(&seed)
    }

    /// Creates a generator whose entire output stream is determined by
    /// `seed`.
    #[must_use]
    pub fn from_seed(seed: &[u8]) -> Self {
        let mut rng = SslRng { pool: [0; POOL_LEN], md: [0; 16], counter: 0, index: 0 };
        rng.add_entropy(seed);
        rng
    }

    /// Mixes additional entropy into the pool (OpenSSL's `RAND_add`).
    pub fn add_entropy(&mut self, data: &[u8]) {
        // Chain MD5 over (md || data chunk || pool window), XOR-feeding the
        // digest back into the pool, exactly the md_rand mixing shape.
        let mut offset = 0usize;
        for chunk in data.chunks(16).chain(std::iter::once(&[][..])) {
            let mut h = Md5::new();
            h.update(&self.md);
            h.update(chunk);
            let window_end = (offset + 16).min(POOL_LEN);
            h.update(&self.pool[offset..window_end]);
            h.update(&self.counter.to_le_bytes());
            self.md = h.finalize();
            for (i, b) in self.md.iter().enumerate() {
                self.pool[(offset + i) % POOL_LEN] ^= b;
            }
            offset = (offset + 16) % POOL_LEN;
            self.counter = self.counter.wrapping_add(1);
        }
    }

    /// Fills `buf` with pseudo-random bytes (OpenSSL's
    /// `RAND_pseudo_bytes`, the function visible in the paper's Table 2).
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        counters::count("rand_pseudo_bytes", buf.len() as u64);
        for out in buf.chunks_mut(8) {
            // md = MD5(md || counter || pool window); emit half, feed back half.
            let mut h = Md5::new();
            h.update(&self.md);
            h.update(&self.counter.to_le_bytes());
            let window_end = (self.index + 16).min(POOL_LEN);
            h.update(&self.pool[self.index..window_end]);
            self.md = h.finalize();
            out.copy_from_slice(&self.md[..out.len()]);
            for i in 0..8 {
                self.pool[(self.index + i) % POOL_LEN] ^= self.md[8 + i];
            }
            self.index = (self.index + 8) % POOL_LEN;
            self.counter = self.counter.wrapping_add(1);
        }
    }

    /// Returns `n` pseudo-random bytes.
    #[must_use]
    pub fn bytes(&mut self, n: usize) -> Vec<u8> {
        let mut buf = vec![0u8; n];
        self.fill_bytes(&mut buf);
        buf
    }

    /// Returns a pseudo-random `u32`.
    #[must_use]
    pub fn next_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.fill_bytes(&mut b);
        u32::from_le_bytes(b)
    }

    /// Returns a pseudo-random `u64`.
    #[must_use]
    pub fn next_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.fill_bytes(&mut b);
        u64::from_le_bytes(b)
    }

    /// Returns a uniformly distributed value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    #[must_use]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        // Rejection sampling over the smallest covering bit mask (avoids
        // next_power_of_two, which overflows for bounds above 2⁶³).
        let mask = u64::MAX >> bound.leading_zeros();
        loop {
            let v = self.next_u64() & mask;
            if v < bound {
                return v;
            }
        }
    }
}

impl Default for SslRng {
    fn default() -> Self {
        Self::new()
    }
}

impl EntropySource for SslRng {
    fn fill(&mut self, buf: &mut [u8]) {
        self.fill_bytes(buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = SslRng::from_seed(b"seed");
        let mut b = SslRng::from_seed(b"seed");
        assert_eq!(a.bytes(100), b.bytes(100));
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SslRng::from_seed(b"seed-a");
        let mut b = SslRng::from_seed(b"seed-b");
        assert_ne!(a.bytes(32), b.bytes(32));
    }

    #[test]
    fn stream_does_not_repeat_quickly() {
        let mut rng = SslRng::from_seed(b"x");
        let first = rng.bytes(64);
        for _ in 0..10 {
            assert_ne!(rng.bytes(64), first);
        }
    }

    #[test]
    fn add_entropy_changes_stream() {
        let mut a = SslRng::from_seed(b"same");
        let mut b = SslRng::from_seed(b"same");
        b.add_entropy(b"more");
        assert_ne!(a.bytes(16), b.bytes(16));
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = SslRng::from_seed(b"bound");
        for bound in [1u64, 2, 3, 10, 1000, u64::MAX] {
            for _ in 0..50 {
                assert!(rng.below(bound) < bound);
            }
        }
    }

    #[test]
    fn fill_sizes_and_alignment() {
        let mut rng = SslRng::from_seed(b"sizes");
        for n in [0usize, 1, 7, 8, 9, 16, 1023, 1024, 4096] {
            assert_eq!(rng.bytes(n).len(), n);
        }
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        let mut rng = SslRng::from_seed(b"uniform");
        let data = rng.bytes(1 << 16);
        let mut hist = [0u32; 256];
        for b in &data {
            hist[*b as usize] += 1;
        }
        let expected = (data.len() / 256) as f64;
        for (value, &count) in hist.iter().enumerate() {
            let deviation = (f64::from(count) - expected).abs() / expected;
            assert!(deviation < 0.5, "byte {value} count {count} vs {expected}");
        }
    }

    #[test]
    fn counts_rand_pseudo_bytes() {
        let mut rng = SslRng::from_seed(b"c");
        let (_, snap) = sslperf_profile::counters::counted(|| rng.bytes(28));
        assert_eq!(snap.calls("rand_pseudo_bytes"), 1);
        assert_eq!(snap.units("rand_pseudo_bytes"), 28);
    }

    #[test]
    fn entropy_source_impl_used_by_bignum() {
        use sslperf_bignum::{generate_prime, Bn};
        let mut rng = SslRng::from_seed(b"prime");
        let p = generate_prime(64, &mut rng);
        assert_eq!(p.bit_len(), 64);
        assert!(p > Bn::one());
    }

    #[test]
    fn new_instances_differ() {
        let mut a = SslRng::new();
        let mut b = SslRng::new();
        // Unique counter guarantees different seeds even with equal clocks.
        assert_ne!(a.bytes(16), b.bytes(16));
    }
}
