//! Word-level kernels, named after their OpenSSL `bn_asm.c` counterparts.
//!
//! Every O(n²) bignum operation funnels through these loops, exactly as in
//! OpenSSL — which is why the paper's VTune profile of RSA (Table 8) is
//! dominated by `bn_mul_add_words` (47%) and `bn_sub_words` (23%). Each
//! kernel reports `(calls, words)` to [`sslperf_profile::counters`] under its
//! OpenSSL name, so the experiment harness can reconstruct the same
//! function-level attribution.

use sslperf_profile::counters;

/// `rp[i] += ap[i] * w` with carry propagation; returns the final carry.
///
/// This is the multiply–accumulate loop of Table 9 (`movl/mull/addl/adcl`):
/// the single hottest function in RSA decryption.
///
/// # Panics
///
/// Panics if `rp` is shorter than `ap`.
pub fn bn_mul_add_words(rp: &mut [u32], ap: &[u32], w: u32) -> u32 {
    counters::count("bn_mul_add_words", ap.len() as u64);
    assert!(rp.len() >= ap.len(), "result slice too short");
    let w = u64::from(w);
    let mut carry = 0u64;
    for (r, &a) in rp.iter_mut().zip(ap) {
        // mull: a*w ; addl/adcl: + r + carry — all fits in u64.
        let t = u64::from(a) * w + u64::from(*r) + carry;
        *r = t as u32;
        carry = t >> 32;
    }
    carry as u32
}

/// `rp[i] = ap[i] * w` with carry propagation; returns the final carry.
///
/// # Panics
///
/// Panics if `rp` is shorter than `ap`.
pub fn bn_mul_words(rp: &mut [u32], ap: &[u32], w: u32) -> u32 {
    counters::count("bn_mul_words", ap.len() as u64);
    assert!(rp.len() >= ap.len(), "result slice too short");
    let w = u64::from(w);
    let mut carry = 0u64;
    for (r, &a) in rp.iter_mut().zip(ap) {
        let t = u64::from(a) * w + carry;
        *r = t as u32;
        carry = t >> 32;
    }
    carry as u32
}

/// `rp[i] = ap[i] + bp[i]` with carry propagation; returns the final carry.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn bn_add_words(rp: &mut [u32], ap: &[u32], bp: &[u32]) -> u32 {
    counters::count("bn_add_words", ap.len() as u64);
    assert_eq!(ap.len(), bp.len(), "operand length mismatch");
    assert!(rp.len() >= ap.len(), "result slice too short");
    let mut carry = 0u64;
    for ((r, &a), &b) in rp.iter_mut().zip(ap).zip(bp) {
        let t = u64::from(a) + u64::from(b) + carry;
        *r = t as u32;
        carry = t >> 32;
    }
    carry as u32
}

/// `rp[i] = ap[i] - bp[i]` with borrow propagation; returns the final borrow
/// (1 if `b > a`).
///
/// The second-hottest RSA function in the paper's profile: Montgomery
/// reduction ends with a conditional subtract of the modulus.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn bn_sub_words(rp: &mut [u32], ap: &[u32], bp: &[u32]) -> u32 {
    counters::count("bn_sub_words", ap.len() as u64);
    assert_eq!(ap.len(), bp.len(), "operand length mismatch");
    assert!(rp.len() >= ap.len(), "result slice too short");
    let mut borrow = 0i64;
    for ((r, &a), &b) in rp.iter_mut().zip(ap).zip(bp) {
        let t = i64::from(a) - i64::from(b) - borrow;
        *r = t as u32;
        borrow = i64::from(t < 0);
    }
    borrow as u32
}

/// `rp[2i], rp[2i+1] = lo(ap[i]²), hi(ap[i]²)` — the diagonal terms of a
/// dedicated squaring, OpenSSL's `bn_sqr_words`.
///
/// [`Bn::sqr`](crate::Bn::sqr) combines this with the doubled off-diagonal
/// cross products (`bn_sqr_normal`), which is what makes squaring cheaper
/// than a generic `bn_mul_normal` of equal operands.
///
/// # Panics
///
/// Panics if `rp` is shorter than `2 * ap.len()`.
pub fn bn_sqr_words(rp: &mut [u32], ap: &[u32]) {
    counters::count("bn_sqr_words", ap.len() as u64);
    assert!(rp.len() >= 2 * ap.len(), "result slice too short");
    for (i, &a) in ap.iter().enumerate() {
        let t = u64::from(a) * u64::from(a);
        rp[2 * i] = t as u32;
        rp[2 * i + 1] = (t >> 32) as u32;
    }
}

/// Adds the single word `w` into `rp` in place; returns the final carry.
pub fn bn_add_word(rp: &mut [u32], w: u32) -> u32 {
    let mut carry = u64::from(w);
    for r in rp.iter_mut() {
        if carry == 0 {
            return 0;
        }
        let t = u64::from(*r) + carry;
        *r = t as u32;
        carry = t >> 32;
    }
    carry as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mul_add_basic() {
        let mut r = [1u32, 2];
        let carry = bn_mul_add_words(&mut r, &[3, 4], 5);
        // 1 + 3*5 = 16 ; 2 + 4*5 = 22
        assert_eq!(r, [16, 22]);
        assert_eq!(carry, 0);
    }

    #[test]
    fn mul_add_carry_chain() {
        let mut r = [u32::MAX, u32::MAX];
        let carry = bn_mul_add_words(&mut r, &[u32::MAX, u32::MAX], u32::MAX);
        // value = (2^64-1) + (2^32-1)^2 * (2^32+1)... verify numerically on u128.
        let expect = (u128::from(u64::MAX))
            + u128::from(u32::MAX) * u128::from(u32::MAX)
            + (u128::from(u32::MAX) * u128::from(u32::MAX)) * (1u128 << 32);
        let got = u128::from(r[0]) | (u128::from(r[1]) << 32) | (u128::from(carry) << 64);
        assert_eq!(got, expect);
    }

    #[test]
    fn mul_words_overwrites() {
        let mut r = [9u32, 9];
        let carry = bn_mul_words(&mut r, &[u32::MAX, 1], 2);
        assert_eq!(r, [u32::MAX - 1, 3]);
        assert_eq!(carry, 0);
    }

    #[test]
    fn add_words_carry() {
        let mut r = [0u32; 2];
        let carry = bn_add_words(&mut r, &[u32::MAX, u32::MAX], &[1, 0]);
        assert_eq!(r, [0, 0]);
        assert_eq!(carry, 1);
    }

    #[test]
    fn sub_words_borrow() {
        let mut r = [0u32; 2];
        let borrow = bn_sub_words(&mut r, &[0, 1], &[1, 0]);
        assert_eq!(r, [u32::MAX, 0]);
        assert_eq!(borrow, 0);
        let borrow = bn_sub_words(&mut r, &[0, 0], &[1, 0]);
        assert_eq!(r, [u32::MAX, u32::MAX]);
        assert_eq!(borrow, 1);
    }

    #[test]
    fn sqr_words_diagonal() {
        let mut r = [0u32; 6];
        bn_sqr_words(&mut r, &[3, u32::MAX, 0x1_0000]);
        assert_eq!(r[0..2], [9, 0]);
        // (2^32 - 1)^2 = 2^64 - 2^33 + 1
        assert_eq!(r[2..4], [1, u32::MAX - 1]);
        // (2^16)^2 = 2^32
        assert_eq!(r[4..6], [0, 1]);
    }

    #[test]
    fn add_word_ripples() {
        let mut r = [u32::MAX, u32::MAX, 5];
        let carry = bn_add_word(&mut r, 1);
        assert_eq!(r, [0, 0, 6]);
        assert_eq!(carry, 0);
        let mut all_max = [u32::MAX];
        assert_eq!(bn_add_word(&mut all_max, 1), 1);
    }

    #[test]
    fn kernels_report_counters() {
        use sslperf_profile::counters;
        let (_, snap) = counters::counted(|| {
            let mut r = [0u32; 8];
            let _ = bn_mul_add_words(&mut r, &[1; 8], 2);
            let _ = bn_sub_words(&mut r.clone(), &r, &r);
        });
        assert_eq!(snap.calls("bn_mul_add_words"), 1);
        assert_eq!(snap.units("bn_mul_add_words"), 8);
        assert_eq!(snap.units("bn_sub_words"), 8);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let mut r = [0u32; 2];
        let _ = bn_add_words(&mut r, &[1, 2], &[3]);
    }
}
