//! Probabilistic primality testing and prime generation for RSA keys.

use crate::{Bn, MontCtx};

/// A source of random bytes for key and prime generation.
///
/// `sslperf-rng` provides the production implementation (an MD5-based PRNG
/// mirroring OpenSSL's `md_rand`); tests use small counter-based fillers.
pub trait EntropySource {
    /// Fills `buf` with random bytes.
    fn fill(&mut self, buf: &mut [u8]);

    /// Returns a uniformly distributed value with exactly `bits` significant
    /// bits (the top bit is forced to 1).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero.
    fn next_bn_bits(&mut self, bits: usize) -> Bn
    where
        Self: Sized,
    {
        assert!(bits > 0, "cannot draw a zero-bit number");
        let nbytes = bits.div_ceil(8);
        let mut buf = vec![0u8; nbytes];
        self.fill(&mut buf);
        // Mask excess top bits, then force the top bit on.
        let excess = nbytes * 8 - bits;
        buf[0] &= 0xffu8 >> excess;
        buf[0] |= 1 << (7 - excess);
        Bn::from_bytes_be(&buf)
    }

    /// Returns a uniformly distributed value in `[0, bound)` by rejection
    /// sampling.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    fn next_bn_below(&mut self, bound: &Bn) -> Bn
    where
        Self: Sized,
    {
        assert!(!bound.is_zero(), "empty range");
        let bits = bound.bit_len();
        let nbytes = bits.div_ceil(8);
        let excess = nbytes * 8 - bits;
        loop {
            let mut buf = vec![0u8; nbytes];
            self.fill(&mut buf);
            buf[0] &= 0xffu8 >> excess;
            let candidate = Bn::from_bytes_be(&buf);
            if &candidate < bound {
                return candidate;
            }
        }
    }
}

impl<T: EntropySource + ?Sized> EntropySource for &mut T {
    fn fill(&mut self, buf: &mut [u8]) {
        (**self).fill(buf);
    }
}

/// First primes used for trial division before Miller–Rabin.
fn small_primes() -> &'static [u32] {
    use std::sync::OnceLock;
    static PRIMES: OnceLock<Vec<u32>> = OnceLock::new();
    PRIMES.get_or_init(|| {
        let limit = 2000usize;
        let mut sieve = vec![true; limit];
        let mut primes = Vec::new();
        for i in 2..limit {
            if sieve[i] {
                primes.push(i as u32);
                let mut j = i * i;
                while j < limit {
                    sieve[j] = false;
                    j += i;
                }
            }
        }
        primes
    })
}

/// Miller–Rabin primality test with `rounds` random bases plus base 2.
///
/// Composite inputs are rejected with probability ≥ `1 - 4^-rounds`.
///
/// # Examples
///
/// ```
/// use sslperf_bignum::{is_probable_prime, Bn, EntropySource};
///
/// struct Counter(u8);
/// impl EntropySource for Counter {
///     fn fill(&mut self, buf: &mut [u8]) {
///         for b in buf { self.0 = self.0.wrapping_add(0x9d); *b = self.0; }
///     }
/// }
///
/// let mut rng = Counter(1);
/// assert!(is_probable_prime(&Bn::from_u64(65537), 16, &mut rng));
/// assert!(!is_probable_prime(&Bn::from_u64(65536), 16, &mut rng));
/// ```
pub fn is_probable_prime<R: EntropySource>(n: &Bn, rounds: u32, rng: &mut R) -> bool {
    if n.is_zero() || n.is_one() {
        return false;
    }
    if let Some(small) = n.to_u64() {
        if small < 4 {
            return small == 2 || small == 3;
        }
    }
    if !n.is_odd() {
        return false;
    }
    for &p in small_primes() {
        let p_bn = Bn::from_u64(u64::from(p));
        if &p_bn >= n {
            return true; // n itself was reached by the sieve
        }
        if n.mod_word(p) == 0 {
            return false;
        }
    }

    // n - 1 = d * 2^s with d odd.
    let n_minus_1 = n.sub(&Bn::one());
    let s = trailing_zeros(&n_minus_1);
    let d = n_minus_1.shr(s);
    let ctx = MontCtx::new(n).expect("odd modulus checked above");

    let two = Bn::from_u64(2);
    let witness = |a: &Bn| -> bool {
        // returns true when `a` proves n composite
        let mut x = ctx.mod_exp(a, &d);
        if x.is_one() || x == n_minus_1 {
            return false;
        }
        for _ in 0..s.saturating_sub(1) {
            x = x.mod_mul(&x, n);
            if x == n_minus_1 {
                return false;
            }
        }
        true
    };

    if witness(&two) {
        return false;
    }
    for _ in 0..rounds {
        // Random base in [2, n-2].
        let span = n.sub(&Bn::from_u64(3));
        let a = rng.next_bn_below(&span).add(&two);
        if witness(&a) {
            return false;
        }
    }
    true
}

fn trailing_zeros(n: &Bn) -> usize {
    debug_assert!(!n.is_zero());
    let mut count = 0;
    for (i, &w) in n.as_words().iter().enumerate() {
        if w == 0 {
            count = (i + 1) * 32;
        } else {
            return i * 32 + w.trailing_zeros() as usize;
        }
    }
    count
}

/// Generates a random probable prime with exactly `bits` significant bits.
///
/// The two top bits are forced to 1 (so the product of two such primes has
/// exactly `2*bits` bits, as RSA key generation requires) and the low bit is
/// forced to 1.
///
/// # Panics
///
/// Panics if `bits < 8`.
pub fn generate_prime<R: EntropySource>(bits: usize, rng: &mut R) -> Bn {
    assert!(bits >= 8, "prime must have at least 8 bits");
    loop {
        let mut bytes = rng.next_bn_bits(bits).to_bytes_be();
        let excess = bytes.len() * 8 - bits;
        bytes[0] |= (0b1100_0000u8) >> excess;
        let last = bytes.len() - 1;
        bytes[last] |= 1;
        let candidate = Bn::from_bytes_be(&bytes);
        if is_probable_prime(&candidate, 16, rng) {
            return candidate;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// xorshift64* for test entropy — deterministic, independent of the
    /// production RNG crate.
    pub(crate) struct XorShift(pub u64);

    impl EntropySource for XorShift {
        fn fill(&mut self, buf: &mut [u8]) {
            for chunk in buf.chunks_mut(8) {
                let mut x = self.0;
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                self.0 = x;
                let bytes = x.wrapping_mul(0x2545_f491_4f6c_dd1d).to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }

    #[test]
    fn known_primes_pass() {
        let mut rng = XorShift(42);
        for p in [2u64, 3, 5, 7, 65537, 2_147_483_647, 0xffff_ffff_ffff_ffc5] {
            assert!(is_probable_prime(&Bn::from_u64(p), 16, &mut rng), "{p} is prime");
        }
        // A 128-bit prime: 2^127 - 1 (Mersenne).
        let m127 = Bn::one().shl(127).sub(&Bn::one());
        assert!(is_probable_prime(&m127, 16, &mut rng));
    }

    #[test]
    fn known_composites_fail() {
        let mut rng = XorShift(7);
        for c in [0u64, 1, 4, 9, 91, 561 /* Carmichael */, 65535, 1 << 40] {
            assert!(!is_probable_prime(&Bn::from_u64(c), 16, &mut rng), "{c} is composite");
        }
        // Carmichael number 41041 = 7*11*13*41 fools Fermat, not Miller–Rabin.
        assert!(!is_probable_prime(&Bn::from_u64(41041), 16, &mut rng));
        // Product of two 64-bit primes.
        let p = Bn::from_u64(0xffff_ffff_ffff_ffc5);
        assert!(!is_probable_prime(&p.mul(&p), 16, &mut rng));
    }

    #[test]
    fn trailing_zero_counting() {
        assert_eq!(trailing_zeros(&Bn::from_u64(1)), 0);
        assert_eq!(trailing_zeros(&Bn::from_u64(8)), 3);
        assert_eq!(trailing_zeros(&Bn::one().shl(77)), 77);
    }

    #[test]
    fn generated_primes_have_requested_shape() {
        let mut rng = XorShift(1234);
        for bits in [32usize, 64, 128] {
            let p = generate_prime(bits, &mut rng);
            assert_eq!(p.bit_len(), bits, "exactly {bits} bits");
            assert!(p.bit(bits - 2), "second-highest bit forced");
            assert!(p.is_odd());
            assert!(is_probable_prime(&p, 16, &mut rng));
        }
    }

    #[test]
    fn next_bn_below_is_in_range() {
        let mut rng = XorShift(5);
        let bound = Bn::from_u64(1000);
        for _ in 0..100 {
            let v = rng.next_bn_below(&bound);
            assert!(v < bound);
        }
    }

    #[test]
    fn next_bn_bits_exact_width() {
        let mut rng = XorShift(9);
        for bits in [1usize, 7, 8, 9, 31, 32, 33, 100] {
            assert_eq!(rng.next_bn_bits(bits).bit_len(), bits, "bits {bits}");
        }
    }

    #[test]
    fn entropy_source_works_through_mut_ref() {
        fn takes_source<R: EntropySource>(rng: &mut R) -> Bn {
            rng.next_bn_bits(16)
        }
        let mut rng = XorShift(11);
        let _ = takes_source(&mut &mut rng);
    }
}
