//! Division and modular reduction (Knuth TAOCP vol. 2, algorithm D).

use crate::{Bn, BnError};
use sslperf_profile::counters;

impl Bn {
    /// Returns `(self / divisor, self % divisor)`.
    ///
    /// Uses schoolbook long division with the standard two-word quotient-digit
    /// estimate (Knuth algorithm D), the same structure as OpenSSL's
    /// `BN_div`.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero; use [`Bn::checked_div_rem`] for a
    /// fallible variant.
    #[must_use]
    pub fn div_rem(&self, divisor: &Bn) -> (Bn, Bn) {
        self.checked_div_rem(divisor).expect("division by zero")
    }

    /// Returns `(self / divisor, self % divisor)`, or an error for a zero
    /// divisor.
    ///
    /// # Errors
    ///
    /// Returns [`BnError::DivideByZero`] when `divisor` is zero.
    pub fn checked_div_rem(&self, divisor: &Bn) -> Result<(Bn, Bn), BnError> {
        if divisor.is_zero() {
            return Err(BnError::DivideByZero);
        }
        counters::count("BN_div", self.words.len() as u64);
        if self < divisor {
            return Ok((Bn::zero(), self.clone()));
        }
        if divisor.words.len() == 1 {
            let (q, r) = self.div_rem_word(divisor.words[0]);
            return Ok((q, Bn::from_u64(u64::from(r))));
        }

        // Normalize: shift both so the divisor's top bit is set.
        let shift = divisor.words.last().expect("nonzero divisor").leading_zeros() as usize;
        let u = self.shl(shift);
        let v = divisor.shl(shift);
        let n = v.words.len();
        let mut u_words = u.words.clone();
        u_words.push(0); // room for the virtual high word
        let m = u_words.len() - 1 - n; // number of quotient digits - 1

        let v_hi = u64::from(v.words[n - 1]);
        let v_lo = u64::from(v.words[n - 2]);
        let mut q_words = vec![0u32; m + 1];

        for j in (0..=m).rev() {
            // Estimate qhat from the top two dividend words and the top
            // divisor word, then refine with the third word.
            let numerator = (u64::from(u_words[j + n]) << 32) | u64::from(u_words[j + n - 1]);
            let mut qhat = numerator / v_hi;
            let mut rhat = numerator % v_hi;
            if qhat > u64::from(u32::MAX) {
                qhat = u64::from(u32::MAX);
                rhat = numerator - qhat * v_hi;
            }
            while rhat <= u64::from(u32::MAX)
                && qhat * v_lo > ((rhat << 32) | u64::from(u_words[j + n - 2]))
            {
                qhat -= 1;
                rhat += v_hi;
            }

            // Multiply-subtract: u[j..j+n+1] -= qhat * v.
            let mut borrow = 0i64;
            let mut carry = 0u64;
            for i in 0..n {
                let p = qhat * u64::from(v.words[i]) + carry;
                carry = p >> 32;
                let t = i64::from(u_words[j + i]) - i64::from(p as u32) - borrow;
                u_words[j + i] = t as u32;
                borrow = i64::from(t < 0);
            }
            let t = i64::from(u_words[j + n]) - carry as i64 - borrow;
            u_words[j + n] = t as u32;

            if t < 0 {
                // qhat was one too large: add the divisor back.
                qhat -= 1;
                let mut c = 0u64;
                for i in 0..n {
                    let s = u64::from(u_words[j + i]) + u64::from(v.words[i]) + c;
                    u_words[j + i] = s as u32;
                    c = s >> 32;
                }
                u_words[j + n] = (u64::from(u_words[j + n]) + c) as u32;
            }
            q_words[j] = qhat as u32;
        }

        let mut q = Bn { words: q_words };
        q.normalize();
        let mut r = Bn { words: u_words[..n].to_vec() };
        r.normalize();
        Ok((q, r.shr(shift)))
    }

    /// Divides by a single word; returns `(quotient, remainder)`.
    ///
    /// # Panics
    ///
    /// Panics if `w` is zero.
    #[must_use]
    pub fn div_rem_word(&self, w: u32) -> (Bn, u32) {
        assert!(w != 0, "division by zero");
        let w64 = u64::from(w);
        let mut q_words = vec![0u32; self.words.len()];
        let mut rem = 0u64;
        for i in (0..self.words.len()).rev() {
            let cur = (rem << 32) | u64::from(self.words[i]);
            q_words[i] = (cur / w64) as u32;
            rem = cur % w64;
        }
        let mut q = Bn { words: q_words };
        q.normalize();
        (q, rem as u32)
    }

    /// Returns `self % w` for a single word `w`.
    ///
    /// Used for trial division during prime generation.
    ///
    /// # Panics
    ///
    /// Panics if `w` is zero.
    #[must_use]
    pub fn mod_word(&self, w: u32) -> u32 {
        self.div_rem_word(w).1
    }

    /// Returns `self % m`.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    #[must_use]
    pub fn mod_op(&self, m: &Bn) -> Bn {
        self.div_rem(m).1
    }

    /// Returns `self * other % m`.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    #[must_use]
    pub fn mod_mul(&self, other: &Bn, m: &Bn) -> Bn {
        self.mul(other).mod_op(m)
    }

    /// Returns `(self + other) % m`.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    #[must_use]
    pub fn mod_add(&self, other: &Bn, m: &Bn) -> Bn {
        self.add(other).mod_op(m)
    }

    /// Returns `(self - other) % m`, treating the operands as residues
    /// (adds `m` first if `other > self`).
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero or if `other`, reduced, still exceeds
    /// `self + m` (callers pass residues `< m`).
    #[must_use]
    pub fn mod_sub(&self, other: &Bn, m: &Bn) -> Bn {
        let a = self.mod_op(m);
        let b = other.mod_op(m);
        if a >= b {
            a.sub(&b)
        } else {
            a.add(m).sub(&b)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bn(s: &str) -> Bn {
        Bn::from_hex(s).unwrap()
    }

    #[test]
    fn divide_by_zero_is_error() {
        assert_eq!(Bn::one().checked_div_rem(&Bn::zero()), Err(BnError::DivideByZero));
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_rem_zero_panics() {
        let _ = Bn::one().div_rem(&Bn::zero());
    }

    #[test]
    fn small_division() {
        let (q, r) = Bn::from_u64(100).div_rem(&Bn::from_u64(7));
        assert_eq!(q, Bn::from_u64(14));
        assert_eq!(r, Bn::from_u64(2));
    }

    #[test]
    fn dividend_smaller_than_divisor() {
        let (q, r) = Bn::from_u64(3).div_rem(&Bn::from_u64(10));
        assert_eq!(q, Bn::zero());
        assert_eq!(r, Bn::from_u64(3));
    }

    #[test]
    fn multiword_division_reconstructs() {
        let a = bn("123456789abcdef0fedcba9876543210deadbeefcafebabe");
        let b = bn("fedcba98765432100f");
        let (q, r) = a.div_rem(&b);
        assert_eq!(q.mul(&b).add(&r), a);
        assert!(r < b);
    }

    #[test]
    fn division_exercising_addback() {
        // Constructed so qhat overestimates: top words of dividend equal
        // top word of divisor (classic Knuth D add-back trigger family).
        let b = bn("80000000000000000000000000000001");
        let a = b.mul(&bn("ffffffffffffffffffffffffffffffff")).add(&b.sub(&Bn::one()));
        let (q, r) = a.div_rem(&b);
        assert_eq!(q.mul(&b).add(&r), a);
        assert!(r < b);
        assert_eq!(q, bn("ffffffffffffffffffffffffffffffff"));
    }

    #[test]
    fn word_division() {
        let a = bn("123456789abcdef01234");
        let (q, r) = a.div_rem_word(97);
        assert_eq!(q.mul(&Bn::from_u64(97)).add(&Bn::from_u64(u64::from(r))), a);
        assert_eq!(a.mod_word(97), r);
    }

    #[test]
    fn exact_division_no_remainder() {
        let b = bn("1000000007");
        let a = b.mul(&bn("deadbeefdeadbeefdeadbeef"));
        let (q, r) = a.div_rem(&b);
        assert!(r.is_zero());
        assert_eq!(q, bn("deadbeefdeadbeefdeadbeef"));
    }

    #[test]
    fn mod_helpers() {
        let m = Bn::from_u64(1000);
        assert_eq!(Bn::from_u64(1234).mod_op(&m), Bn::from_u64(234));
        assert_eq!(Bn::from_u64(999).mod_add(&Bn::from_u64(2), &m), Bn::from_u64(1));
        assert_eq!(Bn::from_u64(5).mod_sub(&Bn::from_u64(7), &m), Bn::from_u64(998));
        assert_eq!(Bn::from_u64(30).mod_mul(&Bn::from_u64(40), &m), Bn::from_u64(200));
    }

    #[test]
    fn divisor_one() {
        let a = bn("deadbeef");
        let (q, r) = a.div_rem(&Bn::one());
        assert_eq!(q, a);
        assert!(r.is_zero());
    }

    #[test]
    fn zero_dividend() {
        let (q, r) = Bn::zero().div_rem(&bn("1234"));
        assert!(q.is_zero());
        assert!(r.is_zero());
    }
}
