//! Greatest common divisor and modular inverse (extended Euclid).

use crate::{Bn, BnError};

/// The result of the extended Euclidean algorithm on `(a, b)`:
/// `a*x - b*y = ±gcd`, tracked with explicit signs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExtendedGcd {
    /// `gcd(a, b)`.
    pub gcd: Bn,
    /// Coefficient of `a` reduced into `[0, b)` when used as an inverse.
    pub inv: Option<Bn>,
}

impl Bn {
    /// Returns `gcd(self, other)` by the Euclidean algorithm.
    #[must_use]
    pub fn gcd(&self, other: &Bn) -> Bn {
        let mut a = self.clone();
        let mut b = other.clone();
        while !b.is_zero() {
            let r = a.mod_op(&b);
            a = b;
            b = r;
        }
        a
    }

    /// Returns `self⁻¹ mod m`, if it exists.
    ///
    /// Implements the extended Euclidean algorithm with signed coefficient
    /// tracking, as OpenSSL's `BN_mod_inverse` does. Needed for RSA key
    /// generation (`d = e⁻¹ mod φ(N)`) and decryption blinding.
    ///
    /// # Errors
    ///
    /// Returns [`BnError::NoInverse`] if `gcd(self, m) != 1`, and
    /// [`BnError::DivideByZero`] if `m` is zero.
    pub fn mod_inverse(&self, m: &Bn) -> Result<Bn, BnError> {
        if m.is_zero() {
            return Err(BnError::DivideByZero);
        }
        if m.is_one() {
            return Err(BnError::NoInverse);
        }
        // Invariants: r0 = x0*a (mod m), r1 = x1*a (mod m), with x tracked as
        // (magnitude, negative?) pairs.
        let mut r0 = self.mod_op(m);
        let mut r1 = m.clone();
        let mut x0 = (Bn::one(), false);
        let mut x1 = (Bn::zero(), false);
        while !r1.is_zero() {
            let (q, r) = r0.div_rem(&r1);
            // x_next = x0 - q * x1 (signed)
            let qx1 = q.mul(&x1.0);
            let x_next = signed_sub(&x0, &(qx1, x1.1));
            r0 = r1;
            r1 = r;
            x0 = x1;
            x1 = x_next;
        }
        if !r0.is_one() {
            return Err(BnError::NoInverse);
        }
        let (mag, neg) = x0;
        let reduced = mag.mod_op(m);
        if neg && !reduced.is_zero() {
            Ok(m.sub(&reduced))
        } else {
            Ok(reduced)
        }
    }

    /// Runs the full extended GCD, returning the gcd and — when it is 1 —
    /// the modular inverse of `self` mod `other`.
    #[must_use]
    pub fn extended_gcd(&self, other: &Bn) -> ExtendedGcd {
        let gcd = self.gcd(other);
        let inv = if gcd.is_one() && !other.is_zero() && !other.is_one() {
            self.mod_inverse(other).ok()
        } else {
            None
        };
        ExtendedGcd { gcd, inv }
    }
}

/// Signed subtraction over (magnitude, negative?) pairs.
fn signed_sub(a: &(Bn, bool), b: &(Bn, bool)) -> (Bn, bool) {
    match (a.1, b.1) {
        // a - b with both non-negative
        (false, false) => {
            if a.0 >= b.0 {
                (a.0.sub(&b.0), false)
            } else {
                (b.0.sub(&a.0), true)
            }
        }
        // a - (-b) = a + b
        (false, true) => (a.0.add(&b.0), false),
        // (-a) - b = -(a + b)
        (true, false) => (a.0.add(&b.0), true),
        // (-a) - (-b) = b - a
        (true, true) => {
            if b.0 >= a.0 {
                (b.0.sub(&a.0), false)
            } else {
                (a.0.sub(&b.0), true)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bn(s: &str) -> Bn {
        Bn::from_hex(s).unwrap()
    }

    #[test]
    fn gcd_basic() {
        assert_eq!(Bn::from_u64(48).gcd(&Bn::from_u64(36)), Bn::from_u64(12));
        assert_eq!(Bn::from_u64(17).gcd(&Bn::from_u64(5)), Bn::one());
        assert_eq!(Bn::from_u64(0).gcd(&Bn::from_u64(9)), Bn::from_u64(9));
        assert_eq!(Bn::from_u64(9).gcd(&Bn::zero()), Bn::from_u64(9));
    }

    #[test]
    fn gcd_large() {
        let a = bn("deadbeefcafebabe12345678");
        let b = bn("fedcba9876543210");
        let g = a.gcd(&b);
        assert!(a.mod_op(&g).is_zero());
        assert!(b.mod_op(&g).is_zero());
    }

    #[test]
    fn inverse_small() {
        // 3 * 4 = 12 ≡ 1 (mod 11)
        assert_eq!(Bn::from_u64(3).mod_inverse(&Bn::from_u64(11)).unwrap(), Bn::from_u64(4));
        // 7⁻¹ mod 26 = 15
        assert_eq!(Bn::from_u64(7).mod_inverse(&Bn::from_u64(26)).unwrap(), Bn::from_u64(15));
    }

    #[test]
    fn inverse_verifies_for_large_values() {
        let m = bn("fffffffffffffffffffffffffffffffeffffffffffffffff"); // odd-ish modulus
        let a = bn("123456789abcdef0123456789abcdef012345");
        let inv = a.mod_inverse(&m).unwrap();
        assert_eq!(a.mod_mul(&inv, &m), Bn::one());
        assert!(inv < m);
    }

    #[test]
    fn inverse_of_rsa_style_exponent() {
        // e = 65537 mod a φ-like even modulus
        let phi = bn("c0ffee0ddba11d00dc0ffee0ddba11d00c");
        let e = Bn::from_u64(65537);
        if e.gcd(&phi).is_one() {
            let d = e.mod_inverse(&phi).unwrap();
            assert_eq!(e.mod_mul(&d, &phi), Bn::one());
        }
    }

    #[test]
    fn no_inverse_when_not_coprime() {
        assert_eq!(Bn::from_u64(6).mod_inverse(&Bn::from_u64(9)), Err(BnError::NoInverse));
        assert_eq!(Bn::from_u64(5).mod_inverse(&Bn::zero()), Err(BnError::DivideByZero));
        assert_eq!(Bn::from_u64(5).mod_inverse(&Bn::one()), Err(BnError::NoInverse));
        assert_eq!(Bn::zero().mod_inverse(&Bn::from_u64(7)), Err(BnError::NoInverse));
    }

    #[test]
    fn extended_gcd_reports_inverse() {
        let g = Bn::from_u64(3).extended_gcd(&Bn::from_u64(11));
        assert_eq!(g.gcd, Bn::one());
        assert_eq!(g.inv, Some(Bn::from_u64(4)));
        let g2 = Bn::from_u64(6).extended_gcd(&Bn::from_u64(9));
        assert_eq!(g2.gcd, Bn::from_u64(3));
        assert_eq!(g2.inv, None);
    }

    #[test]
    fn signed_sub_covers_sign_grid() {
        let one = (Bn::one(), false);
        let neg_one = (Bn::one(), true);
        let two = (Bn::from_u64(2), false);
        assert_eq!(signed_sub(&one, &two), (Bn::one(), true)); // 1-2 = -1
        assert_eq!(signed_sub(&two, &one), (Bn::one(), false)); // 2-1 = 1
        assert_eq!(signed_sub(&one, &neg_one), (Bn::from_u64(2), false)); // 1-(-1)=2
        assert_eq!(signed_sub(&neg_one, &one), (Bn::from_u64(2), true)); // -1-1=-2
        assert_eq!(signed_sub(&neg_one, &neg_one).0, Bn::zero()); // -1-(-1)=0
    }
}
