//! Montgomery multiplication and modular exponentiation.
//!
//! RSA's "computation" step (97–99% of decryption in the paper's Table 7) is
//! modular exponentiation. Like OpenSSL's `BN_mod_exp_mont`, the
//! implementation converts into Montgomery form once, then performs every
//! multiplication as *full product + Montgomery reduction*, where the
//! reduction is itself a loop of [`bn_mul_add_words`] calls followed by a
//! conditional [`bn_sub_words`] — reproducing the function mix of Table 8.
//!
//! [`bn_mul_add_words`]: crate::words::bn_mul_add_words
//! [`bn_sub_words`]: crate::words::bn_sub_words

use crate::words::{bn_mul_add_words, bn_sub_words};
use crate::{Bn, BnError};
use sslperf_profile::counters;

/// Precomputed context for arithmetic modulo an odd number `n`.
///
/// # Examples
///
/// ```
/// use sslperf_bignum::{Bn, MontCtx};
///
/// let n = Bn::from_u64(1_000_003);
/// let ctx = MontCtx::new(&n)?;
/// let r = ctx.mod_exp(&Bn::from_u64(2), &Bn::from_u64(20));
/// assert_eq!(r, Bn::from_u64((1 << 20) % 1_000_003));
/// # Ok::<(), sslperf_bignum::BnError>(())
/// ```
#[derive(Debug, Clone)]
pub struct MontCtx {
    n: Bn,
    /// `-n⁻¹ mod 2³²` — the per-word reduction multiplier.
    n0: u32,
    /// `R² mod n` with `R = 2^(32k)`, used to enter Montgomery form.
    rr: Bn,
    /// Word length of `n`.
    k: usize,
}

impl MontCtx {
    /// Builds a context for the odd modulus `n > 1`.
    ///
    /// # Errors
    ///
    /// Returns [`BnError::EvenModulus`] if `n` is even, zero or one.
    pub fn new(n: &Bn) -> Result<Self, BnError> {
        if !n.is_odd() || n.is_one() {
            return Err(BnError::EvenModulus);
        }
        counters::count("BN_CTX_start", 1);
        let k = n.word_len();
        // Newton iteration for the inverse of n mod 2^32: five doublings of
        // precision starting from the trivial inverse mod 2.
        let mut inv: u32 = 1;
        for _ in 0..5 {
            inv = inv.wrapping_mul(2u32.wrapping_sub(n.words[0].wrapping_mul(inv)));
        }
        debug_assert_eq!(n.words[0].wrapping_mul(inv), 1);
        let n0 = inv.wrapping_neg();
        let rr = Bn::one().shl(64 * k).mod_op(n);
        Ok(MontCtx { n: n.clone(), n0, rr, k })
    }

    /// The modulus this context reduces by.
    #[must_use]
    pub fn modulus(&self) -> &Bn {
        &self.n
    }

    /// Montgomery reduction of a double-width value: returns `t·R⁻¹ mod n`.
    ///
    /// This is OpenSSL's `BN_from_montgomery` (Table 8, ~9% of RSA).
    fn redc(&self, t: &mut Vec<u32>) -> Bn {
        counters::count("BN_from_montgomery", self.k as u64);
        t.resize(2 * self.k + 1, 0);
        for i in 0..self.k {
            let m = t[i].wrapping_mul(self.n0);
            let carry = bn_mul_add_words(&mut t[i..i + self.k], &self.n.words, m);
            // Ripple the carry into the words above the window.
            let mut c = u64::from(carry);
            let mut idx = i + self.k;
            while c != 0 {
                let s = u64::from(t[idx]) + c;
                t[idx] = s as u32;
                c = s >> 32;
                idx += 1;
            }
        }
        let mut u = Bn { words: t[self.k..].to_vec() };
        u.normalize();
        if u >= self.n {
            // Conditional final subtraction — the bn_sub_words hot spot.
            let minuend = u.words.clone();
            let mut words = vec![0u32; minuend.len()];
            let mut n_words = self.n.words.clone();
            n_words.resize(minuend.len(), 0);
            let borrow = bn_sub_words(&mut words, &minuend, &n_words);
            debug_assert_eq!(borrow, 0);
            u = Bn { words };
            u.normalize();
        }
        u
    }

    /// Multiplies two Montgomery-form values: returns `a·b·R⁻¹ mod n`.
    #[must_use]
    pub fn mont_mul(&self, a: &Bn, b: &Bn) -> Bn {
        let prod = a.mul(b);
        let mut t = prod.words;
        self.redc(&mut t)
    }

    /// Squares a Montgomery-form value.
    #[must_use]
    pub fn mont_sqr(&self, a: &Bn) -> Bn {
        let prod = a.sqr();
        let mut t = prod.words;
        self.redc(&mut t)
    }

    /// Converts `a` (reduced mod n by the caller or not) into Montgomery
    /// form: `a·R mod n`.
    #[must_use]
    pub fn to_mont(&self, a: &Bn) -> Bn {
        let reduced = if a >= &self.n { a.mod_op(&self.n) } else { a.clone() };
        self.mont_mul(&reduced, &self.rr)
    }

    /// Converts a Montgomery-form value back to the ordinary domain.
    #[must_use]
    pub fn from_mont(&self, a: &Bn) -> Bn {
        let mut t = a.words.clone();
        self.redc(&mut t)
    }

    /// Computes `base^exp mod n` with a fixed 4-bit window, matching
    /// OpenSSL's default for RSA-sized operands.
    #[must_use]
    pub fn mod_exp(&self, base: &Bn, exp: &Bn) -> Bn {
        self.mod_exp_window(base, exp, 4)
    }

    /// Computes `base^exp mod n` with a caller-chosen window width
    /// (1–6 bits). Exposed for the window-width ablation bench.
    ///
    /// # Panics
    ///
    /// Panics if `window` is 0 or greater than 6.
    #[must_use]
    pub fn mod_exp_window(&self, base: &Bn, exp: &Bn, window: u32) -> Bn {
        assert!((1..=6).contains(&window), "window must be 1..=6");
        if exp.is_zero() {
            return if self.n.is_one() { Bn::zero() } else { Bn::one() };
        }
        counters::count("BN_mod_exp", exp.bit_len() as u64);
        let g = self.to_mont(base);
        // Table of g^0 .. g^(2^w - 1) in Montgomery form.
        let table_len = 1usize << window;
        let mut table = Vec::with_capacity(table_len);
        table.push(self.to_mont(&Bn::one()));
        table.push(g.clone());
        for i in 2..table_len {
            table.push(self.mont_mul(&table[i - 1], &g));
        }

        let bits = exp.bit_len();
        let chunks = bits.div_ceil(window as usize);
        let mut acc = table[0].clone(); // one, in Montgomery form
        for chunk_idx in (0..chunks).rev() {
            if chunk_idx != chunks - 1 {
                for _ in 0..window {
                    acc = self.mont_sqr(&acc);
                }
            }
            let mut idx = 0usize;
            for b in (0..window as usize).rev() {
                let bit_pos = chunk_idx * window as usize + b;
                idx = (idx << 1) | usize::from(exp.bit(bit_pos));
            }
            if idx != 0 {
                acc = self.mont_mul(&acc, &table[idx]);
            }
        }
        self.from_mont(&acc)
    }
}

/// Reusable work buffers for Montgomery arithmetic — the batch-friendly
/// face of [`MontCtx`].
///
/// Every [`MontCtx::mod_exp`] call allocates a fresh double-width product
/// buffer per multiplication (~1300 of them for an RSA-half exponent) plus
/// a 16-entry window table. A batched caller — the RSA batch-decrypt path,
/// which runs the same-modulus exponentiation once per job — passes one
/// `MontScratch` instead and [`MontCtx::mod_exp_scratch`] reuses these
/// buffers across every multiplication *and* across every exponentiation
/// sharing the scratch, leaving one allocation per result. The buffers
/// grow to the largest modulus seen and are modulus-agnostic, so a single
/// scratch serves both CRT halves (`mod p`, then `mod q`).
///
/// # Examples
///
/// ```
/// use sslperf_bignum::{Bn, MontCtx, MontScratch};
///
/// let n = Bn::from_u64(1_000_003);
/// let ctx = MontCtx::new(&n)?;
/// let mut scratch = MontScratch::new();
/// let base = Bn::from_u64(2);
/// let exp = Bn::from_u64(20);
/// assert_eq!(ctx.mod_exp_scratch(&base, &exp, &mut scratch), ctx.mod_exp(&base, &exp));
/// # Ok::<(), sslperf_bignum::BnError>(())
/// ```
#[derive(Debug, Default, Clone)]
pub struct MontScratch {
    /// Double-width product buffer fed to the reduction.
    prod: Vec<u32>,
    /// Destination for the conditional final subtraction.
    diff: Vec<u32>,
    /// The modulus zero-padded to the minuend's length.
    npad: Vec<u32>,
    /// The 2^w-entry window table, entries overwritten in place.
    table: Vec<Bn>,
    /// Ping-pong accumulators for the square-and-multiply loop.
    acc: Bn,
    acc2: Bn,
}

impl MontScratch {
    /// Empty scratch; buffers grow on first use and are then reused.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl MontCtx {
    /// Schoolbook product of `a` and `b` written into `prod` (resized, no
    /// allocation once grown).
    fn mul_buf(a: &Bn, b: &Bn, prod: &mut Vec<u32>) {
        counters::count("BN_mul", a.words.len() as u64);
        prod.clear();
        prod.resize(a.words.len() + b.words.len(), 0);
        for (i, &w) in b.words.iter().enumerate() {
            let carry = bn_mul_add_words(&mut prod[i..i + a.words.len()], &a.words, w);
            prod[i + a.words.len()] = carry;
        }
    }

    /// Montgomery reduction of the double-width value in `t`, result
    /// written into `out` — the allocation-free twin of [`MontCtx::redc`].
    fn redc_buf(&self, t: &mut Vec<u32>, out: &mut Bn, diff: &mut Vec<u32>, npad: &mut Vec<u32>) {
        counters::count("BN_from_montgomery", self.k as u64);
        t.resize(2 * self.k + 1, 0);
        for i in 0..self.k {
            let m = t[i].wrapping_mul(self.n0);
            let carry = bn_mul_add_words(&mut t[i..i + self.k], &self.n.words, m);
            let mut c = u64::from(carry);
            let mut idx = i + self.k;
            while c != 0 {
                let s = u64::from(t[idx]) + c;
                t[idx] = s as u32;
                c = s >> 32;
                idx += 1;
            }
        }
        out.words.clear();
        out.words.extend_from_slice(&t[self.k..]);
        out.normalize();
        if *out >= self.n {
            diff.clear();
            diff.resize(out.words.len(), 0);
            npad.clear();
            npad.extend_from_slice(&self.n.words);
            npad.resize(out.words.len(), 0);
            let borrow = bn_sub_words(diff, &out.words, npad);
            debug_assert_eq!(borrow, 0);
            std::mem::swap(&mut out.words, diff);
            out.normalize();
        }
    }

    /// `a·b·R⁻¹ mod n` into `out`, using only the given buffers.
    fn mont_mul_buf(
        &self,
        a: &Bn,
        b: &Bn,
        out: &mut Bn,
        prod: &mut Vec<u32>,
        diff: &mut Vec<u32>,
        npad: &mut Vec<u32>,
    ) {
        Self::mul_buf(a, b, prod);
        self.redc_buf(prod, out, diff, npad);
    }

    /// Computes `base^exp mod n`, reusing `scratch` for every intermediate
    /// buffer and sizing the window to the exponent (OpenSSL's
    /// `BN_window_bits_for_exponent_size`), so a 4-bit Fiat-tree exponent
    /// does not pay for a 16-entry table build.
    ///
    /// Returns the same value as [`MontCtx::mod_exp`]; the difference is
    /// purely allocator traffic and table sizing. In steady state the only
    /// allocation is the returned result, which is what makes batched RSA
    /// decryption's repeated same-modulus exponentiations cheap to
    /// interleave.
    #[must_use]
    pub fn mod_exp_scratch(&self, base: &Bn, exp: &Bn, scratch: &mut MontScratch) -> Bn {
        if exp.is_zero() {
            return if self.n.is_one() { Bn::zero() } else { Bn::one() };
        }
        let window: usize = match exp.bit_len() {
            0..=23 => 1,
            24..=79 => 3,
            80..=239 => 4,
            240..=671 => 5,
            _ => 6,
        };
        counters::count("BN_mod_exp", exp.bit_len() as u64);
        let MontScratch { prod, diff, npad, table, acc, acc2 } = scratch;
        let table_len = 1usize << window;
        if table.len() < table_len {
            table.resize_with(table_len, Bn::zero);
        }
        // table[0] = 1·R, table[1] = g = base·R, table[i] = table[i-1]·g.
        let one_mont = self.to_mont(&Bn::one());
        table[0].copy_from(&one_mont);
        let g = self.to_mont(base);
        table[1].copy_from(&g);
        for i in 2..table_len {
            let (lo, hi) = table.split_at_mut(i);
            self.mont_mul_buf(&lo[i - 1], &g, &mut hi[0], prod, diff, npad);
        }

        let bits = exp.bit_len();
        let chunks = bits.div_ceil(window);
        acc.copy_from(&table[0]);
        for chunk_idx in (0..chunks).rev() {
            if chunk_idx != chunks - 1 {
                for _ in 0..window {
                    self.mont_mul_buf(acc, acc, acc2, prod, diff, npad);
                    std::mem::swap(acc, acc2);
                }
            }
            let mut idx = 0usize;
            for b in (0..window).rev() {
                let bit_pos = chunk_idx * window + b;
                idx = (idx << 1) | usize::from(exp.bit(bit_pos));
            }
            if idx != 0 {
                self.mont_mul_buf(acc, &table[idx], acc2, prod, diff, npad);
                std::mem::swap(acc, acc2);
            }
        }
        prod.clear();
        prod.extend_from_slice(&acc.words);
        self.redc_buf(prod, acc2, diff, npad);
        acc2.clone()
    }
}

impl Bn {
    /// Computes `self^exp mod m` via a throwaway Montgomery context for odd
    /// `m`, falling back to binary square-and-multiply for even moduli.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    #[must_use]
    pub fn mod_exp(&self, exp: &Bn, m: &Bn) -> Bn {
        assert!(!m.is_zero(), "zero modulus");
        if m.is_one() {
            return Bn::zero();
        }
        match MontCtx::new(m) {
            Ok(ctx) => ctx.mod_exp(self, exp),
            Err(_) => self.mod_exp_simple(exp, m),
        }
    }

    /// Plain left-to-right square-and-multiply `self^exp mod m`.
    ///
    /// Kept as the correctness oracle for the Montgomery path and as the
    /// no-Montgomery baseline in the ablation benches.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    #[must_use]
    pub fn mod_exp_simple(&self, exp: &Bn, m: &Bn) -> Bn {
        assert!(!m.is_zero(), "zero modulus");
        if m.is_one() {
            return Bn::zero();
        }
        let base = self.mod_op(m);
        let mut acc = Bn::one();
        for i in (0..exp.bit_len()).rev() {
            acc = acc.mod_mul(&acc, m);
            if exp.bit(i) {
                acc = acc.mod_mul(&base, m);
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bn(s: &str) -> Bn {
        Bn::from_hex(s).unwrap()
    }

    #[test]
    fn rejects_even_or_trivial_modulus() {
        assert!(MontCtx::new(&Bn::from_u64(10)).is_err());
        assert!(MontCtx::new(&Bn::zero()).is_err());
        assert!(MontCtx::new(&Bn::one()).is_err());
        assert!(MontCtx::new(&Bn::from_u64(9)).is_ok());
    }

    #[test]
    fn mont_round_trip() {
        let n = bn("fffffffffffffffffffffffffffffff1");
        let ctx = MontCtx::new(&n).unwrap();
        for v in ["0", "1", "deadbeef", "fffffffffffffffffffffffffffffff0"] {
            let a = bn(v);
            assert_eq!(ctx.from_mont(&ctx.to_mont(&a)), a.mod_op(&n), "value {v}");
        }
    }

    #[test]
    fn mont_mul_matches_mod_mul() {
        let n = bn("f000000000000000000000000000000d");
        let ctx = MontCtx::new(&n).unwrap();
        let a = bn("123456789abcdef0123456789abcdef");
        let b = bn("fedcba9876543210fedcba987654321");
        let am = ctx.to_mont(&a);
        let bm = ctx.to_mont(&b);
        let got = ctx.from_mont(&ctx.mont_mul(&am, &bm));
        assert_eq!(got, a.mod_mul(&b, &n));
    }

    #[test]
    fn mod_exp_small_cases() {
        let n = Bn::from_u64(497); // 7 * 71, odd composite
        let ctx = MontCtx::new(&n).unwrap();
        assert_eq!(ctx.mod_exp(&Bn::from_u64(4), &Bn::from_u64(13)), Bn::from_u64(445));
        assert_eq!(ctx.mod_exp(&Bn::from_u64(4), &Bn::zero()), Bn::one());
        assert_eq!(ctx.mod_exp(&Bn::zero(), &Bn::from_u64(5)), Bn::zero());
        assert_eq!(ctx.mod_exp(&Bn::one(), &bn("ffffffffffffffff")), Bn::one());
    }

    #[test]
    fn fermat_little_theorem() {
        // p prime → a^(p-1) ≡ 1 (mod p)
        let p = bn("ffffffffffffffc5"); // 2^64 - 59, prime
        let ctx = MontCtx::new(&p).unwrap();
        for a in ["2", "3", "deadbeef", "123456789abcdef"] {
            let a = bn(a);
            assert_eq!(ctx.mod_exp(&a, &p.sub(&Bn::one())), Bn::one(), "base {a:?}");
        }
    }

    #[test]
    fn montgomery_matches_simple_exponentiation() {
        let n = bn("c0ffee0000000000000000000000000000000000000000000000000000000061");
        let ctx = MontCtx::new(&n).unwrap();
        let base = bn("123456789abcdef");
        let exp = bn("fedcba9876543210");
        assert_eq!(ctx.mod_exp(&base, &exp), base.mod_exp_simple(&exp, &n));
    }

    #[test]
    fn all_window_widths_agree() {
        let n = bn("fffffffffffffffffffffffffffffff1");
        let ctx = MontCtx::new(&n).unwrap();
        let base = bn("abcdef0123456789");
        let exp = bn("10001");
        let reference = ctx.mod_exp_window(&base, &exp, 1);
        for w in 2..=6 {
            assert_eq!(ctx.mod_exp_window(&base, &exp, w), reference, "window {w}");
        }
    }

    #[test]
    #[should_panic(expected = "window must be")]
    fn window_zero_panics() {
        let ctx = MontCtx::new(&Bn::from_u64(9)).unwrap();
        let _ = ctx.mod_exp_window(&Bn::one(), &Bn::one(), 0);
    }

    #[test]
    fn bn_mod_exp_even_modulus_falls_back() {
        let m = Bn::from_u64(100);
        assert_eq!(Bn::from_u64(7).mod_exp(&Bn::from_u64(3), &m), Bn::from_u64(43));
        assert_eq!(Bn::from_u64(7).mod_exp(&Bn::from_u64(0), &m), Bn::one());
        assert_eq!(Bn::from_u64(7).mod_exp(&Bn::from_u64(3), &Bn::one()), Bn::zero());
    }

    #[test]
    fn exponent_larger_than_modulus_bits() {
        let n = Bn::from_u64(101);
        let ctx = MontCtx::new(&n).unwrap();
        let exp = bn("123456789abcdef0123456789abcdef0");
        assert_eq!(ctx.mod_exp(&Bn::from_u64(3), &exp), Bn::from_u64(3).mod_exp_simple(&exp, &n));
    }

    #[test]
    fn scratch_exponentiation_matches_allocating_path() {
        let n = bn("c0ffee0000000000000000000000000000000000000000000000000000000061");
        let ctx = MontCtx::new(&n).unwrap();
        let mut scratch = MontScratch::new();
        for (base, exp) in [
            ("2", "10001"),
            ("123456789abcdef", "fedcba9876543210"),
            ("0", "5"),
            ("1", "ffffffffffffffff"),
            ("deadbeef", "0"),
        ] {
            let base = bn(base);
            let exp = bn(exp);
            assert_eq!(
                ctx.mod_exp_scratch(&base, &exp, &mut scratch),
                ctx.mod_exp(&base, &exp),
                "base {base:?} exp {exp:?}"
            );
        }
    }

    #[test]
    fn one_scratch_serves_multiple_moduli() {
        // The batch decrypt path interleaves mod-p and mod-q halves through
        // one scratch; buffers must not leak state across moduli.
        let p = bn("ffffffffffffffc5");
        let q = bn("fffffffffffffffffffffffffffffff1");
        let ctx_p = MontCtx::new(&p).unwrap();
        let ctx_q = MontCtx::new(&q).unwrap();
        let mut scratch = MontScratch::new();
        let base = bn("123456789abcdef");
        let exp = bn("abcdef123");
        for _ in 0..3 {
            assert_eq!(
                ctx_p.mod_exp_scratch(&base, &exp, &mut scratch),
                ctx_p.mod_exp(&base, &exp)
            );
            assert_eq!(
                ctx_q.mod_exp_scratch(&base, &exp, &mut scratch),
                ctx_q.mod_exp(&base, &exp)
            );
        }
    }

    #[test]
    fn counters_see_hot_functions() {
        use sslperf_profile::counters;
        let n = bn("fffffffffffffffffffffffffffffff1");
        let ctx = MontCtx::new(&n).unwrap();
        let (_, snap) = counters::counted(|| {
            let _ = ctx.mod_exp(&bn("12345"), &bn("10001"));
        });
        assert!(snap.calls("bn_mul_add_words") > 0);
        assert!(snap.calls("BN_from_montgomery") > 0);
    }
}
