//! Montgomery multiplication and modular exponentiation.
//!
//! RSA's "computation" step (97–99% of decryption in the paper's Table 7) is
//! modular exponentiation. Like OpenSSL's `BN_mod_exp_mont`, the
//! implementation converts into Montgomery form once, then performs every
//! multiplication as *full product + Montgomery reduction*, where the
//! reduction is itself a loop of [`bn_mul_add_words`] calls followed by a
//! conditional [`bn_sub_words`] — reproducing the function mix of Table 8.
//!
//! [`bn_mul_add_words`]: crate::words::bn_mul_add_words
//! [`bn_sub_words`]: crate::words::bn_sub_words

use crate::words::{bn_mul_add_words, bn_sub_words};
use crate::{default_limb_width, words64, Bn, BnError, LimbWidth};
use sslperf_profile::counters;

/// Precomputed context for arithmetic modulo an odd number `n`.
///
/// # Examples
///
/// ```
/// use sslperf_bignum::{Bn, MontCtx};
///
/// let n = Bn::from_u64(1_000_003);
/// let ctx = MontCtx::new(&n)?;
/// let r = ctx.mod_exp(&Bn::from_u64(2), &Bn::from_u64(20));
/// assert_eq!(r, Bn::from_u64((1 << 20) % 1_000_003));
/// # Ok::<(), sslperf_bignum::BnError>(())
/// ```
#[derive(Debug, Clone)]
pub struct MontCtx {
    n: Bn,
    /// `-n⁻¹ mod 2³²` — the per-word reduction multiplier.
    n0: u32,
    /// `R² mod n` with `R = 2^(32k)`, used to enter Montgomery form.
    rr: Bn,
    /// Word length of `n`.
    k: usize,
    /// The 64-bit-limb engine; present exactly when `limbs == U64`.
    m64: Option<Mont64>,
    /// Which limb width this context's arithmetic runs on.
    limbs: LimbWidth,
}

/// The 64-bit-limb Montgomery engine: same algorithm as the u32 path, with
/// `R = 2^(64·k64)` and every inner loop running over [`words64`] kernels.
///
/// Values in this domain are *fixed-length* `k64`-limb vectors (no
/// normalization) so the hot loops never branch on operand length.
#[derive(Debug, Clone)]
struct Mont64 {
    /// The modulus as `k64` little-endian 64-bit limbs.
    n: Vec<u64>,
    /// `-n⁻¹ mod 2⁶⁴`.
    n0: u64,
    /// `R² mod n` with `R = 2^(64·k64)`.
    rr: Vec<u64>,
    /// Limb length of `n`.
    k: usize,
}

/// Packs a (reduced) value into exactly `k` little-endian 64-bit limbs.
fn limbs64_from_bn(a: &Bn, k: usize) -> Vec<u64> {
    debug_assert!(a.words.len() <= 2 * k, "operand wider than the modulus");
    let mut out = vec![0u64; k];
    for (i, &w) in a.words.iter().enumerate() {
        out[i / 2] |= u64::from(w) << (32 * (i % 2));
    }
    out
}

/// Unpacks fixed-length limbs back into a normalized [`Bn`].
fn bn_from_limbs64(l: &[u64]) -> Bn {
    let mut words = Vec::with_capacity(2 * l.len());
    for &v in l {
        words.push(v as u32);
        words.push((v >> 32) as u32);
    }
    let mut bn = Bn { words };
    bn.normalize();
    bn
}

/// `a >= b` over equal-length fixed-width limb vectors.
fn ge64(a: &[u64], b: &[u64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().rev().zip(b.iter().rev()) {
        if x != y {
            return x > y;
        }
    }
    true
}

impl Mont64 {
    fn new(n: &Bn) -> Self {
        let k = n.word_len().div_ceil(2);
        let n64 = limbs64_from_bn(n, k);
        // Newton iteration for the inverse of n mod 2^64: six doublings of
        // precision starting from the trivial inverse mod 2.
        let mut inv: u64 = 1;
        for _ in 0..6 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(n64[0].wrapping_mul(inv)));
        }
        debug_assert_eq!(n64[0].wrapping_mul(inv), 1);
        let n0 = inv.wrapping_neg();
        let rr = limbs64_from_bn(&Bn::one().shl(128 * k).mod_op(n), k);
        Mont64 { n: n64, n0, rr, k }
    }

    /// Schoolbook product `a·b` into `prod` (2k limbs, resized in place).
    fn mul_into(a: &[u64], b: &[u64], prod: &mut Vec<u64>) {
        counters::count("BN_mul", a.len() as u64);
        prod.clear();
        prod.resize(a.len() + b.len(), 0);
        for (i, &w) in b.iter().enumerate() {
            let carry = words64::bn_mul_add_words(&mut prod[i..i + a.len()], a, w);
            prod[i + a.len()] = carry;
        }
    }

    /// Dedicated squaring `a²` into `prod` (`bn_sqr_normal` over 64-bit
    /// limbs): upper-triangle cross products, diagonal via
    /// [`words64::bn_sqr_words`], then one fused `2·cross + diag` pass.
    fn sqr_into(a: &[u64], prod: &mut Vec<u64>, diag: &mut Vec<u64>) {
        counters::count("BN_sqr", a.len() as u64);
        let n = a.len();
        prod.clear();
        prod.resize(2 * n, 0);
        if n > 1 {
            let carry = words64::bn_mul_words(&mut prod[1..n], &a[1..], a[0]);
            prod[n] = carry;
            for i in 1..n - 1 {
                let len = n - 1 - i;
                let carry = words64::bn_mul_add_words(
                    &mut prod[2 * i + 1..2 * i + 1 + len],
                    &a[i + 1..],
                    a[i],
                );
                prod[n + i] = carry;
            }
        }
        diag.clear();
        diag.resize(2 * n, 0);
        words64::bn_sqr_words(diag, a);
        let mut carry = 0u128;
        for (p, &d) in prod.iter_mut().zip(diag.iter()) {
            let t = 2 * u128::from(*p) + u128::from(d) + carry;
            *p = t as u64;
            carry = t >> 64;
        }
        debug_assert_eq!(carry, 0, "a² always fits 2n limbs");
    }

    /// Montgomery reduction of the double-width value in `t` into `out`
    /// (exactly `k` limbs), using `diff` for the conditional subtraction.
    fn redc(&self, t: &mut Vec<u64>, out: &mut Vec<u64>, diff: &mut Vec<u64>) {
        counters::count("BN_from_montgomery", self.k as u64);
        t.resize(2 * self.k + 1, 0);
        for i in 0..self.k {
            let m = t[i].wrapping_mul(self.n0);
            let carry = words64::bn_mul_add_words(&mut t[i..i + self.k], &self.n, m);
            let mut c = carry;
            let mut idx = i + self.k;
            while c != 0 {
                let (s, overflow) = t[idx].overflowing_add(c);
                t[idx] = s;
                c = u64::from(overflow);
                idx += 1;
            }
        }
        out.clear();
        out.extend_from_slice(&t[self.k..2 * self.k]);
        // u = t/R < 2n, so at most one subtraction; the top limb t[2k] is 0
        // or 1 and is consumed by the borrow when set.
        let top = t[2 * self.k];
        if top != 0 || ge64(out, &self.n) {
            diff.clear();
            diff.resize(self.k, 0);
            let borrow = words64::bn_sub_words(diff, out, &self.n);
            debug_assert_eq!(borrow, u64::from(top != 0), "u - n must fit k limbs");
            std::mem::swap(out, diff);
        }
    }
}

impl MontCtx {
    /// Builds a context for the odd modulus `n > 1` on the process-default
    /// limb width ([`default_limb_width`]).
    ///
    /// # Errors
    ///
    /// Returns [`BnError::EvenModulus`] if `n` is even, zero or one.
    pub fn new(n: &Bn) -> Result<Self, BnError> {
        Self::with_limb_width(n, default_limb_width())
    }

    /// Builds a context on an explicit limb width — the hook the
    /// differential tests and the kernel bench use to force the
    /// paper-faithful u32 path or the raw-speed u64 path in-process.
    ///
    /// # Errors
    ///
    /// Returns [`BnError::EvenModulus`] if `n` is even, zero or one.
    pub fn with_limb_width(n: &Bn, limbs: LimbWidth) -> Result<Self, BnError> {
        if !n.is_odd() || n.is_one() {
            return Err(BnError::EvenModulus);
        }
        counters::count("BN_CTX_start", 1);
        let k = n.word_len();
        // Newton iteration for the inverse of n mod 2^32: five doublings of
        // precision starting from the trivial inverse mod 2.
        let mut inv: u32 = 1;
        for _ in 0..5 {
            inv = inv.wrapping_mul(2u32.wrapping_sub(n.words[0].wrapping_mul(inv)));
        }
        debug_assert_eq!(n.words[0].wrapping_mul(inv), 1);
        let n0 = inv.wrapping_neg();
        let rr = Bn::one().shl(64 * k).mod_op(n);
        let m64 = match limbs {
            LimbWidth::U32 => None,
            LimbWidth::U64 => Some(Mont64::new(n)),
        };
        Ok(MontCtx { n: n.clone(), n0, rr, k, m64, limbs })
    }

    /// The limb width this context's arithmetic runs on.
    #[must_use]
    pub fn limb_width(&self) -> LimbWidth {
        self.limbs
    }

    /// The modulus this context reduces by.
    #[must_use]
    pub fn modulus(&self) -> &Bn {
        &self.n
    }

    /// Montgomery reduction of a double-width value: returns `t·R⁻¹ mod n`.
    ///
    /// This is OpenSSL's `BN_from_montgomery` (Table 8, ~9% of RSA).
    fn redc(&self, t: &mut Vec<u32>) -> Bn {
        counters::count("BN_from_montgomery", self.k as u64);
        t.resize(2 * self.k + 1, 0);
        for i in 0..self.k {
            let m = t[i].wrapping_mul(self.n0);
            let carry = bn_mul_add_words(&mut t[i..i + self.k], &self.n.words, m);
            // Ripple the carry into the words above the window.
            let mut c = u64::from(carry);
            let mut idx = i + self.k;
            while c != 0 {
                let s = u64::from(t[idx]) + c;
                t[idx] = s as u32;
                c = s >> 32;
                idx += 1;
            }
        }
        let mut u = Bn { words: t[self.k..].to_vec() };
        u.normalize();
        if u >= self.n {
            // Conditional final subtraction — the bn_sub_words hot spot.
            let minuend = u.words.clone();
            let mut words = vec![0u32; minuend.len()];
            let mut n_words = self.n.words.clone();
            n_words.resize(minuend.len(), 0);
            let borrow = bn_sub_words(&mut words, &minuend, &n_words);
            debug_assert_eq!(borrow, 0);
            u = Bn { words };
            u.normalize();
        }
        u
    }

    /// Multiplies two Montgomery-form values: returns `a·b·R⁻¹ mod n`.
    #[must_use]
    pub fn mont_mul(&self, a: &Bn, b: &Bn) -> Bn {
        if let Some(m) = &self.m64 {
            let a64 = limbs64_from_bn(a, m.k);
            let b64 = limbs64_from_bn(b, m.k);
            let (mut prod, mut out, mut diff) = (Vec::new(), Vec::new(), Vec::new());
            Mont64::mul_into(&a64, &b64, &mut prod);
            m.redc(&mut prod, &mut out, &mut diff);
            return bn_from_limbs64(&out);
        }
        let prod = a.mul(b);
        let mut t = prod.words;
        self.redc(&mut t)
    }

    /// Squares a Montgomery-form value.
    #[must_use]
    pub fn mont_sqr(&self, a: &Bn) -> Bn {
        if let Some(m) = &self.m64 {
            let a64 = limbs64_from_bn(a, m.k);
            let (mut prod, mut diag, mut out, mut diff) =
                (Vec::new(), Vec::new(), Vec::new(), Vec::new());
            Mont64::sqr_into(&a64, &mut prod, &mut diag);
            m.redc(&mut prod, &mut out, &mut diff);
            return bn_from_limbs64(&out);
        }
        let prod = a.sqr();
        let mut t = prod.words;
        self.redc(&mut t)
    }

    /// Converts `a` (reduced mod n by the caller or not) into Montgomery
    /// form: `a·R mod n`.
    #[must_use]
    pub fn to_mont(&self, a: &Bn) -> Bn {
        let reduced = if a >= &self.n { a.mod_op(&self.n) } else { a.clone() };
        if let Some(m) = &self.m64 {
            return self.mont_mul(&reduced, &bn_from_limbs64(&m.rr));
        }
        self.mont_mul(&reduced, &self.rr)
    }

    /// Converts a Montgomery-form value back to the ordinary domain.
    #[must_use]
    pub fn from_mont(&self, a: &Bn) -> Bn {
        if let Some(m) = &self.m64 {
            let mut t = limbs64_from_bn(a, m.k);
            let (mut out, mut diff) = (Vec::new(), Vec::new());
            m.redc(&mut t, &mut out, &mut diff);
            return bn_from_limbs64(&out);
        }
        let mut t = a.words.clone();
        self.redc(&mut t)
    }

    /// Computes `base^exp mod n` with a fixed 4-bit window, matching
    /// OpenSSL's default for RSA-sized operands.
    #[must_use]
    pub fn mod_exp(&self, base: &Bn, exp: &Bn) -> Bn {
        self.mod_exp_window(base, exp, 4)
    }

    /// Computes `base^exp mod n` with a caller-chosen window width
    /// (1–6 bits). Exposed for the window-width ablation bench.
    ///
    /// # Panics
    ///
    /// Panics if `window` is 0 or greater than 6.
    #[must_use]
    pub fn mod_exp_window(&self, base: &Bn, exp: &Bn, window: u32) -> Bn {
        assert!((1..=6).contains(&window), "window must be 1..=6");
        if exp.is_zero() {
            return if self.n.is_one() { Bn::zero() } else { Bn::one() };
        }
        if self.m64.is_some() {
            let mut scratch = MontScratch::new();
            return self.mod_exp_u64(base, exp, window as usize, &mut scratch);
        }
        counters::count("BN_mod_exp", exp.bit_len() as u64);
        let g = self.to_mont(base);
        // Table of g^0 .. g^(2^w - 1) in Montgomery form.
        let table_len = 1usize << window;
        let mut table = Vec::with_capacity(table_len);
        table.push(self.to_mont(&Bn::one()));
        table.push(g.clone());
        for i in 2..table_len {
            table.push(self.mont_mul(&table[i - 1], &g));
        }

        let bits = exp.bit_len();
        let chunks = bits.div_ceil(window as usize);
        let mut acc = table[0].clone(); // one, in Montgomery form
        for chunk_idx in (0..chunks).rev() {
            if chunk_idx != chunks - 1 {
                for _ in 0..window {
                    acc = self.mont_sqr(&acc);
                }
            }
            let mut idx = 0usize;
            for b in (0..window as usize).rev() {
                let bit_pos = chunk_idx * window as usize + b;
                idx = (idx << 1) | usize::from(exp.bit(bit_pos));
            }
            if idx != 0 {
                acc = self.mont_mul(&acc, &table[idx]);
            }
        }
        self.from_mont(&acc)
    }
}

/// Reusable work buffers for Montgomery arithmetic — the batch-friendly
/// face of [`MontCtx`].
///
/// Every [`MontCtx::mod_exp`] call allocates a fresh double-width product
/// buffer per multiplication (~1300 of them for an RSA-half exponent) plus
/// a 16-entry window table. A batched caller — the RSA batch-decrypt path,
/// which runs the same-modulus exponentiation once per job — passes one
/// `MontScratch` instead and [`MontCtx::mod_exp_scratch`] reuses these
/// buffers across every multiplication *and* across every exponentiation
/// sharing the scratch, leaving one allocation per result. The buffers
/// grow to the largest modulus seen and are modulus-agnostic, so a single
/// scratch serves both CRT halves (`mod p`, then `mod q`).
///
/// # Examples
///
/// ```
/// use sslperf_bignum::{Bn, MontCtx, MontScratch};
///
/// let n = Bn::from_u64(1_000_003);
/// let ctx = MontCtx::new(&n)?;
/// let mut scratch = MontScratch::new();
/// let base = Bn::from_u64(2);
/// let exp = Bn::from_u64(20);
/// assert_eq!(ctx.mod_exp_scratch(&base, &exp, &mut scratch), ctx.mod_exp(&base, &exp));
/// # Ok::<(), sslperf_bignum::BnError>(())
/// ```
#[derive(Debug, Default, Clone)]
pub struct MontScratch {
    /// Double-width product buffer fed to the reduction.
    prod: Vec<u32>,
    /// Destination for the conditional final subtraction.
    diff: Vec<u32>,
    /// The modulus zero-padded to the minuend's length.
    npad: Vec<u32>,
    /// Diagonal-terms buffer for the dedicated squaring.
    sqtmp: Vec<u32>,
    /// The 2^w-entry window table, entries overwritten in place.
    table: Vec<Bn>,
    /// Ping-pong accumulators for the square-and-multiply loop.
    acc: Bn,
    acc2: Bn,
    /// 64-bit-limb twins of the buffers above, used when the context runs
    /// on [`LimbWidth::U64`]. Both sets coexist so one scratch serves mixed
    /// batches (e.g. a u32-forced CRT half next to u64 DHE agreements).
    prod64: Vec<u64>,
    diff64: Vec<u64>,
    sqtmp64: Vec<u64>,
    table64: Vec<Vec<u64>>,
    acc64: Vec<u64>,
    acc64b: Vec<u64>,
}

impl MontScratch {
    /// Empty scratch; buffers grow on first use and are then reused.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl MontCtx {
    /// Schoolbook product of `a` and `b` written into `prod` (resized, no
    /// allocation once grown).
    fn mul_buf(a: &Bn, b: &Bn, prod: &mut Vec<u32>) {
        counters::count("BN_mul", a.words.len() as u64);
        prod.clear();
        prod.resize(a.words.len() + b.words.len(), 0);
        for (i, &w) in b.words.iter().enumerate() {
            let carry = bn_mul_add_words(&mut prod[i..i + a.words.len()], &a.words, w);
            prod[i + a.words.len()] = carry;
        }
    }

    /// Montgomery reduction of the double-width value in `t`, result
    /// written into `out` — the allocation-free twin of [`MontCtx::redc`].
    fn redc_buf(&self, t: &mut Vec<u32>, out: &mut Bn, diff: &mut Vec<u32>, npad: &mut Vec<u32>) {
        counters::count("BN_from_montgomery", self.k as u64);
        t.resize(2 * self.k + 1, 0);
        for i in 0..self.k {
            let m = t[i].wrapping_mul(self.n0);
            let carry = bn_mul_add_words(&mut t[i..i + self.k], &self.n.words, m);
            let mut c = u64::from(carry);
            let mut idx = i + self.k;
            while c != 0 {
                let s = u64::from(t[idx]) + c;
                t[idx] = s as u32;
                c = s >> 32;
                idx += 1;
            }
        }
        out.words.clear();
        out.words.extend_from_slice(&t[self.k..]);
        out.normalize();
        if *out >= self.n {
            diff.clear();
            diff.resize(out.words.len(), 0);
            npad.clear();
            npad.extend_from_slice(&self.n.words);
            npad.resize(out.words.len(), 0);
            let borrow = bn_sub_words(diff, &out.words, npad);
            debug_assert_eq!(borrow, 0);
            std::mem::swap(&mut out.words, diff);
            out.normalize();
        }
    }

    /// `a·b·R⁻¹ mod n` into `out`, using only the given buffers.
    fn mont_mul_buf(
        &self,
        a: &Bn,
        b: &Bn,
        out: &mut Bn,
        prod: &mut Vec<u32>,
        diff: &mut Vec<u32>,
        npad: &mut Vec<u32>,
    ) {
        Self::mul_buf(a, b, prod);
        self.redc_buf(prod, out, diff, npad);
    }

    /// Dedicated squaring of `a` written into `prod` — the allocation-free
    /// face of [`Bn::sqr`]'s `bn_sqr_normal`.
    fn sqr_buf(a: &Bn, prod: &mut Vec<u32>, sqtmp: &mut Vec<u32>) {
        counters::count("BN_sqr", a.words.len() as u64);
        prod.clear();
        prod.resize(2 * a.words.len(), 0);
        sqtmp.clear();
        sqtmp.resize(2 * a.words.len(), 0);
        Bn::sqr_into(&a.words, prod, sqtmp);
    }

    /// `a²·R⁻¹ mod n` into `out`, using only the given buffers.
    #[allow(clippy::too_many_arguments)]
    fn mont_sqr_buf(
        &self,
        a: &Bn,
        out: &mut Bn,
        prod: &mut Vec<u32>,
        diff: &mut Vec<u32>,
        npad: &mut Vec<u32>,
        sqtmp: &mut Vec<u32>,
    ) {
        Self::sqr_buf(a, prod, sqtmp);
        self.redc_buf(prod, out, diff, npad);
    }

    /// The 64-bit-limb windowed exponentiation: converts once into the u64
    /// Montgomery domain, runs the whole square-and-multiply loop on
    /// [`words64`] kernels, and converts back at the end. Callers have
    /// already handled the zero exponent.
    fn mod_exp_u64(&self, base: &Bn, exp: &Bn, window: usize, scratch: &mut MontScratch) -> Bn {
        let m = self.m64.as_ref().expect("u64 engine present");
        counters::count("BN_mod_exp", exp.bit_len() as u64);
        let reduced;
        let base = if base >= &self.n {
            reduced = base.mod_op(&self.n);
            &reduced
        } else {
            base
        };
        let b64 = limbs64_from_bn(base, m.k);
        let MontScratch { prod64, diff64, sqtmp64, table64, acc64, acc64b, .. } = scratch;
        let table_len = 1usize << window;
        if table64.len() < table_len {
            table64.resize_with(table_len, Vec::new);
        }
        // table[0] = 1·R = redc(R²), table[1] = g = base·R, table[i] = table[i-1]·g.
        prod64.clear();
        prod64.extend_from_slice(&m.rr);
        m.redc(prod64, &mut table64[0], diff64);
        Mont64::mul_into(&b64, &m.rr, prod64);
        m.redc(prod64, &mut table64[1], diff64);
        for i in 2..table_len {
            let (lo, hi) = table64.split_at_mut(i);
            Mont64::mul_into(&lo[i - 1], &lo[1], prod64);
            m.redc(prod64, &mut hi[0], diff64);
        }

        let bits = exp.bit_len();
        let chunks = bits.div_ceil(window);
        acc64.clear();
        acc64.extend_from_slice(&table64[0]);
        for chunk_idx in (0..chunks).rev() {
            if chunk_idx != chunks - 1 {
                for _ in 0..window {
                    Mont64::sqr_into(acc64, prod64, sqtmp64);
                    m.redc(prod64, acc64b, diff64);
                    std::mem::swap(acc64, acc64b);
                }
            }
            let mut idx = 0usize;
            for b in (0..window).rev() {
                let bit_pos = chunk_idx * window + b;
                idx = (idx << 1) | usize::from(exp.bit(bit_pos));
            }
            if idx != 0 {
                Mont64::mul_into(acc64, &table64[idx], prod64);
                m.redc(prod64, acc64b, diff64);
                std::mem::swap(acc64, acc64b);
            }
        }
        prod64.clear();
        prod64.extend_from_slice(acc64);
        m.redc(prod64, acc64b, diff64);
        bn_from_limbs64(acc64b)
    }

    /// Computes `base^exp mod n`, reusing `scratch` for every intermediate
    /// buffer and sizing the window to the exponent (OpenSSL's
    /// `BN_window_bits_for_exponent_size`), so a 4-bit Fiat-tree exponent
    /// does not pay for a 16-entry table build.
    ///
    /// Returns the same value as [`MontCtx::mod_exp`]; the difference is
    /// purely allocator traffic and table sizing. In steady state the only
    /// allocation is the returned result, which is what makes batched RSA
    /// decryption's repeated same-modulus exponentiations cheap to
    /// interleave.
    #[must_use]
    pub fn mod_exp_scratch(&self, base: &Bn, exp: &Bn, scratch: &mut MontScratch) -> Bn {
        if exp.is_zero() {
            return if self.n.is_one() { Bn::zero() } else { Bn::one() };
        }
        let window: usize = match exp.bit_len() {
            0..=23 => 1,
            24..=79 => 3,
            80..=239 => 4,
            240..=671 => 5,
            _ => 6,
        };
        if self.m64.is_some() {
            return self.mod_exp_u64(base, exp, window, scratch);
        }
        counters::count("BN_mod_exp", exp.bit_len() as u64);
        let MontScratch { prod, diff, npad, sqtmp, table, acc, acc2, .. } = scratch;
        let table_len = 1usize << window;
        if table.len() < table_len {
            table.resize_with(table_len, Bn::zero);
        }
        // table[0] = 1·R, table[1] = g = base·R, table[i] = table[i-1]·g.
        let one_mont = self.to_mont(&Bn::one());
        table[0].copy_from(&one_mont);
        let g = self.to_mont(base);
        table[1].copy_from(&g);
        for i in 2..table_len {
            let (lo, hi) = table.split_at_mut(i);
            self.mont_mul_buf(&lo[i - 1], &g, &mut hi[0], prod, diff, npad);
        }

        let bits = exp.bit_len();
        let chunks = bits.div_ceil(window);
        acc.copy_from(&table[0]);
        for chunk_idx in (0..chunks).rev() {
            if chunk_idx != chunks - 1 {
                for _ in 0..window {
                    self.mont_sqr_buf(acc, acc2, prod, diff, npad, sqtmp);
                    std::mem::swap(acc, acc2);
                }
            }
            let mut idx = 0usize;
            for b in (0..window).rev() {
                let bit_pos = chunk_idx * window + b;
                idx = (idx << 1) | usize::from(exp.bit(bit_pos));
            }
            if idx != 0 {
                self.mont_mul_buf(acc, &table[idx], acc2, prod, diff, npad);
                std::mem::swap(acc, acc2);
            }
        }
        prod.clear();
        prod.extend_from_slice(&acc.words);
        self.redc_buf(prod, acc2, diff, npad);
        acc2.clone()
    }
}

impl Bn {
    /// Computes `self^exp mod m` via a throwaway Montgomery context for odd
    /// `m`, falling back to binary square-and-multiply for even moduli.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    #[must_use]
    pub fn mod_exp(&self, exp: &Bn, m: &Bn) -> Bn {
        assert!(!m.is_zero(), "zero modulus");
        if m.is_one() {
            return Bn::zero();
        }
        match MontCtx::new(m) {
            Ok(ctx) => ctx.mod_exp(self, exp),
            Err(_) => self.mod_exp_simple(exp, m),
        }
    }

    /// Plain left-to-right square-and-multiply `self^exp mod m`.
    ///
    /// Kept as the correctness oracle for the Montgomery path and as the
    /// no-Montgomery baseline in the ablation benches.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    #[must_use]
    pub fn mod_exp_simple(&self, exp: &Bn, m: &Bn) -> Bn {
        assert!(!m.is_zero(), "zero modulus");
        if m.is_one() {
            return Bn::zero();
        }
        let base = self.mod_op(m);
        let mut acc = Bn::one();
        for i in (0..exp.bit_len()).rev() {
            acc = acc.mod_mul(&acc, m);
            if exp.bit(i) {
                acc = acc.mod_mul(&base, m);
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bn(s: &str) -> Bn {
        Bn::from_hex(s).unwrap()
    }

    #[test]
    fn rejects_even_or_trivial_modulus() {
        assert!(MontCtx::new(&Bn::from_u64(10)).is_err());
        assert!(MontCtx::new(&Bn::zero()).is_err());
        assert!(MontCtx::new(&Bn::one()).is_err());
        assert!(MontCtx::new(&Bn::from_u64(9)).is_ok());
    }

    #[test]
    fn mont_round_trip() {
        let n = bn("fffffffffffffffffffffffffffffff1");
        let ctx = MontCtx::new(&n).unwrap();
        for v in ["0", "1", "deadbeef", "fffffffffffffffffffffffffffffff0"] {
            let a = bn(v);
            assert_eq!(ctx.from_mont(&ctx.to_mont(&a)), a.mod_op(&n), "value {v}");
        }
    }

    #[test]
    fn mont_mul_matches_mod_mul() {
        let n = bn("f000000000000000000000000000000d");
        let ctx = MontCtx::new(&n).unwrap();
        let a = bn("123456789abcdef0123456789abcdef");
        let b = bn("fedcba9876543210fedcba987654321");
        let am = ctx.to_mont(&a);
        let bm = ctx.to_mont(&b);
        let got = ctx.from_mont(&ctx.mont_mul(&am, &bm));
        assert_eq!(got, a.mod_mul(&b, &n));
    }

    #[test]
    fn mod_exp_small_cases() {
        let n = Bn::from_u64(497); // 7 * 71, odd composite
        let ctx = MontCtx::new(&n).unwrap();
        assert_eq!(ctx.mod_exp(&Bn::from_u64(4), &Bn::from_u64(13)), Bn::from_u64(445));
        assert_eq!(ctx.mod_exp(&Bn::from_u64(4), &Bn::zero()), Bn::one());
        assert_eq!(ctx.mod_exp(&Bn::zero(), &Bn::from_u64(5)), Bn::zero());
        assert_eq!(ctx.mod_exp(&Bn::one(), &bn("ffffffffffffffff")), Bn::one());
    }

    #[test]
    fn fermat_little_theorem() {
        // p prime → a^(p-1) ≡ 1 (mod p)
        let p = bn("ffffffffffffffc5"); // 2^64 - 59, prime
        let ctx = MontCtx::new(&p).unwrap();
        for a in ["2", "3", "deadbeef", "123456789abcdef"] {
            let a = bn(a);
            assert_eq!(ctx.mod_exp(&a, &p.sub(&Bn::one())), Bn::one(), "base {a:?}");
        }
    }

    #[test]
    fn montgomery_matches_simple_exponentiation() {
        let n = bn("c0ffee0000000000000000000000000000000000000000000000000000000061");
        let ctx = MontCtx::new(&n).unwrap();
        let base = bn("123456789abcdef");
        let exp = bn("fedcba9876543210");
        assert_eq!(ctx.mod_exp(&base, &exp), base.mod_exp_simple(&exp, &n));
    }

    #[test]
    fn all_window_widths_agree() {
        let n = bn("fffffffffffffffffffffffffffffff1");
        let ctx = MontCtx::new(&n).unwrap();
        let base = bn("abcdef0123456789");
        let exp = bn("10001");
        let reference = ctx.mod_exp_window(&base, &exp, 1);
        for w in 2..=6 {
            assert_eq!(ctx.mod_exp_window(&base, &exp, w), reference, "window {w}");
        }
    }

    #[test]
    #[should_panic(expected = "window must be")]
    fn window_zero_panics() {
        let ctx = MontCtx::new(&Bn::from_u64(9)).unwrap();
        let _ = ctx.mod_exp_window(&Bn::one(), &Bn::one(), 0);
    }

    #[test]
    fn bn_mod_exp_even_modulus_falls_back() {
        let m = Bn::from_u64(100);
        assert_eq!(Bn::from_u64(7).mod_exp(&Bn::from_u64(3), &m), Bn::from_u64(43));
        assert_eq!(Bn::from_u64(7).mod_exp(&Bn::from_u64(0), &m), Bn::one());
        assert_eq!(Bn::from_u64(7).mod_exp(&Bn::from_u64(3), &Bn::one()), Bn::zero());
    }

    #[test]
    fn exponent_larger_than_modulus_bits() {
        let n = Bn::from_u64(101);
        let ctx = MontCtx::new(&n).unwrap();
        let exp = bn("123456789abcdef0123456789abcdef0");
        assert_eq!(ctx.mod_exp(&Bn::from_u64(3), &exp), Bn::from_u64(3).mod_exp_simple(&exp, &n));
    }

    #[test]
    fn scratch_exponentiation_matches_allocating_path() {
        let n = bn("c0ffee0000000000000000000000000000000000000000000000000000000061");
        let ctx = MontCtx::new(&n).unwrap();
        let mut scratch = MontScratch::new();
        for (base, exp) in [
            ("2", "10001"),
            ("123456789abcdef", "fedcba9876543210"),
            ("0", "5"),
            ("1", "ffffffffffffffff"),
            ("deadbeef", "0"),
        ] {
            let base = bn(base);
            let exp = bn(exp);
            assert_eq!(
                ctx.mod_exp_scratch(&base, &exp, &mut scratch),
                ctx.mod_exp(&base, &exp),
                "base {base:?} exp {exp:?}"
            );
        }
    }

    #[test]
    fn one_scratch_serves_multiple_moduli() {
        // The batch decrypt path interleaves mod-p and mod-q halves through
        // one scratch; buffers must not leak state across moduli.
        let p = bn("ffffffffffffffc5");
        let q = bn("fffffffffffffffffffffffffffffff1");
        let ctx_p = MontCtx::new(&p).unwrap();
        let ctx_q = MontCtx::new(&q).unwrap();
        let mut scratch = MontScratch::new();
        let base = bn("123456789abcdef");
        let exp = bn("abcdef123");
        for _ in 0..3 {
            assert_eq!(
                ctx_p.mod_exp_scratch(&base, &exp, &mut scratch),
                ctx_p.mod_exp(&base, &exp)
            );
            assert_eq!(
                ctx_q.mod_exp_scratch(&base, &exp, &mut scratch),
                ctx_q.mod_exp(&base, &exp)
            );
        }
    }

    #[test]
    fn counters_see_hot_functions() {
        use sslperf_profile::counters;
        let n = bn("fffffffffffffffffffffffffffffff1");
        // The paper-faithful u32 path attributes to the OpenSSL names …
        let ctx32 = MontCtx::with_limb_width(&n, LimbWidth::U32).unwrap();
        let (_, snap) = counters::counted(|| {
            let _ = ctx32.mod_exp(&bn("12345"), &bn("10001"));
        });
        assert!(snap.calls("bn_mul_add_words") > 0);
        assert!(snap.calls("BN_from_montgomery") > 0);
        assert_eq!(snap.calls("bn_mul_add_words64"), 0);
        // … and the u64 path to the 64-suffixed twins, never mixing.
        let ctx64 = MontCtx::with_limb_width(&n, LimbWidth::U64).unwrap();
        let (_, snap) = counters::counted(|| {
            let _ = ctx64.mod_exp(&bn("12345"), &bn("10001"));
        });
        assert!(snap.calls("bn_mul_add_words64") > 0);
        assert!(snap.calls("BN_from_montgomery") > 0);
        assert_eq!(snap.calls("bn_mul_add_words"), 0);
    }

    #[test]
    fn limb_widths_agree_on_every_operation() {
        let n = bn("c0ffee0000000000000000000000000000000000000000000000000000000061");
        let ctx32 = MontCtx::with_limb_width(&n, LimbWidth::U32).unwrap();
        let ctx64 = MontCtx::with_limb_width(&n, LimbWidth::U64).unwrap();
        assert_eq!(ctx32.limb_width(), LimbWidth::U32);
        assert_eq!(ctx64.limb_width(), LimbWidth::U64);
        let a = bn("123456789abcdef0fedcba9876543210");
        let b = bn("deadbeefcafebabe0123456789abcdef");
        // Domain round trip and plain-domain results must be bit-identical.
        assert_eq!(ctx32.from_mont(&ctx32.to_mont(&a)), ctx64.from_mont(&ctx64.to_mont(&a)));
        let m32 = (ctx32.to_mont(&a), ctx32.to_mont(&b));
        let m64 = (ctx64.to_mont(&a), ctx64.to_mont(&b));
        assert_eq!(
            ctx32.from_mont(&ctx32.mont_mul(&m32.0, &m32.1)),
            ctx64.from_mont(&ctx64.mont_mul(&m64.0, &m64.1))
        );
        assert_eq!(
            ctx32.from_mont(&ctx32.mont_sqr(&m32.0)),
            ctx64.from_mont(&ctx64.mont_sqr(&m64.0))
        );
        for exp in ["0", "1", "2", "10001", "fedcba9876543210fedcba9876543210"] {
            let exp = bn(exp);
            assert_eq!(ctx32.mod_exp(&a, &exp), ctx64.mod_exp(&a, &exp), "exp {exp:?}");
        }
    }

    #[test]
    fn u64_engine_handles_single_limb_moduli() {
        // k64 = 1: the smallest fixed-width shape, where the carry ripple
        // in the reduction has no headroom.
        for n in ["9", "ffffffffffffffc5", "fffffffb"] {
            let n = bn(n);
            let ctx32 = MontCtx::with_limb_width(&n, LimbWidth::U32).unwrap();
            let ctx64 = MontCtx::with_limb_width(&n, LimbWidth::U64).unwrap();
            let base = bn("123456789");
            let exp = bn("abcdef");
            assert_eq!(ctx32.mod_exp(&base, &exp), ctx64.mod_exp(&base, &exp), "modulus {n:?}");
        }
    }

    #[test]
    fn scratch_serves_both_widths_interleaved() {
        let n = bn("fffffffffffffffffffffffffffffff1");
        let ctx32 = MontCtx::with_limb_width(&n, LimbWidth::U32).unwrap();
        let ctx64 = MontCtx::with_limb_width(&n, LimbWidth::U64).unwrap();
        let mut scratch = MontScratch::new();
        let base = bn("123456789abcdef");
        let exp = bn("abcdef123");
        let want = ctx32.mod_exp(&base, &exp);
        for _ in 0..3 {
            assert_eq!(ctx32.mod_exp_scratch(&base, &exp, &mut scratch), want);
            assert_eq!(ctx64.mod_exp_scratch(&base, &exp, &mut scratch), want);
        }
    }
}
