//! 64-bit-limb word kernels with `u128` accumulators.
//!
//! These mirror the u32 kernels in [`words`](crate::words) one for one, but
//! each loop iteration moves a 64-bit limb through a 128-bit accumulator —
//! halving the iteration count and the carry chains of every O(n²) bignum
//! operation. A 1024-bit Montgomery operand is 16 limbs here instead of 32
//! words, so the `bn_mul_add_words` inner loop that dominates the paper's
//! Table 8 runs a quarter as many multiply–accumulate steps.
//!
//! The kernels report to [`sslperf_profile::counters`] under `…64`-suffixed
//! names (`bn_mul_add_words64`, …) so the u32 path keeps the paper-faithful
//! Table 8 attribution while the u64 path stays measurable on its own.

use sslperf_profile::counters;

/// `rp[i] += ap[i] * w` over 64-bit limbs; returns the final carry.
///
/// # Panics
///
/// Panics if `rp` is shorter than `ap`.
pub fn bn_mul_add_words(rp: &mut [u64], ap: &[u64], w: u64) -> u64 {
    counters::count("bn_mul_add_words64", ap.len() as u64);
    assert!(rp.len() >= ap.len(), "result slice too short");
    let w = u128::from(w);
    let mut carry = 0u128;
    for (r, &a) in rp.iter_mut().zip(ap) {
        // max: (2^64-1)^2 + 2·(2^64-1) = 2^128 - 1, exactly fills the u128.
        let t = u128::from(a) * w + u128::from(*r) + carry;
        *r = t as u64;
        carry = t >> 64;
    }
    carry as u64
}

/// `rp[i] = ap[i] * w` over 64-bit limbs; returns the final carry.
///
/// # Panics
///
/// Panics if `rp` is shorter than `ap`.
pub fn bn_mul_words(rp: &mut [u64], ap: &[u64], w: u64) -> u64 {
    counters::count("bn_mul_words64", ap.len() as u64);
    assert!(rp.len() >= ap.len(), "result slice too short");
    let w = u128::from(w);
    let mut carry = 0u128;
    for (r, &a) in rp.iter_mut().zip(ap) {
        let t = u128::from(a) * w + carry;
        *r = t as u64;
        carry = t >> 64;
    }
    carry as u64
}

/// `rp[2i], rp[2i+1] = lo(ap[i]²), hi(ap[i]²)` — squaring diagonal terms.
///
/// # Panics
///
/// Panics if `rp` is shorter than `2 * ap.len()`.
pub fn bn_sqr_words(rp: &mut [u64], ap: &[u64]) {
    counters::count("bn_sqr_words64", ap.len() as u64);
    assert!(rp.len() >= 2 * ap.len(), "result slice too short");
    for (i, &a) in ap.iter().enumerate() {
        let t = u128::from(a) * u128::from(a);
        rp[2 * i] = t as u64;
        rp[2 * i + 1] = (t >> 64) as u64;
    }
}

/// `rp[i] = ap[i] + bp[i]` over 64-bit limbs; returns the final carry.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn bn_add_words(rp: &mut [u64], ap: &[u64], bp: &[u64]) -> u64 {
    counters::count("bn_add_words64", ap.len() as u64);
    assert_eq!(ap.len(), bp.len(), "operand length mismatch");
    assert!(rp.len() >= ap.len(), "result slice too short");
    let mut carry = 0u64;
    for ((r, &a), &b) in rp.iter_mut().zip(ap).zip(bp) {
        let (s1, c1) = a.overflowing_add(b);
        let (s2, c2) = s1.overflowing_add(carry);
        *r = s2;
        carry = u64::from(c1) + u64::from(c2);
    }
    carry
}

/// `rp[i] = ap[i] - bp[i]` over 64-bit limbs; returns the final borrow
/// (1 if `b > a`).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn bn_sub_words(rp: &mut [u64], ap: &[u64], bp: &[u64]) -> u64 {
    counters::count("bn_sub_words64", ap.len() as u64);
    assert_eq!(ap.len(), bp.len(), "operand length mismatch");
    assert!(rp.len() >= ap.len(), "result slice too short");
    let mut borrow = 0u64;
    for ((r, &a), &b) in rp.iter_mut().zip(ap).zip(bp) {
        let (d1, b1) = a.overflowing_sub(b);
        let (d2, b2) = d1.overflowing_sub(borrow);
        *r = d2;
        borrow = u64::from(b1) + u64::from(b2);
    }
    borrow
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mul_add_basic() {
        let mut r = [1u64, 2];
        let carry = bn_mul_add_words(&mut r, &[3, 4], 5);
        assert_eq!(r, [16, 22]);
        assert_eq!(carry, 0);
    }

    #[test]
    fn mul_add_saturated_carry_chain() {
        // All operands at the u64 maximum: each per-limb accumulation is
        // exactly 2^128 - 1, the largest value the u128 accumulator holds.
        // r + a·w = (2^128-1) + (2^128-1)(2^64-1) = (2^128-1)·2^64,
        // whose limbs are [0, MAX] with final carry MAX.
        let mut r = [u64::MAX, u64::MAX];
        let carry = bn_mul_add_words(&mut r, &[u64::MAX, u64::MAX], u64::MAX);
        assert_eq!(r, [0, u64::MAX]);
        assert_eq!(carry, u64::MAX);
    }

    #[test]
    fn mul_words_overwrites() {
        let mut r = [9u64, 9];
        let carry = bn_mul_words(&mut r, &[u64::MAX, 1], 2);
        assert_eq!(r, [u64::MAX - 1, 3]);
        assert_eq!(carry, 0);
    }

    #[test]
    fn sqr_words_diagonal() {
        let mut r = [0u64; 4];
        bn_sqr_words(&mut r, &[3, u64::MAX]);
        assert_eq!(r[0..2], [9, 0]);
        // (2^64 - 1)^2 = 2^128 - 2^65 + 1
        assert_eq!(r[2..4], [1, u64::MAX - 1]);
    }

    #[test]
    fn add_words_carry() {
        let mut r = [0u64; 2];
        let carry = bn_add_words(&mut r, &[u64::MAX, u64::MAX], &[1, 0]);
        assert_eq!(r, [0, 0]);
        assert_eq!(carry, 1);
    }

    #[test]
    fn sub_words_borrow() {
        let mut r = [0u64; 2];
        let borrow = bn_sub_words(&mut r, &[0, 1], &[1, 0]);
        assert_eq!(r, [u64::MAX, 0]);
        assert_eq!(borrow, 0);
        let borrow = bn_sub_words(&mut r, &[0, 0], &[1, 0]);
        assert_eq!(r, [u64::MAX, u64::MAX]);
        assert_eq!(borrow, 1);
    }

    #[test]
    fn kernels_report_suffixed_counters() {
        use sslperf_profile::counters;
        let (_, snap) = counters::counted(|| {
            let mut r = [0u64; 8];
            let _ = bn_mul_add_words(&mut r, &[1; 8], 2);
            let _ = bn_sub_words(&mut r.clone(), &r, &r);
        });
        assert_eq!(snap.calls("bn_mul_add_words64"), 1);
        assert_eq!(snap.units("bn_mul_add_words64"), 8);
        assert_eq!(snap.units("bn_sub_words64"), 8);
        // The u32 names stay silent: attribution never mixes limb widths.
        assert_eq!(snap.calls("bn_mul_add_words"), 0);
    }
}
