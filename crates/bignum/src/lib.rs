//! Multi-precision integer arithmetic mirroring OpenSSL's `BN` library.
//!
//! The paper attributes ~97% of RSA decryption to multi-precision
//! "computation" (Table 7) and names the hot functions — `bn_mul_add_words`,
//! `bn_sub_words`, `BN_from_montgomery`, `bn_add_words` … (Table 8). To
//! reproduce those results the arithmetic here keeps OpenSSL's structure:
//!
//! * numbers are little-endian arrays of **32-bit words** (the paper analyzes
//!   32-bit x86 code);
//! * all O(n²) work funnels through the word kernels in [`words`], which
//!   carry the OpenSSL names and report call/word counts to
//!   [`sslperf_profile::counters`];
//! * modular exponentiation uses Montgomery multiplication
//!   ([`MontCtx`]) with a sliding window, like `BN_mod_exp_mont`.
//!
//! Montgomery contexts additionally carry a raw-speed engine over **64-bit
//! limbs** with `u128` accumulators ([`words64`]): [`MontCtx`] picks the limb
//! width at construction ([`LimbWidth`], default [`default_limb_width`]),
//! keeping the paper-faithful u32 path compiled and selectable so the
//! profile counters can still reconstruct Table 8.
//!
//! # Examples
//!
//! ```
//! use sslperf_bignum::Bn;
//!
//! let a = Bn::from_u64(1 << 40);
//! let b = Bn::from_u64(1 << 20);
//! assert_eq!(a.mul(&b), Bn::from_hex("1000000000000000").unwrap());
//! let (q, r) = a.div_rem(&b);
//! assert_eq!(q, Bn::from_u64(1 << 20));
//! assert!(r.is_zero());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arith;
mod div;
mod gcd;
mod mont;
mod prime;
pub mod words;
pub mod words64;

pub use gcd::ExtendedGcd;
pub use mont::{MontCtx, MontScratch};
pub use prime::{generate_prime, is_probable_prime, EntropySource};

use std::cmp::Ordering;
use std::fmt;
use std::sync::OnceLock;

/// Limb width of a Montgomery arithmetic engine.
///
/// [`LimbWidth::U32`] is the paper-faithful layout (32-bit x86 words, Table
/// 8/9 counter attribution); [`LimbWidth::U64`] is the raw-speed layout
/// (64-bit limbs, `u128` accumulators, one quarter the inner-loop steps).
/// Both produce bit-identical results — pinned by the differential proptests
/// and the wire-flight pins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LimbWidth {
    /// 32-bit words, `u64` accumulators — the paper's profile subject.
    U32,
    /// 64-bit limbs, `u128` accumulators — the raw-speed default.
    U64,
}

impl LimbWidth {
    /// Short lowercase name ("u32" / "u64"), as used by `SSLPERF_LIMBS` and
    /// the bench report.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            LimbWidth::U32 => "u32",
            LimbWidth::U64 => "u64",
        }
    }
}

/// The process-wide default limb width for new [`MontCtx`] instances.
///
/// Reads the `SSLPERF_LIMBS` environment variable once: `u32` forces the
/// paper-faithful path, anything else (including unset) selects `u64`.
#[must_use]
pub fn default_limb_width() -> LimbWidth {
    static WIDTH: OnceLock<LimbWidth> = OnceLock::new();
    *WIDTH.get_or_init(|| match std::env::var("SSLPERF_LIMBS").as_deref() {
        Ok("u32") => LimbWidth::U32,
        _ => LimbWidth::U64,
    })
}

/// Errors returned by fallible `Bn` operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BnError {
    /// Division or modular reduction by zero.
    DivideByZero,
    /// The operand has no modular inverse (gcd with the modulus is not 1).
    NoInverse,
    /// A hex string contained a non-hexadecimal character.
    ParseHex,
    /// The modulus for a Montgomery context must be odd and nonzero.
    EvenModulus,
}

impl fmt::Display for BnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let msg = match self {
            BnError::DivideByZero => "division by zero",
            BnError::NoInverse => "operand has no modular inverse",
            BnError::ParseHex => "invalid hexadecimal digit",
            BnError::EvenModulus => "montgomery modulus must be odd and nonzero",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for BnError {}

/// An arbitrary-precision unsigned integer stored as little-endian 32-bit
/// words.
///
/// The representation is always *normalized*: no trailing zero words, and
/// zero is the empty word vector.
///
/// # Examples
///
/// ```
/// use sslperf_bignum::Bn;
///
/// let n = Bn::from_bytes_be(&[0x01, 0x00]); // 256
/// assert_eq!(n.to_u64(), Some(256));
/// assert_eq!(n.bit_len(), 9);
/// assert_eq!(n.to_bytes_be(), vec![0x01, 0x00]);
/// ```
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct Bn {
    pub(crate) words: Vec<u32>,
}

impl Bn {
    /// The value zero.
    #[must_use]
    pub fn zero() -> Self {
        Bn { words: Vec::new() }
    }

    /// The value one.
    #[must_use]
    pub fn one() -> Self {
        Bn { words: vec![1] }
    }

    /// Creates a value from a `u64`.
    #[must_use]
    pub fn from_u64(v: u64) -> Self {
        let mut bn = Bn { words: vec![v as u32, (v >> 32) as u32] };
        bn.normalize();
        bn
    }

    /// Creates a value from little-endian words (the internal layout).
    #[must_use]
    pub fn from_words(words: &[u32]) -> Self {
        let mut bn = Bn { words: words.to_vec() };
        bn.normalize();
        bn
    }

    /// Parses a big-endian hexadecimal string (case-insensitive, no prefix).
    ///
    /// # Errors
    ///
    /// Returns [`BnError::ParseHex`] on any non-hex character.
    pub fn from_hex(s: &str) -> Result<Self, BnError> {
        let mut bn = Bn::zero();
        for ch in s.chars() {
            let digit = ch.to_digit(16).ok_or(BnError::ParseHex)?;
            bn = bn.shl(4);
            if digit != 0 {
                bn = bn.add(&Bn::from_u64(u64::from(digit)));
            }
        }
        Ok(bn)
    }

    /// Converts a big-endian byte string into an integer — OpenSSL's
    /// `BN_bin2bn`, the paper's *data→bn* step (Table 7, step 2).
    #[must_use]
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        let mut words = Vec::with_capacity(bytes.len() / 4 + 1);
        let mut iter = bytes.rchunks(4);
        for chunk in &mut iter {
            let mut w = 0u32;
            for &b in chunk {
                w = (w << 8) | u32::from(b);
            }
            words.push(w);
        }
        let mut bn = Bn { words };
        bn.normalize();
        bn
    }

    /// Serializes to a minimal big-endian byte string — OpenSSL's
    /// `BN_bn2bin`, the paper's *bn→data* step (Table 7, step 5). Zero
    /// serializes to an empty vector.
    #[must_use]
    pub fn to_bytes_be(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.words.len() * 4);
        for w in self.words.iter().rev() {
            out.extend_from_slice(&w.to_be_bytes());
        }
        let skip = out.iter().take_while(|&&b| b == 0).count();
        out.split_off(skip)
    }

    /// Serializes to exactly `len` big-endian bytes, left-padding with zeros.
    ///
    /// # Panics
    ///
    /// Panics if the value does not fit in `len` bytes.
    #[must_use]
    pub fn to_bytes_be_padded(&self, len: usize) -> Vec<u8> {
        let bytes = self.to_bytes_be();
        assert!(bytes.len() <= len, "value needs {} bytes, got {len}", bytes.len());
        let mut out = vec![0u8; len - bytes.len()];
        out.extend_from_slice(&bytes);
        out
    }

    /// Renders as lowercase big-endian hex ("0" for zero).
    #[must_use]
    pub fn to_hex(&self) -> String {
        if self.is_zero() {
            return "0".to_owned();
        }
        let mut s = String::new();
        for (i, w) in self.words.iter().rev().enumerate() {
            if i == 0 {
                s.push_str(&format!("{w:x}"));
            } else {
                s.push_str(&format!("{w:08x}"));
            }
        }
        s
    }

    /// Returns the value as `u64` if it fits.
    #[must_use]
    pub fn to_u64(&self) -> Option<u64> {
        match self.words.len() {
            0 => Some(0),
            1 => Some(u64::from(self.words[0])),
            2 => Some(u64::from(self.words[0]) | (u64::from(self.words[1]) << 32)),
            _ => None,
        }
    }

    /// True when the value is zero.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.words.is_empty()
    }

    /// True when the value is one.
    #[must_use]
    pub fn is_one(&self) -> bool {
        self.words.len() == 1 && self.words[0] == 1
    }

    /// True when the lowest bit is set.
    #[must_use]
    pub fn is_odd(&self) -> bool {
        self.words.first().is_some_and(|w| w & 1 == 1)
    }

    /// Number of significant bits (0 for zero).
    #[must_use]
    pub fn bit_len(&self) -> usize {
        match self.words.last() {
            None => 0,
            Some(top) => (self.words.len() - 1) * 32 + (32 - top.leading_zeros() as usize),
        }
    }

    /// Number of significant 32-bit words.
    #[must_use]
    pub fn word_len(&self) -> usize {
        self.words.len()
    }

    /// Returns bit `i` (little-endian numbering; out of range is 0).
    #[must_use]
    pub fn bit(&self, i: usize) -> bool {
        self.words.get(i / 32).is_some_and(|w| (w >> (i % 32)) & 1 == 1)
    }

    /// A borrowed view of the little-endian words.
    #[must_use]
    pub fn as_words(&self) -> &[u32] {
        &self.words
    }

    /// Copies another value into this one, reusing the allocation —
    /// OpenSSL's `BN_copy` (visible in the paper's Table 8).
    pub fn copy_from(&mut self, other: &Bn) {
        sslperf_profile::counters::count("BN_copy", other.words.len() as u64);
        self.words.clear();
        self.words.extend_from_slice(&other.words);
    }

    pub(crate) fn normalize(&mut self) {
        while self.words.last() == Some(&0) {
            self.words.pop();
        }
    }
}

impl Ord for Bn {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.words.len().cmp(&other.words.len()) {
            Ordering::Equal => {
                for (a, b) in self.words.iter().rev().zip(other.words.iter().rev()) {
                    match a.cmp(b) {
                        Ordering::Equal => continue,
                        non_eq => return non_eq,
                    }
                }
                Ordering::Equal
            }
            non_eq => non_eq,
        }
    }
}

impl PartialOrd for Bn {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl From<u32> for Bn {
    fn from(v: u32) -> Self {
        Bn::from_u64(u64::from(v))
    }
}

impl From<u64> for Bn {
    fn from(v: u64) -> Self {
        Bn::from_u64(v)
    }
}

impl fmt::Debug for Bn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bn(0x{})", self.to_hex())
    }
}

impl fmt::Display for Bn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{}", self.to_hex())
    }
}

impl fmt::LowerHex for Bn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_one() {
        assert!(Bn::zero().is_zero());
        assert!(Bn::one().is_one());
        assert!(!Bn::zero().is_one());
        assert_eq!(Bn::zero().bit_len(), 0);
        assert_eq!(Bn::one().bit_len(), 1);
        assert_eq!(Bn::zero(), Bn::default());
    }

    #[test]
    fn u64_round_trip() {
        for v in [0u64, 1, 0xffff_ffff, 0x1_0000_0000, u64::MAX] {
            assert_eq!(Bn::from_u64(v).to_u64(), Some(v));
        }
        let big = Bn::from_hex("10000000000000000").unwrap(); // 2^64
        assert_eq!(big.to_u64(), None);
    }

    #[test]
    fn bytes_round_trip() {
        let cases: &[&[u8]] = &[&[], &[1], &[0x12, 0x34], &[0xff; 13], &[1, 0, 0, 0, 0]];
        for &bytes in cases {
            let bn = Bn::from_bytes_be(bytes);
            let back = bn.to_bytes_be();
            // Leading zeros are dropped in the minimal form.
            let skip = bytes.iter().take_while(|&&b| b == 0).count();
            assert_eq!(back, &bytes[skip..]);
        }
    }

    #[test]
    fn padded_bytes() {
        let bn = Bn::from_u64(0x1234);
        assert_eq!(bn.to_bytes_be_padded(4), vec![0, 0, 0x12, 0x34]);
        assert_eq!(Bn::zero().to_bytes_be_padded(2), vec![0, 0]);
    }

    #[test]
    #[should_panic(expected = "value needs")]
    fn padded_bytes_too_small_panics() {
        let _ = Bn::from_u64(0x123456).to_bytes_be_padded(2);
    }

    #[test]
    fn hex_round_trip() {
        for s in ["0", "1", "ff", "deadbeef", "123456789abcdef0fedcba9876543210"] {
            let bn = Bn::from_hex(s).unwrap();
            assert_eq!(bn.to_hex(), *s);
        }
        assert_eq!(Bn::from_hex("00ff").unwrap().to_hex(), "ff");
        assert!(Bn::from_hex("xyz").is_err());
    }

    #[test]
    fn ordering() {
        let a = Bn::from_u64(5);
        let b = Bn::from_u64(500);
        let c = Bn::from_hex("ffffffffffffffffff").unwrap();
        assert!(a < b);
        assert!(b < c);
        assert_eq!(a.cmp(&Bn::from_u64(5)), Ordering::Equal);
    }

    #[test]
    fn bits() {
        let bn = Bn::from_u64(0b1010);
        assert!(!bn.bit(0));
        assert!(bn.bit(1));
        assert!(!bn.bit(2));
        assert!(bn.bit(3));
        assert!(!bn.bit(1000));
        assert!(!Bn::from_u64(6).is_odd());
        assert!(Bn::from_u64(7).is_odd());
    }

    #[test]
    fn normalization_strips_zero_words() {
        let bn = Bn::from_words(&[1, 0, 0]);
        assert_eq!(bn.word_len(), 1);
        assert_eq!(bn, Bn::one());
    }

    #[test]
    fn copy_from_reuses() {
        let src = Bn::from_hex("abcdef0123456789").unwrap();
        let mut dst = Bn::from_u64(7);
        dst.copy_from(&src);
        assert_eq!(dst, src);
    }

    #[test]
    fn display_formats() {
        let bn = Bn::from_u64(0xbeef);
        assert_eq!(format!("{bn}"), "0xbeef");
        assert_eq!(format!("{bn:?}"), "Bn(0xbeef)");
        assert_eq!(format!("{bn:x}"), "beef");
        assert_eq!(format!("{}", Bn::zero()), "0x0");
    }

    #[test]
    fn error_display() {
        assert_eq!(BnError::DivideByZero.to_string(), "division by zero");
        assert_eq!(BnError::ParseHex.to_string(), "invalid hexadecimal digit");
    }
}
