//! Addition, subtraction, multiplication, squaring and shifts.

use crate::words::{
    bn_add_word, bn_add_words, bn_mul_add_words, bn_mul_words, bn_sqr_words, bn_sub_words,
};
use crate::Bn;
use sslperf_profile::counters;

impl Bn {
    /// Returns `self + other`.
    #[must_use]
    pub fn add(&self, other: &Bn) -> Bn {
        let (long, short) =
            if self.words.len() >= other.words.len() { (self, other) } else { (other, self) };
        let mut words = long.words.clone();
        let carry = bn_add_words(
            &mut words[..short.words.len()],
            &long.words[..short.words.len()],
            &short.words,
        );
        if carry != 0 {
            let c2 = bn_add_word(&mut words[short.words.len()..], carry);
            if c2 != 0 {
                words.push(c2);
            }
        }
        let mut r = Bn { words };
        r.normalize();
        r
    }

    /// Returns `self - other`.
    ///
    /// This is OpenSSL's `BN_usub` (unsigned subtract), one of the paper's
    /// Table 8 functions.
    ///
    /// # Panics
    ///
    /// Panics if `other > self`; unsigned subtraction cannot go negative.
    #[must_use]
    pub fn sub(&self, other: &Bn) -> Bn {
        counters::count("BN_usub", self.words.len() as u64);
        assert!(self >= other, "unsigned subtraction underflow");
        let mut words = self.words.clone();
        let borrow = bn_sub_words(
            &mut words[..other.words.len()],
            &self.words[..other.words.len()],
            &other.words,
        );
        if borrow != 0 {
            // Ripple the borrow through the upper words.
            let mut b = borrow;
            for w in words[other.words.len()..].iter_mut() {
                let (nw, under) = w.overflowing_sub(b);
                *w = nw;
                b = u32::from(under);
                if b == 0 {
                    break;
                }
            }
            debug_assert_eq!(b, 0, "underflow already excluded by the assert");
        }
        let mut r = Bn { words };
        r.normalize();
        r
    }

    /// Returns `self * other` by schoolbook multiplication over
    /// [`bn_mul_add_words`] — OpenSSL's `bn_mul_normal`.
    #[must_use]
    pub fn mul(&self, other: &Bn) -> Bn {
        if self.is_zero() || other.is_zero() {
            return Bn::zero();
        }
        counters::count("BN_mul", self.words.len() as u64);
        let mut words = vec![0u32; self.words.len() + other.words.len()];
        for (i, &w) in other.words.iter().enumerate() {
            let carry = bn_mul_add_words(&mut words[i..i + self.words.len()], &self.words, w);
            words[i + self.words.len()] = carry;
        }
        let mut r = Bn { words };
        r.normalize();
        r
    }

    /// Returns `self * self` — OpenSSL's `BN_sqr` (Table 8), using the
    /// dedicated `bn_sqr_normal` form rather than the generic multiply.
    ///
    /// A square only needs the upper triangle of the schoolbook product:
    /// the cross products `a[i]·a[j]` for `i < j` are computed once via
    /// [`bn_mul_words`]/[`bn_mul_add_words`], the diagonal `a[i]²` terms
    /// come from [`bn_sqr_words`], and a single fused pass assembles
    /// `2·cross + diagonal` with carry — roughly half the word
    /// multiplications of `bn_mul_normal` on equal operands, which is why
    /// Montgomery exponentiation (mostly squarings) leans on it.
    #[must_use]
    pub fn sqr(&self) -> Bn {
        counters::count("BN_sqr", self.words.len() as u64);
        let n = self.words.len();
        if n == 0 {
            return Bn::zero();
        }
        let mut cross = vec![0u32; 2 * n];
        let mut diag = vec![0u32; 2 * n];
        Self::sqr_into(&self.words, &mut cross, &mut diag);
        let mut r = Bn { words: cross };
        r.normalize();
        r
    }

    /// `bn_sqr_normal`: writes `a²` into `cross` (both buffers must hold
    /// `2 * a.len()` words; `diag` is scratch for the diagonal terms).
    pub(crate) fn sqr_into(a: &[u32], cross: &mut [u32], diag: &mut [u32]) {
        let n = a.len();
        debug_assert!(cross.len() >= 2 * n && diag.len() >= 2 * n);
        cross[..2 * n].fill(0);
        // Upper triangle: row i contributes a[i] · a[i+1..] at offset 2i+1.
        // Row i's carry lands in cross[n+i], which no earlier row reaches.
        if n > 1 {
            let carry = bn_mul_words(&mut cross[1..n], &a[1..], a[0]);
            cross[n] = carry;
            for i in 1..n - 1 {
                let len = n - 1 - i;
                let carry =
                    bn_mul_add_words(&mut cross[2 * i + 1..2 * i + 1 + len], &a[i + 1..], a[i]);
                cross[n + i] = carry;
            }
        }
        bn_sqr_words(&mut diag[..2 * n], a);
        // Fused final pass: r = 2·cross + diag. OpenSSL doubles in place
        // with an aliased bn_add_words(r, r, r); a single widening pass is
        // the borrow-checker-friendly equivalent.
        let mut carry = 0u64;
        for (c, &d) in cross[..2 * n].iter_mut().zip(&diag[..2 * n]) {
            let t = 2 * u64::from(*c) + u64::from(d) + carry;
            *c = t as u32;
            carry = t >> 32;
        }
        debug_assert_eq!(carry, 0, "a² always fits 2n words");
    }

    /// Returns `self << bits`.
    #[must_use]
    pub fn shl(&self, bits: usize) -> Bn {
        if self.is_zero() || bits == 0 {
            return self.clone();
        }
        let word_shift = bits / 32;
        let bit_shift = bits % 32;
        let mut words = vec![0u32; self.words.len() + word_shift + 1];
        for (i, &w) in self.words.iter().enumerate() {
            let dst = i + word_shift;
            words[dst] |= w << bit_shift;
            if bit_shift > 0 {
                words[dst + 1] |= (u64::from(w) >> (32 - bit_shift)) as u32;
            }
        }
        let mut r = Bn { words };
        r.normalize();
        r
    }

    /// Returns `self >> bits`.
    #[must_use]
    pub fn shr(&self, bits: usize) -> Bn {
        let word_shift = bits / 32;
        if word_shift >= self.words.len() {
            return Bn::zero();
        }
        let bit_shift = bits % 32;
        let mut words = Vec::with_capacity(self.words.len() - word_shift);
        for i in word_shift..self.words.len() {
            let mut w = self.words[i] >> bit_shift;
            if bit_shift > 0 {
                if let Some(&hi) = self.words.get(i + 1) {
                    w |= (u64::from(hi) << (32 - bit_shift)) as u32;
                }
            }
            words.push(w);
        }
        let mut r = Bn { words };
        r.normalize();
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bn(s: &str) -> Bn {
        Bn::from_hex(s).unwrap()
    }

    #[test]
    fn add_with_carry_across_words() {
        let a = bn("ffffffffffffffff");
        let b = Bn::one();
        assert_eq!(a.add(&b), bn("10000000000000000"));
        // commutes
        assert_eq!(b.add(&a), bn("10000000000000000"));
    }

    #[test]
    fn add_zero_is_identity() {
        let a = bn("123456789abcdef");
        assert_eq!(a.add(&Bn::zero()), a);
        assert_eq!(Bn::zero().add(&a), a);
    }

    #[test]
    fn sub_inverse_of_add() {
        let a = bn("fedcba9876543210f00d");
        let b = bn("123456789");
        assert_eq!(a.add(&b).sub(&b), a);
        assert_eq!(a.sub(&a), Bn::zero());
    }

    #[test]
    fn sub_borrow_across_many_words() {
        let a = bn("100000000000000000000000");
        let b = Bn::one();
        assert_eq!(a.sub(&b), bn("fffffffffffffffffffffff"));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = Bn::one().sub(&Bn::from_u64(2));
    }

    #[test]
    fn mul_known_values() {
        assert_eq!(bn("ffffffff").mul(&bn("ffffffff")), bn("fffffffe00000001"));
        assert_eq!(
            bn("123456789abcdef").mul(&bn("fedcba987654321")),
            bn("121fa00ad77d7422236d88fe5618cf")
        );
        assert_eq!(bn("deadbeef").mul(&Bn::zero()), Bn::zero());
        assert_eq!(bn("deadbeef").mul(&Bn::one()), bn("deadbeef"));
    }

    #[test]
    fn sqr_matches_mul() {
        let a = bn("123456789abcdef0123456789");
        assert_eq!(a.sqr(), a.mul(&a));
    }

    #[test]
    fn sqr_adversarial_shapes_match_mul() {
        // The dedicated bn_sqr_normal path must agree with the generic
        // multiply on every carry-heavy shape: single word, all-ones limbs,
        // powers of two, and long mixed operands.
        let cases = [
            "0",
            "1",
            "2",
            "ffffffff",
            "100000000",
            "ffffffffffffffff",
            "ffffffffffffffffffffffffffffffffffffffffffffffff",
            "80000000000000000000000000000001",
            "123456789abcdef0fedcba9876543210deadbeefcafebabe0123456789abcdef",
        ];
        for s in cases {
            let a = bn(s);
            assert_eq!(a.sqr(), a.mul(&a), "operand {s}");
        }
    }

    #[test]
    fn shl_shr_round_trip() {
        let a = bn("deadbeefcafebabe");
        for bits in [0usize, 1, 31, 32, 33, 64, 100] {
            assert_eq!(a.shl(bits).shr(bits), a, "bits {bits}");
        }
    }

    #[test]
    fn shl_is_mul_by_power_of_two() {
        let a = bn("abcdef");
        assert_eq!(a.shl(4), a.mul(&Bn::from_u64(16)));
        assert_eq!(a.shl(33), a.mul(&bn("200000000")));
    }

    #[test]
    fn shr_past_end_is_zero() {
        assert_eq!(bn("ff").shr(8), Bn::zero());
        assert_eq!(bn("ff").shr(1000), Bn::zero());
        assert_eq!(Bn::zero().shr(5), Bn::zero());
        assert_eq!(Bn::zero().shl(5), Bn::zero());
    }
}
