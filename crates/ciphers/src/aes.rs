//! FIPS 197 AES with the fused round-lookup tables the paper analyzes.
//!
//! The S-box and the `Te`/`Td` tables are *derived* at first use from the
//! GF(2⁸) field definition rather than hard-coded, then each encryption
//! round performs the 16 table lookups + XORs of the paper's Figure 5.
//!
//! The paper's §6.2(2) proposes a hardware table-lookup/round unit as the
//! fix for the AES kernel; modern x86 ships exactly that as AES-NI. The
//! cipher therefore carries two interchangeable round backends — the
//! portable fused tables above and an `AESENC`/`AESDEC` path selected via
//! [`AesBackend`] — which must be byte-identical on every block (the
//! differential tests in `tests/known_answer.rs` pin this).

use crate::{BlockCipher, CipherError};
use sslperf_profile::counters;
use std::sync::OnceLock;

/// GF(2⁸) multiplication modulo the AES polynomial x⁸+x⁴+x³+x+1.
fn gf_mul(mut a: u8, mut b: u8) -> u8 {
    let mut acc = 0u8;
    while b != 0 {
        if b & 1 != 0 {
            acc ^= a;
        }
        let hi = a & 0x80;
        a <<= 1;
        if hi != 0 {
            a ^= 0x1b;
        }
        b >>= 1;
    }
    acc
}

/// Multiplicative inverse in GF(2⁸) (0 maps to 0), by Fermat:
/// `a⁻¹ = a^254`.
fn gf_inv(a: u8) -> u8 {
    let mut result = 1u8;
    let mut base = a;
    let mut e = 254u32;
    while e > 0 {
        if e & 1 == 1 {
            result = gf_mul(result, base);
        }
        base = gf_mul(base, base);
        e >>= 1;
    }
    result
}

struct Tables {
    sbox: [u8; 256],
    inv_sbox: [u8; 256],
    /// Encryption tables: `te[j][x]` fuses SubBytes, ShiftRows and
    /// MixColumns for byte lane `j`.
    te: [[u32; 256]; 4],
    /// Decryption tables for the equivalent inverse cipher.
    td: [[u32; 256]; 4],
}

fn tables() -> &'static Tables {
    static TABLES: OnceLock<Tables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut sbox = [0u8; 256];
        let mut inv_sbox = [0u8; 256];
        #[allow(clippy::needless_range_loop)] // x is the value being mapped, not just an index
        for x in 0..256usize {
            let b = gf_inv(x as u8);
            let s = b
                ^ b.rotate_left(1)
                ^ b.rotate_left(2)
                ^ b.rotate_left(3)
                ^ b.rotate_left(4)
                ^ 0x63;
            sbox[x] = s;
            inv_sbox[s as usize] = x as u8;
        }
        let mut te = [[0u32; 256]; 4];
        let mut td = [[0u32; 256]; 4];
        for x in 0..256usize {
            let s = sbox[x];
            // Column of MixColumns applied to s in lane 0: [2s, s, s, 3s].
            let e = (u32::from(gf_mul(s, 2)) << 24)
                | (u32::from(s) << 16)
                | (u32::from(s) << 8)
                | u32::from(gf_mul(s, 3));
            let si = inv_sbox[x];
            // InvMixColumns column: [14s, 9s, 13s, 11s].
            let d = (u32::from(gf_mul(si, 14)) << 24)
                | (u32::from(gf_mul(si, 9)) << 16)
                | (u32::from(gf_mul(si, 13)) << 8)
                | u32::from(gf_mul(si, 11));
            for j in 0..4 {
                te[j][x] = e.rotate_right(8 * j as u32);
                td[j][x] = d.rotate_right(8 * j as u32);
            }
        }
        Tables { sbox, inv_sbox, te, td }
    })
}

/// The four encryption lookup tables (`Te0`–`Te3`), exposed so the ISA
/// simulator can load the identical tables into its memory.
#[must_use]
pub(crate) fn te_tables() -> &'static [[u32; 256]; 4] {
    &tables().te
}

/// The forward S-box, exposed for the ISA simulator's final AES round.
#[must_use]
pub(crate) fn sbox_table() -> &'static [u8; 256] {
    &tables().sbox
}

/// Which implementation of the AES block rounds an [`Aes`] instance uses.
///
/// Both backends share the key schedule and produce byte-identical blocks;
/// they differ only in how a round executes — 16 `Te`/`Td` lookups versus
/// one `AESENC`/`AESDEC` instruction. This is the software analogue of the
/// paper's §6.2(2) "custom round unit" proposal, and the
/// `kernel-speed` experiment measures the gap between them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AesBackend {
    /// Use AES-NI when the CPU supports it, else fall back to the tables.
    /// Setting `SSLPERF_AES=table` in the environment forces the fallback
    /// process-wide (read once, at the first `Auto` construction).
    Auto,
    /// Require the hardware round unit (x86-64 `AESENC`/`AESDEC`).
    Ni,
    /// Require the portable fused-table software rounds.
    Table,
}

impl AesBackend {
    /// Stable lowercase name, as used by `SSLPERF_AES` and bench reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            AesBackend::Auto => "auto",
            AesBackend::Ni => "ni",
            AesBackend::Table => "table",
        }
    }
}

/// Whether the hardware round unit exists on this CPU.
fn ni_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        ni::available()
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Resolves [`AesBackend::Auto`]: AES-NI if present, unless the
/// `SSLPERF_AES=table` override asks for the portable path. Cached so the
/// environment is consulted once per process, mirroring
/// `sslperf_bignum::default_limb_width`.
fn auto_uses_ni() -> bool {
    static CHOICE: OnceLock<bool> = OnceLock::new();
    *CHOICE.get_or_init(|| {
        !matches!(std::env::var("SSLPERF_AES").as_deref(), Ok("table")) && ni_available()
    })
}

const RCON: [u32; 10] = [
    0x0100_0000,
    0x0200_0000,
    0x0400_0000,
    0x0800_0000,
    0x1000_0000,
    0x2000_0000,
    0x4000_0000,
    0x8000_0000,
    0x1b00_0000,
    0x3600_0000,
];

fn sub_word(w: u32) -> u32 {
    let t = tables();
    (u32::from(t.sbox[(w >> 24) as usize]) << 24)
        | (u32::from(t.sbox[((w >> 16) & 0xff) as usize]) << 16)
        | (u32::from(t.sbox[((w >> 8) & 0xff) as usize]) << 8)
        | u32::from(t.sbox[(w & 0xff) as usize])
}

/// AES-128/192/256 with fused-table rounds.
///
/// The block operation is exposed in the paper's three parts so the Table 5
/// experiment can time them separately:
/// [`Aes::add_initial_round_key`] (part 1), [`Aes::main_rounds`] (part 2)
/// and [`Aes::final_round`] (part 3); [`Aes::encrypt_block`] composes them.
///
/// # Examples
///
/// ```
/// use sslperf_ciphers::{Aes, BlockCipher};
///
/// let aes = Aes::new(&[0u8; 16])?;
/// let mut block = *b"sixteen byte msg";
/// let original = block;
/// aes.encrypt_block(&mut block);
/// assert_ne!(block, original);
/// aes.decrypt_block(&mut block);
/// assert_eq!(block, original);
/// # Ok::<(), sslperf_ciphers::CipherError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Aes {
    /// Encryption round keys, 4 words per round.
    ek: Vec<u32>,
    /// Decryption round keys (InvMixColumns-transformed).
    dk: Vec<u32>,
    /// `ek` flattened to the byte layout `AESENC` consumes (16 bytes per
    /// round key); empty unless the NI backend is active.
    ek_b: Vec<u8>,
    /// `dk` flattened for `AESDEC` — the equivalent-inverse-cipher schedule
    /// is exactly what the instruction expects; empty unless NI is active.
    dk_b: Vec<u8>,
    rounds: usize,
    /// True when block rounds run on the hardware unit.
    ni: bool,
}

impl Aes {
    /// Block length in bytes.
    pub const BLOCK_LEN: usize = 16;

    /// Expands `key` into round-key schedules (the paper's *key setup*
    /// phase). Accepts 16, 24 or 32-byte keys. Rounds run on the
    /// [`AesBackend::Auto`] backend — AES-NI when the CPU has it.
    ///
    /// # Errors
    ///
    /// Returns [`CipherError::InvalidKeyLen`] for other lengths.
    pub fn new(key: &[u8]) -> Result<Self, CipherError> {
        Self::with_backend(key, AesBackend::Auto)
    }

    /// Like [`Aes::new`] but with an explicit round [`AesBackend`].
    ///
    /// # Errors
    ///
    /// Returns [`CipherError::InvalidKeyLen`] for bad key lengths and
    /// [`CipherError::BackendUnavailable`] when [`AesBackend::Ni`] is
    /// requested on a CPU without AES-NI.
    pub fn with_backend(key: &[u8], backend: AesBackend) -> Result<Self, CipherError> {
        let nk = match key.len() {
            16 => 4,
            24 => 6,
            32 => 8,
            got => return Err(CipherError::InvalidKeyLen { got }),
        };
        let ni = match backend {
            AesBackend::Auto => auto_uses_ni(),
            AesBackend::Ni => {
                if !ni_available() {
                    return Err(CipherError::BackendUnavailable);
                }
                true
            }
            AesBackend::Table => false,
        };
        counters::count("aes_key_setup", 1);
        let rounds = nk + 6;
        let total = 4 * (rounds + 1);
        let mut ek = Vec::with_capacity(total);
        for chunk in key.chunks_exact(4) {
            ek.push(u32::from_be_bytes(chunk.try_into().expect("4-byte chunk")));
        }
        for i in nk..total {
            let mut t = ek[i - 1];
            if i % nk == 0 {
                t = sub_word(t.rotate_left(8)) ^ RCON[i / nk - 1];
            } else if nk > 6 && i % nk == 4 {
                t = sub_word(t);
            }
            ek.push(ek[i - nk] ^ t);
        }

        // Equivalent-inverse-cipher decryption keys: reverse round order and
        // push all middle round keys through InvMixColumns.
        let t = tables();
        let mut dk = vec![0u32; total];
        for r in 0..=rounds {
            for c in 0..4 {
                let w = ek[4 * (rounds - r) + c];
                dk[4 * r + c] = if r == 0 || r == rounds {
                    w
                } else {
                    // InvMixColumns(w) via td ∘ sbox⁻¹ ∘ sbox = td[sbox[..]]
                    t.td[0][t.sbox[(w >> 24) as usize] as usize]
                        ^ t.td[1][t.sbox[((w >> 16) & 0xff) as usize] as usize]
                        ^ t.td[2][t.sbox[((w >> 8) & 0xff) as usize] as usize]
                        ^ t.td[3][t.sbox[(w & 0xff) as usize] as usize]
                };
            }
        }
        // AESENC/AESDEC take each 16-byte round key in state order, which
        // for FIPS 197 words is simply the big-endian bytes in sequence.
        let (ek_b, dk_b) = if ni {
            (
                ek.iter().flat_map(|w| w.to_be_bytes()).collect(),
                dk.iter().flat_map(|w| w.to_be_bytes()).collect(),
            )
        } else {
            (Vec::new(), Vec::new())
        };
        Ok(Aes { ek, dk, ek_b, dk_b, rounds, ni })
    }

    /// Number of rounds (10/12/14 for 128/192/256-bit keys).
    #[must_use]
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Name of the round backend actually in use: `"ni"` or `"table"`.
    #[must_use]
    pub fn backend_name(&self) -> &'static str {
        if self.ni {
            AesBackend::Ni.name()
        } else {
            AesBackend::Table.name()
        }
    }

    /// Whether this CPU has the hardware AES round unit at all.
    #[must_use]
    pub fn ni_available() -> bool {
        ni_available()
    }

    /// The expanded encryption round keys, 4 words per round — exposed for
    /// the ISA-level analysis kernels.
    #[must_use]
    pub fn round_keys(&self) -> &[u32] {
        &self.ek
    }

    /// Encrypts one block with the *textbook* round structure — per-byte
    /// SubBytes, ShiftRows and a gf-multiply MixColumns — instead of the
    /// fused `Te` tables.
    ///
    /// This is the software baseline for the paper's §6.2(2) argument that
    /// a table-lookup unit (or fused tables, in software) pays off; the
    /// `ablate_fused_round` bench compares the two. Results are
    /// bit-identical to [`BlockCipher::encrypt_block`].
    ///
    /// # Panics
    ///
    /// Panics if `block` is not 16 bytes.
    pub fn encrypt_block_textbook(&self, block: &mut [u8]) {
        assert_eq!(block.len(), 16, "AES block must be 16 bytes");
        let t = tables();
        // State as a 4×4 column-major byte matrix: state[r][c] = byte of
        // word c, lane r.
        let mut state = [[0u8; 4]; 4];
        for c in 0..4 {
            for r in 0..4 {
                state[r][c] = block[4 * c + r];
            }
        }
        let add_round_key = |state: &mut [[u8; 4]; 4], rk: &[u32]| {
            for c in 0..4 {
                let bytes = rk[c].to_be_bytes();
                for r in 0..4 {
                    state[r][c] ^= bytes[r];
                }
            }
        };
        add_round_key(&mut state, &self.ek[..4]);
        for round in 1..=self.rounds {
            // SubBytes.
            for row in state.iter_mut() {
                for b in row.iter_mut() {
                    *b = t.sbox[*b as usize];
                }
            }
            // ShiftRows: row r rotates left by r.
            for (r, row) in state.iter_mut().enumerate() {
                row.rotate_left(r);
            }
            // MixColumns (skipped in the final round).
            if round != self.rounds {
                #[allow(clippy::needless_range_loop)] // column index spans all four rows
                for c in 0..4 {
                    let col = [state[0][c], state[1][c], state[2][c], state[3][c]];
                    state[0][c] = gf_mul(col[0], 2) ^ gf_mul(col[1], 3) ^ col[2] ^ col[3];
                    state[1][c] = col[0] ^ gf_mul(col[1], 2) ^ gf_mul(col[2], 3) ^ col[3];
                    state[2][c] = col[0] ^ col[1] ^ gf_mul(col[2], 2) ^ gf_mul(col[3], 3);
                    state[3][c] = gf_mul(col[0], 3) ^ col[1] ^ col[2] ^ gf_mul(col[3], 2);
                }
            }
            add_round_key(&mut state, &self.ek[4 * round..4 * round + 4]);
        }
        for c in 0..4 {
            for r in 0..4 {
                block[4 * c + r] = state[r][c];
            }
        }
    }

    /// Part 1 of the block operation: load the byte block into the four
    /// cipher-state words and XOR the initial round key (Table 5, step 1).
    ///
    /// # Panics
    ///
    /// Panics if `block` is not 16 bytes.
    #[must_use]
    pub fn add_initial_round_key(&self, block: &[u8]) -> [u32; 4] {
        assert_eq!(block.len(), 16, "AES block must be 16 bytes");
        let mut s = [0u32; 4];
        for (i, word) in s.iter_mut().enumerate() {
            *word = u32::from_be_bytes(block[4 * i..4 * i + 4].try_into().expect("4 bytes"))
                ^ self.ek[i];
        }
        s
    }

    /// Part 2: the main rounds (9 for a 128-bit key, 13 for 256), each doing
    /// 16 table lookups, shifts and XORs (Table 5, step 2).
    #[must_use]
    pub fn main_rounds(&self, mut s: [u32; 4]) -> [u32; 4] {
        let t = tables();
        for r in 1..self.rounds {
            let rk = &self.ek[4 * r..4 * r + 4];
            let mut out = [0u32; 4];
            for (c, o) in out.iter_mut().enumerate() {
                // Four basic operations per round, each indexing four tables
                // with bytes taken in left-rotate order (paper Figure 5).
                *o = t.te[0][(s[c] >> 24) as usize]
                    ^ t.te[1][((s[(c + 1) % 4] >> 16) & 0xff) as usize]
                    ^ t.te[2][((s[(c + 2) % 4] >> 8) & 0xff) as usize]
                    ^ t.te[3][(s[(c + 3) % 4] & 0xff) as usize]
                    ^ rk[c];
            }
            s = out;
        }
        s
    }

    /// Part 3: the last round (no MixColumns) and the store back to a byte
    /// array (Table 5, step 3).
    ///
    /// # Panics
    ///
    /// Panics if `out` is not 16 bytes.
    pub fn final_round(&self, s: [u32; 4], out: &mut [u8]) {
        assert_eq!(out.len(), 16, "AES block must be 16 bytes");
        let t = tables();
        let rk = &self.ek[4 * self.rounds..4 * self.rounds + 4];
        for c in 0..4 {
            let w = (u32::from(t.sbox[(s[c] >> 24) as usize]) << 24)
                | (u32::from(t.sbox[((s[(c + 1) % 4] >> 16) & 0xff) as usize]) << 16)
                | (u32::from(t.sbox[((s[(c + 2) % 4] >> 8) & 0xff) as usize]) << 8)
                | u32::from(t.sbox[(s[(c + 3) % 4] & 0xff) as usize]);
            out[4 * c..4 * c + 4].copy_from_slice(&(w ^ rk[c]).to_be_bytes());
        }
    }
}

impl BlockCipher for Aes {
    fn block_len(&self) -> usize {
        Self::BLOCK_LEN
    }

    fn encrypt_block(&self, block: &mut [u8]) {
        counters::count("aes_block", 1);
        #[cfg(target_arch = "x86_64")]
        if self.ni {
            assert_eq!(block.len(), 16, "AES block must be 16 bytes");
            ni::encrypt(&self.ek_b, self.rounds, block);
            return;
        }
        let s = self.add_initial_round_key(block);
        let s = self.main_rounds(s);
        self.final_round(s, block);
    }

    fn decrypt_block(&self, block: &mut [u8]) {
        assert_eq!(block.len(), 16, "AES block must be 16 bytes");
        counters::count("aes_block", 1);
        #[cfg(target_arch = "x86_64")]
        if self.ni {
            ni::decrypt(&self.dk_b, self.rounds, block);
            return;
        }
        let t = tables();
        let mut s = [0u32; 4];
        for (i, word) in s.iter_mut().enumerate() {
            *word = u32::from_be_bytes(block[4 * i..4 * i + 4].try_into().expect("4 bytes"))
                ^ self.dk[i];
        }
        for r in 1..self.rounds {
            let rk = &self.dk[4 * r..4 * r + 4];
            let mut out = [0u32; 4];
            for (c, o) in out.iter_mut().enumerate() {
                *o = t.td[0][(s[c] >> 24) as usize]
                    ^ t.td[1][((s[(c + 3) % 4] >> 16) & 0xff) as usize]
                    ^ t.td[2][((s[(c + 2) % 4] >> 8) & 0xff) as usize]
                    ^ t.td[3][(s[(c + 1) % 4] & 0xff) as usize]
                    ^ rk[c];
            }
            s = out;
        }
        let rk = &self.dk[4 * self.rounds..4 * self.rounds + 4];
        for c in 0..4 {
            let w = (u32::from(t.inv_sbox[(s[c] >> 24) as usize]) << 24)
                | (u32::from(t.inv_sbox[((s[(c + 3) % 4] >> 16) & 0xff) as usize]) << 16)
                | (u32::from(t.inv_sbox[((s[(c + 2) % 4] >> 8) & 0xff) as usize]) << 8)
                | u32::from(t.inv_sbox[(s[(c + 1) % 4] & 0xff) as usize]);
            block[4 * c..4 * c + 4].copy_from_slice(&(w ^ rk[c]).to_be_bytes());
        }
    }
}

/// The hardware round unit: one `AESENC`/`AESDEC` per round instead of 16
/// table lookups. This module is the crate's single island of `unsafe` —
/// the `x86_64` load/store/round intrinsics — kept behind safe wrappers
/// whose callers only construct NI-backed ciphers after
/// [`available`](ni::available) returned true.
#[cfg(target_arch = "x86_64")]
mod ni {
    #![allow(unsafe_code)]

    use std::arch::x86_64::{
        __m128i, _mm_aesdec_si128, _mm_aesdeclast_si128, _mm_aesenc_si128, _mm_aesenclast_si128,
        _mm_loadu_si128, _mm_storeu_si128, _mm_xor_si128,
    };

    /// Runtime check for the `aes` CPUID feature.
    pub(super) fn available() -> bool {
        is_x86_feature_detected!("aes")
    }

    /// Encrypts one 16-byte block with the byte-flattened schedule `rk`
    /// (`(rounds + 1) * 16` bytes).
    ///
    /// # Panics
    ///
    /// Panics if `block` or `rk` are too short or AES-NI is missing.
    pub(super) fn encrypt(rk: &[u8], rounds: usize, block: &mut [u8]) {
        assert!(available(), "NI cipher constructed without AES-NI");
        assert_eq!(block.len(), 16);
        assert_eq!(rk.len(), (rounds + 1) * 16);
        // SAFETY: the `aes` feature was just verified, and both slices are
        // long enough for every unaligned 16-byte load/store below.
        unsafe { encrypt_impl(rk, rounds, block) }
    }

    /// Decrypts one 16-byte block; `rk` is the equivalent-inverse-cipher
    /// schedule (first key = last encryption key, middle keys through
    /// InvMixColumns), which is precisely the form `AESDEC` consumes.
    ///
    /// # Panics
    ///
    /// Panics if `block` or `rk` are too short or AES-NI is missing.
    pub(super) fn decrypt(rk: &[u8], rounds: usize, block: &mut [u8]) {
        assert!(available(), "NI cipher constructed without AES-NI");
        assert_eq!(block.len(), 16);
        assert_eq!(rk.len(), (rounds + 1) * 16);
        // SAFETY: as in `encrypt` — feature verified, slice lengths checked.
        unsafe { decrypt_impl(rk, rounds, block) }
    }

    /// # Safety
    ///
    /// Requires the `aes` target feature at runtime, `block.len() == 16`
    /// and `rk.len() >= (rounds + 1) * 16`.
    #[target_feature(enable = "aes")]
    unsafe fn encrypt_impl(rk: &[u8], rounds: usize, block: &mut [u8]) {
        let key = |r: usize| -> __m128i {
            // SAFETY: caller guarantees rk holds rounds + 1 full keys.
            unsafe { _mm_loadu_si128(rk.as_ptr().add(16 * r).cast()) }
        };
        // SAFETY: caller guarantees block is 16 bytes.
        let mut s = unsafe { _mm_loadu_si128(block.as_ptr().cast()) };
        s = _mm_xor_si128(s, key(0));
        for r in 1..rounds {
            s = _mm_aesenc_si128(s, key(r));
        }
        s = _mm_aesenclast_si128(s, key(rounds));
        // SAFETY: caller guarantees block is 16 bytes.
        unsafe { _mm_storeu_si128(block.as_mut_ptr().cast(), s) };
    }

    /// # Safety
    ///
    /// Requires the `aes` target feature at runtime, `block.len() == 16`
    /// and `rk.len() >= (rounds + 1) * 16`.
    #[target_feature(enable = "aes")]
    unsafe fn decrypt_impl(rk: &[u8], rounds: usize, block: &mut [u8]) {
        let key = |r: usize| -> __m128i {
            // SAFETY: caller guarantees rk holds rounds + 1 full keys.
            unsafe { _mm_loadu_si128(rk.as_ptr().add(16 * r).cast()) }
        };
        // SAFETY: caller guarantees block is 16 bytes.
        let mut s = unsafe { _mm_loadu_si128(block.as_ptr().cast()) };
        s = _mm_xor_si128(s, key(0));
        for r in 1..rounds {
            s = _mm_aesdec_si128(s, key(r));
        }
        s = _mm_aesdeclast_si128(s, key(rounds));
        // SAFETY: caller guarantees block is 16 bytes.
        unsafe { _mm_storeu_si128(block.as_mut_ptr().cast(), s) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn from_hex(s: &str) -> Vec<u8> {
        (0..s.len()).step_by(2).map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap()).collect()
    }

    #[test]
    fn sbox_spot_values() {
        let t = tables();
        // Canonical S-box anchors.
        assert_eq!(t.sbox[0x00], 0x63);
        assert_eq!(t.sbox[0x01], 0x7c);
        assert_eq!(t.sbox[0x53], 0xed);
        assert_eq!(t.sbox[0xff], 0x16);
        // Inverse really inverts.
        for x in 0..256usize {
            assert_eq!(t.inv_sbox[t.sbox[x] as usize] as usize, x);
        }
    }

    /// FIPS 197 appendix C.1: AES-128.
    #[test]
    fn fips197_aes128() {
        let key = from_hex("000102030405060708090a0b0c0d0e0f");
        let aes = Aes::new(&key).unwrap();
        let mut block: [u8; 16] = from_hex("00112233445566778899aabbccddeeff").try_into().unwrap();
        aes.encrypt_block(&mut block);
        assert_eq!(block.to_vec(), from_hex("69c4e0d86a7b0430d8cdb78070b4c55a"));
        aes.decrypt_block(&mut block);
        assert_eq!(block.to_vec(), from_hex("00112233445566778899aabbccddeeff"));
    }

    /// FIPS 197 appendix C.2: AES-192.
    #[test]
    fn fips197_aes192() {
        let key = from_hex("000102030405060708090a0b0c0d0e0f1011121314151617");
        let aes = Aes::new(&key).unwrap();
        assert_eq!(aes.rounds(), 12);
        let mut block: [u8; 16] = from_hex("00112233445566778899aabbccddeeff").try_into().unwrap();
        aes.encrypt_block(&mut block);
        assert_eq!(block.to_vec(), from_hex("dda97ca4864cdfe06eaf70a0ec0d7191"));
    }

    /// FIPS 197 appendix C.3: AES-256.
    #[test]
    fn fips197_aes256() {
        let key = from_hex("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
        let aes = Aes::new(&key).unwrap();
        assert_eq!(aes.rounds(), 14);
        let mut block: [u8; 16] = from_hex("00112233445566778899aabbccddeeff").try_into().unwrap();
        aes.encrypt_block(&mut block);
        assert_eq!(block.to_vec(), from_hex("8ea2b7ca516745bfeafc49904b496089"));
        aes.decrypt_block(&mut block);
        assert_eq!(block.to_vec(), from_hex("00112233445566778899aabbccddeeff"));
    }

    /// FIPS 197 appendix B worked example (different key).
    #[test]
    fn fips197_appendix_b() {
        let key = from_hex("2b7e151628aed2a6abf7158809cf4f3c");
        let aes = Aes::new(&key).unwrap();
        let mut block: [u8; 16] = from_hex("3243f6a8885a308d313198a2e0370734").try_into().unwrap();
        aes.encrypt_block(&mut block);
        assert_eq!(block.to_vec(), from_hex("3925841d02dc09fbdc118597196a0b32"));
    }

    #[test]
    fn invalid_key_lengths_rejected() {
        for len in [0usize, 1, 15, 17, 23, 25, 31, 33, 64] {
            assert_eq!(
                Aes::new(&vec![0u8; len]).err(),
                Some(CipherError::InvalidKeyLen { got: len })
            );
        }
    }

    #[test]
    fn phased_api_equals_encrypt_block() {
        let aes = Aes::new(&[7u8; 16]).unwrap();
        let input = [0x42u8; 16];
        let mut composed = [0u8; 16];
        let s = aes.add_initial_round_key(&input);
        let s = aes.main_rounds(s);
        aes.final_round(s, &mut composed);
        let mut direct = input;
        aes.encrypt_block(&mut direct);
        assert_eq!(composed, direct);
    }

    #[test]
    fn round_trip_all_key_sizes() {
        for key_len in [16usize, 24, 32] {
            let key: Vec<u8> = (0..key_len as u8).collect();
            let aes = Aes::new(&key).unwrap();
            for pattern in [0x00u8, 0xff, 0x5a] {
                let mut block = [pattern; 16];
                aes.encrypt_block(&mut block);
                aes.decrypt_block(&mut block);
                assert_eq!(block, [pattern; 16], "key {key_len} pattern {pattern:#x}");
            }
        }
    }

    #[test]
    fn textbook_rounds_match_fused_tables() {
        for key_len in [16usize, 24, 32] {
            let key: Vec<u8> = (0..key_len as u8).map(|i| i.wrapping_mul(37)).collect();
            let aes = Aes::new(&key).unwrap();
            for seed in [0u8, 1, 0x80, 0xff] {
                let mut fused = [seed; 16];
                let mut textbook = [seed; 16];
                aes.encrypt_block(&mut fused);
                aes.encrypt_block_textbook(&mut textbook);
                assert_eq!(fused, textbook, "key {key_len} seed {seed:#x}");
            }
        }
    }

    #[test]
    fn forced_table_backend_still_passes_kats() {
        let key = from_hex("000102030405060708090a0b0c0d0e0f");
        let aes = Aes::with_backend(&key, AesBackend::Table).unwrap();
        assert_eq!(aes.backend_name(), "table");
        let mut block: [u8; 16] = from_hex("00112233445566778899aabbccddeeff").try_into().unwrap();
        aes.encrypt_block(&mut block);
        assert_eq!(block.to_vec(), from_hex("69c4e0d86a7b0430d8cdb78070b4c55a"));
        aes.decrypt_block(&mut block);
        assert_eq!(block.to_vec(), from_hex("00112233445566778899aabbccddeeff"));
    }

    #[test]
    fn ni_backend_passes_kats_when_available() {
        if !Aes::ni_available() {
            assert_eq!(
                Aes::with_backend(&[0u8; 16], AesBackend::Ni).err(),
                Some(CipherError::BackendUnavailable)
            );
            return;
        }
        let key = from_hex("000102030405060708090a0b0c0d0e0f");
        let aes = Aes::with_backend(&key, AesBackend::Ni).unwrap();
        assert_eq!(aes.backend_name(), "ni");
        let mut block: [u8; 16] = from_hex("00112233445566778899aabbccddeeff").try_into().unwrap();
        aes.encrypt_block(&mut block);
        assert_eq!(block.to_vec(), from_hex("69c4e0d86a7b0430d8cdb78070b4c55a"));
        aes.decrypt_block(&mut block);
        assert_eq!(block.to_vec(), from_hex("00112233445566778899aabbccddeeff"));
    }

    #[test]
    fn ni_and_table_agree_on_every_key_size() {
        if !Aes::ni_available() {
            return;
        }
        for key_len in [16usize, 24, 32] {
            let key: Vec<u8> =
                (0..key_len as u8).map(|i| i.wrapping_mul(0x9d).wrapping_add(3)).collect();
            let hw = Aes::with_backend(&key, AesBackend::Ni).unwrap();
            let sw = Aes::with_backend(&key, AesBackend::Table).unwrap();
            let mut block = [0u8; 16];
            for trial in 0u8..32 {
                for (i, b) in block.iter_mut().enumerate() {
                    *b = (i as u8).wrapping_mul(31).wrapping_add(trial.wrapping_mul(0x4f));
                }
                let mut h = block;
                let mut s = block;
                hw.encrypt_block(&mut h);
                sw.encrypt_block(&mut s);
                assert_eq!(h, s, "encrypt diverged: key {key_len} trial {trial}");
                hw.decrypt_block(&mut h);
                sw.decrypt_block(&mut s);
                assert_eq!(h, block, "ni round trip broke: key {key_len} trial {trial}");
                assert_eq!(s, block, "table round trip broke: key {key_len} trial {trial}");
            }
        }
    }

    #[test]
    fn auto_backend_respects_cpu_and_env() {
        let aes = Aes::new(&[0u8; 16]).unwrap();
        let forced_table = std::env::var("SSLPERF_AES").as_deref() == Ok("table");
        let expected = if Aes::ni_available() && !forced_table { "ni" } else { "table" };
        assert_eq!(aes.backend_name(), expected);
    }

    #[test]
    fn backend_names_are_stable() {
        assert_eq!(AesBackend::Auto.name(), "auto");
        assert_eq!(AesBackend::Ni.name(), "ni");
        assert_eq!(AesBackend::Table.name(), "table");
    }

    #[test]
    fn counts_key_setup_and_blocks() {
        let (_, snap) = counters::counted(|| {
            let aes = Aes::new(&[0u8; 16]).unwrap();
            let mut b = [0u8; 16];
            aes.encrypt_block(&mut b);
            aes.encrypt_block(&mut b);
        });
        assert_eq!(snap.calls("aes_key_setup"), 1);
        assert_eq!(snap.calls("aes_block"), 2);
    }
}
