//! FIPS 46-3 DES and Triple-DES (EDE).
//!
//! The block operation keeps the paper's three-part structure (Table 6):
//! an *initial permutation*, 16 (or 3×16) *substitution rounds* built on
//! eight fused SP tables (S-box + P permutation, 8 lookups per round), and a
//! *final permutation*. Like OpenSSL's `des_encrypt3`, 3DES shares a single
//! IP/FP pair around the 48 rounds.

use crate::{BlockCipher, CipherError};
use sslperf_profile::counters;
use std::sync::OnceLock;

/// Initial permutation (FIPS 46-3), 1-based bit numbers from the MSB.
const IP: [u8; 64] = [
    58, 50, 42, 34, 26, 18, 10, 2, 60, 52, 44, 36, 28, 20, 12, 4, 62, 54, 46, 38, 30, 22, 14, 6,
    64, 56, 48, 40, 32, 24, 16, 8, 57, 49, 41, 33, 25, 17, 9, 1, 59, 51, 43, 35, 27, 19, 11, 3, 61,
    53, 45, 37, 29, 21, 13, 5, 63, 55, 47, 39, 31, 23, 15, 7,
];

/// Final permutation (the inverse of [`IP`]).
const FP: [u8; 64] = [
    40, 8, 48, 16, 56, 24, 64, 32, 39, 7, 47, 15, 55, 23, 63, 31, 38, 6, 46, 14, 54, 22, 62, 30,
    37, 5, 45, 13, 53, 21, 61, 29, 36, 4, 44, 12, 52, 20, 60, 28, 35, 3, 43, 11, 51, 19, 59, 27,
    34, 2, 42, 10, 50, 18, 58, 26, 33, 1, 41, 9, 49, 17, 57, 25,
];

/// Key permutation PC-1: 64 key bits → 56 (drops parity).
const PC1: [u8; 56] = [
    57, 49, 41, 33, 25, 17, 9, 1, 58, 50, 42, 34, 26, 18, 10, 2, 59, 51, 43, 35, 27, 19, 11, 3, 60,
    52, 44, 36, 63, 55, 47, 39, 31, 23, 15, 7, 62, 54, 46, 38, 30, 22, 14, 6, 61, 53, 45, 37, 29,
    21, 13, 5, 28, 20, 12, 4,
];

/// Key permutation PC-2: 56 → 48 subkey bits.
const PC2: [u8; 48] = [
    14, 17, 11, 24, 1, 5, 3, 28, 15, 6, 21, 10, 23, 19, 12, 4, 26, 8, 16, 7, 27, 20, 13, 2, 41, 52,
    31, 37, 47, 55, 30, 40, 51, 45, 33, 48, 44, 49, 39, 56, 34, 53, 46, 42, 50, 36, 29, 32,
];

/// Left-shift schedule for the 16 key-schedule rounds.
const SHIFTS: [u32; 16] = [1, 1, 2, 2, 2, 2, 2, 2, 1, 2, 2, 2, 2, 2, 2, 1];

/// The P permutation applied to the 32-bit S-box output.
const P: [u8; 32] = [
    16, 7, 20, 21, 29, 12, 28, 17, 1, 15, 23, 26, 5, 18, 31, 10, 2, 8, 24, 14, 32, 27, 3, 9, 19,
    13, 30, 6, 22, 11, 4, 25,
];

/// The eight S-boxes, each 4 rows × 16 columns (FIPS 46-3).
const SBOX: [[u8; 64]; 8] = [
    [
        14, 4, 13, 1, 2, 15, 11, 8, 3, 10, 6, 12, 5, 9, 0, 7, 0, 15, 7, 4, 14, 2, 13, 1, 10, 6, 12,
        11, 9, 5, 3, 8, 4, 1, 14, 8, 13, 6, 2, 11, 15, 12, 9, 7, 3, 10, 5, 0, 15, 12, 8, 2, 4, 9,
        1, 7, 5, 11, 3, 14, 10, 0, 6, 13,
    ],
    [
        15, 1, 8, 14, 6, 11, 3, 4, 9, 7, 2, 13, 12, 0, 5, 10, 3, 13, 4, 7, 15, 2, 8, 14, 12, 0, 1,
        10, 6, 9, 11, 5, 0, 14, 7, 11, 10, 4, 13, 1, 5, 8, 12, 6, 9, 3, 2, 15, 13, 8, 10, 1, 3, 15,
        4, 2, 11, 6, 7, 12, 0, 5, 14, 9,
    ],
    [
        10, 0, 9, 14, 6, 3, 15, 5, 1, 13, 12, 7, 11, 4, 2, 8, 13, 7, 0, 9, 3, 4, 6, 10, 2, 8, 5,
        14, 12, 11, 15, 1, 13, 6, 4, 9, 8, 15, 3, 0, 11, 1, 2, 12, 5, 10, 14, 7, 1, 10, 13, 0, 6,
        9, 8, 7, 4, 15, 14, 3, 11, 5, 2, 12,
    ],
    [
        7, 13, 14, 3, 0, 6, 9, 10, 1, 2, 8, 5, 11, 12, 4, 15, 13, 8, 11, 5, 6, 15, 0, 3, 4, 7, 2,
        12, 1, 10, 14, 9, 10, 6, 9, 0, 12, 11, 7, 13, 15, 1, 3, 14, 5, 2, 8, 4, 3, 15, 0, 6, 10, 1,
        13, 8, 9, 4, 5, 11, 12, 7, 2, 14,
    ],
    [
        2, 12, 4, 1, 7, 10, 11, 6, 8, 5, 3, 15, 13, 0, 14, 9, 14, 11, 2, 12, 4, 7, 13, 1, 5, 0, 15,
        10, 3, 9, 8, 6, 4, 2, 1, 11, 10, 13, 7, 8, 15, 9, 12, 5, 6, 3, 0, 14, 11, 8, 12, 7, 1, 14,
        2, 13, 6, 15, 0, 9, 10, 4, 5, 3,
    ],
    [
        12, 1, 10, 15, 9, 2, 6, 8, 0, 13, 3, 4, 14, 7, 5, 11, 10, 15, 4, 2, 7, 12, 9, 5, 6, 1, 13,
        14, 0, 11, 3, 8, 9, 14, 15, 5, 2, 8, 12, 3, 7, 0, 4, 10, 1, 13, 11, 6, 4, 3, 2, 12, 9, 5,
        15, 10, 11, 14, 1, 7, 6, 0, 8, 13,
    ],
    [
        4, 11, 2, 14, 15, 0, 8, 13, 3, 12, 9, 7, 5, 10, 6, 1, 13, 0, 11, 7, 4, 9, 1, 10, 14, 3, 5,
        12, 2, 15, 8, 6, 1, 4, 11, 13, 12, 3, 7, 14, 10, 15, 6, 8, 0, 5, 9, 2, 6, 11, 13, 8, 1, 4,
        10, 7, 9, 5, 0, 15, 14, 2, 3, 12,
    ],
    [
        13, 2, 8, 4, 6, 15, 11, 1, 10, 9, 3, 14, 5, 0, 12, 7, 1, 15, 13, 8, 10, 3, 7, 4, 12, 5, 6,
        11, 0, 14, 9, 2, 7, 11, 4, 1, 9, 12, 14, 2, 0, 6, 10, 13, 15, 3, 5, 8, 2, 1, 14, 7, 4, 10,
        8, 13, 15, 12, 9, 0, 3, 5, 6, 11,
    ],
];

/// Applies a 1-based-from-MSB bit permutation: output bit `i` (MSB first)
/// is input bit `table[i]` of an `in_width`-bit value.
fn permute(input: u64, in_width: u32, table: &[u8]) -> u64 {
    let mut out = 0u64;
    for &src in table {
        out = (out << 1) | ((input >> (in_width - u32::from(src))) & 1);
    }
    out
}

/// Fused SP tables: `sp[i][v]` is `P(S_i(v))` positioned in the 32-bit
/// Feistel output.
fn sp_tables() -> &'static [[u32; 64]; 8] {
    static SP: OnceLock<[[u32; 64]; 8]> = OnceLock::new();
    SP.get_or_init(|| {
        let mut sp = [[0u32; 64]; 8];
        for (i, sbox) in SBOX.iter().enumerate() {
            #[allow(clippy::needless_range_loop)] // v is the S-box input value
            for v in 0..64usize {
                let row = ((v >> 5) & 1) * 2 + (v & 1);
                let col = (v >> 1) & 0xf;
                let s = u64::from(sbox[row * 16 + col]);
                // S_i's nibble occupies bits 4i+1..4i+4 of the pre-P word.
                let positioned = s << (28 - 4 * i);
                sp[i][v] = permute(positioned, 32, &P) as u32;
            }
        }
        sp
    })
}

pub(crate) fn ip_table() -> &'static [u8; 64] {
    &IP
}

pub(crate) fn fp_table() -> &'static [u8; 64] {
    &FP
}

pub(crate) fn sp_tables_for_analysis() -> &'static [[u32; 64]; 8] {
    sp_tables()
}

/// One 16-round key schedule, stored as eight 6-bit chunks per round.
type KeySchedule = [[u8; 8]; 16];

fn key_schedule(key: &[u8; 8]) -> KeySchedule {
    counters::count("des_key_setup", 1);
    let key64 = u64::from_be_bytes(*key);
    let key56 = permute(key64, 64, &PC1);
    let mut c = (key56 >> 28) as u32 & 0x0fff_ffff;
    let mut d = key56 as u32 & 0x0fff_ffff;
    let mut ks = [[0u8; 8]; 16];
    for (r, round_key) in ks.iter_mut().enumerate() {
        c = ((c << SHIFTS[r]) | (c >> (28 - SHIFTS[r]))) & 0x0fff_ffff;
        d = ((d << SHIFTS[r]) | (d >> (28 - SHIFTS[r]))) & 0x0fff_ffff;
        let cd = (u64::from(c) << 28) | u64::from(d);
        let subkey = permute(cd, 56, &PC2);
        for (i, chunk) in round_key.iter_mut().enumerate() {
            *chunk = ((subkey >> (42 - 6 * i)) & 0x3f) as u8;
        }
    }
    ks
}

/// The Feistel function: expansion (as rotated 6-bit windows), subkey XOR,
/// eight SP-table lookups, XOR-combine.
fn feistel(r: u32, subkey: &[u8; 8]) -> u32 {
    let sp = sp_tables();
    let t = r.rotate_right(1);
    let mut f = 0u32;
    for (i, &k) in subkey.iter().enumerate() {
        let chunk = ((t.rotate_left(4 * i as u32) >> 26) & 0x3f) as u8 ^ k;
        f ^= sp[i][chunk as usize];
    }
    f
}

/// Runs 16 Feistel rounds (reversed subkeys when `decrypt`) and applies the
/// end-of-cipher half swap.
fn rounds(mut l: u32, mut r: u32, ks: &KeySchedule, decrypt: bool) -> (u32, u32) {
    for i in 0..16 {
        let subkey = if decrypt { &ks[15 - i] } else { &ks[i] };
        let f = feistel(r, subkey);
        let next_r = l ^ f;
        l = r;
        r = next_r;
    }
    (r, l)
}

/// Single DES (56-bit key in 8 bytes; parity bits ignored).
///
/// # Examples
///
/// ```
/// use sslperf_ciphers::{BlockCipher, Des};
///
/// let des = Des::new(&0x133457799BBCDFF1u64.to_be_bytes())?;
/// let mut block = 0x0123456789ABCDEFu64.to_be_bytes();
/// des.encrypt_block(&mut block);
/// assert_eq!(u64::from_be_bytes(block), 0x85E813540F0AB405);
/// # Ok::<(), sslperf_ciphers::CipherError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Des {
    ks: KeySchedule,
}

impl Des {
    /// Block length in bytes.
    pub const BLOCK_LEN: usize = 8;

    /// Builds the 16-round key schedule (the paper's *key setup* phase).
    ///
    /// # Errors
    ///
    /// Returns [`CipherError::InvalidKeyLen`] unless `key` is 8 bytes.
    pub fn new(key: &[u8]) -> Result<Self, CipherError> {
        let key: &[u8; 8] =
            key.try_into().map_err(|_| CipherError::InvalidKeyLen { got: key.len() })?;
        Ok(Des { ks: key_schedule(key) })
    }

    /// The sixteen round subkeys as 6-bit chunks — exposed for the
    /// ISA-level analysis kernels.
    #[must_use]
    pub fn round_subkeys(&self) -> &[[u8; 8]; 16] {
        &self.ks
    }

    /// Part 1 of the block operation: the initial permutation (Table 6).
    ///
    /// # Panics
    ///
    /// Panics if `block` is not 8 bytes.
    #[must_use]
    pub fn initial_permutation(block: &[u8]) -> (u32, u32) {
        let v = u64::from_be_bytes(block.try_into().expect("DES block must be 8 bytes"));
        let p = permute(v, 64, &IP);
        ((p >> 32) as u32, p as u32)
    }

    /// Part 2: the 16 substitution rounds.
    #[must_use]
    pub fn substitution_rounds(&self, l: u32, r: u32, decrypt: bool) -> (u32, u32) {
        rounds(l, r, &self.ks, decrypt)
    }

    /// Part 3: the final permutation, storing back to bytes.
    ///
    /// # Panics
    ///
    /// Panics if `out` is not 8 bytes.
    pub fn final_permutation(l: u32, r: u32, out: &mut [u8]) {
        let v = (u64::from(l) << 32) | u64::from(r);
        let p = permute(v, 64, &FP);
        out.copy_from_slice(&p.to_be_bytes());
    }
}

impl BlockCipher for Des {
    fn block_len(&self) -> usize {
        Self::BLOCK_LEN
    }

    fn encrypt_block(&self, block: &mut [u8]) {
        counters::count("des_block", 1);
        let (l, r) = Des::initial_permutation(block);
        let (l, r) = self.substitution_rounds(l, r, false);
        Des::final_permutation(l, r, block);
    }

    fn decrypt_block(&self, block: &mut [u8]) {
        counters::count("des_block", 1);
        let (l, r) = Des::initial_permutation(block);
        let (l, r) = self.substitution_rounds(l, r, true);
        Des::final_permutation(l, r, block);
    }
}

/// Triple DES in EDE mode with a 24-byte key (three independent subkeys).
///
/// Matches OpenSSL's `des_encrypt3`: one initial and one final permutation
/// around 3×16 substitution rounds, which is why the paper's Table 6 shows
/// 3DES's IP/FP costs equal to DES's while substitution triples.
///
/// # Examples
///
/// ```
/// use sslperf_ciphers::{BlockCipher, Des3};
///
/// let des3 = Des3::new(&[0x23; 24])?;
/// let mut block = *b"8 bytes!";
/// des3.encrypt_block(&mut block);
/// des3.decrypt_block(&mut block);
/// assert_eq!(&block, b"8 bytes!");
/// # Ok::<(), sslperf_ciphers::CipherError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Des3 {
    ks1: KeySchedule,
    ks2: KeySchedule,
    ks3: KeySchedule,
}

impl Des3 {
    /// Block length in bytes.
    pub const BLOCK_LEN: usize = 8;

    /// Builds the three key schedules from a 24-byte (3×8) key.
    ///
    /// # Errors
    ///
    /// Returns [`CipherError::InvalidKeyLen`] unless `key` is 24 bytes.
    pub fn new(key: &[u8]) -> Result<Self, CipherError> {
        if key.len() != 24 {
            return Err(CipherError::InvalidKeyLen { got: key.len() });
        }
        let k = |i: usize| -> [u8; 8] { key[8 * i..8 * i + 8].try_into().expect("8 bytes") };
        Ok(Des3 { ks1: key_schedule(&k(0)), ks2: key_schedule(&k(1)), ks3: key_schedule(&k(2)) })
    }

    /// Part 2 of the 3DES block operation: all 48 substitution rounds
    /// (E-D-E when encrypting, D-E-D reversed when decrypting).
    #[must_use]
    pub fn substitution_rounds(&self, l: u32, r: u32, decrypt: bool) -> (u32, u32) {
        if decrypt {
            let (l, r) = rounds(l, r, &self.ks3, true);
            let (l, r) = rounds(l, r, &self.ks2, false);
            rounds(l, r, &self.ks1, true)
        } else {
            let (l, r) = rounds(l, r, &self.ks1, false);
            let (l, r) = rounds(l, r, &self.ks2, true);
            rounds(l, r, &self.ks3, false)
        }
    }
}

impl BlockCipher for Des3 {
    fn block_len(&self) -> usize {
        Self::BLOCK_LEN
    }

    fn encrypt_block(&self, block: &mut [u8]) {
        counters::count("des3_block", 1);
        let (l, r) = Des::initial_permutation(block);
        let (l, r) = self.substitution_rounds(l, r, false);
        Des::final_permutation(l, r, block);
    }

    fn decrypt_block(&self, block: &mut [u8]) {
        counters::count("des3_block", 1);
        let (l, r) = Des::initial_permutation(block);
        let (l, r) = self.substitution_rounds(l, r, true);
        Des::final_permutation(l, r, block);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fp_inverts_ip() {
        for v in [0u64, 1, u64::MAX, 0x0123_4567_89ab_cdef, 0xdead_beef_cafe_babe] {
            let ip = permute(v, 64, &IP);
            let back = permute(ip, 64, &FP);
            assert_eq!(back, v, "value {v:#x}");
        }
    }

    /// The classic worked example (used in countless DES tutorials and
    /// consistent with FIPS 46-3).
    #[test]
    fn known_vector_walkthrough_key() {
        let des = Des::new(&0x1334_5779_9BBC_DFF1u64.to_be_bytes()).unwrap();
        let mut block = 0x0123_4567_89AB_CDEFu64.to_be_bytes();
        des.encrypt_block(&mut block);
        assert_eq!(u64::from_be_bytes(block), 0x85E8_1354_0F0A_B405);
        des.decrypt_block(&mut block);
        assert_eq!(u64::from_be_bytes(block), 0x0123_4567_89AB_CDEF);
    }

    /// From the NBS/NIST validation set.
    #[test]
    fn known_vector_zero_plaintext() {
        let des = Des::new(&0x0E32_9232_EA6D_0D73u64.to_be_bytes()).unwrap();
        let mut block = 0x8787_8787_8787_8787u64.to_be_bytes();
        des.encrypt_block(&mut block);
        assert_eq!(u64::from_be_bytes(block), 0);
    }

    #[test]
    fn parity_bits_are_ignored() {
        // Keys differing only in parity bits (LSB of each byte) must agree.
        let k1 = [0x12u8, 0x34, 0x56, 0x78, 0x9a, 0xbc, 0xde, 0xf0];
        let mut k2 = k1;
        for b in &mut k2 {
            *b ^= 1;
        }
        let d1 = Des::new(&k1).unwrap();
        let d2 = Des::new(&k2).unwrap();
        let mut b1 = *b"testblok";
        let mut b2 = *b"testblok";
        d1.encrypt_block(&mut b1);
        d2.encrypt_block(&mut b2);
        assert_eq!(b1, b2);
    }

    #[test]
    fn des3_with_equal_keys_is_des() {
        let key8 = [0x42u8, 0x17, 0x99, 0x03, 0xfe, 0xdc, 0x55, 0xaa];
        let mut key24 = Vec::new();
        for _ in 0..3 {
            key24.extend_from_slice(&key8);
        }
        let des = Des::new(&key8).unwrap();
        let des3 = Des3::new(&key24).unwrap();
        let mut a = *b"payload!";
        let mut b = *b"payload!";
        des.encrypt_block(&mut a);
        des3.encrypt_block(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn des3_round_trip_independent_keys() {
        let key: Vec<u8> = (1..=24).collect();
        let des3 = Des3::new(&key).unwrap();
        for pattern in [0x00u8, 0xff, 0x3c] {
            let mut block = [pattern; 8];
            des3.encrypt_block(&mut block);
            assert_ne!(block, [pattern; 8]);
            des3.decrypt_block(&mut block);
            assert_eq!(block, [pattern; 8]);
        }
    }

    #[test]
    fn phased_api_equals_encrypt_block() {
        let des = Des::new(&[0x13u8, 0x34, 0x57, 0x79, 0x9b, 0xbc, 0xdf, 0xf1]).unwrap();
        let input = *b"ABCDEFGH";
        let (l, r) = Des::initial_permutation(&input);
        let (l, r) = des.substitution_rounds(l, r, false);
        let mut composed = [0u8; 8];
        Des::final_permutation(l, r, &mut composed);
        let mut direct = input;
        des.encrypt_block(&mut direct);
        assert_eq!(composed, direct);
    }

    #[test]
    fn invalid_key_lengths() {
        assert!(Des::new(&[0u8; 7]).is_err());
        assert!(Des::new(&[0u8; 9]).is_err());
        assert!(Des3::new(&[0u8; 16]).is_err());
        assert!(Des3::new(&[0u8; 23]).is_err());
    }

    #[test]
    fn complementation_property() {
        // DES(~k, ~p) == ~DES(k, p)
        let key = 0x0123_4567_89ab_cdefu64;
        let pt = 0x4e6f_7720_6973_2074u64;
        let des = Des::new(&key.to_be_bytes()).unwrap();
        let mut ct = pt.to_be_bytes();
        des.encrypt_block(&mut ct);
        let des_c = Des::new(&(!key).to_be_bytes()).unwrap();
        let mut ct_c = (!pt).to_be_bytes();
        des_c.encrypt_block(&mut ct_c);
        assert_eq!(u64::from_be_bytes(ct_c), !u64::from_be_bytes(ct));
    }

    #[test]
    fn counts_key_setup() {
        let (_, snap) = counters::counted(|| {
            let _ = Des3::new(&[1u8; 24]).unwrap();
        });
        assert_eq!(snap.calls("des_key_setup"), 3);
    }
}
