//! The RC4 stream cipher.
//!
//! The paper (§5.1.3) singles RC4 out: a 256-entry state table initialized
//! by the key setup (28.5% of a 1 KB encryption — Figure 3) and a per-byte
//! generation loop that reads the table three times and updates it twice,
//! with AND/ADD/XOR as the main operations.

use crate::CipherError;
use sslperf_profile::counters;

/// RC4 keystream generator and in-place cipher.
///
/// Encryption and decryption are the same XOR operation.
///
/// # Examples
///
/// ```
/// use sslperf_ciphers::Rc4;
///
/// let mut enc = Rc4::new(b"Key")?;
/// let mut data = *b"Plaintext";
/// enc.process(&mut data);
/// assert_eq!(data, [0xBB, 0xF3, 0x16, 0xE8, 0xD9, 0x40, 0xAF, 0x0A, 0xD3]);
///
/// let mut dec = Rc4::new(b"Key")?;
/// dec.process(&mut data);
/// assert_eq!(&data, b"Plaintext");
/// # Ok::<(), sslperf_ciphers::CipherError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Rc4 {
    state: [u8; 256],
    i: u8,
    j: u8,
}

impl Rc4 {
    /// Initializes the 256-entry state table from `key` (the paper's *key
    /// setup* phase, much heavier relative to the kernel than the block
    /// ciphers').
    ///
    /// # Errors
    ///
    /// Returns [`CipherError::InvalidKeyLen`] if `key` is empty or longer
    /// than 256 bytes.
    pub fn new(key: &[u8]) -> Result<Self, CipherError> {
        if key.is_empty() || key.len() > 256 {
            return Err(CipherError::InvalidKeyLen { got: key.len() });
        }
        counters::count("rc4_key_setup", 1);
        let mut state = [0u8; 256];
        for (i, s) in state.iter_mut().enumerate() {
            *s = i as u8;
        }
        let mut j = 0u8;
        for i in 0..256usize {
            j = j.wrapping_add(state[i]).wrapping_add(key[i % key.len()]);
            state.swap(i, j as usize);
        }
        Ok(Rc4 { state, i: 0, j: 0 })
    }

    /// Generates the next keystream byte (3 table reads, 2 writes).
    #[must_use]
    pub fn next_byte(&mut self) -> u8 {
        self.i = self.i.wrapping_add(1);
        self.j = self.j.wrapping_add(self.state[self.i as usize]);
        self.state.swap(self.i as usize, self.j as usize);
        let idx = self.state[self.i as usize].wrapping_add(self.state[self.j as usize]);
        self.state[idx as usize]
    }

    /// XORs the keystream into `data` in place (encrypt == decrypt).
    pub fn process(&mut self, data: &mut [u8]) {
        counters::count("rc4_bytes", data.len() as u64);
        for b in data {
            *b ^= self.next_byte();
        }
    }

    /// Produces `n` raw keystream bytes (for tests and analysis).
    #[must_use]
    pub fn keystream(&mut self, n: usize) -> Vec<u8> {
        (0..n).map(|_| self.next_byte()).collect()
    }

    /// The current `(state table, i, j)` — exposed so the ISA-level
    /// analysis kernel can start from an identical generator state.
    #[must_use]
    pub fn snapshot(&self) -> ([u8; 256], u8, u8) {
        (self.state, self.i, self.j)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn from_hex(s: &str) -> Vec<u8> {
        (0..s.len()).step_by(2).map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap()).collect()
    }

    /// Classic RC4 test vectors (appear in the original Usenet posting and
    /// RFC 6229 precursors).
    #[test]
    fn classic_vectors() {
        let cases: &[(&[u8], &[u8], &str)] = &[
            (b"Key", b"Plaintext", "bbf316e8d940af0ad3"),
            (b"Wiki", b"pedia", "1021bf0420"),
            (b"Secret", b"Attack at dawn", "45a01f645fc35b383552544b9bf5"),
        ];
        for (key, plain, want) in cases {
            let mut rc4 = Rc4::new(key).unwrap();
            let mut data = plain.to_vec();
            rc4.process(&mut data);
            assert_eq!(data, from_hex(want), "key {:?}", String::from_utf8_lossy(key));
        }
    }

    /// RFC 6229 keystream for key 0102030405 (first 16 bytes).
    #[test]
    fn rfc6229_keystream() {
        let mut rc4 = Rc4::new(&[1, 2, 3, 4, 5]).unwrap();
        assert_eq!(rc4.keystream(16), from_hex("b2396305f03dc027ccc3524a0a1118a8"));
    }

    #[test]
    fn xor_is_involution() {
        let mut a = Rc4::new(b"somekey").unwrap();
        let mut b = Rc4::new(b"somekey").unwrap();
        let mut data: Vec<u8> = (0..200u8).collect();
        let original = data.clone();
        a.process(&mut data);
        assert_ne!(data, original);
        b.process(&mut data);
        assert_eq!(data, original);
    }

    #[test]
    fn streaming_matches_oneshot() {
        let mut one = Rc4::new(b"k").unwrap();
        let mut two = Rc4::new(b"k").unwrap();
        let mut big = vec![7u8; 100];
        one.process(&mut big);
        let mut parts = vec![7u8; 100];
        let (first, second) = parts.split_at_mut(33);
        two.process(first);
        two.process(second);
        assert_eq!(big, parts);
    }

    #[test]
    fn key_length_limits() {
        assert!(Rc4::new(&[]).is_err());
        assert!(Rc4::new(&[0u8; 257]).is_err());
        assert!(Rc4::new(&[0u8; 256]).is_ok());
        assert!(Rc4::new(&[0u8; 1]).is_ok());
    }

    #[test]
    fn counts_setup_and_bytes() {
        let (_, snap) = counters::counted(|| {
            let mut rc4 = Rc4::new(b"key").unwrap();
            let mut data = [0u8; 40];
            rc4.process(&mut data);
        });
        assert_eq!(snap.calls("rc4_key_setup"), 1);
        assert_eq!(snap.units("rc4_bytes"), 40);
    }
}
