//! Cipher-block chaining over any [`BlockCipher`].
//!
//! The paper notes (§2) that CBC "ensures a dependency between blocks of
//! data within the message and removes the potential for parallelism" — the
//! property the crypto-engine ablation bench quantifies. The IV handling
//! matches SSL v3: the chaining state carries over from record to record.

use crate::{BlockCipher, CipherError};

/// Largest block length supported by the chaining buffers (AES's 16 bytes).
/// Keeping the chaining state on the stack lets `decrypt` run without heap
/// allocation, which the record layer's in-place pipeline depends on.
const MAX_BLOCK: usize = 16;

/// A CBC-mode wrapper owning the cipher and the running IV.
///
/// # Examples
///
/// ```
/// use sslperf_ciphers::{Aes, Cbc};
///
/// let key = [0u8; 16];
/// let iv = vec![0u8; 16];
/// let mut enc = Cbc::new(Aes::new(&key)?, iv.clone())?;
/// let mut dec = Cbc::new(Aes::new(&key)?, iv)?;
///
/// let mut data = *b"exactly 32 bytes of merry text!!";
/// enc.encrypt(&mut data)?;
/// dec.decrypt(&mut data)?;
/// assert_eq!(&data, b"exactly 32 bytes of merry text!!");
/// # Ok::<(), sslperf_ciphers::CipherError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Cbc<C> {
    cipher: C,
    iv: Vec<u8>,
}

impl<C: BlockCipher> Cbc<C> {
    /// Wraps `cipher` with the initial chaining vector `iv`.
    ///
    /// # Errors
    ///
    /// Returns [`CipherError::InvalidDataLen`] if `iv` is not exactly one
    /// block long.
    pub fn new(cipher: C, iv: Vec<u8>) -> Result<Self, CipherError> {
        if iv.len() != cipher.block_len() || iv.len() > MAX_BLOCK {
            return Err(CipherError::InvalidDataLen { got: iv.len(), block: cipher.block_len() });
        }
        Ok(Cbc { cipher, iv })
    }

    /// Block length of the wrapped cipher.
    #[must_use]
    pub fn block_len(&self) -> usize {
        self.cipher.block_len()
    }

    /// The current chaining vector (the last ciphertext block processed).
    #[must_use]
    pub fn iv(&self) -> &[u8] {
        &self.iv
    }

    /// Borrows the wrapped cipher.
    #[must_use]
    pub fn cipher(&self) -> &C {
        &self.cipher
    }

    /// Encrypts `data` in place; the final ciphertext block becomes the IV
    /// for the next call (SSL v3 record chaining).
    ///
    /// # Errors
    ///
    /// Returns [`CipherError::InvalidDataLen`] unless `data` is a whole
    /// number of blocks.
    pub fn encrypt(&mut self, data: &mut [u8]) -> Result<(), CipherError> {
        let block = self.cipher.block_len();
        if !data.len().is_multiple_of(block) {
            return Err(CipherError::InvalidDataLen { got: data.len(), block });
        }
        for chunk in data.chunks_mut(block) {
            for (b, ivb) in chunk.iter_mut().zip(&self.iv) {
                *b ^= ivb;
            }
            self.cipher.encrypt_block(chunk);
            self.iv.copy_from_slice(chunk);
        }
        Ok(())
    }

    /// Decrypts `data` in place, carrying the chaining vector forward.
    ///
    /// # Errors
    ///
    /// Returns [`CipherError::InvalidDataLen`] unless `data` is a whole
    /// number of blocks.
    pub fn decrypt(&mut self, data: &mut [u8]) -> Result<(), CipherError> {
        let block = self.cipher.block_len();
        if !data.len().is_multiple_of(block) {
            return Err(CipherError::InvalidDataLen { got: data.len(), block });
        }
        let mut prev = [0u8; MAX_BLOCK];
        prev[..block].copy_from_slice(&self.iv);
        let mut cipher_block = [0u8; MAX_BLOCK];
        for chunk in data.chunks_mut(block) {
            cipher_block[..block].copy_from_slice(chunk);
            self.cipher.decrypt_block(chunk);
            for (b, pv) in chunk.iter_mut().zip(&prev[..block]) {
                *b ^= pv;
            }
            prev[..block].copy_from_slice(&cipher_block[..block]);
        }
        self.iv.copy_from_slice(&prev[..block]);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Aes, Des, Des3};

    fn from_hex(s: &str) -> Vec<u8> {
        (0..s.len()).step_by(2).map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap()).collect()
    }

    /// NIST SP 800-38A F.2.1: AES-128-CBC.
    #[test]
    fn nist_aes_cbc_vector() {
        let key = from_hex("2b7e151628aed2a6abf7158809cf4f3c");
        let iv = from_hex("000102030405060708090a0b0c0d0e0f");
        let mut enc = Cbc::new(Aes::new(&key).unwrap(), iv).unwrap();
        let mut data = from_hex(
            "6bc1bee22e409f96e93d7e117393172a\
             ae2d8a571e03ac9c9eb76fac45af8e51\
             30c81c46a35ce411e5fbc1191a0a52ef\
             f69f2445df4f9b17ad2b417be66c3710",
        );
        enc.encrypt(&mut data).unwrap();
        assert_eq!(
            data,
            from_hex(
                "7649abac8119b246cee98e9b12e9197d\
                 5086cb9b507219ee95db113a917678b2\
                 73bed6b8e3c1743b7116e69e22229516\
                 3ff1caa1681fac09120eca307586e1a7"
            )
        );
    }

    #[test]
    fn round_trip_all_ciphers() {
        let data_len = 64;
        let data: Vec<u8> = (0..data_len as u8).collect();

        let mut enc = Cbc::new(Aes::new(&[1u8; 16]).unwrap(), vec![2u8; 16]).unwrap();
        let mut dec = Cbc::new(Aes::new(&[1u8; 16]).unwrap(), vec![2u8; 16]).unwrap();
        let mut buf = data.clone();
        enc.encrypt(&mut buf).unwrap();
        dec.decrypt(&mut buf).unwrap();
        assert_eq!(buf, data);

        let mut enc = Cbc::new(Des::new(&[3u8; 8]).unwrap(), vec![4u8; 8]).unwrap();
        let mut dec = Cbc::new(Des::new(&[3u8; 8]).unwrap(), vec![4u8; 8]).unwrap();
        let mut buf = data.clone();
        enc.encrypt(&mut buf).unwrap();
        dec.decrypt(&mut buf).unwrap();
        assert_eq!(buf, data);

        let key24: Vec<u8> = (0..24).collect();
        let mut enc = Cbc::new(Des3::new(&key24).unwrap(), vec![5u8; 8]).unwrap();
        let mut dec = Cbc::new(Des3::new(&key24).unwrap(), vec![5u8; 8]).unwrap();
        let mut buf = data.clone();
        enc.encrypt(&mut buf).unwrap();
        dec.decrypt(&mut buf).unwrap();
        assert_eq!(buf, data);
    }

    #[test]
    fn iv_chains_across_calls() {
        // Encrypting in two calls must equal encrypting in one.
        let data: Vec<u8> = (0..48u8).collect();
        let mut one = Cbc::new(Aes::new(&[9u8; 16]).unwrap(), vec![7u8; 16]).unwrap();
        let mut split = Cbc::new(Aes::new(&[9u8; 16]).unwrap(), vec![7u8; 16]).unwrap();
        let mut whole = data.clone();
        one.encrypt(&mut whole).unwrap();
        let mut parts = data.clone();
        let (a, b) = parts.split_at_mut(16);
        split.encrypt(a).unwrap();
        split.encrypt(b).unwrap();
        assert_eq!(whole, parts);
        // Same for decryption.
        let mut dec = Cbc::new(Aes::new(&[9u8; 16]).unwrap(), vec![7u8; 16]).unwrap();
        let (a, b) = whole.split_at_mut(32);
        dec.decrypt(a).unwrap();
        dec.decrypt(b).unwrap();
        assert_eq!(whole, data);
    }

    #[test]
    fn identical_plaintext_blocks_produce_distinct_ciphertext() {
        let mut enc = Cbc::new(Aes::new(&[1u8; 16]).unwrap(), vec![0u8; 16]).unwrap();
        let mut data = [0x42u8; 48];
        enc.encrypt(&mut data).unwrap();
        assert_ne!(data[0..16], data[16..32]);
        assert_ne!(data[16..32], data[32..48]);
    }

    #[test]
    fn rejects_misaligned_data_and_iv() {
        let mut cbc = Cbc::new(Aes::new(&[0u8; 16]).unwrap(), vec![0u8; 16]).unwrap();
        let mut bad = [0u8; 15];
        assert_eq!(cbc.encrypt(&mut bad), Err(CipherError::InvalidDataLen { got: 15, block: 16 }));
        assert_eq!(cbc.decrypt(&mut bad), Err(CipherError::InvalidDataLen { got: 15, block: 16 }));
        assert!(Cbc::new(Aes::new(&[0u8; 16]).unwrap(), vec![0u8; 8]).is_err());
    }

    #[test]
    fn empty_data_is_fine() {
        let mut cbc = Cbc::new(Des::new(&[0u8; 8]).unwrap(), vec![0u8; 8]).unwrap();
        let mut empty: [u8; 0] = [];
        cbc.encrypt(&mut empty).unwrap();
        cbc.decrypt(&mut empty).unwrap();
    }
}
