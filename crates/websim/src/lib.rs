//! In-memory HTTPS web-server transaction simulator.
//!
//! The paper's web-server numbers (Table 1, Figure 2) come from Apache +
//! `mod_ssl` driven by `curl` clients, profiled system-wide with Oprofile
//! (§3.1). This crate reproduces that setup on one machine with no sockets:
//!
//! * **SSL and crypto cycles are measured**, not modelled — every
//!   transaction drives the real [`sslperf_ssl`] state machines and the
//!   per-component accounting reads their instrumentation.
//! * **HTTP processing is real** — requests are parsed and responses built
//!   ([`http`]), and that work is timed as the `httpd` component.
//! * **Kernel TCP and libc work cannot exist in-process**, so the `vmlinux`
//!   and `other` components use the documented cost model in [`costs`]
//!   (fixed per-connection and per-byte charges typical of 2004-era Linux),
//!   applied to the actual byte counts on the simulated wire.
//!
//! The headline experiment: [`SecureWebServer::run_transaction`] executes
//! one full HTTPS GET (TCP "connect", SSL handshake, request, response,
//! teardown) and returns a [`TransactionReport`] whose component split is
//! the paper's Table 1 row set.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod costs;
pub mod http;
pub mod loadgen;

use costs::CostModel;
use sslperf_profile::{measure, Cycles, PhaseSet, Stopwatch};
use sslperf_rng::SslRng;
use sslperf_ssl::{CipherSuite, RecordBuffer, ServerConfig, SslClient, SslError, SslServer};

/// Component labels in the paper's Table 1 order.
pub const COMPONENT_NAMES: [&str; 5] = ["libcrypto", "libssl", "httpd", "vmlinux", "other"];

/// The outcome of one simulated HTTPS transaction.
#[derive(Debug, Clone)]
pub struct TransactionReport {
    /// Per-component cycles (libcrypto, libssl, httpd, vmlinux, other).
    pub components: PhaseSet,
    /// Crypto cycles by category: `public`, `private`, `hash`, `other`
    /// (the paper's Figure 2 split).
    pub crypto_categories: PhaseSet,
    /// Bytes that crossed the simulated wire in either direction.
    pub wire_bytes: usize,
    /// Response body size requested.
    pub file_size: usize,
    /// Whether the SSL session was resumed from the cache.
    pub resumed: bool,
}

impl TransactionReport {
    /// Percentage of the transaction spent in SSL processing
    /// (libcrypto + libssl) — the paper's headline ~70% number.
    #[must_use]
    pub fn ssl_percent(&self) -> f64 {
        self.components.percent("libcrypto") + self.components.percent("libssl")
    }
}

/// A simulated secure web server (Apache + mod_ssl stand-in).
#[derive(Debug)]
pub struct SecureWebServer<'a> {
    config: &'a ServerConfig,
    suite: CipherSuite,
    costs: CostModel,
}

impl<'a> SecureWebServer<'a> {
    /// Creates a server using `suite` for every connection.
    #[must_use]
    pub fn new(config: &'a ServerConfig, suite: CipherSuite) -> Self {
        SecureWebServer { config, suite, costs: CostModel::default() }
    }

    /// Replaces the kernel/httpd cost model (for sensitivity studies).
    #[must_use]
    pub fn with_costs(mut self, costs: CostModel) -> Self {
        self.costs = costs;
        self
    }

    /// The negotiated suite for new connections.
    #[must_use]
    pub fn suite(&self) -> CipherSuite {
        self.suite
    }

    /// The underlying SSL server configuration.
    #[must_use]
    pub fn config(&self) -> &'a ServerConfig {
        self.config
    }

    /// Runs one HTTPS GET transaction for a `file_size`-byte document and
    /// accounts every cycle to a component.
    ///
    /// `seed` determines all randomness (client and server), making runs
    /// reproducible. When `resume_from` carries a previous session, the
    /// client attempts resumption.
    ///
    /// # Errors
    ///
    /// Propagates any SSL failure (none occur for well-formed inputs).
    pub fn run_transaction(
        &self,
        file_size: usize,
        seed: u64,
        resume_from: Option<sslperf_ssl::SslClient>,
    ) -> Result<TransactionReport, SslError> {
        // `resume_from` as a whole client keeps the session handle API
        // simple: we pull the session out of an established client.
        let session = resume_from.and_then(|c| c.session());
        self.run_with_session(file_size, seed, session)
    }

    /// Like [`SecureWebServer::run_transaction`] but resuming an explicit
    /// session handle. Returns the report and the client (whose session can
    /// seed further resumptions).
    ///
    /// # Errors
    ///
    /// Propagates any SSL failure.
    pub fn run_with_session(
        &self,
        file_size: usize,
        seed: u64,
        session: Option<sslperf_ssl::ClientSession>,
    ) -> Result<TransactionReport, SslError> {
        let client_rng = SslRng::from_seed(&[b"client", &seed.to_le_bytes()[..]].concat());
        let server_rng = SslRng::from_seed(&[b"server", &seed.to_le_bytes()[..]].concat());
        let mut client = match session {
            Some(s) => SslClient::resuming(s, client_rng),
            None => SslClient::new(self.suite, client_rng),
        };
        let mut wire_bytes = 0usize;
        let mut ssl_total = Cycles::ZERO;

        // --- TCP connection (cost model only: no kernel in-process). ---
        let mut components = PhaseSet::new();

        // --- SSL handshake: server side measured for real. ---
        let flight1 = client.hello()?;
        wire_bytes += flight1.len();
        let sw = Stopwatch::start();
        let mut server = SslServer::new(self.config, server_rng);
        let flight2 = server.process_client_hello(&flight1)?;
        ssl_total += sw.elapsed();
        wire_bytes += flight2.len();

        let flight3 = client.process_server_flight(&flight2)?;
        wire_bytes += flight3.len();
        let sw = Stopwatch::start();
        let flight4 = server.process_client_flight(&flight3)?;
        ssl_total += sw.elapsed();
        wire_bytes += flight4.len();
        if !flight4.is_empty() {
            client.process_server_finish(&flight4)?;
        }

        // --- HTTP request over the secure channel (zero-copy pipeline:
        // the request is sealed, "transported" and opened inside one
        // buffer, the response inside another). ---
        let path = format!("/doc_{file_size}.bin");
        let mut request_buf = RecordBuffer::new();
        client.seal_into(http::HttpRequest::get(&path).to_bytes().as_slice(), &mut request_buf)?;
        wire_bytes += request_buf.len();

        let sw = Stopwatch::start();
        let request_range = server.open_in_place(&mut request_buf)?;
        ssl_total += sw.elapsed();
        let request_plain = &request_buf.as_slice()[request_range];

        // httpd work: parse the request, build the response (real work,
        // measured).
        let (response_bytes, httpd_cycles) = measure(|| {
            let request = http::HttpRequest::parse(request_plain)?;
            let body = http::synthesize_document(request.path(), file_size);
            Ok::<_, SslError>(http::HttpResponse::ok(body).to_bytes())
        });
        let response_bytes = response_bytes?;
        components.add("httpd", httpd_cycles);

        // Encrypt and "send" the response (may span several records, which
        // the client-side legacy opener reassembles).
        let sw = Stopwatch::start();
        let mut response_buf = RecordBuffer::new();
        server.seal_into(&response_bytes, &mut response_buf)?;
        ssl_total += sw.elapsed();
        wire_bytes += response_buf.len();
        let received = client.open(response_buf.as_slice())?;
        debug_assert_eq!(received.len(), response_bytes.len());

        // --- Component accounting. ---
        // libcrypto: handshake crypto functions + record-layer cipher/MAC.
        let handshake_crypto = server.crypto().total();
        let record_crypto = server.record_crypto().total();
        let libcrypto = handshake_crypto + record_crypto;
        components.add("libcrypto", libcrypto);
        // libssl: everything else inside the SSL calls.
        components.add("libssl", ssl_total.saturating_sub(libcrypto));
        // vmlinux + other: cost model over real byte counts.
        components.add("vmlinux", self.costs.kernel(wire_bytes));
        components.add("other", self.costs.userland_other(wire_bytes));

        // Figure 2 categories.
        let mut crypto_categories = PhaseSet::new();
        let mut public = Cycles::ZERO;
        let mut hash = Cycles::ZERO;
        let mut other = Cycles::ZERO;
        for phase in server.crypto().iter() {
            match phase.name() {
                "rsa_private_decryption" => public += phase.cycles(),
                "gen_master_secret" | "gen_key_block" | "final_finish_mac" | "finish_mac"
                | "init_finished_mac" => hash += phase.cycles(),
                // Mixed symmetric+hash records during the handshake count
                // under private key encryption (they are dominated by the
                // cipher for block suites).
                "pri_decryption_and_mac" | "pri_encryption_and_mac" => {}
                _ => other += phase.cycles(),
            }
        }
        let record = server.record_crypto();
        crypto_categories.add("public", public);
        crypto_categories.add("private", record.cycles("cipher"));
        crypto_categories.add("hash", hash + record.cycles("mac"));
        crypto_categories.add("other", other);

        Ok(TransactionReport {
            components,
            crypto_categories,
            wire_bytes,
            file_size,
            resumed: server.resumed(),
        })
    }

    /// Runs `n` transactions (fresh sessions) and returns the merged
    /// component and category breakdowns.
    ///
    /// # Errors
    ///
    /// Propagates the first SSL failure.
    pub fn run_workload(
        &self,
        file_size: usize,
        n: usize,
    ) -> Result<(PhaseSet, PhaseSet), SslError> {
        let mut components = PhaseSet::new();
        let mut categories = PhaseSet::new();
        for i in 0..n {
            let report = self.run_with_session(file_size, i as u64, None)?;
            components.merge(&report.components);
            categories.merge(&report.crypto_categories);
        }
        Ok((components, categories))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sslperf_rsa::{LimbWidth, RsaPrivateKey};
    use std::sync::OnceLock;

    fn config() -> &'static ServerConfig {
        static CONFIG: OnceLock<ServerConfig> = OnceLock::new();
        CONFIG.get_or_init(|| {
            let mut rng = SslRng::from_seed(b"websim-test-key");
            let mut key = RsaPrivateKey::generate(512, &mut rng).expect("keygen");
            // The shape assertions below (public-key dominance, resumption
            // skipping the RSA cost) restate the paper's 32-bit profile at
            // an already-shrunk 512-bit key; on the u64 serving kernels the
            // RSA share gets small enough that blinding-cache warmth flips
            // the comparisons. Pin the paper-faithful width, as the
            // Table 8/11 experiments do.
            key.set_limb_width(LimbWidth::U32);
            ServerConfig::new(key, "websim.test").expect("config")
        })
    }

    #[test]
    fn transaction_completes_and_accounts_components() {
        let server = SecureWebServer::new(config(), CipherSuite::RsaDesCbc3Sha);
        let report = server.run_transaction(1024, 1, None).unwrap();
        for name in COMPONENT_NAMES {
            assert!(report.components.get(name).is_some(), "missing {name}");
        }
        assert!(!report.resumed);
        assert!(report.wire_bytes > 1024, "wire carries at least the document");
        assert_eq!(report.file_size, 1024);
    }

    #[test]
    fn ssl_dominates_transaction() {
        let server = SecureWebServer::new(config(), CipherSuite::RsaDesCbc3Sha);
        let report = server.run_transaction(1024, 2, None).unwrap();
        // The paper reports ~70%; with a 512-bit key and modern hardware the
        // exact number differs, but SSL must still dominate.
        assert!(report.ssl_percent() > 40.0, "got {:.1}%", report.ssl_percent());
    }

    #[test]
    fn public_key_dominates_crypto_at_small_files() {
        let server = SecureWebServer::new(config(), CipherSuite::RsaDesCbc3Sha);
        let report = server.run_transaction(1024, 3, None).unwrap();
        let public = report.crypto_categories.percent("public");
        let private = report.crypto_categories.percent("private");
        assert!(public > private, "public {public:.1}% vs private {private:.1}%");
    }

    #[test]
    fn private_share_grows_with_file_size() {
        let server = SecureWebServer::new(config(), CipherSuite::RsaDesCbc3Sha);
        let small = server.run_transaction(1024, 4, None).unwrap();
        let large = server.run_transaction(32 * 1024, 5, None).unwrap();
        assert!(
            large.crypto_categories.percent("private") > small.crypto_categories.percent("private"),
            "bulk encryption share must grow with the file"
        );
    }

    #[test]
    fn resumed_transaction_skips_rsa() {
        config().clear_session_cache();
        let server = SecureWebServer::new(config(), CipherSuite::RsaDesCbc3Sha);
        let first = server.run_with_session(1024, 10, None).unwrap();
        assert!(!first.resumed);
        // Pull the session out of a fresh client/server pair through the
        // public API: run a handshake manually.
        let client_rng = SslRng::from_seed(b"resume-client");
        let server_rng = SslRng::from_seed(b"resume-server");
        let mut client = SslClient::new(CipherSuite::RsaDesCbc3Sha, client_rng);
        let mut ssl_server = SslServer::new(config(), server_rng);
        let f1 = client.hello().unwrap();
        let f2 = ssl_server.process_client_hello(&f1).unwrap();
        let f3 = client.process_server_flight(&f2).unwrap();
        let f4 = ssl_server.process_client_flight(&f3).unwrap();
        client.process_server_finish(&f4).unwrap();
        let session = client.session().unwrap();

        let resumed = server.run_with_session(1024, 11, Some(session)).unwrap();
        assert!(resumed.resumed);
        let full_crypto = first.components.cycles("libcrypto");
        let res_crypto = resumed.components.cycles("libcrypto");
        assert!(
            res_crypto.get() < full_crypto.get() / 2,
            "resumption must skip the RSA cost: {res_crypto} vs {full_crypto}"
        );
    }

    #[test]
    fn zero_cost_model_isolates_measured_components() {
        let server = SecureWebServer::new(config(), CipherSuite::RsaRc4Md5)
            .with_costs(crate::costs::CostModel::zero());
        let report = server.run_transaction(1024, 21, None).unwrap();
        assert_eq!(report.components.cycles("vmlinux"), Cycles::ZERO);
        assert_eq!(report.components.cycles("other"), Cycles::ZERO);
        assert!(report.components.cycles("libcrypto") > Cycles::ZERO);
        // With only measured components, SSL takes essentially everything.
        assert!(report.ssl_percent() > 90.0, "got {:.1}%", report.ssl_percent());
    }

    #[test]
    fn workload_aggregates() {
        let server = SecureWebServer::new(config(), CipherSuite::RsaRc4Md5);
        let (components, categories) = server.run_workload(2048, 3).unwrap();
        assert!(components.total() > Cycles::ZERO);
        assert!(categories.total() > Cycles::ZERO);
    }
}
