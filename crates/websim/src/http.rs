//! Minimal HTTP/1.0 request/response handling (the `httpd` component).
//!
//! Real parsing and formatting work, so the `httpd` row of the Table 1
//! reproduction is measured rather than modelled.

use crate::SslError;

/// A parsed HTTP request (method + path; headers are skipped, as a static
/// file server ignores them).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    method: String,
    path: String,
}

impl HttpRequest {
    /// Builds a GET request for `path`.
    #[must_use]
    pub fn get(path: &str) -> Self {
        HttpRequest { method: "GET".to_owned(), path: path.to_owned() }
    }

    /// The request method.
    #[must_use]
    pub fn method(&self) -> &str {
        &self.method
    }

    /// The request path.
    #[must_use]
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Serializes the request line and standard headers.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        format!(
            "{} {} HTTP/1.0\r\nHost: sslperf.sim\r\nUser-Agent: curl/7.12\r\nAccept: */*\r\n\r\n",
            self.method, self.path
        )
        .into_bytes()
    }

    /// Parses a request from wire bytes.
    ///
    /// # Errors
    ///
    /// Returns [`SslError::Decode`] when the request line is malformed.
    pub fn parse(bytes: &[u8]) -> Result<Self, SslError> {
        let text = std::str::from_utf8(bytes).map_err(|_| SslError::Decode("http request"))?;
        let line = text.lines().next().ok_or(SslError::Decode("http request line"))?;
        let mut parts = line.split_whitespace();
        let method = parts.next().ok_or(SslError::Decode("http method"))?;
        let path = parts.next().ok_or(SslError::Decode("http path"))?;
        let version = parts.next().ok_or(SslError::Decode("http version"))?;
        if !version.starts_with("HTTP/") {
            return Err(SslError::Decode("http version"));
        }
        Ok(HttpRequest { method: method.to_owned(), path: path.to_owned() })
    }
}

/// An HTTP response with a body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpResponse {
    status: u16,
    reason: &'static str,
    body: Vec<u8>,
}

impl HttpResponse {
    /// A `200 OK` response carrying `body`.
    #[must_use]
    pub fn ok(body: Vec<u8>) -> Self {
        HttpResponse { status: 200, reason: "OK", body }
    }

    /// A `404 Not Found` response.
    #[must_use]
    pub fn not_found() -> Self {
        HttpResponse { status: 404, reason: "Not Found", body: b"not found".to_vec() }
    }

    /// The status code.
    #[must_use]
    pub fn status(&self) -> u16 {
        self.status
    }

    /// The response body.
    #[must_use]
    pub fn body(&self) -> &[u8] {
        &self.body
    }

    /// Serializes status line, headers and body.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = format!(
            "HTTP/1.0 {} {}\r\nServer: sslperf-websim/0.1\r\nContent-Type: application/octet-stream\r\nContent-Length: {}\r\n\r\n",
            self.status,
            self.reason,
            self.body.len()
        )
        .into_bytes();
        out.extend_from_slice(&self.body);
        out
    }

    /// Parses a response, returning it and verifying `Content-Length`.
    ///
    /// # Errors
    ///
    /// Returns [`SslError::Decode`] on malformed framing.
    pub fn parse(bytes: &[u8]) -> Result<Self, SslError> {
        let split = bytes
            .windows(4)
            .position(|w| w == b"\r\n\r\n")
            .ok_or(SslError::Decode("http response header"))?;
        let head = std::str::from_utf8(&bytes[..split])
            .map_err(|_| SslError::Decode("http response header"))?;
        let body = bytes[split + 4..].to_vec();
        let status_line = head.lines().next().ok_or(SslError::Decode("http status line"))?;
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or(SslError::Decode("http status"))?;
        let reason = match status {
            200 => "OK",
            404 => "Not Found",
            _ => "Unknown",
        };
        for line in head.lines().skip(1) {
            if let Some(len) = line.strip_prefix("Content-Length: ") {
                let expect: usize =
                    len.trim().parse().map_err(|_| SslError::Decode("content length"))?;
                if expect != body.len() {
                    return Err(SslError::Decode("content length mismatch"));
                }
            }
        }
        Ok(HttpResponse { status, reason, body })
    }
}

/// Produces a deterministic pseudo-document of `size` bytes for `path`
/// (the static-file read a real server would serve from its cache).
#[must_use]
pub fn synthesize_document(path: &str, size: usize) -> Vec<u8> {
    let seed = path.bytes().fold(0u8, u8::wrapping_add);
    let mut body = Vec::with_capacity(size);
    for i in 0..size {
        body.push(seed.wrapping_add(i as u8));
    }
    body
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trip() {
        let req = HttpRequest::get("/index.html");
        let parsed = HttpRequest::parse(&req.to_bytes()).unwrap();
        assert_eq!(parsed, req);
        assert_eq!(parsed.method(), "GET");
        assert_eq!(parsed.path(), "/index.html");
    }

    #[test]
    fn malformed_requests_rejected() {
        assert!(HttpRequest::parse(b"").is_err());
        assert!(HttpRequest::parse(b"GET\r\n\r\n").is_err());
        assert!(HttpRequest::parse(b"GET /x FTP/1.0\r\n\r\n").is_err());
        assert!(HttpRequest::parse(&[0xff, 0xfe]).is_err());
    }

    #[test]
    fn response_round_trip() {
        let resp = HttpResponse::ok(vec![1, 2, 3, 4]);
        let parsed = HttpResponse::parse(&resp.to_bytes()).unwrap();
        assert_eq!(parsed.status(), 200);
        assert_eq!(parsed.body(), &[1, 2, 3, 4]);
    }

    #[test]
    fn response_length_mismatch_detected() {
        let mut wire = HttpResponse::ok(vec![9; 10]).to_bytes();
        wire.truncate(wire.len() - 1);
        assert!(HttpResponse::parse(&wire).is_err());
    }

    #[test]
    fn not_found_and_unknown_status() {
        let nf = HttpResponse::not_found();
        let parsed = HttpResponse::parse(&nf.to_bytes()).unwrap();
        assert_eq!(parsed.status(), 404);
    }

    #[test]
    fn documents_are_deterministic_and_sized() {
        let a = synthesize_document("/x", 1000);
        let b = synthesize_document("/x", 1000);
        let c = synthesize_document("/y", 1000);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 1000);
        assert!(synthesize_document("/z", 0).is_empty());
    }
}
