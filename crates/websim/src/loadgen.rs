//! Multi-client load generation — the paper's driver methodology.
//!
//! §3.1: "The client makes HTTP requests as fast as the server can handle
//! them. During our experiments, the server load is always maintained at
//! more than 90%." This module reproduces that setup with scoped threads
//! hammering one [`SecureWebServer`], and also provides the mixed
//! full/resumed workload behind the paper's session re-negotiation
//! discussion (§4.1).

use crate::{SecureWebServer, TransactionReport};
use sslperf_profile::{Cycles, PhaseSet, Stopwatch};
use sslperf_ssl::SslError;

/// Aggregate results of a load run.
#[derive(Debug)]
pub struct LoadReport {
    /// Total completed transactions.
    pub transactions: usize,
    /// Wall-clock cycles for the whole run.
    pub wall: Cycles,
    /// Merged per-component cycles across all transactions.
    pub components: PhaseSet,
    /// How many transactions resumed a cached session.
    pub resumed: usize,
}

impl LoadReport {
    /// Completed transactions per second (at the reference clock).
    #[must_use]
    pub fn transactions_per_second(&self) -> f64 {
        if self.wall == Cycles::ZERO {
            return 0.0;
        }
        self.transactions as f64 / self.wall.to_duration().as_secs_f64()
    }
}

/// Runs `clients` concurrent client threads, each performing
/// `per_client` fresh-session transactions of `file_size` bytes.
///
/// # Errors
///
/// Returns the first SSL failure from any client.
pub fn run_loaded(
    server: &SecureWebServer<'_>,
    file_size: usize,
    clients: usize,
    per_client: usize,
) -> Result<LoadReport, SslError> {
    let sw = Stopwatch::start();
    let results: Vec<Result<Vec<TransactionReport>, SslError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                scope.spawn(move || {
                    let mut reports = Vec::with_capacity(per_client);
                    for i in 0..per_client {
                        let seed = (c * 1_000_003 + i) as u64;
                        reports.push(server.run_with_session(file_size, seed, None)?);
                    }
                    Ok(reports)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });
    let wall = sw.elapsed();
    let mut components = PhaseSet::new();
    let mut transactions = 0;
    let mut resumed = 0;
    for result in results {
        for report in result? {
            components.merge(&report.components);
            transactions += 1;
            resumed += usize::from(report.resumed);
        }
    }
    Ok(LoadReport { transactions, wall, components, resumed })
}

/// Runs a single-threaded workload where each client session is reused for
/// `reuse` additional transactions (the §4.1 re-negotiation pattern).
/// `sessions` distinct sessions are established in total.
///
/// # Errors
///
/// Returns the first SSL failure.
pub fn run_with_resumption(
    server: &SecureWebServer<'_>,
    file_size: usize,
    sessions: usize,
    reuse: usize,
) -> Result<LoadReport, SslError> {
    let sw = Stopwatch::start();
    let mut components = PhaseSet::new();
    let mut transactions = 0;
    let mut resumed = 0;
    for s in 0..sessions {
        // Establish a fresh session via a handshake transaction.
        let seed = 0x5e55_0000 + s as u64;
        // The counted full transaction, plus a side handshake to obtain a
        // session handle through the public API.
        let report = server.run_with_session(file_size, seed, None)?;
        let session = establish_session(server, seed)?;
        components.merge(&report.components);
        transactions += 1;
        for r in 0..reuse {
            let report =
                server.run_with_session(file_size, seed + 1 + r as u64, Some(session.clone()))?;
            debug_assert!(report.resumed);
            resumed += usize::from(report.resumed);
            components.merge(&report.components);
            transactions += 1;
        }
    }
    Ok(LoadReport { transactions, wall: sw.elapsed(), components, resumed })
}

fn establish_session(
    server: &SecureWebServer<'_>,
    seed: u64,
) -> Result<sslperf_ssl::ClientSession, SslError> {
    use sslperf_rng::SslRng;
    use sslperf_ssl::{SslClient, SslServer};
    let mut client = SslClient::new(
        server.suite(),
        SslRng::from_seed(&[b"lg-client".as_slice(), &seed.to_le_bytes()].concat()),
    );
    let mut ssl_server = SslServer::new(
        server.config(),
        SslRng::from_seed(&[b"lg-server".as_slice(), &seed.to_le_bytes()].concat()),
    );
    let f1 = client.hello()?;
    let f2 = ssl_server.process_client_hello(&f1)?;
    let f3 = client.process_server_flight(&f2)?;
    let f4 = ssl_server.process_client_flight(&f3)?;
    client.process_server_finish(&f4)?;
    Ok(client.session().expect("established"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sslperf_rng::SslRng;
    use sslperf_rsa::RsaPrivateKey;
    use sslperf_ssl::{CipherSuite, ServerConfig};
    use std::sync::OnceLock;

    fn config() -> &'static ServerConfig {
        static CONFIG: OnceLock<ServerConfig> = OnceLock::new();
        CONFIG.get_or_init(|| {
            let mut rng = SslRng::from_seed(b"loadgen-test-key");
            let key = RsaPrivateKey::generate(512, &mut rng).expect("keygen");
            ServerConfig::new(key, "loadgen.test").expect("config")
        })
    }

    #[test]
    fn concurrent_clients_complete() {
        let server = SecureWebServer::new(config(), CipherSuite::RsaRc4Md5);
        let report = run_loaded(&server, 1024, 3, 2).expect("load run");
        assert_eq!(report.transactions, 6);
        assert_eq!(report.resumed, 0);
        assert!(report.transactions_per_second() > 0.0);
        assert!(report.components.total() > Cycles::ZERO);
    }

    #[test]
    fn resumption_mix_mostly_resumes() {
        config().clear_session_cache();
        let server = SecureWebServer::new(config(), CipherSuite::RsaDesCbc3Sha);
        let report = run_with_resumption(&server, 1024, 2, 3).expect("mixed run");
        assert_eq!(report.transactions, 2 * (1 + 3));
        assert_eq!(report.resumed, 2 * 3);
    }

    #[test]
    fn resumption_cuts_aggregate_crypto() {
        config().clear_session_cache();
        let server = SecureWebServer::new(config(), CipherSuite::RsaDesCbc3Sha);
        let no_reuse = run_loaded(&server, 1024, 1, 4).expect("fresh sessions");
        config().clear_session_cache();
        let with_reuse = run_with_resumption(&server, 1024, 1, 3).expect("resumed sessions");
        // Same transaction count (4), far less public-key work.
        assert_eq!(no_reuse.transactions, with_reuse.transactions);
        assert!(
            with_reuse.components.cycles("libcrypto") < no_reuse.components.cycles("libcrypto"),
            "resumption must reduce crypto cycles"
        );
    }
}
