//! Multi-client load generation — the paper's driver methodology.
//!
//! §3.1: "The client makes HTTP requests as fast as the server can handle
//! them. During our experiments, the server load is always maintained at
//! more than 90%." This module reproduces that setup with scoped threads
//! hammering one [`SecureWebServer`], and also provides the mixed
//! full/resumed workload behind the paper's session re-negotiation
//! discussion (§4.1).

use crate::http::{HttpRequest, HttpResponse};
use crate::{SecureWebServer, TransactionReport};
use sslperf_profile::{Cycles, PhaseSet, Stopwatch};
use sslperf_ssl::{CipherSuite, Protocol, SslError};
use std::fmt;
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// Aggregate results of a load run.
#[derive(Debug)]
pub struct LoadReport {
    /// Total completed transactions.
    pub transactions: usize,
    /// Wall-clock cycles for the whole run.
    pub wall: Cycles,
    /// Merged per-component cycles across all transactions.
    pub components: PhaseSet,
    /// How many transactions resumed a cached session.
    pub resumed: usize,
}

impl LoadReport {
    /// Completed transactions per second (at the reference clock).
    #[must_use]
    pub fn transactions_per_second(&self) -> f64 {
        if self.wall == Cycles::ZERO {
            return 0.0;
        }
        self.transactions as f64 / self.wall.to_duration().as_secs_f64()
    }
}

/// Runs `clients` concurrent client threads, each performing
/// `per_client` fresh-session transactions of `file_size` bytes.
///
/// # Errors
///
/// Returns the first SSL failure from any client.
pub fn run_loaded(
    server: &SecureWebServer<'_>,
    file_size: usize,
    clients: usize,
    per_client: usize,
) -> Result<LoadReport, SslError> {
    let sw = Stopwatch::start();
    let results: Vec<Result<Vec<TransactionReport>, SslError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                scope.spawn(move || {
                    let mut reports = Vec::with_capacity(per_client);
                    for i in 0..per_client {
                        let seed = (c * 1_000_003 + i) as u64;
                        reports.push(server.run_with_session(file_size, seed, None)?);
                    }
                    Ok(reports)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });
    let wall = sw.elapsed();
    let mut components = PhaseSet::new();
    let mut transactions = 0;
    let mut resumed = 0;
    for result in results {
        for report in result? {
            components.merge(&report.components);
            transactions += 1;
            resumed += usize::from(report.resumed);
        }
    }
    Ok(LoadReport { transactions, wall, components, resumed })
}

/// Runs a single-threaded workload where each client session is reused for
/// `reuse` additional transactions (the §4.1 re-negotiation pattern).
/// `sessions` distinct sessions are established in total.
///
/// # Errors
///
/// Returns the first SSL failure.
pub fn run_with_resumption(
    server: &SecureWebServer<'_>,
    file_size: usize,
    sessions: usize,
    reuse: usize,
) -> Result<LoadReport, SslError> {
    let sw = Stopwatch::start();
    let mut components = PhaseSet::new();
    let mut transactions = 0;
    let mut resumed = 0;
    for s in 0..sessions {
        // Establish a fresh session via a handshake transaction.
        let seed = 0x5e55_0000 + s as u64;
        // The counted full transaction, plus a side handshake to obtain a
        // session handle through the public API.
        let report = server.run_with_session(file_size, seed, None)?;
        let session = establish_session(server, seed)?;
        components.merge(&report.components);
        transactions += 1;
        for r in 0..reuse {
            let report =
                server.run_with_session(file_size, seed + 1 + r as u64, Some(session.clone()))?;
            debug_assert!(report.resumed);
            resumed += usize::from(report.resumed);
            components.merge(&report.components);
            transactions += 1;
        }
    }
    Ok(LoadReport { transactions, wall: sw.elapsed(), components, resumed })
}

/// Tunables for [`run_socket_load`].
#[derive(Debug, Clone)]
pub struct SocketLoadOptions {
    /// Concurrent client threads.
    pub clients: usize,
    /// Measured transactions each client performs.
    pub transactions_per_client: usize,
    /// Unmeasured transactions each client runs first (connection setup,
    /// cache warmup).
    pub warmup_per_client: usize,
    /// When true, every transaction after a client's first offers its
    /// previous session id for resumption; when false every handshake is
    /// full.
    pub resume: bool,
    /// Document size requested per transaction.
    pub file_size: usize,
    /// Cipher suite every client offers.
    pub suite: CipherSuite,
    /// When true, clients advertise the session-ticket extension, so the
    /// server hands out encrypted tickets and resumption goes through the
    /// stateless path instead of the server-side id cache.
    pub tickets: bool,
}

impl Default for SocketLoadOptions {
    fn default() -> Self {
        SocketLoadOptions {
            clients: 8,
            transactions_per_client: 8,
            warmup_per_client: 1,
            resume: true,
            file_size: 1024,
            suite: CipherSuite::RsaDesCbc3Sha,
            tickets: false,
        }
    }
}

/// Latency distribution over the measured transactions of a socket run.
#[derive(Debug, Clone, Copy)]
pub struct LatencyPercentiles {
    /// Median.
    pub p50: Duration,
    /// 95th percentile.
    pub p95: Duration,
    /// 99th percentile.
    pub p99: Duration,
}

impl LatencyPercentiles {
    fn from_sorted(sorted: &[Duration]) -> Self {
        let at = |q: f64| {
            if sorted.is_empty() {
                return Duration::ZERO;
            }
            let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
            sorted[idx]
        };
        LatencyPercentiles { p50: at(0.50), p95: at(0.95), p99: at(0.99) }
    }
}

impl fmt::Display for LatencyPercentiles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p50 {:?}  p95 {:?}  p99 {:?}", self.p50, self.p95, self.p99)
    }
}

/// Results of a socket-backed load run against a real TCP server.
#[derive(Debug)]
pub struct SocketLoadReport {
    /// Measured transactions completed (warmup excluded).
    pub transactions: usize,
    /// Wall-clock time for the measured phase.
    pub wall: Duration,
    /// Measured transactions that resumed a cached session.
    pub resumed: usize,
    /// Handshake-only latency distribution.
    pub handshake_latency: LatencyPercentiles,
    /// Full-transaction (connect through close) latency distribution.
    pub transaction_latency: LatencyPercentiles,
}

impl SocketLoadReport {
    /// Measured transactions per wall-clock second.
    #[must_use]
    pub fn transactions_per_second(&self) -> f64 {
        if self.wall.is_zero() {
            return 0.0;
        }
        self.transactions as f64 / self.wall.as_secs_f64()
    }
}

impl fmt::Display for SocketLoadReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "socket load: {} transactions in {:?} ({:.1} transactions/s)",
            self.transactions,
            self.wall,
            self.transactions_per_second()
        )?;
        writeln!(f, "  resumed handshakes: {}/{}", self.resumed, self.transactions)?;
        writeln!(f, "  handshake latency:   {}", self.handshake_latency)?;
        write!(f, "  transaction latency: {}", self.transaction_latency)
    }
}

/// Drives a TCP SSL server with concurrent client threads over real
/// sockets, one connection per transaction (the paper's §3.1 driver, on
/// the wire instead of in memory).
///
/// Each client performs `warmup_per_client` unmeasured transactions, then
/// `transactions_per_client` measured ones; with
/// [`SocketLoadOptions::resume`] set, each transaction after a client's
/// first reconnects offering the previous session id, exercising the
/// server's cross-connection session cache.
///
/// # Errors
///
/// Returns the first SSL or transport failure from any client.
pub fn run_socket_load(
    addr: SocketAddr,
    options: &SocketLoadOptions,
) -> Result<SocketLoadReport, SslError> {
    let start = Instant::now();
    let results: Vec<Result<Vec<TxnSample>, SslError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..options.clients)
            .map(|c| scope.spawn(move || socket_client(addr, options, c)))
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });
    let wall = start.elapsed();

    let mut samples = Vec::new();
    for result in results {
        samples.extend(result?);
    }
    let transactions = samples.len();
    let resumed = samples.iter().filter(|s| s.resumed).count();
    let mut handshakes: Vec<Duration> = samples.iter().map(|s| s.handshake).collect();
    let mut totals: Vec<Duration> = samples.iter().map(|s| s.total).collect();
    handshakes.sort_unstable();
    totals.sort_unstable();
    Ok(SocketLoadReport {
        transactions,
        wall,
        resumed,
        handshake_latency: LatencyPercentiles::from_sorted(&handshakes),
        transaction_latency: LatencyPercentiles::from_sorted(&totals),
    })
}

/// Tunables for [`run_event_load`].
#[derive(Debug, Clone)]
pub struct EventLoadOptions {
    /// Concurrent connections, all driven from one generator thread.
    pub connections: usize,
    /// Document size requested on each connection.
    pub file_size: usize,
    /// Protocol every client speaks (the server's dispatching machine
    /// serves either on the same port).
    pub protocol: Protocol,
    /// Cipher suite every client offers.
    pub suite: CipherSuite,
    /// When true, no client sends its HTTP request until *every* client
    /// has completed its handshake — so all connections are provably open
    /// and established at the same instant (the concurrency proof the
    /// event-loop server's C10k claim rests on).
    pub hold_until_all_established: bool,
    /// Abort the run if it has not completed within this budget.
    pub deadline: Duration,
}

impl Default for EventLoadOptions {
    fn default() -> Self {
        EventLoadOptions {
            connections: 16,
            file_size: 1024,
            protocol: Protocol::Ssl3,
            suite: CipherSuite::RsaDesCbc3Sha,
            hold_until_all_established: true,
            deadline: Duration::from_secs(30),
        }
    }
}

/// Results of an event-driven load run.
#[derive(Debug)]
pub struct EventLoadReport {
    /// Connections that completed a full HTTP transaction.
    pub transactions: usize,
    /// Largest number of simultaneously established connections observed.
    pub peak_established: usize,
    /// Wall-clock time for the whole run.
    pub wall: Duration,
    /// Handshake latency distribution (connect to Finished verified).
    pub handshake_latency: LatencyPercentiles,
}

impl EventLoadReport {
    /// Completed transactions per wall-clock second.
    #[must_use]
    pub fn transactions_per_second(&self) -> f64 {
        if self.wall.as_secs_f64() == 0.0 {
            0.0
        } else {
            self.transactions as f64 / self.wall.as_secs_f64()
        }
    }
}

/// Drives many concurrent non-blocking client connections from a single
/// thread, each a sans-io [`ClientEngine`](sslperf_ssl::ClientEngine) fed
/// by readiness sweeps — the client-side mirror of the event-loop server.
///
/// Unlike [`run_socket_load`] (one blocking thread per client), the
/// connection count here is limited only by sockets, so it can hold far
/// more connections open simultaneously than the generator has threads;
/// with [`EventLoadOptions::hold_until_all_established`] the run proves
/// all of them were established at once via
/// [`EventLoadReport::peak_established`].
///
/// # Errors
///
/// Returns the first SSL or transport failure from any connection, and
/// [`SslError::Io`] (`"timed out: …"`) when the deadline expires.
pub fn run_event_load(
    addr: SocketAddr,
    options: &EventLoadOptions,
) -> Result<EventLoadReport, SslError> {
    run_event_load_inner(addr, options, usize::MAX, None::<fn()>)
}

/// [`run_event_load`] with a one-shot fault injection: `disrupt` fires the
/// first time at least `disrupt_at_established` connections have completed
/// their handshake, while the remaining handshakes are still in flight —
/// the harness for killing a crypto engine (or a fleet instance) mid-load
/// and proving the survivors finish every connection. A run that returns
/// `Ok` completed every transaction: zero handshake failures.
///
/// # Errors
///
/// Same contract as [`run_event_load`].
pub fn run_event_load_disrupted(
    addr: SocketAddr,
    options: &EventLoadOptions,
    disrupt_at_established: usize,
    disrupt: impl FnOnce(),
) -> Result<EventLoadReport, SslError> {
    run_event_load_inner(addr, options, disrupt_at_established, Some(disrupt))
}

fn run_event_load_inner(
    addr: SocketAddr,
    options: &EventLoadOptions,
    disrupt_at_established: usize,
    mut disrupt: Option<impl FnOnce()>,
) -> Result<EventLoadReport, SslError> {
    use sslperf_rng::SslRng;
    use sslperf_ssl::{ClientConfig, ClientMachine, Engine};

    let start = Instant::now();
    let client_config = ClientConfig::new(options.protocol, options.suite);
    let mut clients = Vec::with_capacity(options.connections);
    for i in 0..options.connections {
        let stream = TcpStream::connect(addr).map_err(|e| SslError::Io(e.to_string()))?;
        stream.set_nodelay(true).map_err(|e| SslError::Io(e.to_string()))?;
        stream.set_nonblocking(true).map_err(|e| SslError::Io(e.to_string()))?;
        let rng = SslRng::from_seed(format!("event-loadgen-{i}").as_bytes());
        let engine = Engine::new(ClientMachine::new(client_config, rng))?;
        clients.push(EventClient {
            stream,
            engine,
            started: Instant::now(),
            handshake: None,
            response: Vec::new(),
            request_sent: false,
            closing: false,
            done: false,
            ok: false,
        });
    }

    let mut scratch = vec![0u8; 16 * 1024];
    let mut peak_established = 0;
    while !clients.iter().all(|c| c.done) {
        if start.elapsed() > options.deadline {
            return Err(SslError::Io("timed out: event load deadline expired".into()));
        }
        let all_established = clients.iter().all(|c| c.done || c.engine.is_established());
        let release = !options.hold_until_all_established || all_established;
        let mut progress = false;
        for client in &mut clients {
            progress |= client.pump(release, options.file_size, &mut scratch)?;
        }
        let established_now =
            clients.iter().filter(|c| !c.done && c.engine.is_established()).count();
        peak_established = peak_established.max(established_now);
        // Fault injection: fire once, as soon as enough handshakes have
        // ever completed (the `handshake` latency stamp persists after the
        // connection finishes, so this is a cumulative count).
        if disrupt.is_some() {
            let ever_established = clients.iter().filter(|c| c.handshake.is_some()).count();
            if ever_established >= disrupt_at_established {
                if let Some(disrupt) = disrupt.take() {
                    disrupt();
                }
            }
        }
        if !progress {
            std::thread::sleep(Duration::from_micros(500));
        }
    }
    let wall = start.elapsed();

    let transactions = clients.iter().filter(|c| c.ok).count();
    let mut handshakes: Vec<Duration> = clients.iter().filter_map(|c| c.handshake).collect();
    handshakes.sort_unstable();
    Ok(EventLoadReport {
        transactions,
        peak_established,
        wall,
        handshake_latency: LatencyPercentiles::from_sorted(&handshakes),
    })
}

/// One multiplexed client connection of [`run_event_load`].
struct EventClient {
    stream: TcpStream,
    engine: sslperf_ssl::Engine<sslperf_ssl::ClientMachine>,
    started: Instant,
    handshake: Option<Duration>,
    response: Vec<u8>,
    request_sent: bool,
    closing: bool,
    done: bool,
    ok: bool,
}

impl EventClient {
    /// Makes whatever progress the socket allows. Returns true when
    /// anything moved.
    fn pump(
        &mut self,
        release: bool,
        file_size: usize,
        scratch: &mut [u8],
    ) -> Result<bool, SslError> {
        use std::io::{ErrorKind, Read, Write};

        if self.done {
            return Ok(false);
        }
        let mut progress = false;

        // Read phase (skipped once closing: the goodbye is queued, only
        // the flush remains).
        while !self.closing {
            match self.stream.read(scratch) {
                Ok(0) => {
                    return Err(SslError::Io("server closed before the transaction ended".into()))
                }
                Ok(n) => {
                    progress = true;
                    let mut offset = 0;
                    while offset < n {
                        let consumed = self.engine.feed(&scratch[offset..n])?;
                        offset += consumed;
                        self.process(release, file_size)?;
                        if consumed == 0 && offset < n {
                            return Err(SslError::Decode("record backlog"));
                        }
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(SslError::Io(e.to_string())),
            }
        }
        self.process(release, file_size)?;

        // Write phase: handshake flights, the request, or the goodbye.
        while self.engine.wants_write() {
            match self.stream.write(self.engine.output()) {
                Ok(0) => return Err(SslError::Io("server closed during write".into())),
                Ok(n) => {
                    progress = true;
                    self.engine.consume_output(n);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(SslError::Io(e.to_string())),
            }
        }

        if self.closing && !self.engine.wants_write() {
            self.done = true;
            progress = true;
        }
        Ok(progress)
    }

    /// Advances the transaction state machine on the freshly fed bytes:
    /// note the handshake, send the request once released, assemble and
    /// check the response, then queue the orderly close.
    fn process(&mut self, release: bool, file_size: usize) -> Result<(), SslError> {
        if !self.engine.is_established() || self.closing {
            return Ok(());
        }
        if self.handshake.is_none() {
            self.handshake = Some(self.started.elapsed());
        }
        if !release {
            return Ok(());
        }
        if !self.request_sent {
            let path = format!("/doc_{file_size}.bin");
            self.engine.seal(&HttpRequest::get(&path).to_bytes())?;
            self.request_sent = true;
            return Ok(());
        }
        while let Some(range) = self.engine.open_next()? {
            self.response.extend_from_slice(&self.engine.buffered()[range]);
            if let Ok(response) = HttpResponse::parse(&self.response) {
                if response.status() != 200 || response.body().len() != file_size {
                    return Err(SslError::Decode("unexpected http response"));
                }
                self.ok = true;
                self.engine.queue_close_notify()?;
                self.closing = true;
                return Ok(());
            }
        }
        Ok(())
    }
}

struct TxnSample {
    handshake: Duration,
    total: Duration,
    resumed: bool,
}

/// One client thread: sequential transactions, session carried across
/// connections when resumption is on.
fn socket_client(
    addr: SocketAddr,
    options: &SocketLoadOptions,
    client_index: usize,
) -> Result<Vec<TxnSample>, SslError> {
    use sslperf_rng::SslRng;
    use sslperf_ssl::{ClientSession, SslClient};

    let total = options.warmup_per_client + options.transactions_per_client;
    let mut samples = Vec::with_capacity(options.transactions_per_client);
    let mut session: Option<ClientSession> = None;
    // One record-buffer pair for the whole client thread: the bulk-data
    // phase of every transaction runs through the zero-copy pipeline.
    let mut tx_buf = sslperf_ssl::RecordBuffer::with_record_capacity();
    let mut rx_buf = sslperf_ssl::RecordBuffer::with_record_capacity();
    for txn in 0..total {
        let rng = SslRng::from_seed(
            &[
                b"socket-loadgen".as_slice(),
                &(client_index as u64).to_le_bytes(),
                &(txn as u64).to_le_bytes(),
            ]
            .concat(),
        );
        let mut client = match session.take() {
            Some(s) if options.resume => SslClient::resuming(s, rng),
            _ if options.tickets => SslClient::new(options.suite, rng).with_tickets(),
            _ => SslClient::new(options.suite, rng),
        };

        let start = Instant::now();
        let mut socket = TcpStream::connect(addr).map_err(|e| SslError::Io(e.to_string()))?;
        // Without this, Nagle + delayed ACK stall the request that follows
        // a resumed handshake's back-to-back small writes by ~40ms.
        socket.set_nodelay(true).map_err(|e| SslError::Io(e.to_string()))?;
        client.handshake_transport(&mut socket)?;
        let handshake = start.elapsed();

        let path = format!("/doc_{}.bin", options.file_size);
        client.send_buffered(&mut socket, &HttpRequest::get(&path).to_bytes(), &mut tx_buf)?;
        let response = read_response(&mut client, &mut socket, options.file_size, &mut rx_buf)?;
        if response.status() != 200 || response.body().len() != options.file_size {
            return Err(SslError::Decode("unexpected http response"));
        }
        client.close_transport(&mut socket)?;
        let elapsed = start.elapsed();

        let resumed = client.resumed();
        session = client.session();
        if txn >= options.warmup_per_client {
            samples.push(TxnSample { handshake, total: elapsed, resumed });
        }
    }
    Ok(samples)
}

/// Tunables for [`run_restart_load`].
#[derive(Debug, Clone)]
pub struct RestartLoadOptions {
    /// Concurrent client threads; each establishes one session before the
    /// disruption and reconnects with it afterwards.
    pub clients: usize,
    /// When true, clients advertise the session-ticket extension and
    /// resume from the encrypted ticket; when false they rely on the
    /// server-side id cache.
    pub tickets: bool,
    /// Document size requested per transaction.
    pub file_size: usize,
    /// Cipher suite every client offers.
    pub suite: CipherSuite,
}

impl Default for RestartLoadOptions {
    fn default() -> Self {
        RestartLoadOptions {
            clients: 8,
            tickets: true,
            file_size: 1024,
            suite: CipherSuite::RsaDesCbc3Sha,
        }
    }
}

/// Results of a restart-survival load run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RestartLoadReport {
    /// Sessions established by full handshakes before the disruption.
    pub established: usize,
    /// Post-disruption reconnections that offered a saved session.
    pub attempted: usize,
    /// Reconnections the server actually resumed.
    pub resumed: usize,
    /// Reconnections that failed outright (transport or protocol error).
    pub failed: usize,
}

impl RestartLoadReport {
    /// Post-disruption reconnections that resumed, as a percentage of
    /// those attempted — the restart-survival headline number.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        if self.attempted == 0 {
            0.0
        } else {
            self.resumed as f64 / self.attempted as f64 * 100.0
        }
    }
}

impl fmt::Display for RestartLoadReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "restart survival: {} established, {}/{} resumed after restart ({}% hit rate), {} failed",
            self.established,
            self.resumed,
            self.attempted,
            self.hit_rate().round(),
            self.failed
        )
    }
}

/// The restart-survival workload: every client establishes a session with
/// a full handshake, the caller's `disrupt` closure kills/restarts server
/// instances, and every client then reconnects offering its saved
/// session. The report says how many of those reconnections actually
/// resumed — with encrypted tickets the credentials live on the client
/// and survive the restart; with id-cache resumption they die with the
/// server's memory.
///
/// Phase-one failures propagate (nothing is being disrupted yet, so they
/// are real bugs); phase-two failures are counted in
/// [`RestartLoadReport::failed`] — a dropped connection is precisely the
/// kind of damage the disruption is allowed to cause.
///
/// # Errors
///
/// Returns the first SSL or transport failure from the establishment
/// phase.
pub fn run_restart_load(
    addr: SocketAddr,
    options: &RestartLoadOptions,
    disrupt: impl FnOnce(),
) -> Result<RestartLoadReport, SslError> {
    use sslperf_ssl::ClientSession;

    // Phase 1: every client performs one full-handshake transaction.
    let phase1: Vec<Result<Option<ClientSession>, SslError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..options.clients)
            .map(|c| {
                scope.spawn(move || {
                    let seed =
                        [b"restart-loadgen-full".as_slice(), &(c as u64).to_le_bytes()].concat();
                    restart_txn(addr, options, None, &seed).map(|(session, _)| session)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });
    let mut sessions = Vec::new();
    for result in phase1 {
        if let Some(session) = result? {
            sessions.push(session);
        }
    }
    let established = sessions.len();

    // The injected failure: the caller kills and/or restarts instances.
    disrupt();

    // Phase 2: every client reconnects offering its saved session.
    let phase2: Vec<Result<bool, SslError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = sessions
            .into_iter()
            .enumerate()
            .map(|(c, session)| {
                scope.spawn(move || {
                    let seed =
                        [b"restart-loadgen-resume".as_slice(), &(c as u64).to_le_bytes()].concat();
                    restart_txn(addr, options, Some(session), &seed).map(|(_, resumed)| resumed)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });

    let attempted = phase2.len();
    let mut resumed = 0;
    let mut failed = 0;
    for result in phase2 {
        match result {
            Ok(true) => resumed += 1,
            Ok(false) => {}
            Err(_) => failed += 1,
        }
    }
    Ok(RestartLoadReport { established, attempted, resumed, failed })
}

/// One restart-survival transaction: connect, handshake (fresh or
/// resuming), fetch the document, close. Returns the session handle for
/// a later resumption and whether this handshake resumed.
fn restart_txn(
    addr: SocketAddr,
    options: &RestartLoadOptions,
    session: Option<sslperf_ssl::ClientSession>,
    seed: &[u8],
) -> Result<(Option<sslperf_ssl::ClientSession>, bool), SslError> {
    use sslperf_rng::SslRng;
    use sslperf_ssl::SslClient;

    let rng = SslRng::from_seed(seed);
    let mut client = match session {
        Some(s) => SslClient::resuming(s, rng),
        None if options.tickets => SslClient::new(options.suite, rng).with_tickets(),
        None => SslClient::new(options.suite, rng),
    };

    let mut socket = TcpStream::connect(addr).map_err(|e| SslError::Io(e.to_string()))?;
    socket.set_nodelay(true).map_err(|e| SslError::Io(e.to_string()))?;
    client.handshake_transport(&mut socket)?;

    let mut tx_buf = sslperf_ssl::RecordBuffer::with_record_capacity();
    let mut rx_buf = sslperf_ssl::RecordBuffer::with_record_capacity();
    let path = format!("/doc_{}.bin", options.file_size);
    client.send_buffered(&mut socket, &HttpRequest::get(&path).to_bytes(), &mut tx_buf)?;
    let response = read_response(&mut client, &mut socket, options.file_size, &mut rx_buf)?;
    if response.status() != 200 || response.body().len() != options.file_size {
        return Err(SslError::Decode("unexpected http response"));
    }
    client.close_transport(&mut socket)?;

    let resumed = client.resumed();
    Ok((client.session(), resumed))
}

/// Accumulates records until the response's Content-Length is satisfied
/// (documents larger than one record fragment span several). Each record is
/// received and decrypted in place inside the reusable `record_buf`; only
/// the plaintext is appended to the assembly buffer.
fn read_response(
    client: &mut sslperf_ssl::SslClient,
    socket: &mut TcpStream,
    file_size: usize,
    record_buf: &mut sslperf_ssl::RecordBuffer,
) -> Result<HttpResponse, SslError> {
    let max_records = file_size / sslperf_ssl::MAX_FRAGMENT + 4;
    let mut buf = Vec::new();
    for _ in 0..max_records {
        let range = client.recv_buffered(socket, record_buf)?;
        buf.extend_from_slice(&record_buf.as_slice()[range]);
        if let Ok(response) = HttpResponse::parse(&buf) {
            return Ok(response);
        }
    }
    // One final parse so the caller sees the real decode error.
    HttpResponse::parse(&buf)
}

fn establish_session(
    server: &SecureWebServer<'_>,
    seed: u64,
) -> Result<sslperf_ssl::ClientSession, SslError> {
    use sslperf_rng::SslRng;
    use sslperf_ssl::{SslClient, SslServer};
    let mut client = SslClient::new(
        server.suite(),
        SslRng::from_seed(&[b"lg-client".as_slice(), &seed.to_le_bytes()].concat()),
    );
    let mut ssl_server = SslServer::new(
        server.config(),
        SslRng::from_seed(&[b"lg-server".as_slice(), &seed.to_le_bytes()].concat()),
    );
    let f1 = client.hello()?;
    let f2 = ssl_server.process_client_hello(&f1)?;
    let f3 = client.process_server_flight(&f2)?;
    let f4 = ssl_server.process_client_flight(&f3)?;
    client.process_server_finish(&f4)?;
    Ok(client.session().expect("established"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sslperf_rng::SslRng;
    use sslperf_rsa::RsaPrivateKey;
    use sslperf_ssl::{CipherSuite, ServerConfig};
    use std::sync::OnceLock;

    fn config() -> &'static ServerConfig {
        static CONFIG: OnceLock<ServerConfig> = OnceLock::new();
        CONFIG.get_or_init(|| {
            let mut rng = SslRng::from_seed(b"loadgen-test-key");
            let key = RsaPrivateKey::generate(512, &mut rng).expect("keygen");
            ServerConfig::new(key, "loadgen.test").expect("config")
        })
    }

    #[test]
    fn concurrent_clients_complete() {
        let server = SecureWebServer::new(config(), CipherSuite::RsaRc4Md5);
        let report = run_loaded(&server, 1024, 3, 2).expect("load run");
        assert_eq!(report.transactions, 6);
        assert_eq!(report.resumed, 0);
        assert!(report.transactions_per_second() > 0.0);
        assert!(report.components.total() > Cycles::ZERO);
    }

    #[test]
    fn resumption_mix_mostly_resumes() {
        config().clear_session_cache();
        let server = SecureWebServer::new(config(), CipherSuite::RsaDesCbc3Sha);
        let report = run_with_resumption(&server, 1024, 2, 3).expect("mixed run");
        assert_eq!(report.transactions, 2 * (1 + 3));
        assert_eq!(report.resumed, 2 * 3);
    }

    #[test]
    fn resumption_cuts_aggregate_crypto() {
        config().clear_session_cache();
        let server = SecureWebServer::new(config(), CipherSuite::RsaDesCbc3Sha);
        let no_reuse = run_loaded(&server, 1024, 1, 4).expect("fresh sessions");
        config().clear_session_cache();
        let with_reuse = run_with_resumption(&server, 1024, 1, 3).expect("resumed sessions");
        // Same transaction count (4), far less public-key work.
        assert_eq!(no_reuse.transactions, with_reuse.transactions);
        assert!(
            with_reuse.components.cycles("libcrypto") < no_reuse.components.cycles("libcrypto"),
            "resumption must reduce crypto cycles"
        );
    }
}
