//! Cost model for the components that cannot run in-process.
//!
//! The paper's `vmlinux` row (17.5% of a 1 KB HTTPS transaction) is Linux
//! 2.6 TCP/IP processing, and part of its `other` row is libc/pthread
//! overhead. Neither exists inside this single-process simulation, so they
//! are charged from a fixed model applied to the *measured* byte counts:
//!
//! * **Kernel**: a per-connection charge (socket setup/teardown, accept,
//!   three-way handshake processing, ~tens of syscalls) plus a per-KB
//!   charge (copies, checksums, interrupts). The defaults — 300 kcycles per
//!   connection and 12 kcycles per KB — are in line with published
//!   TCP-processing studies of that era (e.g. the rule of thumb of
//!   ~1 GHz/Gbps, and kernel profiles in the paper's reference \[10\]).
//! * **Other** (libc, threading): buffer management and dispatch, modelled
//!   as half the kernel's per-connection cost plus a smaller per-KB term.
//!
//! These constants shape only Table 1's two modelled rows; every
//! SSL/crypto/httpd number is measured. `EXPERIMENTS.md` discusses the
//! sensitivity.

use sslperf_profile::Cycles;

/// Per-component synthetic charges. Construct via [`CostModel::default`]
/// and adjust fields for sensitivity studies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Kernel cycles charged once per connection.
    pub kernel_per_conn: u64,
    /// Kernel cycles charged per KB crossing the wire.
    pub kernel_per_kb: u64,
    /// "Other" (libc/pthread) cycles charged once per connection.
    pub other_per_conn: u64,
    /// "Other" cycles charged per KB crossing the wire.
    pub other_per_kb: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            kernel_per_conn: 300_000,
            kernel_per_kb: 12_000,
            other_per_conn: 150_000,
            other_per_kb: 6_000,
        }
    }
}

impl CostModel {
    /// A model that charges nothing (isolates the measured components).
    #[must_use]
    pub fn zero() -> Self {
        CostModel { kernel_per_conn: 0, kernel_per_kb: 0, other_per_conn: 0, other_per_kb: 0 }
    }

    /// Kernel (`vmlinux`) cycles for one connection moving `wire_bytes`.
    #[must_use]
    pub fn kernel(&self, wire_bytes: usize) -> Cycles {
        Cycles::new(self.kernel_per_conn + self.kernel_per_kb * (wire_bytes as u64).div_ceil(1024))
    }

    /// `other` cycles for one connection moving `wire_bytes`.
    #[must_use]
    pub fn userland_other(&self, wire_bytes: usize) -> Cycles {
        Cycles::new(self.other_per_conn + self.other_per_kb * (wire_bytes as u64).div_ceil(1024))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_charges_scale_with_bytes() {
        let m = CostModel::default();
        let one_kb = m.kernel(1024);
        let ten_kb = m.kernel(10 * 1024);
        assert!(ten_kb > one_kb);
        assert_eq!(one_kb, Cycles::new(312_000));
        assert_eq!(ten_kb, Cycles::new(420_000));
    }

    #[test]
    fn partial_kb_rounds_up() {
        let m = CostModel::default();
        assert_eq!(m.kernel(1), m.kernel(1024));
        assert_eq!(m.kernel(1025), m.kernel(2048));
    }

    #[test]
    fn zero_model_charges_nothing() {
        let m = CostModel::zero();
        assert_eq!(m.kernel(1 << 20), Cycles::ZERO);
        assert_eq!(m.userland_other(1 << 20), Cycles::ZERO);
    }

    #[test]
    fn other_cheaper_than_kernel() {
        let m = CostModel::default();
        assert!(m.userland_other(4096) < m.kernel(4096));
    }
}
