//! The interpreter.

use crate::cost;
use crate::ir::{AluOp, Instr, MemRef, Operand, Program, Reg, ShiftOp};
use crate::mix::InstrMix;
use std::fmt;

/// Simulator errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A memory access fell outside the machine's memory.
    OutOfBounds {
        /// Offending address.
        addr: u32,
    },
    /// The instruction budget was exhausted (runaway loop guard).
    StepLimit,
    /// A jump targeted an unbound label.
    UnboundLabel,
    /// An operand combination is invalid (e.g. storing to an immediate).
    BadOperand(&'static str),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::OutOfBounds { addr } => write!(f, "memory access out of bounds: {addr:#x}"),
            SimError::StepLimit => f.write_str("instruction step limit exceeded"),
            SimError::UnboundLabel => f.write_str("jump to unbound label"),
            SimError::BadOperand(what) => write!(f, "invalid operand: {what}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Statistics from one [`Machine::run`].
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    /// Dynamic instruction count.
    pub instructions: u64,
    /// Modelled cycles (see [`cost`]).
    pub cycles: f64,
    /// Per-mnemonic dynamic histogram.
    pub mix: InstrMix,
}

impl RunStats {
    /// Cycles per instruction under the cost model.
    #[must_use]
    pub fn cpi(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.cycles / self.instructions as f64
        }
    }

    /// Merges another run into this one.
    pub fn merge(&mut self, other: &RunStats) {
        self.instructions += other.instructions;
        self.cycles += other.cycles;
        self.mix.merge(&other.mix);
    }

    /// Scales the statistics by an integer factor (replaying a kernel `k`
    /// times).
    pub fn scale(&mut self, factor: u64) {
        self.instructions *= factor;
        self.cycles *= factor as f64;
        self.mix.scale(factor);
    }
}

/// The register machine: 8 GPRs, zero/carry flags, flat memory with a
/// downward stack at the top.
#[derive(Debug, Clone)]
pub struct Machine {
    regs: [u32; 8],
    zf: bool,
    cf: bool,
    memory: Vec<u8>,
}

impl Machine {
    /// A machine with `mem_size` bytes of memory; `esp` starts at the top.
    #[must_use]
    pub fn new(mem_size: usize) -> Self {
        let mut m = Machine { regs: [0; 8], zf: false, cf: false, memory: vec![0; mem_size] };
        m.regs[Reg::Esp.index()] = mem_size as u32;
        m
    }

    /// Reads a register.
    #[must_use]
    pub fn reg(&self, r: Reg) -> u32 {
        self.regs[r.index()]
    }

    /// Writes a register.
    pub fn set_reg(&mut self, r: Reg, value: u32) {
        self.regs[r.index()] = value;
    }

    /// Copies `bytes` into memory at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds memory.
    pub fn write_mem(&mut self, addr: u32, bytes: &[u8]) {
        let addr = addr as usize;
        self.memory[addr..addr + bytes.len()].copy_from_slice(bytes);
    }

    /// Copies `len` bytes out of memory at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds memory.
    #[must_use]
    pub fn read_mem(&self, addr: u32, len: usize) -> Vec<u8> {
        let addr = addr as usize;
        self.memory[addr..addr + len].to_vec()
    }

    /// Writes a little-endian u32 at `addr`.
    pub fn write_u32(&mut self, addr: u32, value: u32) {
        self.write_mem(addr, &value.to_le_bytes());
    }

    /// Reads a little-endian u32 at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds memory.
    #[must_use]
    pub fn read_u32(&self, addr: u32) -> u32 {
        let b = self.read_mem(addr, 4);
        u32::from_le_bytes([b[0], b[1], b[2], b[3]])
    }

    fn addr(&self, m: &MemRef) -> u32 {
        let mut a = m.disp;
        if let Some(b) = m.base {
            a = a.wrapping_add(self.regs[b.index()]);
        }
        if let Some((i, scale)) = m.index {
            a = a.wrapping_add(self.regs[i.index()].wrapping_mul(u32::from(scale)));
        }
        a
    }

    fn load_u32(&self, addr: u32) -> Result<u32, SimError> {
        let a = addr as usize;
        if a + 4 > self.memory.len() {
            return Err(SimError::OutOfBounds { addr });
        }
        Ok(u32::from_le_bytes(self.memory[a..a + 4].try_into().expect("bounds checked")))
    }

    fn store_u32(&mut self, addr: u32, value: u32) -> Result<(), SimError> {
        let a = addr as usize;
        if a + 4 > self.memory.len() {
            return Err(SimError::OutOfBounds { addr });
        }
        self.memory[a..a + 4].copy_from_slice(&value.to_le_bytes());
        Ok(())
    }

    fn load_u8(&self, addr: u32) -> Result<u8, SimError> {
        self.memory.get(addr as usize).copied().ok_or(SimError::OutOfBounds { addr })
    }

    fn store_u8(&mut self, addr: u32, value: u8) -> Result<(), SimError> {
        match self.memory.get_mut(addr as usize) {
            Some(slot) => {
                *slot = value;
                Ok(())
            }
            None => Err(SimError::OutOfBounds { addr }),
        }
    }

    fn read_operand(&self, op: &Operand) -> Result<u32, SimError> {
        match op {
            Operand::Reg(r) => Ok(self.regs[r.index()]),
            Operand::Imm(v) => Ok(*v),
            Operand::Mem(m) => self.load_u32(self.addr(m)),
        }
    }

    fn write_operand(&mut self, op: &Operand, value: u32) -> Result<(), SimError> {
        match op {
            Operand::Reg(r) => {
                self.regs[r.index()] = value;
                Ok(())
            }
            Operand::Imm(_) => Err(SimError::BadOperand("store to immediate")),
            Operand::Mem(m) => self.store_u32(self.addr(m), value),
        }
    }

    /// Runs `program` until `Halt` (or falling off the end), executing at
    /// most `max_steps` instructions.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::StepLimit`] when the budget is exhausted, plus
    /// memory/operand errors.
    pub fn run(&mut self, program: &Program, max_steps: u64) -> Result<RunStats, SimError> {
        let mut stats = RunStats::default();
        let mut pc = 0usize;
        while pc < program.code.len() {
            if stats.instructions >= max_steps {
                return Err(SimError::StepLimit);
            }
            let instr = &program.code[pc];
            stats.instructions += 1;
            stats.cycles += cost::instruction_cost(instr);
            stats.mix.record(instr.mnemonic());
            pc += 1;
            match instr {
                Instr::Mov(dst, src) => {
                    let v = self.read_operand(src)?;
                    self.write_operand(dst, v)?;
                }
                Instr::Movb(dst, src) => {
                    // Byte load zero-extends into registers; byte store takes
                    // the low byte.
                    match (dst, src) {
                        (Operand::Reg(r), Operand::Mem(m)) => {
                            let v = self.load_u8(self.addr(m))?;
                            self.regs[r.index()] = u32::from(v);
                        }
                        (Operand::Mem(m), Operand::Reg(r)) => {
                            let v = self.regs[r.index()] as u8;
                            self.store_u8(self.addr(m), v)?;
                        }
                        (Operand::Reg(r), Operand::Imm(v)) => {
                            self.regs[r.index()] = v & 0xff;
                        }
                        (Operand::Mem(m), Operand::Imm(v)) => {
                            self.store_u8(self.addr(m), *v as u8)?;
                        }
                        _ => return Err(SimError::BadOperand("movb operands")),
                    }
                }
                Instr::Alu(op, dst, src) => {
                    let a = self.read_operand(dst)?;
                    let b = self.read_operand(src)?;
                    let (result, carry) = match op {
                        AluOp::Xor => (a ^ b, false),
                        AluOp::And => (a & b, false),
                        AluOp::Or => (a | b, false),
                        AluOp::Add => a.overflowing_add(b),
                        AluOp::Adc => {
                            let (t, c1) = a.overflowing_add(b);
                            let (r, c2) = t.overflowing_add(u32::from(self.cf));
                            (r, c1 || c2)
                        }
                        AluOp::Sub | AluOp::Cmp => a.overflowing_sub(b),
                    };
                    self.zf = result == 0;
                    self.cf = carry;
                    if *op != AluOp::Cmp {
                        self.write_operand(dst, result)?;
                    }
                }
                Instr::Shift(op, dst, count) => {
                    let v = self.read_operand(dst)?;
                    let c = u32::from(*count) % 32;
                    let result = match op {
                        ShiftOp::Shr => v >> c,
                        ShiftOp::Shl => v << c,
                        ShiftOp::Ror => v.rotate_right(c),
                        ShiftOp::Rol => v.rotate_left(c),
                    };
                    self.zf = result == 0;
                    self.write_operand(dst, result)?;
                }
                Instr::Lea(dst, m) => {
                    let a = self.addr(m);
                    self.regs[dst.index()] = a;
                }
                Instr::Mul(src) => {
                    let a = u64::from(self.regs[Reg::Eax.index()]);
                    let b = u64::from(self.read_operand(src)?);
                    let product = a * b;
                    self.regs[Reg::Eax.index()] = product as u32;
                    self.regs[Reg::Edx.index()] = (product >> 32) as u32;
                    self.cf = product >> 32 != 0;
                }
                Instr::Inc(op) => {
                    let v = self.read_operand(op)?.wrapping_add(1);
                    self.zf = v == 0;
                    self.write_operand(op, v)?;
                }
                Instr::Dec(op) => {
                    let v = self.read_operand(op)?.wrapping_sub(1);
                    self.zf = v == 0;
                    self.write_operand(op, v)?;
                }
                Instr::Push(src) => {
                    let v = self.read_operand(src)?;
                    let sp = self.regs[Reg::Esp.index()].wrapping_sub(4);
                    self.regs[Reg::Esp.index()] = sp;
                    self.store_u32(sp, v)?;
                }
                Instr::Pop(r) => {
                    let sp = self.regs[Reg::Esp.index()];
                    let v = self.load_u32(sp)?;
                    self.regs[r.index()] = v;
                    self.regs[Reg::Esp.index()] = sp.wrapping_add(4);
                }
                Instr::Bswap(r) => {
                    let v = self.regs[r.index()].swap_bytes();
                    self.regs[r.index()] = v;
                }
                Instr::Jmp(l) => {
                    pc = program.labels[l.0].ok_or(SimError::UnboundLabel)?;
                }
                Instr::Jnz(l) => {
                    if !self.zf {
                        pc = program.labels[l.0].ok_or(SimError::UnboundLabel)?;
                    }
                }
                Instr::Jz(l) => {
                    if self.zf {
                        pc = program.labels[l.0].ok_or(SimError::UnboundLabel)?;
                    }
                }
                Instr::Nop => {}
                Instr::Halt => break,
            }
        }
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{mem, mem_idx};

    fn run(p: &Program) -> (Machine, RunStats) {
        let mut m = Machine::new(4096);
        let stats = m.run(p, 100_000).unwrap();
        (m, stats)
    }

    #[test]
    fn arithmetic_and_flags() {
        let mut p = Program::new();
        p.mov(Reg::Eax, 0xffff_ffffu32);
        p.alu(AluOp::Add, Reg::Eax, 1u32); // wraps to 0, carry set
        p.alu(AluOp::Adc, Reg::Eax, 0u32); // adds carry back
        p.halt();
        let (m, _) = run(&p);
        assert_eq!(m.reg(Reg::Eax), 1);
    }

    #[test]
    fn mul_produces_64_bit_product() {
        let mut p = Program::new();
        p.mov(Reg::Eax, 0x1234_5678u32);
        p.mov(Reg::Ebx, 0x9abc_def0u32);
        p.mul(Reg::Ebx);
        p.halt();
        let (m, _) = run(&p);
        let product = u64::from(0x1234_5678u32) * u64::from(0x9abc_def0u32);
        assert_eq!(m.reg(Reg::Eax), product as u32);
        assert_eq!(m.reg(Reg::Edx), (product >> 32) as u32);
    }

    #[test]
    fn memory_and_indexing() {
        let mut p = Program::new();
        p.mov(Reg::Ebx, 100u32);
        p.mov(mem(Reg::Ebx, 0), 0xdead_beefu32);
        p.mov(Reg::Ecx, 25u32);
        p.mov(Reg::Eax, mem_idx(0, Reg::Ecx, 4)); // [0 + 25*4] = [100]
        p.halt();
        let (m, _) = run(&p);
        assert_eq!(m.reg(Reg::Eax), 0xdead_beef);
    }

    #[test]
    fn loop_with_dec_jnz() {
        let mut p = Program::new();
        p.mov(Reg::Ecx, 10u32);
        p.mov(Reg::Eax, 0u32);
        let top = p.here();
        p.alu(AluOp::Add, Reg::Eax, 3u32);
        p.dec(Reg::Ecx);
        p.jnz(top);
        p.halt();
        let (m, stats) = run(&p);
        assert_eq!(m.reg(Reg::Eax), 30);
        // 2 setup + 10*(add,dec,jnz) + halt
        assert_eq!(stats.instructions, 2 + 30 + 1);
        assert_eq!(stats.mix.count("addl"), 10);
    }

    #[test]
    fn push_pop_round_trip() {
        let mut p = Program::new();
        p.mov(Reg::Eax, 77u32);
        p.pushl(Reg::Eax);
        p.mov(Reg::Eax, 0u32);
        p.popl(Reg::Ebx);
        p.halt();
        let (m, _) = run(&p);
        assert_eq!(m.reg(Reg::Ebx), 77);
        assert_eq!(m.reg(Reg::Esp), 4096);
    }

    #[test]
    fn movb_zero_extends() {
        let mut p = Program::new();
        p.mov(Reg::Ebx, 200u32);
        p.mov(mem(Reg::Ebx, 0), 0xaabb_ccddu32);
        p.mov(Reg::Eax, 0xffff_ffffu32);
        p.movb(Reg::Eax, mem(Reg::Ebx, 0));
        p.halt();
        let (m, _) = run(&p);
        assert_eq!(m.reg(Reg::Eax), 0xdd);
    }

    #[test]
    fn bswap_and_rotates() {
        let mut p = Program::new();
        p.mov(Reg::Eax, 0x1122_3344u32);
        p.bswap(Reg::Eax);
        p.mov(Reg::Ebx, 0x8000_0001u32);
        p.shift(ShiftOp::Rol, Reg::Ebx, 1);
        p.halt();
        let (m, _) = run(&p);
        assert_eq!(m.reg(Reg::Eax), 0x4433_2211);
        assert_eq!(m.reg(Reg::Ebx), 0x0000_0003);
    }

    #[test]
    fn out_of_bounds_detected() {
        let mut p = Program::new();
        p.mov(Reg::Eax, mem(Reg::Ebx, 1 << 20));
        let mut m = Machine::new(64);
        assert!(matches!(m.run(&p, 10), Err(SimError::OutOfBounds { .. })));
    }

    #[test]
    fn step_limit_stops_runaway_loops() {
        let mut p = Program::new();
        let top = p.here();
        p.jmp(top);
        let mut m = Machine::new(64);
        assert!(matches!(m.run(&p, 100), Err(SimError::StepLimit)));
    }

    #[test]
    fn stats_merge_and_scale() {
        let mut p = Program::new();
        p.nop().nop().halt();
        let (_, mut stats) = run(&p);
        let copy = stats.clone();
        stats.merge(&copy);
        assert_eq!(stats.instructions, 6);
        stats.scale(10);
        assert_eq!(stats.instructions, 60);
        assert_eq!(stats.mix.count("nop"), 40);
        assert!(stats.cpi() > 0.0);
    }

    #[test]
    fn error_display() {
        assert_eq!(SimError::StepLimit.to_string(), "instruction step limit exceeded");
        assert!(SimError::OutOfBounds { addr: 16 }.to_string().contains("0x10"));
    }
}
