//! A small x86-flavoured ISA simulator — the SoftSDV substitute.
//!
//! The paper collected dynamic instruction traces of the crypto kernels
//! with SoftSDV, a full-system simulator, to report the top-ten instruction
//! mixes (Table 12), the instruction body of `bn_mul_add_words` (Table 9),
//! and path length / CPI (Table 11). Those are properties of the
//! *instruction stream*, not of a particular machine, so this crate
//! reproduces them by executing the same kernels on a deterministic
//! register machine with x86 semantics:
//!
//! * [`ir`] — eight 32-bit registers, flat little-endian memory,
//!   base+index×scale addressing, and the instruction repertoire that
//!   appears in the paper's tables (`movl`, `movb`, `xorl`, `andl`,
//!   `addl`, `adcl`, `mull`, `shrl`, `rorl`, `roll`, `leal`, `incl`,
//!   `decl`, `pushl`, `popl`, `bswap`, `jnz`, …).
//! * [`Machine`] — the interpreter; every executed instruction lands in an
//!   [`InstrMix`] histogram.
//! * [`cost`] — a two-wide in-order issue model assigning each instruction
//!   class a cycle cost; CPI = cycles / instructions.
//! * [`kernels`] — the crypto kernels as IR programs (AES round loop, DES
//!   rounds, RC4 byte loop, MD5/SHA-1 block operations, and the bignum word
//!   kernels), each **validated against the native Rust implementation** on
//!   random inputs.
//!
//! # Examples
//!
//! ```
//! use sslperf_isasim::{kernels, Machine};
//!
//! // Instruction mix of 64 RC4 keystream bytes.
//! let stats = kernels::rc4::simulate(b"Key", 64);
//! let top = stats.mix.top(3);
//! assert_eq!(top[0].0, "movl"); // loads/stores dominate, as in Table 12
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod forecast;
pub mod ir;
pub mod kernels;
mod machine;
mod mix;

pub use machine::{Machine, RunStats, SimError};
pub use mix::InstrMix;
