//! The SHA-1 block operation in IR: schedule expansion + 80 steps.
//!
//! Big-endian message loads go through `bswap` (visible in the paper's
//! Table 12 SHA-1 column), the 64-entry schedule expansion is a chain of
//! `xorl`+`roll`, and the 80 steps rotate five state registers.

use crate::ir::{AluOp, MemRef, Program, Reg, ShiftOp};
use crate::kernels::KernelRun;
use crate::Machine;

/// Chaining-state address (5 × u32).
const STATE: u32 = 0x100;
/// Message-block address (64 bytes).
const DATA: u32 = 0x200;
/// Expanded-schedule address (80 × u32).
const SCHED: u32 = 0x400;

const K: [u32; 4] = [0x5a82_7999, 0x6ed9_eba1, 0x8f1b_bcdc, 0xca62_c1d6];

fn mem_abs(addr: u32) -> MemRef {
    MemRef { base: None, index: None, disp: addr }
}

/// Emits the full block operation (schedule + 80 steps).
#[must_use]
pub fn program() -> Program {
    let mut p = Program::new();
    // Message schedule: 16 big-endian loads...
    for i in 0..16u32 {
        p.mov(Reg::Esi, mem_abs(DATA + 4 * i));
        p.bswap(Reg::Esi);
        p.mov(mem_abs(SCHED + 4 * i), Reg::Esi);
    }
    // ...then 64 expansions.
    for i in 16..80u32 {
        p.mov(Reg::Esi, mem_abs(SCHED + 4 * (i - 3)));
        p.alu(AluOp::Xor, Reg::Esi, mem_abs(SCHED + 4 * (i - 8)));
        p.alu(AluOp::Xor, Reg::Esi, mem_abs(SCHED + 4 * (i - 14)));
        p.alu(AluOp::Xor, Reg::Esi, mem_abs(SCHED + 4 * (i - 16)));
        p.shift(ShiftOp::Rol, Reg::Esi, 1);
        p.mov(mem_abs(SCHED + 4 * i), Reg::Esi);
    }
    // Load state into registers.
    let regs = [Reg::Eax, Reg::Ebx, Reg::Ecx, Reg::Edx, Reg::Ebp];
    for (i, r) in regs.iter().enumerate() {
        p.mov(*r, mem_abs(STATE + 4 * i as u32));
    }
    let mut roles = [0usize, 1, 2, 3, 4]; // (a, b, c, d, e)
    for i in 0..80usize {
        let a = regs[roles[0]];
        let b = regs[roles[1]];
        let c = regs[roles[2]];
        let d = regs[roles[3]];
        let e = regs[roles[4]];
        // f into edi.
        match i / 20 {
            0 => {
                // (b & c) | (!b & d)
                p.mov(Reg::Edi, b);
                p.alu(AluOp::And, Reg::Edi, c);
                p.mov(Reg::Esi, b);
                p.alu(AluOp::Xor, Reg::Esi, 0xffff_ffffu32);
                p.alu(AluOp::And, Reg::Esi, d);
                p.alu(AluOp::Or, Reg::Edi, Reg::Esi);
            }
            2 => {
                // (b & c) | (b & d) | (c & d)
                p.mov(Reg::Edi, b);
                p.alu(AluOp::And, Reg::Edi, c);
                p.mov(Reg::Esi, b);
                p.alu(AluOp::And, Reg::Esi, d);
                p.alu(AluOp::Or, Reg::Edi, Reg::Esi);
                p.mov(Reg::Esi, c);
                p.alu(AluOp::And, Reg::Esi, d);
                p.alu(AluOp::Or, Reg::Edi, Reg::Esi);
            }
            _ => {
                // b ^ c ^ d
                p.mov(Reg::Edi, b);
                p.alu(AluOp::Xor, Reg::Edi, c);
                p.alu(AluOp::Xor, Reg::Edi, d);
            }
        }
        // e += rol5(a) + f + K + w[i]; c = rol30(b); rotate roles.
        p.alu(AluOp::Add, Reg::Edi, mem_abs(SCHED + 4 * i as u32));
        p.alu(AluOp::Add, Reg::Edi, K[i / 20]);
        p.mov(Reg::Esi, a);
        p.shift(ShiftOp::Rol, Reg::Esi, 5);
        p.alu(AluOp::Add, Reg::Edi, Reg::Esi);
        p.alu(AluOp::Add, e, Reg::Edi);
        p.shift(ShiftOp::Rol, b, 30);
        roles.rotate_right(1);
    }
    // Fold back.
    for (i, role) in roles.iter().enumerate() {
        p.alu(AluOp::Add, mem_abs(STATE + 4 * i as u32), regs[*role]);
    }
    p.halt();
    p
}

/// Simulates one block operation, returning the run and the updated state.
///
/// # Panics
///
/// Panics on simulator faults, which indicate kernel bugs.
#[must_use]
pub fn simulate_block(state: [u32; 5], block: &[u8; 64]) -> (KernelRun, [u32; 5]) {
    let mut machine = Machine::new(0x1000);
    for (i, w) in state.iter().enumerate() {
        machine.write_u32(STATE + 4 * i as u32, *w);
    }
    machine.write_mem(DATA, block);
    let stats = machine.run(&program(), 10_000_000).expect("kernel runs clean");
    let mut out = [0u32; 5];
    for (i, w) in out.iter_mut().enumerate() {
        *w = machine.read_u32(STATE + 4 * i as u32);
    }
    (KernelRun { stats, bytes: 64 }, out)
}

/// Simulates hashing `blocks` 64-byte blocks (mix/path-length reporting).
#[must_use]
pub fn simulate(blocks: usize) -> crate::RunStats {
    let block = [0xa5u8; 64];
    let (run, _) =
        simulate_block([0x6745_2301, 0xefcd_ab89, 0x98ba_dcfe, 0x1032_5476, 0xc3d2_e1f0], &block);
    let mut stats = run.stats;
    stats.scale(blocks as u64);
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use sslperf_hashes::Sha1;

    #[test]
    fn matches_native_compress() {
        let init = [0x6745_2301u32, 0xefcd_ab89, 0x98ba_dcfe, 0x1032_5476, 0xc3d2_e1f0];
        for seed in [0u8, 9, 0x7f, 0xee] {
            let mut block = [0u8; 64];
            for (i, b) in block.iter_mut().enumerate() {
                *b = seed.wrapping_mul(17).wrapping_add((i * 13) as u8);
            }
            let (_, simulated) = simulate_block(init, &block);
            let native = Sha1::compress_block(init, &block);
            assert_eq!(simulated, native, "seed {seed}");
        }
    }

    #[test]
    fn chained_blocks_match_native() {
        let mut state = [1u32, 2, 3, 4, 5];
        let mut native_state = state;
        for round in 0..3u8 {
            let block = [round.wrapping_mul(77); 64];
            state = simulate_block(state, &block).1;
            native_state = Sha1::compress_block(native_state, &block);
        }
        assert_eq!(state, native_state);
    }

    #[test]
    fn mix_has_bswap_and_rotates() {
        let stats = simulate(8);
        assert_eq!(stats.mix.count("bswap"), 8 * 16, "one bswap per message word");
        assert!(stats.mix.count("roll") >= 8 * (64 + 160), "schedule + step rotates");
        let top: Vec<&str> = stats.mix.top(3).into_iter().map(|(m, _)| m).collect();
        assert!(top.contains(&"movl") && top.contains(&"xorl"), "Table 12 shape: {top:?}");
    }

    #[test]
    fn sha1_longer_than_md5_per_byte() {
        let sha = simulate(4).instructions;
        let md5 = crate::kernels::md5::simulate(4).instructions;
        assert!(sha > md5, "SHA-1 is the more compute-intensive hash (paper §5.3)");
    }
}
