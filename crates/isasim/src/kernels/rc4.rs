//! The RC4 byte-generation kernel in IR.
//!
//! One loop iteration per byte: three reads and two writes of the state
//! table (kept as 32-bit entries, like OpenSSL's `RC4_INT`), index
//! arithmetic with `andl $0xff`, and the payload XOR — producing the
//! `movl`/`andl`/`addl`-heavy mix of the paper's Table 12 RC4 column.

use crate::ir::{mem, mem_idx, AluOp, Program, Reg};
use crate::kernels::KernelRun;
use crate::Machine;
use sslperf_ciphers::Rc4;

/// State table (256 × u32) base address.
const STATE: u32 = 0x1000;
/// Payload buffer base address.
const DATA: u32 = 0x2000;

/// The per-byte RC4 loop over `n` payload bytes.
///
/// Register contract: `esi`=i, `edi`=j (set by the host), `ebx`=payload
/// pointer, `ecx`=count.
///
/// # Panics
///
/// Panics if `n` is zero.
#[must_use]
pub fn program(n: usize) -> Program {
    assert!(n > 0, "need at least one byte");
    let mut p = Program::new();
    p.mov(Reg::Ebx, DATA);
    p.mov(Reg::Ecx, n as u32);
    let top = p.here();
    p.inc(Reg::Esi);
    p.alu(AluOp::And, Reg::Esi, 0xffu32);
    p.mov(Reg::Eax, mem_idx(STATE, Reg::Esi, 4)); // tx = S[i]
    p.alu(AluOp::Add, Reg::Edi, Reg::Eax);
    p.alu(AluOp::And, Reg::Edi, 0xffu32);
    p.mov(Reg::Edx, mem_idx(STATE, Reg::Edi, 4)); // ty = S[j]
    p.mov(mem_idx(STATE, Reg::Esi, 4), Reg::Edx); // S[i] = ty
    p.mov(mem_idx(STATE, Reg::Edi, 4), Reg::Eax); // S[j] = tx
    p.alu(AluOp::Add, Reg::Eax, Reg::Edx);
    p.alu(AluOp::And, Reg::Eax, 0xffu32);
    p.mov(Reg::Eax, mem_idx(STATE, Reg::Eax, 4)); // k = S[tx+ty]
    p.movb(Reg::Edx, mem(Reg::Ebx, 0)); // payload byte
    p.alu(AluOp::Xor, Reg::Eax, Reg::Edx);
    p.movb(mem(Reg::Ebx, 0), Reg::Eax);
    p.inc(Reg::Ebx);
    p.dec(Reg::Ecx);
    p.jnz(top);
    p.halt();
    p
}

/// Simulates RC4 over `data.len()` bytes starting from the keyed state of
/// `key`, returning the run and the ciphertext.
///
/// # Panics
///
/// Panics on an invalid key or simulator fault.
#[must_use]
pub fn simulate_process(key: &[u8], data: &[u8]) -> (KernelRun, Vec<u8>) {
    assert!(!data.is_empty(), "need at least one byte");
    let native = Rc4::new(key).expect("valid key");
    let (state, i, j) = native.snapshot();
    let mut machine = Machine::new(0x10000);
    for (idx, s) in state.iter().enumerate() {
        machine.write_u32(STATE + 4 * idx as u32, u32::from(*s));
    }
    machine.write_mem(DATA, data);
    machine.set_reg(Reg::Esi, u32::from(i));
    machine.set_reg(Reg::Edi, u32::from(j));
    let stats = machine.run(&program(data.len()), 100_000_000).expect("kernel runs clean");
    let out = machine.read_mem(DATA, data.len());
    (KernelRun { stats, bytes: data.len() }, out)
}

/// Simulates the generation of `n` keystream bytes over a zero buffer
/// keyed with `key` (for mix/path-length reporting).
///
/// # Panics
///
/// Panics on an invalid key or simulator fault.
#[must_use]
pub fn simulate(key: &[u8], n: usize) -> crate::RunStats {
    simulate_process(key, &vec![0u8; n]).0.stats
}

/// Key bytes base address (KSA input).
const KEY: u32 = 0x3000;

/// The RC4 key-schedule algorithm (KSA): 256 swaps over the state table,
/// with the wrapping key pointer the paper's Figure 3 charges to "key
/// setup". Register contract: none (all set up internally); `key_len`
/// bytes are read cyclically from the key region (`KEY`).
///
/// # Panics
///
/// Panics if `key_len` is zero or above 256.
#[must_use]
pub fn ksa_program(key_len: usize) -> Program {
    assert!((1..=256).contains(&key_len), "key length 1..=256");
    let mut p = Program::new();
    // Initialize S[i] = i.
    p.mov(Reg::Esi, 0u32);
    let init_top = p.here();
    p.mov(mem_idx_state(Reg::Esi), Reg::Esi);
    p.inc(Reg::Esi);
    p.alu(AluOp::Cmp, Reg::Esi, 256u32);
    p.jnz(init_top);
    // Scramble: j += S[i] + key[i mod len]; swap.
    p.mov(Reg::Esi, 0u32); // i
    p.mov(Reg::Edi, 0u32); // j
    p.mov(Reg::Ebx, KEY); // key pointer
    let top = p.here();
    p.mov(Reg::Eax, mem_idx_state(Reg::Esi)); // S[i]
    p.alu(AluOp::Add, Reg::Edi, Reg::Eax);
    p.movb(Reg::Edx, mem(Reg::Ebx, 0)); // key byte
    p.alu(AluOp::Add, Reg::Edi, Reg::Edx);
    p.alu(AluOp::And, Reg::Edi, 0xffu32);
    p.mov(Reg::Edx, mem_idx_state(Reg::Edi)); // S[j]
    p.mov(mem_idx_state(Reg::Esi), Reg::Edx); // swap
    p.mov(mem_idx_state(Reg::Edi), Reg::Eax);
    // Advance the key pointer with wrap (cmp + conditional reset).
    p.inc(Reg::Ebx);
    p.alu(AluOp::Cmp, Reg::Ebx, KEY + key_len as u32);
    let no_wrap = p.label();
    p.jnz(no_wrap);
    p.mov(Reg::Ebx, KEY);
    p.bind(no_wrap);
    p.inc(Reg::Esi);
    p.alu(AluOp::Cmp, Reg::Esi, 256u32);
    p.jnz(top);
    p.halt();
    p
}

fn mem_idx_state(index: Reg) -> crate::ir::MemRef {
    mem_idx(STATE, index, 4)
}

/// Simulates the key schedule for `key`, returning the run and the
/// resulting state table.
///
/// # Panics
///
/// Panics on an invalid key or simulator fault.
#[must_use]
pub fn simulate_ksa(key: &[u8]) -> (KernelRun, [u8; 256]) {
    let mut machine = Machine::new(0x10000);
    machine.write_mem(KEY, key);
    let stats = machine.run(&ksa_program(key.len()), 10_000_000).expect("kernel runs clean");
    let mut state = [0u8; 256];
    for (i, s) in state.iter_mut().enumerate() {
        *s = machine.read_u32(STATE + 4 * i as u32) as u8;
    }
    (KernelRun { stats, bytes: key.len() }, state)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_native_rc4() {
        for (key, len) in [(b"Key".as_slice(), 9usize), (b"Wiki", 100), (&[1, 2, 3, 4, 5], 256)] {
            let data: Vec<u8> = (0..len as u32).map(|i| (i * 7) as u8).collect();
            let (_, simulated) = simulate_process(key, &data);
            let mut expected = data.clone();
            Rc4::new(key).unwrap().process(&mut expected);
            assert_eq!(simulated, expected, "key {key:?} len {len}");
        }
    }

    #[test]
    fn path_length_is_constant_per_byte() {
        let (run_small, _) = simulate_process(b"k", &[0u8; 16]);
        let (run_large, _) = simulate_process(b"k", &[0u8; 160]);
        // Setup amortizes away; per-byte cost converges.
        assert!((run_large.path_length() - 17.0).abs() < 0.5, "{}", run_large.path_length());
        assert!(run_small.path_length() >= run_large.path_length());
    }

    #[test]
    fn ksa_matches_native_key_schedule() {
        for key in [b"Key".as_slice(), b"Wiki", &[0xaau8; 16], &[7u8; 1]] {
            let (_, simulated) = simulate_ksa(key);
            let (native_state, i, j) = Rc4::new(key).unwrap().snapshot();
            assert_eq!(simulated, native_state, "key {key:?}");
            assert_eq!((i, j), (0, 0), "fresh generator");
        }
    }

    #[test]
    fn ksa_explains_fig3_setup_share() {
        // Figure 3's point: the 256-entry table initialization is a large
        // fixed cost. At 1 KB the KSA's instruction count must be a double-
        // digit percentage of the total; by 32 KB it must be marginal.
        let (ksa, _) = simulate_ksa(&[0x5a; 16]);
        let per_kb = simulate(b"0123456789abcdef", 1024);
        let share_1k =
            ksa.stats.instructions as f64 / (ksa.stats.instructions + per_kb.instructions) as f64;
        assert!((0.05..0.5).contains(&share_1k), "1 KB setup share {share_1k:.3}");
        let per_32kb_instr = per_kb.instructions * 32;
        let share_32k =
            ksa.stats.instructions as f64 / (ksa.stats.instructions + per_32kb_instr) as f64;
        assert!(share_32k < 0.02, "32 KB setup share {share_32k:.4}");
    }

    #[test]
    fn mix_matches_paper_shape() {
        let stats = simulate(b"somekey", 512);
        let top: Vec<&str> = stats.mix.top(3).into_iter().map(|(m, _)| m).collect();
        assert_eq!(top[0], "movl", "state-table traffic dominates");
        assert!(top.contains(&"andl"), "index masking is second, as in Table 12");
        assert!(stats.mix.count("mull") == 0, "RC4 has no multiplies");
    }
}
