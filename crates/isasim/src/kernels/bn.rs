//! The OpenSSL bignum word kernels in IR: `bn_mul_add_words`,
//! `bn_sub_words`, `bn_add_words`.
//!
//! [`table9_body`] reproduces the exact multiply–accumulate body the paper
//! prints in Table 9; the loop programs below wrap such bodies with the
//! pointer bumps and loop control a real build executes, and `simulate_*`
//! runs them on real operand arrays.

use crate::ir::{mem, AluOp, Program, Reg};
use crate::kernels::KernelRun;
use crate::Machine;

/// Base address of the `ap` operand array in simulated memory.
const AP: u32 = 0x1000;
/// Base address of the `rp` result array.
const RP: u32 = 0x4000;
/// Base address of the `bp` second operand array.
const BP: u32 = 0x7000;

/// The nine-instruction inner body of `bn_mul_add_words` exactly as the
/// paper's Table 9 lists it (one unrolled element at displacement `0x8`):
///
/// ```text
/// movl 0x8(%ebx), %eax ; mull %ebp ; addl %esi, %eax ; movl 0x8(%edi), %esi
/// adcl $0x0, %edx ; addl %esi, %eax ; adcl $0x0, %edx
/// movl %eax, 0x8(%edi) ; movl %edx, %esi
/// ```
#[must_use]
pub fn table9_body() -> Program {
    let mut p = Program::new();
    p.mov(Reg::Eax, mem(Reg::Ebx, 0x8));
    p.mul(Reg::Ebp);
    p.alu(AluOp::Add, Reg::Eax, Reg::Esi);
    p.mov(Reg::Esi, mem(Reg::Edi, 0x8));
    p.alu(AluOp::Adc, Reg::Edx, 0u32);
    p.alu(AluOp::Add, Reg::Eax, Reg::Esi);
    p.alu(AluOp::Adc, Reg::Edx, 0u32);
    p.mov(mem(Reg::Edi, 0x8), Reg::Eax);
    p.mov(Reg::Esi, Reg::Edx);
    p
}

fn emit_mul_add_element(p: &mut Program, disp: u32) {
    p.mov(Reg::Eax, mem(Reg::Ebx, disp)); // ap[i]
    p.mul(Reg::Ebp); // edx:eax = ap[i] * w
    p.alu(AluOp::Add, Reg::Eax, Reg::Esi); // + carry
    p.mov(Reg::Esi, mem(Reg::Edi, disp)); // rp[i]
    p.alu(AluOp::Adc, Reg::Edx, 0u32);
    p.alu(AluOp::Add, Reg::Eax, Reg::Esi); // + rp[i]
    p.alu(AluOp::Adc, Reg::Edx, 0u32);
    p.mov(mem(Reg::Edi, disp), Reg::Eax); // store
    p.mov(Reg::Esi, Reg::Edx); // carry
}

/// A 4×-unrolled `bn_mul_add_words` loop over `words` words (the OpenSSL
/// x86 unrolling).
///
/// Register contract: `ebx`=ap, `edi`=rp, `ebp`=w, `esi`=carry (in/out),
/// `ecx`=words/4.
///
/// # Panics
///
/// Panics unless `words` is a positive multiple of 4 (RSA operand sizes
/// always are).
#[must_use]
pub fn mul_add_program(words: usize) -> Program {
    assert!(words > 0 && words.is_multiple_of(4), "word count must be a positive multiple of 4");
    let mut p = Program::new();
    p.mov(Reg::Ebx, AP);
    p.mov(Reg::Edi, RP);
    p.mov(Reg::Ecx, (words / 4) as u32);
    p.mov(Reg::Esi, 0u32); // carry in
    let top = p.here();
    for i in 0..4 {
        emit_mul_add_element(&mut p, 4 * i);
    }
    p.alu(AluOp::Add, Reg::Ebx, 16u32);
    p.alu(AluOp::Add, Reg::Edi, 16u32);
    p.dec(Reg::Ecx);
    p.jnz(top);
    p.halt();
    p
}

/// `bn_sub_words` as a loop: `rp[i] = ap[i] - bp[i]` with borrow.
///
/// Register contract: `ebx`=ap, `edx`=bp, `edi`=rp, `ecx`=words; borrow is
/// carried in the CPU carry flag via `sbbl`-style `Adc` complementing —
/// modelled here with an explicit borrow register `esi`.
///
/// # Panics
///
/// Panics if `words` is zero.
#[must_use]
pub fn sub_words_program(words: usize) -> Program {
    assert!(words > 0, "need at least one word");
    let mut p = Program::new();
    p.mov(Reg::Ebx, AP);
    p.mov(Reg::Edx, BP);
    p.mov(Reg::Edi, RP);
    p.mov(Reg::Ecx, words as u32);
    p.mov(Reg::Esi, 0u32); // borrow
    let top = p.here();
    p.mov(Reg::Eax, mem(Reg::Ebx, 0)); // a
    p.alu(AluOp::Sub, Reg::Eax, Reg::Esi); // a - borrow
                                           // New borrow from this subtraction: (a < borrow) → captured below by
                                           // comparing against bp too. Compute via two subl + cmpl sequence:
    p.mov(Reg::Ebp, mem(Reg::Ebx, 0));
    p.alu(AluOp::Cmp, Reg::Ebp, Reg::Esi); // sets carry if a < borrow
    p.mov(Reg::Esi, 0u32);
    p.alu(AluOp::Adc, Reg::Esi, 0u32); // esi = borrow-out so far
    p.mov(Reg::Ebp, mem(Reg::Edx, 0)); // b
    p.alu(AluOp::Cmp, Reg::Eax, Reg::Ebp); // carry if (a-borrow) < b
    p.alu(AluOp::Adc, Reg::Esi, 0u32); // accumulate borrow-out
    p.alu(AluOp::Sub, Reg::Eax, Reg::Ebp); // (a-borrow) - b
    p.mov(mem(Reg::Edi, 0), Reg::Eax);
    p.alu(AluOp::Add, Reg::Ebx, 4u32);
    p.alu(AluOp::Add, Reg::Edx, 4u32);
    p.alu(AluOp::Add, Reg::Edi, 4u32);
    p.dec(Reg::Ecx);
    p.jnz(top);
    p.halt();
    p
}

/// `bn_add_words` as a loop: `rp[i] = ap[i] + bp[i]` with carry via `adcl`.
///
/// # Panics
///
/// Panics if `words` is zero.
#[must_use]
pub fn add_words_program(words: usize) -> Program {
    assert!(words > 0, "need at least one word");
    let mut p = Program::new();
    p.mov(Reg::Ebx, AP);
    p.mov(Reg::Edx, BP);
    p.mov(Reg::Edi, RP);
    p.mov(Reg::Ecx, words as u32);
    p.mov(Reg::Esi, 0u32); // carry
    let top = p.here();
    p.mov(Reg::Eax, mem(Reg::Ebx, 0));
    p.alu(AluOp::Add, Reg::Eax, Reg::Esi); // + carry-in
    p.mov(Reg::Esi, 0u32);
    p.alu(AluOp::Adc, Reg::Esi, 0u32); // save carry
    p.mov(Reg::Ebp, mem(Reg::Edx, 0));
    p.alu(AluOp::Add, Reg::Eax, Reg::Ebp);
    p.alu(AluOp::Adc, Reg::Esi, 0u32);
    p.mov(mem(Reg::Edi, 0), Reg::Eax);
    p.alu(AluOp::Add, Reg::Ebx, 4u32);
    p.alu(AluOp::Add, Reg::Edx, 4u32);
    p.alu(AluOp::Add, Reg::Edi, 4u32);
    p.dec(Reg::Ecx);
    p.jnz(top);
    p.halt();
    p
}

fn load_words(machine: &mut Machine, base: u32, words: &[u32]) {
    for (i, w) in words.iter().enumerate() {
        machine.write_u32(base + 4 * i as u32, *w);
    }
}

fn read_words(machine: &Machine, base: u32, n: usize) -> Vec<u32> {
    (0..n).map(|i| machine.read_u32(base + 4 * i as u32)).collect()
}

/// Simulates `bn_mul_add_words(rp, ap, w)`; returns the run, the updated
/// `rp` words and the carry.
///
/// # Panics
///
/// Panics on malformed lengths (see [`mul_add_program`]) or simulator
/// faults, which indicate kernel bugs.
#[must_use]
pub fn simulate_mul_add(rp: &[u32], ap: &[u32], w: u32) -> (KernelRun, Vec<u32>, u32) {
    assert_eq!(rp.len(), ap.len(), "operand length mismatch");
    let words = ap.len();
    let mut machine = Machine::new(0x10000);
    load_words(&mut machine, AP, ap);
    load_words(&mut machine, RP, rp);
    let program = mul_add_program(words);
    machine.set_reg(Reg::Ebp, w);
    let stats = machine.run(&program, 10_000_000).expect("kernel runs clean");
    // ebp was the multiplier; carry ends in esi.
    let carry = machine.reg(Reg::Esi);
    let result = read_words(&machine, RP, words);
    (KernelRun { stats, bytes: words * 4 }, result, carry)
}

/// Simulates `bn_sub_words(rp, ap, bp)`; returns the run, result words and
/// final borrow.
///
/// # Panics
///
/// Panics on malformed lengths or simulator faults.
#[must_use]
pub fn simulate_sub(ap: &[u32], bp: &[u32]) -> (KernelRun, Vec<u32>, u32) {
    assert_eq!(ap.len(), bp.len(), "operand length mismatch");
    let words = ap.len();
    let mut machine = Machine::new(0x10000);
    load_words(&mut machine, AP, ap);
    load_words(&mut machine, BP, bp);
    let program = sub_words_program(words);
    let stats = machine.run(&program, 10_000_000).expect("kernel runs clean");
    let borrow = machine.reg(Reg::Esi);
    let result = read_words(&machine, RP, words);
    (KernelRun { stats, bytes: words * 4 }, result, borrow)
}

/// Simulates `bn_add_words(rp, ap, bp)`; returns the run, result words and
/// final carry.
///
/// # Panics
///
/// Panics on malformed lengths or simulator faults.
#[must_use]
pub fn simulate_add(ap: &[u32], bp: &[u32]) -> (KernelRun, Vec<u32>, u32) {
    assert_eq!(ap.len(), bp.len(), "operand length mismatch");
    let words = ap.len();
    let mut machine = Machine::new(0x10000);
    load_words(&mut machine, AP, ap);
    load_words(&mut machine, BP, bp);
    let program = add_words_program(words);
    let stats = machine.run(&program, 10_000_000).expect("kernel runs clean");
    let carry = machine.reg(Reg::Esi);
    let result = read_words(&machine, RP, words);
    (KernelRun { stats, bytes: words * 4 }, result, carry)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sslperf_bignum::words as native;

    fn pattern(n: usize, seed: u32) -> Vec<u32> {
        (0..n as u32)
            .map(|i| seed.wrapping_mul(0x9e37_79b9).wrapping_add(i.wrapping_mul(0x85eb_ca6b)))
            .collect()
    }

    #[test]
    fn table9_listing_matches_paper() {
        let listing = table9_body().listing();
        assert!(listing.contains("movl 0x8(%ebx), %eax"), "{listing}");
        assert!(listing.contains("mull %ebp"), "{listing}");
        assert!(listing.contains("adcl $0x0, %edx"), "{listing}");
        assert!(listing.contains("movl %eax, 0x8(%edi)"), "{listing}");
        assert_eq!(table9_body().len(), 9, "nine instructions, as printed in the paper");
    }

    #[test]
    fn mul_add_matches_native() {
        for (words, w) in [(4usize, 3u32), (8, u32::MAX), (16, 0x1234_5678), (32, 0)] {
            let ap = pattern(words, 7);
            let rp = pattern(words, 99);
            let mut native_rp = rp.clone();
            let native_carry = native::bn_mul_add_words(&mut native_rp, &ap, w);
            let (_, sim_rp, sim_carry) = simulate_mul_add(&rp, &ap, w);
            assert_eq!(sim_rp, native_rp, "words {words} w {w}");
            assert_eq!(sim_carry, native_carry);
        }
    }

    #[test]
    fn sub_matches_native() {
        for words in [1usize, 2, 5, 16] {
            let ap = pattern(words, 3);
            let bp = pattern(words, 11);
            let mut native_rp = vec![0u32; words];
            let native_borrow = native::bn_sub_words(&mut native_rp, &ap, &bp);
            let (_, sim_rp, sim_borrow) = simulate_sub(&ap, &bp);
            assert_eq!(sim_rp, native_rp, "words {words}");
            assert_eq!(sim_borrow, native_borrow);
        }
    }

    #[test]
    fn sub_borrow_chains() {
        // 0x...0 - 1 ripples a borrow through every word.
        let ap = vec![0u32, 0, 0, 1];
        let bp = vec![1u32, 0, 0, 0];
        let mut native_rp = vec![0u32; 4];
        let nb = native::bn_sub_words(&mut native_rp, &ap, &bp);
        let (_, sim_rp, sb) = simulate_sub(&ap, &bp);
        assert_eq!(sim_rp, native_rp);
        assert_eq!(sb, nb);
    }

    #[test]
    fn add_matches_native() {
        for words in [1usize, 3, 8, 16] {
            let ap = pattern(words, 21);
            let bp = vec![u32::MAX; words];
            let mut native_rp = vec![0u32; words];
            let native_carry = native::bn_add_words(&mut native_rp, &ap, &bp);
            let (_, sim_rp, sim_carry) = simulate_add(&ap, &bp);
            assert_eq!(sim_rp, native_rp, "words {words}");
            assert_eq!(sim_carry, native_carry);
        }
    }

    #[test]
    fn mul_add_mix_is_mull_and_carry_chain() {
        let ap = pattern(16, 1);
        let rp = pattern(16, 2);
        let (run, _, _) = simulate_mul_add(&rp, &ap, 0xdead_beef);
        assert_eq!(run.stats.mix.count("mull"), 16, "one mull per word");
        assert!(run.stats.mix.count("adcl") >= 32, "two adcl per word");
        assert_eq!(run.stats.mix.top(1)[0].0, "movl", "moves dominate, as in Table 12");
        // CPI burdened by the multiplier, the paper's explanation for RSA's
        // highest CPI.
        assert!(run.cpi() > 0.7, "cpi {}", run.cpi());
    }

    #[test]
    #[should_panic(expected = "multiple of 4")]
    fn mul_add_requires_unroll_multiple() {
        let _ = mul_add_program(6);
    }
}
