//! The MD5 block operation in IR: 64 steps over one 64-byte block.
//!
//! The chaining state lives in `eax`/`ebx`/`ecx`/`edx` with role rotation,
//! as in the reference implementation; the message block is read directly
//! from memory (MD5 is little-endian, so no byte swaps appear — compare the
//! SHA-1 kernel, whose big-endian loads produce the `bswap` entries of
//! Table 12).

use crate::ir::{AluOp, Program, Reg, ShiftOp};
use crate::kernels::KernelRun;
use crate::Machine;

/// Chaining-state address (4 × u32).
const STATE: u32 = 0x100;
/// Message-block address (64 bytes).
const DATA: u32 = 0x200;

const T: [u32; 64] = {
    // Same constants as the native implementation (RFC 1321).
    [
        0xd76a_a478,
        0xe8c7_b756,
        0x2420_70db,
        0xc1bd_ceee,
        0xf57c_0faf,
        0x4787_c62a,
        0xa830_4613,
        0xfd46_9501,
        0x6980_98d8,
        0x8b44_f7af,
        0xffff_5bb1,
        0x895c_d7be,
        0x6b90_1122,
        0xfd98_7193,
        0xa679_438e,
        0x49b4_0821,
        0xf61e_2562,
        0xc040_b340,
        0x265e_5a51,
        0xe9b6_c7aa,
        0xd62f_105d,
        0x0244_1453,
        0xd8a1_e681,
        0xe7d3_fbc8,
        0x21e1_cde6,
        0xc337_07d6,
        0xf4d5_0d87,
        0x455a_14ed,
        0xa9e3_e905,
        0xfcef_a3f8,
        0x676f_02d9,
        0x8d2a_4c8a,
        0xfffa_3942,
        0x8771_f681,
        0x6d9d_6122,
        0xfde5_380c,
        0xa4be_ea44,
        0x4bde_cfa9,
        0xf6bb_4b60,
        0xbebf_bc70,
        0x289b_7ec6,
        0xeaa1_27fa,
        0xd4ef_3085,
        0x0488_1d05,
        0xd9d4_d039,
        0xe6db_99e5,
        0x1fa2_7cf8,
        0xc4ac_5665,
        0xf429_2244,
        0x432a_ff97,
        0xab94_23a7,
        0xfc93_a039,
        0x655b_59c3,
        0x8f0c_cc92,
        0xffef_f47d,
        0x8584_5dd1,
        0x6fa8_7e4f,
        0xfe2c_e6e0,
        0xa301_4314,
        0x4e08_11a1,
        0xf753_7e82,
        0xbd3a_f235,
        0x2ad7_d2bb,
        0xeb86_d391,
    ]
};

const S: [[u8; 4]; 4] = [[7, 12, 17, 22], [5, 9, 14, 20], [4, 11, 16, 23], [6, 10, 15, 21]];

/// Emits the full 64-step block operation.
#[must_use]
pub fn program() -> Program {
    let mut p = Program::new();
    // Load chaining state.
    let regs = [Reg::Eax, Reg::Ebx, Reg::Ecx, Reg::Edx];
    for (i, r) in regs.iter().enumerate() {
        p.mov(*r, mem_abs(STATE + 4 * i as u32));
    }
    let mut roles = [0usize, 1, 2, 3]; // indices into regs for (a, b, c, d)
    for i in 0..64 {
        let a = regs[roles[0]];
        let b = regs[roles[1]];
        let c = regs[roles[2]];
        let d = regs[roles[3]];
        let round = i / 16;
        // f into esi.
        match round {
            0 => {
                // (b & c) | (!b & d)
                p.mov(Reg::Esi, b);
                p.alu(AluOp::And, Reg::Esi, c);
                p.mov(Reg::Edi, b);
                p.alu(AluOp::Xor, Reg::Edi, 0xffff_ffffu32);
                p.alu(AluOp::And, Reg::Edi, d);
                p.alu(AluOp::Or, Reg::Esi, Reg::Edi);
            }
            1 => {
                // (d & b) | (!d & c)
                p.mov(Reg::Esi, d);
                p.alu(AluOp::And, Reg::Esi, b);
                p.mov(Reg::Edi, d);
                p.alu(AluOp::Xor, Reg::Edi, 0xffff_ffffu32);
                p.alu(AluOp::And, Reg::Edi, c);
                p.alu(AluOp::Or, Reg::Esi, Reg::Edi);
            }
            2 => {
                // b ^ c ^ d
                p.mov(Reg::Esi, b);
                p.alu(AluOp::Xor, Reg::Esi, c);
                p.alu(AluOp::Xor, Reg::Esi, d);
            }
            _ => {
                // c ^ (b | !d)
                p.mov(Reg::Esi, d);
                p.alu(AluOp::Xor, Reg::Esi, 0xffff_ffffu32);
                p.alu(AluOp::Or, Reg::Esi, b);
                p.alu(AluOp::Xor, Reg::Esi, c);
            }
        }
        let g = match round {
            0 => i,
            1 => (5 * i + 1) % 16,
            2 => (3 * i + 5) % 16,
            _ => (7 * i) % 16,
        };
        // a = b + rol(a + f + m[g] + T[i], s)
        p.alu(AluOp::Add, a, Reg::Esi);
        p.alu(AluOp::Add, a, mem_abs(DATA + 4 * g as u32));
        p.alu(AluOp::Add, a, T[i]);
        p.shift(ShiftOp::Rol, a, S[round][i % 4]);
        p.alu(AluOp::Add, a, b);
        // Rotate roles: (a, b, c, d) <- (d, a, b, c)
        roles.rotate_right(1);
    }
    // Fold back into the chaining state.
    for (i, role) in roles.iter().enumerate() {
        p.alu(AluOp::Add, mem_abs(STATE + 4 * i as u32), regs[*role]);
    }
    p.halt();
    p
}

fn mem_abs(addr: u32) -> crate::ir::MemRef {
    crate::ir::MemRef { base: None, index: None, disp: addr }
}

/// Simulates one block operation, returning the run and the updated state.
///
/// # Panics
///
/// Panics on simulator faults, which indicate kernel bugs.
#[must_use]
pub fn simulate_block(state: [u32; 4], block: &[u8; 64]) -> (KernelRun, [u32; 4]) {
    let mut machine = Machine::new(0x1000);
    for (i, w) in state.iter().enumerate() {
        machine.write_u32(STATE + 4 * i as u32, *w);
    }
    machine.write_mem(DATA, block);
    let stats = machine.run(&program(), 10_000_000).expect("kernel runs clean");
    let out = [
        machine.read_u32(STATE),
        machine.read_u32(STATE + 4),
        machine.read_u32(STATE + 8),
        machine.read_u32(STATE + 12),
    ];
    (KernelRun { stats, bytes: 64 }, out)
}

/// Simulates hashing `blocks` 64-byte blocks (mix/path-length reporting).
#[must_use]
pub fn simulate(blocks: usize) -> crate::RunStats {
    let block = [0x5au8; 64];
    let (run, _) = simulate_block([0x0123_4567, 0x89ab_cdef, 0xfedc_ba98, 0x7654_3210], &block);
    let mut stats = run.stats;
    stats.scale(blocks as u64);
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use sslperf_hashes::Md5;

    #[test]
    fn matches_native_compress() {
        let init = [0x6745_2301u32, 0xefcd_ab89, 0x98ba_dcfe, 0x1032_5476];
        for seed in [0u8, 1, 0x42, 0xff] {
            let mut block = [0u8; 64];
            for (i, b) in block.iter_mut().enumerate() {
                *b = seed.wrapping_add(i as u8).wrapping_mul(31);
            }
            let (_, simulated) = simulate_block(init, &block);
            let native = Md5::compress_block(init, &block);
            assert_eq!(simulated, native, "seed {seed}");
        }
    }

    #[test]
    fn chained_blocks_match_native() {
        let mut state = [0x11u32, 0x22, 0x33, 0x44];
        let mut native_state = state;
        for round in 0..3u8 {
            let block = [round; 64];
            state = simulate_block(state, &block).1;
            native_state = Md5::compress_block(native_state, &block);
        }
        assert_eq!(state, native_state);
    }

    #[test]
    fn mix_is_logic_heavy_without_bswap() {
        let stats = simulate(16);
        assert!(stats.mix.count("bswap") == 0, "MD5 is little-endian");
        assert!(stats.mix.count("roll") >= 16 * 64, "one rotate per step");
        let top: Vec<&str> = stats.mix.top(4).into_iter().map(|(m, _)| m).collect();
        assert!(top.contains(&"addl"), "adds near the top, as in Table 12: {top:?}");
        assert!(top.contains(&"xorl") || top.contains(&"movl"));
    }

    #[test]
    fn path_length_matches_hand_count() {
        // ~12.3 instructions per step / 64-byte block ≈ 13 instr/byte.
        let (run, _) = simulate_block([0; 4], &[0; 64]);
        let per_byte = run.path_length();
        assert!((8.0..16.0).contains(&per_byte), "path length {per_byte}");
    }
}
