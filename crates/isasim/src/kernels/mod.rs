//! The crypto kernels expressed as IR programs.
//!
//! Each submodule provides the IR program for one algorithm's hot kernel, a
//! `simulate` entry point that runs it on real inputs inside a [`Machine`],
//! and (in its tests) machine-checked equivalence against the native Rust
//! implementation from `sslperf-ciphers` / `sslperf-hashes` /
//! `sslperf-bignum`. The instruction histograms these runs produce are the
//! reproduction of the paper's Table 12; their instruction counts per byte
//! are the path-length column of Table 11.
//!
//! [`Machine`]: crate::Machine

pub mod aes;
pub mod bn;
pub mod des;
pub mod md5;
pub mod rc4;
pub mod sha1;

use crate::RunStats;

/// The result of simulating a kernel over a buffer: the run statistics plus
/// the number of payload bytes processed.
#[derive(Debug, Clone)]
pub struct KernelRun {
    /// Execution statistics (instructions, cycles, mix).
    pub stats: RunStats,
    /// Payload bytes the kernel processed.
    pub bytes: usize,
}

impl KernelRun {
    /// Path length: dynamic instructions per processed byte (Table 11).
    #[must_use]
    pub fn path_length(&self) -> f64 {
        if self.bytes == 0 {
            0.0
        } else {
            self.stats.instructions as f64 / self.bytes as f64
        }
    }

    /// Cycles per instruction under the cost model (Table 11).
    #[must_use]
    pub fn cpi(&self) -> f64 {
        self.stats.cpi()
    }
}
