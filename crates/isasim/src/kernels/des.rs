//! DES and 3DES block encryption in IR.
//!
//! The three parts of the paper's Table 6 are all present: a straight-line
//! *initial permutation* compiled from the IP table (shift/AND/OR bit
//! moves), the 16 (or 3×16) *substitution rounds* over the eight fused SP
//! tables, and the *final permutation*. 3DES shares one IP/FP pair around
//! 48 rounds, exactly like the native implementation.

use crate::ir::{mem_idx, AluOp, MemRef, Program, Reg, ShiftOp};
use crate::kernels::KernelRun;
use crate::Machine;
use sslperf_ciphers::{analysis, Des};

/// SP tables base: eight tables of 64 × u32.
const SPT: u32 = 0x4000;
/// Key schedule base: 16 rounds × 8 subkey bytes per DES instance.
const KS: u32 = 0x5000;
/// Input block address (8 bytes).
const DATA: u32 = 0x6000;
/// Output block address (8 bytes).
const OUT: u32 = 0x6100;

fn mem_abs(addr: u32) -> MemRef {
    MemRef { base: None, index: None, disp: addr }
}

/// Emits a straight-line 64-bit permutation from `(esi, edi)` (hi, lo) into
/// `(eax, edx)`, compiled from a 1-based-from-MSB index table.
fn emit_permutation(p: &mut Program, table: &[u8; 64]) {
    p.mov(Reg::Eax, 0u32);
    p.mov(Reg::Edx, 0u32);
    for (k, &src) in table.iter().enumerate() {
        let (src_reg, bit_in_word) =
            if src <= 32 { (Reg::Esi, src - 1) } else { (Reg::Edi, src - 33) };
        let dst_reg = if k < 32 { Reg::Eax } else { Reg::Edx };
        let dst_bit = (k % 32) as u8; // 0 = MSB position
        p.mov(Reg::Ebx, src_reg);
        // Bring the source bit (bit_in_word counted from the MSB) to bit 0.
        let shr = 31 - bit_in_word;
        if shr > 0 {
            p.shift(ShiftOp::Shr, Reg::Ebx, shr);
        }
        p.alu(AluOp::And, Reg::Ebx, 1u32);
        let shl = 31 - dst_bit;
        if shl > 0 {
            p.shift(ShiftOp::Shl, Reg::Ebx, shl);
        }
        p.alu(AluOp::Or, dst_reg, Reg::Ebx);
    }
    // Move the result back into (esi, edi).
    p.mov(Reg::Esi, Reg::Eax);
    p.mov(Reg::Edi, Reg::Edx);
}

/// Emits 16 Feistel rounds reading subkeys at `ks_base`, with emit-time
/// (L, R) role tracking. `reversed` walks the schedule backwards
/// (decryption direction, used for the middle 3DES pass).
///
/// Roles on entry: `esi` = L, `edi` = R; on exit the final swap is applied
/// (standard end-of-cipher half exchange).
fn emit_rounds(p: &mut Program, ks_base: u32, reversed: bool) {
    let mut l = Reg::Esi;
    let mut r = Reg::Edi;
    for round in 0..16u32 {
        let idx = if reversed { 15 - round } else { round };
        // t = ror(R, 1): the rotated expansion window base.
        p.mov(Reg::Ebx, r);
        p.shift(ShiftOp::Ror, Reg::Ebx, 1);
        for chunk in 0..8u8 {
            p.mov(Reg::Eax, Reg::Ebx);
            if chunk > 0 {
                p.shift(ShiftOp::Rol, Reg::Eax, 4 * chunk);
            }
            p.shift(ShiftOp::Shr, Reg::Eax, 26);
            p.movb(Reg::Ecx, mem_abs(ks_base + 8 * idx + u32::from(chunk)));
            p.alu(AluOp::Xor, Reg::Eax, Reg::Ecx);
            p.alu(AluOp::Xor, l, mem_idx(SPT + 256 * u32::from(chunk), Reg::Eax, 4));
        }
        std::mem::swap(&mut l, &mut r);
    }
    // After the loop the roles already ended swapped 16 times (even), so
    // (l, r) = (L16, R16); the cipher output before FP is (R16, L16).
    // Materialize that order into (esi, edi).
    if l == Reg::Esi {
        // swap register contents: esi <-> edi via ebx.
        p.mov(Reg::Ebx, Reg::Esi);
        p.mov(Reg::Esi, Reg::Edi);
        p.mov(Reg::Edi, Reg::Ebx);
    }
}

/// Emits a full DES (or, with three schedules, 3DES) encryption:
/// IP → rounds → FP, storing the result at [`OUT`].
fn emit_cipher(p: &mut Program, passes: &[(u32, bool)]) {
    // Load the block big-endian into (esi, edi).
    p.mov(Reg::Esi, mem_abs(DATA));
    p.bswap(Reg::Esi);
    p.mov(Reg::Edi, mem_abs(DATA + 4));
    p.bswap(Reg::Edi);
    emit_permutation(p, analysis::des_ip_table());
    for &(ks_base, reversed) in passes {
        emit_rounds(p, ks_base, reversed);
    }
    emit_permutation(p, analysis::des_fp_table());
    p.bswap(Reg::Esi);
    p.mov(mem_abs(OUT), Reg::Esi);
    p.bswap(Reg::Edi);
    p.mov(mem_abs(OUT + 4), Reg::Edi);
    p.halt();
}

/// The single-DES encryption program.
#[must_use]
pub fn des_program() -> Program {
    let mut p = Program::new();
    emit_cipher(&mut p, &[(KS, false)]);
    p
}

/// The 3DES (EDE) encryption program: one IP/FP pair around 48 rounds.
#[must_use]
pub fn des3_program() -> Program {
    let mut p = Program::new();
    emit_cipher(&mut p, &[(KS, false), (KS + 128, true), (KS + 256, false)]);
    p
}

fn load_common(machine: &mut Machine, block: &[u8; 8]) {
    let sp = analysis::des_sp_tables();
    for (t, table) in sp.iter().enumerate() {
        for (i, v) in table.iter().enumerate() {
            machine.write_u32(SPT + 256 * t as u32 + 4 * i as u32, *v);
        }
    }
    machine.write_mem(DATA, block);
}

fn load_subkeys(machine: &mut Machine, base: u32, ks: &[[u8; 8]; 16]) {
    for (round, chunks) in ks.iter().enumerate() {
        machine.write_mem(base + 8 * round as u32, chunks);
    }
}

/// Simulates one DES block encryption.
///
/// # Panics
///
/// Panics on an invalid key or simulator fault.
#[must_use]
pub fn simulate_des_block(key: &[u8; 8], block: &[u8; 8]) -> (KernelRun, [u8; 8]) {
    let des = Des::new(key).expect("8-byte key");
    let mut machine = Machine::new(0x10000);
    load_common(&mut machine, block);
    load_subkeys(&mut machine, KS, des.round_subkeys());
    let stats = machine.run(&des_program(), 10_000_000).expect("kernel runs clean");
    let out: [u8; 8] = machine.read_mem(OUT, 8).try_into().expect("8 bytes");
    (KernelRun { stats, bytes: 8 }, out)
}

/// Simulates one 3DES block encryption.
///
/// # Panics
///
/// Panics on an invalid key or simulator fault.
#[must_use]
pub fn simulate_des3_block(key: &[u8; 24], block: &[u8; 8]) -> (KernelRun, [u8; 8]) {
    let mut machine = Machine::new(0x10000);
    load_common(&mut machine, block);
    // Reuse the native key schedule by building three single-DES instances.
    for i in 0..3usize {
        let sub: [u8; 8] = key[8 * i..8 * i + 8].try_into().expect("8 bytes");
        let des = Des::new(&sub).expect("valid subkey");
        load_subkeys(&mut machine, KS + 128 * i as u32, des.round_subkeys());
    }
    let stats = machine.run(&des3_program(), 10_000_000).expect("kernel runs clean");
    let out: [u8; 8] = machine.read_mem(OUT, 8).try_into().expect("8 bytes");
    (KernelRun { stats, bytes: 8 }, out)
}

/// Simulates `blocks` DES blocks (mix/path-length reporting).
#[must_use]
pub fn simulate_des(blocks: usize) -> crate::RunStats {
    let (run, _) = simulate_des_block(&[0x13, 0x34, 0x57, 0x79, 0x9b, 0xbc, 0xdf, 0xf1], &[7; 8]);
    let mut stats = run.stats;
    stats.scale(blocks as u64);
    stats
}

/// Simulates `blocks` 3DES blocks (mix/path-length reporting).
#[must_use]
pub fn simulate_des3(blocks: usize) -> crate::RunStats {
    let key: [u8; 24] = core::array::from_fn(|i| (i as u8).wrapping_mul(11).wrapping_add(3));
    let (run, _) = simulate_des3_block(&key, &[9; 8]);
    let mut stats = run.stats;
    stats.scale(blocks as u64);
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use sslperf_ciphers::{BlockCipher, Des3};

    #[test]
    fn matches_native_des() {
        let cases: [([u8; 8], [u8; 8]); 3] = [
            (0x1334_5779_9BBC_DFF1u64.to_be_bytes(), 0x0123_4567_89AB_CDEFu64.to_be_bytes()),
            ([0; 8], [0; 8]),
            ([0xfe; 8], *b"DESblock"),
        ];
        for (key, block) in cases {
            let (_, simulated) = simulate_des_block(&key, &block);
            let des = Des::new(&key).unwrap();
            let mut expected = block;
            des.encrypt_block(&mut expected);
            assert_eq!(simulated, expected, "key {key:?}");
        }
    }

    #[test]
    fn classic_vector_through_simulator() {
        let (_, out) = simulate_des_block(
            &0x1334_5779_9BBC_DFF1u64.to_be_bytes(),
            &0x0123_4567_89AB_CDEFu64.to_be_bytes(),
        );
        assert_eq!(u64::from_be_bytes(out), 0x85E8_1354_0F0A_B405);
    }

    #[test]
    fn matches_native_des3() {
        let key: [u8; 24] = core::array::from_fn(|i| (i as u8).wrapping_mul(29).wrapping_add(5));
        for block in [[0u8; 8], *b"3DESdata", [0xa5; 8]] {
            let (_, simulated) = simulate_des3_block(&key, &block);
            let des3 = Des3::new(&key).unwrap();
            let mut expected = block;
            des3.encrypt_block(&mut expected);
            assert_eq!(simulated, expected);
        }
    }

    #[test]
    fn substitution_dominates_and_triples_for_des3() {
        let (des_run, _) = simulate_des_block(&[1; 8], &[2; 8]);
        let (des3_run, _) = simulate_des3_block(&[3; 24], &[2; 8]);
        let des_instr = des_run.stats.instructions as f64;
        let des3_instr = des3_run.stats.instructions as f64;
        // IP/FP are shared, so 3DES is < 3× DES but well above 2× (Table 6).
        assert!(des3_instr > 2.0 * des_instr, "{des3_instr} vs {des_instr}");
        assert!(des3_instr < 3.0 * des_instr, "{des3_instr} vs {des_instr}");
    }

    #[test]
    fn mix_is_xor_heavy() {
        let stats = simulate_des(16);
        let top: Vec<&str> = stats.mix.top(4).into_iter().map(|(m, _)| m).collect();
        assert!(top.contains(&"xorl"), "Table 12 DES column is xorl-led: {top:?}");
        assert!(stats.mix.count("movb") > 0, "subkey fetches are byte loads");
        assert!(stats.mix.count("rorl") > 0, "expansion rotates");
    }
}
