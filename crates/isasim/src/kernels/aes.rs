//! The AES-128 block encryption in IR: fused-table rounds.
//!
//! Each of the nine main rounds performs the paper's sixteen table lookups
//! (Figure 5): bytes are extracted with `movb`/`shrl`+`andl` and indexed
//! into the `Te` tables; the final round substitutes through the S-box.
//! Tables and round keys are bit-identical to `sslperf-ciphers` (loaded via
//! its `analysis` API).

use crate::ir::{mem_idx, AluOp, MemRef, Program, Reg, ShiftOp};
use crate::kernels::KernelRun;
use crate::Machine;
use sslperf_ciphers::{analysis, Aes};

/// `Te0`–`Te3` table bases (1 KB each).
const TE: [u32; 4] = [0x4000, 0x4400, 0x4800, 0x4c00];
/// S-box base (256 bytes).
const SBOX: u32 = 0x5000;
/// Round-key base (44 words for AES-128).
const RK: u32 = 0x5400;
/// Input block address.
const DATA: u32 = 0x6000;
/// Output block address.
const OUT: u32 = 0x6100;
/// Two state scratch buffers (4 words each), alternated between rounds.
const SCRATCH: [u32; 2] = [0x6200, 0x6300];

fn mem_abs(addr: u32) -> MemRef {
    MemRef { base: None, index: None, disp: addr }
}

/// Emits a full AES-128 block encryption (initial round key, 9 main
/// rounds, final round).
#[must_use]
pub fn program() -> Program {
    let mut p = Program::new();
    // Part 1: map the byte block to cipher state, add the initial round key.
    for c in 0..4u32 {
        p.mov(Reg::Eax, mem_abs(DATA + 4 * c));
        p.bswap(Reg::Eax);
        p.alu(AluOp::Xor, Reg::Eax, mem_abs(RK + 4 * c));
        p.mov(mem_abs(SCRATCH[0] + 4 * c), Reg::Eax);
    }
    // Part 2: nine main rounds of 16 lookups.
    for round in 1..10u32 {
        let src = SCRATCH[(round as usize - 1) % 2];
        let dst = SCRATCH[round as usize % 2];
        for c in 0..4u32 {
            // State words are stored little-endian, so the most significant
            // byte of word w sits at byte offset 4w+3.
            // Byte 3 (>>24) of word c → Te0, via a byte load.
            p.movb(Reg::Eax, mem_abs(src + 4 * c + 3));
            p.mov(Reg::Esi, mem_idx(TE[0], Reg::Eax, 4));
            // Byte 2 (>>16) of word c+1 → Te1, via a byte load + mov/xor.
            p.movb(Reg::Eax, mem_abs(src + 4 * ((c + 1) % 4) + 2));
            p.mov(Reg::Edi, mem_idx(TE[1], Reg::Eax, 4));
            p.alu(AluOp::Xor, Reg::Esi, Reg::Edi);
            // Byte 1 (>>8) of word c+2 → Te2, via shift+mask.
            p.mov(Reg::Eax, mem_abs(src + 4 * ((c + 2) % 4)));
            p.shift(ShiftOp::Shr, Reg::Eax, 8);
            p.alu(AluOp::And, Reg::Eax, 0xffu32);
            p.mov(Reg::Edi, mem_idx(TE[2], Reg::Eax, 4));
            p.alu(AluOp::Xor, Reg::Esi, Reg::Edi);
            // Byte 0 of word c+3 → Te3, via mask.
            p.mov(Reg::Eax, mem_abs(src + 4 * ((c + 3) % 4)));
            p.alu(AluOp::And, Reg::Eax, 0xffu32);
            p.alu(AluOp::Xor, Reg::Esi, mem_idx(TE[3], Reg::Eax, 4));
            // Round key, store.
            p.alu(AluOp::Xor, Reg::Esi, mem_abs(RK + 4 * (4 * round + c)));
            p.mov(mem_abs(dst + 4 * c), Reg::Esi);
        }
    }
    // Part 3: the last round (S-box only) and map back to bytes.
    let src = SCRATCH[1]; // after 9 rounds the state is in SCRATCH[1]
    for c in 0..4u32 {
        // Build the output word byte by byte.
        p.movb(Reg::Eax, mem_abs(src + 4 * c + 3));
        p.movb(Reg::Esi, mem_idx(SBOX, Reg::Eax, 1));
        p.shift(ShiftOp::Shl, Reg::Esi, 24);
        p.movb(Reg::Eax, mem_abs(src + 4 * ((c + 1) % 4) + 2));
        p.movb(Reg::Edi, mem_idx(SBOX, Reg::Eax, 1));
        p.shift(ShiftOp::Shl, Reg::Edi, 16);
        p.alu(AluOp::Or, Reg::Esi, Reg::Edi);
        p.movb(Reg::Eax, mem_abs(src + 4 * ((c + 2) % 4) + 1));
        p.movb(Reg::Edi, mem_idx(SBOX, Reg::Eax, 1));
        p.shift(ShiftOp::Shl, Reg::Edi, 8);
        p.alu(AluOp::Or, Reg::Esi, Reg::Edi);
        p.movb(Reg::Eax, mem_abs(src + 4 * ((c + 3) % 4)));
        p.movb(Reg::Edi, mem_idx(SBOX, Reg::Eax, 1));
        p.alu(AluOp::Or, Reg::Esi, Reg::Edi);
        p.alu(AluOp::Xor, Reg::Esi, mem_abs(RK + 4 * (40 + c)));
        p.mov(mem_abs(OUT + 4 * c), Reg::Esi);
    }
    p.halt();
    p
}

fn load_tables(machine: &mut Machine, aes: &Aes) {
    let te = analysis::aes_te_tables();
    for (t, base) in te.iter().zip(TE) {
        for (i, v) in t.iter().enumerate() {
            machine.write_u32(base + 4 * i as u32, *v);
        }
    }
    machine.write_mem(SBOX, analysis::aes_sbox());
    for (i, w) in aes.round_keys().iter().enumerate() {
        machine.write_u32(RK + 4 * i as u32, *w);
    }
}

/// Simulates one AES-128 block encryption, returning the run and the
/// ciphertext block.
///
/// # Panics
///
/// Panics if `key` is not 16 bytes, or on simulator faults.
#[must_use]
pub fn simulate_block(key: &[u8; 16], block: &[u8; 16]) -> (KernelRun, [u8; 16]) {
    let aes = Aes::new(key).expect("16-byte key");
    let mut machine = Machine::new(0x10000);
    load_tables(&mut machine, &aes);
    machine.write_mem(DATA, block);
    let stats = machine.run(&program(), 10_000_000).expect("kernel runs clean");
    let mut out = [0u8; 16];
    for c in 0..4usize {
        let word = machine.read_u32(OUT + 4 * c as u32);
        out[4 * c..4 * c + 4].copy_from_slice(&word.to_be_bytes());
    }
    (KernelRun { stats, bytes: 16 }, out)
}

/// Simulates encrypting `blocks` blocks (mix/path-length reporting).
#[must_use]
pub fn simulate(blocks: usize) -> crate::RunStats {
    let (run, _) = simulate_block(&[0x2b; 16], &[0x32; 16]);
    let mut stats = run.stats;
    stats.scale(blocks as u64);
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use sslperf_ciphers::BlockCipher;

    #[test]
    fn matches_native_aes() {
        let cases: [([u8; 16], [u8; 16]); 3] = [
            ([0; 16], [0; 16]),
            (
                [0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15],
                [
                    0, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc,
                    0xdd, 0xee, 0xff,
                ],
            ),
            ([0x2b; 16], *b"sixteen byte msg"),
        ];
        for (key, block) in cases {
            let (_, simulated) = simulate_block(&key, &block);
            let aes = Aes::new(&key).unwrap();
            let mut expected = block;
            aes.encrypt_block(&mut expected);
            assert_eq!(simulated, expected, "key {key:?}");
        }
    }

    #[test]
    fn fips197_vector_through_simulator() {
        let key: [u8; 16] = [0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 0xa, 0xb, 0xc, 0xd, 0xe, 0xf];
        let block: [u8; 16] = [
            0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd,
            0xee, 0xff,
        ];
        let (_, out) = simulate_block(&key, &block);
        assert_eq!(
            out,
            [
                0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4,
                0xc5, 0x5a
            ]
        );
    }

    #[test]
    fn mix_matches_paper_shape() {
        let stats = simulate(32);
        let top = stats.mix.top(3);
        assert_eq!(top[0].0, "movl", "Table 12: movl first, got {top:?}");
        assert_eq!(top[1].0, "xorl", "Table 12: xorl second, got {top:?}");
        assert!(stats.mix.percent("movb") > 5.0, "byte extraction shows up");
        assert_eq!(stats.mix.count("mull"), 0);
    }

    #[test]
    fn path_length_order_of_magnitude() {
        let (run, _) = simulate_block(&[1; 16], &[2; 16]);
        // Paper: 50 instructions/byte for AES on x86.
        let pl = run.path_length();
        assert!((20.0..80.0).contains(&pl), "path length {pl}");
    }
}
