//! Dynamic instruction-mix histograms (the paper's Table 12).

use std::collections::HashMap;
use std::fmt;

/// A per-mnemonic dynamic instruction histogram.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InstrMix {
    counts: HashMap<&'static str, u64>,
}

impl InstrMix {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one execution of `mnemonic`.
    pub fn record(&mut self, mnemonic: &'static str) {
        *self.counts.entry(mnemonic).or_insert(0) += 1;
    }

    /// Records `n` executions of `mnemonic`.
    pub fn record_n(&mut self, mnemonic: &'static str, n: u64) {
        *self.counts.entry(mnemonic).or_insert(0) += n;
    }

    /// Count for one mnemonic (zero if never executed).
    #[must_use]
    pub fn count(&self, mnemonic: &str) -> u64 {
        self.counts.get(mnemonic).copied().unwrap_or(0)
    }

    /// Total executed instructions.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Percentage of the total for one mnemonic.
    #[must_use]
    pub fn percent(&self, mnemonic: &str) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.count(mnemonic) as f64 * 100.0 / total as f64
        }
    }

    /// The `n` most frequent mnemonics with their percentages, descending
    /// (ties broken alphabetically for determinism).
    #[must_use]
    pub fn top(&self, n: usize) -> Vec<(&'static str, f64)> {
        let mut entries: Vec<_> = self.counts.iter().map(|(k, v)| (*k, *v)).collect();
        entries.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        entries.into_iter().take(n).map(|(k, v)| (k, self.percent_of(v))).collect()
    }

    fn percent_of(&self, count: u64) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            count as f64 * 100.0 / total as f64
        }
    }

    /// Adds another histogram into this one.
    pub fn merge(&mut self, other: &InstrMix) {
        for (k, v) in &other.counts {
            *self.counts.entry(k).or_insert(0) += v;
        }
    }

    /// Multiplies every count by `factor`.
    pub fn scale(&mut self, factor: u64) {
        for v in self.counts.values_mut() {
            *v *= factor;
        }
    }

    /// Iterates over `(mnemonic, count)` in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counts.iter().map(|(k, v)| (*k, *v))
    }
}

impl fmt::Display for InstrMix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (mnemonic, pct) in self.top(10) {
            writeln!(f, "{mnemonic:<8} {pct:>6.2}%")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> InstrMix {
        let mut m = InstrMix::new();
        m.record_n("movl", 50);
        m.record_n("xorl", 30);
        m.record_n("addl", 20);
        m
    }

    #[test]
    fn counting_and_percent() {
        let m = sample();
        assert_eq!(m.total(), 100);
        assert_eq!(m.count("movl"), 50);
        assert_eq!(m.count("none"), 0);
        assert!((m.percent("xorl") - 30.0).abs() < 1e-12);
    }

    #[test]
    fn top_is_sorted_descending() {
        let m = sample();
        let top = m.top(2);
        assert_eq!(top[0].0, "movl");
        assert_eq!(top[1].0, "xorl");
        assert_eq!(top.len(), 2);
    }

    #[test]
    fn ties_break_alphabetically() {
        let mut m = InstrMix::new();
        m.record_n("zzz", 5);
        m.record_n("aaa", 5);
        assert_eq!(m.top(2)[0].0, "aaa");
    }

    #[test]
    fn merge_and_scale() {
        let mut a = sample();
        a.merge(&sample());
        assert_eq!(a.total(), 200);
        a.scale(3);
        assert_eq!(a.count("movl"), 300);
    }

    #[test]
    fn empty_mix() {
        let m = InstrMix::new();
        assert_eq!(m.total(), 0);
        assert_eq!(m.percent("movl"), 0.0);
        assert!(m.top(5).is_empty());
    }

    #[test]
    fn display_lists_top_ten() {
        let s = sample().to_string();
        assert!(s.contains("movl"));
        assert!(s.contains('%'));
    }
}
