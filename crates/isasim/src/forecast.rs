//! Forecasting serving throughput from the cycle model — the
//! predicted-vs-measured closure.
//!
//! The paper's design-space discussion (and the multi-core SSL processor
//! work it inspired) sizes heterogeneous crypto-engine configurations on
//! paper before building them: how many transactions per second should a
//! machine with one fast RSA engine and a handful of slower cores
//! sustain? This module answers that question from *this crate's* cycle
//! model rather than from a live run, so the live run can then grade the
//! forecast:
//!
//! 1. [`rsa_kx_cycles`] prices one RSA-CRT private-key operation in
//!    simulated cycles, built from an actual [`Machine`](crate::Machine)
//!    run of the `bn_mul_add_words` kernel (the paper's Table 9 inner
//!    loop) times the Montgomery-arithmetic operation counts of a CRT
//!    exponentiation.
//! 2. [`ForecastModel::calibrate`] anchors the simulator's cycle scale to
//!    the live machine with two measurements of a *baseline*
//!    configuration: the wall time of one solo decrypt (mapping simulated
//!    cycles to seconds) and the baseline's measured tx/s (splitting each
//!    transaction into a key-exchange share, which parallel engines
//!    absorb, and a serial remainder, which they do not — Amdahl's split).
//! 3. [`ForecastModel::forecast_tps`] then predicts any other
//!    configuration from its [`EngineConfig::capacity`]: the sum of the
//!    engines' native-speed fractions.
//!
//! The `EngineForecast` experiment in `sslperf-core` runs the same
//! configurations on the live event-loop server and reports the percent
//! error per configuration — the number that says how much to trust the
//! model where no measurement exists.

use crate::kernels::bn;

/// Simulated cycles for one RSA private-key operation with CRT, derived
/// from the cycle model: a [`Machine`](crate::Machine) run prices the
/// `bn_mul_add_words` kernel over one CRT-half operand, and Montgomery
/// operation counts scale it up to two half-width exponentiations.
///
/// The counts are the standard ones: a Montgomery multiplication over
/// `n`-word operands makes ~`2n` passes of `bn_mul_add_words` (one per
/// multiplier word, one per reduction word), and a `k`-bit square-and-
/// multiply exponentiation performs ~`1.5k` Montgomery multiplications
/// (`k` squarings plus ~`k/2` multiplies).
///
/// # Panics
///
/// Panics unless `key_bits` maps to CRT halves of a positive multiple of
/// 128 bits (RSA serving sizes — 512, 1024, 2048 — all do).
#[must_use]
pub fn rsa_kx_cycles(key_bits: usize) -> f64 {
    let half_bits = key_bits / 2;
    let words = half_bits / 32;
    assert!(
        words > 0 && words.is_multiple_of(4),
        "CRT half must be a positive multiple of 128 bits"
    );
    // Deterministic operands: the kernel's cycle count depends only on
    // the word count, but the simulator wants real arrays to chew on.
    let ap: Vec<u32> = (0..words as u32).map(|i| i.wrapping_mul(0x9e37_79b9) | 1).collect();
    let rp: Vec<u32> = (0..words as u32).map(|i| i.wrapping_mul(0x85eb_ca6b)).collect();
    let (run, _, _) = bn::simulate_mul_add(&rp, &ap, 0xdead_beef);
    let mul_add_cycles = run.stats.cycles;
    let mont_mul = 2.0 * words as f64 * mul_add_cycles;
    let mults_per_exp = 1.5 * half_bits as f64;
    // Two half-width exponentiations (the CRT halves).
    2.0 * mults_per_exp * mont_mul
}

/// One engine configuration to forecast: per-engine cost multipliers
/// relative to a native core (1.0 = native; 3.0 = a core at one third
/// speed). Mirrors the `EngineProfile` lists the live server accepts,
/// reduced to what the model needs.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineConfig {
    /// Display label for reports ("2x general", "rsa-engine + 2 slow", …).
    pub label: String,
    /// One multiplier per engine, each >= 1.0.
    pub multipliers: Vec<f64>,
}

impl EngineConfig {
    /// A configuration of `engines` identical cores, each slowed by
    /// `factor`.
    #[must_use]
    pub fn uniform(label: impl Into<String>, engines: usize, factor: f64) -> Self {
        EngineConfig { label: label.into(), multipliers: vec![factor; engines] }
    }

    /// Aggregate key-exchange capacity in native-engine units: the sum of
    /// each engine's speed fraction (`Σ 1/mᵢ`). A native core contributes
    /// 1.0; a 3.0-multiplier core contributes a third.
    #[must_use]
    pub fn capacity(&self) -> f64 {
        self.multipliers.iter().map(|m| 1.0 / m.max(1.0)).sum()
    }
}

/// The calibrated throughput model: each transaction splits into a
/// key-exchange share (absorbed by the engine pool in proportion to its
/// [`EngineConfig::capacity`]) and a serial remainder (record layer, HTTP,
/// event-loop sweeps — unaffected by crypto engines). Amdahl's law with
/// the parallel fraction priced by the cycle model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ForecastModel {
    /// Seconds one native engine spends on one key exchange.
    kx_secs: f64,
    /// Per-transaction seconds the engines cannot absorb.
    serial_secs: f64,
}

impl ForecastModel {
    /// Calibrates the model from the cycle model plus two baseline
    /// measurements:
    ///
    /// * `kx_cycles` — simulated cycles per key exchange
    ///   ([`rsa_kx_cycles`]);
    /// * `solo_kx_secs` — measured wall seconds of one solo decrypt on
    ///   the live machine, anchoring simulated cycles to real time;
    /// * `baseline` / `baseline_tps` — a measured configuration, whose
    ///   residual (time not explained by key exchange) becomes the serial
    ///   share.
    ///
    /// The baseline configuration should *not* be one of the
    /// configurations being forecast, or its error is zero by
    /// construction.
    ///
    /// # Panics
    ///
    /// Panics when any measurement is non-positive or the baseline has no
    /// capacity.
    #[must_use]
    pub fn calibrate(
        kx_cycles: f64,
        solo_kx_secs: f64,
        baseline: &EngineConfig,
        baseline_tps: f64,
    ) -> Self {
        assert!(kx_cycles > 0.0 && solo_kx_secs > 0.0, "anchor measurements must be positive");
        assert!(baseline_tps > 0.0, "baseline throughput must be positive");
        let capacity = baseline.capacity();
        assert!(capacity > 0.0, "baseline must have at least one engine");
        // The cycle scale: how many simulated cycles the live machine
        // retires per second. Only the *ratio* of configurations uses the
        // cycle model; the anchor absorbs the simulator's abstraction.
        let cycles_per_sec = kx_cycles / solo_kx_secs;
        let kx_secs = kx_cycles / cycles_per_sec;
        let serial_secs = (1.0 / baseline_tps - kx_secs / capacity).max(0.0);
        ForecastModel { kx_secs, serial_secs }
    }

    /// Predicted transactions per second for `config`: the serial share
    /// plus the key-exchange share divided across the configuration's
    /// capacity.
    ///
    /// # Panics
    ///
    /// Panics when `config` has no capacity.
    #[must_use]
    pub fn forecast_tps(&self, config: &EngineConfig) -> f64 {
        let capacity = config.capacity();
        assert!(capacity > 0.0, "configuration must have at least one engine");
        1.0 / (self.serial_secs + self.kx_secs / capacity)
    }

    /// Seconds one native engine spends per key exchange (after
    /// anchoring).
    #[must_use]
    pub fn kx_secs(&self) -> f64 {
        self.kx_secs
    }

    /// Per-transaction serial seconds the engine pool cannot absorb.
    #[must_use]
    pub fn serial_secs(&self) -> f64 {
        self.serial_secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kx_cycles_grow_superlinearly_with_key_size() {
        let small = rsa_kx_cycles(512);
        let large = rsa_kx_cycles(1024);
        assert!(small > 0.0);
        // Doubling the modulus doubles the exponent length AND the words
        // per multiplication: at least 4x, in practice more (the kernel's
        // per-call loop overhead amortizes).
        assert!(large / small >= 4.0, "ratio {}", large / small);
    }

    #[test]
    #[should_panic(expected = "multiple of 128")]
    fn kx_cycles_rejects_unrepresentable_key_sizes() {
        let _ = rsa_kx_cycles(96);
    }

    #[test]
    fn capacity_sums_native_speed_fractions() {
        let uniform = EngineConfig::uniform("4x native", 4, 1.0);
        assert!((uniform.capacity() - 4.0).abs() < 1e-12);
        let het = EngineConfig { label: "fast + 2 slow".into(), multipliers: vec![1.0, 3.0, 3.0] };
        assert!((het.capacity() - (1.0 + 2.0 / 3.0)).abs() < 1e-12);
    }

    #[test]
    fn forecast_reproduces_its_baseline_and_orders_configs() {
        let kx = rsa_kx_cycles(512);
        let baseline = EngineConfig::uniform("1x native", 1, 1.0);
        // Synthetic live numbers: 4 ms per solo decrypt, 100 tx/s on the
        // one-engine baseline (so 6 ms of serial work per transaction).
        let model = ForecastModel::calibrate(kx, 0.004, &baseline, 100.0);
        assert!((model.forecast_tps(&baseline) - 100.0).abs() < 1e-6, "self-consistency");
        assert!((model.kx_secs() - 0.004).abs() < 1e-12);
        assert!((model.serial_secs() - 0.006).abs() < 1e-9);

        // More capacity → more throughput, bounded by the serial share.
        let two = model.forecast_tps(&EngineConfig::uniform("2x", 2, 1.0));
        let four = model.forecast_tps(&EngineConfig::uniform("4x", 4, 1.0));
        assert!(two > 100.0 && four > two, "two {two} four {four}");
        assert!(four < 1.0 / model.serial_secs(), "Amdahl ceiling");

        // A slowed pair sits below a native pair but above the baseline.
        let slow_pair = model.forecast_tps(&EngineConfig::uniform("2 slow", 2, 2.0));
        assert!((slow_pair - 100.0).abs() < 1e-6, "2 half-speed engines equal 1 native");
    }
}
