//! The cycle cost model behind the CPI column of Table 11.
//!
//! The paper's Pentium 4 reached CPIs of 0.52–0.77 on these kernels: a
//! multi-issue machine limited by load ports and the multiplier. The model
//! here is a **two-wide in-order issue** approximation: every instruction
//! costs at least half a cycle (two-per-cycle issue), memory-touching
//! instructions cost a full issue slot pair (one load/store port), and the
//! multiplier is long-latency and unpipelined back-to-back — the situation
//! in RSA's dependent multiply–accumulate chain, which is why RSA shows the
//! worst CPI in both the paper and this model.

use crate::ir::{Instr, Operand};

/// Cost in cycles of one ALU/logic instruction operating on registers.
pub const ALU_REG: f64 = 0.5;
/// Extra cost when an instruction reads or writes memory.
pub const MEM_ACCESS: f64 = 0.5;
/// Cost of a `mull` (long latency, dependent chains).
pub const MUL: f64 = 4.0;
/// Cost of a taken-or-not predicted branch.
pub const BRANCH: f64 = 0.5;
/// Cost of push/pop (memory plus pointer update).
pub const STACK: f64 = 1.0;

fn touches_memory(op: &Operand) -> bool {
    matches!(op, Operand::Mem(_))
}

/// Returns the modelled cycle cost of `instr`.
#[must_use]
pub fn instruction_cost(instr: &Instr) -> f64 {
    match instr {
        Instr::Mov(dst, src) | Instr::Movb(dst, src) => {
            if touches_memory(dst) || touches_memory(src) {
                ALU_REG + MEM_ACCESS
            } else {
                ALU_REG
            }
        }
        Instr::Alu(_, dst, src) => {
            if touches_memory(dst) || touches_memory(src) {
                ALU_REG + MEM_ACCESS
            } else {
                ALU_REG
            }
        }
        Instr::Shift(_, dst, _) | Instr::Inc(dst) | Instr::Dec(dst) => {
            if touches_memory(dst) {
                ALU_REG + MEM_ACCESS
            } else {
                ALU_REG
            }
        }
        Instr::Lea(..) | Instr::Bswap(..) | Instr::Nop => ALU_REG,
        Instr::Mul(_) => MUL,
        Instr::Push(_) | Instr::Pop(_) => STACK,
        Instr::Jmp(_) | Instr::Jnz(_) | Instr::Jz(_) => BRANCH,
        Instr::Halt => 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{mem, AluOp, Reg};

    #[test]
    fn register_ops_are_half_cycle() {
        assert_eq!(
            instruction_cost(&Instr::Alu(AluOp::Xor, Reg::Eax.into(), Reg::Ebx.into())),
            0.5
        );
        assert_eq!(instruction_cost(&Instr::Nop), 0.5);
        assert_eq!(instruction_cost(&Instr::Bswap(Reg::Eax)), 0.5);
    }

    #[test]
    fn memory_ops_cost_more() {
        let load = Instr::Mov(Reg::Eax.into(), mem(Reg::Ebx, 0).into());
        let reg = Instr::Mov(Reg::Eax.into(), Reg::Ebx.into());
        assert!(instruction_cost(&load) > instruction_cost(&reg));
    }

    #[test]
    fn mul_is_long_latency() {
        let mul = Instr::Mul(Reg::Ebx.into());
        assert!(instruction_cost(&mul) >= 4.0);
    }

    #[test]
    fn halt_is_free() {
        assert_eq!(instruction_cost(&Instr::Halt), 0.0);
    }
}
