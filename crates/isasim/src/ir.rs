//! The instruction representation: registers, operands, instructions and
//! the program builder.

/// The eight x86 general-purpose registers (32-bit).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Reg {
    Eax,
    Ebx,
    Ecx,
    Edx,
    Esi,
    Edi,
    Ebp,
    Esp,
}

impl Reg {
    pub(crate) const fn index(self) -> usize {
        self as usize
    }
}

/// A memory reference: `disp + base + index × scale`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRef {
    /// Base register, if any.
    pub base: Option<Reg>,
    /// Index register and scale (1, 2, 4 or 8), if any.
    pub index: Option<(Reg, u8)>,
    /// Constant displacement.
    pub disp: u32,
}

/// Builds a `[base + disp]` reference.
#[must_use]
pub fn mem(base: Reg, disp: u32) -> MemRef {
    MemRef { base: Some(base), index: None, disp }
}

/// Builds a `[disp + index*scale]` reference (table lookup form).
#[must_use]
pub fn mem_idx(disp: u32, index: Reg, scale: u8) -> MemRef {
    MemRef { base: None, index: Some((index, scale)), disp }
}

/// Builds a `[base + index*scale + disp]` reference.
#[must_use]
pub fn mem_bi(base: Reg, index: Reg, scale: u8, disp: u32) -> MemRef {
    MemRef { base: Some(base), index: Some((index, scale)), disp }
}

/// An instruction operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Operand {
    /// A register.
    Reg(Reg),
    /// An immediate constant.
    Imm(u32),
    /// A memory location.
    Mem(MemRef),
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Self {
        Operand::Reg(r)
    }
}

impl From<u32> for Operand {
    fn from(v: u32) -> Self {
        Operand::Imm(v)
    }
}

impl From<MemRef> for Operand {
    fn from(m: MemRef) -> Self {
        Operand::Mem(m)
    }
}

/// Two-operand ALU operations (`dst = dst op src`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum AluOp {
    Xor,
    And,
    Or,
    Add,
    /// Add with carry-in (and carry-out).
    Adc,
    Sub,
    /// Compare: computes `dst - src` for flags only.
    Cmp,
}

impl AluOp {
    pub(crate) const fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Xor => "xorl",
            AluOp::And => "andl",
            AluOp::Or => "orl",
            AluOp::Add => "addl",
            AluOp::Adc => "adcl",
            AluOp::Sub => "subl",
            AluOp::Cmp => "cmpl",
        }
    }
}

/// Shift and rotate operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum ShiftOp {
    Shr,
    Shl,
    Ror,
    Rol,
}

impl ShiftOp {
    pub(crate) const fn mnemonic(self) -> &'static str {
        match self {
            ShiftOp::Shr => "shrl",
            ShiftOp::Shl => "shll",
            ShiftOp::Ror => "rorl",
            ShiftOp::Rol => "roll",
        }
    }
}

/// A jump target, resolved by the [`Program`] label table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Label(pub(crate) usize);

/// One instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instr {
    /// 32-bit move (`movl`).
    Mov(Operand, Operand),
    /// Byte move, zero-extended into a register or stored from a register's
    /// low byte (`movb`).
    Movb(Operand, Operand),
    /// ALU operation (`dst = dst op src`).
    Alu(AluOp, Operand, Operand),
    /// Shift or rotate by an immediate count.
    Shift(ShiftOp, Operand, u8),
    /// Address computation (`leal`).
    Lea(Reg, MemRef),
    /// Unsigned multiply: `edx:eax = eax × src` (`mull`).
    Mul(Operand),
    /// Increment (`incl`).
    Inc(Operand),
    /// Decrement (`decl`).
    Dec(Operand),
    /// Push onto the stack (`pushl`).
    Push(Operand),
    /// Pop into a register (`popl`).
    Pop(Reg),
    /// Byte-swap a register (`bswap`).
    Bswap(Reg),
    /// Unconditional jump.
    Jmp(Label),
    /// Jump if the zero flag is clear (`jnz`).
    Jnz(Label),
    /// Jump if the zero flag is set (`jz`).
    Jz(Label),
    /// No operation.
    Nop,
    /// Stop the machine.
    Halt,
}

impl Instr {
    /// The x86-style mnemonic used in histograms and listings.
    #[must_use]
    pub const fn mnemonic(&self) -> &'static str {
        match self {
            Instr::Mov(..) => "movl",
            Instr::Movb(..) => "movb",
            Instr::Alu(op, ..) => op.mnemonic(),
            Instr::Shift(op, ..) => op.mnemonic(),
            Instr::Lea(..) => "leal",
            Instr::Mul(..) => "mull",
            Instr::Inc(..) => "incl",
            Instr::Dec(..) => "decl",
            Instr::Push(..) => "pushl",
            Instr::Pop(..) => "popl",
            Instr::Bswap(..) => "bswap",
            Instr::Jmp(..) => "jmp",
            Instr::Jnz(..) => "jnz",
            Instr::Jz(..) => "jz",
            Instr::Nop => "nop",
            Instr::Halt => "halt",
        }
    }
}

/// A program: instructions plus a label table.
///
/// # Examples
///
/// ```
/// use sslperf_isasim::ir::{AluOp, Operand, Program, Reg};
/// use sslperf_isasim::Machine;
///
/// let mut p = Program::new();
/// p.mov(Reg::Eax, 2u32);
/// p.alu(AluOp::Add, Reg::Eax, 40u32);
/// p.halt();
/// let mut m = Machine::new(64);
/// let stats = m.run(&p, 100).unwrap();
/// assert_eq!(m.reg(Reg::Eax), 42);
/// assert_eq!(stats.instructions, 3);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Program {
    pub(crate) code: Vec<Instr>,
    pub(crate) labels: Vec<Option<usize>>,
}

impl Program {
    /// An empty program.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a raw instruction.
    pub fn push(&mut self, instr: Instr) -> &mut Self {
        self.code.push(instr);
        self
    }

    /// Creates an unbound label for forward jumps.
    pub fn label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label was already bound.
    pub fn bind(&mut self, label: Label) {
        assert!(self.labels[label.0].is_none(), "label bound twice");
        self.labels[label.0] = Some(self.code.len());
    }

    /// Creates a label bound to the current position (loop heads).
    pub fn here(&mut self) -> Label {
        let l = self.label();
        self.bind(l);
        l
    }

    /// Number of static instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// True when no instruction has been emitted.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    /// Counts consecutive `mov rd, rs ; alu rd, x` pairs — exactly the
    /// sequences a three-operand ISA (`alu rd, rs, x`) would fuse into one
    /// instruction, the paper's §6.2(1) proposal. For straight-line kernels
    /// (the hash block operations are fully unrolled) the static count
    /// equals the dynamic count.
    #[must_use]
    pub fn fusable_mov_alu_pairs(&self) -> usize {
        self.code
            .windows(2)
            .filter(|w| {
                matches!(
                    (&w[0], &w[1]),
                    (
                        Instr::Mov(Operand::Reg(d1), Operand::Reg(_)),
                        Instr::Alu(_, Operand::Reg(d2), _),
                    ) if d1 == d2
                )
            })
            .count()
    }

    /// Renders an assembly-like listing (Table 9 style).
    #[must_use]
    pub fn listing(&self) -> String {
        let mut out = String::new();
        for (i, instr) in self.code.iter().enumerate() {
            for (l, pos) in self.labels.iter().enumerate() {
                if *pos == Some(i) {
                    out.push_str(&format!(".L{l}:\n"));
                }
            }
            out.push_str(&format!("    {}\n", render(instr)));
        }
        out
    }

    // --- emit helpers ---

    /// Emits `movl dst, src`.
    pub fn mov(&mut self, dst: impl Into<Operand>, src: impl Into<Operand>) -> &mut Self {
        self.push(Instr::Mov(dst.into(), src.into()))
    }

    /// Emits `movb dst, src`.
    pub fn movb(&mut self, dst: impl Into<Operand>, src: impl Into<Operand>) -> &mut Self {
        self.push(Instr::Movb(dst.into(), src.into()))
    }

    /// Emits an ALU instruction.
    pub fn alu(
        &mut self,
        op: AluOp,
        dst: impl Into<Operand>,
        src: impl Into<Operand>,
    ) -> &mut Self {
        self.push(Instr::Alu(op, dst.into(), src.into()))
    }

    /// Emits a shift/rotate by immediate.
    pub fn shift(&mut self, op: ShiftOp, dst: impl Into<Operand>, count: u8) -> &mut Self {
        self.push(Instr::Shift(op, dst.into(), count))
    }

    /// Emits `leal`.
    pub fn lea(&mut self, dst: Reg, src: MemRef) -> &mut Self {
        self.push(Instr::Lea(dst, src))
    }

    /// Emits `mull src`.
    pub fn mul(&mut self, src: impl Into<Operand>) -> &mut Self {
        self.push(Instr::Mul(src.into()))
    }

    /// Emits `incl`.
    pub fn inc(&mut self, dst: impl Into<Operand>) -> &mut Self {
        self.push(Instr::Inc(dst.into()))
    }

    /// Emits `decl`.
    pub fn dec(&mut self, dst: impl Into<Operand>) -> &mut Self {
        self.push(Instr::Dec(dst.into()))
    }

    /// Emits `pushl`.
    pub fn pushl(&mut self, src: impl Into<Operand>) -> &mut Self {
        self.push(Instr::Push(src.into()))
    }

    /// Emits `popl`.
    pub fn popl(&mut self, dst: Reg) -> &mut Self {
        self.push(Instr::Pop(dst))
    }

    /// Emits `bswap`.
    pub fn bswap(&mut self, reg: Reg) -> &mut Self {
        self.push(Instr::Bswap(reg))
    }

    /// Emits `jmp label`.
    pub fn jmp(&mut self, label: Label) -> &mut Self {
        self.push(Instr::Jmp(label))
    }

    /// Emits `jnz label`.
    pub fn jnz(&mut self, label: Label) -> &mut Self {
        self.push(Instr::Jnz(label))
    }

    /// Emits `jz label`.
    pub fn jz(&mut self, label: Label) -> &mut Self {
        self.push(Instr::Jz(label))
    }

    /// Emits `nop`.
    pub fn nop(&mut self) -> &mut Self {
        self.push(Instr::Nop)
    }

    /// Emits `halt`.
    pub fn halt(&mut self) -> &mut Self {
        self.push(Instr::Halt)
    }
}

fn render_operand(op: &Operand) -> String {
    match op {
        Operand::Reg(r) => format!("%{}", format!("{r:?}").to_lowercase()),
        Operand::Imm(v) => format!("${v:#x}"),
        Operand::Mem(m) => render_mem(m),
    }
}

fn render_mem(m: &MemRef) -> String {
    let mut s = String::new();
    if m.disp != 0 || (m.base.is_none() && m.index.is_none()) {
        s.push_str(&format!("{:#x}", m.disp));
    }
    s.push('(');
    if let Some(b) = m.base {
        s.push_str(&format!("%{}", format!("{b:?}").to_lowercase()));
    }
    if let Some((i, scale)) = m.index {
        s.push_str(&format!(",%{},{scale}", format!("{i:?}").to_lowercase()));
    }
    s.push(')');
    s
}

fn render(instr: &Instr) -> String {
    // AT&T order (src, dst), as the paper's Table 9 prints.
    match instr {
        Instr::Mov(dst, src) | Instr::Movb(dst, src) => {
            format!("{} {}, {}", instr.mnemonic(), render_operand(src), render_operand(dst))
        }
        Instr::Alu(_, dst, src) => {
            format!("{} {}, {}", instr.mnemonic(), render_operand(src), render_operand(dst))
        }
        Instr::Shift(_, dst, count) => {
            format!("{} ${count}, {}", instr.mnemonic(), render_operand(dst))
        }
        Instr::Lea(dst, src) => {
            format!("leal {}, %{}", render_mem(src), format!("{dst:?}").to_lowercase())
        }
        Instr::Mul(src) => format!("mull {}", render_operand(src)),
        Instr::Inc(op) | Instr::Dec(op) | Instr::Push(op) => {
            format!("{} {}", instr.mnemonic(), render_operand(op))
        }
        Instr::Pop(r) => format!("popl %{}", format!("{r:?}").to_lowercase()),
        Instr::Bswap(r) => format!("bswap %{}", format!("{r:?}").to_lowercase()),
        Instr::Jmp(l) | Instr::Jnz(l) | Instr::Jz(l) => {
            format!("{} .L{}", instr.mnemonic(), l.0)
        }
        Instr::Nop => "nop".to_owned(),
        Instr::Halt => "halt".to_owned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operand_conversions() {
        let _: Operand = Reg::Eax.into();
        let _: Operand = 5u32.into();
        let _: Operand = mem(Reg::Ebx, 4).into();
    }

    #[test]
    fn mnemonics() {
        assert_eq!(Instr::Mov(Reg::Eax.into(), 1u32.into()).mnemonic(), "movl");
        assert_eq!(Instr::Alu(AluOp::Adc, Reg::Eax.into(), 0u32.into()).mnemonic(), "adcl");
        assert_eq!(Instr::Shift(ShiftOp::Rol, Reg::Eax.into(), 3).mnemonic(), "roll");
        assert_eq!(Instr::Bswap(Reg::Ecx).mnemonic(), "bswap");
    }

    #[test]
    fn listing_renders_labels_and_att_order() {
        let mut p = Program::new();
        let top = p.here();
        p.mov(Reg::Eax, mem(Reg::Ebx, 8));
        p.dec(Reg::Ecx);
        p.jnz(top);
        p.halt();
        let listing = p.listing();
        assert!(listing.contains(".L0:"), "{listing}");
        assert!(listing.contains("movl 0x8(%ebx), %eax"), "{listing}");
        assert!(listing.contains("jnz .L0"), "{listing}");
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn double_bind_panics() {
        let mut p = Program::new();
        let l = p.label();
        p.bind(l);
        p.bind(l);
    }

    #[test]
    fn fusable_pairs_detected() {
        let mut p = Program::new();
        p.mov(Reg::Esi, Reg::Ebx); // fusable with the next alu
        p.alu(AluOp::And, Reg::Esi, Reg::Ecx);
        p.mov(Reg::Edi, mem(Reg::Ebx, 0)); // memory source: not fusable
        p.alu(AluOp::Xor, Reg::Edi, Reg::Ecx);
        p.mov(Reg::Eax, Reg::Ebx); // different alu dst: not fusable
        p.alu(AluOp::Or, Reg::Ecx, Reg::Eax);
        assert_eq!(p.fusable_mov_alu_pairs(), 1);
    }

    #[test]
    fn program_len() {
        let mut p = Program::new();
        assert!(p.is_empty());
        p.nop().nop();
        assert_eq!(p.len(), 2);
    }
}
