//! FIPS 180-2 SHA-1 secure hash.

use sslperf_profile::counters;

const INIT_STATE: [u32; 5] = [0x6745_2301, 0xefcd_ab89, 0x98ba_dcfe, 0x1032_5476, 0xc3d2_e1f0];

const K: [u32; 4] = [0x5a82_7999, 0x6ed9_eba1, 0x8f1b_bcdc, 0xca62_c1d6];

/// Streaming SHA-1 hasher (FIPS 180-2).
///
/// Mirrors the Init/Update/Final structure the paper measures in Table 10;
/// SHA-1 carries five chaining registers (one more than MD5, as §5.3 notes)
/// and an 80-step block operation, making it the more compute-intensive of
/// the two hashes.
///
/// # Examples
///
/// ```
/// use sslperf_hashes::Sha1;
///
/// let digest = Sha1::digest(b"abc");
/// assert_eq!(digest[..4], [0xa9, 0x99, 0x3e, 0x36]);
/// ```
#[derive(Debug, Clone)]
pub struct Sha1 {
    state: [u32; 5],
    len: u64,
    buf: [u8; 64],
    buf_len: usize,
}

impl Default for Sha1 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha1 {
    /// Digest length in bytes.
    pub const OUTPUT_LEN: usize = 20;
    /// Compression block length in bytes.
    pub const BLOCK_LEN: usize = 64;

    /// Initializes the five 32-bit chaining registers (the *Init* phase).
    #[must_use]
    pub fn new() -> Self {
        Sha1 { state: INIT_STATE, len: 0, buf: [0; 64], buf_len: 0 }
    }

    /// One-shot digest of `data`.
    #[must_use]
    pub fn digest(data: &[u8]) -> [u8; 20] {
        let mut h = Sha1::new();
        h.update(data);
        h.finalize()
    }

    /// Absorbs `data`, running an 80-step block operation per 64-byte block
    /// (the *Update* phase).
    pub fn update(&mut self, data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        let mut input = data;
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(input.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&input[..take]);
            self.buf_len += take;
            input = &input[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
            if input.is_empty() {
                // Nothing left for the tail copy below; returning here keeps
                // the partially filled buffer intact.
                return;
            }
        }
        while input.len() >= 64 {
            let (block, rest) = input.split_at(64);
            self.compress(block.try_into().expect("64-byte split"));
            input = rest;
        }
        self.buf[..input.len()].copy_from_slice(input);
        self.buf_len = input.len();
    }

    /// Pads the message, runs the final block operation(s) and returns the
    /// 160-bit digest (the *Final* phase).
    #[must_use]
    pub fn finalize(mut self) -> [u8; 20] {
        let bit_len = self.len.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        self.update(&bit_len.to_be_bytes());
        debug_assert_eq!(self.buf_len, 0);
        let mut out = [0u8; 20];
        for (i, word) in self.state.iter().enumerate() {
            out[4 * i..4 * i + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    /// Runs one block operation on an explicit chaining state — exposed for
    /// the ISA-level analysis kernels, which must validate their simulated
    /// compression against the native one.
    #[must_use]
    pub fn compress_block(state: [u32; 5], block: &[u8; 64]) -> [u32; 5] {
        let mut h = Sha1::new();
        h.state = state;
        h.compress(block);
        h.state
    }

    /// The SHA-1 block operation: message schedule expansion + 80 steps.
    fn compress(&mut self, block: &[u8; 64]) {
        counters::count("sha1_block", 1);
        let mut w = [0u32; 80];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }
        let [mut a, mut b, mut c, mut d, mut e] = self.state;
        for (i, &wi) in w.iter().enumerate() {
            let f = match i / 20 {
                0 => (b & c) | (!b & d),
                1 => b ^ c ^ d,
                2 => (b & c) | (b & d) | (c & d),
                _ => b ^ c ^ d,
            };
            let tmp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(K[i / 20])
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = tmp;
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// FIPS 180-2 appendix A + the empty string.
    #[test]
    fn fips_vectors() {
        let cases: &[(&[u8], &str)] = &[
            (b"", "da39a3ee5e6b4b0d3255bfef95601890afd80709"),
            (b"abc", "a9993e364706816aba3e25717850c26c9cd0d89d"),
            (
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
                "84983e441c3bd26ebaae4aa1f95129e5e54670f1",
            ),
        ];
        for (input, want) in cases {
            assert_eq!(hex(&Sha1::digest(input)), *want);
        }
    }

    /// FIPS 180-2: one million repetitions of "a".
    #[test]
    fn million_a() {
        let mut h = Sha1::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(hex(&h.finalize()), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
    }

    #[test]
    fn streaming_matches_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(777).collect();
        for chunk in [1, 7, 64, 100] {
            let mut h = Sha1::new();
            for c in data.chunks(chunk) {
                h.update(c);
            }
            assert_eq!(h.finalize(), Sha1::digest(&data), "chunk size {chunk}");
        }
    }

    #[test]
    fn boundary_lengths() {
        for len in [55usize, 56, 57, 63, 64, 65, 128] {
            let data = vec![0x5au8; len];
            assert_eq!(Sha1::digest(&data).len(), 20, "len {len}");
        }
    }

    #[test]
    fn counts_blocks() {
        let (_, snap) = counters::counted(|| Sha1::digest(&[0u8; 64]));
        // 64 bytes of data forces padding into a second block.
        assert_eq!(snap.units("sha1_block"), 2);
    }
}
