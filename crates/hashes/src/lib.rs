//! From-scratch MD5 and SHA-1 for the SSL-processing anatomy study.
//!
//! The paper (§5.3) partitions hashing into three phases — **Init**,
//! **Update** (64-byte block operations) and **Final** (padding + last
//! block) — and measures each. The implementations here expose exactly that
//! streaming structure:
//!
//! * [`Md5`] — RFC 1321, 128-bit digest.
//! * [`Sha1`] — FIPS 180-2, 160-bit digest.
//! * [`Sha256`] — FIPS 180-2, 256-bit digest (for the TLS 1.3-style
//!   machine's HKDF schedule and transcript hash).
//! * [`Hasher`]/[`HashAlg`] — run-time algorithm selection, as the SSL layer
//!   needs both digests side by side.
//! * [`Hmac`] — RFC 2104 keyed MAC over any of the hashes.
//! * [`hkdf`] — RFC 5869 extract-and-expand over [`Hmac`].
//!
//! Block compressions report to [`sslperf_profile::counters`] under the names
//! `"md5_block"`, `"sha1_block"` and `"sha256_block"` (one unit per 64-byte
//! block) so profiling passes can attribute work without timing individual
//! calls.
//!
//! # Examples
//!
//! ```
//! use sslperf_hashes::{Md5, Sha1};
//!
//! assert_eq!(
//!     hex::encode(Md5::digest(b"abc")),
//!     "900150983cd24fb0d6963f7d28e17f72"
//! );
//! assert_eq!(
//!     hex::encode(Sha1::digest(b"abc")),
//!     "a9993e364706816aba3e25717850c26c9cd0d89d"
//! );
//! # mod hex { pub fn encode(b: impl AsRef<[u8]>) -> String {
//! #   b.as_ref().iter().map(|x| format!("{x:02x}")).collect() } }
//! ```
//!
//! # Security
//!
//! MD5 and SHA-1 are cryptographically broken. They are implemented here
//! solely to reproduce a 2005 performance study; never use them to protect
//! data.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hkdf;
mod hmac;
mod md5;
mod sha1;
mod sha256;

pub use hmac::Hmac;
pub use md5::Md5;
pub use sha1::Sha1;
pub use sha256::Sha256;

/// The hash algorithms used by the SSL v3 and TLS 1.3-style machines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HashAlg {
    /// RFC 1321 MD5 (16-byte digest).
    Md5,
    /// FIPS 180-2 SHA-1 (20-byte digest).
    Sha1,
    /// FIPS 180-2 SHA-256 (32-byte digest).
    Sha256,
}

impl HashAlg {
    /// Digest length in bytes (16 for MD5, 20 for SHA-1, 32 for SHA-256).
    #[must_use]
    pub const fn output_len(self) -> usize {
        match self {
            HashAlg::Md5 => 16,
            HashAlg::Sha1 => 20,
            HashAlg::Sha256 => 32,
        }
    }

    /// Compression block length in bytes (64 for all three).
    #[must_use]
    pub const fn block_len(self) -> usize {
        64
    }

    /// Human-readable algorithm name.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            HashAlg::Md5 => "MD5",
            HashAlg::Sha1 => "SHA-1",
            HashAlg::Sha256 => "SHA-256",
        }
    }
}

impl std::fmt::Display for HashAlg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[derive(Debug, Clone)]
enum HasherInner {
    Md5(Md5),
    Sha1(Sha1),
    Sha256(Sha256),
}

/// A streaming hasher whose algorithm is chosen at run time.
///
/// SSL v3 computes MD5 and SHA-1 digests in parallel over the same handshake
/// transcript, and the MAC algorithm depends on the negotiated cipher suite;
/// this type gives that code one concrete interface.
///
/// # Examples
///
/// ```
/// use sslperf_hashes::{HashAlg, Hasher};
///
/// let mut h = Hasher::new(HashAlg::Sha1);
/// h.update(b"ab");
/// h.update(b"c");
/// assert_eq!(h.finalize(), Hasher::digest(HashAlg::Sha1, b"abc"));
/// ```
#[derive(Debug, Clone)]
pub struct Hasher {
    inner: HasherInner,
}

impl Hasher {
    /// Creates a hasher for `alg` (the paper's *Init* phase).
    #[must_use]
    pub fn new(alg: HashAlg) -> Self {
        let inner = match alg {
            HashAlg::Md5 => HasherInner::Md5(Md5::new()),
            HashAlg::Sha1 => HasherInner::Sha1(Sha1::new()),
            HashAlg::Sha256 => HasherInner::Sha256(Sha256::new()),
        };
        Hasher { inner }
    }

    /// Which algorithm this hasher runs.
    #[must_use]
    pub fn alg(&self) -> HashAlg {
        match self.inner {
            HasherInner::Md5(_) => HashAlg::Md5,
            HasherInner::Sha1(_) => HashAlg::Sha1,
            HasherInner::Sha256(_) => HashAlg::Sha256,
        }
    }

    /// Absorbs `data` (the paper's *Update* phase).
    pub fn update(&mut self, data: &[u8]) {
        match &mut self.inner {
            HasherInner::Md5(h) => h.update(data),
            HasherInner::Sha1(h) => h.update(data),
            HasherInner::Sha256(h) => h.update(data),
        }
    }

    /// Pads, runs the last block(s) and returns the digest (the paper's
    /// *Final* phase). The digest length is [`HashAlg::output_len`].
    #[must_use]
    pub fn finalize(self) -> Vec<u8> {
        match self.inner {
            HasherInner::Md5(h) => h.finalize().to_vec(),
            HasherInner::Sha1(h) => h.finalize().to_vec(),
            HasherInner::Sha256(h) => h.finalize().to_vec(),
        }
    }

    /// Like [`Hasher::finalize`], but writes the digest into `out` without
    /// heap allocation — the record layer's zero-copy MAC path depends on
    /// this.
    ///
    /// # Panics
    ///
    /// Panics unless `out` is exactly [`HashAlg::output_len`] bytes.
    pub fn finalize_into(self, out: &mut [u8]) {
        match self.inner {
            HasherInner::Md5(h) => out.copy_from_slice(&h.finalize()),
            HasherInner::Sha1(h) => out.copy_from_slice(&h.finalize()),
            HasherInner::Sha256(h) => out.copy_from_slice(&h.finalize()),
        }
    }

    /// One-shot convenience: digest `data` with `alg`.
    #[must_use]
    pub fn digest(alg: HashAlg, data: &[u8]) -> Vec<u8> {
        let mut h = Hasher::new(alg);
        h.update(data);
        h.finalize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alg_metadata() {
        assert_eq!(HashAlg::Md5.output_len(), 16);
        assert_eq!(HashAlg::Sha1.output_len(), 20);
        assert_eq!(HashAlg::Md5.block_len(), 64);
        assert_eq!(HashAlg::Sha1.to_string(), "SHA-1");
    }

    #[test]
    fn hasher_matches_concrete_types() {
        let data = b"the quick brown fox";
        assert_eq!(Hasher::digest(HashAlg::Md5, data), Md5::digest(data).to_vec());
        assert_eq!(Hasher::digest(HashAlg::Sha1, data), Sha1::digest(data).to_vec());
    }

    #[test]
    fn hasher_reports_alg() {
        assert_eq!(Hasher::new(HashAlg::Md5).alg(), HashAlg::Md5);
        assert_eq!(Hasher::new(HashAlg::Sha1).alg(), HashAlg::Sha1);
    }

    #[test]
    fn finalize_into_matches_finalize() {
        for alg in [HashAlg::Md5, HashAlg::Sha1] {
            let mut h = Hasher::new(alg);
            h.update(b"abc");
            let mut out = vec![0u8; alg.output_len()];
            h.clone().finalize_into(&mut out);
            assert_eq!(out, h.finalize());
        }
    }

    #[test]
    fn streaming_equals_oneshot_across_split_points() {
        let data: Vec<u8> = (0..255u8).collect();
        for split in [0, 1, 63, 64, 65, 128, 200, 255] {
            let mut h = Hasher::new(HashAlg::Sha1);
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), Hasher::digest(HashAlg::Sha1, &data), "split {split}");
        }
    }
}
