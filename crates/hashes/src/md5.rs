//! RFC 1321 MD5 message digest.

use sslperf_profile::counters;

/// Per-round sine-derived constants `T[i] = floor(2^32 * |sin(i+1)|)`.
const T: [u32; 64] = [
    0xd76a_a478,
    0xe8c7_b756,
    0x2420_70db,
    0xc1bd_ceee,
    0xf57c_0faf,
    0x4787_c62a,
    0xa830_4613,
    0xfd46_9501,
    0x6980_98d8,
    0x8b44_f7af,
    0xffff_5bb1,
    0x895c_d7be,
    0x6b90_1122,
    0xfd98_7193,
    0xa679_438e,
    0x49b4_0821,
    0xf61e_2562,
    0xc040_b340,
    0x265e_5a51,
    0xe9b6_c7aa,
    0xd62f_105d,
    0x0244_1453,
    0xd8a1_e681,
    0xe7d3_fbc8,
    0x21e1_cde6,
    0xc337_07d6,
    0xf4d5_0d87,
    0x455a_14ed,
    0xa9e3_e905,
    0xfcef_a3f8,
    0x676f_02d9,
    0x8d2a_4c8a,
    0xfffa_3942,
    0x8771_f681,
    0x6d9d_6122,
    0xfde5_380c,
    0xa4be_ea44,
    0x4bde_cfa9,
    0xf6bb_4b60,
    0xbebf_bc70,
    0x289b_7ec6,
    0xeaa1_27fa,
    0xd4ef_3085,
    0x0488_1d05,
    0xd9d4_d039,
    0xe6db_99e5,
    0x1fa2_7cf8,
    0xc4ac_5665,
    0xf429_2244,
    0x432a_ff97,
    0xab94_23a7,
    0xfc93_a039,
    0x655b_59c3,
    0x8f0c_cc92,
    0xffef_f47d,
    0x8584_5dd1,
    0x6fa8_7e4f,
    0xfe2c_e6e0,
    0xa301_4314,
    0x4e08_11a1,
    0xf753_7e82,
    0xbd3a_f235,
    0x2ad7_d2bb,
    0xeb86_d391,
];

/// Left-rotate amounts per round.
const S: [[u32; 4]; 4] = [[7, 12, 17, 22], [5, 9, 14, 20], [4, 11, 16, 23], [6, 10, 15, 21]];

const INIT_STATE: [u32; 4] = [0x6745_2301, 0xefcd_ab89, 0x98ba_dcfe, 0x1032_5476];

/// Streaming MD5 hasher (RFC 1321).
///
/// The API mirrors the Init/Update/Final structure the paper measures in
/// Table 10: [`Md5::new`] is *Init*, [`Md5::update`] runs the 64-byte block
/// operations, and [`Md5::finalize`] pads and produces the digest.
///
/// # Examples
///
/// ```
/// use sslperf_hashes::Md5;
///
/// let mut h = Md5::new();
/// h.update(b"message ");
/// h.update(b"digest");
/// let digest = h.finalize();
/// assert_eq!(digest[0], 0xf9);
/// ```
#[derive(Debug, Clone)]
pub struct Md5 {
    state: [u32; 4],
    /// Total message length in bytes.
    len: u64,
    buf: [u8; 64],
    buf_len: usize,
}

impl Default for Md5 {
    fn default() -> Self {
        Self::new()
    }
}

impl Md5 {
    /// Digest length in bytes.
    pub const OUTPUT_LEN: usize = 16;
    /// Compression block length in bytes.
    pub const BLOCK_LEN: usize = 64;

    /// Initializes the four 32-bit chaining registers (the *Init* phase).
    #[must_use]
    pub fn new() -> Self {
        Md5 { state: INIT_STATE, len: 0, buf: [0; 64], buf_len: 0 }
    }

    /// One-shot digest of `data`.
    #[must_use]
    pub fn digest(data: &[u8]) -> [u8; 16] {
        let mut h = Md5::new();
        h.update(data);
        h.finalize()
    }

    /// Absorbs `data`, running a block operation for each complete 64-byte
    /// block (the *Update* phase).
    pub fn update(&mut self, data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        let mut input = data;
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(input.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&input[..take]);
            self.buf_len += take;
            input = &input[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
            if input.is_empty() {
                // Nothing left for the tail copy below; returning here keeps
                // the partially filled buffer intact.
                return;
            }
        }
        while input.len() >= 64 {
            let (block, rest) = input.split_at(64);
            self.compress(block.try_into().expect("64-byte split"));
            input = rest;
        }
        self.buf[..input.len()].copy_from_slice(input);
        self.buf_len = input.len();
    }

    /// Pads the message, runs the final block operation(s) and returns the
    /// 128-bit digest (the *Final* phase).
    #[must_use]
    pub fn finalize(mut self) -> [u8; 16] {
        let bit_len = self.len.wrapping_mul(8);
        // Append 0x80 then zeros until 8 bytes remain in the block.
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        self.update(&bit_len.to_le_bytes());
        debug_assert_eq!(self.buf_len, 0);
        let mut out = [0u8; 16];
        for (i, word) in self.state.iter().enumerate() {
            out[4 * i..4 * i + 4].copy_from_slice(&word.to_le_bytes());
        }
        out
    }

    /// Runs one block operation on an explicit chaining state — exposed for
    /// the ISA-level analysis kernels, which must validate their simulated
    /// compression against the native one.
    #[must_use]
    pub fn compress_block(state: [u32; 4], block: &[u8; 64]) -> [u32; 4] {
        let mut h = Md5::new();
        h.state = state;
        h.compress(block);
        h.state
    }

    /// The MD5 block operation: 4 rounds of 16 steps over one 64-byte block.
    fn compress(&mut self, block: &[u8; 64]) {
        counters::count("md5_block", 1);
        let mut m = [0u32; 16];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            m[i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        let [mut a, mut b, mut c, mut d] = self.state;
        for i in 0..64 {
            let (f, g) = match i / 16 {
                0 => ((b & c) | (!b & d), i),
                1 => ((d & b) | (!d & c), (5 * i + 1) % 16),
                2 => (b ^ c ^ d, (3 * i + 5) % 16),
                _ => (c ^ (b | !d), (7 * i) % 16),
            };
            let rotate = S[i / 16][i % 4];
            let tmp = d;
            d = c;
            c = b;
            b = b.wrapping_add(
                a.wrapping_add(f).wrapping_add(T[i]).wrapping_add(m[g]).rotate_left(rotate),
            );
            a = tmp;
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// RFC 1321 appendix A.5 test suite.
    #[test]
    fn rfc1321_vectors() {
        let cases: &[(&[u8], &str)] = &[
            (b"", "d41d8cd98f00b204e9800998ecf8427e"),
            (b"a", "0cc175b9c0f1b6a831c399e269772661"),
            (b"abc", "900150983cd24fb0d6963f7d28e17f72"),
            (b"message digest", "f96b697d7cb7938d525a2f31aaf161d0"),
            (b"abcdefghijklmnopqrstuvwxyz", "c3fcd3d76192e4007dfb496cca67e13b"),
            (
                b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
                "d174ab98d277d9f5a5611c2c9f419d9f",
            ),
            (
                b"12345678901234567890123456789012345678901234567890123456789012345678901234567890",
                "57edf4a22be3c955ac49da2e2107b67a",
            ),
        ];
        for (input, want) in cases {
            assert_eq!(
                hex(&Md5::digest(input)),
                *want,
                "input {:?}",
                String::from_utf8_lossy(input)
            );
        }
    }

    #[test]
    fn streaming_matches_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        for chunk in [1, 3, 63, 64, 65, 500] {
            let mut h = Md5::new();
            for c in data.chunks(chunk) {
                h.update(c);
            }
            assert_eq!(h.finalize(), Md5::digest(&data), "chunk size {chunk}");
        }
    }

    #[test]
    fn boundary_lengths() {
        // 55 bytes: padding fits in one block; 56: forces an extra block.
        for len in [55usize, 56, 57, 63, 64, 65, 119, 120, 127, 128] {
            let data = vec![0xabu8; len];
            let d1 = Md5::digest(&data);
            let mut h = Md5::new();
            h.update(&data);
            assert_eq!(h.finalize(), d1, "len {len}");
        }
    }

    #[test]
    fn counts_blocks() {
        let (_, snap) = counters::counted(|| Md5::digest(&[0u8; 640]));
        // 640 bytes data + padding = 11 blocks.
        assert_eq!(snap.units("md5_block"), 11);
    }

    #[test]
    fn distinct_inputs_distinct_digests() {
        assert_ne!(Md5::digest(b"a"), Md5::digest(b"b"));
        assert_ne!(Md5::digest(b""), Md5::digest(&[0]));
    }
}
