//! RFC 5869 HKDF: extract-and-expand key derivation over [`Hmac`].
//!
//! TLS 1.3's key schedule (RFC 8446 §7.1) is a tree of HKDF-Extract and
//! HKDF-Expand calls; the protocol-specific `ExpandLabel` framing lives in
//! the SSL crate, while the generic two-phase construction lives here next
//! to the HMAC it is built on.

use crate::{HashAlg, Hmac};

/// `HKDF-Extract(salt, ikm)`: concentrates possibly-weak input keying
/// material into one pseudorandom key of [`HashAlg::output_len`] bytes.
///
/// An empty `salt` is treated as the RFC's default all-zero string of hash
/// length.
///
/// # Examples
///
/// ```
/// use sslperf_hashes::{hkdf, HashAlg};
///
/// let prk = hkdf::extract(HashAlg::Sha256, b"salt", b"input keying material");
/// assert_eq!(prk.len(), 32);
/// ```
#[must_use]
pub fn extract(alg: HashAlg, salt: &[u8], ikm: &[u8]) -> Vec<u8> {
    let zero_salt = vec![0u8; alg.output_len()];
    let salt = if salt.is_empty() { &zero_salt } else { salt };
    Hmac::mac(alg, salt, ikm)
}

/// `HKDF-Expand(prk, info, out_len)`: stretches a pseudorandom key into
/// `out_len` bytes of output keying material.
///
/// # Panics
///
/// Panics if `out_len > 255 * HashLen`, the RFC 5869 ceiling.
#[must_use]
pub fn expand(alg: HashAlg, prk: &[u8], info: &[u8], out_len: usize) -> Vec<u8> {
    let hash_len = alg.output_len();
    assert!(out_len <= 255 * hash_len, "HKDF-Expand output too long");
    let mut okm = Vec::with_capacity(out_len);
    let mut block: Vec<u8> = Vec::new();
    let mut counter = 1u8;
    while okm.len() < out_len {
        let mut mac = Hmac::new(alg, prk);
        mac.update(&block);
        mac.update(info);
        mac.update(&[counter]);
        block = mac.finalize();
        let take = (out_len - okm.len()).min(hash_len);
        okm.extend_from_slice(&block[..take]);
        counter = counter.wrapping_add(1);
    }
    okm
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// RFC 5869 appendix A, test case 1 (basic SHA-256). The full
    /// three-case suite lives in `tests/known_answer.rs`.
    #[test]
    fn rfc5869_case_1() {
        let salt: Vec<u8> = (0x00..=0x0c).collect();
        let prk = extract(HashAlg::Sha256, &salt, &[0x0b; 22]);
        assert_eq!(hex(&prk), "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5");
        let info: Vec<u8> = (0xf0..=0xf9).collect();
        let okm = expand(HashAlg::Sha256, &prk, &info, 42);
        assert_eq!(
            hex(&okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865"
        );
    }

    /// Empty salt falls back to the all-zero string of hash length.
    #[test]
    fn empty_salt_is_zero_block() {
        let a = extract(HashAlg::Sha256, b"", b"ikm");
        let b = extract(HashAlg::Sha256, &[0u8; 32], b"ikm");
        assert_eq!(a, b);
    }

    #[test]
    fn expand_multi_block_and_truncation() {
        let prk = extract(HashAlg::Sha1, b"salt", b"ikm");
        let long = expand(HashAlg::Sha1, &prk, b"info", 61);
        let short = expand(HashAlg::Sha1, &prk, b"info", 16);
        assert_eq!(long.len(), 61);
        assert_eq!(&long[..16], &short[..]);
    }

    #[test]
    #[should_panic(expected = "output too long")]
    fn expand_rejects_oversize() {
        let _ = expand(HashAlg::Sha256, &[0u8; 32], b"", 255 * 32 + 1);
    }
}
