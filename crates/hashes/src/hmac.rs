//! RFC 2104 HMAC over either hash algorithm.

use crate::{HashAlg, Hasher};

const IPAD: u8 = 0x36;
const OPAD: u8 = 0x5c;

/// A keyed message-authentication code: `H((K ^ opad) || H((K ^ ipad) || m))`.
///
/// SSL v3 proper uses an older concatenation MAC (implemented in
/// `sslperf-ssl`), but HMAC is the construction TLS adopted and serves as a
/// baseline in the MAC benches.
///
/// # Examples
///
/// ```
/// use sslperf_hashes::{HashAlg, Hmac};
///
/// let mut mac = Hmac::new(HashAlg::Sha1, b"key");
/// mac.update(b"message");
/// let tag = mac.finalize();
/// assert_eq!(tag.len(), 20);
/// assert_eq!(tag, Hmac::mac(HashAlg::Sha1, b"key", b"message"));
/// ```
#[derive(Debug, Clone)]
pub struct Hmac {
    inner: Hasher,
    outer: Hasher,
}

impl Hmac {
    /// Creates an HMAC instance keyed with `key`.
    ///
    /// Keys longer than the 64-byte block are first hashed, per RFC 2104.
    #[must_use]
    pub fn new(alg: HashAlg, key: &[u8]) -> Self {
        let block = alg.block_len();
        let mut key_block = vec![0u8; block];
        if key.len() > block {
            let digest = Hasher::digest(alg, key);
            key_block[..digest.len()].copy_from_slice(&digest);
        } else {
            key_block[..key.len()].copy_from_slice(key);
        }
        let mut inner = Hasher::new(alg);
        let ipad: Vec<u8> = key_block.iter().map(|b| b ^ IPAD).collect();
        inner.update(&ipad);
        let mut outer = Hasher::new(alg);
        let opad: Vec<u8> = key_block.iter().map(|b| b ^ OPAD).collect();
        outer.update(&opad);
        Hmac { inner, outer }
    }

    /// Absorbs message data.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Produces the authentication tag.
    #[must_use]
    pub fn finalize(self) -> Vec<u8> {
        let alg = self.inner.alg();
        let mut tag = vec![0u8; alg.output_len()];
        self.finalize_into(&mut tag);
        tag
    }

    /// Like [`Hmac::finalize`], but writes the tag into `out` without heap
    /// allocation.
    ///
    /// # Panics
    ///
    /// Panics unless `out` is exactly [`HashAlg::output_len`] bytes.
    pub fn finalize_into(self, out: &mut [u8]) {
        let alg = self.inner.alg();
        let mut inner_digest = [0u8; 32];
        let inner_digest = &mut inner_digest[..alg.output_len()];
        self.inner.finalize_into(inner_digest);
        let mut outer = self.outer;
        outer.update(inner_digest);
        outer.finalize_into(out);
    }

    /// One-shot convenience: MAC of `data` under `key`.
    #[must_use]
    pub fn mac(alg: HashAlg, key: &[u8], data: &[u8]) -> Vec<u8> {
        let mut h = Hmac::new(alg, key);
        h.update(data);
        h.finalize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// RFC 2202 test cases 1–3 for both algorithms.
    #[test]
    fn rfc2202_md5() {
        assert_eq!(
            hex(&Hmac::mac(HashAlg::Md5, &[0x0b; 16], b"Hi There")),
            "9294727a3638bb1c13f48ef8158bfc9d"
        );
        assert_eq!(
            hex(&Hmac::mac(HashAlg::Md5, b"Jefe", b"what do ya want for nothing?")),
            "750c783e6ab0b503eaa86e310a5db738"
        );
        assert_eq!(
            hex(&Hmac::mac(HashAlg::Md5, &[0xaa; 16], &[0xdd; 50])),
            "56be34521d144c88dbb8c733f0e8b3f6"
        );
    }

    #[test]
    fn rfc2202_sha1() {
        assert_eq!(
            hex(&Hmac::mac(HashAlg::Sha1, &[0x0b; 20], b"Hi There")),
            "b617318655057264e28bc0b6fb378c8ef146be00"
        );
        assert_eq!(
            hex(&Hmac::mac(HashAlg::Sha1, b"Jefe", b"what do ya want for nothing?")),
            "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79"
        );
        assert_eq!(
            hex(&Hmac::mac(HashAlg::Sha1, &[0xaa; 20], &[0xdd; 50])),
            "125d7342b9ac11cd91a39af48aa17b4f63f175d3"
        );
    }

    /// RFC 2202 case 6: key longer than the block size is hashed first.
    #[test]
    fn long_key_is_hashed() {
        assert_eq!(
            hex(&Hmac::mac(
                HashAlg::Sha1,
                &[0xaa; 80],
                b"Test Using Larger Than Block-Size Key - Hash Key First"
            )),
            "aa4ae5e15272d00e95705637ce8a3b55ed402112"
        );
    }

    #[test]
    fn streaming_matches_oneshot() {
        let mut m = Hmac::new(HashAlg::Md5, b"k");
        m.update(b"ab");
        m.update(b"cd");
        assert_eq!(m.finalize(), Hmac::mac(HashAlg::Md5, b"k", b"abcd"));
    }

    #[test]
    fn finalize_into_matches_finalize() {
        for alg in [HashAlg::Md5, HashAlg::Sha1] {
            let mut m = Hmac::new(alg, b"key");
            m.update(b"message");
            let mut tag = vec![0u8; alg.output_len()];
            m.clone().finalize_into(&mut tag);
            assert_eq!(tag, m.finalize());
        }
    }

    #[test]
    fn different_keys_different_tags() {
        assert_ne!(
            Hmac::mac(HashAlg::Sha1, b"k1", b"data"),
            Hmac::mac(HashAlg::Sha1, b"k2", b"data")
        );
    }
}
