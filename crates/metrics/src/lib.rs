//! Lock-cheap metrics primitives for live serving measurements.
//!
//! The paper's anatomy tables are built offline from per-connection phase
//! ledgers; turning them into a *live* view of a running server needs
//! aggregation that every shard, worker, and crypto thread can write to
//! concurrently without serializing on a lock — and, on the record path,
//! without allocating (the zero-copy pipeline's alloc-budget proof must
//! survive instrumentation). Three primitives cover it:
//!
//! - [`Counter`]: a monotonic `AtomicU64`.
//! - [`Gauge`]: a settable level plus its high-water mark (queue depths).
//! - [`Histogram`]: a log-linear latency histogram — power-of-two octaves
//!   split into eight linear sub-buckets, so p50/p95/p99 come from bucket
//!   counts (≤ 12.5% relative error) with no samples stored and every
//!   `record` just one index computation plus three `fetch_add`s.
//!
//! All three are `Sync`, allocation-free after construction, and use
//! `Relaxed` ordering: the consumers are statistical snapshots, not
//! synchronization points.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing atomic counter.
///
/// # Examples
///
/// ```
/// use sslperf_metrics::Counter;
///
/// let c = Counter::new();
/// c.add(3);
/// c.inc();
/// assert_eq!(c.get(), 4);
/// ```
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter starting at zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one to the counter.
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A settable level that also remembers its high-water mark.
///
/// # Examples
///
/// ```
/// use sslperf_metrics::Gauge;
///
/// let g = Gauge::new();
/// g.set(5);
/// g.set(2);
/// assert_eq!((g.get(), g.max()), (2, 5));
/// ```
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
    max: AtomicU64,
}

impl Gauge {
    /// A gauge at zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the current level, updating the high-water mark.
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// The current level.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// The highest level ever set.
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }
}

/// Linear sub-buckets per power-of-two octave, as a bit count: 2³ = 8
/// sub-buckets bound the quantile error at 1/8 = 12.5%.
const SUB_BITS: u32 = 3;
const SUB: u64 = 1 << SUB_BITS;
/// Bucket count: values below [`SUB`] get exact unit buckets; each octave
/// `2^k..2^(k+1)` for k in 3..=63 contributes [`SUB`] buckets.
const BUCKETS: usize = SUB as usize + (64 - SUB_BITS as usize) * SUB as usize;

/// Which bucket a value lands in.
fn bucket_index(v: u64) -> usize {
    if v < SUB {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let shift = msb - SUB_BITS;
    let sub = (v >> shift) - SUB;
    ((msb - SUB_BITS) as usize) * SUB as usize + SUB as usize + sub as usize
}

/// The largest value a bucket holds (inclusive) — what quantiles report.
fn bucket_upper(index: usize) -> u64 {
    if index < SUB as usize {
        return index as u64;
    }
    let k = index - SUB as usize;
    let shift = (k as u32) / SUB as u32;
    let sub = (k as u64) % SUB;
    // The -1 binds to the bucket width before the add: the top octave's
    // last bucket ends exactly at u64::MAX and must not overflow past it.
    ((SUB + sub) << shift) + ((1u64 << shift) - 1)
}

/// A log-linear latency histogram: concurrent writers, sample-free
/// quantiles.
///
/// Values (cycle counts, byte counts — any `u64`) land in one of
/// a fixed bucket count (`BUCKETS`); recording is an index computation plus three
/// relaxed `fetch_add`s, so the record path stays lock- and
/// allocation-free. Quantiles are read from a [`HistogramSnapshot`] and
/// report the bucket's upper bound, overestimating by at most 12.5%.
///
/// # Examples
///
/// ```
/// use sslperf_metrics::Histogram;
///
/// let h = Histogram::new();
/// for v in 1..=100u64 {
///     h.record(v);
/// }
/// let snap = h.snapshot();
/// assert_eq!(snap.count(), 100);
/// assert!(snap.p50() >= 50 && snap.p50() <= 57);
/// assert!(snap.p50() <= snap.p95() && snap.p95() <= snap.p99());
/// ```
#[derive(Debug)]
pub struct Histogram {
    counts: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    pub fn record(&self, v: u64) {
        self.record_n(v, 1);
    }

    /// Records the same observation `n` times with one set of atomic adds —
    /// a batch of jobs sharing an amortized per-job cost records the cost
    /// once, weighted by the batch size.
    pub fn record_n(&self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[bucket_index(v)].fetch_add(n, Ordering::Relaxed);
        self.count.fetch_add(n, Ordering::Relaxed);
        self.sum.fetch_add(v * n, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Observations recorded so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations (saturating only at `u64::MAX` totals).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the bucket counts for quantile queries.
    /// Concurrent recording keeps running; the snapshot is internally
    /// consistent enough for statistics (relaxed reads, no lock).
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts: Vec<u64> = self.counts.iter().map(|c| c.load(Ordering::Relaxed)).collect();
        let count = counts.iter().sum();
        HistogramSnapshot {
            counts,
            count,
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// An immutable copy of a [`Histogram`]'s buckets, with quantile queries.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl HistogramSnapshot {
    /// Observations in the snapshot.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest observation ever recorded (exact, not bucketed).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean, or 0 for an empty snapshot.
    #[must_use]
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// The value at quantile `q` in `[0, 1]`: the upper bound of the first
    /// bucket whose cumulative count reaches `ceil(q * count)`. Returns 0
    /// for an empty snapshot. Monotone in `q` by construction, so
    /// `p50 <= p95 <= p99` always holds within one snapshot.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // ceil without going through floats for the common q values.
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cumulative += c;
            if cumulative >= target {
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Median.
    #[must_use]
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile.
    #[must_use]
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile.
    #[must_use]
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let c = Counter::new();
        assert_eq!(c.get(), 0);
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn gauge_tracks_level_and_max() {
        let g = Gauge::new();
        g.set(7);
        g.set(3);
        g.set(5);
        assert_eq!(g.get(), 5);
        assert_eq!(g.max(), 7);
    }

    #[test]
    fn bucket_index_is_monotone_and_in_range() {
        // A sorted sweep of small values plus sub-bucket boundaries from
        // every octave: indices must never decrease as values grow.
        let mut values: Vec<u64> = (0..4096u64).collect();
        for shift in 3..64u32 {
            for off in 0..9u64 {
                values.push((1u64 << shift).saturating_add(off << (shift - 3)));
            }
        }
        values.push(u64::MAX);
        values.sort_unstable();
        let mut last = 0usize;
        for v in values {
            let i = bucket_index(v);
            assert!(i < BUCKETS, "v={v} i={i}");
            assert!(i >= last, "index must not decrease: v={v} i={i} last={last}");
            last = i;
        }
        assert_eq!(bucket_index(0), 0);
    }

    #[test]
    fn bucket_upper_bounds_contain_their_values() {
        for v in (0..10_000u64).chain([1 << 20, 1 << 40, u64::MAX >> 1, u64::MAX]) {
            let i = bucket_index(v);
            assert!(bucket_upper(i) >= v, "upper({i}) must bound {v}");
            // The bound is tight: within 12.5% (exact below SUB).
            let upper = bucket_upper(i);
            assert!(upper - v <= v / 8 + 1, "v={v} upper={upper}");
        }
    }

    #[test]
    fn small_values_are_exact() {
        for v in 0..SUB {
            assert_eq!(bucket_upper(bucket_index(v)), v);
        }
    }

    #[test]
    fn quantiles_are_ordered_and_close() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 1000);
        assert_eq!(s.sum(), 500_500);
        assert_eq!(s.max(), 1000);
        let (p50, p95, p99) = (s.p50(), s.p95(), s.p99());
        assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
        // Within the 12.5% bucket error of the true quantiles.
        assert!((500..=563).contains(&p50), "p50={p50}");
        assert!((950..=1000).contains(&p95), "p95={p95}");
        assert!((990..=1000).contains(&p99), "p99={p99}");
        assert_eq!(s.mean(), 500);
    }

    #[test]
    fn record_n_matches_repeated_record() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record_n(500, 4);
        a.record_n(9, 0); // no-op
        for _ in 0..4 {
            b.record(500);
        }
        let (sa, sb) = (a.snapshot(), b.snapshot());
        assert_eq!(sa.count(), sb.count());
        assert_eq!(sa.sum(), sb.sum());
        assert_eq!(sa.max(), sb.max());
        assert_eq!(sa.p50(), sb.p50());
        assert_eq!(sa.p99(), sb.p99());
    }

    #[test]
    fn empty_histogram_is_all_zeroes() {
        let s = Histogram::new().snapshot();
        assert_eq!((s.count(), s.sum(), s.max()), (0, 0, 0));
        assert_eq!((s.p50(), s.p99(), s.mean()), (0, 0, 0));
    }

    #[test]
    fn single_value_quantiles() {
        let h = Histogram::new();
        h.record(77);
        let s = h.snapshot();
        assert_eq!(s.p50(), s.p99());
        // max() caps the reported quantile at the true extreme.
        assert_eq!(s.p99(), 77);
    }

    #[test]
    fn quantile_caps_at_observed_max() {
        let h = Histogram::new();
        h.record(1_000_000);
        assert_eq!(h.snapshot().p99(), 1_000_000, "upper bound clamped to max");
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = std::sync::Arc::new(Histogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = std::sync::Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        h.record(t * 1000 + i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 4000);
        assert_eq!(h.snapshot().count(), 4000);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn every_value_lands_in_a_bounding_bucket(v in any::<u64>()) {
                let i = bucket_index(v);
                prop_assert!(i < BUCKETS);
                prop_assert!(bucket_upper(i) >= v);
                if i > 0 {
                    prop_assert!(bucket_upper(i - 1) < v);
                }
            }

            #[test]
            fn quantile_is_monotone(values in prop::collection::vec(any::<u64>(), 1..200)) {
                let h = Histogram::new();
                for &v in &values {
                    h.record(v);
                }
                let s = h.snapshot();
                let qs: Vec<u64> =
                    [0.0, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0].iter().map(|&q| s.quantile(q)).collect();
                for w in qs.windows(2) {
                    prop_assert!(w[0] <= w[1]);
                }
                prop_assert!(s.quantile(1.0) <= s.max());
            }
        }
    }
}
