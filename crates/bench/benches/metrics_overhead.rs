//! Cost of the live-anatomy metrics layer, isolated: the per-record
//! recording calls the serving loops make when `ServerOptions::metrics`
//! is on, the per-handshake ledger ingestion, and the snapshot/render on
//! the exposition path. Recording sits on the steady-state record path,
//! so its budget is "a handful of relaxed atomic adds" — these benches
//! pin that claim to a number next to `tcp_serving`'s transaction costs.

use criterion::{criterion_group, criterion_main, Criterion};
use sslperf_core::net::ServerMetrics;
use sslperf_core::profile::Cycles;
use sslperf_core::ssl::{HandshakeLedger, Protocol, SERVER_STEP_NAMES};
use std::hint::black_box;

/// A plausibly shaped full-handshake ledger (cycle values in the range a
/// 1024-bit software handshake actually produces).
fn ledger() -> HandshakeLedger {
    HandshakeLedger {
        protocol: Protocol::Ssl3,
        resumed: false,
        steps: std::array::from_fn(|i| (SERVER_STEP_NAMES[i], Cycles::new(40_000 + i as u64))),
        total: Cycles::new(2_600_000),
        crypto: Cycles::new(2_300_000),
        kx_queue_wait: Cycles::new(90_000),
        kx_batch_wait: Cycles::new(12_000),
        kx_exec: Cycles::new(1_900_000),
        ticket_issued: false,
        ticket_accepted: false,
        ticket_rejected: false,
        ticket_expired: false,
    }
}

fn bench_record_path(c: &mut Criterion) {
    let metrics = ServerMetrics::new();
    let mut group = c.benchmark_group("metrics/record");
    group.bench_function("open+seal+response", |b| {
        b.iter(|| {
            metrics.note_record_open(black_box(1024), Cycles::new(30_000), Cycles::new(24_000));
            metrics.note_record_seal(black_box(1024), Cycles::new(31_000), Cycles::new(25_000));
            metrics.note_response(Cycles::new(4_000));
        });
    });
    group.finish();
}

fn bench_handshake_ingest(c: &mut Criterion) {
    let metrics = ServerMetrics::new();
    let full = ledger();
    let resumed = HandshakeLedger { resumed: true, ..ledger() };
    let mut group = c.benchmark_group("metrics/handshake");
    group.bench_function("full_ledger", |b| {
        b.iter(|| metrics.note_handshake(black_box(&full)));
    });
    group.bench_function("resumed_ledger", |b| {
        b.iter(|| metrics.note_handshake(black_box(&resumed)));
    });
    group.finish();
}

fn bench_snapshot_render(c: &mut Criterion) {
    let metrics = ServerMetrics::new();
    for _ in 0..1000 {
        metrics.note_handshake(&ledger());
        metrics.note_record_open(1024, Cycles::new(30_000), Cycles::new(24_000));
        metrics.note_record_seal(1024, Cycles::new(31_000), Cycles::new(25_000));
        metrics.note_response(Cycles::new(4_000));
        metrics.note_pool_job(3, Cycles::new(90_000), Cycles::new(12_000), Cycles::new(1_900_000));
        metrics.note_crypto_batch(4, Cycles::new(1_200_000));
    }
    let mut group = c.benchmark_group("metrics/exposition");
    group.bench_function("snapshot", |b| {
        b.iter(|| black_box(metrics.snapshot()));
    });
    let snapshot = metrics.snapshot();
    group.bench_function("render", |b| {
        b.iter(|| black_box(snapshot.render()));
    });
    group.finish();
}

criterion_group!(benches, bench_record_path, bench_handshake_ingest, bench_snapshot_render);
criterion_main!(benches);
