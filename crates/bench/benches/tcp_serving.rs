//! Real-socket serving workloads: full and resumed HTTPS transactions
//! against the `sslperf-net` worker-pool server, plus the handshake-only
//! connect path and a pool-vs-event-loop concurrency comparison. The
//! in-memory `table1_webserver` benches time the same anatomy without a
//! kernel socket in the loop; the delta is the serving substrate's
//! overhead.

use criterion::{criterion_group, criterion_main, Criterion};
use sslperf_core::net::{EventLoopServer, ServerOptions, TcpSslServer};
use sslperf_core::prelude::*;
use sslperf_core::ssl::ClientSession;
use sslperf_core::websim::http::{HttpRequest, HttpResponse};
use sslperf_core::websim::loadgen::{run_event_load, EventLoadOptions};
use std::hint::black_box;
use std::net::{SocketAddr, TcpStream};
use std::sync::OnceLock;
use std::time::Duration;

const FILE_SIZE: usize = 1024;

/// One shared server for every bench in this target.
fn server() -> &'static TcpSslServer {
    static SERVER: OnceLock<TcpSslServer> = OnceLock::new();
    SERVER.get_or_init(|| {
        let mut rng = SslRng::from_seed(b"bench-tcp-server");
        let key = RsaPrivateKey::generate(1024, &mut rng).expect("keygen");
        TcpSslServer::start(key, "bench.sslperf.test", &ServerOptions::default())
            .expect("server start")
    })
}

/// Connects, handshakes (resuming when a session is given), fetches one
/// document, and closes; returns the session for later resumption.
fn transaction(addr: SocketAddr, seed: u64, session: Option<&ClientSession>) -> ClientSession {
    let rng = SslRng::from_seed(format!("bench-tcp-client-{seed}").as_bytes());
    let mut client = match session {
        Some(s) => SslClient::resuming(s.clone(), rng),
        None => SslClient::new(CipherSuite::RsaDesCbc3Sha, rng),
    };
    let mut socket = TcpStream::connect(addr).expect("connect");
    socket.set_nodelay(true).expect("nodelay");
    client.handshake_transport(&mut socket).expect("handshake");
    let request = HttpRequest::get(&format!("/doc_{FILE_SIZE}.bin"));
    client.send(&mut socket, &request.to_bytes()).expect("request");
    let mut body = Vec::new();
    let response = loop {
        body.extend(client.recv(&mut socket).expect("response record"));
        if let Ok(response) = HttpResponse::parse(&body) {
            break response;
        }
    };
    assert_eq!(response.body().len(), FILE_SIZE);
    let session = client.session().expect("established");
    client.close_transport(&mut socket).expect("close");
    session
}

fn bench_full_transaction(c: &mut Criterion) {
    let addr = server().local_addr();
    let mut group = c.benchmark_group("tcp_serving/full");
    group.sample_size(10);
    group.bench_function("handshake+1KB", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(transaction(addr, seed, None));
        });
    });
    group.finish();
}

fn bench_resumed_transaction(c: &mut Criterion) {
    let addr = server().local_addr();
    let session = transaction(addr, 999_999, None);
    let mut group = c.benchmark_group("tcp_serving/resumed");
    group.sample_size(20);
    group.bench_function("resume+1KB", |b| {
        let mut seed = 1_000_000u64;
        b.iter(|| {
            seed += 1;
            black_box(transaction(addr, seed, Some(&session)));
        });
    });
    group.finish();
}

/// Steady-state bulk serving on one live connection: 64 KiB documents
/// (four records each way at most), no handshake in the loop. The two
/// variants time the legacy Vec-per-record client path against the
/// zero-copy buffered path, so the record pipeline's allocation savings
/// show up directly instead of hiding under handshake cost.
fn bench_bulk_records(c: &mut Criterion) {
    const BULK_SIZE: usize = 65536;
    let addr = server().local_addr();
    let mut group = c.benchmark_group("tcp_serving/bulk");
    group.sample_size(30);

    let connect = |seed: u64| {
        let rng = SslRng::from_seed(format!("bench-tcp-bulk-{seed}").as_bytes());
        let mut client = SslClient::new(CipherSuite::RsaDesCbc3Sha, rng);
        let mut socket = TcpStream::connect(addr).expect("connect");
        socket.set_nodelay(true).expect("nodelay");
        client.handshake_transport(&mut socket).expect("handshake");
        (client, socket)
    };
    let request = HttpRequest::get(&format!("/doc_{BULK_SIZE}.bin")).to_bytes();

    group.bench_function("64KB legacy Vec API", |b| {
        let (mut client, mut socket) = connect(1);
        let mut body = Vec::new();
        b.iter(|| {
            client.send(&mut socket, &request).expect("request");
            body.clear();
            loop {
                body.extend(client.recv(&mut socket).expect("response record"));
                if let Ok(response) = HttpResponse::parse(&body) {
                    assert_eq!(response.body().len(), BULK_SIZE);
                    break;
                }
            }
            black_box(body.len());
        });
        client.close_transport(&mut socket).expect("close");
    });

    group.bench_function("64KB buffered zero-copy", |b| {
        let (mut client, mut socket) = connect(2);
        let mut tx_buf = sslperf_core::ssl::RecordBuffer::with_record_capacity();
        let mut rx_buf = sslperf_core::ssl::RecordBuffer::with_record_capacity();
        let mut body = Vec::new();
        b.iter(|| {
            client.send_buffered(&mut socket, &request, &mut tx_buf).expect("request");
            body.clear();
            loop {
                let range =
                    client.recv_buffered(&mut socket, &mut rx_buf).expect("response record");
                body.extend_from_slice(&rx_buf.as_slice()[range]);
                if let Ok(response) = HttpResponse::parse(&body) {
                    assert_eq!(response.body().len(), BULK_SIZE);
                    break;
                }
            }
            black_box(body.len());
        });
        client.close_transport(&mut socket).expect("close");
    });

    group.finish();
}

/// Pool vs event loop under rising concurrency: the same batch of
/// concurrent full-handshake transactions (driven by the single-threaded
/// event load generator) against both serving modes, with the connection
/// count at 1×, 8×, and 64× the server's thread count. The pool
/// serializes everything beyond its worker count, so its batch time grows
/// with connections while the event loop's shards keep every socket in
/// flight — the architectural gap the sans-io engine buys.
fn bench_concurrency(c: &mut Criterion) {
    const THREADS: usize = 2;
    // A 512-bit key keeps the 128-handshake batches affordable; both
    // modes pay the identical per-handshake cost, so the comparison holds.
    let mut rng = SslRng::from_seed(b"bench-tcp-concurrency");
    let key = RsaPrivateKey::generate(512, &mut rng).expect("keygen");
    let options = ServerOptions { workers: THREADS, shards: THREADS, ..ServerOptions::default() };
    let pool =
        TcpSslServer::start(key.clone(), "bench.sslperf.test", &options).expect("pool start");
    let event_loop =
        EventLoopServer::start(key, "bench.sslperf.test", &options).expect("event-loop start");

    let mut group = c.benchmark_group("tcp_serving/concurrency");
    group.sample_size(10);
    for multiplier in [1usize, 8, 64] {
        let connections = THREADS * multiplier;
        for (mode, addr) in [("pool", pool.local_addr()), ("event_loop", event_loop.local_addr())] {
            let load = EventLoadOptions {
                connections,
                file_size: FILE_SIZE,
                protocol: Protocol::Ssl3,
                suite: CipherSuite::RsaDesCbc3Sha,
                // The pool can only establish `workers` connections at a
                // time, so the all-at-once barrier would deadlock it; let
                // both modes serve the batch at their natural concurrency.
                hold_until_all_established: false,
                deadline: Duration::from_secs(120),
            };
            group.bench_function(format!("{mode}/{connections}conn"), |b| {
                b.iter(|| {
                    let report = run_event_load(addr, &load).expect("event load");
                    assert_eq!(report.transactions, connections);
                    black_box(report.transactions);
                });
            });
        }
    }
    group.finish();
    pool.shutdown();
    event_loop.shutdown();
}

/// Crypto-offload ablation at 64× concurrency: the same 128-connection
/// full-handshake batch against the worker-pool server (inline RSA), the
/// event-loop server decrypting inline on its shards, and the event-loop
/// server handing decryptions to 1, 2, and 4 crypto workers. Inline, a
/// shard serialises every queued handshake behind the ~90% RSA step;
/// offloaded, the shard keeps sweeping while workers decrypt, so tail
/// handshake latency (p99) drops as workers are added. Each arm's
/// measured percentiles and throughput go to stderr — those are the
/// numbers recorded in EXPERIMENTS.md.
fn bench_crypto_offload(c: &mut Criterion) {
    const THREADS: usize = 2;
    const CONNECTIONS: usize = THREADS * 64;
    let mut rng = SslRng::from_seed(b"bench-tcp-offload");
    let key = RsaPrivateKey::generate(512, &mut rng).expect("keygen");
    let load = EventLoadOptions {
        connections: CONNECTIONS,
        file_size: FILE_SIZE,
        protocol: Protocol::Ssl3,
        suite: CipherSuite::RsaDesCbc3Sha,
        // Keep the pool arm runnable with THREADS workers (see
        // bench_concurrency); every arm still opens all sockets at once.
        hold_until_all_established: false,
        deadline: Duration::from_secs(120),
    };

    let mut group = c.benchmark_group("tcp_serving/crypto_offload");
    group.sample_size(10);
    // (label, event loop?, crypto workers)
    let arms: [(&str, bool, usize); 5] = [
        ("pool_inline", false, 0),
        ("event_loop_inline", true, 0),
        ("event_loop_1w", true, 1),
        ("event_loop_2w", true, 2),
        ("event_loop_4w", true, 4),
    ];
    for (label, event_loop, crypto_workers) in arms {
        let options = ServerOptions {
            workers: THREADS,
            shards: THREADS,
            crypto_workers,
            ..ServerOptions::default()
        };
        let (addr, _pool_server, el_server);
        if event_loop {
            let server = EventLoopServer::start(key.clone(), "bench.sslperf.test", &options)
                .expect("event-loop start");
            addr = server.local_addr();
            el_server = Some(server);
            _pool_server = None;
        } else {
            let server = TcpSslServer::start(key.clone(), "bench.sslperf.test", &options)
                .expect("pool start");
            addr = server.local_addr();
            _pool_server = Some(server);
            el_server = None;
        }

        // One measured run per arm: its percentiles are the ablation table.
        let report = run_event_load(addr, &load).expect("event load");
        let hs = &report.handshake_latency;
        eprintln!(
            "crypto_offload/{label}/{CONNECTIONS}conn: {:.1} tx/s, handshake p50 {:.2}ms p95 {:.2}ms p99 {:.2}ms{}",
            report.transactions_per_second(),
            hs.p50.as_secs_f64() * 1e3,
            hs.p95.as_secs_f64() * 1e3,
            hs.p99.as_secs_f64() * 1e3,
            el_server
                .as_ref()
                .map(|s| format!(
                    ", {} jobs, queue depth max {}",
                    s.stats().crypto_jobs(),
                    s.stats().crypto_queue_depth_max()
                ))
                .unwrap_or_default(),
        );

        group.bench_function(format!("{label}/{CONNECTIONS}conn"), |b| {
            b.iter(|| {
                let report = run_event_load(addr, &load).expect("event load");
                assert_eq!(report.transactions, CONNECTIONS);
                black_box(report.handshake_latency.p99);
            });
        });
        if let Some(server) = el_server {
            server.shutdown();
        }
        if let Some(server) = _pool_server {
            server.shutdown();
        }
    }
    group.finish();
}

/// Batched-RSA ablation: the event-loop server with 2 crypto workers
/// under a saturating all-at-once handshake burst, with the pool's batch
/// collector capped at 1, 2, 4, and 8 jobs per batch. One shard keeps
/// submission concentrated so the crypto queue actually backs up — the
/// regime where the collector finds siblings to combine. Each arm's
/// throughput, handshake percentiles, and amortized cycles per RSA
/// decrypt (total pool execution cycles over jobs executed) go to stderr;
/// those are the numbers recorded in EXPERIMENTS.md and `BENCH_6.json`.
fn bench_batch_rsa(c: &mut Criterion) {
    const CONNECTIONS: usize = 64;
    let mut rng = SslRng::from_seed(b"bench-tcp-batch");
    let key = RsaPrivateKey::generate(512, &mut rng).expect("keygen");
    let load = EventLoadOptions {
        connections: CONNECTIONS,
        file_size: FILE_SIZE,
        protocol: Protocol::Ssl3,
        suite: CipherSuite::RsaDesCbc3Sha,
        // The barrier opens every socket before any transacts: all 64
        // ClientKeyExchanges land together and the crypto queue saturates.
        hold_until_all_established: true,
        deadline: Duration::from_secs(120),
    };

    let mut group = c.benchmark_group("tcp_serving/batch_rsa");
    group.sample_size(10);
    for batch_max in [1usize, 2, 4, 8] {
        let options = ServerOptions::builder()
            .shards(1)
            .crypto_workers(2)
            .batch_max(batch_max)
            .build()
            .expect("valid batch configuration");
        let server = EventLoopServer::start(key.clone(), "bench.sslperf.test", &options)
            .expect("event-loop start");
        let addr = server.local_addr();

        // One measured run per arm: its percentiles and the pool's cycle
        // accounting are the ablation table.
        let report = run_event_load(addr, &load).expect("event load");
        let stats = server.stats();
        let jobs = stats.crypto_jobs().max(1);
        let hs = &report.handshake_latency;
        eprintln!(
            "batch_rsa/b{batch_max}/{CONNECTIONS}conn: {:.1} tx/s, handshake p50 {:.2}ms p95 {:.2}ms p99 {:.2}ms, \
             {} jobs in {} batches ({} batched), {} kc/decrypt amortized",
            report.transactions_per_second(),
            hs.p50.as_secs_f64() * 1e3,
            hs.p95.as_secs_f64() * 1e3,
            hs.p99.as_secs_f64() * 1e3,
            stats.crypto_jobs(),
            stats.crypto_batches(),
            stats.crypto_batched_jobs(),
            stats.crypto_exec().get() / jobs / 1000,
        );

        group.bench_function(format!("b{batch_max}/{CONNECTIONS}conn"), |b| {
            b.iter(|| {
                let report = run_event_load(addr, &load).expect("event load");
                assert_eq!(report.transactions, CONNECTIONS);
                black_box(report.handshake_latency.p99);
            });
        });
        server.shutdown();
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_full_transaction,
    bench_resumed_transaction,
    bench_bulk_records,
    bench_concurrency,
    bench_crypto_offload,
    bench_batch_rsa
);
criterion_main!(benches);
