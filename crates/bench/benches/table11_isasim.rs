//! Tables 9/11/12 workloads: the ISA-simulator kernels themselves. The
//! interesting *outputs* (mix, path length, CPI) come from
//! `examples/paper_report.rs`; these benches time the simulation machinery
//! so regressions in the simulator are visible.

use criterion::{criterion_group, criterion_main, Criterion};
use sslperf_core::isasim::kernels;
use std::hint::black_box;

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("table11/isasim_kernels");
    group.sample_size(20);
    group.bench_function("aes_block", |b| {
        b.iter(|| black_box(kernels::aes::simulate_block(&[1; 16], &[2; 16])));
    });
    group.bench_function("des_block", |b| {
        b.iter(|| black_box(kernels::des::simulate_des_block(&[1; 8], &[2; 8])));
    });
    group.bench_function("des3_block", |b| {
        b.iter(|| black_box(kernels::des::simulate_des3_block(&[1; 24], &[2; 8])));
    });
    group.bench_function("rc4_256_bytes", |b| {
        b.iter(|| black_box(kernels::rc4::simulate(b"benchkey", 256)));
    });
    group.bench_function("md5_block", |b| {
        b.iter(|| black_box(kernels::md5::simulate_block([0; 4], &[0x5a; 64])));
    });
    group.bench_function("sha1_block", |b| {
        b.iter(|| black_box(kernels::sha1::simulate_block([0; 5], &[0x5a; 64])));
    });
    group.bench_function("bn_mul_add_32w", |b| {
        let a: Vec<u32> = (0..32).collect();
        let r: Vec<u32> = (100..132).collect();
        b.iter(|| black_box(kernels::bn::simulate_mul_add(&r, &a, 0x1234_5677)));
    });
    group.finish();
}

fn bench_program_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("table11/isasim_emit");
    group.bench_function("emit_md5_program", |b| {
        b.iter(|| black_box(kernels::md5::program()));
    });
    group.bench_function("emit_aes_program", |b| {
        b.iter(|| black_box(kernels::aes::program()));
    });
    group.bench_function("emit_table9_body", |b| {
        b.iter(|| black_box(kernels::bn::table9_body()));
    });
    group.finish();
}

criterion_group!(benches, bench_kernels, bench_program_construction);
criterion_main!(benches);
