//! Figure 3 / Tables 4–6 workloads: key setups, block-operation phases and
//! bulk encryption for each symmetric algorithm.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sslperf_core::prelude::*;
use std::hint::black_box;

/// Figure 3's numerator: the key-setup phase of each algorithm.
fn bench_key_setup(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3/key_setup");
    group.bench_function("AES-128", |b| {
        b.iter(|| black_box(Aes::new(black_box(&[7u8; 16])).expect("key")));
    });
    group.bench_function("AES-256", |b| {
        b.iter(|| black_box(Aes::new(black_box(&[7u8; 32])).expect("key")));
    });
    group.bench_function("DES", |b| {
        b.iter(|| black_box(Des::new(black_box(&[7u8; 8])).expect("key")));
    });
    group.bench_function("3DES", |b| {
        b.iter(|| black_box(Des3::new(black_box(&[7u8; 24])).expect("key")));
    });
    group.bench_function("RC4", |b| {
        b.iter(|| black_box(Rc4::new(black_box(&[7u8; 16])).expect("key")));
    });
    group.finish();
}

/// Table 5's parts: the three phases of the AES block operation.
fn bench_aes_phases(c: &mut Criterion) {
    let aes128 = Aes::new(&[1u8; 16]).expect("key");
    let aes256 = Aes::new(&[1u8; 32]).expect("key");
    let block = [0x42u8; 16];
    let mut group = c.benchmark_group("table5/aes_phases");
    for (label, aes) in [("128", &aes128), ("256", &aes256)] {
        let state = aes.add_initial_round_key(&block);
        let after = aes.main_rounds(state);
        group.bench_function(format!("initial_round_key_{label}"), |b| {
            b.iter(|| black_box(aes.add_initial_round_key(black_box(&block))));
        });
        group.bench_function(format!("main_rounds_{label}"), |b| {
            b.iter(|| black_box(aes.main_rounds(black_box(state))));
        });
        group.bench_function(format!("final_round_{label}"), |b| {
            let mut out = [0u8; 16];
            b.iter(|| {
                aes.final_round(black_box(after), &mut out);
                black_box(&out);
            });
        });
    }
    group.finish();
}

/// Table 6's parts: IP, substitution rounds and FP for DES and 3DES.
fn bench_des_phases(c: &mut Criterion) {
    let des = Des::new(&[2u8; 8]).expect("key");
    let des3 = Des3::new(&[2u8; 24]).expect("key");
    let block = *b"DESbench";
    let (l, r) = Des::initial_permutation(&block);
    let mut group = c.benchmark_group("table6/des_phases");
    group.bench_function("initial_permutation", |b| {
        b.iter(|| black_box(Des::initial_permutation(black_box(&block))));
    });
    group.bench_function("substitution_des", |b| {
        b.iter(|| black_box(des.substitution_rounds(black_box(l), black_box(r), false)));
    });
    group.bench_function("substitution_3des", |b| {
        b.iter(|| black_box(des3.substitution_rounds(black_box(l), black_box(r), false)));
    });
    group.bench_function("final_permutation", |b| {
        let mut out = [0u8; 8];
        b.iter(|| {
            Des::final_permutation(black_box(l), black_box(r), &mut out);
            black_box(&out);
        });
    });
    group.finish();
}

/// Table 11's symmetric throughput column: bulk encryption by size.
fn bench_bulk(c: &mut Criterion) {
    let mut group = c.benchmark_group("table11/bulk_encrypt");
    for size in [1024usize, 8192, 65_536] {
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("AES-128", size), &size, |b, &size| {
            let aes = Aes::new(&[3u8; 16]).expect("key");
            let mut buf = vec![0u8; size];
            b.iter(|| {
                for chunk in buf.chunks_exact_mut(16) {
                    aes.encrypt_block(chunk);
                }
                black_box(&buf);
            });
        });
        group.bench_with_input(BenchmarkId::new("DES", size), &size, |b, &size| {
            let des = Des::new(&[3u8; 8]).expect("key");
            let mut buf = vec![0u8; size];
            b.iter(|| {
                for chunk in buf.chunks_exact_mut(8) {
                    des.encrypt_block(chunk);
                }
                black_box(&buf);
            });
        });
        group.bench_with_input(BenchmarkId::new("3DES", size), &size, |b, &size| {
            let des3 = Des3::new(&[3u8; 24]).expect("key");
            let mut buf = vec![0u8; size];
            b.iter(|| {
                for chunk in buf.chunks_exact_mut(8) {
                    des3.encrypt_block(chunk);
                }
                black_box(&buf);
            });
        });
        group.bench_with_input(BenchmarkId::new("RC4", size), &size, |b, &size| {
            let mut rc4 = Rc4::new(&[3u8; 16]).expect("key");
            let mut buf = vec![0u8; size];
            b.iter(|| {
                rc4.process(&mut buf);
                black_box(&buf);
            });
        });
    }
    group.finish();
}

/// CBC mode on top of the block ciphers (the record layer's configuration).
fn bench_cbc(c: &mut Criterion) {
    let mut group = c.benchmark_group("table11/cbc_encrypt_16k");
    group.throughput(Throughput::Bytes(16_384));
    group.bench_function("AES-128-CBC", |b| {
        let mut cbc = Cbc::new(Aes::new(&[4u8; 16]).expect("key"), vec![0u8; 16]).expect("iv");
        let mut buf = vec![0u8; 16_384];
        b.iter(|| {
            cbc.encrypt(&mut buf).expect("aligned");
            black_box(&buf);
        });
    });
    group.bench_function("3DES-CBC", |b| {
        let mut cbc = Cbc::new(Des3::new(&[4u8; 24]).expect("key"), vec![0u8; 8]).expect("iv");
        let mut buf = vec![0u8; 16_384];
        b.iter(|| {
            cbc.encrypt(&mut buf).expect("aligned");
            black_box(&buf);
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_key_setup,
    bench_aes_phases,
    bench_des_phases,
    bench_bulk,
    bench_cbc
);
criterion_main!(benches);
