//! Table 1 / Figure 2 workloads: full HTTPS transactions at the paper's
//! request file sizes, plus the resumed-session variant.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sslperf_bench::{handshake, server_config};
use sslperf_core::prelude::*;
use std::hint::black_box;

fn bench_transactions(c: &mut Criterion) {
    let config = server_config();
    let server = SecureWebServer::new(config, CipherSuite::RsaDesCbc3Sha);
    let mut group = c.benchmark_group("table1_fig2/transaction");
    group.sample_size(10);
    for size in [1024usize, 2048, 4096, 8192, 16_384, 32_768] {
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size / 1024), &size, |b, &size| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                config.clear_session_cache();
                black_box(server.run_with_session(size, seed, None).expect("transaction"));
            });
        });
    }
    group.finish();
}

fn bench_resumed_transaction(c: &mut Criterion) {
    let config = server_config();
    let server = SecureWebServer::new(config, CipherSuite::RsaDesCbc3Sha);
    config.clear_session_cache();
    let (client, _) = handshake(config, CipherSuite::RsaDesCbc3Sha, 99);
    let session = client.session().expect("established");
    let mut group = c.benchmark_group("table1_fig2/transaction_resumed");
    group.sample_size(20);
    group.bench_function("1k", |b| {
        let mut seed = 1000u64;
        b.iter(|| {
            seed += 1;
            let report =
                server.run_with_session(1024, seed, Some(session.clone())).expect("transaction");
            assert!(report.resumed);
            black_box(report);
        });
    });
    group.finish();
}

criterion_group!(benches, bench_transactions, bench_resumed_transaction);
criterion_main!(benches);
