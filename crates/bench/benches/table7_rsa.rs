//! Table 7/8 workloads: RSA decryption across key sizes and its pipeline
//! steps.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sslperf_bench::key;
use sslperf_core::bignum::Bn;
use sslperf_core::prelude::*;
use std::hint::black_box;

fn ciphertext_for(key: &RsaPrivateKey, seed: &str) -> Vec<u8> {
    let mut rng = SslRng::from_seed(seed.as_bytes());
    key.public_key().encrypt_pkcs1(b"bench pre-master secret payload", &mut rng).expect("fits")
}

/// Table 7: decryption latency by key size.
fn bench_decrypt_by_key_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("table7/decrypt");
    group.sample_size(30);
    for bits in [512usize, 1024, 2048] {
        let key = key(bits);
        let cipher = ciphertext_for(key, &format!("ct-{bits}"));
        group.bench_with_input(BenchmarkId::from_parameter(bits), &cipher, |b, cipher| {
            b.iter(|| black_box(key.decrypt_pkcs1(black_box(cipher)).expect("decrypts")));
        });
    }
    group.finish();
}

/// Table 7's individual steps: conversions and parsing vs computation.
fn bench_pipeline_steps(c: &mut Criterion) {
    let key = key(1024);
    let cipher = ciphertext_for(key, "steps");
    let k = key.modulus_bytes();
    let mut group = c.benchmark_group("table7/steps");
    group.bench_function("data_to_bn", |b| {
        b.iter(|| black_box(Bn::from_bytes_be(black_box(&cipher))));
    });
    group.bench_function("computation_crt", |b| {
        let c_bn = Bn::from_bytes_be(&cipher);
        b.iter(|| black_box(key.raw_decrypt(black_box(&c_bn)).expect("in range")));
    });
    group.bench_function("bn_to_data", |b| {
        let m = key.raw_decrypt(&Bn::from_bytes_be(&cipher)).expect("in range");
        b.iter(|| black_box(m.to_bytes_be_padded(k)));
    });
    group.finish();
}

/// Table 8's leaf kernels, timed directly.
fn bench_word_kernels(c: &mut Criterion) {
    use sslperf_core::bignum::words::{bn_add_words, bn_mul_add_words, bn_sub_words};
    let a: Vec<u32> = (0..32u32).map(|i| i.wrapping_mul(0x9e37_79b9)).collect();
    let bvec: Vec<u32> = (0..32u32).map(|i| i.wrapping_mul(0x85eb_ca6b)).collect();
    let mut group = c.benchmark_group("table8/word_kernels_32w");
    group.bench_function("bn_mul_add_words", |b| {
        let mut r = vec![0u32; 32];
        b.iter(|| black_box(bn_mul_add_words(&mut r, black_box(&a), 0x1234_5677)));
    });
    group.bench_function("bn_add_words", |b| {
        let mut r = vec![0u32; 32];
        b.iter(|| black_box(bn_add_words(&mut r, black_box(&a), black_box(&bvec))));
    });
    group.bench_function("bn_sub_words", |b| {
        let mut r = vec![0u32; 32];
        b.iter(|| black_box(bn_sub_words(&mut r, black_box(&bvec), black_box(&a))));
    });
    group.finish();
}

criterion_group!(benches, bench_decrypt_by_key_size, bench_pipeline_steps, bench_word_kernels);
criterion_main!(benches);
