//! Design-choice ablations (DESIGN.md §6): each bench pair quantifies one
//! decision the paper motivates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sslperf_bench::{handshake, key, server_config};
use sslperf_core::bignum::{Bn, MontCtx};
use sslperf_core::prelude::*;
use sslperf_core::ssl::mac as ssl3_mac;
use std::hint::black_box;

/// §4.1: session re-negotiation avoids the RSA private operation.
fn ablate_resume(c: &mut Criterion) {
    let config = server_config();
    let mut group = c.benchmark_group("ablate_resume");
    group.sample_size(20);
    group.bench_function("full_handshake", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            config.clear_session_cache();
            black_box(handshake(config, CipherSuite::RsaDesCbc3Sha, seed));
        });
    });
    group.bench_function("resumed_handshake", |b| {
        config.clear_session_cache();
        let (client, _) = handshake(config, CipherSuite::RsaDesCbc3Sha, 31337);
        let session = client.session().expect("established");
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut client = SslClient::resuming(
                session.clone(),
                SslRng::from_seed(format!("ar-{seed}").as_bytes()),
            );
            let mut server =
                SslServer::new(config, SslRng::from_seed(format!("as-{seed}").as_bytes()));
            let f1 = client.hello().expect("hello");
            let f2 = server.process_client_hello(&f1).expect("flight");
            let f3 = client.process_server_flight(&f2).expect("flight");
            let _ = server.process_client_flight(&f3).expect("done");
            black_box((client, server));
        });
    });
    group.finish();
}

/// Table 7's trend: decrypt cost grows superlinearly with key size.
fn ablate_key_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablate_key_size");
    group.sample_size(20);
    for bits in [512usize, 1024, 2048] {
        let key = key(bits);
        let mut rng = SslRng::from_seed(format!("aks-{bits}").as_bytes());
        let cipher = key.public_key().encrypt_pkcs1(b"msg", &mut rng).expect("fits");
        group.bench_with_input(BenchmarkId::from_parameter(bits), &cipher, |b, cipher| {
            b.iter(|| black_box(key.decrypt_pkcs1(black_box(cipher)).expect("decrypts")));
        });
    }
    group.finish();
}

/// CRT vs plain exponentiation (the ~4× CRT win OpenSSL relies on).
fn ablate_crt(c: &mut Criterion) {
    let key = key(1024);
    let c_bn = Bn::from_u64(0x1234_5678_9abc_def1);
    let mut group = c.benchmark_group("ablate_crt");
    group.sample_size(20);
    group.bench_function("crt", |b| {
        b.iter(|| black_box(key.raw_decrypt(black_box(&c_bn)).expect("in range")));
    });
    group.bench_function("no_crt", |b| {
        b.iter(|| black_box(key.raw_decrypt_no_crt(black_box(&c_bn)).expect("in range")));
    });
    group.finish();
}

/// Montgomery window width 1–6 (why `BN_mod_exp_mont` uses a window).
fn ablate_window(c: &mut Criterion) {
    let n = key(1024).modulus().clone();
    let ctx = MontCtx::new(&n).expect("odd modulus");
    let base = Bn::from_u64(0xdead_beef_cafe_babe);
    let exp = key(1024).exponent().clone();
    let mut group = c.benchmark_group("ablate_window");
    group.sample_size(10);
    for window in 1u32..=6 {
        group.bench_with_input(BenchmarkId::from_parameter(window), &window, |b, &w| {
            b.iter(|| black_box(ctx.mod_exp_window(black_box(&base), &exp, w)));
        });
    }
    group.bench_function("square_and_multiply_no_mont", |b| {
        b.iter(|| black_box(base.mod_exp_simple(black_box(&exp), &n)));
    });
    group.finish();
}

/// §6.2(2): fused Te-table rounds vs textbook per-byte rounds — the
/// software version of the paper's table-lookup hardware unit.
fn ablate_fused_round(c: &mut Criterion) {
    let aes = Aes::new(&[9u8; 16]).expect("key");
    let mut group = c.benchmark_group("ablate_fused_round");
    group.throughput(Throughput::Bytes(16));
    group.bench_function("fused_tables", |b| {
        let mut block = [0x5au8; 16];
        b.iter(|| {
            aes.encrypt_block(&mut block);
            black_box(&block);
        });
    });
    group.bench_function("textbook", |b| {
        let mut block = [0x5au8; 16];
        b.iter(|| {
            aes.encrypt_block_textbook(&mut block);
            black_box(&block);
        });
    });
    group.finish();
}

/// §6.2(3): the crypto-engine argument — MAC and encryption of a record
/// serially vs overlapped on two threads.
fn ablate_crypto_engine(c: &mut Criterion) {
    let data = vec![0x42u8; 16_384];
    let secret = [0x2fu8; 20];
    let mut group = c.benchmark_group("ablate_crypto_engine");
    group.throughput(Throughput::Bytes(16_384));
    group.sample_size(20);
    group.bench_function("serial_mac_then_encrypt", |b| {
        let mut cbc = Cbc::new(Aes::new(&[8u8; 16]).expect("key"), vec![0u8; 16]).expect("iv");
        b.iter(|| {
            let tag = ssl3_mac::compute(HashAlg::Sha1, &secret, 1, 23, &data);
            let mut buf = data.clone();
            buf.extend_from_slice(&tag);
            buf.resize(buf.len().div_ceil(16) * 16, 0);
            cbc.encrypt(&mut buf).expect("aligned");
            black_box(buf);
        });
    });
    group.bench_function("parallel_mac_and_encrypt", |b| {
        let mut cbc = Cbc::new(Aes::new(&[8u8; 16]).expect("key"), vec![0u8; 16]).expect("iv");
        b.iter(|| {
            // The engine overlaps MAC with the encryption of the data part,
            // then encrypts the trailing MAC+padding (paper Figure 6).
            let (tag, encrypted_data) = std::thread::scope(|s| {
                let mac_task = s.spawn(|| ssl3_mac::compute(HashAlg::Sha1, &secret, 1, 23, &data));
                let mut buf = data.clone();
                cbc.encrypt(&mut buf).expect("aligned");
                (mac_task.join().expect("mac thread"), buf)
            });
            let mut tail = tag.to_vec();
            tail.resize(tail.len().div_ceil(16) * 16, 0);
            cbc.encrypt(&mut tail).expect("aligned");
            let mut buf = encrypted_data;
            buf.extend_from_slice(&tail);
            black_box(buf);
        });
    });
    group.finish();
}

/// §6.2(1): three-operand logical instructions — static instruction-count
/// savings on the hash kernels, reported once as bench "throughput".
fn ablate_three_operand(c: &mut Criterion) {
    use sslperf_core::isasim::kernels;
    let md5 = kernels::md5::program();
    let sha1 = kernels::sha1::program();
    println!(
        "ablate_three_operand: md5 block {} instrs, {} fusable mov+alu pairs ({:.1}% savings)",
        md5.len(),
        md5.fusable_mov_alu_pairs(),
        md5.fusable_mov_alu_pairs() as f64 * 100.0 / md5.len() as f64
    );
    println!(
        "ablate_three_operand: sha1 block {} instrs, {} fusable mov+alu pairs ({:.1}% savings)",
        sha1.len(),
        sha1.fusable_mov_alu_pairs(),
        sha1.fusable_mov_alu_pairs() as f64 * 100.0 / sha1.len() as f64
    );
    let mut group = c.benchmark_group("ablate_three_operand");
    group.bench_function("analyze_md5", |b| {
        b.iter(|| black_box(kernels::md5::program().fusable_mov_alu_pairs()));
    });
    group.finish();
}

criterion_group!(
    benches,
    ablate_resume,
    ablate_key_size,
    ablate_crt,
    ablate_window,
    ablate_fused_round,
    ablate_crypto_engine,
    ablate_three_operand
);
criterion_main!(benches);
