//! Table 10 workloads: the hash phases and the MAC constructions built on
//! them.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sslperf_core::prelude::*;
use sslperf_core::ssl::mac as ssl3_mac;
use std::hint::black_box;

/// Table 10: Init / Update / Final at the paper's 1024-byte input.
fn bench_phases(c: &mut Criterion) {
    let data = vec![0x6bu8; 1024];
    let mut group = c.benchmark_group("table10/phases_1k");
    group.bench_function("md5_init", |b| b.iter(|| black_box(Md5::new())));
    group.bench_function("md5_update", |b| {
        b.iter(|| {
            let mut h = Md5::new();
            h.update(black_box(&data));
            black_box(h)
        });
    });
    group.bench_function("md5_full", |b| b.iter(|| black_box(Md5::digest(black_box(&data)))));
    group.bench_function("sha1_init", |b| b.iter(|| black_box(Sha1::new())));
    group.bench_function("sha1_update", |b| {
        b.iter(|| {
            let mut h = Sha1::new();
            h.update(black_box(&data));
            black_box(h)
        });
    });
    group.bench_function("sha1_full", |b| b.iter(|| black_box(Sha1::digest(black_box(&data)))));
    group.finish();
}

/// Table 11's hash throughput column.
fn bench_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("table11/hash_throughput");
    for size in [1024usize, 16_384, 65_536] {
        let data = vec![0x11u8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("MD5", size), &data, |b, data| {
            b.iter(|| black_box(Md5::digest(black_box(data))));
        });
        group.bench_with_input(BenchmarkId::new("SHA-1", size), &data, |b, data| {
            b.iter(|| black_box(Sha1::digest(black_box(data))));
        });
    }
    group.finish();
}

/// The record-layer MACs: SSLv3's concatenation MAC vs HMAC.
fn bench_macs(c: &mut Criterion) {
    let data = vec![0x77u8; 1024];
    let secret = [0x2fu8; 20];
    let mut group = c.benchmark_group("table10/macs_1k");
    group.throughput(Throughput::Bytes(1024));
    group.bench_function("ssl3_mac_sha1", |b| {
        b.iter(|| black_box(ssl3_mac::compute(HashAlg::Sha1, &secret, 1, 23, black_box(&data))));
    });
    group.bench_function("ssl3_mac_md5", |b| {
        b.iter(|| black_box(ssl3_mac::compute(HashAlg::Md5, &secret, 1, 23, black_box(&data))));
    });
    group.bench_function("hmac_sha1", |b| {
        b.iter(|| black_box(Hmac::mac(HashAlg::Sha1, &secret, black_box(&data))));
    });
    group.finish();
}

/// The SSLv3 key-derivation cascade (handshake steps 5–6).
fn bench_kdf(c: &mut Criterion) {
    use sslperf_core::ssl::kdf;
    let mut group = c.benchmark_group("table2/kdf");
    group.bench_function("master_secret", |b| {
        b.iter(|| black_box(kdf::master_secret(black_box(&[1u8; 48]), &[2u8; 32], &[3u8; 32])));
    });
    group.bench_function("key_block_104", |b| {
        b.iter(|| black_box(kdf::key_block(black_box(&[1u8; 48]), &[2u8; 32], &[3u8; 32], 104)));
    });
    // The successor construction, for comparison: TLS 1.0's HMAC-based PRF
    // over the same 104-byte key block.
    group.bench_function("tls1_prf_104", |b| {
        b.iter(|| {
            black_box(kdf::tls1_prf(black_box(&[1u8; 48]), b"key expansion", &[2u8; 64], 104))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_phases, bench_throughput, bench_macs, bench_kdf);
criterion_main!(benches);
