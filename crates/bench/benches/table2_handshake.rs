//! Table 2/3 workloads: the full server-side handshake, its RSA-dominated
//! step 5 in isolation, and the abbreviated (resumed) handshake.

use criterion::{criterion_group, criterion_main, Criterion};
use sslperf_bench::{handshake, key, server_config};
use sslperf_core::prelude::*;
use std::hint::black_box;

fn bench_full_handshake(c: &mut Criterion) {
    let config = server_config();
    let mut group = c.benchmark_group("table2/handshake");
    group.sample_size(20);
    for suite in [CipherSuite::RsaDesCbc3Sha, CipherSuite::RsaRc4Md5, CipherSuite::RsaAes128Sha] {
        group.bench_function(suite.name(), |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                config.clear_session_cache();
                black_box(handshake(config, suite, seed));
            });
        });
    }
    group.finish();
}

fn bench_resumed_handshake(c: &mut Criterion) {
    let config = server_config();
    config.clear_session_cache();
    let (client, _) = handshake(config, CipherSuite::RsaDesCbc3Sha, 7777);
    let session = client.session().expect("established");
    let mut group = c.benchmark_group("table2/handshake_resumed");
    group.sample_size(30);
    group.bench_function("DES-CBC3-SHA", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut client = SslClient::resuming(
                session.clone(),
                SslRng::from_seed(format!("resume-{seed}").as_bytes()),
            );
            let mut server =
                SslServer::new(config, SslRng::from_seed(format!("rsrv-{seed}").as_bytes()));
            let f1 = client.hello().expect("hello");
            let f2 = server.process_client_hello(&f1).expect("flight 2");
            let f3 = client.process_server_flight(&f2).expect("flight 3");
            let _ = server.process_client_flight(&f3).expect("done");
            assert!(server.resumed());
            black_box((client, server));
        });
    });
    group.finish();
}

/// Step 5 in isolation: the RSA pre-master decryption the paper charges
/// 18563 of 18941 kcycles.
fn bench_premaster_decrypt(c: &mut Criterion) {
    let key = key(1024);
    let mut rng = SslRng::from_seed(b"premaster");
    let mut pre_master = vec![3u8, 0];
    pre_master.extend(rng.bytes(46));
    let cipher = key.public_key().encrypt_pkcs1(&pre_master, &mut rng).expect("fits");
    let mut group = c.benchmark_group("table2/step5");
    group.sample_size(30);
    group.bench_function("rsa_private_decryption_1024", |b| {
        b.iter(|| black_box(key.decrypt_pkcs1(black_box(&cipher)).expect("decrypts")));
    });
    group.finish();
}

criterion_group!(benches, bench_full_handshake, bench_resumed_handshake, bench_premaster_decrypt);
criterion_main!(benches);
