//! Shared fixtures for the benchmark harness.
//!
//! Each bench target in `benches/` regenerates the workload behind one (or
//! a group) of the paper's tables/figures:
//!
//! | Bench target | Paper artifact |
//! |---|---|
//! | `table1_webserver` | Table 1, Figure 2 (HTTPS transactions by file size) |
//! | `table2_handshake` | Tables 2–3 (full and resumed handshakes) |
//! | `table5_ciphers` | Figure 3, Tables 4–6 (key setup, block phases, bulk) |
//! | `table7_rsa` | Tables 7–8 (RSA decryption, key sizes, CRT, blinding) |
//! | `table10_hashes` | Table 10 (MD5/SHA-1 phases, MACs) |
//! | `table11_isasim` | Tables 9, 11, 12 (ISA simulation kernels) |
//! | `ablations` | DESIGN.md §6 design-choice ablations |
//! | `tcp_serving` | §3–4 loaded server over real sockets (`sslperf-net`) |
//!
//! The printed *tables* themselves come from
//! `cargo run --release --example paper_report`; these benches provide the
//! Criterion timing series over the same workloads.

#![forbid(unsafe_code)]

use sslperf_core::prelude::*;
use std::sync::OnceLock;

/// A deterministic RSA key of the given size, generated once per process.
///
/// # Panics
///
/// Panics if key generation fails (not observed).
#[must_use]
pub fn key(bits: usize) -> &'static RsaPrivateKey {
    static K512: OnceLock<RsaPrivateKey> = OnceLock::new();
    static K1024: OnceLock<RsaPrivateKey> = OnceLock::new();
    static K2048: OnceLock<RsaPrivateKey> = OnceLock::new();
    let cell = match bits {
        512 => &K512,
        1024 => &K1024,
        2048 => &K2048,
        other => panic!("no cached key of {other} bits"),
    };
    cell.get_or_init(|| {
        let mut rng = SslRng::from_seed(format!("bench-key-{bits}").as_bytes());
        RsaPrivateKey::generate(bits, &mut rng).expect("keygen")
    })
}

/// A server configuration around the 1024-bit bench key.
///
/// # Panics
///
/// Panics if certificate construction fails (not observed).
#[must_use]
pub fn server_config() -> &'static ServerConfig {
    static CONFIG: OnceLock<ServerConfig> = OnceLock::new();
    CONFIG
        .get_or_init(|| ServerConfig::new(key(1024).clone(), "bench.sslperf.test").expect("config"))
}

/// Runs one full handshake against `config`, returning the established
/// pair.
///
/// # Panics
///
/// Panics if any flight fails.
#[must_use]
pub fn handshake(
    config: &ServerConfig,
    suite: CipherSuite,
    seed: u64,
) -> (SslClient, SslServer<'_>) {
    let mut client = SslClient::new(suite, SslRng::from_seed(format!("bench-c-{seed}").as_bytes()));
    let mut server =
        SslServer::new(config, SslRng::from_seed(format!("bench-s-{seed}").as_bytes()));
    let f1 = client.hello().expect("hello");
    let f2 = server.process_client_hello(&f1).expect("flight 2");
    let f3 = client.process_server_flight(&f2).expect("flight 3");
    let f4 = server.process_client_flight(&f3).expect("flight 4");
    client.process_server_finish(&f4).expect("established");
    (client, server)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_work() {
        assert_eq!(key(512).modulus().bit_len(), 512);
        let (c, s) = handshake(server_config(), CipherSuite::RsaRc4Md5, 1);
        assert!(c.is_established() && s.is_established());
    }
}
