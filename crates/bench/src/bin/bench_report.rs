//! Machine-readable benchmark report: `BENCH_6.json`.
//!
//! Runs the batched-RSA serving ablation (the fast, single-run variant of
//! `benches/tcp_serving.rs`'s `batch_rsa` group) plus the in-process RSA
//! kernel comparison, and writes the results as JSON so CI can diff runs
//! against each other. One command, from the repository root:
//!
//! ```text
//! cargo run --release -p sslperf-bench --bin bench_report
//! ```
//!
//! writes `BENCH_6.json` in the current directory (pass a path argument to
//! write elsewhere). `scripts/check_bench_json.py` validates the schema
//! and flags throughput regressions against the previous report.

#![forbid(unsafe_code)]

use sslperf_core::net::{EventLoopServer, ServerOptions};
use sslperf_core::prelude::*;
use sslperf_core::profile::measure;
use sslperf_core::rsa::BatchCipher;
use sslperf_core::websim::loadgen::{run_event_load, EventLoadOptions};
use std::fmt::Write as _;
use std::time::Duration;

/// Concurrent connections each serving arm is hit with.
const CONNECTIONS: usize = 64;
/// Key size for the serving arms (kept small so the report runs in
/// seconds; the kernel section uses the paper's 1024-bit size).
const SERVING_KEY_BITS: usize = 512;
/// Key size for the solo-vs-amortized kernel numbers.
const KERNEL_KEY_BITS: usize = 1024;
/// Decrypts sampled for the solo kernel baseline.
const KERNEL_SAMPLES: usize = 8;

/// One serving arm's measurements.
struct Arm {
    label: String,
    crypto_workers: usize,
    batch_max: usize,
    tx_per_sec: f64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
    cycles_per_decrypt: u64,
    batches: u64,
    batched_jobs: u64,
}

/// Cycles per decrypt when `batch` ciphertexts share one batched call.
struct Amortized {
    batch: usize,
    cycles_per_decrypt: u64,
}

fn main() {
    let out = std::env::args().nth(1).unwrap_or_else(|| "BENCH_6.json".into());

    eprintln!("[bench_report] RSA kernel: solo vs batched ({KERNEL_KEY_BITS}-bit)");
    let (solo, amortized) = kernel_numbers();

    eprintln!("[bench_report] serving arms: {CONNECTIONS} connections, {SERVING_KEY_BITS}-bit key");
    let mut arms = Vec::new();
    for batch_max in [1usize, 2, 4, 8] {
        arms.push(serving_arm(batch_max));
        let arm = arms.last().expect("just pushed");
        eprintln!(
            "[bench_report]   {}: {:.1} tx/s, p50 {:.2}ms p99 {:.2}ms, {} kc/decrypt",
            arm.label,
            arm.tx_per_sec,
            arm.p50_ms,
            arm.p99_ms,
            arm.cycles_per_decrypt / 1000,
        );
    }

    let json = render_json(solo, &amortized, &arms);
    std::fs::write(&out, json).expect("write report");
    eprintln!("[bench_report] wrote {out}");
}

/// Measures the in-process RSA kernel: the best-of-N solo decrypt cost
/// against the per-job cost when 2/4/8 ciphertexts go through one
/// `decrypt_batch` call (shared blinding, shared Montgomery scratch,
/// interleaved CRT halves).
fn kernel_numbers() -> (u64, Vec<Amortized>) {
    let mut rng = SslRng::from_seed(b"bench-report-kernel");
    let key = RsaPrivateKey::generate(KERNEL_KEY_BITS, &mut rng).expect("keygen");
    let ciphers: Vec<Vec<u8>> = (0..KERNEL_SAMPLES)
        .map(|i| {
            let msg = format!("bench-report-pm-{i}");
            key.public_key().encrypt_pkcs1(msg.as_bytes(), &mut rng).expect("encrypt")
        })
        .collect();

    // Warm the blinding cache so neither path pays one-time setup.
    let _ = key.decrypt_pkcs1(&ciphers[0]).expect("warmup decrypt");

    let solo = ciphers
        .iter()
        .map(|c| {
            let (plain, cycles) = measure(|| key.decrypt_pkcs1(c));
            plain.expect("solo decrypt");
            cycles.get()
        })
        .min()
        .expect("samples");

    let amortized = [2usize, 4, 8]
        .into_iter()
        .map(|batch| {
            let items: Vec<BatchCipher> =
                ciphers.iter().cycle().take(batch).map(|c| BatchCipher::new(c.clone())).collect();
            let (results, cycles) = measure(|| key.decrypt_batch(&items, &mut rng));
            for r in results {
                r.expect("batched decrypt");
            }
            Amortized { batch, cycles_per_decrypt: cycles.get() / batch as u64 }
        })
        .collect();
    (solo, amortized)
}

/// Runs one serving arm: the event-loop server with two crypto workers
/// and the given batch cap under a saturating all-at-once burst.
fn serving_arm(batch_max: usize) -> Arm {
    let crypto_workers = 2;
    let mut rng = SslRng::from_seed(b"bench-report-serving");
    let key = RsaPrivateKey::generate(SERVING_KEY_BITS, &mut rng).expect("keygen");
    let options = ServerOptions::builder()
        .shards(1)
        .crypto_workers(crypto_workers)
        .batch_max(batch_max)
        .build()
        .expect("valid arm configuration");
    let server = EventLoopServer::start(key, "bench.sslperf.test", &options).expect("server start");
    let load = EventLoadOptions {
        connections: CONNECTIONS,
        file_size: 1024,
        suite: CipherSuite::RsaDesCbc3Sha,
        hold_until_all_established: true,
        deadline: Duration::from_secs(120),
    };
    let report = run_event_load(server.local_addr(), &load).expect("event load");
    let stats = server.stats();
    let jobs = stats.crypto_jobs().max(1);
    let arm = Arm {
        label: format!("event_loop_{crypto_workers}w_b{batch_max}"),
        crypto_workers,
        batch_max,
        tx_per_sec: report.transactions_per_second(),
        p50_ms: report.handshake_latency.p50.as_secs_f64() * 1e3,
        p95_ms: report.handshake_latency.p95.as_secs_f64() * 1e3,
        p99_ms: report.handshake_latency.p99.as_secs_f64() * 1e3,
        cycles_per_decrypt: stats.crypto_exec().get() / jobs,
        batches: stats.crypto_batches(),
        batched_jobs: stats.crypto_batched_jobs(),
    };
    server.shutdown();
    arm
}

/// Hand-rolled JSON (the workspace carries no serde); every number is
/// emitted with enough precision for the regression diff.
fn render_json(solo: u64, amortized: &[Amortized], arms: &[Arm]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"sslperf-bench-report/v1\",\n");
    s.push_str("  \"issue\": 6,\n");
    s.push_str("  \"rsa\": {\n");
    let _ = writeln!(s, "    \"key_bits\": {KERNEL_KEY_BITS},");
    let _ = writeln!(s, "    \"solo_cycles_per_decrypt\": {solo},");
    s.push_str("    \"amortized\": [\n");
    for (i, a) in amortized.iter().enumerate() {
        let comma = if i + 1 < amortized.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "      {{\"batch\": {}, \"cycles_per_decrypt\": {}}}{comma}",
            a.batch, a.cycles_per_decrypt
        );
    }
    s.push_str("    ]\n  },\n");
    s.push_str("  \"serving\": {\n");
    let _ = writeln!(s, "    \"connections\": {CONNECTIONS},");
    let _ = writeln!(s, "    \"key_bits\": {SERVING_KEY_BITS},");
    s.push_str("    \"arms\": [\n");
    for (i, arm) in arms.iter().enumerate() {
        let comma = if i + 1 < arms.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "      {{\"label\": \"{}\", \"crypto_workers\": {}, \"batch_max\": {}, \
             \"tx_per_sec\": {:.2}, \"p50_ms\": {:.3}, \"p95_ms\": {:.3}, \"p99_ms\": {:.3}, \
             \"cycles_per_decrypt\": {}, \"batches\": {}, \"batched_jobs\": {}}}{comma}",
            arm.label,
            arm.crypto_workers,
            arm.batch_max,
            arm.tx_per_sec,
            arm.p50_ms,
            arm.p95_ms,
            arm.p99_ms,
            arm.cycles_per_decrypt,
            arm.batches,
            arm.batched_jobs,
        );
    }
    s.push_str("    ]\n  }\n}\n");
    s
}
