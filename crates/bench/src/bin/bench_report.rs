//! Machine-readable benchmark report: `BENCH_10.json`.
//!
//! Runs the batched-RSA serving ablation (the fast, single-run variant of
//! `benches/tcp_serving.rs`'s `batch_rsa` group), a ticket-resumption
//! serving arm, a TLS 1.3 event-loop serving arm (ephemeral DHE key
//! exchange through the same crypto pool), the in-process RSA kernel
//! comparison, the bulk-path record-sealing cost, the raw-speed kernel
//! comparisons (u32-limb vs u64-limb Montgomery arithmetic under a full
//! RSA-CRT decrypt, table-rounds vs AES-NI record sealing), and — new in
//! issue 10 — the engine-forecast closure: the isasim cycle model predicts
//! tx/s per heterogeneous engine configuration, the live event-loop server
//! measures the same fleet, and both land in the report with the percent
//! error. Results go to JSON so CI can diff runs against each other. One
//! command, from the repository root:
//!
//! ```text
//! cargo run --release -p sslperf-bench --bin bench_report
//! ```
//!
//! writes `BENCH_10.json` in the current directory (pass a path argument to
//! write elsewhere). `scripts/check_bench_json.py` validates the schema,
//! flags throughput regressions against the previous report, requires
//! the u64 kernels and the hardware AES unit to actually be faster than
//! the paths they replace, and bounds the forecast error; each serving arm
//! carries a `protocol` field so the SSLv3 arms stay diffable against
//! `BENCH_7.json`.

#![forbid(unsafe_code)]

use sslperf_core::bignum::{Bn, LimbWidth, MontCtx};
use sslperf_core::ciphers::AesBackend;
use sslperf_core::isasim::forecast::{rsa_kx_cycles, EngineConfig, ForecastModel};
use sslperf_core::net::{EngineProfile, EventLoopServer, ServerOptions};
use sslperf_core::prelude::*;
use sslperf_core::profile::measure;
use sslperf_core::rsa::BatchCipher;
use sslperf_core::ssl::{BulkCipher, ContentType, RecordBuffer, RecordLayer, MAX_FRAGMENT};
use sslperf_core::websim::loadgen::{
    run_event_load, run_socket_load, EventLoadOptions, SocketLoadOptions,
};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Concurrent connections each serving arm is hit with.
const CONNECTIONS: usize = 64;
/// Key size for the serving arms (kept small so the report runs in
/// seconds; the kernel section uses the paper's 1024-bit size).
const SERVING_KEY_BITS: usize = 512;
/// Key size for the solo-vs-amortized kernel numbers.
const KERNEL_KEY_BITS: usize = 1024;
/// Decrypts sampled for the solo kernel baseline.
const KERNEL_SAMPLES: usize = 8;
/// Seals sampled per suite for the bulk-path cycles/record number.
const BULK_SAMPLES: usize = 8;

/// One serving arm's measurements.
struct Arm {
    label: String,
    protocol: &'static str,
    crypto_workers: usize,
    batch_max: usize,
    tx_per_sec: f64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
    cycles_per_decrypt: u64,
    batches: u64,
    batched_jobs: u64,
    resumed_handshakes: u64,
    tickets_issued: u64,
    tickets_accepted: u64,
}

/// Cycles per decrypt when `batch` ciphertexts share one batched call.
struct Amortized {
    batch: usize,
    cycles_per_decrypt: u64,
}

/// Bulk-path record-sealing cost for one cipher suite.
struct BulkPath {
    suite: &'static str,
    cycles_per_record: u64,
}

/// One limb width's raw-speed numbers under the same 1024-bit key.
struct LimbKernel {
    limbs: &'static str,
    cycles_per_decrypt: u64,
    cycles_per_square: u64,
}

/// One AES round backend's record-sealing cost.
struct AesKernel {
    backend: &'static str,
    cycles_per_record: u64,
}

/// One engine configuration's forecast-vs-measured closure.
struct ForecastRow {
    label: &'static str,
    engines: Vec<String>,
    forecast_tx_per_sec: f64,
    measured_tx_per_sec: f64,
    error_percent: f64,
}

/// The engine-forecast section: the calibration anchors plus every
/// forecast row.
struct ForecastSection {
    kx_cycles: f64,
    solo_kx_ms: f64,
    baseline_tx_per_sec: f64,
    configs: Vec<ForecastRow>,
}

/// Montgomery squarings timed back-to-back per sample (the modexp inner
/// loop is squaring-dominated, so this is the paper-relevant unit cost).
const SQUARES_PER_SAMPLE: u64 = 256;

fn main() {
    let out = std::env::args().nth(1).unwrap_or_else(|| "BENCH_10.json".into());

    eprintln!("[bench_report] RSA kernel: solo vs batched ({KERNEL_KEY_BITS}-bit)");
    let (solo, amortized) = kernel_numbers();

    eprintln!("[bench_report] limb kernels: u32 vs u64 ({KERNEL_KEY_BITS}-bit)");
    let limb_kernels = limb_kernel_numbers();
    for k in &limb_kernels {
        eprintln!(
            "[bench_report]   {}: {} kc/decrypt, {} c/square",
            k.limbs,
            k.cycles_per_decrypt / 1000,
            k.cycles_per_square,
        );
    }

    eprintln!("[bench_report] AES backends: cycles per {MAX_FRAGMENT}-byte record");
    let (ni_available, aes_kernels) = aes_numbers();
    for k in &aes_kernels {
        eprintln!("[bench_report]   {}: {} kc/record", k.backend, k.cycles_per_record / 1000);
    }

    eprintln!("[bench_report] bulk path: cycles per {MAX_FRAGMENT}-byte record");
    let bulk = bulk_numbers();
    for b in &bulk {
        eprintln!("[bench_report]   {}: {} kc/record", b.suite, b.cycles_per_record / 1000);
    }

    eprintln!("[bench_report] serving arms: {CONNECTIONS} connections, {SERVING_KEY_BITS}-bit key");
    let mut arms = Vec::new();
    for batch_max in [1usize, 2, 4, 8] {
        arms.push(serving_arm(batch_max));
        let arm = arms.last().expect("just pushed");
        eprintln!(
            "[bench_report]   {}: {:.1} tx/s, p50 {:.2}ms p99 {:.2}ms, {} kc/decrypt",
            arm.label,
            arm.tx_per_sec,
            arm.p50_ms,
            arm.p99_ms,
            arm.cycles_per_decrypt / 1000,
        );
    }
    arms.push(ticket_arm());
    let arm = arms.last().expect("just pushed");
    eprintln!(
        "[bench_report]   {}: {:.1} tx/s, {} resumed, {} tickets accepted",
        arm.label, arm.tx_per_sec, arm.resumed_handshakes, arm.tickets_accepted,
    );
    arms.push(tls13_arm());
    let arm = arms.last().expect("just pushed");
    eprintln!(
        "[bench_report]   {}: {:.1} tx/s, p50 {:.2}ms p99 {:.2}ms, {} kc/exchange",
        arm.label,
        arm.tx_per_sec,
        arm.p50_ms,
        arm.p99_ms,
        arm.cycles_per_decrypt / 1000,
    );

    eprintln!("[bench_report] engine forecast: cycle model vs live heterogeneous fleets");
    let forecast = engine_forecast_numbers();
    eprintln!(
        "[bench_report]   calibration: {:.0} cycles/kx, {:.2} ms solo decrypt, \
         baseline {:.1} tx/s",
        forecast.kx_cycles, forecast.solo_kx_ms, forecast.baseline_tx_per_sec,
    );
    for row in &forecast.configs {
        eprintln!(
            "[bench_report]   {}: forecast {:.1} tx/s, measured {:.1} tx/s, error {:+.1}%",
            row.label, row.forecast_tx_per_sec, row.measured_tx_per_sec, row.error_percent,
        );
    }

    let json = render_json(
        solo,
        &amortized,
        &limb_kernels,
        ni_available,
        &aes_kernels,
        &bulk,
        &arms,
        &forecast,
    );
    std::fs::write(&out, json).expect("write report");
    eprintln!("[bench_report] wrote {out}");
}

/// Measures one heterogeneous engine fleet live and returns its tx/s.
fn forecast_fleet_tps(profiles: Vec<EngineProfile>) -> f64 {
    let mut rng = SslRng::from_seed(b"bench-report-forecast");
    let key = RsaPrivateKey::generate(SERVING_KEY_BITS, &mut rng).expect("keygen");
    let options = ServerOptions::builder()
        .shards(1)
        .engine_profiles(Some(profiles))
        .build()
        .expect("valid forecast fleet configuration");
    let server = EventLoopServer::start(key, "bench.sslperf.test", &options).expect("server start");
    let load = EventLoadOptions {
        connections: CONNECTIONS,
        file_size: 1024,
        protocol: Protocol::Ssl3,
        suite: CipherSuite::RsaDesCbc3Sha,
        hold_until_all_established: true,
        deadline: Duration::from_secs(120),
    };
    let report = run_event_load(server.local_addr(), &load).expect("event load");
    server.shutdown();
    report.transactions_per_second()
}

/// Runs the engine-forecast closure: prices one RSA key exchange with the
/// isasim cycle model, anchors it on a measured solo decrypt plus a
/// measured one-engine baseline (held out of the rows below), then
/// forecasts and measures three heterogeneous fleets.
fn engine_forecast_numbers() -> ForecastSection {
    let kx_cycles = rsa_kx_cycles(SERVING_KEY_BITS);

    let mut rng = SslRng::from_seed(b"bench-report-forecast-anchor");
    let key = RsaPrivateKey::generate(SERVING_KEY_BITS, &mut rng).expect("keygen");
    let cipher = key.public_key().encrypt_pkcs1(b"forecast-anchor", &mut rng).expect("encrypt");
    let _ = key.decrypt_pkcs1(&cipher).expect("warmup decrypt");
    let reps = 8u32;
    let started = Instant::now();
    for _ in 0..reps {
        key.decrypt_pkcs1(&cipher).expect("anchor decrypt");
    }
    let solo_kx_secs = started.elapsed().as_secs_f64() / f64::from(reps);

    let baseline_tx_per_sec = forecast_fleet_tps(vec![EngineProfile::general()]);
    let baseline = EngineConfig::uniform("1x general", 1, 1.0);
    let model = ForecastModel::calibrate(kx_cycles, solo_kx_secs, &baseline, baseline_tx_per_sec);

    let fleets: [(&'static str, Vec<EngineProfile>); 3] = [
        ("2x general", vec![EngineProfile::general(); 2]),
        (
            "rsa-engine + 2 slow",
            vec![
                EngineProfile::rsa_engine(),
                EngineProfile::general_slowed(3.0),
                EngineProfile::general_slowed(3.0),
            ],
        ),
        ("4x general", vec![EngineProfile::general(); 4]),
    ];
    let configs = fleets
        .into_iter()
        .map(|(label, profiles)| {
            let config = EngineConfig {
                label: label.to_string(),
                multipliers: profiles.iter().map(|p| p.rsa_cost).collect(),
            };
            let forecast_tx_per_sec = model.forecast_tps(&config);
            let engines = profiles.iter().map(|p| p.name.clone()).collect();
            let measured_tx_per_sec = forecast_fleet_tps(profiles);
            let error_percent =
                (forecast_tx_per_sec - measured_tx_per_sec) * 100.0 / measured_tx_per_sec;
            ForecastRow { label, engines, forecast_tx_per_sec, measured_tx_per_sec, error_percent }
        })
        .collect();
    ForecastSection { kx_cycles, solo_kx_ms: solo_kx_secs * 1e3, baseline_tx_per_sec, configs }
}

/// Measures the in-process RSA kernel: the best-of-N solo decrypt cost
/// against the per-job cost when 2/4/8 ciphertexts go through one
/// `decrypt_batch` call (shared blinding, shared Montgomery scratch,
/// interleaved CRT halves).
fn kernel_numbers() -> (u64, Vec<Amortized>) {
    let mut rng = SslRng::from_seed(b"bench-report-kernel");
    let key = RsaPrivateKey::generate(KERNEL_KEY_BITS, &mut rng).expect("keygen");
    let ciphers: Vec<Vec<u8>> = (0..KERNEL_SAMPLES)
        .map(|i| {
            let msg = format!("bench-report-pm-{i}");
            key.public_key().encrypt_pkcs1(msg.as_bytes(), &mut rng).expect("encrypt")
        })
        .collect();

    // Warm the blinding cache so neither path pays one-time setup.
    let _ = key.decrypt_pkcs1(&ciphers[0]).expect("warmup decrypt");

    let solo = ciphers
        .iter()
        .map(|c| {
            let (plain, cycles) = measure(|| key.decrypt_pkcs1(c));
            plain.expect("solo decrypt");
            cycles.get()
        })
        .min()
        .expect("samples");

    let amortized = [2usize, 4, 8]
        .into_iter()
        .map(|batch| {
            let items: Vec<BatchCipher> =
                ciphers.iter().cycle().take(batch).map(|c| BatchCipher::new(c.clone())).collect();
            let (results, cycles) = measure(|| key.decrypt_batch(&items, &mut rng));
            for r in results {
                r.expect("batched decrypt");
            }
            Amortized { batch, cycles_per_decrypt: cycles.get() / batch as u64 }
        })
        .collect();
    (solo, amortized)
}

/// Measures the word-kernel families head to head: the same 1024-bit key
/// re-based onto u32 and u64 limbs (`RsaPrivateKey::set_limb_width`), the
/// same ciphertext, best-of-N full CRT decrypts, plus the bare Montgomery
/// squaring cost that dominates the modexp inner loop.
fn limb_kernel_numbers() -> Vec<LimbKernel> {
    let mut rng = SslRng::from_seed(b"bench-report-limbs");
    let base_key = RsaPrivateKey::generate(KERNEL_KEY_BITS, &mut rng).expect("keygen");
    let cipher =
        base_key.public_key().encrypt_pkcs1(b"bench-report-limb-pm", &mut rng).expect("encrypt");
    [LimbWidth::U32, LimbWidth::U64]
        .into_iter()
        .map(|limbs| {
            let mut key = base_key.clone();
            key.set_limb_width(limbs);
            let _ = key.decrypt_pkcs1(&cipher).expect("warmup decrypt");
            let cycles_per_decrypt = (0..KERNEL_SAMPLES)
                .map(|_| {
                    let (plain, cycles) = measure(|| key.decrypt_pkcs1(&cipher));
                    plain.expect("decrypt");
                    cycles.get()
                })
                .min()
                .expect("samples");

            let ctx = MontCtx::with_limb_width(key.modulus(), limbs).expect("modulus is odd");
            let seed = ctx.to_mont(&Bn::from_u64(0xA5A5_5A5A_3C3C_C3C3));
            let cycles_per_square = (0..KERNEL_SAMPLES)
                .map(|_| {
                    let (_, cycles) = measure(|| {
                        let mut a = seed.clone();
                        for _ in 0..SQUARES_PER_SAMPLE {
                            a = ctx.mont_sqr(&a);
                        }
                        a
                    });
                    cycles.get() / SQUARES_PER_SAMPLE
                })
                .min()
                .expect("samples");
            LimbKernel { limbs: limbs.name(), cycles_per_decrypt, cycles_per_square }
        })
        .collect()
}

/// Measures the AES round backends head to head: the minimum cost to seal
/// one full AES-128-CBC + HMAC-SHA1 record with the table rounds and,
/// when the CPU has the round unit, with AES-NI.
fn aes_numbers() -> (bool, Vec<AesKernel>) {
    let ni_available = Aes::ni_available();
    let mut rng = SslRng::from_seed(b"bench-report-aes");
    let suite = CipherSuite::RsaAes128Sha;
    let key = rng.bytes(suite.key_len());
    let iv = rng.bytes(suite.iv_len());
    let mac = rng.bytes(suite.mac_alg().output_len());
    let payload = vec![0xA5u8; MAX_FRAGMENT];
    let mut backends = vec![AesBackend::Table];
    if ni_available {
        backends.push(AesBackend::Ni);
    }
    let kernels = backends
        .into_iter()
        .map(|backend| {
            let aes = Aes::with_backend(&key, backend).expect("backend resolved");
            let cbc = Cbc::new(aes, iv.clone()).expect("aes-cbc");
            let mut records = RecordLayer::new();
            records.activate_write(BulkCipher::AesCbc(cbc), suite.mac_alg(), mac.clone());
            let mut out = RecordBuffer::with_record_capacity();
            records.seal_into(ContentType::ApplicationData, &payload, &mut out).expect("warm seal");
            let cycles_per_record = (0..BULK_SAMPLES)
                .map(|_| {
                    let (sealed, cycles) = measure(|| {
                        records.seal_into(ContentType::ApplicationData, &payload, &mut out)
                    });
                    sealed.expect("seal record");
                    cycles.get()
                })
                .min()
                .expect("samples");
            AesKernel { backend: backend.name(), cycles_per_record }
        })
        .collect();
    (ni_available, kernels)
}

/// Measures the bulk data path: the minimum cost to seal one full
/// MAC-then-encrypt record through the record layer, per suite family
/// (3DES block, AES block, RC4 stream).
fn bulk_numbers() -> Vec<BulkPath> {
    let mut rng = SslRng::from_seed(b"bench-report-bulk");
    let payload = vec![0xA5u8; MAX_FRAGMENT];
    [CipherSuite::RsaDesCbc3Sha, CipherSuite::RsaAes128Sha, CipherSuite::RsaRc4Md5]
        .into_iter()
        .map(|suite| {
            let key = rng.bytes(suite.key_len());
            let iv = rng.bytes(suite.iv_len());
            let mac = rng.bytes(suite.mac_alg().output_len());
            let mut records = RecordLayer::new();
            let cipher = suite.new_cipher(&key, &iv).expect("suite cipher");
            records.activate_write(cipher, suite.mac_alg(), mac);
            let mut out = RecordBuffer::with_record_capacity();
            // Warm the buffer to capacity so sealing allocates nothing.
            records.seal_into(ContentType::ApplicationData, &payload, &mut out).expect("warm seal");
            let cycles_per_record = (0..BULK_SAMPLES)
                .map(|_| {
                    let (sealed, cycles) = measure(|| {
                        records.seal_into(ContentType::ApplicationData, &payload, &mut out)
                    });
                    sealed.expect("seal record");
                    cycles.get()
                })
                .min()
                .expect("samples");
            BulkPath { suite: suite.name(), cycles_per_record }
        })
        .collect()
}

/// Runs one serving arm: the event-loop server with two crypto workers
/// and the given batch cap under a saturating all-at-once burst.
fn serving_arm(batch_max: usize) -> Arm {
    let crypto_workers = 2;
    let mut rng = SslRng::from_seed(b"bench-report-serving");
    let key = RsaPrivateKey::generate(SERVING_KEY_BITS, &mut rng).expect("keygen");
    let options = ServerOptions::builder()
        .shards(1)
        .crypto_workers(crypto_workers)
        .batch_max(batch_max)
        .build()
        .expect("valid arm configuration");
    let server = EventLoopServer::start(key, "bench.sslperf.test", &options).expect("server start");
    let load = EventLoadOptions {
        connections: CONNECTIONS,
        file_size: 1024,
        protocol: Protocol::Ssl3,
        suite: CipherSuite::RsaDesCbc3Sha,
        hold_until_all_established: true,
        deadline: Duration::from_secs(120),
    };
    let report = run_event_load(server.local_addr(), &load).expect("event load");
    let stats = server.stats();
    let jobs = stats.crypto_jobs().max(1);
    let arm = Arm {
        label: format!("event_loop_{crypto_workers}w_b{batch_max}"),
        protocol: Protocol::Ssl3.name(),
        crypto_workers,
        batch_max,
        tx_per_sec: report.transactions_per_second(),
        p50_ms: report.handshake_latency.p50.as_secs_f64() * 1e3,
        p95_ms: report.handshake_latency.p95.as_secs_f64() * 1e3,
        p99_ms: report.handshake_latency.p99.as_secs_f64() * 1e3,
        cycles_per_decrypt: stats.crypto_exec().get() / jobs,
        batches: stats.crypto_batches(),
        batched_jobs: stats.crypto_batched_jobs(),
        resumed_handshakes: stats.resumed_handshakes(),
        tickets_issued: stats.tickets_issued(),
        tickets_accepted: stats.tickets_accepted(),
    };
    server.shutdown();
    arm
}

/// Runs the ticket-resumption serving arm: resuming clients advertising
/// the session-ticket extension against an event-loop server holding a
/// ticket keyring, so every handshake after a client's first goes
/// through the stateless path.
fn ticket_arm() -> Arm {
    let crypto_workers = 2;
    let mut rng = SslRng::from_seed(b"bench-report-tickets");
    let key = RsaPrivateKey::generate(SERVING_KEY_BITS, &mut rng).expect("keygen");
    let keyring = Arc::new(TicketKeyring::new(b"bench-report-ticket-keys"));
    let options = ServerOptions::builder()
        .shards(1)
        .crypto_workers(crypto_workers)
        .ticket_keys(Some(keyring))
        .build()
        .expect("valid ticket-arm configuration");
    let server = EventLoopServer::start(key, "bench.sslperf.test", &options).expect("server start");
    let load = SocketLoadOptions {
        clients: 8,
        transactions_per_client: CONNECTIONS / 8,
        warmup_per_client: 1,
        resume: true,
        file_size: 1024,
        suite: CipherSuite::RsaDesCbc3Sha,
        tickets: true,
    };
    let report = run_socket_load(server.local_addr(), &load).expect("socket load");
    let stats = server.stats();
    let arm = Arm {
        label: format!("event_loop_{crypto_workers}w_tickets"),
        protocol: Protocol::Ssl3.name(),
        crypto_workers,
        batch_max: 1,
        tx_per_sec: report.transactions_per_second(),
        p50_ms: report.handshake_latency.p50.as_secs_f64() * 1e3,
        p95_ms: report.handshake_latency.p95.as_secs_f64() * 1e3,
        p99_ms: report.handshake_latency.p99.as_secs_f64() * 1e3,
        cycles_per_decrypt: stats.crypto_exec().get() / stats.crypto_jobs().max(1),
        batches: stats.crypto_batches(),
        batched_jobs: stats.crypto_batched_jobs(),
        resumed_handshakes: stats.resumed_handshakes(),
        tickets_issued: stats.tickets_issued(),
        tickets_accepted: stats.tickets_accepted(),
    };
    server.shutdown();
    arm
}

/// Runs the TLS 1.3 serving arm: the same event-loop server and burst as
/// the SSLv3 ablation, but the clients handshake with the 1-RTT machine,
/// so the offloaded crypto job is an ephemeral DHE exponentiation instead
/// of an RSA decryption.
fn tls13_arm() -> Arm {
    let crypto_workers = 2;
    let mut rng = SslRng::from_seed(b"bench-report-tls13");
    let key = RsaPrivateKey::generate(SERVING_KEY_BITS, &mut rng).expect("keygen");
    let options = ServerOptions::builder()
        .shards(1)
        .crypto_workers(crypto_workers)
        .build()
        .expect("valid tls13-arm configuration");
    let server = EventLoopServer::start(key, "bench.sslperf.test", &options).expect("server start");
    let load = EventLoadOptions {
        connections: CONNECTIONS,
        file_size: 1024,
        protocol: Protocol::Tls13,
        suite: CipherSuite::RsaDesCbc3Sha,
        hold_until_all_established: true,
        deadline: Duration::from_secs(120),
    };
    let report = run_event_load(server.local_addr(), &load).expect("event load");
    let stats = server.stats();
    let arm = Arm {
        label: "tls13_event_loop".into(),
        protocol: Protocol::Tls13.name(),
        crypto_workers,
        batch_max: 1,
        tx_per_sec: report.transactions_per_second(),
        p50_ms: report.handshake_latency.p50.as_secs_f64() * 1e3,
        p95_ms: report.handshake_latency.p95.as_secs_f64() * 1e3,
        p99_ms: report.handshake_latency.p99.as_secs_f64() * 1e3,
        cycles_per_decrypt: stats.crypto_exec().get() / stats.crypto_jobs().max(1),
        batches: stats.crypto_batches(),
        batched_jobs: stats.crypto_batched_jobs(),
        resumed_handshakes: stats.resumed_handshakes(),
        tickets_issued: stats.tickets_issued(),
        tickets_accepted: stats.tickets_accepted(),
    };
    server.shutdown();
    arm
}

/// Hand-rolled JSON (the workspace carries no serde); every number is
/// emitted with enough precision for the regression diff.
#[allow(clippy::too_many_arguments)]
fn render_json(
    solo: u64,
    amortized: &[Amortized],
    limb_kernels: &[LimbKernel],
    ni_available: bool,
    aes_kernels: &[AesKernel],
    bulk: &[BulkPath],
    arms: &[Arm],
    forecast: &ForecastSection,
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"sslperf-bench-report/v1\",\n");
    s.push_str("  \"issue\": 10,\n");
    s.push_str("  \"kernel\": {\n");
    let _ = writeln!(s, "    \"key_bits\": {KERNEL_KEY_BITS},");
    s.push_str("    \"limbs\": [\n");
    for (i, k) in limb_kernels.iter().enumerate() {
        let comma = if i + 1 < limb_kernels.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "      {{\"limbs\": \"{}\", \"cycles_per_decrypt\": {}, \"cycles_per_square\": {}}}{comma}",
            k.limbs, k.cycles_per_decrypt, k.cycles_per_square
        );
    }
    s.push_str("    ]\n  },\n");
    s.push_str("  \"aes\": {\n");
    let _ = writeln!(s, "    \"ni_available\": {ni_available},");
    let _ = writeln!(s, "    \"record_bytes\": {MAX_FRAGMENT},");
    s.push_str("    \"backends\": [\n");
    for (i, k) in aes_kernels.iter().enumerate() {
        let comma = if i + 1 < aes_kernels.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "      {{\"backend\": \"{}\", \"cycles_per_record\": {}}}{comma}",
            k.backend, k.cycles_per_record
        );
    }
    s.push_str("    ]\n  },\n");
    s.push_str("  \"rsa\": {\n");
    let _ = writeln!(s, "    \"key_bits\": {KERNEL_KEY_BITS},");
    let _ = writeln!(s, "    \"solo_cycles_per_decrypt\": {solo},");
    s.push_str("    \"amortized\": [\n");
    for (i, a) in amortized.iter().enumerate() {
        let comma = if i + 1 < amortized.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "      {{\"batch\": {}, \"cycles_per_decrypt\": {}}}{comma}",
            a.batch, a.cycles_per_decrypt
        );
    }
    s.push_str("    ]\n  },\n");
    s.push_str("  \"bulk\": {\n");
    let _ = writeln!(s, "    \"record_bytes\": {MAX_FRAGMENT},");
    s.push_str("    \"suites\": [\n");
    for (i, b) in bulk.iter().enumerate() {
        let comma = if i + 1 < bulk.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "      {{\"suite\": \"{}\", \"cycles_per_record\": {}}}{comma}",
            b.suite, b.cycles_per_record
        );
    }
    s.push_str("    ]\n  },\n");
    s.push_str("  \"serving\": {\n");
    let _ = writeln!(s, "    \"connections\": {CONNECTIONS},");
    let _ = writeln!(s, "    \"key_bits\": {SERVING_KEY_BITS},");
    s.push_str("    \"arms\": [\n");
    for (i, arm) in arms.iter().enumerate() {
        let comma = if i + 1 < arms.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "      {{\"label\": \"{}\", \"protocol\": \"{}\", \"crypto_workers\": {}, \
             \"batch_max\": {}, \
             \"tx_per_sec\": {:.2}, \"p50_ms\": {:.3}, \"p95_ms\": {:.3}, \"p99_ms\": {:.3}, \
             \"cycles_per_decrypt\": {}, \"batches\": {}, \"batched_jobs\": {}, \
             \"resumed_handshakes\": {}, \"tickets_issued\": {}, \"tickets_accepted\": {}}}{comma}",
            arm.label,
            arm.protocol,
            arm.crypto_workers,
            arm.batch_max,
            arm.tx_per_sec,
            arm.p50_ms,
            arm.p95_ms,
            arm.p99_ms,
            arm.cycles_per_decrypt,
            arm.batches,
            arm.batched_jobs,
            arm.resumed_handshakes,
            arm.tickets_issued,
            arm.tickets_accepted,
        );
    }
    s.push_str("    ]\n  },\n");
    s.push_str("  \"engine_forecast\": {\n");
    let _ = writeln!(s, "    \"connections\": {CONNECTIONS},");
    let _ = writeln!(s, "    \"key_bits\": {SERVING_KEY_BITS},");
    let _ = writeln!(s, "    \"kx_cycles\": {:.0},", forecast.kx_cycles);
    let _ = writeln!(s, "    \"solo_kx_ms\": {:.4},", forecast.solo_kx_ms);
    let _ = writeln!(s, "    \"baseline_tx_per_sec\": {:.2},", forecast.baseline_tx_per_sec);
    s.push_str("    \"configs\": [\n");
    for (i, row) in forecast.configs.iter().enumerate() {
        let comma = if i + 1 < forecast.configs.len() { "," } else { "" };
        let engines: Vec<String> = row.engines.iter().map(|e| format!("\"{e}\"")).collect();
        let _ = writeln!(
            s,
            "      {{\"label\": \"{}\", \"engines\": [{}], \"forecast_tx_per_sec\": {:.2}, \
             \"measured_tx_per_sec\": {:.2}, \"error_percent\": {:.2}}}{comma}",
            row.label,
            engines.join(", "),
            row.forecast_tx_per_sec,
            row.measured_tx_per_sec,
            row.error_percent,
        );
    }
    s.push_str("    ]\n  }\n}\n");
    s
}
