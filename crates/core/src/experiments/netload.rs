//! The loaded-server experiment: the paper's serving scenario on real
//! sockets, in both serving architectures.
//!
//! Table 1 and Figure 2 time the SSL pipeline in-process; this experiment
//! closes the loop by standing up the real-socket serving layer on
//! loopback and driving it with the concurrent socket load generator from
//! `sslperf-websim` — once with the worker-pool server
//! ([`sslperf_net::TcpSslServer`], one blocking thread per connection)
//! and once with the event-loop server
//! ([`sslperf_net::EventLoopServer`], many non-blocking connections per
//! shard thread over the sans-io engine). The rendered report shows both
//! modes side by side: transaction throughput, handshake and transaction
//! latency percentiles, and the session-cache hit rate that §4.1's
//! re-negotiation optimisation depends on.

use crate::experiments::{pct, ExperimentError};
use crate::Context;
use sslperf_isasim::forecast::{rsa_kx_cycles, EngineConfig, ForecastModel};
use sslperf_net::{
    EngineProfile, EventLoopServer, FleetSnapshot, MetricsSnapshot, ServerFleet, ServerOptions,
    TcpSslServer,
};
use sslperf_rsa::RsaPrivateKey;
use sslperf_ssl::{Protocol, TicketKeyring};
use sslperf_websim::loadgen::{
    run_event_load, run_restart_load, run_socket_load, EventLoadOptions, EventLoadReport,
    RestartLoadOptions, RestartLoadReport, SocketLoadOptions, SocketLoadReport,
};
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Client- and server-side results for one serving mode.
#[derive(Debug)]
pub struct ModeLoad {
    /// Client-side load report (throughput and latency percentiles).
    pub report: SocketLoadReport,
    /// Session-cache lookups that found a cached session.
    pub cache_hits: u64,
    /// Session-cache lookups that found nothing.
    pub cache_misses: u64,
    /// Server-side handshakes that ran the full RSA key exchange.
    pub full_handshakes: u64,
    /// Server-side handshakes resumed from the cache.
    pub resumed_handshakes: u64,
}

impl ModeLoad {
    /// Cache hits as a share of all resumption-attempt lookups.
    #[must_use]
    pub fn cache_hit_percent(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 * 100.0 / total as f64
        }
    }
}

impl fmt::Display for ModeLoad {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.report)?;
        writeln!(
            f,
            "  session cache:       {} hits / {} misses ({}% hit rate)",
            self.cache_hits,
            self.cache_misses,
            pct(self.cache_hit_percent())
        )?;
        write!(
            f,
            "  server handshakes:   {} full, {} resumed",
            self.full_handshakes, self.resumed_handshakes
        )
    }
}

/// Results of one loaded-server run: both serving modes under the same
/// client workload.
#[derive(Debug)]
pub struct NetLoad {
    /// The worker-pool server (one blocking thread per connection).
    pub pool: ModeLoad,
    /// The event-loop server (non-blocking shards over the sans-io engine).
    pub event_loop: ModeLoad,
}

impl fmt::Display for NetLoad {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Loaded server (real sockets, shared session cache)")?;
        writeln!(f, "==================================================")?;
        writeln!(f, "[worker pool]")?;
        writeln!(f, "{}", self.pool)?;
        writeln!(f, "[event loop]")?;
        writeln!(f, "{}", self.event_loop)?;
        writeln!(
            f,
            "Paper context: §4.1 — session reuse skips the RSA private-key operation,\n\
             the single largest cost of the transaction (Tables 2–3). The two serving\n\
             modes pay the same per-transaction SSL cost; the event loop decouples\n\
             concurrent connections from thread count."
        )
    }
}

/// Drives one already-started server and collects its mode report.
fn drive(
    addr: std::net::SocketAddr,
    options: &SocketLoadOptions,
    cache: &sslperf_net::ShardedSessionCache,
    stats: &sslperf_net::ServerStats,
) -> Result<ModeLoad, ExperimentError> {
    let report = run_socket_load(addr, options)?;
    Ok(ModeLoad {
        report,
        cache_hits: cache.hits(),
        cache_misses: cache.misses(),
        full_handshakes: stats.full_handshakes(),
        resumed_handshakes: stats.resumed_handshakes(),
    })
}

/// Runs the loaded-server experiment: starts each serving mode in turn
/// sized from the context, drives it with the same concurrent resuming
/// client workload, and collects both client-side latency and server-side
/// cache statistics for a side-by-side comparison.
///
/// # Errors
///
/// Propagates key generation, serving and load-generation failures.
pub fn loaded_server(ctx: &Context) -> Result<NetLoad, ExperimentError> {
    let options = SocketLoadOptions {
        clients: 8,
        transactions_per_client: ctx.iterations().clamp(2, 16),
        warmup_per_client: 1,
        resume: true,
        file_size: 1024,
        suite: ctx.suite(),
        tickets: false,
    };

    let mut rng = ctx.rng("netload-server-key");
    let key = RsaPrivateKey::generate(ctx.key_bits(), &mut rng)?;
    let server = TcpSslServer::start(key, "www.sslperf.test", &ServerOptions::default())?;
    let pool = drive(server.local_addr(), &options, server.session_cache(), server.stats())?;
    server.shutdown();

    let mut rng = ctx.rng("netload-eventloop-key");
    let key = RsaPrivateKey::generate(ctx.key_bits(), &mut rng)?;
    let server = EventLoopServer::start(key, "www.sslperf.test", &ServerOptions::default())?;
    let event_loop = drive(server.local_addr(), &options, server.session_cache(), server.stats())?;
    server.shutdown();

    Ok(NetLoad { pool, event_loop })
}

/// One arm of the crypto-offload ablation: a serving configuration under
/// the same all-at-once handshake burst.
#[derive(Debug)]
pub struct OffloadArm {
    /// Human-readable configuration name.
    pub label: String,
    /// Crypto workers behind the event loop (`0` = decrypt inline).
    pub crypto_workers: usize,
    /// Most RSA jobs one crypto-pool batch may combine (1 = unbatched).
    pub batch_max: usize,
    /// Client-side results (throughput, handshake latency percentiles).
    pub report: EventLoadReport,
    /// RSA jobs the pool accepted (0 for the inline arms).
    pub crypto_jobs: u64,
    /// High-water mark of the job queue.
    pub crypto_queue_depth_max: u64,
    /// Decrypt batches the pool executed (solo jobs count as batches of 1).
    pub crypto_batches: u64,
    /// Jobs that ran inside a real batch (size >= 2).
    pub crypto_batched_jobs: u64,
}

/// Results of the crypto-offload ablation: worker-pool inline vs
/// event-loop inline vs event-loop with 1/2/4 parallel crypto engines.
#[derive(Debug)]
pub struct CryptoOffload {
    /// Concurrent connections each arm was hit with.
    pub connections: usize,
    /// The measured arms, in presentation order.
    pub arms: Vec<OffloadArm>,
}

fn ms(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

impl fmt::Display for CryptoOffload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Crypto-offload ablation ({} concurrent handshakes)", self.connections)?;
        writeln!(f, "=================================================")?;
        writeln!(
            f,
            "{:<28} {:>8} {:>9} {:>9} {:>9} {:>6} {:>6} {:>8}",
            "configuration", "tx/s", "p50 (ms)", "p95 (ms)", "p99 (ms)", "jobs", "depth", "batched"
        )?;
        for arm in &self.arms {
            let hs = &arm.report.handshake_latency;
            writeln!(
                f,
                "{:<28} {:>8.1} {:>9} {:>9} {:>9} {:>6} {:>6} {:>8}",
                arm.label,
                arm.report.transactions_per_second(),
                ms(hs.p50),
                ms(hs.p95),
                ms(hs.p99),
                arm.crypto_jobs,
                arm.crypto_queue_depth_max,
                arm.crypto_batched_jobs,
            )?;
        }
        write!(
            f,
            "Paper context: §5 — parallel crypto engines. One event-loop shard decrypting\n\
             inline serialises every handshake behind the ~90% RSA step (head-of-line\n\
             blocking); handing the decryption to a crypto worker pool lets the shard\n\
             keep sweeping, so tail latency drops as workers are added. The batched arm\n\
             additionally combines queued decryptions so per-job cost amortises."
        )
    }
}

/// Measures one serving configuration under the shared handshake burst.
fn offload_arm(
    ctx: &Context,
    label: String,
    crypto_workers: usize,
    batch_max: usize,
    event_loop: bool,
    options: &EventLoadOptions,
    connections: usize,
) -> Result<OffloadArm, ExperimentError> {
    let mut rng = ctx.rng(&label);
    let key = RsaPrivateKey::generate(ctx.key_bits(), &mut rng)?;
    if event_loop {
        let server_options = ServerOptions::builder()
            .crypto_workers(crypto_workers)
            .batch_max(batch_max)
            .build()
            .expect("ablation arms are valid configurations");
        let server = EventLoopServer::start(key, "www.sslperf.test", &server_options)?;
        let report = run_event_load(server.local_addr(), options)?;
        let stats = server.stats();
        let (jobs, depth) = (stats.crypto_jobs(), stats.crypto_queue_depth_max());
        let (batches, batched) = (stats.crypto_batches(), stats.crypto_batched_jobs());
        server.shutdown();
        Ok(OffloadArm {
            label,
            crypto_workers,
            batch_max,
            report,
            crypto_jobs: jobs,
            crypto_queue_depth_max: depth,
            crypto_batches: batches,
            crypto_batched_jobs: batched,
        })
    } else {
        // The pool server parks one blocking thread per held connection, so
        // it needs as many workers as the burst has sockets.
        let server_options = ServerOptions::builder()
            .workers(connections)
            .build()
            .expect("ablation arms are valid configurations");
        let server = TcpSslServer::start(key, "www.sslperf.test", &server_options)?;
        let report = run_event_load(server.local_addr(), options)?;
        server.shutdown();
        Ok(OffloadArm {
            label,
            crypto_workers,
            batch_max,
            report,
            crypto_jobs: 0,
            crypto_queue_depth_max: 0,
            crypto_batches: 0,
            crypto_batched_jobs: 0,
        })
    }
}

/// Runs the crypto-offload ablation: the same all-at-once concurrent
/// handshake burst against the worker-pool server (inline RSA), the
/// event-loop server decrypting inline, and the event-loop server backed
/// by 1, 2 and 4 crypto workers.
///
/// # Errors
///
/// Propagates key generation, serving and load-generation failures.
pub fn crypto_offload(ctx: &Context) -> Result<CryptoOffload, ExperimentError> {
    let connections = (ctx.iterations() * 4).clamp(8, 64);
    let options = EventLoadOptions {
        connections,
        file_size: 1024,
        protocol: Protocol::Ssl3,
        suite: ctx.suite(),
        hold_until_all_established: true,
        deadline: Duration::from_secs(60),
    };

    let mut arms = Vec::new();
    arms.push(offload_arm(
        ctx,
        format!("pool-inline ({connections} thr)"),
        0,
        1,
        false,
        &options,
        connections,
    )?);
    arms.push(offload_arm(ctx, "event-loop inline".into(), 0, 1, true, &options, connections)?);
    for workers in [1usize, 2, 4] {
        arms.push(offload_arm(
            ctx,
            format!("event-loop +{workers} crypto"),
            workers,
            1,
            true,
            &options,
            connections,
        )?);
    }
    // The batching arm: same pool as "+2 crypto", but the collector may
    // combine up to 4 queued decryptions into one amortized batch.
    arms.push(offload_arm(
        ctx,
        "event-loop +2 crypto b4".into(),
        2,
        4,
        true,
        &options,
        connections,
    )?);
    Ok(CryptoOffload { connections, arms })
}

/// One forecast configuration: the cycle model's prediction next to the
/// live measurement of the same engine fleet.
#[derive(Debug)]
pub struct ForecastArm {
    /// Human-readable configuration name.
    pub label: String,
    /// The engine profile names behind the live arm, in pool order.
    pub engines: Vec<String>,
    /// Transactions per second the calibrated cycle model predicts.
    pub forecast_tps: f64,
    /// Transactions per second the live event-loop server measured.
    pub measured_tps: f64,
}

impl ForecastArm {
    /// Forecast error relative to the measurement, in percent — positive
    /// when the model over-promised.
    #[must_use]
    pub fn error_percent(&self) -> f64 {
        (self.forecast_tps - self.measured_tps) * 100.0 / self.measured_tps
    }
}

/// Results of the engine-forecast experiment: the predicted-vs-measured
/// closure between the isasim cycle model and the live heterogeneous
/// crypto pool.
#[derive(Debug)]
pub struct EngineForecast {
    /// Concurrent connections each live arm was hit with.
    pub connections: usize,
    /// Simulated cycles per RSA key exchange from the cycle model.
    pub kx_cycles: f64,
    /// Measured wall milliseconds of one solo decrypt (the cycle anchor).
    pub solo_kx_ms: f64,
    /// Measured tx/s of the one-engine calibration baseline (held out of
    /// the forecast arms so their errors are earned, not built in).
    pub baseline_tps: f64,
    /// The forecast configurations, in presentation order.
    pub arms: Vec<ForecastArm>,
}

impl fmt::Display for EngineForecast {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Engine forecast ({} concurrent handshakes per arm)", self.connections)?;
        writeln!(f, "===============================================")?;
        writeln!(
            f,
            "calibration: {:.0} simulated cycles/kx, {:.2} ms solo decrypt, \
             baseline (1x general) {:.1} tx/s",
            self.kx_cycles, self.solo_kx_ms, self.baseline_tps
        )?;
        writeln!(
            f,
            "{:<24} {:>13} {:>13} {:>9}",
            "configuration", "forecast tx/s", "measured tx/s", "error"
        )?;
        for arm in &self.arms {
            writeln!(
                f,
                "{:<24} {:>13.1} {:>13.1} {:>8.1}%",
                arm.label,
                arm.forecast_tps,
                arm.measured_tps,
                arm.error_percent(),
            )?;
        }
        write!(
            f,
            "Paper context: the design-space discussion sizes crypto-engine configurations\n\
             on paper before building them. Here the isasim cycle model prices one RSA-CRT\n\
             key exchange (Table 9's bn_mul_add_words kernel times Montgomery operation\n\
             counts), a one-engine baseline anchors simulated cycles to wall time and\n\
             splits the transaction into its parallel and serial shares (Amdahl), and\n\
             each forecast is then graded against the same fleet measured live."
        )
    }
}

/// Measures one engine-fleet configuration live: starts the event-loop
/// server with the given heterogeneous profiles, drives the shared
/// handshake burst, and returns the measured throughput.
fn forecast_measured_tps(
    ctx: &Context,
    label: &str,
    profiles: Vec<EngineProfile>,
    options: &EventLoadOptions,
) -> Result<f64, ExperimentError> {
    let mut rng = ctx.rng(&format!("engine-forecast-{label}"));
    let key = RsaPrivateKey::generate(ctx.key_bits(), &mut rng)?;
    let server_options = ServerOptions::builder()
        .engine_profiles(Some(profiles))
        .build()
        .expect("forecast arms are valid configurations");
    let server = EventLoopServer::start(key, "www.sslperf.test", &server_options)?;
    let report = run_event_load(server.local_addr(), options)?;
    server.shutdown();
    Ok(report.transactions_per_second())
}

/// Runs the engine-forecast experiment: prices one RSA key exchange with
/// the isasim cycle model, anchors the model on a solo decrypt plus a
/// measured one-engine baseline, then forecasts three held-out engine
/// configurations and grades each against the live event-loop server
/// running the same fleet.
///
/// # Errors
///
/// Propagates key generation, serving and load-generation failures.
pub fn engine_forecast(ctx: &Context) -> Result<EngineForecast, ExperimentError> {
    let connections = (ctx.iterations() * 4).clamp(8, 64);
    let options = EventLoadOptions {
        connections,
        file_size: 1024,
        protocol: Protocol::Ssl3,
        suite: ctx.suite(),
        hold_until_all_established: true,
        deadline: Duration::from_secs(60),
    };

    // 1. Price the key exchange in simulated cycles.
    let kx_cycles = rsa_kx_cycles(ctx.key_bits());

    // 2. Anchor the cycle scale: wall time of a solo decrypt, averaged
    //    over a few repetitions to absorb scheduler noise.
    let mut rng = ctx.rng("engine-forecast-anchor");
    let key = RsaPrivateKey::generate(ctx.key_bits(), &mut rng)?;
    let cipher = key.public_key().encrypt_pkcs1(b"engine-forecast-anchor", &mut rng)?;
    key.decrypt_pkcs1(&cipher)?; // warm the caches before timing
    let reps = ctx.iterations().clamp(3, 10) as u32;
    let started = Instant::now();
    for _ in 0..reps {
        key.decrypt_pkcs1(&cipher)?;
    }
    let solo_kx_secs = started.elapsed().as_secs_f64() / f64::from(reps);

    // 3. Measure the calibration baseline: a single native engine. This
    //    configuration is held out of the forecast arms below, so their
    //    errors measure the model rather than echo the calibration.
    let baseline_tps =
        forecast_measured_tps(ctx, "baseline", vec![EngineProfile::general()], &options)?;
    let baseline = EngineConfig::uniform("1x general", 1, 1.0);
    let model = ForecastModel::calibrate(kx_cycles, solo_kx_secs, &baseline, baseline_tps);

    // 4. Forecast and measure the held-out configurations. The model sees
    //    only the RSA cost multipliers (this is an SSLv3 RSA-kx workload);
    //    the live pool runs the full profiles.
    let fleets: Vec<Vec<EngineProfile>> = vec![
        vec![EngineProfile::general(); 2],
        vec![
            EngineProfile::rsa_engine(),
            EngineProfile::general_slowed(3.0),
            EngineProfile::general_slowed(3.0),
        ],
        vec![EngineProfile::general(); 4],
    ];
    let labels = ["2x general", "rsa-engine + 2 slow", "4x general"];
    let mut arms = Vec::new();
    for (label, profiles) in labels.into_iter().zip(fleets) {
        let config = EngineConfig {
            label: label.to_string(),
            multipliers: profiles.iter().map(|p| p.rsa_cost).collect(),
        };
        let forecast_tps = model.forecast_tps(&config);
        let measured_tps = forecast_measured_tps(ctx, label, profiles.clone(), &options)?;
        arms.push(ForecastArm {
            label: label.to_string(),
            engines: profiles.into_iter().map(|p| p.name).collect(),
            forecast_tps,
            measured_tps,
        });
    }
    Ok(EngineForecast {
        connections,
        kx_cycles,
        solo_kx_ms: solo_kx_secs * 1e3,
        baseline_tps,
        arms,
    })
}

/// Results of the live-anatomy experiment: the paper's cost tables
/// measured from a real serving run instead of an in-process pipeline.
#[derive(Debug)]
pub struct LiveAnatomy {
    /// Server-side transactions the anatomy aggregates over.
    pub transactions: u64,
    /// The frozen metrics registry after the load run.
    pub snapshot: MetricsSnapshot,
}

impl fmt::Display for LiveAnatomy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Live anatomy (event-loop server, crypto offload, real sockets)")?;
        writeln!(f, "==============================================================")?;
        writeln!(f, "{}", self.snapshot.render())?;
        write!(
            f,
            "Paper context: Tables 1-3 were profiled post-hoc on a loaded Apache/mod_ssl\n\
             server; here the same anatomy is aggregated live, per connection, by the\n\
             serving layer's metrics registry — step latencies feed Table 2, the crypto\n\
             share feeds Table 3, and the per-transaction library split feeds Table 1."
        )
    }
}

/// Runs the live-anatomy experiment: starts the event-loop server with the
/// metrics registry and a small crypto pool, drives it with the resuming
/// socket workload, and freezes the registry into the paper-shaped tables.
///
/// # Errors
///
/// Propagates key generation, serving and load-generation failures.
pub fn live_anatomy(ctx: &Context) -> Result<LiveAnatomy, ExperimentError> {
    let options = SocketLoadOptions {
        clients: 4,
        transactions_per_client: ctx.iterations().clamp(2, 16),
        warmup_per_client: 1,
        resume: true,
        file_size: 1024,
        suite: ctx.suite(),
        tickets: false,
    };
    let mut rng = ctx.rng("netload-anatomy-key");
    let key = RsaPrivateKey::generate(ctx.key_bits(), &mut rng)?;
    let server_options = ServerOptions::builder()
        .crypto_workers(2)
        .metrics(true)
        .build()
        .expect("valid live-anatomy server options");
    let server = EventLoopServer::start(key, "www.sslperf.test", &server_options)?;
    run_socket_load(server.local_addr(), &options)?;
    let snapshot = server.metrics().expect("metrics enabled by options").snapshot();
    let transactions = server.stats().transactions();
    server.shutdown();
    Ok(LiveAnatomy { transactions, snapshot })
}

/// Results of the protocol-anatomy experiment: SSLv3 and TLS 1.3
/// handshake anatomy measured side by side from one dual-protocol server.
#[derive(Debug)]
pub struct ProtocolAnatomy {
    /// Client-side report for the SSLv3 arm.
    pub ssl3: EventLoadReport,
    /// Client-side report for the TLS 1.3 arm.
    pub tls13: EventLoadReport,
    /// The frozen metrics registry after both arms ran, holding one
    /// anatomy table per protocol.
    pub snapshot: MetricsSnapshot,
}

impl fmt::Display for ProtocolAnatomy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Protocol anatomy (one dual-protocol event-loop server, crypto offload)")?;
        writeln!(f, "======================================================================")?;
        writeln!(
            f,
            "{:<10} {:>11} {:>8} {:>9} {:>9} {:>9}",
            "protocol", "handshakes", "tx/s", "p50 (ms)", "p95 (ms)", "p99 (ms)"
        )?;
        for (protocol, report) in [(Protocol::Ssl3, &self.ssl3), (Protocol::Tls13, &self.tls13)] {
            let hs = &report.handshake_latency;
            writeln!(
                f,
                "{:<10} {:>11} {:>8.1} {:>9} {:>9} {:>9}",
                protocol.name(),
                report.transactions,
                report.transactions_per_second(),
                ms(hs.p50),
                ms(hs.p95),
                ms(hs.p99),
            )?;
        }
        writeln!(f, "{}", self.snapshot.render())?;
        write!(
            f,
            "Paper context: Table 2 profiled the ten steps of the SSLv3 handshake and found\n\
             the RSA private-key decryption dominating (~90% of handshake crypto). TLS 1.3\n\
             reshapes that anatomy: the client's RSA-encrypted premaster is replaced by an\n\
             ephemeral DHE agreement plus an RSA CertificateVerify signature, measured here\n\
             as its own ledger step riding the same crypto worker pool."
        )
    }
}

/// Runs the protocol-anatomy experiment: starts one event-loop server
/// accepting both protocols (metrics on, small crypto pool so the TLS 1.3
/// DHE exponentiation is offloaded like SSLv3's RSA decryption), drives it
/// with an SSLv3 burst and then a TLS 1.3 burst, and freezes the registry
/// into side-by-side per-protocol anatomy tables.
///
/// # Errors
///
/// Propagates key generation, serving and load-generation failures.
pub fn protocol_anatomy(ctx: &Context) -> Result<ProtocolAnatomy, ExperimentError> {
    let connections = (ctx.iterations() * 2).clamp(4, 16);
    let mut rng = ctx.rng("netload-protocol-anatomy-key");
    let key = RsaPrivateKey::generate(ctx.key_bits(), &mut rng)?;
    let server_options = ServerOptions::builder()
        .crypto_workers(2)
        .metrics(true)
        .build()
        .expect("valid protocol-anatomy server options");
    let server = EventLoopServer::start(key, "www.sslperf.test", &server_options)?;
    let arm = |protocol| {
        let options = EventLoadOptions {
            connections,
            file_size: 1024,
            protocol,
            suite: ctx.suite(),
            hold_until_all_established: true,
            deadline: Duration::from_secs(60),
        };
        run_event_load(server.local_addr(), &options)
    };
    let ssl3 = arm(Protocol::Ssl3)?;
    let tls13 = arm(Protocol::Tls13)?;
    let snapshot = server.metrics().expect("metrics enabled by options").snapshot();
    server.shutdown();
    Ok(ProtocolAnatomy { ssl3, tls13, snapshot })
}

/// One arm of the restart-survival experiment: a resumption mechanism
/// put through a full-fleet restart.
#[derive(Debug)]
pub struct RestartArm {
    /// Human-readable mechanism name ("session tickets", "id cache").
    pub label: String,
    /// Client-side restart-survival report.
    pub report: RestartLoadReport,
    /// Fleet-wide server counters, killed instances included.
    pub fleet: FleetSnapshot,
}

/// Results of the restart-survival experiment: stateless-ticket
/// resumption vs the in-memory id cache across a full-fleet restart.
#[derive(Debug)]
pub struct RestartSurvival {
    /// Shared-nothing instances behind the one address.
    pub instances: usize,
    /// Client threads (one session each) in both arms.
    pub clients: usize,
    /// The encrypted-ticket arm: instances share only the ticket keys.
    pub ticket: RestartArm,
    /// The id-cache arm: sessions live in per-instance memory.
    pub id_cache: RestartArm,
}

impl fmt::Display for RestartSurvival {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Restart survival ({}-instance shared-nothing fleet, every instance restarted mid-load)",
            self.instances
        )?;
        writeln!(f, "=========================================================")?;
        writeln!(
            f,
            "{:<18} {:>11} {:>9} {:>9} {:>7} {:>8} {:>9}",
            "resumption via", "established", "resumed", "hit rate", "failed", "issued", "accepted"
        )?;
        for arm in [&self.ticket, &self.id_cache] {
            writeln!(
                f,
                "{:<18} {:>11} {:>5}/{:<3} {:>8}% {:>7} {:>8} {:>9}",
                arm.label,
                arm.report.established,
                arm.report.resumed,
                arm.report.attempted,
                pct(arm.report.hit_rate()),
                arm.report.failed,
                arm.fleet.tickets_issued,
                arm.fleet.tickets_accepted,
            )?;
        }
        write!(
            f,
            "Paper context: §4.1 — session reuse skips the RSA private-key operation, but\n\
             an in-memory session cache is only as durable as the process that owns it.\n\
             Sealing the session state into an encrypted client-held ticket keeps the\n\
             optimisation alive across process boundaries: any instance sharing the\n\
             ticket keys resumes any other instance's sessions, restarts included."
        )
    }
}

/// Measures one resumption mechanism across a full-fleet restart: starts
/// an N-instance fleet, lets every client establish a session, kills and
/// restarts every instance, and reconnects every client.
fn restart_arm(
    ctx: &Context,
    label: &str,
    instances: usize,
    clients: usize,
    keyring: Option<Arc<TicketKeyring>>,
) -> Result<RestartArm, ExperimentError> {
    let mut rng = ctx.rng(&format!("restart-survival-{label}"));
    let key = RsaPrivateKey::generate(ctx.key_bits(), &mut rng)?;
    let server_options = ServerOptions::builder()
        .shards(1)
        .ticket_keys(keyring.clone())
        .build()
        .expect("valid restart-survival server options");
    let mut fleet = ServerFleet::start(key, "www.sslperf.test", instances, &server_options)?;
    let addr = fleet.local_addr();
    let options = RestartLoadOptions {
        clients,
        tickets: keyring.is_some(),
        file_size: 1024,
        suite: ctx.suite(),
    };
    let report = run_restart_load(addr, &options, || {
        for index in 0..instances {
            fleet.kill(index);
            fleet.restart(index).expect("restart reuses the validated server configuration");
        }
    })?;
    let snapshot = fleet.aggregated();
    fleet.shutdown();
    Ok(RestartArm { label: label.to_string(), report, fleet: snapshot })
}

/// Runs the restart-survival experiment: the same full-fleet restart
/// under load, once with stateless session tickets and once with the
/// per-instance id cache. The ticket arm's hit rate survives the restart
/// (the credentials live on the client); the id-cache arm's drops to
/// zero (the credentials died with the instances' memory).
///
/// # Errors
///
/// Propagates key generation, serving and load-generation failures.
pub fn restart_survival(ctx: &Context) -> Result<RestartSurvival, ExperimentError> {
    let instances = 2;
    let clients = (ctx.iterations() * 2).clamp(4, 16);
    let keyring = Arc::new(TicketKeyring::new(b"restart-survival-ticket-keys"));
    let ticket = restart_arm(ctx, "session tickets", instances, clients, Some(keyring))?;
    let id_cache = restart_arm(ctx, "id cache", instances, clients, None)?;
    Ok(RestartSurvival { instances, clients, ticket, id_cache })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_ctx::ctx;
    use sslperf_websim::loadgen::run_event_load_disrupted;

    #[test]
    fn engine_forecast_grades_the_cycle_model() {
        let ef = engine_forecast(ctx()).expect("engine forecast");
        assert_eq!(ef.arms.len(), 3, "three held-out configurations");
        assert!(ef.kx_cycles > 0.0, "cycle model priced the key exchange");
        assert!(ef.solo_kx_ms > 0.0, "solo decrypt anchor measured");
        assert!(ef.baseline_tps > 0.0, "baseline measured");
        for arm in &ef.arms {
            assert!(arm.forecast_tps > 0.0, "{}: model predicts", arm.label);
            assert!(arm.measured_tps > 0.0, "{}: live run measures", arm.label);
            assert!(arm.error_percent().is_finite(), "{}: error computes", arm.label);
            assert!(!arm.engines.is_empty(), "{}: engine names recorded", arm.label);
        }
        let het = ef.arms.iter().find(|a| a.label == "rsa-engine + 2 slow");
        let het = het.expect("heterogeneous arm present");
        assert_eq!(het.engines[0], "rsa-engine", "dedicated engine listed first");
        let rendered = ef.to_string();
        assert!(rendered.contains("forecast tx/s"), "{rendered}");
        assert!(rendered.contains("measured tx/s"), "{rendered}");
        assert!(rendered.contains("error"), "{rendered}");
        assert!(rendered.contains("calibration"), "{rendered}");
    }

    #[test]
    fn killed_preferred_engine_keeps_live_serving_alive() {
        let ctx = ctx();
        let connections = 8;
        let options = EventLoadOptions {
            connections,
            file_size: 1024,
            protocol: Protocol::Ssl3,
            suite: ctx.suite(),
            hold_until_all_established: true,
            deadline: Duration::from_secs(60),
        };
        let mut rng = ctx.rng("kill-engine-live");
        let key = RsaPrivateKey::generate(ctx.key_bits(), &mut rng).expect("server key");
        // The native engine is preferred for every job class; the slowed
        // core exists to inherit the load when the preferred one dies.
        let server_options = ServerOptions::builder()
            .engine_profiles(Some(vec![
                EngineProfile::general(),
                EngineProfile::general_slowed(4.0),
            ]))
            .build()
            .expect("valid kill-engine server options");
        let server =
            EventLoopServer::start(key, "www.sslperf.test", &server_options).expect("server");
        let report =
            run_event_load_disrupted(server.local_addr(), &options, connections / 2, || {
                assert!(server.kill_crypto_engine(0), "preferred engine index exists");
            })
            .expect("fleet survives losing its preferred engine");
        assert_eq!(report.transactions, connections, "zero handshake failures");
        let stats = server.stats();
        assert_eq!(stats.crypto_jobs(), connections as u64, "every handshake offloaded");
        server.shutdown();
    }

    #[test]
    fn loaded_server_resumes_and_reports() {
        let nl = loaded_server(ctx()).expect("loaded server");
        for (mode, load) in [("pool", &nl.pool), ("event loop", &nl.event_loop)] {
            assert!(load.report.transactions > 0, "{mode}: measured transactions");
            assert!(load.cache_hits > 0, "{mode}: resumption must hit the shared cache");
            assert!(load.resumed_handshakes > 0, "{mode}: server must see resumed handshakes");
        }
        let rendered = nl.to_string();
        assert!(rendered.contains("transactions/s"), "throughput line: {rendered}");
        assert!(rendered.contains("p50"), "percentile lines: {rendered}");
        assert!(rendered.contains("session cache"), "cache line: {rendered}");
        assert!(rendered.contains("[worker pool]"), "pool section: {rendered}");
        assert!(rendered.contains("[event loop]"), "event-loop section: {rendered}");
    }

    #[test]
    fn live_anatomy_measures_full_and_resumed_handshakes() {
        let la = live_anatomy(ctx()).expect("live anatomy");
        assert!(la.transactions > 0, "measured transactions");
        let snap = &la.snapshot;
        assert!(snap.full_handshake.count() > 0, "full handshakes observed");
        assert!(snap.resumed_handshake.count() > 0, "resumed handshakes observed");
        for step in &snap.steps {
            assert!(step.latency.sum() > 0, "step {} has latency", step.name);
        }
        assert!(
            snap.handshake_crypto_percent() > 50.0,
            "crypto dominates the full handshake: {:.1}%",
            snap.handshake_crypto_percent()
        );
        let rendered = la.to_string();
        assert!(rendered.contains("Live Table 2"), "{rendered}");
        assert!(rendered.contains("aggregated live"), "{rendered}");
    }

    #[test]
    fn restart_survival_contrasts_tickets_with_the_id_cache() {
        let rs = restart_survival(ctx()).expect("restart survival");
        let ticket = &rs.ticket.report;
        assert_eq!(ticket.established, rs.clients, "every ticket client establishes");
        assert!(
            ticket.hit_rate() >= 90.0,
            "ticket resumption survives the fleet restart: {:.1}%",
            ticket.hit_rate()
        );
        assert_eq!(ticket.failed, 0, "no ticket client fails outright");
        assert_eq!(
            rs.ticket.fleet.tickets_accepted as usize, ticket.resumed,
            "every resumption went through a ticket"
        );
        assert!(
            rs.ticket.fleet.tickets_issued >= rs.clients as u64,
            "every full handshake issued a ticket"
        );
        let id = &rs.id_cache.report;
        assert_eq!(id.established, rs.clients, "every id-cache client establishes");
        assert_eq!(id.resumed, 0, "id-cache sessions die with the instances");
        assert_eq!(rs.id_cache.fleet.tickets_issued, 0, "no keyring, no tickets");
        assert_eq!(rs.ticket.fleet.retired_instances, rs.instances, "all instances restarted");
        let rendered = rs.to_string();
        assert!(rendered.contains("Restart survival"), "{rendered}");
        assert!(rendered.contains("session tickets"), "{rendered}");
        assert!(rendered.contains("id cache"), "{rendered}");
        assert!(rendered.contains("hit rate"), "{rendered}");
    }

    #[test]
    fn crypto_offload_runs_all_arms() {
        let co = crypto_offload(ctx()).expect("crypto offload ablation");
        assert_eq!(co.arms.len(), 6, "pool-inline, el-inline, +1/+2/+4 workers, batched");
        for arm in &co.arms {
            assert_eq!(
                arm.report.transactions, co.connections,
                "{}: every connection transacts",
                arm.label
            );
            if arm.crypto_workers == 0 {
                assert_eq!(arm.crypto_jobs, 0, "{}: inline arms submit no jobs", arm.label);
            } else {
                assert_eq!(
                    arm.crypto_jobs, co.connections as u64,
                    "{}: one RSA job per full handshake",
                    arm.label
                );
                assert!(arm.crypto_queue_depth_max >= 1, "{}: queue was used", arm.label);
                assert!(arm.crypto_batches >= 1, "{}: pool executed batches", arm.label);
            }
            if arm.batch_max == 1 {
                assert_eq!(
                    arm.crypto_batched_jobs, 0,
                    "{}: unbatched arms never combine jobs",
                    arm.label
                );
            }
        }
        let batched = co.arms.last().expect("batched arm present");
        assert_eq!(batched.batch_max, 4, "last arm batches up to 4");
        let rendered = co.to_string();
        assert!(rendered.contains("configuration"), "table header: {rendered}");
        assert!(rendered.contains("event-loop +2 crypto"), "offload arm row: {rendered}");
        assert!(rendered.contains("event-loop +2 crypto b4"), "batched arm row: {rendered}");
        assert!(rendered.contains("parallel crypto engines"), "paper context: {rendered}");
    }
}
