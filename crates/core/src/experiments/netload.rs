//! The loaded-server experiment: the paper's serving scenario on real
//! sockets, in both serving architectures.
//!
//! Table 1 and Figure 2 time the SSL pipeline in-process; this experiment
//! closes the loop by standing up the real-socket serving layer on
//! loopback and driving it with the concurrent socket load generator from
//! `sslperf-websim` — once with the worker-pool server
//! ([`sslperf_net::TcpSslServer`], one blocking thread per connection)
//! and once with the event-loop server
//! ([`sslperf_net::EventLoopServer`], many non-blocking connections per
//! shard thread over the sans-io engine). The rendered report shows both
//! modes side by side: transaction throughput, handshake and transaction
//! latency percentiles, and the session-cache hit rate that §4.1's
//! re-negotiation optimisation depends on.

use crate::experiments::{pct, ExperimentError};
use crate::Context;
use sslperf_net::{EventLoopServer, ServerOptions, TcpSslServer};
use sslperf_rsa::RsaPrivateKey;
use sslperf_websim::loadgen::{run_socket_load, SocketLoadOptions, SocketLoadReport};
use std::fmt;

/// Client- and server-side results for one serving mode.
#[derive(Debug)]
pub struct ModeLoad {
    /// Client-side load report (throughput and latency percentiles).
    pub report: SocketLoadReport,
    /// Session-cache lookups that found a cached session.
    pub cache_hits: u64,
    /// Session-cache lookups that found nothing.
    pub cache_misses: u64,
    /// Server-side handshakes that ran the full RSA key exchange.
    pub full_handshakes: u64,
    /// Server-side handshakes resumed from the cache.
    pub resumed_handshakes: u64,
}

impl ModeLoad {
    /// Cache hits as a share of all resumption-attempt lookups.
    #[must_use]
    pub fn cache_hit_percent(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 * 100.0 / total as f64
        }
    }
}

impl fmt::Display for ModeLoad {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.report)?;
        writeln!(
            f,
            "  session cache:       {} hits / {} misses ({}% hit rate)",
            self.cache_hits,
            self.cache_misses,
            pct(self.cache_hit_percent())
        )?;
        write!(
            f,
            "  server handshakes:   {} full, {} resumed",
            self.full_handshakes, self.resumed_handshakes
        )
    }
}

/// Results of one loaded-server run: both serving modes under the same
/// client workload.
#[derive(Debug)]
pub struct NetLoad {
    /// The worker-pool server (one blocking thread per connection).
    pub pool: ModeLoad,
    /// The event-loop server (non-blocking shards over the sans-io engine).
    pub event_loop: ModeLoad,
}

impl fmt::Display for NetLoad {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Loaded server (real sockets, shared session cache)")?;
        writeln!(f, "==================================================")?;
        writeln!(f, "[worker pool]")?;
        writeln!(f, "{}", self.pool)?;
        writeln!(f, "[event loop]")?;
        writeln!(f, "{}", self.event_loop)?;
        writeln!(
            f,
            "Paper context: §4.1 — session reuse skips the RSA private-key operation,\n\
             the single largest cost of the transaction (Tables 2–3). The two serving\n\
             modes pay the same per-transaction SSL cost; the event loop decouples\n\
             concurrent connections from thread count."
        )
    }
}

/// Drives one already-started server and collects its mode report.
fn drive(
    addr: std::net::SocketAddr,
    options: &SocketLoadOptions,
    cache: &sslperf_net::ShardedSessionCache,
    stats: &sslperf_net::ServerStats,
) -> Result<ModeLoad, ExperimentError> {
    let report = run_socket_load(addr, options)?;
    Ok(ModeLoad {
        report,
        cache_hits: cache.hits(),
        cache_misses: cache.misses(),
        full_handshakes: stats.full_handshakes(),
        resumed_handshakes: stats.resumed_handshakes(),
    })
}

/// Runs the loaded-server experiment: starts each serving mode in turn
/// sized from the context, drives it with the same concurrent resuming
/// client workload, and collects both client-side latency and server-side
/// cache statistics for a side-by-side comparison.
///
/// # Errors
///
/// Propagates key generation, serving and load-generation failures.
pub fn loaded_server(ctx: &Context) -> Result<NetLoad, ExperimentError> {
    let options = SocketLoadOptions {
        clients: 8,
        transactions_per_client: ctx.iterations().clamp(2, 16),
        warmup_per_client: 1,
        resume: true,
        file_size: 1024,
        suite: ctx.suite(),
    };

    let mut rng = ctx.rng("netload-server-key");
    let key = RsaPrivateKey::generate(ctx.key_bits(), &mut rng)?;
    let server = TcpSslServer::start(key, "www.sslperf.test", &ServerOptions::default())?;
    let pool = drive(server.local_addr(), &options, server.session_cache(), server.stats())?;
    server.shutdown();

    let mut rng = ctx.rng("netload-eventloop-key");
    let key = RsaPrivateKey::generate(ctx.key_bits(), &mut rng)?;
    let server = EventLoopServer::start(key, "www.sslperf.test", &ServerOptions::default())?;
    let event_loop = drive(server.local_addr(), &options, server.session_cache(), server.stats())?;
    server.shutdown();

    Ok(NetLoad { pool, event_loop })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_ctx::ctx;

    #[test]
    fn loaded_server_resumes_and_reports() {
        let nl = loaded_server(ctx()).expect("loaded server");
        for (mode, load) in [("pool", &nl.pool), ("event loop", &nl.event_loop)] {
            assert!(load.report.transactions > 0, "{mode}: measured transactions");
            assert!(load.cache_hits > 0, "{mode}: resumption must hit the shared cache");
            assert!(load.resumed_handshakes > 0, "{mode}: server must see resumed handshakes");
        }
        let rendered = nl.to_string();
        assert!(rendered.contains("transactions/s"), "throughput line: {rendered}");
        assert!(rendered.contains("p50"), "percentile lines: {rendered}");
        assert!(rendered.contains("session cache"), "cache line: {rendered}");
        assert!(rendered.contains("[worker pool]"), "pool section: {rendered}");
        assert!(rendered.contains("[event loop]"), "event-loop section: {rendered}");
    }
}
