//! The loaded-server experiment: the paper's serving scenario on real
//! sockets.
//!
//! Table 1 and Figure 2 time the SSL pipeline in-process; this experiment
//! closes the loop by standing up [`sslperf_net::TcpSslServer`] (worker
//! pool plus sharded session cache) on a loopback socket and driving it
//! with the concurrent socket load generator from `sslperf-websim`. The
//! rendered report shows transaction throughput, handshake and
//! transaction latency percentiles, and the session-cache hit rate that
//! §4.1's re-negotiation optimisation depends on.

use crate::experiments::{pct, ExperimentError};
use crate::Context;
use sslperf_net::{ServerOptions, TcpSslServer};
use sslperf_rsa::RsaPrivateKey;
use sslperf_websim::loadgen::{run_socket_load, SocketLoadOptions, SocketLoadReport};
use std::fmt;

/// Results of one loaded-server run.
#[derive(Debug)]
pub struct NetLoad {
    /// Client-side load report (throughput and latency percentiles).
    pub report: SocketLoadReport,
    /// Session-cache lookups that found a cached session.
    pub cache_hits: u64,
    /// Session-cache lookups that found nothing.
    pub cache_misses: u64,
    /// Server-side handshakes that ran the full RSA key exchange.
    pub full_handshakes: u64,
    /// Server-side handshakes resumed from the cache.
    pub resumed_handshakes: u64,
}

impl NetLoad {
    /// Cache hits as a share of all resumption-attempt lookups.
    #[must_use]
    pub fn cache_hit_percent(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 * 100.0 / total as f64
        }
    }
}

impl fmt::Display for NetLoad {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Loaded server (real sockets, worker pool, shared session cache)")?;
        writeln!(f, "===============================================================")?;
        writeln!(f, "{}", self.report)?;
        writeln!(
            f,
            "  session cache:       {} hits / {} misses ({}% hit rate)",
            self.cache_hits,
            self.cache_misses,
            pct(self.cache_hit_percent())
        )?;
        writeln!(
            f,
            "  server handshakes:   {} full, {} resumed",
            self.full_handshakes, self.resumed_handshakes
        )?;
        writeln!(
            f,
            "Paper context: §4.1 — session reuse skips the RSA private-key operation,\n\
             the single largest cost of the transaction (Tables 2–3)."
        )
    }
}

/// Runs the loaded-server experiment: starts a TCP server sized from the
/// context, drives it with concurrent resuming clients, and collects both
/// client-side latency and server-side cache statistics.
///
/// # Errors
///
/// Propagates key generation, serving and load-generation failures.
pub fn loaded_server(ctx: &Context) -> Result<NetLoad, ExperimentError> {
    let mut rng = ctx.rng("netload-server-key");
    let key = RsaPrivateKey::generate(ctx.key_bits(), &mut rng)?;
    let server = TcpSslServer::start(key, "www.sslperf.test", &ServerOptions::default())?;

    let options = SocketLoadOptions {
        clients: 8,
        transactions_per_client: ctx.iterations().clamp(2, 16),
        warmup_per_client: 1,
        resume: true,
        file_size: 1024,
        suite: ctx.suite(),
    };
    let report = run_socket_load(server.local_addr(), &options)?;

    let cache = server.session_cache();
    let (cache_hits, cache_misses) = (cache.hits(), cache.misses());
    let stats = server.stats();
    let (full, resumed) = (stats.full_handshakes(), stats.resumed_handshakes());
    server.shutdown();

    Ok(NetLoad {
        report,
        cache_hits,
        cache_misses,
        full_handshakes: full,
        resumed_handshakes: resumed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_ctx::ctx;

    #[test]
    fn loaded_server_resumes_and_reports() {
        let nl = loaded_server(ctx()).expect("loaded server");
        assert!(nl.report.transactions > 0, "measured transactions");
        assert!(nl.cache_hits > 0, "resumption must hit the shared cache");
        assert!(nl.resumed_handshakes > 0, "server must see resumed handshakes");
        let rendered = nl.to_string();
        assert!(rendered.contains("transactions/s"), "throughput line: {rendered}");
        assert!(rendered.contains("p50"), "percentile lines: {rendered}");
        assert!(rendered.contains("session cache"), "cache line: {rendered}");
    }
}
