//! Table 10: MD5 and SHA-1 phase breakdown.

use crate::experiments::pct;
use crate::Context;
use sslperf_hashes::{Md5, Sha1};
use sslperf_profile::{black_box, measure_min, Align, Table};
use std::fmt;

/// Input size used by the paper for Table 10.
pub const INPUT_LEN: usize = 1024;

/// MD5/SHA-1 Init/Update/Final breakdown over a 1024-byte input.
#[derive(Debug)]
pub struct Table10 {
    /// `(phase, md5 cycles, sha1 cycles)`.
    pub parts: Vec<(&'static str, f64, f64)>,
}

impl Table10 {
    fn total(&self, sha: bool) -> f64 {
        self.parts.iter().map(|(_, m, s)| if sha { *s } else { *m }).sum()
    }

    /// The update phase's share for MD5 (paper: 90.9%).
    #[must_use]
    pub fn md5_update_percent(&self) -> f64 {
        self.parts
            .iter()
            .find(|(n, _, _)| *n == "Update")
            .map_or(0.0, |(_, m, _)| m * 100.0 / self.total(false))
    }
}

impl fmt::Display for Table10 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = Table::new(&format!(
            "Table 10. Execution time breakdown for MD5 and SHA-1 ({INPUT_LEN}-byte input)"
        ));
        t.columns(&[
            ("Functionality", Align::Left),
            ("MD5 cycles", Align::Right),
            ("MD5 %", Align::Right),
            ("SHA-1 cycles", Align::Right),
            ("SHA-1 %", Align::Right),
        ]);
        let (tm, ts) = (self.total(false), self.total(true));
        for (name, md5, sha) in &self.parts {
            t.row(&[
                *name,
                &format!("{md5:.0}"),
                &pct(md5 * 100.0 / tm),
                &format!("{sha:.0}"),
                &pct(sha * 100.0 / ts),
            ]);
        }
        t.row(&["Total", &format!("{tm:.0}"), "100", &format!("{ts:.0}"), "100"]);
        writeln!(f, "{t}")?;
        writeln!(f, "Paper anchors: Update 90.9% (MD5) and 92.1% (SHA-1); SHA-1 ≈ 1.6× MD5.")
    }
}

/// Runs the Table 10 experiment, timing Init, Update and Final separately.
#[must_use]
pub fn table10(ctx: &Context) -> Table10 {
    let s = (ctx.iterations() as u32).clamp(2, 10);
    let iters = 500;
    let data = vec![0x6bu8; INPUT_LEN];

    let md5_init = measure_min(s, iters, || {
        black_box(Md5::new());
    });
    let md5_update = measure_min(s, iters, || {
        let mut h = Md5::new();
        h.update(black_box(&data));
        black_box(&h);
    })
    .saturating_sub(md5_init);
    let md5_final = measure_min(s, iters, || {
        let mut h = Md5::new();
        h.update(black_box(&data));
        black_box(h.finalize());
    })
    .saturating_sub(md5_init + md5_update);

    let sha_init = measure_min(s, iters, || {
        black_box(Sha1::new());
    });
    let sha_update = measure_min(s, iters, || {
        let mut h = Sha1::new();
        h.update(black_box(&data));
        black_box(&h);
    })
    .saturating_sub(sha_init);
    let sha_final = measure_min(s, iters, || {
        let mut h = Sha1::new();
        h.update(black_box(&data));
        black_box(h.finalize());
    })
    .saturating_sub(sha_init + sha_update);

    Table10 {
        parts: vec![
            ("Init", md5_init.get() as f64, sha_init.get() as f64),
            ("Update", md5_update.get() as f64, sha_update.get() as f64),
            ("Final", md5_final.get() as f64, sha_final.get() as f64),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_ctx::ctx;

    #[test]
    fn update_dominates_both_hashes() {
        let _serial = crate::test_ctx::timing_lock();
        assert!(
            crate::test_ctx::eventually(3, || {
                let t10 = table10(ctx());
                let sha_update = t10.parts[1].2;
                let sha_total = t10.total(true);
                t10.md5_update_percent() > 60.0 && sha_update / sha_total > 0.6
            }),
            "the Update phase must dominate both hashes"
        );
    }

    #[test]
    fn sha1_costs_more_than_md5() {
        let _serial = crate::test_ctx::timing_lock();
        assert!(
            crate::test_ctx::eventually(3, || {
                let t10 = table10(ctx());
                t10.total(true) > t10.total(false)
            }),
            "SHA-1 must cost more than MD5 over a 1 KB input"
        );
    }

    #[test]
    fn renders_all_phases() {
        let _serial = crate::test_ctx::timing_lock();
        let rendered = table10(ctx()).to_string();
        for phase in ["Init", "Update", "Final", "Total"] {
            assert!(rendered.contains(phase), "missing {phase}");
        }
    }
}
