//! The paper's tables and figures as runnable experiments.
//!
//! Each function takes a [`crate::Context`], performs real
//! measurements on this workspace's substrates, and returns a typed result
//! that renders (via `Display`) as the corresponding paper table, with a
//! column of the paper's published numbers alongside for comparison.

pub mod arch;
pub mod handshake;
pub mod hashes;
pub mod rsa;
pub mod symmetric;
pub mod webserver;

use crate::Context;
use std::fmt;

/// Formats a percentage with one decimal, the paper's style.
pub(crate) fn pct(v: f64) -> String {
    format!("{v:.1}")
}

/// Formats kilocycles with sensible precision.
pub(crate) fn kcycles(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.0}")
    } else if v >= 1.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

/// A full run of every experiment, rendered in paper order.
#[derive(Debug)]
pub struct FullReport {
    sections: Vec<String>,
}

impl FullReport {
    /// The rendered sections in paper order.
    #[must_use]
    pub fn sections(&self) -> &[String] {
        &self.sections
    }
}

impl fmt::Display for FullReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for s in &self.sections {
            writeln!(f, "{s}")?;
        }
        Ok(())
    }
}

/// Runs every experiment in paper order. Expect minutes at
/// [`Context::paper`] settings, seconds at [`Context::quick`].
#[must_use]
pub fn run_all(ctx: &Context) -> FullReport {
    let sections = vec![
        webserver::table1(ctx).to_string(),
        webserver::fig2(ctx).to_string(),
        handshake::table2(ctx).to_string(),
        handshake::table3(ctx).to_string(),
        symmetric::fig3(ctx).to_string(),
        symmetric::table4().to_string(),
        symmetric::table5(ctx).to_string(),
        symmetric::table6(ctx).to_string(),
        rsa::table7(ctx).to_string(),
        rsa::table8(ctx).to_string(),
        arch::table9().to_string(),
        hashes::table10(ctx).to_string(),
        arch::table11(ctx).to_string(),
        arch::table12(ctx).to_string(),
        webserver::suite_sweep(ctx).to_string(),
    ];
    FullReport { sections }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(90.44), "90.4");
        assert_eq!(kcycles(18941.2), "18941");
        assert_eq!(kcycles(3.44), "3.4");
        assert_eq!(kcycles(0.119), "0.12");
    }
}
