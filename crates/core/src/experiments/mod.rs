//! The paper's tables and figures as runnable experiments.
//!
//! Each function takes a [`crate::Context`], performs real
//! measurements on this workspace's substrates, and returns a typed result
//! that renders (via `Display`) as the corresponding paper table, with a
//! column of the paper's published numbers alongside for comparison.
//!
//! Experiments are fallible: anything that can break — key generation,
//! handshakes, cipher construction, socket serving — surfaces as an
//! [`ExperimentError`] instead of a panic. [`ExperimentId`] names every
//! experiment so callers can select a subset, and [`run_all_reports`]
//! produces the whole paper in order.

pub mod arch;
pub mod handshake;
pub mod hashes;
pub mod netload;
pub mod rsa;
pub mod symmetric;
pub mod webserver;

use crate::Context;
use sslperf_bignum::BnError;
use sslperf_ciphers::CipherError;
use sslperf_rsa::RsaError;
use sslperf_ssl::SslError;
use std::fmt;

/// Why an experiment could not produce its table or figure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExperimentError {
    /// An SSL handshake or record-layer operation failed.
    Ssl(SslError),
    /// An RSA operation failed.
    Rsa(RsaError),
    /// A symmetric cipher rejected its parameters.
    Cipher(CipherError),
    /// A bignum kernel rejected its operands.
    Bignum(BnError),
}

impl fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExperimentError::Ssl(e) => write!(f, "ssl: {e}"),
            ExperimentError::Rsa(e) => write!(f, "rsa: {e}"),
            ExperimentError::Cipher(e) => write!(f, "cipher: {e}"),
            ExperimentError::Bignum(e) => write!(f, "bignum: {e}"),
        }
    }
}

impl std::error::Error for ExperimentError {}

impl From<SslError> for ExperimentError {
    fn from(e: SslError) -> Self {
        ExperimentError::Ssl(e)
    }
}

impl From<RsaError> for ExperimentError {
    fn from(e: RsaError) -> Self {
        ExperimentError::Rsa(e)
    }
}

impl From<CipherError> for ExperimentError {
    fn from(e: CipherError) -> Self {
        ExperimentError::Cipher(e)
    }
}

impl From<BnError> for ExperimentError {
    fn from(e: BnError) -> Self {
        ExperimentError::Bignum(e)
    }
}

/// Names one experiment of the paper reproduction.
///
/// The order of [`ExperimentId::ALL`] is the paper's presentation order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExperimentId {
    /// Table 1: SSL processing share of the web-serving transaction.
    Table1,
    /// Figure 2: crypto cost categories across file sizes.
    Fig2,
    /// Table 2: handshake step timing anatomy.
    Table2,
    /// Table 3: public-key share of the handshake.
    Table3,
    /// Figure 3: key-setup share of encryption vs data size.
    Fig3,
    /// Table 4: symmetric cipher data structures (static).
    Table4,
    /// Table 5: AES block-operation breakdown.
    Table5,
    /// Table 6: DES/3DES block-operation breakdown.
    Table6,
    /// Table 7: RSA decryption step breakdown.
    Table7,
    /// Table 8: RSA word-kernel cost accounting.
    Table8,
    /// Table 9: the `bn_mul_add_words` instruction listing (static).
    Table9,
    /// Table 10: MD5/SHA-1 phase breakdown.
    Table10,
    /// Table 11: CPI, path length and throughput per algorithm.
    Table11,
    /// Table 12: top-ten dynamic instructions per algorithm.
    Table12,
    /// Cipher-suite sweep of the serving experiment.
    SuiteSweep,
    /// Loaded server over real sockets with a worker pool and shared
    /// session cache.
    LoadedServer,
    /// Crypto-offload ablation: inline RSA vs the event-loop crypto
    /// worker pool at 1/2/4 workers (§5 "parallel crypto engines").
    CryptoOffload,
    /// Tables 1-3 measured live from the serving layer's metrics registry
    /// instead of the in-process pipeline.
    LiveAnatomy,
    /// Restart survival: stateless-ticket resumption vs the in-memory id
    /// cache across a full shared-nothing fleet restart.
    RestartSurvival,
    /// Protocol anatomy: SSLv3 vs TLS 1.3 handshake step latencies,
    /// measured side by side from one live dual-protocol server.
    ProtocolAnatomy,
    /// Engine forecast: the isasim cycle model predicts tx/s per
    /// heterogeneous engine configuration; the live event-loop server
    /// grades each prediction with its percent error.
    EngineForecast,
}

impl ExperimentId {
    /// Every experiment, in paper order.
    pub const ALL: [ExperimentId; 21] = [
        ExperimentId::Table1,
        ExperimentId::Fig2,
        ExperimentId::Table2,
        ExperimentId::Table3,
        ExperimentId::Fig3,
        ExperimentId::Table4,
        ExperimentId::Table5,
        ExperimentId::Table6,
        ExperimentId::Table7,
        ExperimentId::Table8,
        ExperimentId::Table9,
        ExperimentId::Table10,
        ExperimentId::Table11,
        ExperimentId::Table12,
        ExperimentId::SuiteSweep,
        ExperimentId::LoadedServer,
        ExperimentId::CryptoOffload,
        ExperimentId::LiveAnatomy,
        ExperimentId::RestartSurvival,
        ExperimentId::ProtocolAnatomy,
        ExperimentId::EngineForecast,
    ];

    /// The human-readable name ("Table 1", "Figure 3", ...).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ExperimentId::Table1 => "Table 1",
            ExperimentId::Fig2 => "Figure 2",
            ExperimentId::Table2 => "Table 2",
            ExperimentId::Table3 => "Table 3",
            ExperimentId::Fig3 => "Figure 3",
            ExperimentId::Table4 => "Table 4",
            ExperimentId::Table5 => "Table 5",
            ExperimentId::Table6 => "Table 6",
            ExperimentId::Table7 => "Table 7",
            ExperimentId::Table8 => "Table 8",
            ExperimentId::Table9 => "Table 9",
            ExperimentId::Table10 => "Table 10",
            ExperimentId::Table11 => "Table 11",
            ExperimentId::Table12 => "Table 12",
            ExperimentId::SuiteSweep => "Suite sweep",
            ExperimentId::LoadedServer => "Loaded server",
            ExperimentId::CryptoOffload => "Crypto offload",
            ExperimentId::LiveAnatomy => "Live anatomy",
            ExperimentId::RestartSurvival => "Restart survival",
            ExperimentId::ProtocolAnatomy => "Protocol anatomy",
            ExperimentId::EngineForecast => "Engine forecast",
        }
    }
}

impl fmt::Display for ExperimentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One experiment's rendered output.
#[derive(Debug, Clone)]
pub struct Report {
    id: ExperimentId,
    rendered: String,
}

impl Report {
    /// Which experiment produced this report.
    #[must_use]
    pub fn id(&self) -> ExperimentId {
        self.id
    }

    /// The rendered table or figure.
    #[must_use]
    pub fn rendered(&self) -> &str {
        &self.rendered
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.rendered)
    }
}

/// Runs one experiment and renders it.
///
/// # Errors
///
/// Propagates the experiment's [`ExperimentError`].
pub fn run_report(ctx: &Context, id: ExperimentId) -> Result<Report, ExperimentError> {
    let rendered = match id {
        ExperimentId::Table1 => webserver::table1(ctx)?.to_string(),
        ExperimentId::Fig2 => webserver::fig2(ctx)?.to_string(),
        ExperimentId::Table2 => handshake::table2(ctx)?.to_string(),
        ExperimentId::Table3 => handshake::table3(ctx)?.to_string(),
        ExperimentId::Fig3 => symmetric::fig3(ctx)?.to_string(),
        ExperimentId::Table4 => symmetric::table4().to_string(),
        ExperimentId::Table5 => symmetric::table5(ctx)?.to_string(),
        ExperimentId::Table6 => symmetric::table6(ctx)?.to_string(),
        ExperimentId::Table7 => rsa::table7(ctx)?.to_string(),
        ExperimentId::Table8 => rsa::table8(ctx)?.to_string(),
        ExperimentId::Table9 => arch::table9().to_string(),
        ExperimentId::Table10 => hashes::table10(ctx).to_string(),
        ExperimentId::Table11 => arch::table11(ctx)?.to_string(),
        ExperimentId::Table12 => arch::table12(ctx)?.to_string(),
        ExperimentId::SuiteSweep => webserver::suite_sweep(ctx)?.to_string(),
        ExperimentId::LoadedServer => netload::loaded_server(ctx)?.to_string(),
        ExperimentId::CryptoOffload => netload::crypto_offload(ctx)?.to_string(),
        ExperimentId::LiveAnatomy => netload::live_anatomy(ctx)?.to_string(),
        ExperimentId::RestartSurvival => netload::restart_survival(ctx)?.to_string(),
        ExperimentId::ProtocolAnatomy => netload::protocol_anatomy(ctx)?.to_string(),
        ExperimentId::EngineForecast => netload::engine_forecast(ctx)?.to_string(),
    };
    Ok(Report { id, rendered })
}

/// Runs every experiment in paper order.
///
/// Expect minutes at [`Context::paper`] settings, seconds at
/// [`Context::quick`].
///
/// # Errors
///
/// Stops at the first experiment that fails.
pub fn run_all_reports(ctx: &Context) -> Result<Vec<(ExperimentId, Report)>, ExperimentError> {
    ExperimentId::ALL.into_iter().map(|id| run_report(ctx, id).map(|report| (id, report))).collect()
}

/// Formats a percentage with one decimal, the paper's style.
pub(crate) fn pct(v: f64) -> String {
    format!("{v:.1}")
}

/// Formats kilocycles with sensible precision.
pub(crate) fn kcycles(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.0}")
    } else if v >= 1.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

/// A full run of every experiment, rendered in paper order.
#[derive(Debug)]
pub struct FullReport {
    sections: Vec<String>,
}

impl FullReport {
    /// The rendered sections in paper order.
    #[must_use]
    pub fn sections(&self) -> &[String] {
        &self.sections
    }
}

impl fmt::Display for FullReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for s in &self.sections {
            writeln!(f, "{s}")?;
        }
        Ok(())
    }
}

/// Runs every experiment in paper order and renders the sections.
///
/// # Errors
///
/// Stops at the first experiment that fails.
pub fn run_all(ctx: &Context) -> Result<FullReport, ExperimentError> {
    let sections = run_all_reports(ctx)?.into_iter().map(|(_, report)| report.rendered).collect();
    Ok(FullReport { sections })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(90.44), "90.4");
        assert_eq!(kcycles(18941.2), "18941");
        assert_eq!(kcycles(3.44), "3.4");
        assert_eq!(kcycles(0.119), "0.12");
    }

    #[test]
    fn experiment_ids_are_unique_and_named() {
        let mut names: Vec<&str> = ExperimentId::ALL.iter().map(|id| id.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ExperimentId::ALL.len());
        assert_eq!(ExperimentId::Fig3.to_string(), "Figure 3");
    }

    #[test]
    fn experiment_error_display_routes_sources() {
        let e = ExperimentError::from(sslperf_rsa::RsaError::MessageTooLong);
        assert!(e.to_string().starts_with("rsa: "));
        let e = ExperimentError::from(sslperf_bignum::BnError::EvenModulus);
        assert!(e.to_string().starts_with("bignum: "));
    }
}
