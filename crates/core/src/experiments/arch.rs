//! Tables 9, 11 and 12: architectural characteristics of the crypto
//! operations, via the ISA simulator plus native throughput measurement.

use crate::experiments::ExperimentError;
use crate::Context;
use sslperf_ciphers::{Aes, BlockCipher, Des, Des3, Rc4};
use sslperf_hashes::{Md5, Sha1};
use sslperf_isasim::{kernels, InstrMix, RunStats};
use sslperf_profile::{black_box, counters, measure_min, Align, PhaseSet, Table, REF_HZ};
use std::fmt;

/// The algorithms of Tables 11 and 12, in paper column order.
pub const ALGORITHMS: [&str; 7] = ["AES", "DES", "3DES", "RC4", "RSA", "MD5", "SHA-1"];

/// Table 9: the instruction body of `bn_mul_add_words`.
#[derive(Debug)]
pub struct Table9 {
    /// The assembly listing.
    pub listing: String,
}

impl fmt::Display for Table9 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Table 9. Instructions in bn_mul_add_words()")?;
        writeln!(f, "===========================================")?;
        write!(f, "{}", self.listing)
    }
}

/// Produces Table 9 from the IR kernel (identical to the paper's listing).
#[must_use]
pub fn table9() -> Table9 {
    Table9 { listing: kernels::bn::table9_body().listing() }
}

/// One algorithm's Table 11 row.
#[derive(Debug, Clone)]
pub struct ArchRow {
    /// Algorithm name.
    pub name: &'static str,
    /// Cycles per instruction (ISA cost model).
    pub cpi: f64,
    /// Instructions per processed byte (ISA simulation).
    pub path_length: f64,
    /// Measured native throughput in MB/s at the reference frequency.
    pub throughput_mbps: f64,
    /// The dynamic instruction mix (feeds Table 12).
    pub mix: InstrMix,
}

/// Table 11: CPI, path length and throughput per algorithm.
#[derive(Debug)]
pub struct Table11 {
    /// One row per algorithm, in [`ALGORITHMS`] order.
    pub rows: Vec<ArchRow>,
}

impl Table11 {
    /// Finds a row by algorithm name.
    #[must_use]
    pub fn row(&self, name: &str) -> Option<&ArchRow> {
        self.rows.iter().find(|r| r.name == name)
    }
}

impl fmt::Display for Table11 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = Table::new("Table 11. Characteristics for crypto operations");
        let mut cols = vec![("Metric", Align::Left)];
        for name in ALGORITHMS {
            cols.push((name, Align::Right));
        }
        t.columns(&cols);
        let by_name = |name: &str| self.row(name).expect("all rows present");
        let mut cpi_row = vec!["CPI (model)".to_owned()];
        let mut pl_row = vec!["Path length (instr/byte)".to_owned()];
        let mut tp_row = vec!["Throughput (MB/s)".to_owned()];
        for name in ALGORITHMS {
            let r = by_name(name);
            cpi_row.push(format!("{:.2}", r.cpi));
            pl_row.push(if r.path_length >= 1000.0 {
                format!("{:.0}", r.path_length)
            } else {
                format!("{:.1}", r.path_length)
            });
            tp_row.push(if r.throughput_mbps < 1.0 {
                format!("{:.3}", r.throughput_mbps)
            } else {
                format!("{:.1}", r.throughput_mbps)
            });
        }
        t.row(&cpi_row);
        t.row(&pl_row);
        t.row(&tp_row);
        writeln!(f, "{t}")?;
        writeln!(
            f,
            "Paper anchors: CPI 0.52–0.77; path length AES 50 < DES 69 < 3DES 194,\n\
             RSA 61457, hashes 12–14; throughput RC4 > MD5 > SHA-1 > AES > DES > 3DES ≫ RSA."
        )
    }
}

fn throughput(bytes: usize, cycles: u64) -> f64 {
    // MB/s at the reference clock: bytes / (cycles / REF_HZ) / 1e6.
    bytes as f64 * REF_HZ / cycles as f64 / 1e6
}

fn native_bulk_throughput(ctx: &Context, name: &str) -> Result<f64, ExperimentError> {
    let s = (ctx.iterations() as u32).clamp(2, 8);
    let size = 64 * 1024;
    let mut buf = vec![0x42u8; size];
    let cycles = match name {
        "AES" => {
            let aes = Aes::new(&[7u8; 16])?;
            measure_min(s, 1, || {
                for b in buf.chunks_exact_mut(16) {
                    aes.encrypt_block(b);
                }
            })
        }
        "DES" => {
            let des = Des::new(&[7u8; 8])?;
            measure_min(s, 1, || {
                for b in buf.chunks_exact_mut(8) {
                    des.encrypt_block(b);
                }
            })
        }
        "3DES" => {
            let des3 = Des3::new(&[7u8; 24])?;
            measure_min(s, 1, || {
                for b in buf.chunks_exact_mut(8) {
                    des3.encrypt_block(b);
                }
            })
        }
        "RC4" => {
            let mut rc4 = Rc4::new(&[7u8; 16])?;
            measure_min(s, 1, || {
                rc4.process(&mut buf);
            })
        }
        "MD5" => measure_min(s, 1, || {
            black_box(Md5::digest(&buf));
        }),
        "SHA-1" => measure_min(s, 1, || {
            black_box(Sha1::digest(&buf));
        }),
        _ => unreachable!("RSA handled separately"),
    };
    Ok(throughput(size, cycles.get()))
}

/// Builds the composite RSA instruction profile: counts the word-kernel
/// calls of a real 1024-bit decryption, then prices each kernel with a
/// linear model fitted from two IR simulations (setup + per-word cost).
fn rsa_arch_row(ctx: &Context) -> Result<ArchRow, ExperimentError> {
    // Table 11 reconstructs the paper's 32-bit x86 profile (path length
    // 61457 instr/byte comes from the u32 word kernels), so the counted
    // decryption is pinned to the u32 limb width like Table 8 — the u64
    // serving default would route the work through kernels this model
    // does not price. The clone also gives the run a fresh blinding
    // cache, keeping the counted call profile deterministic.
    let mut key = ctx.key_1024().clone();
    key.set_limb_width(sslperf_bignum::LimbWidth::U32);
    let key = &key;
    let mut rng = ctx.rng("arch-rsa");
    let cipher = key.public_key().encrypt_pkcs1(b"probe", &mut rng)?;
    let mut scratch = PhaseSet::new();
    let mut rng2 = ctx.rng("arch-rsa-run");
    let (counted, snap) =
        counters::counted(|| key.decrypt_instrumented(&cipher, &mut rng2, &mut scratch));
    counted?;

    let mut total = RunStats::default();
    // Linear model per kernel: stats(n words) = setup + n * per_word.
    let fit = |large: &RunStats, small: &RunStats, lw: u64, sw: u64| -> (f64, f64) {
        let per_word = (large.instructions - small.instructions) as f64 / (lw - sw) as f64;
        let setup = small.instructions as f64 - sw as f64 * per_word;
        (setup.max(0.0), per_word)
    };
    let a32: Vec<u32> = (0..32u32).map(|i| i.wrapping_mul(0x9e37_79b9) | 1).collect();
    let a4: Vec<u32> = a32[..4].to_vec();
    let r32 = vec![0x5aa5_a55au32; 32];
    let r4 = r32[..4].to_vec();

    let mut account = |name: &str, large: RunStats, small: RunStats, lw: u64, sw: u64| {
        let calls = snap.calls(name);
        let units = snap.units(name);
        if calls == 0 {
            return;
        }
        let (setup, per_word) = fit(&large, &small, lw, sw);
        let instructions = setup * calls as f64 + per_word * units as f64;
        // Scale the large run's stats (mix and cycles) to the computed
        // instruction total — the mix shape is word-loop dominated.
        let factor = instructions / large.instructions as f64;
        let mut scaled = large;
        scaled.instructions = instructions.round() as u64;
        scaled.cycles *= factor;
        // Rescale the histogram.
        let mut mix = InstrMix::new();
        for (mnemonic, count) in scaled.mix.iter() {
            mix.record_n(mnemonic, (count as f64 * factor).round() as u64);
        }
        scaled.mix = mix;
        total.merge(&scaled);
    };

    let (ma_large, _, _) = kernels::bn::simulate_mul_add(&r32, &a32, 0x1234_5677);
    let (ma_small, _, _) = kernels::bn::simulate_mul_add(&r4, &a4, 0x1234_5677);
    account("bn_mul_add_words", ma_large.stats, ma_small.stats, 32, 4);
    let (sub_large, _, _) = kernels::bn::simulate_sub(&a32, &r32);
    let (sub_small, _, _) = kernels::bn::simulate_sub(&a4, &r4);
    account("bn_sub_words", sub_large.stats, sub_small.stats, 32, 4);
    let (add_large, _, _) = kernels::bn::simulate_add(&a32, &r32);
    let (add_small, _, _) = kernels::bn::simulate_add(&a4, &r4);
    account("bn_add_words", add_large.stats, add_small.stats, 32, 4);

    // Native throughput: decrypt the 128-byte ciphertext.
    let s = (ctx.iterations() as u32).clamp(2, 6);
    let cycles = measure_min(s, 1, || {
        black_box(key.decrypt_pkcs1(&cipher)).ok();
    });
    let bytes = key.modulus_bytes();
    Ok(ArchRow {
        name: "RSA",
        cpi: total.cpi(),
        path_length: total.instructions as f64 / bytes as f64,
        throughput_mbps: throughput(bytes, cycles.get()),
        mix: total.mix,
    })
}

/// Runs the Table 11 experiment.
///
/// # Errors
///
/// Propagates cipher construction and RSA failures.
pub fn table11(ctx: &Context) -> Result<Table11, ExperimentError> {
    let mut rows = Vec::new();
    // Symmetric and hash kernels: simulate enough payload for stable rates.
    let aes = kernels::aes::simulate(8);
    rows.push(ArchRow {
        name: "AES",
        cpi: aes.cpi(),
        path_length: aes.instructions as f64 / (8.0 * 16.0),
        throughput_mbps: native_bulk_throughput(ctx, "AES")?,
        mix: aes.mix,
    });
    let des = kernels::des::simulate_des(8);
    rows.push(ArchRow {
        name: "DES",
        cpi: des.cpi(),
        path_length: des.instructions as f64 / (8.0 * 8.0),
        throughput_mbps: native_bulk_throughput(ctx, "DES")?,
        mix: des.mix,
    });
    let des3 = kernels::des::simulate_des3(8);
    rows.push(ArchRow {
        name: "3DES",
        cpi: des3.cpi(),
        path_length: des3.instructions as f64 / (8.0 * 8.0),
        throughput_mbps: native_bulk_throughput(ctx, "3DES")?,
        mix: des3.mix,
    });
    let rc4 = kernels::rc4::simulate(b"archkey", 512);
    rows.push(ArchRow {
        name: "RC4",
        cpi: rc4.cpi(),
        path_length: rc4.instructions as f64 / 512.0,
        throughput_mbps: native_bulk_throughput(ctx, "RC4")?,
        mix: rc4.mix,
    });
    rows.push(rsa_arch_row(ctx)?);
    let md5 = kernels::md5::simulate(8);
    rows.push(ArchRow {
        name: "MD5",
        cpi: md5.cpi(),
        path_length: md5.instructions as f64 / (8.0 * 64.0),
        throughput_mbps: native_bulk_throughput(ctx, "MD5")?,
        mix: md5.mix,
    });
    let sha1 = kernels::sha1::simulate(8);
    rows.push(ArchRow {
        name: "SHA-1",
        cpi: sha1.cpi(),
        path_length: sha1.instructions as f64 / (8.0 * 64.0),
        throughput_mbps: native_bulk_throughput(ctx, "SHA-1")?,
        mix: sha1.mix,
    });
    // Keep paper column order.
    let order = |name: &str| ALGORITHMS.iter().position(|n| *n == name).unwrap_or(usize::MAX);
    rows.sort_by_key(|r| order(r.name));
    Ok(Table11 { rows })
}

/// Table 12: the top-ten dynamic instructions per algorithm.
#[derive(Debug)]
pub struct Table12 {
    /// Reuses the Table 11 rows (mix field).
    pub rows: Vec<ArchRow>,
}

impl Table12 {
    /// The top-ten mix for one algorithm.
    #[must_use]
    pub fn top_ten(&self, name: &str) -> Vec<(&'static str, f64)> {
        self.rows.iter().find(|r| r.name == name).map(|r| r.mix.top(10)).unwrap_or_default()
    }
}

impl fmt::Display for Table12 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = Table::new("Table 12. Top ten instructions for crypto operations (%)");
        let mut cols = vec![("#", Align::Right)];
        for name in ALGORITHMS {
            cols.push((name, Align::Left));
        }
        t.columns(&cols);
        let tops: Vec<Vec<(&str, f64)>> =
            ALGORITHMS.iter().map(|name| self.top_ten(name)).collect();
        for rank in 0..10 {
            let mut row = vec![format!("{}", rank + 1)];
            for top in &tops {
                row.push(top.get(rank).map_or_else(String::new, |(m, p)| format!("{m} {p:.1}")));
            }
            t.row(&row);
        }
        let mut totals = vec!["Σ".to_owned()];
        for top in &tops {
            let sum: f64 = top.iter().map(|(_, p)| p).sum();
            totals.push(format!("{sum:.1}"));
        }
        t.row(&totals);
        writeln!(f, "{t}")?;
        writeln!(
            f,
            "Paper anchors: movl tops every column except DES/3DES (xorl); RSA is\n\
             addl/adcl/mull-heavy; SHA-1 shows bswap."
        )
    }
}

/// Runs the Table 12 experiment (shares the Table 11 simulations).
///
/// # Errors
///
/// Propagates cipher construction and RSA failures.
pub fn table12(ctx: &Context) -> Result<Table12, ExperimentError> {
    Ok(Table12 { rows: table11(ctx)?.rows })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_ctx::ctx;

    #[test]
    fn table9_matches_paper_listing() {
        let t9 = table9();
        for fragment in ["movl 0x8(%ebx), %eax", "mull %ebp", "adcl $0x0, %edx", "movl %edx, %esi"]
        {
            assert!(t9.listing.contains(fragment), "missing {fragment}:\n{}", t9.listing);
        }
        assert!(t9.to_string().contains("Table 9"));
    }

    #[test]
    fn table11_path_length_ordering() {
        let _serial = crate::test_ctx::timing_lock();
        let t11 = table11(ctx()).expect("table11");
        let pl = |n: &str| t11.row(n).expect("row").path_length;
        assert!(pl("AES") < pl("DES"), "AES shorter than DES per byte");
        assert!(pl("DES") < pl("3DES"), "DES shorter than 3DES");
        assert!(pl("RSA") > 1000.0, "RSA path length is thousands of instr/byte");
        assert!(pl("MD5") < pl("SHA-1"), "MD5 is the shortest hash");
    }

    #[test]
    fn table11_throughput_ordering() {
        let _serial = crate::test_ctx::timing_lock();
        assert!(
            crate::test_ctx::eventually(3, || {
                let t11 = table11(ctx()).expect("table11");
                let tp = |n: &str| t11.row(n).expect("row").throughput_mbps;
                tp("RC4") > tp("3DES")
                    && tp("AES") > tp("3DES")
                    && tp("MD5") > tp("SHA-1")
                    && tp("RSA") < 5.0
            }),
            "throughput ordering: RC4 > 3DES, AES > 3DES, MD5 > SHA-1, RSA tiny"
        );
    }

    #[test]
    fn table11_cpi_range_sane() {
        let _serial = crate::test_ctx::timing_lock();
        let t11 = table11(ctx()).expect("table11");
        for row in &t11.rows {
            assert!(
                (0.3..2.5).contains(&row.cpi),
                "{}: CPI {} outside plausible band",
                row.name,
                row.cpi
            );
        }
        // RSA has the worst CPI (multiplier-bound), as in the paper.
        let rsa = t11.row("RSA").expect("row").cpi;
        let md5 = t11.row("MD5").expect("row").cpi;
        assert!(rsa > md5, "RSA CPI {rsa} must exceed MD5 {md5}");
    }

    #[test]
    fn table12_column_leaders() {
        let _serial = crate::test_ctx::timing_lock();
        let t12 = table12(ctx()).expect("table12");
        assert_eq!(t12.top_ten("RC4")[0].0, "movl");
        assert_eq!(t12.top_ten("AES")[0].0, "movl");
        let des_top = t12.top_ten("DES")[0].0;
        assert!(des_top == "xorl" || des_top == "movl", "DES leader {des_top}");
        let rsa_top: Vec<&str> = t12.top_ten("RSA").iter().map(|(m, _)| *m).collect();
        assert!(rsa_top.contains(&"adcl"), "RSA carries: {rsa_top:?}");
        assert!(rsa_top.contains(&"mull"), "RSA multiplies: {rsa_top:?}");
        let sha_top: Vec<&str> = t12.top_ten("SHA-1").iter().map(|(m, _)| *m).collect();
        assert!(sha_top.contains(&"bswap"), "SHA-1 big-endian loads: {sha_top:?}");
        assert!(t12.to_string().contains("Table 12"));
    }
}
