//! Tables 7 and 8: the anatomy of RSA decryption.

use crate::experiments::{pct, ExperimentError};
use crate::Context;
use sslperf_bignum::words::{bn_add_words, bn_mul_add_words, bn_mul_words, bn_sub_words};
use sslperf_profile::{black_box, counters, measure_min, Align, PhaseSet, Table};
use sslperf_rsa::{RsaPrivateKey, STEP_NAMES};
use std::fmt;

pub use sslperf_rsa::STEP_NAMES as TABLE7_STEPS;

/// The paper's Table 7 percentages for the computation step.
pub const PAPER_COMPUTATION_PERCENT: (f64, f64) = (97.01, 98.85);

/// Per-step RSA decryption breakdown at two key sizes.
#[derive(Debug)]
pub struct Table7 {
    /// Accumulated steps for the 512-bit key.
    pub steps_512: PhaseSet,
    /// Accumulated steps for the 1024-bit key.
    pub steps_1024: PhaseSet,
    /// Decryptions accumulated per key.
    pub runs: usize,
}

impl Table7 {
    /// The computation step's share for the 1024-bit key (paper: 98.85%).
    #[must_use]
    pub fn computation_percent_1024(&self) -> f64 {
        self.steps_1024.percent("computation")
    }
}

impl fmt::Display for Table7 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = Table::new(&format!(
            "Table 7. Execution time breakdown for RSA decryption (avg over {} runs)",
            self.runs
        ));
        t.columns(&[
            ("Step", Align::Right),
            ("Functionality", Align::Left),
            ("512b cycles", Align::Right),
            ("512b %", Align::Right),
            ("1024b cycles", Align::Right),
            ("1024b %", Align::Right),
        ]);
        let n = self.runs.max(1) as u64;
        for (i, name) in STEP_NAMES.iter().enumerate() {
            t.row(&[
                &(i + 1).to_string(),
                *name,
                &(self.steps_512.cycles(name).get() / n).to_string(),
                &pct(self.steps_512.percent(name)),
                &(self.steps_1024.cycles(name).get() / n).to_string(),
                &pct(self.steps_1024.percent(name)),
            ]);
        }
        t.row(&[
            "",
            "Total",
            &(self.steps_512.total().get() / n).to_string(),
            "100",
            &(self.steps_1024.total().get() / n).to_string(),
            "100",
        ]);
        writeln!(f, "{t}")?;
        writeln!(
            f,
            "Paper anchors: computation {}% (512b) and {}% (1024b).",
            PAPER_COMPUTATION_PERCENT.0, PAPER_COMPUTATION_PERCENT.1
        )
    }
}

fn accumulate_steps(
    ctx: &Context,
    key: &RsaPrivateKey,
    label: &str,
    runs: usize,
) -> Result<PhaseSet, ExperimentError> {
    let mut rng = ctx.rng(&format!("table7-{label}"));
    let mut steps = PhaseSet::new();
    let message = b"pre-master secret for the RSA decryption anatomy experiment!!!";
    let cipher = key.public_key().encrypt_pkcs1(&message[..32], &mut rng)?;
    // Warm the key's blinding cache so the measurement reflects the steady
    // state the paper profiles (OpenSSL creates blinding once per key).
    let mut warmup = PhaseSet::new();
    let _ = key.decrypt_instrumented(&cipher, &mut rng, &mut warmup);
    for _ in 0..runs {
        let plain = key.decrypt_instrumented(&cipher, &mut rng, &mut steps)?;
        debug_assert_eq!(plain, &message[..32]);
    }
    Ok(steps)
}

/// Runs the Table 7 experiment on the context's 512- and 1024-bit keys.
///
/// # Errors
///
/// Propagates RSA failures from the measured decryptions.
pub fn table7(ctx: &Context) -> Result<Table7, ExperimentError> {
    let runs = ctx.iterations().max(3);
    Ok(Table7 {
        steps_512: accumulate_steps(ctx, ctx.key_512(), "512", runs)?,
        steps_1024: accumulate_steps(ctx, ctx.key_1024(), "1024", runs)?,
        runs,
    })
}

/// Per-function attribution of an RSA decryption (the paper's Table 8).
#[derive(Debug)]
pub struct Table8 {
    /// `(function, attributed cycles, percent of total)`, descending.
    pub rows: Vec<(String, f64, f64)>,
    /// Total decryption cycles the attribution was normalized to.
    pub total_cycles: f64,
}

impl Table8 {
    /// The percentage attributed to one function (0.0 if absent).
    #[must_use]
    pub fn percent(&self, function: &str) -> f64 {
        self.rows.iter().find(|(n, _, _)| n == function).map_or(0.0, |(_, _, p)| *p)
    }
}

impl fmt::Display for Table8 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = Table::new("Table 8. Top functions in RSA decryption (1024-bit key)");
        t.columns(&[("Function", Align::Left), ("%", Align::Right)]);
        for (name, _, percent) in self.rows.iter().take(10) {
            t.row(&[name.as_str(), &pct(*percent)]);
        }
        writeln!(f, "{t}")?;
        writeln!(
            f,
            "Paper anchors: bn_mul_add_words 47.0%, bn_sub_words 22.6%,\n\
             BN_from_montgomery 9.5%, bn_add_words 4.9%."
        )
    }
}

/// Measured per-word cycle costs of the leaf word kernels and the glue
/// around them.
#[derive(Debug, Clone, Copy)]
pub struct KernelCosts {
    /// `bn_mul_add_words` cycles per word.
    pub mul_add: f64,
    /// `bn_mul_words` cycles per word.
    pub mul: f64,
    /// `bn_add_words` cycles per word.
    pub add: f64,
    /// `bn_sub_words` cycles per word.
    pub sub: f64,
    /// `BN_mul` *exclusive* cycles per word: the schoolbook driver's loop,
    /// carry stores and allocation beyond the inner word kernel.
    pub mul_glue: f64,
    /// `BN_from_montgomery` exclusive cycles per word: the reduction
    /// driver's carry ripple, compare and conditional final subtract.
    pub redc_glue: f64,
}

/// Calibrates the leaf kernels (direct measurement on 32-word operands)
/// and the wrapper glue (whole-operation measurement minus the attributed
/// inner-kernel time — the inclusive/exclusive split a sampling profiler
/// performs).
///
/// # Errors
///
/// Propagates bignum failures from the Montgomery setup.
pub fn calibrate(ctx: &Context) -> Result<KernelCosts, ExperimentError> {
    const WORDS: usize = 32;
    let a: Vec<u32> = (0..WORDS as u32).map(|i| i.wrapping_mul(0x9e37_79b9)).collect();
    let b: Vec<u32> = (0..WORDS as u32).map(|i| i.wrapping_mul(0x85eb_ca6b)).collect();
    let mut r = vec![0u32; WORDS];
    let per_word = |cycles: u64| cycles as f64 / WORDS as f64;
    let mul_add = per_word(
        measure_min(5, 500, || {
            black_box(bn_mul_add_words(&mut r, &a, 0x1234_5677));
        })
        .get(),
    );
    let mul = per_word(
        measure_min(5, 500, || {
            black_box(bn_mul_words(&mut r, &a, 0x1234_5677));
        })
        .get(),
    );
    let add = per_word(
        measure_min(5, 500, || {
            black_box(bn_add_words(&mut r, &a, &b));
        })
        .get(),
    );
    let sub = per_word(
        measure_min(5, 500, || {
            black_box(bn_sub_words(&mut r, &b, &a));
        })
        .get(),
    );
    // BN_mul exclusive: a 32×32 product runs 32 bn_mul_add_words calls of
    // 32 words each; everything beyond that is the driver's own work.
    let x = sslperf_bignum::Bn::from_words(&a);
    let y = sslperf_bignum::Bn::from_words(&b);
    let mul_total = measure_min(5, 200, || {
        black_box(x.mul(&y));
    })
    .get() as f64;
    let mul_glue = (mul_total - (WORDS * WORDS) as f64 * mul_add).max(0.0) / WORDS as f64;

    // BN_from_montgomery exclusive: one reduction mod the 1024-bit modulus
    // runs 32 inner bn_mul_add_words passes of 32 words. Calibrated on the
    // u32 kernels — the family Table 8 attributes.
    let mont = sslperf_bignum::MontCtx::with_limb_width(
        ctx.key_1024().modulus(),
        sslperf_bignum::LimbWidth::U32,
    )?;
    let v = sslperf_bignum::Bn::from_words(&a);
    let redc_total = measure_min(5, 200, || {
        black_box(mont.from_mont(&v));
    })
    .get() as f64;
    let redc_glue = (redc_total - (WORDS * WORDS) as f64 * mul_add).max(0.0) / WORDS as f64;

    Ok(KernelCosts { mul_add, mul, add, sub, mul_glue, redc_glue })
}

/// Runs the Table 8 experiment: counts every bignum function during a real
/// 1024-bit decryption, prices the leaf word kernels with [`calibrate`],
/// prices wrapper functions at a measured per-call overhead, and normalizes
/// against the measured total.
///
/// # Errors
///
/// Propagates RSA failures from the measured decryptions.
pub fn table8(ctx: &Context) -> Result<Table8, ExperimentError> {
    // Table 8 reconstructs the paper's VTune profile of 32-bit x86 OpenSSL,
    // so the experiment always runs on the paper-faithful u32 kernels —
    // regardless of the process-default limb width the serving paths use.
    let mut key = ctx.key_1024().clone();
    key.set_limb_width(sslperf_bignum::LimbWidth::U32);
    let key = &key;
    let mut rng = ctx.rng("table8");
    let cipher = key.public_key().encrypt_pkcs1(b"table8 probe message", &mut rng)?;

    // Count one decryption (counting overhead does not matter here).
    let mut scratch = PhaseSet::new();
    let mut rng2 = ctx.rng("table8-run");
    let (counted, snapshot) =
        counters::counted(|| key.decrypt_instrumented(&cipher, &mut rng2, &mut scratch));
    counted?;

    // Time one decryption without counting.
    let rng3 = ctx.rng("table8-run"); // same seed → same blinding path
    let total = measure_min(3, 1, || {
        let mut phases = PhaseSet::new();
        black_box(key.decrypt_instrumented(&cipher, &mut rng3.clone(), &mut phases)).ok();
    })
    .get() as f64;

    let costs = calibrate(ctx)?;
    // Per-call overhead for thin wrappers (allocation + bookkeeping),
    // measured as the cost of cloning a 32-word vector.
    let wrapper_call = {
        let v = vec![0u32; 32];
        measure_min(5, 1000, || {
            black_box(v.clone());
        })
        .get() as f64
    };

    let mut rows: Vec<(String, f64)> = Vec::new();
    let leaf = |name: &str, per_unit: f64, rows: &mut Vec<(String, f64)>| {
        let units = snapshot.units(name) as f64;
        if units > 0.0 {
            rows.push((name.to_owned(), units * per_unit));
        }
    };
    leaf("bn_mul_add_words", costs.mul_add, &mut rows);
    leaf("bn_mul_words", costs.mul, &mut rows);
    leaf("bn_add_words", costs.add, &mut rows);
    leaf("bn_sub_words", costs.sub, &mut rows);
    // Glue-bearing drivers, priced at their measured exclusive per-word cost.
    leaf("BN_mul", costs.mul_glue, &mut rows);
    leaf("BN_from_montgomery", costs.redc_glue, &mut rows);
    let mut attributed: f64 = rows.iter().map(|(_, c)| c).sum();
    // Thin wrapper functions: counted calls × measured per-call overhead.
    for wrapper in [
        "BN_usub",
        "BN_copy",
        "BN_sqr",
        "BN_div",
        "BN_mod_exp",
        "BN_CTX_start",
        "OPENSSL_cleanse",
        "blinding_setup",
        "blinding_convert",
        "rsa_private_op",
        "pkcs1_parse",
    ] {
        let calls = snapshot.calls(wrapper) as f64;
        if calls > 0.0 {
            let cycles = calls * wrapper_call;
            attributed += cycles;
            rows.push((wrapper.to_owned(), cycles));
        }
    }
    // Anything unattributed (loop overheads, carries, allocator) is real
    // time the profiler would spread over callers; report it explicitly.
    let remainder = (total - attributed).max(0.0);
    rows.push(("(unattributed)".to_owned(), remainder));
    let denom: f64 = total.max(attributed);
    rows.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    let rows = rows
        .into_iter()
        .map(|(name, cycles)| {
            let percent = cycles * 100.0 / denom;
            (name, cycles, percent)
        })
        .collect();
    Ok(Table8 { rows, total_cycles: denom })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_ctx::ctx;

    #[test]
    fn table7_computation_dominates_both_keys() {
        let _serial = crate::test_ctx::timing_lock();
        assert!(
            crate::test_ctx::eventually(3, || {
                let t7 = table7(ctx()).expect("table7");
                // The larger key must also cost more in absolute cycles.
                t7.steps_512.percent("computation") > 50.0
                    && t7.computation_percent_1024() > 60.0
                    && t7.steps_1024.cycles("computation") > t7.steps_512.cycles("computation")
            }),
            "the computation step must dominate at both key sizes"
        );
        assert!(table7(ctx()).expect("table7").to_string().contains("data_to_bn"));
    }

    #[test]
    fn calibration_orders_kernels_sensibly() {
        let _serial = crate::test_ctx::timing_lock();
        assert!(
            crate::test_ctx::eventually(3, || {
                let c = calibrate(ctx()).expect("calibrate");
                // Noise margin: mul-add must never be dramatically cheaper
                // than a plain add.
                c.mul_add > 0.0 && c.sub > 0.0 && c.mul_add > c.add * 0.5
            }),
            "multiply-accumulate must not be dramatically cheaper than plain add"
        );
    }

    #[test]
    fn table8_mul_add_words_on_top() {
        let _serial = crate::test_ctx::timing_lock();
        assert!(
            crate::test_ctx::eventually(3, || {
                let t8 = table8(ctx()).expect("table8");
                let top_real = t8
                    .rows
                    .iter()
                    .find(|(n, _, _)| n != "(unattributed)")
                    .expect("at least one attributed row");
                top_real.0 == "bn_mul_add_words" && t8.percent("bn_mul_add_words") > 20.0
            }),
            "bn_mul_add_words must top the attribution"
        );
        assert!(table8(ctx()).expect("table8").to_string().contains("bn_mul_add_words"));
    }
}
