//! Figure 3 and Tables 4–6: the anatomy of the symmetric ciphers.

use crate::experiments::{pct, ExperimentError};
use crate::Context;
use sslperf_ciphers::characteristics::{characteristics, Algorithm};
use sslperf_ciphers::{Aes, BlockCipher, Des, Des3, Rc4};
use sslperf_profile::{black_box, measure_min, Align, Table};
use std::fmt;

/// Data sizes for Figure 3 (bytes).
pub const FIG3_SIZES: [usize; 6] = [1024, 2048, 4096, 8192, 16_384, 32_768];

fn samples(ctx: &Context) -> u32 {
    (ctx.iterations() as u32).clamp(2, 10)
}

/// Key-setup share of an encryption operation at several data sizes.
#[derive(Debug)]
pub struct Fig3 {
    /// `(algorithm, data size, key-setup percent)` points.
    pub points: Vec<(Algorithm, usize, f64)>,
}

impl Fig3 {
    /// The key-setup share for one `(algorithm, size)` pair, if measured.
    #[must_use]
    pub fn setup_percent(&self, alg: Algorithm, size: usize) -> Option<f64> {
        self.points.iter().find(|(a, s, _)| *a == alg && *s == size).map(|(_, _, p)| *p)
    }
}

impl fmt::Display for Fig3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = Table::new("Figure 3. Key setup share of encryption vs data size (%)");
        let mut cols = vec![("Size (KB)".to_owned(), Align::Right)];
        for alg in Algorithm::ALL {
            cols.push((alg.name().to_owned(), Align::Right));
        }
        let col_refs: Vec<(&str, Align)> = cols.iter().map(|(n, a)| (n.as_str(), *a)).collect();
        t.columns(&col_refs);
        for &size in &FIG3_SIZES {
            let mut row = vec![format!("{}", size / 1024)];
            for alg in Algorithm::ALL {
                row.push(self.setup_percent(alg, size).map_or_else(String::new, pct));
            }
            t.row(&row);
        }
        writeln!(f, "{t}")?;
        writeln!(
            f,
            "Paper anchors: RC4 ≈ 28.5% at 1 KB (big state-table init), block ciphers\n\
             1.0–3.6% at 1 KB; all fall below ~5% by 8 KB."
        )
    }
}

/// Measures the cheapest stable cost of a key setup and of encrypting
/// `size` bytes, returning setup/(setup+kernel) in percent.
fn setup_share(ctx: &Context, alg: Algorithm, size: usize) -> Result<f64, ExperimentError> {
    let s = samples(ctx);
    let key16 = [0x5au8; 16];
    let key8 = [0x5au8; 8];
    let key24 = [0x5au8; 24];
    // Validate each key once up front; the timing closures cannot
    // propagate, so they discard the (now known-absent) error.
    let setup = match alg {
        Algorithm::Aes => {
            Aes::new(&key16)?;
            measure_min(s, 20, || {
                black_box(Aes::new(&key16).ok());
            })
        }
        Algorithm::Des => {
            Des::new(&key8)?;
            measure_min(s, 20, || {
                black_box(Des::new(&key8).ok());
            })
        }
        Algorithm::TripleDes => {
            Des3::new(&key24)?;
            measure_min(s, 20, || {
                black_box(Des3::new(&key24).ok());
            })
        }
        Algorithm::Rc4 => {
            Rc4::new(&key16)?;
            measure_min(s, 20, || {
                black_box(Rc4::new(&key16).ok());
            })
        }
    };
    let mut buf = vec![0x33u8; size];
    let kernel = match alg {
        Algorithm::Aes => {
            let aes = Aes::new(&key16)?;
            measure_min(s, 2, || {
                for block in buf.chunks_exact_mut(16) {
                    aes.encrypt_block(block);
                }
            })
        }
        Algorithm::Des => {
            let des = Des::new(&key8)?;
            measure_min(s, 2, || {
                for block in buf.chunks_exact_mut(8) {
                    des.encrypt_block(block);
                }
            })
        }
        Algorithm::TripleDes => {
            let des3 = Des3::new(&key24)?;
            measure_min(s, 2, || {
                for block in buf.chunks_exact_mut(8) {
                    des3.encrypt_block(block);
                }
            })
        }
        Algorithm::Rc4 => {
            let mut rc4 = Rc4::new(&key16)?;
            measure_min(s, 2, || {
                rc4.process(&mut buf);
            })
        }
    };
    let setup_cycles = setup.get() as f64;
    Ok(setup_cycles * 100.0 / (setup_cycles + kernel.get() as f64))
}

/// Runs the Figure 3 experiment.
///
/// # Errors
///
/// Propagates cipher construction failures.
pub fn fig3(ctx: &Context) -> Result<Fig3, ExperimentError> {
    let mut points = Vec::new();
    for alg in Algorithm::ALL {
        for &size in &FIG3_SIZES {
            points.push((alg, size, setup_share(ctx, alg, size)?));
        }
    }
    Ok(Fig3 { points })
}

/// The static Table 4 (derived from the implementations).
#[derive(Debug)]
pub struct Table4;

impl fmt::Display for Table4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = Table::new("Table 4. Important data structures and characteristics");
        t.columns(&[
            ("", Align::Left),
            ("AES", Align::Right),
            ("DES", Align::Right),
            ("3DES", Align::Right),
            ("RC4", Align::Right),
        ]);
        let c: Vec<_> = Algorithm::ALL.iter().map(|a| characteristics(*a)).collect();
        let row = |label: &str, values: Vec<String>| {
            let mut cells = vec![label.to_owned()];
            cells.extend(values);
            cells
        };
        t.row(&row("Block Size (bits)", c.iter().map(|x| x.block_bits.to_string()).collect()));
        t.row(&row("Key Size (bits)", c.iter().map(|x| x.key_bits.to_string()).collect()));
        t.row(&row(
            "Key Schedule",
            c.iter()
                .map(|x| {
                    x.key_schedule.map_or_else(|| "n/a".to_owned(), |(n, b)| format!("{n},{b}b"))
                })
                .collect(),
        ));
        t.row(&row(
            "Tables",
            c.iter().map(|x| format!("{},{},{}b", x.tables.0, x.tables.1, x.tables.2)).collect(),
        ));
        t.row(&row("Rounds", c.iter().map(|x| x.rounds.to_string()).collect()));
        t.row(&row("Table Lookups", c.iter().map(|x| x.lookups_per_round.to_string()).collect()));
        write!(f, "{t}")
    }
}

/// Returns the (static) Table 4.
#[must_use]
pub fn table4() -> Table4 {
    Table4
}

/// AES block-operation breakdown for 128 and 256-bit keys (Table 5).
#[derive(Debug)]
pub struct Table5 {
    /// `(part name, cycles-128, cycles-256)` rows.
    pub parts: Vec<(&'static str, f64, f64)>,
}

impl Table5 {
    fn total(&self, key256: bool) -> f64 {
        self.parts.iter().map(|(_, a, b)| if key256 { *b } else { *a }).sum()
    }
}

impl fmt::Display for Table5 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = Table::new("Table 5. AES execution time breakdown (per block)");
        t.columns(&[
            ("Functionality", Align::Left),
            ("128b cycles", Align::Right),
            ("128b %", Align::Right),
            ("256b cycles", Align::Right),
            ("256b %", Align::Right),
        ]);
        let (t128, t256) = (self.total(false), self.total(true));
        for (name, c128, c256) in &self.parts {
            t.row(&[
                *name,
                &format!("{c128:.0}"),
                &pct(c128 * 100.0 / t128),
                &format!("{c256:.0}"),
                &pct(c256 * 100.0 / t256),
            ]);
        }
        t.row(&["Total", &format!("{t128:.0}"), "100", &format!("{t256:.0}"), "100"]);
        writeln!(f, "{t}")?;
        writeln!(f, "Paper anchors: main rounds 71% (128b) and 78% (256b) of the block op.")
    }
}

/// Runs the Table 5 experiment: times the three parts of the AES block
/// operation separately for both key sizes.
///
/// # Errors
///
/// Propagates cipher construction failures.
pub fn table5(ctx: &Context) -> Result<Table5, ExperimentError> {
    let s = samples(ctx);
    let iters = 2000;
    let measure_parts = |key: &[u8]| -> Result<(f64, f64, f64), ExperimentError> {
        let aes = Aes::new(key)?;
        let block = [0x7eu8; 16];
        let state = aes.add_initial_round_key(&block);
        let after_rounds = aes.main_rounds(state);
        let mut out = [0u8; 16];
        let part1 = measure_min(s, iters, || {
            black_box(aes.add_initial_round_key(black_box(&block)));
        });
        let part2 = measure_min(s, iters, || {
            black_box(aes.main_rounds(black_box(state)));
        });
        let part3 = measure_min(s, iters, || {
            aes.final_round(black_box(after_rounds), &mut out);
            black_box(&out);
        });
        Ok((part1.get() as f64, part2.get() as f64, part3.get() as f64))
    };
    let (a1, a2, a3) = measure_parts(&[0x11; 16])?;
    let (b1, b2, b3) = measure_parts(&[0x22; 32])?;
    Ok(Table5 {
        parts: vec![
            ("Map block to state, add initial round key", a1, b1),
            ("Main rounds", a2, b2),
            ("Last round and map state to bytes", a3, b3),
        ],
    })
}

/// DES/3DES block-operation breakdown (Table 6).
#[derive(Debug)]
pub struct Table6 {
    /// `(part, DES cycles, 3DES cycles)` rows.
    pub parts: Vec<(&'static str, f64, f64)>,
}

impl Table6 {
    fn total(&self, triple: bool) -> f64 {
        self.parts.iter().map(|(_, d, t)| if triple { *t } else { *d }).sum()
    }

    /// Substitution share for DES (paper: 74.7%).
    #[must_use]
    pub fn des_substitution_percent(&self) -> f64 {
        self.parts
            .iter()
            .find(|(n, _, _)| *n == "Substitution")
            .map_or(0.0, |(_, d, _)| d * 100.0 / self.total(false))
    }
}

impl fmt::Display for Table6 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = Table::new("Table 6. DES/3DES execution time breakdown (per block)");
        t.columns(&[
            ("Functionality", Align::Left),
            ("DES cycles", Align::Right),
            ("DES %", Align::Right),
            ("3DES cycles", Align::Right),
            ("3DES %", Align::Right),
        ]);
        let (td, t3) = (self.total(false), self.total(true));
        for (name, des, des3) in &self.parts {
            t.row(&[
                *name,
                &format!("{des:.0}"),
                &pct(des * 100.0 / td),
                &format!("{des3:.0}"),
                &pct(des3 * 100.0 / t3),
            ]);
        }
        t.row(&["Total", &format!("{td:.0}"), "100", &format!("{t3:.0}"), "100"]);
        writeln!(f, "{t}")?;
        writeln!(f, "Paper anchors: substitution 74.7% (DES) and 89.1% (3DES).")
    }
}

/// Runs the Table 6 experiment: times IP, the substitution rounds, and FP.
///
/// # Errors
///
/// Propagates cipher construction failures.
pub fn table6(ctx: &Context) -> Result<Table6, ExperimentError> {
    let s = samples(ctx);
    let iters = 2000;
    let block = *b"DESperf!";
    let des = Des::new(&[0x13, 0x34, 0x57, 0x79, 0x9b, 0xbc, 0xdf, 0xf1])?;
    let key24: Vec<u8> = (0..24).collect();
    let des3 = Des3::new(&key24)?;
    let (l, r) = Des::initial_permutation(&block);
    let (dl, dr) = des.substitution_rounds(l, r, false);
    let (tl, tr) = des3.substitution_rounds(l, r, false);
    let mut out = [0u8; 8];

    let ip = measure_min(s, iters, || {
        black_box(Des::initial_permutation(black_box(&block)));
    });
    let des_rounds = measure_min(s, iters, || {
        black_box(des.substitution_rounds(black_box(l), black_box(r), false));
    });
    let des3_rounds = measure_min(s, iters, || {
        black_box(des3.substitution_rounds(black_box(l), black_box(r), false));
    });
    let fp_des = measure_min(s, iters, || {
        Des::final_permutation(black_box(dl), black_box(dr), &mut out);
        black_box(&out);
    });
    let fp_des3 = measure_min(s, iters, || {
        Des::final_permutation(black_box(tl), black_box(tr), &mut out);
        black_box(&out);
    });

    Ok(Table6 {
        parts: vec![
            ("IP", ip.get() as f64, ip.get() as f64),
            ("Substitution", des_rounds.get() as f64, des3_rounds.get() as f64),
            ("FP", fp_des.get() as f64, fp_des3.get() as f64),
        ],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_ctx::ctx;

    #[test]
    fn fig3_rc4_setup_heaviest_at_1kb() {
        let _serial = crate::test_ctx::timing_lock();
        assert!(
            crate::test_ctx::eventually(3, || {
                let f3 = fig3(ctx()).expect("fig3");
                let rc4 = f3.setup_percent(Algorithm::Rc4, 1024).expect("measured");
                [Algorithm::Aes, Algorithm::Des, Algorithm::TripleDes]
                    .into_iter()
                    .all(|alg| rc4 > f3.setup_percent(alg, 1024).expect("measured"))
            }),
            "RC4 key setup must exceed every block cipher's at 1 KB"
        );
    }

    #[test]
    fn fig3_share_decreases_with_size() {
        let _serial = crate::test_ctx::timing_lock();
        assert!(
            crate::test_ctx::eventually(3, || {
                let f3 = fig3(ctx()).expect("fig3");
                Algorithm::ALL.into_iter().all(|alg| {
                    let small = f3.setup_percent(alg, 1024).expect("measured");
                    let large = f3.setup_percent(alg, 32_768).expect("measured");
                    large < small
                })
            }),
            "key-setup share must fall with data size for every algorithm"
        );
        assert!(fig3(ctx()).expect("fig3").to_string().contains("RC4"));
    }

    #[test]
    fn table4_renders_paper_values() {
        let rendered = table4().to_string();
        assert!(rendered.contains("4,256,32b"), "AES tables: {rendered}");
        assert!(rendered.contains("8,64,32b"), "DES SP tables");
        assert!(rendered.contains("1,256,8b"), "RC4 state table");
    }

    #[test]
    fn table5_main_rounds_dominate() {
        let _serial = crate::test_ctx::timing_lock();
        assert!(table5(ctx()).expect("table5").to_string().contains("Main rounds"));
        assert!(
            crate::test_ctx::eventually(3, || {
                let t5 = table5(ctx()).expect("table5");
                let main_128 = t5.parts[1].1;
                let total: f64 = t5.parts.iter().map(|(_, a, _)| a).sum();
                // 256-bit key has more rounds, so part 2 grows.
                main_128 / total > 0.4 && t5.parts[1].2 > t5.parts[1].1
            }),
            "main rounds must dominate and cost more at 256-bit keys"
        );
    }

    #[test]
    fn table6_substitution_dominates_and_triples() {
        let _serial = crate::test_ctx::timing_lock();
        assert!(
            crate::test_ctx::eventually(3, || {
                let t6 = table6(ctx()).expect("table6");
                let (_, des_sub, des3_sub) =
                    t6.parts.iter().find(|(n, _, _)| *n == "Substitution").expect("row");
                // 3DES rounds ≈ 3× DES rounds.
                t6.des_substitution_percent() > 50.0 && des3_sub > &(des_sub * 2.0)
            }),
            "substitution must dominate DES and triple under 3DES"
        );
    }
}
