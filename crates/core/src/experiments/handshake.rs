//! Tables 2 and 3: the anatomy of the server-side SSL handshake.

use crate::experiments::{kcycles, pct, ExperimentError};
use crate::Context;
use sslperf_profile::{Align, Cycles, PhaseSet, Table};
use sslperf_rng::SslRng;
use sslperf_ssl::{SslClient, SslServer, SERVER_STEP_NAMES};
use std::fmt;

/// Human descriptions for each step, condensed from the paper's Table 2.
pub const STEP_DESCRIPTIONS: [&str; 10] = [
    "Initialize states and variables",
    "check version, get client random/session-id, choose cipher",
    "generate server random, send server hello",
    "send server certificate",
    "send server done message, buffer control",
    "rsa-decrypt pre-master, generate master key",
    "read CCS, gen key block, read+verify client finished",
    "send server change cipher spec",
    "calculate server finish hashes, MAC, encrypt, send",
    "internal buffer control, cache session, cleanse",
];

/// One handshake, fully instrumented.
#[derive(Debug)]
pub struct Table2 {
    /// Per-step latency.
    pub steps: PhaseSet,
    /// Per-crypto-function latency, aggregated.
    pub crypto: PhaseSet,
    /// `(step, function, cycles)` in call order.
    pub detail: Vec<(usize, &'static str, Cycles)>,
    /// Number of handshakes accumulated.
    pub runs: usize,
}

impl Table2 {
    /// Total handshake latency.
    #[must_use]
    pub fn total(&self) -> Cycles {
        self.steps.total()
    }

    /// Total crypto latency within the handshake.
    #[must_use]
    pub fn crypto_total(&self) -> Cycles {
        self.crypto.total()
    }

    fn crypto_for_step(&self, step: usize) -> Vec<(&'static str, Cycles)> {
        let mut rows: Vec<(&'static str, Cycles)> = Vec::new();
        for (s, name, cycles) in &self.detail {
            if *s == step {
                if let Some(existing) = rows.iter_mut().find(|(n, _)| n == name) {
                    existing.1 += *cycles;
                } else {
                    rows.push((name, *cycles));
                }
            }
        }
        rows
    }
}

impl fmt::Display for Table2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = Table::new(&format!(
            "Table 2. Execution time breakdown in SSL handshake (avg over {} handshakes; \
             1000s of cycles)",
            self.runs
        ));
        t.columns(&[
            ("Step", Align::Right),
            ("Functionality", Align::Left),
            ("Latency", Align::Right),
            ("Crypto functions called", Align::Left),
            ("Crypto latency", Align::Right),
        ]);
        let n = self.runs.max(1) as f64;
        for (idx, name) in SERVER_STEP_NAMES.iter().enumerate() {
            let latency = self.steps.cycles(name).get() as f64 / n / 1000.0;
            let crypto = self.crypto_for_step(idx);
            if crypto.is_empty() {
                t.row(&[
                    &idx.to_string(),
                    &(*name).to_owned(),
                    &kcycles(latency),
                    &String::new(),
                    &String::new(),
                ]);
            } else {
                for (row_idx, (func, cycles)) in crypto.iter().enumerate() {
                    let step_col = if row_idx == 0 { idx.to_string() } else { String::new() };
                    let lat_col = if row_idx == 0 { kcycles(latency) } else { String::new() };
                    let name_col = if row_idx == 0 { (*name).to_owned() } else { String::new() };
                    t.row(&[
                        &step_col,
                        &name_col,
                        &lat_col,
                        &(*func).to_owned(),
                        &kcycles(cycles.get() as f64 / n / 1000.0),
                    ]);
                }
            }
        }
        t.row(&[
            "",
            "Total",
            &kcycles(self.total().get() as f64 / n / 1000.0),
            "",
            &kcycles(self.crypto_total().get() as f64 / n / 1000.0),
        ]);
        writeln!(f, "{t}")?;
        writeln!(
            f,
            "Paper anchors: total 20540 kcycles; step 5 dominated by\n\
             rsa_private_decryption (18563 kcycles of 18941)."
        )
    }
}

/// Runs `iterations` fully instrumented handshakes and accumulates the
/// per-step and per-function latencies.
///
/// # Errors
///
/// Propagates SSL failures from the measured handshakes.
pub fn table2(ctx: &Context) -> Result<Table2, ExperimentError> {
    ctx.server_config().clear_session_cache();
    let mut steps = PhaseSet::new();
    let mut crypto = PhaseSet::new();
    let mut detail: Vec<(usize, &'static str, Cycles)> = Vec::new();
    for i in 0..ctx.iterations() {
        let mut client =
            SslClient::new(ctx.suite(), SslRng::from_seed(format!("t2-client-{i}").as_bytes()));
        let mut server = SslServer::new(
            ctx.server_config(),
            SslRng::from_seed(format!("t2-server-{i}").as_bytes()),
        );
        let f1 = client.hello()?;
        let f2 = server.process_client_hello(&f1)?;
        let f3 = client.process_server_flight(&f2)?;
        let f4 = server.process_client_flight(&f3)?;
        client.process_server_finish(&f4)?;
        debug_assert!(server.is_established());
        steps.merge(server.steps());
        crypto.merge(server.crypto());
        for (s, name, cycles) in server.crypto_detail() {
            if let Some(existing) = detail.iter_mut().find(|(ds, dn, _)| ds == s && dn == name) {
                existing.2 += *cycles;
            } else {
                detail.push((*s, name, *cycles));
            }
        }
        // Prevent resumption between iterations: each client offers no
        // session id, so nothing to clear, but keep the cache bounded.
        ctx.server_config().clear_session_cache();
    }
    Ok(Table2 { steps, crypto, detail, runs: ctx.iterations() })
}

/// The paper's Table 3 reference percentages.
pub const PAPER_TABLE3: [(&str, f64); 4] = [
    ("Public key encryption", 90.4),
    ("Private key encryption", 0.1),
    ("Hash functions", 2.8),
    ("Other functions", 1.7),
];

/// Crypto-category summary of the handshake (the paper's Table 3).
#[derive(Debug)]
pub struct Table3 {
    /// Cycles per category: public / private / hash / other.
    pub categories: PhaseSet,
    /// Total handshake cycles (crypto + non-crypto).
    pub total: Cycles,
}

impl Table3 {
    /// Crypto share of the whole handshake (paper: 95.0%).
    #[must_use]
    pub fn crypto_percent(&self) -> f64 {
        self.categories.total().percent_of(self.total)
    }
}

impl fmt::Display for Table3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = Table::new("Table 3. Crypto operations during SSL handshake");
        t.columns(&[
            ("Functionality", Align::Left),
            ("Measured %", Align::Right),
            ("Paper %", Align::Right),
        ]);
        let label = |cat: &str| match cat {
            "public" => "Public key encryption",
            "private" => "Private key encryption",
            "hash" => "Hash functions",
            _ => "Other functions",
        };
        for cat in ["public", "private", "hash", "other"] {
            let measured = self.categories.cycles(cat).percent_of(self.total);
            let paper =
                PAPER_TABLE3.iter().find(|(name, _)| *name == label(cat)).map_or(0.0, |(_, v)| *v);
            t.row(&[label(cat), &pct(measured), &pct(paper)]);
        }
        t.row(&["Total crypto operations", &pct(self.crypto_percent()), &pct(95.0)]);
        write!(f, "{t}")
    }
}

/// Categorizes a crypto function name into the paper's four groups.
#[must_use]
pub fn categorize(function: &str) -> &'static str {
    match function {
        "rsa_private_decryption" | "rsa_public_op" => "public",
        "pri_decryption_and_mac" | "pri_encryption_and_mac" => "private",
        "finish_mac" | "final_finish_mac" | "init_finished_mac" | "gen_master_secret"
        | "gen_key_block" | "mac" => "hash",
        _ => "other",
    }
}

/// Runs the Table 3 experiment (reusing the Table 2 measurement).
///
/// # Errors
///
/// Propagates SSL failures from the measured handshakes.
pub fn table3(ctx: &Context) -> Result<Table3, ExperimentError> {
    let t2 = table2(ctx)?;
    let mut categories = PhaseSet::new();
    for phase in t2.crypto.iter() {
        categories.add(categorize(phase.name()), phase.cycles());
    }
    Ok(Table3 { categories, total: t2.total() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_ctx::ctx;

    #[test]
    fn table2_all_steps_timed() {
        let _serial = crate::test_ctx::timing_lock();
        let t2 = table2(ctx()).expect("table2");
        for name in SERVER_STEP_NAMES {
            assert!(t2.steps.get(name).is_some(), "missing step {name}");
        }
        assert!(t2.crypto_total() <= t2.total(), "crypto is a subset of the handshake");
        let rendered = t2.to_string();
        assert!(rendered.contains("get_client_kx"));
        assert!(rendered.contains("rsa_private_decryption"));
    }

    #[test]
    fn table2_rsa_dominates_step5() {
        let _serial = crate::test_ctx::timing_lock();
        assert!(
            crate::test_ctx::eventually(3, || {
                let t2 = table2(ctx()).expect("table2");
                let rsa = t2.crypto.cycles("rsa_private_decryption");
                let step5 = t2.steps.cycles("get_client_kx");
                rsa.get() > step5.get() / 2
            }),
            "RSA decryption should dominate step 5"
        );
    }

    #[test]
    fn table3_public_key_dominates() {
        let _serial = crate::test_ctx::timing_lock();
        assert!(
            crate::test_ctx::eventually(3, || {
                let t3 = table3(ctx()).expect("table3");
                let public = t3.categories.cycles("public").percent_of(t3.total);
                let private = t3.categories.cycles("private").percent_of(t3.total);
                public > 30.0 && public > private && t3.crypto_percent() > 50.0
            }),
            "public-key work must dominate the handshake"
        );
        assert!(table3(ctx()).expect("table3").to_string().contains("Public key encryption"));
    }

    #[test]
    fn categorize_covers_known_functions() {
        assert_eq!(categorize("rsa_private_decryption"), "public");
        assert_eq!(categorize("pri_encryption_and_mac"), "private");
        assert_eq!(categorize("finish_mac"), "hash");
        assert_eq!(categorize("rand_pseudo_bytes"), "other");
        assert_eq!(categorize("x509_functions"), "other");
    }
}
