//! Table 1 and Figure 2: where an HTTPS transaction's cycles go.

use crate::experiments::{pct, ExperimentError};
use crate::Context;
use sslperf_profile::{Align, PhaseSet, Table};
use sslperf_websim::SecureWebServer;
use std::fmt;

/// The paper's Table 1 percentages (1 KB page, DES-CBC3-SHA, Pentium 4).
pub const PAPER_TABLE1: [(&str, f64); 5] =
    [("libcrypto", 70.83), ("libssl", 0.82), ("httpd", 1.84), ("vmlinux", 17.51), ("other", 9.00)];

/// Result of the Table 1 experiment.
#[derive(Debug)]
pub struct Table1 {
    /// Merged component cycles over all transactions.
    pub components: PhaseSet,
    /// File size used (bytes).
    pub file_size: usize,
    /// Number of transactions run.
    pub transactions: usize,
}

impl Table1 {
    /// Percentage of the transaction spent in SSL processing
    /// (libcrypto + libssl); the paper reports ~71.6%.
    #[must_use]
    pub fn ssl_percent(&self) -> f64 {
        self.components.percent("libcrypto") + self.components.percent("libssl")
    }
}

impl fmt::Display for Table1 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = Table::new(&format!(
            "Table 1. Execution time breakdown in web server ({} B page, {} transactions)",
            self.file_size, self.transactions
        ));
        t.columns(&[
            ("Component", Align::Left),
            ("Measured %", Align::Right),
            ("Paper %", Align::Right),
        ]);
        for (name, paper) in PAPER_TABLE1 {
            t.row(&[name, &pct(self.components.percent(name)), &pct(paper)]);
        }
        t.row(&["SSL total", &pct(self.ssl_percent()), &pct(71.65)]);
        write!(f, "{t}")
    }
}

/// Runs the Table 1 experiment: full-handshake HTTPS transactions serving a
/// 1 KB page, components accounted per `sslperf-websim`.
///
/// # Errors
///
/// Propagates SSL failures from the measured transactions.
pub fn table1(ctx: &Context) -> Result<Table1, ExperimentError> {
    let server = SecureWebServer::new(ctx.server_config(), ctx.suite());
    ctx.server_config().clear_session_cache();
    let file_size = 1024;
    let mut components = PhaseSet::new();
    for i in 0..ctx.iterations() {
        let report = server.run_with_session(file_size, 0x1000 + i as u64, None)?;
        components.merge(&report.components);
    }
    Ok(Table1 { components, file_size, transactions: ctx.iterations() })
}

/// The file sizes of Figure 2 (bytes).
pub const FIG2_SIZES: [usize; 6] = [1024, 2048, 4096, 8192, 16_384, 32_768];

/// One Figure 2 series point: crypto-time split at a file size.
#[derive(Debug)]
pub struct Fig2Point {
    /// Request file size in bytes.
    pub file_size: usize,
    /// Crypto-category split for this size.
    pub categories: PhaseSet,
}

/// Result of the Figure 2 experiment.
#[derive(Debug)]
pub struct Fig2 {
    /// One point per file size.
    pub points: Vec<Fig2Point>,
}

impl fmt::Display for Fig2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = Table::new("Figure 2. Time breakdown in crypto library vs request file size");
        t.columns(&[
            ("Size (KB)", Align::Right),
            ("public %", Align::Right),
            ("private %", Align::Right),
            ("hash %", Align::Right),
            ("other %", Align::Right),
        ]);
        for p in &self.points {
            t.row(&[
                &format!("{}", p.file_size / 1024),
                &pct(p.categories.percent("public")),
                &pct(p.categories.percent("private")),
                &pct(p.categories.percent("hash")),
                &pct(p.categories.percent("other")),
            ]);
        }
        writeln!(f, "{t}")?;
        writeln!(
            f,
            "Paper anchors: public ≈ 90% at 1 KB, falling with size; private ≈ 2.4% at\n\
             1 KB, growing with size (Figure 2)."
        )
    }
}

/// Runs the Figure 2 experiment across [`FIG2_SIZES`].
///
/// Each size runs `iterations` transactions and keeps the **median** cycle
/// count per crypto category: a single scheduler preemption during one
/// record's MAC or cipher call would otherwise dominate the sum (Oprofile's
/// sampling has the same robustness property).
///
/// # Errors
///
/// Propagates SSL failures from the measured transactions.
pub fn fig2(ctx: &Context) -> Result<Fig2, ExperimentError> {
    let server = SecureWebServer::new(ctx.server_config(), ctx.suite());
    ctx.server_config().clear_session_cache();
    let mut points = Vec::new();
    for (s, &file_size) in FIG2_SIZES.iter().enumerate() {
        let runs: Vec<PhaseSet> = (0..ctx.iterations().max(3))
            .map(|i| {
                let seed = 0x2000 + (s * 1000 + i) as u64;
                Ok(server.run_with_session(file_size, seed, None)?.crypto_categories)
            })
            .collect::<Result<_, ExperimentError>>()?;
        let mut categories = PhaseSet::new();
        for cat in ["public", "private", "hash", "other"] {
            let mut values: Vec<u64> = runs.iter().map(|r| r.cycles(cat).get()).collect();
            values.sort_unstable();
            categories.add(cat, sslperf_profile::Cycles::new(values[values.len() / 2]));
        }
        points.push(Fig2Point { file_size, categories });
    }
    Ok(Fig2 { points })
}

/// One suite's row in the [`suite_sweep`] extension experiment.
#[derive(Debug)]
pub struct SuiteRow {
    /// The cipher suite.
    pub suite: sslperf_ssl::CipherSuite,
    /// SSL share of the transaction (percent).
    pub ssl_percent: f64,
    /// Public-key share of crypto time (percent).
    pub public_percent: f64,
    /// Private-key (bulk cipher) share of crypto time (percent).
    pub private_percent: f64,
}

/// Extension experiment: the Figure 2 split across every cipher suite.
///
/// The paper's conclusion argues optimizations must target both the RSA
/// handshake and the bulk cipher; this sweep shows how the balance moves
/// with the bulk cipher's speed (RC4 shrinks the private share, 3DES
/// inflates it).
#[derive(Debug)]
pub struct SuiteSweep {
    /// One row per supported suite.
    pub rows: Vec<SuiteRow>,
    /// The file size each transaction served (bytes).
    pub file_size: usize,
}

impl SuiteSweep {
    /// The row for `suite`, if present.
    #[must_use]
    pub fn row(&self, suite: sslperf_ssl::CipherSuite) -> Option<&SuiteRow> {
        self.rows.iter().find(|r| r.suite == suite)
    }
}

impl fmt::Display for SuiteSweep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = Table::new(&format!(
            "Extension: crypto split by cipher suite ({} B page)",
            self.file_size
        ));
        t.columns(&[
            ("Suite", Align::Left),
            ("SSL %", Align::Right),
            ("public %", Align::Right),
            ("private %", Align::Right),
        ]);
        for row in &self.rows {
            t.row(&[
                row.suite.name(),
                &pct(row.ssl_percent),
                &pct(row.public_percent),
                &pct(row.private_percent),
            ]);
        }
        write!(f, "{t}")
    }
}

/// Runs the suite sweep at an 8 KB page (bulk work visible, handshake
/// still dominant enough to compare).
///
/// # Errors
///
/// Propagates SSL failures from the measured transactions.
pub fn suite_sweep(ctx: &Context) -> Result<SuiteSweep, ExperimentError> {
    let file_size = 8 * 1024;
    let mut rows = Vec::new();
    for suite in sslperf_ssl::CipherSuite::ALL {
        let server = SecureWebServer::new(ctx.server_config(), suite);
        ctx.server_config().clear_session_cache();
        let mut components = PhaseSet::new();
        let mut categories = PhaseSet::new();
        for i in 0..ctx.iterations().max(3) {
            let seed = 0x7000 + i as u64;
            let report = server.run_with_session(file_size, seed, None)?;
            components.merge(&report.components);
            categories.merge(&report.crypto_categories);
        }
        rows.push(SuiteRow {
            suite,
            ssl_percent: components.percent("libcrypto") + components.percent("libssl"),
            public_percent: categories.percent("public"),
            private_percent: categories.percent("private"),
        });
    }
    Ok(SuiteSweep { rows, file_size })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_ctx::ctx;
    #[test]
    fn suite_sweep_balances_follow_cipher_speed() {
        let _serial = crate::test_ctx::timing_lock();
        assert!(
            crate::test_ctx::eventually(3, || {
                let sweep = suite_sweep(ctx()).expect("suite sweep");
                let private = |s| sweep.row(s).expect("row").private_percent;
                // The slow bulk cipher (3DES) must spend a larger crypto
                // share on private-key work than the fast one (RC4).
                private(sslperf_ssl::CipherSuite::RsaDesCbc3Sha)
                    > private(sslperf_ssl::CipherSuite::RsaRc4Md5)
            }),
            "3DES must carry a larger bulk share than RC4"
        );
        assert!(suite_sweep(ctx()).expect("suite sweep").to_string().contains("DES-CBC3-SHA"));
    }

    #[test]
    fn table1_components_present_and_ssl_dominates() {
        let _serial = crate::test_ctx::timing_lock();
        let t1 = table1(ctx()).expect("table1");
        for (name, _) in PAPER_TABLE1 {
            assert!(t1.components.get(name).is_some(), "missing {name}");
        }
        assert!(
            crate::test_ctx::eventually(3, || {
                table1(ctx()).expect("table1").ssl_percent() > 40.0
            }),
            "SSL share {:.1}%",
            t1.ssl_percent()
        );
        let rendered = t1.to_string();
        assert!(rendered.contains("libcrypto"));
        assert!(rendered.contains("Paper %"));
    }

    #[test]
    fn fig2_public_share_declines_with_size() {
        let _serial = crate::test_ctx::timing_lock();
        let f2 = fig2(ctx()).expect("fig2");
        assert_eq!(f2.points.len(), FIG2_SIZES.len());
        assert!(
            crate::test_ctx::eventually(3, || {
                let f2 = fig2(ctx()).expect("fig2");
                let first = f2.points.first().expect("points");
                let last = f2.points.last().expect("points");
                first.categories.percent("public") > last.categories.percent("public")
                    && first.categories.percent("private") < last.categories.percent("private")
            }),
            "public-key share must fall and private share grow as the file grows"
        );
        assert!(f2.to_string().contains("Size (KB)"));
    }
}
