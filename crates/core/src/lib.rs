//! The experiment suite of *Anatomy and Performance of SSL Processing*
//! (Zhao, Iyer, Makineni, Bhuyan — ISPASS 2005), reproduced as a library.
//!
//! Every table and figure of the paper's evaluation is an entry point in
//! [`experiments`], running on the from-scratch substrates of this
//! workspace:
//!
//! | Paper artifact | Entry point |
//! |---|---|
//! | Table 1 (web-server component breakdown) | [`experiments::webserver::table1`] |
//! | Figure 2 (crypto-library split vs file size) | [`experiments::webserver::fig2`] |
//! | Table 2 (10-step handshake anatomy) | [`experiments::handshake::table2`] |
//! | Table 3 (crypto share of the handshake) | [`experiments::handshake::table3`] |
//! | Figure 3 (key-setup share vs data size) | [`experiments::symmetric::fig3`] |
//! | Table 4 (cipher data structures) | [`experiments::symmetric::table4`] |
//! | Table 5 (AES block-op breakdown) | [`experiments::symmetric::table5`] |
//! | Table 6 (DES/3DES breakdown) | [`experiments::symmetric::table6`] |
//! | Table 7 (RSA decrypt step breakdown) | [`experiments::rsa::table7`] |
//! | Table 8 (top-ten functions in RSA) | [`experiments::rsa::table8`] |
//! | Table 9 (`bn_mul_add_words` body) | [`experiments::arch::table9`] |
//! | Table 10 (MD5/SHA-1 phase breakdown) | [`experiments::hashes::table10`] |
//! | Table 11 (CPI, path length, throughput) | [`experiments::arch::table11`] |
//! | Table 12 (top-ten instructions) | [`experiments::arch::table12`] |
//! | §4 loaded server (real sockets) | [`experiments::netload::loaded_server`] |
//!
//! Use [`experiments::run_report`] with an [`experiments::ExperimentId`]
//! to run a selection, or [`experiments::run_all_reports`] for the whole
//! paper.
//!
//! # Examples
//!
//! ```no_run
//! use sslperf_core::{experiments, Context};
//!
//! let ctx = Context::builder().key_bits(512).iterations(2).build()?;
//! let t6 = experiments::symmetric::table6(&ctx)?;
//! println!("{t6}");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! (Marked `no_run` only because key generation takes a few seconds; the
//! test suite runs every experiment.)

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;

// Re-export the substrates under stable names so downstream users need a
// single dependency.
pub use sslperf_bignum as bignum;
pub use sslperf_ciphers as ciphers;
pub use sslperf_hashes as hashes;
pub use sslperf_isasim as isasim;
pub use sslperf_net as net;
pub use sslperf_profile as profile;
pub use sslperf_rng as rng;
pub use sslperf_rsa as rsa;
pub use sslperf_ssl as ssl;
pub use sslperf_websim as websim;

/// Commonly used types, one `use` away.
pub mod prelude {
    pub use crate::experiments;
    pub use crate::experiments::{ExperimentError, ExperimentId, Report};
    pub use crate::{Context, ContextBuilder, ContextError};
    pub use sslperf_ciphers::{Aes, BlockCipher, Cbc, Des, Des3, Rc4};
    pub use sslperf_hashes::{HashAlg, Hasher, Hmac, Md5, Sha1};
    pub use sslperf_net::{
        EventLoopServer, FleetSnapshot, MetricsSnapshot, ServerFleet, ServerMetrics, ServerOptions,
        ShardedSessionCache, TcpSslServer,
    };
    pub use sslperf_profile::{Cycles, PhaseSet, Table};
    pub use sslperf_rng::SslRng;
    pub use sslperf_rsa::{RsaPrivateKey, RsaPublicKey};
    pub use sslperf_ssl::{
        CipherSuite, ClientConfig, ClientMachine, Protocol, ServerConfig, ServerMachine,
        SessionCache, SessionStore, SslClient, SslServer, TicketKeyring, TicketSessionStore,
        Tls13ClientMachine, Tls13ServerMachine,
    };
    pub use sslperf_websim::SecureWebServer;
}

use sslperf_rng::SslRng;
use sslperf_rsa::{RsaError, RsaPrivateKey};
use sslperf_ssl::{CipherSuite, ServerConfig, SslError};
use std::fmt;

/// Why a [`Context`] could not be built.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ContextError {
    /// The builder was given zero iterations.
    ZeroIterations,
    /// RSA key generation failed for the requested size.
    Rsa(RsaError),
    /// The shared server configuration could not be constructed.
    Ssl(SslError),
}

impl fmt::Display for ContextError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ContextError::ZeroIterations => write!(f, "need at least one iteration"),
            ContextError::Rsa(e) => write!(f, "server key generation failed: {e}"),
            ContextError::Ssl(e) => write!(f, "server configuration failed: {e}"),
        }
    }
}

impl std::error::Error for ContextError {}

impl From<RsaError> for ContextError {
    fn from(e: RsaError) -> Self {
        ContextError::Rsa(e)
    }
}

impl From<SslError> for ContextError {
    fn from(e: SslError) -> Self {
        ContextError::Ssl(e)
    }
}

/// Configures and builds a [`Context`]; obtained from
/// [`Context::builder`].
///
/// Every knob has the paper's default: a 1024-bit server key, 10
/// measurement iterations, DES-CBC3-SHA, and a fixed key-generation seed
/// so runs are reproducible.
#[derive(Debug, Clone)]
pub struct ContextBuilder {
    key_bits: usize,
    iterations: usize,
    suite: CipherSuite,
    seed: Vec<u8>,
}

impl Default for ContextBuilder {
    fn default() -> Self {
        ContextBuilder {
            key_bits: 1024,
            iterations: 10,
            suite: CipherSuite::RsaDesCbc3Sha,
            seed: b"sslperf-context-server-key".to_vec(),
        }
    }
}

impl ContextBuilder {
    /// Server key size in bits (Table 7 always measures both 512 and
    /// 1024 regardless).
    #[must_use]
    pub fn key_bits(mut self, bits: usize) -> Self {
        self.key_bits = bits;
        self
    }

    /// Measurement repetitions per experiment.
    #[must_use]
    pub fn iterations(mut self, iterations: usize) -> Self {
        self.iterations = iterations;
        self
    }

    /// Cipher suite under study.
    #[must_use]
    pub fn suite(mut self, suite: CipherSuite) -> Self {
        self.suite = suite;
        self
    }

    /// Seed for the deterministic key-generation RNG.
    #[must_use]
    pub fn seed(mut self, seed: &[u8]) -> Self {
        self.seed = seed.to_vec();
        self
    }

    /// Generates the RSA fixtures and the server configuration.
    ///
    /// # Errors
    ///
    /// [`ContextError::ZeroIterations`] when `iterations` is zero, and
    /// key-generation or configuration failures otherwise.
    pub fn build(self) -> Result<Context, ContextError> {
        if self.iterations == 0 {
            return Err(ContextError::ZeroIterations);
        }
        let mut rng = SslRng::from_seed(&self.seed);
        let key_512 = RsaPrivateKey::generate(512, &mut rng)?;
        let key_1024 = RsaPrivateKey::generate(1024, &mut rng)?;
        let server_key = match self.key_bits {
            512 => key_512.clone(),
            1024 => key_1024.clone(),
            bits => RsaPrivateKey::generate(bits, &mut rng)?,
        };
        let server_config = ServerConfig::new(server_key, "www.sslperf.test")?;
        Ok(Context {
            key_bits: self.key_bits,
            iterations: self.iterations,
            suite: self.suite,
            server_config,
            key_512,
            key_1024,
        })
    }
}

/// Shared experiment configuration and fixtures.
///
/// Construction generates the RSA server key (the expensive part), so build
/// one `Context` and pass it to every experiment.
#[derive(Debug)]
pub struct Context {
    key_bits: usize,
    iterations: usize,
    suite: CipherSuite,
    server_config: ServerConfig,
    key_512: RsaPrivateKey,
    key_1024: RsaPrivateKey,
}

impl Context {
    /// Starts configuring a context; see [`ContextBuilder`] for the knobs
    /// and defaults.
    #[must_use]
    pub fn builder() -> ContextBuilder {
        ContextBuilder::default()
    }

    /// The paper's configuration: RSA-1024, DES-CBC3-SHA, enough iterations
    /// for stable numbers.
    ///
    /// # Panics
    ///
    /// Panics if key generation fails (not observed in practice).
    #[must_use]
    pub fn paper() -> Self {
        Self::builder().build().expect("paper context")
    }

    /// A fast configuration for tests: RSA-512 server key, few iterations.
    ///
    /// # Panics
    ///
    /// Panics if key generation fails (not observed in practice).
    #[must_use]
    pub fn quick() -> Self {
        Self::builder().key_bits(512).iterations(2).build().expect("quick context")
    }

    /// Custom key size and measurement repetition count.
    ///
    /// # Panics
    ///
    /// Panics if key generation fails (not observed in practice) or
    /// `iterations` is zero.
    #[deprecated(since = "0.2.0", note = "use Context::builder(), which returns Result")]
    #[doc(hidden)]
    #[must_use]
    pub fn with_settings(key_bits: usize, iterations: usize) -> Self {
        Self::builder().key_bits(key_bits).iterations(iterations).build().expect("context settings")
    }

    /// The server key size in bits.
    #[must_use]
    pub fn key_bits(&self) -> usize {
        self.key_bits
    }

    /// Measurement repetitions used by the experiments.
    #[must_use]
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// The cipher suite under study (the paper's DES-CBC3-SHA).
    #[must_use]
    pub fn suite(&self) -> CipherSuite {
        self.suite
    }

    /// The shared SSL server configuration.
    #[must_use]
    pub fn server_config(&self) -> &ServerConfig {
        &self.server_config
    }

    /// The 512-bit RSA key (Table 7's first column).
    #[must_use]
    pub fn key_512(&self) -> &RsaPrivateKey {
        &self.key_512
    }

    /// The 1024-bit RSA key (Table 7's second column, Table 8).
    #[must_use]
    pub fn key_1024(&self) -> &RsaPrivateKey {
        &self.key_1024
    }

    /// A deterministic RNG derived from the context plus a label.
    #[must_use]
    pub fn rng(&self, label: &str) -> SslRng {
        SslRng::from_seed(format!("sslperf-{label}").as_bytes())
    }
}

#[cfg(test)]
pub(crate) mod test_ctx {
    use crate::Context;
    use std::sync::{Mutex, MutexGuard, OnceLock};

    /// One shared quick context for the whole test suite (keygen is slow).
    pub fn ctx() -> &'static Context {
        static CTX: OnceLock<Context> = OnceLock::new();
        CTX.get_or_init(Context::quick)
    }

    /// Serializes timing-sensitive experiment tests: relative-throughput
    /// assertions (Table 11's orderings and friends) flake when other test
    /// threads saturate the cores mid-measurement. Poisoning is ignored —
    /// a failed timing test must not cascade into every other one.
    pub fn timing_lock() -> MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(())).lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Retries a noisy timing predicate a few times; real regressions fail
    /// consistently, scheduler blips do not.
    pub fn eventually(attempts: u32, mut f: impl FnMut() -> bool) -> bool {
        for _ in 0..attempts {
            if f() {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_accessors() {
        let ctx = test_ctx::ctx();
        assert_eq!(ctx.key_bits(), 512);
        assert!(ctx.iterations() >= 1);
        assert_eq!(ctx.suite().name(), "DES-CBC3-SHA");
        assert_eq!(ctx.key_512().modulus().bit_len(), 512);
        assert_eq!(ctx.key_1024().modulus().bit_len(), 1024);
    }

    #[test]
    fn builder_rejects_zero_iterations() {
        let err = Context::builder().iterations(0).build().expect_err("must fail");
        assert_eq!(err, ContextError::ZeroIterations);
        assert!(err.to_string().contains("iteration"));
    }

    #[test]
    fn rng_is_label_deterministic() {
        let ctx = test_ctx::ctx();
        let mut a = ctx.rng("x");
        let mut b = ctx.rng("x");
        let mut c = ctx.rng("y");
        assert_eq!(a.bytes(8), b.bytes(8));
        assert_ne!(a.bytes(8), c.bytes(8));
    }
}
