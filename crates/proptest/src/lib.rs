//! In-tree stand-in for the `proptest` crate.
//!
//! This workspace builds in environments with no crates.io access, so its
//! dependencies resolve to in-tree sources. This crate implements the
//! proptest surface the test suite actually uses — the `proptest!` macro,
//! `any`/range/`vec` strategies, `prop_assert*`, `prop_assume!` and a
//! deterministic per-test RNG. Failing cases report their generated inputs
//! but are not shrunk.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Case outcome, configuration and the deterministic RNG.

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is skipped.
        Reject,
        /// A `prop_assert*` failed with this message.
        Fail(String),
    }

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }
    }

    /// Deterministic splitmix64 generator seeded from the test name, so a
    /// failure reproduces on every run.
    #[derive(Debug, Clone)]
    pub struct TestRng(u64);

    impl TestRng {
        /// Seeds from a label (FNV-1a), typically the test's module path.
        #[must_use]
        pub fn deterministic(label: &str) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in label.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng(h)
        }

        /// The next 64 raw bits.
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// A value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }

    /// Run configuration; `cases` is the only knob this shim honors.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases generated per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per property.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and its integer-range implementations.

    use crate::test_runner::TestRng;

    /// A value generator. Unlike real proptest there is no value tree and
    /// no shrinking: strategies produce final values directly.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Produces one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! int_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u64) - (lo as u64);
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(rng.below(span + 1) as $t)
                }
            }

            impl Strategy for core::ops::RangeFrom<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let span = (<$t>::MAX as u64) - (self.start as u64);
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    self.start.wrapping_add(rng.below(span + 1) as $t)
                }
            }
        )*};
    }

    int_range_strategies!(u8, u16, u32, u64, usize);
}

pub mod arbitrary {
    //! [`Arbitrary`] types and the [`any`] entry point.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::marker::PhantomData;

    /// Types with a canonical [`any`] strategy.
    pub trait Arbitrary {
        /// Produces one arbitrary value.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    /// The strategy returned by [`any`].
    #[derive(Debug)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// The canonical strategy for `T`.
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    macro_rules! arbitrary_ints {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_ints!(u8, u16, u32, u64, usize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for crate::sample::Index {
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            crate::sample::Index::from_raw(rng.next_u64())
        }
    }
}

pub mod sample {
    //! Collection-relative sampling.

    /// A position resolved against a collection length at use time.
    #[derive(Debug, Clone, Copy)]
    pub struct Index(u64);

    impl Index {
        pub(crate) fn from_raw(raw: u64) -> Self {
            Index(raw)
        }

        /// Maps the index into `0..len`; `len` must be non-zero.
        #[must_use]
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index over an empty collection");
            (self.0 % len as u64) as usize
        }
    }
}

pub mod collection {
    //! `Vec` strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Inclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    /// Strategy generating a `Vec` from an element strategy and a size.
    #[derive(Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A `Vec` strategy with the given element strategy and size bounds.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo + 1) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The usual single import: strategies, config, and the macros.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Skips the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Fails the current case when the condition does not hold.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left
            )));
        }
    }};
}

/// Declares property tests: each `fn` runs `cases` times on generated
/// inputs. Supports the `#![proptest_config(..)]` header form.
#[macro_export]
macro_rules! proptest {
    (@impl $cfg:expr;
        $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    match outcome {
                        ::core::result::Result::Ok(()) => {}
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject,
                        ) => {}
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(msg),
                        ) => {
                            panic!(
                                "property '{}' failed at case {}: {}",
                                stringify!($name),
                                case,
                                msg
                            );
                        }
                    }
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl $cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @impl $crate::test_runner::ProptestConfig::default();
            $($rest)*
        );
    };
}

#[cfg(test)]
mod tests {
    use crate::collection::vec;
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_label() {
        let mut a = crate::test_runner::TestRng::deterministic("x");
        let mut b = crate::test_runner::TestRng::deterministic("x");
        let mut c = crate::test_runner::TestRng::deterministic("y");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3u32..10, y in 5usize..=5, v in vec(any::<u8>(), 0..4)) {
            prop_assert!((3..10).contains(&x));
            prop_assert_eq!(y, 5);
            prop_assert!(v.len() < 4);
        }

        #[test]
        fn assume_skips(x in 0u8..4) {
            prop_assume!(x != 0);
            prop_assert_ne!(x, 0);
        }

        #[test]
        fn index_resolves(i in any::<prop::sample::Index>(), len in 1usize..9) {
            prop_assert!(i.index(len) < len);
        }
    }
}
