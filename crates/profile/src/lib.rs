//! Measurement substrate for the SSL-processing anatomy reproduction.
//!
//! The original paper measured cycles on a 2.26 GHz Pentium 4 with
//! Oprofile/VTune sampling and `rdtsc`. This crate provides the in-process
//! equivalents used throughout the workspace:
//!
//! * [`Cycles`] — a cycle count at the paper's reference frequency
//!   ([`REF_HZ`]), converted from wall-clock time.
//! * [`Stopwatch`] and the [`measure`]/[`measure_min`] helpers — `rdtsc`
//!   style interval measurement.
//! * [`PhaseSet`] — named-phase accumulation used for every breakdown table
//!   in the paper (handshake steps, cipher phases, RSA steps, hash phases).
//! * [`counters`] — a thread-local per-function call/work-unit registry, the
//!   substitute for VTune's function-level sampling (Table 8).
//! * [`Table`] — plain-text table rendering shared by all experiments.
//!
//! # Examples
//!
//! ```
//! use sslperf_profile::{measure, PhaseSet};
//!
//! let mut phases = PhaseSet::new();
//! let (_, c) = measure(|| (0..1000u64).sum::<u64>());
//! phases.add("sum", c);
//! assert_eq!(phases.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod counters;
mod cycles;
mod phase;
mod table;

pub use cycles::{Cycles, REF_HZ};
pub use phase::{Phase, PhaseSet};
pub use table::{Align, Table};

use std::time::Instant;

/// An interval timer that reports elapsed time in reference-frequency cycles.
///
/// This is the software stand-in for the paper's "read timestamp instruction"
/// (`rdtsc`) methodology (§3.2).
///
/// # Examples
///
/// ```
/// use sslperf_profile::Stopwatch;
///
/// let sw = Stopwatch::start();
/// let elapsed = sw.elapsed();
/// assert!(elapsed.get() < u64::MAX);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts a new stopwatch.
    #[must_use]
    pub fn start() -> Self {
        Stopwatch { start: Instant::now() }
    }

    /// Returns the cycles elapsed since [`Stopwatch::start`].
    #[must_use]
    pub fn elapsed(&self) -> Cycles {
        Cycles::from_duration(self.start.elapsed())
    }
}

/// Runs `f` once and returns its result along with the elapsed cycles.
///
/// # Examples
///
/// ```
/// use sslperf_profile::measure;
///
/// let (value, cycles) = measure(|| 2 + 2);
/// assert_eq!(value, 4);
/// let _ = cycles;
/// ```
pub fn measure<T>(f: impl FnOnce() -> T) -> (T, Cycles) {
    let sw = Stopwatch::start();
    let value = f();
    (value, sw.elapsed())
}

/// Runs `f` `iters` times and returns the *average* cycles per run.
///
/// Averaging over many iterations amortizes timer granularity; use this for
/// kernels that complete in well under a microsecond (single cipher blocks,
/// hash compression functions).
///
/// # Panics
///
/// Panics if `iters` is zero.
pub fn measure_avg(iters: u32, mut f: impl FnMut()) -> Cycles {
    assert!(iters > 0, "measure_avg requires at least one iteration");
    let sw = Stopwatch::start();
    for _ in 0..iters {
        f();
    }
    Cycles::new(sw.elapsed().get() / u64::from(iters))
}

/// Runs `f` in `samples` batches of `iters` iterations each and returns the
/// **minimum** per-iteration cycle count across batches.
///
/// Taking the minimum of several batches filters out scheduler noise, the
/// standard technique for stable microbenchmark numbers on a busy host.
///
/// # Panics
///
/// Panics if `samples` or `iters` is zero.
pub fn measure_min(samples: u32, iters: u32, mut f: impl FnMut()) -> Cycles {
    assert!(samples > 0 && iters > 0, "measure_min requires at least one sample and iteration");
    let mut best = u64::MAX;
    for _ in 0..samples {
        let sw = Stopwatch::start();
        for _ in 0..iters {
            f();
        }
        best = best.min(sw.elapsed().get() / u64::from(iters));
    }
    Cycles::new(best)
}

/// Prevents the compiler from optimizing away a computed value.
///
/// Thin re-export-style wrapper over [`std::hint::black_box`] so dependent
/// crates don't need to import `std::hint` everywhere.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn measure_returns_value() {
        let (v, c) = measure(|| 41 + 1);
        assert_eq!(v, 42);
        assert!(c.get() < Cycles::from_duration(Duration::from_secs(10)).get());
    }

    #[test]
    fn measure_avg_divides_by_iters() {
        let c = measure_avg(10, || {
            black_box((0..100u64).sum::<u64>());
        });
        // The average of 10 iterations must be far below the total of a
        // 10-iteration run measured as one interval.
        let (_, total) = measure(|| {
            for _ in 0..10 {
                black_box((0..100u64).sum::<u64>());
            }
        });
        assert!(c.get() <= total.get().max(1) * 10);
    }

    #[test]
    fn measure_min_not_greater_than_avg() {
        let work = || {
            black_box((0..1000u64).fold(0u64, |a, b| a.wrapping_add(b * b)));
        };
        let min = measure_min(5, 100, work);
        let avg = measure_avg(100, work);
        // min-of-batches is at most a small factor above the plain average
        // (equality modulo noise); it must never be wildly larger.
        assert!(min.get() <= avg.get().saturating_mul(10).max(1000));
    }

    #[test]
    #[should_panic(expected = "at least one iteration")]
    fn measure_avg_zero_iters_panics() {
        let _ = measure_avg(0, || {});
    }

    #[test]
    fn stopwatch_is_monotonic() {
        let sw = Stopwatch::start();
        let a = sw.elapsed();
        let b = sw.elapsed();
        assert!(b.get() >= a.get());
    }
}
