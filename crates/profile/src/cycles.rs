//! Cycle counts at the paper's reference frequency.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub};
use std::time::Duration;

/// The reference clock frequency used to express time as cycles: 2.26 GHz,
/// the Pentium 4 used for the paper's web-server measurements (§3.1).
///
/// All wall-clock measurements in this workspace are converted to cycles at
/// this frequency so results are directly comparable with the paper's tables
/// (modulo the micro-architecture gap, discussed in `EXPERIMENTS.md`).
pub const REF_HZ: f64 = 2.26e9;

/// A number of CPU cycles at [`REF_HZ`].
///
/// # Examples
///
/// ```
/// use sslperf_profile::Cycles;
/// use std::time::Duration;
///
/// let c = Cycles::from_duration(Duration::from_micros(1));
/// assert_eq!(c.get(), 2260); // 1 µs at 2.26 GHz
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Cycles(u64);

impl Cycles {
    /// Zero cycles.
    pub const ZERO: Cycles = Cycles(0);

    /// Creates a cycle count from a raw value.
    #[must_use]
    pub const fn new(raw: u64) -> Self {
        Cycles(raw)
    }

    /// Converts a wall-clock duration into cycles at [`REF_HZ`].
    #[must_use]
    pub fn from_duration(d: Duration) -> Self {
        Cycles((d.as_secs_f64() * REF_HZ).round() as u64)
    }

    /// Returns the raw cycle count.
    #[must_use]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Returns this cycle count in thousands of cycles, the unit used by the
    /// paper's Table 2.
    #[must_use]
    pub fn kilo(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// Returns the equivalent wall-clock duration at [`REF_HZ`].
    #[must_use]
    pub fn to_duration(self) -> Duration {
        Duration::from_secs_f64(self.0 as f64 / REF_HZ)
    }

    /// Returns this count as a percentage of `total` (0.0 when `total` is zero).
    #[must_use]
    pub fn percent_of(self, total: Cycles) -> f64 {
        if total.0 == 0 {
            0.0
        } else {
            self.0 as f64 * 100.0 / total.0 as f64
        }
    }

    /// Saturating subtraction.
    #[must_use]
    pub fn saturating_sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(rhs.0))
    }

    /// Multiplies the count by an integer factor, saturating on overflow.
    #[must_use]
    pub fn scaled(self, factor: u64) -> Cycles {
        Cycles(self.0.saturating_mul(factor))
    }
}

impl Add for Cycles {
    type Output = Cycles;

    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for Cycles {
    fn add_assign(&mut self, rhs: Cycles) {
        *self = *self + rhs;
    }
}

impl Sub for Cycles {
    type Output = Cycles;

    fn sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(rhs.0))
    }
}

impl Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        iter.fold(Cycles::ZERO, Add::add)
    }
}

impl From<u64> for Cycles {
    fn from(raw: u64) -> Self {
        Cycles(raw)
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 10_000_000 {
            write!(f, "{:.2} Mcycles", self.0 as f64 / 1e6)
        } else if self.0 >= 10_000 {
            write!(f, "{:.1} kcycles", self.0 as f64 / 1e3)
        } else {
            write!(f, "{} cycles", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_round_trip() {
        let d = Duration::from_millis(5);
        let c = Cycles::from_duration(d);
        let back = c.to_duration();
        let err = back.as_secs_f64() - d.as_secs_f64();
        assert!(err.abs() < 1e-9, "round trip error {err}");
    }

    #[test]
    fn percent_of_handles_zero_total() {
        assert_eq!(Cycles::new(10).percent_of(Cycles::ZERO), 0.0);
        assert!((Cycles::new(25).percent_of(Cycles::new(100)) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn arithmetic_saturates() {
        let max = Cycles::new(u64::MAX);
        assert_eq!(max + Cycles::new(1), max);
        assert_eq!(Cycles::new(1) - Cycles::new(2), Cycles::ZERO);
        assert_eq!(max.scaled(2), max);
    }

    #[test]
    fn sum_adds_up() {
        let total: Cycles = [1u64, 2, 3].into_iter().map(Cycles::new).sum();
        assert_eq!(total, Cycles::new(6));
    }

    #[test]
    fn display_chooses_units() {
        assert_eq!(Cycles::new(500).to_string(), "500 cycles");
        assert_eq!(Cycles::new(20_000).to_string(), "20.0 kcycles");
        assert_eq!(Cycles::new(20_000_000).to_string(), "20.00 Mcycles");
    }

    #[test]
    fn kilo_matches_paper_units() {
        assert!((Cycles::new(18_941_000).kilo() - 18941.0).abs() < 1e-9);
    }
}
