//! Plain-text table rendering for experiment reports.
//!
//! Every experiment in `sslperf-core` renders its result as one of these
//! tables so `EXPERIMENTS.md` and the example binaries share a format.

use std::fmt;

/// Column alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Align {
    /// Left-aligned (labels).
    #[default]
    Left,
    /// Right-aligned (numbers).
    Right,
}

/// A simple monospace table with a title, header and rows.
///
/// # Examples
///
/// ```
/// use sslperf_profile::{Align, Table};
///
/// let mut t = Table::new("Table 6. DES breakdown");
/// t.columns(&[("Step", Align::Left), ("Cycles", Align::Right), ("%", Align::Right)]);
/// t.row(&["IP", "50", "13.1"]);
/// t.row(&["Substitution", "286", "74.7"]);
/// let text = t.to_string();
/// assert!(text.contains("Substitution"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    aligns: Vec<Align>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title.
    #[must_use]
    pub fn new(title: &str) -> Self {
        Table { title: title.to_owned(), ..Table::default() }
    }

    /// Defines the columns (header text and alignment). Replaces any
    /// previously defined columns.
    pub fn columns(&mut self, cols: &[(&str, Align)]) -> &mut Self {
        self.headers = cols.iter().map(|(h, _)| (*h).to_owned()).collect();
        self.aligns = cols.iter().map(|(_, a)| *a).collect();
        self
    }

    /// Appends a row. Extra cells beyond the defined columns are kept and
    /// rendered left-aligned.
    pub fn row<S: AsRef<str>>(&mut self, cells: &[S]) -> &mut Self {
        self.rows.push(cells.iter().map(|c| c.as_ref().to_owned()).collect());
        self
    }

    /// The table title.
    #[must_use]
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    #[must_use]
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    fn widths(&self) -> Vec<usize> {
        let ncols = self.headers.len().max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut w = vec![0usize; ncols];
        for (i, h) in self.headers.iter().enumerate() {
            w[i] = w[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                w[i] = w[i].max(cell.chars().count());
            }
        }
        w
    }

    fn align(&self, col: usize) -> Align {
        self.aligns.get(col).copied().unwrap_or(Align::Left)
    }
}

fn pad(cell: &str, width: usize, align: Align) -> String {
    let len = cell.chars().count();
    let fill = width.saturating_sub(len);
    match align {
        Align::Left => format!("{cell}{}", " ".repeat(fill)),
        Align::Right => format!("{}{cell}", " ".repeat(fill)),
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths = self.widths();
        let total: usize = widths.iter().sum::<usize>() + widths.len().saturating_sub(1) * 2;
        writeln!(f, "{}", self.title)?;
        writeln!(f, "{}", "=".repeat(self.title.chars().count().max(total)))?;
        if !self.headers.is_empty() {
            let line: Vec<String> = self
                .headers
                .iter()
                .enumerate()
                .map(|(i, h)| pad(h, widths[i], self.align(i)))
                .collect();
            writeln!(f, "{}", line.join("  ").trim_end())?;
            writeln!(f, "{}", "-".repeat(total))?;
        }
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| pad(c, widths.get(i).copied().unwrap_or(c.len()), self.align(i)))
                .collect();
            writeln!(f, "{}", line.join("  ").trim_end())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("T");
        t.columns(&[("name", Align::Left), ("val", Align::Right)]);
        t.row(&["alpha", "1"]);
        t.row(&["b", "12345"]);
        t
    }

    #[test]
    fn renders_all_rows() {
        let s = sample().to_string();
        assert!(s.contains("alpha"));
        assert!(s.contains("12345"));
        assert_eq!(sample().row_count(), 2);
    }

    #[test]
    fn right_alignment_pads_left() {
        let s = sample().to_string();
        // "val" column width is 5 ("12345"); the value 1 in row alpha must be
        // right-aligned: "alpha      1"
        assert!(s.lines().any(|l| l.ends_with("    1")), "got:\n{s}");
    }

    #[test]
    fn uneven_rows_do_not_panic() {
        let mut t = Table::new("x");
        t.columns(&[("a", Align::Left)]);
        t.row(&["1", "2", "3"]);
        let s = t.to_string();
        assert!(s.contains('3'));
    }

    #[test]
    fn empty_table_renders_title() {
        let t = Table::new("Just a title");
        assert!(t.to_string().contains("Just a title"));
    }

    #[test]
    fn pad_handles_exact_width() {
        assert_eq!(pad("ab", 2, Align::Left), "ab");
        assert_eq!(pad("ab", 4, Align::Right), "  ab");
    }
}
