//! Named-phase cycle accumulation.
//!
//! Every breakdown table in the paper (handshake steps, AES rounds, RSA
//! steps, hash phases…) is a list of *(phase name, cycles, percent)* rows.
//! [`PhaseSet`] accumulates those rows in insertion order.

use crate::Cycles;
use std::fmt;

/// One named phase with its accumulated cycles and invocation count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Phase {
    name: String,
    cycles: Cycles,
    hits: u64,
}

impl Phase {
    /// The phase name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total cycles accumulated in this phase.
    #[must_use]
    pub fn cycles(&self) -> Cycles {
        self.cycles
    }

    /// Number of times this phase was recorded.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }
}

/// An ordered collection of named phases.
///
/// Phases keep insertion order (the paper's tables are ordered by pipeline
/// step, not by cost), and recording the same name twice accumulates.
///
/// # Examples
///
/// ```
/// use sslperf_profile::{Cycles, PhaseSet};
///
/// let mut p = PhaseSet::new();
/// p.add("key setup", Cycles::new(300));
/// p.add("kernel", Cycles::new(700));
/// p.add("kernel", Cycles::new(300));
/// assert_eq!(p.total(), Cycles::new(1300));
/// assert!((p.percent("kernel") - 76.92).abs() < 0.01);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PhaseSet {
    phases: Vec<Phase>,
}

impl PhaseSet {
    /// Creates an empty phase set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `cycles` against `name`, accumulating if the phase exists.
    pub fn add(&mut self, name: &str, cycles: Cycles) {
        if let Some(p) = self.phases.iter_mut().find(|p| p.name == name) {
            p.cycles += cycles;
            p.hits += 1;
        } else {
            self.phases.push(Phase { name: name.to_owned(), cycles, hits: 1 });
        }
    }

    /// Times the closure and records the elapsed cycles against `name`.
    pub fn time<T>(&mut self, name: &str, f: impl FnOnce() -> T) -> T {
        let (value, cycles) = crate::measure(f);
        self.add(name, cycles);
        value
    }

    /// Returns the phase named `name`, if present.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&Phase> {
        self.phases.iter().find(|p| p.name == name)
    }

    /// Returns the cycles recorded for `name`, or zero if absent.
    #[must_use]
    pub fn cycles(&self, name: &str) -> Cycles {
        self.get(name).map_or(Cycles::ZERO, Phase::cycles)
    }

    /// Returns the percentage of the total attributed to `name`.
    #[must_use]
    pub fn percent(&self, name: &str) -> f64 {
        self.cycles(name).percent_of(self.total())
    }

    /// Sum of all phases.
    #[must_use]
    pub fn total(&self) -> Cycles {
        self.phases.iter().map(|p| p.cycles).sum()
    }

    /// Number of distinct phases.
    #[must_use]
    pub fn len(&self) -> usize {
        self.phases.len()
    }

    /// True when no phase has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.phases.is_empty()
    }

    /// Iterates over phases in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Phase> {
        self.phases.iter()
    }

    /// Merges another phase set into this one, accumulating same-name phases.
    pub fn merge(&mut self, other: &PhaseSet) {
        for p in &other.phases {
            if let Some(mine) = self.phases.iter_mut().find(|m| m.name == p.name) {
                mine.cycles += p.cycles;
                mine.hits += p.hits;
            } else {
                self.phases.push(p.clone());
            }
        }
    }

    /// Removes all recorded phases.
    pub fn clear(&mut self) {
        self.phases.clear();
    }
}

impl fmt::Display for PhaseSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total = self.total();
        for p in &self.phases {
            writeln!(
                f,
                "{:<32} {:>14} {:>7.2}%",
                p.name,
                p.cycles.get(),
                p.cycles.percent_of(total)
            )?;
        }
        writeln!(f, "{:<32} {:>14} {:>7.2}%", "Total", total.get(), 100.0)
    }
}

impl<'a> IntoIterator for &'a PhaseSet {
    type Item = &'a Phase;
    type IntoIter = std::slice::Iter<'a, Phase>;

    fn into_iter(self) -> Self::IntoIter {
        self.phases.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_same_name() {
        let mut p = PhaseSet::new();
        p.add("a", Cycles::new(10));
        p.add("a", Cycles::new(5));
        assert_eq!(p.len(), 1);
        assert_eq!(p.cycles("a"), Cycles::new(15));
        assert_eq!(p.get("a").unwrap().hits(), 2);
    }

    #[test]
    fn keeps_insertion_order() {
        let mut p = PhaseSet::new();
        p.add("z", Cycles::new(1));
        p.add("a", Cycles::new(2));
        p.add("m", Cycles::new(3));
        let names: Vec<_> = p.iter().map(Phase::name).collect();
        assert_eq!(names, ["z", "a", "m"]);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = PhaseSet::new();
        a.add("x", Cycles::new(1));
        let mut b = PhaseSet::new();
        b.add("x", Cycles::new(2));
        b.add("y", Cycles::new(3));
        a.merge(&b);
        assert_eq!(a.cycles("x"), Cycles::new(3));
        assert_eq!(a.cycles("y"), Cycles::new(3));
        assert_eq!(a.total(), Cycles::new(6));
    }

    #[test]
    fn percent_sums_to_100() {
        let mut p = PhaseSet::new();
        p.add("a", Cycles::new(30));
        p.add("b", Cycles::new(70));
        let total: f64 = ["a", "b"].iter().map(|n| p.percent(n)).sum();
        assert!((total - 100.0).abs() < 1e-9);
    }

    #[test]
    fn time_records_and_returns() {
        let mut p = PhaseSet::new();
        let v = p.time("work", || 7);
        assert_eq!(v, 7);
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn missing_phase_is_zero() {
        let p = PhaseSet::new();
        assert_eq!(p.cycles("nope"), Cycles::ZERO);
        assert_eq!(p.percent("nope"), 0.0);
        assert!(p.is_empty());
    }

    #[test]
    fn display_contains_total() {
        let mut p = PhaseSet::new();
        p.add("a", Cycles::new(5));
        let s = p.to_string();
        assert!(s.contains("Total"));
        assert!(s.contains('a'));
    }
}
