//! Thread-local per-function call/work counters.
//!
//! The paper attributes RSA time to individual OpenSSL bignum functions with
//! VTune's sampling profiler (Table 8). Sampling is noisy and unavailable in
//! a portable library, so this module takes the deterministic route: hot
//! functions *count* their invocations and work units (words processed) when
//! counting is enabled, and a separate calibration pass measures the cycle
//! cost per work unit of each kernel. Multiplying the two reproduces the
//! sampled attribution without perturbing the timed runs (counting is off by
//! default and costs a single thread-local branch).
//!
//! # Examples
//!
//! ```
//! use sslperf_profile::counters;
//!
//! counters::reset();
//! let _guard = counters::enable();
//! counters::count("bn_mul_add_words", 16);
//! counters::count("bn_mul_add_words", 16);
//! let snap = counters::snapshot();
//! assert_eq!(snap.get("bn_mul_add_words").unwrap().calls, 2);
//! assert_eq!(snap.get("bn_mul_add_words").unwrap().units, 32);
//! ```

use std::cell::{Cell, RefCell};
use std::collections::HashMap;

/// Accumulated statistics for one counted function.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter {
    /// Number of invocations.
    pub calls: u64,
    /// Total work units (meaning is function-specific; word kernels count
    /// words, block functions count blocks).
    pub units: u64,
}

thread_local! {
    static ENABLED: Cell<bool> = const { Cell::new(false) };
    static REGISTRY: RefCell<HashMap<&'static str, Counter>> = RefCell::new(HashMap::new());
}

/// A guard that keeps counting enabled until dropped.
///
/// Nested guards are not reference-counted: dropping any guard disables
/// counting. Profiling passes in this workspace never nest them.
#[derive(Debug)]
pub struct EnabledGuard(());

impl Drop for EnabledGuard {
    fn drop(&mut self) {
        ENABLED.with(|e| e.set(false));
    }
}

/// Enables counting on this thread until the returned guard is dropped.
#[must_use]
pub fn enable() -> EnabledGuard {
    ENABLED.with(|e| e.set(true));
    EnabledGuard(())
}

/// Returns whether counting is currently enabled on this thread.
#[must_use]
pub fn is_enabled() -> bool {
    ENABLED.with(Cell::get)
}

/// Records one call of `name` processing `units` work units.
///
/// A no-op unless counting is [enabled](enable); instrumented hot loops can
/// therefore keep the call unconditionally.
#[inline]
pub fn count(name: &'static str, units: u64) {
    if !is_enabled() {
        return;
    }
    REGISTRY.with(|r| {
        let mut map = r.borrow_mut();
        let c = map.entry(name).or_default();
        c.calls += 1;
        c.units += units;
    });
}

/// Clears all counters on this thread.
pub fn reset() {
    REGISTRY.with(|r| r.borrow_mut().clear());
}

/// A point-in-time copy of this thread's counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    counters: HashMap<&'static str, Counter>,
}

impl Snapshot {
    /// Returns the counter for `name`, if it was ever recorded.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&Counter> {
        self.counters.get(name)
    }

    /// Returns the number of calls recorded for `name` (zero if absent).
    #[must_use]
    pub fn calls(&self, name: &str) -> u64 {
        self.get(name).map_or(0, |c| c.calls)
    }

    /// Returns the work units recorded for `name` (zero if absent).
    #[must_use]
    pub fn units(&self, name: &str) -> u64 {
        self.get(name).map_or(0, |c| c.units)
    }

    /// Iterates over `(name, counter)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, &Counter)> {
        self.counters.iter().map(|(k, v)| (*k, v))
    }

    /// Number of distinct counted functions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// True when nothing was counted.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }
}

/// Copies this thread's counters.
#[must_use]
pub fn snapshot() -> Snapshot {
    REGISTRY.with(|r| Snapshot { counters: r.borrow().clone() })
}

/// Runs `f` with fresh counters enabled and returns its result plus the
/// snapshot of everything counted during the call.
pub fn counted<T>(f: impl FnOnce() -> T) -> (T, Snapshot) {
    reset();
    let guard = enable();
    let value = f();
    drop(guard);
    let snap = snapshot();
    reset();
    (value, snap)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default() {
        reset();
        count("nope", 5);
        assert!(snapshot().is_empty());
    }

    #[test]
    fn guard_scopes_counting() {
        reset();
        {
            let _g = enable();
            assert!(is_enabled());
            count("f", 3);
        }
        assert!(!is_enabled());
        count("f", 3);
        let snap = snapshot();
        assert_eq!(snap.calls("f"), 1);
        assert_eq!(snap.units("f"), 3);
        reset();
    }

    #[test]
    fn counted_isolates_and_restores() {
        reset();
        let (v, snap) = counted(|| {
            count("k", 2);
            count("k", 4);
            99
        });
        assert_eq!(v, 99);
        assert_eq!(snap.calls("k"), 2);
        assert_eq!(snap.units("k"), 6);
        // registry cleared afterwards
        assert!(snapshot().is_empty());
        assert!(!is_enabled());
    }

    #[test]
    fn snapshot_accessors_handle_missing() {
        let snap = Snapshot::default();
        assert_eq!(snap.calls("missing"), 0);
        assert_eq!(snap.units("missing"), 0);
        assert!(snap.get("missing").is_none());
        assert_eq!(snap.len(), 0);
    }

    #[test]
    fn threads_are_independent() {
        reset();
        let _g = enable();
        count("main_only", 1);
        let handle = std::thread::spawn(|| {
            // fresh thread: counting disabled, registry empty
            count("other", 1);
            snapshot().is_empty() && !is_enabled()
        });
        assert!(handle.join().unwrap());
        assert_eq!(snapshot().calls("main_only"), 1);
        drop(_g);
        reset();
    }
}
