//! The crypto worker pool: parallel RSA engines for the event-loop server.
//!
//! The paper's §5 observes that ~90% of a full handshake is one RSA
//! private-key decryption and proposes parallel crypto engines as the
//! server-side fix. [`CryptoPool`] is that fix for the event-loop
//! architecture: a small set of worker threads draining a **bounded** MPMC
//! job queue. A shard that hits the RSA boundary takes the suspended
//! [`CryptoJob`] from the connection's engine, submits it here, and keeps
//! sweeping its other sockets; the executed result comes back on the
//! shard's reply channel and resumes the handshake exactly where it
//! suspended.
//!
//! Backpressure: the queue is a `sync_channel` of fixed depth. Submission
//! never blocks — [`CryptoPool::try_submit`] hands the job back inside a
//! [`SubmitError`] so the shard can park it and retry on a full queue
//! ([`SubmitError::QueueFull`]) or fail the connection when the pool is
//! gone ([`SubmitError::ShutDown`]). Shutdown drops the sender side;
//! workers drain what is queued and exit.
//!
//! Batching ([`CryptoPool::start_batched`]): the worker that wins the
//! receiver mutex acts as the *collector* — it takes the first job
//! blocking, then keeps draining up to `batch_max` jobs, waiting at most
//! `batch_deadline` after the first. Holding the receiver lock for that
//! window is deliberate: it concentrates queued jobs into one batch
//! instead of scattering them across workers, and the deadline bounds the
//! latency cost at light load. Execution happens *outside* the lock via
//! [`CryptoJob::execute_batch`], which shares one blinding acquisition and
//! one scratch context across the batch; each job's result fans back to
//! its own shard's reply channel. A `batch_max` of 1 skips collection
//! entirely and behaves exactly like the unbatched pool.

use crate::metrics::ServerMetrics;
use crate::server::ServerStats;
use sslperf_ssl::{CryptoDone, CryptoJob, ServerConfig};
use std::sync::atomic::Ordering;
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Queue slots per worker: deep enough that a handshake burst keeps the
/// workers saturated without bouncing jobs back to the shards (a parked
/// job waits a whole sweep before retrying), shallow enough that the
/// queue stays bounded and saturation still surfaces as backpressure.
const QUEUE_DEPTH_PER_WORKER: usize = 32;

/// Why [`CryptoPool::try_submit`] did not accept a job. Both variants hand
/// the job back, but they demand different reactions from the event loop:
/// a full queue is transient (park the job on the connection and retry
/// next sweep), a shut-down pool is permanent (fail the connection — a
/// parked job would wait forever).
#[derive(Debug)]
pub enum SubmitError {
    /// The bounded queue had no free slot; back off and retry.
    QueueFull(CryptoJob),
    /// The pool has stopped accepting jobs and will never drain this one.
    ShutDown(CryptoJob),
}

impl SubmitError {
    /// Recovers the job for parking or inline execution.
    #[must_use]
    pub fn into_job(self) -> CryptoJob {
        match self {
            SubmitError::QueueFull(job) | SubmitError::ShutDown(job) => job,
        }
    }
}

/// One queued decrypt request: the suspended job plus the routing needed
/// to get the result back to the owning connection.
struct CryptoTask {
    /// Shard-local connection id, echoed back with the result.
    conn: u64,
    job: CryptoJob,
    /// The submitting shard's reply channel.
    reply: Sender<(u64, CryptoDone)>,
}

/// N worker threads draining a bounded MPMC queue of [`CryptoJob`]s.
///
/// Shared by every shard of an [`EventLoopServer`](crate::EventLoopServer)
/// started with [`ServerOptions::crypto_workers`](crate::ServerOptions)
/// &gt; 0. Workers execute jobs against the shared [`ServerConfig`]'s
/// private key and update the crypto counters in [`ServerStats`]; with
/// [`ServerOptions::batch_max`](crate::ServerOptions) &gt; 1 they collect
/// queued jobs into amortized decrypt batches first.
#[derive(Debug)]
pub struct CryptoPool {
    tx: Option<SyncSender<CryptoTask>>,
    workers: Vec<JoinHandle<()>>,
    stats: Arc<ServerStats>,
}

impl CryptoPool {
    /// Spawns `workers` threads sharing one bounded queue, executing every
    /// job solo — [`CryptoPool::start_batched`] with a `batch_max` of 1.
    ///
    /// # Panics
    ///
    /// Panics when `workers` is zero.
    #[must_use]
    pub fn start(workers: usize, config: Arc<ServerConfig>, stats: Arc<ServerStats>) -> Self {
        Self::start_batched(workers, 1, Duration::ZERO, config, stats, None)
    }

    /// Spawns `workers` threads sharing one bounded queue (MPMC through
    /// the same mutex-guarded receiver idiom the worker-pool server uses),
    /// collecting up to `batch_max` queued jobs into each decrypt batch
    /// and waiting at most `batch_deadline` after the first job of a
    /// batch. Per-batch anatomy (size, amortized vs. solo cycles) lands in
    /// `metrics` when provided.
    ///
    /// # Panics
    ///
    /// Panics when `workers` or `batch_max` is zero (the builder's
    /// [`OptionsError`](crate::OptionsError) catches both earlier for
    /// server-configured pools).
    #[must_use]
    pub fn start_batched(
        workers: usize,
        batch_max: usize,
        batch_deadline: Duration,
        config: Arc<ServerConfig>,
        stats: Arc<ServerStats>,
        metrics: Option<Arc<ServerMetrics>>,
    ) -> Self {
        assert!(workers > 0, "at least one crypto worker");
        assert!(batch_max > 0, "a batch holds at least one job");
        let (tx, rx) = mpsc::sync_channel::<CryptoTask>(workers * QUEUE_DEPTH_PER_WORKER);
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..workers)
            .map(|_| {
                let rx = Arc::clone(&rx);
                let config = Arc::clone(&config);
                let stats = Arc::clone(&stats);
                let metrics = metrics.clone();
                std::thread::spawn(move || {
                    worker_loop(&rx, batch_max, batch_deadline, &config, &stats, metrics.as_deref())
                })
            })
            .collect();
        CryptoPool { tx: Some(tx), workers, stats }
    }

    /// Submits a job without blocking. The job always comes back inside
    /// the error on refusal — the backpressure contract that keeps shards
    /// sweeping.
    ///
    /// # Errors
    ///
    /// [`SubmitError::QueueFull`] when every slot is taken (transient:
    /// park and retry); [`SubmitError::ShutDown`] when the pool no longer
    /// accepts jobs (permanent: fail the connection).
    // The error variants carry the job handed back for parking — a
    // payload, not an error condition — so their size is inherent to the
    // contract.
    #[allow(clippy::result_large_err)]
    pub fn try_submit(
        &self,
        conn: u64,
        job: CryptoJob,
        reply: &Sender<(u64, CryptoDone)>,
    ) -> Result<(), SubmitError> {
        let Some(tx) = &self.tx else { return Err(SubmitError::ShutDown(job)) };
        let task = CryptoTask { conn, job, reply: reply.clone() };
        // Count the depth *before* the send: a worker may dequeue (and
        // decrement) the instant the task lands, and the counter must
        // never underflow.
        let depth = self.stats.crypto_queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
        match tx.try_send(task) {
            Ok(()) => {
                self.stats.crypto_jobs.fetch_add(1, Ordering::Relaxed);
                self.stats.crypto_queue_depth_max.fetch_max(depth, Ordering::Relaxed);
                Ok(())
            }
            Err(err) => {
                self.stats.crypto_queue_depth.fetch_sub(1, Ordering::Relaxed);
                match err {
                    TrySendError::Full(task) => Err(SubmitError::QueueFull(task.job)),
                    TrySendError::Disconnected(task) => Err(SubmitError::ShutDown(task.job)),
                }
            }
        }
    }

    /// Stops accepting jobs, lets workers drain the queue, and joins them.
    pub fn shutdown(mut self) {
        self.stop_workers();
    }

    fn stop_workers(&mut self) {
        // Dropping the sender disconnects the queue; workers exit once the
        // backlog is drained.
        self.tx = None;
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for CryptoPool {
    fn drop(&mut self) {
        self.stop_workers();
    }
}

/// Collects one batch off the queue while holding the receiver lock: the
/// first job blocking, then up to `batch_max - 1` more within
/// `batch_deadline` of the first. Returns an empty vec when the queue is
/// disconnected and drained. With `batch_max == 1` no batch clock starts
/// and jobs flow exactly as in the unbatched pool.
fn collect_batch(
    rx: &Mutex<Receiver<CryptoTask>>,
    batch_max: usize,
    batch_deadline: Duration,
    stats: &ServerStats,
) -> Vec<CryptoTask> {
    let rx = rx.lock().expect("crypto queue lock");
    let Ok(first) = rx.recv() else { return Vec::new() };
    stats.crypto_queue_depth.fetch_sub(1, Ordering::Relaxed);
    let mut batch = Vec::with_capacity(batch_max);
    batch.push(first);
    if batch_max > 1 {
        batch[0].job.collect();
        let deadline = Instant::now() + batch_deadline;
        while batch.len() < batch_max {
            // Drain whatever is already queued first; only wait out the
            // deadline when the queue runs dry.
            let task = match rx.try_recv() {
                Ok(task) => task,
                Err(_) => {
                    let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
                        break;
                    };
                    match rx.recv_timeout(remaining) {
                        Ok(task) => task,
                        Err(RecvTimeoutError::Timeout | RecvTimeoutError::Disconnected) => break,
                    }
                }
            };
            stats.crypto_queue_depth.fetch_sub(1, Ordering::Relaxed);
            let mut task = task;
            task.job.collect();
            batch.push(task);
        }
    }
    batch
}

fn worker_loop(
    rx: &Mutex<Receiver<CryptoTask>>,
    batch_max: usize,
    batch_deadline: Duration,
    config: &ServerConfig,
    stats: &ServerStats,
    metrics: Option<&ServerMetrics>,
) {
    loop {
        let batch = collect_batch(rx, batch_max, batch_deadline, stats);
        if batch.is_empty() {
            return;
        }
        let size = batch.len();
        stats.crypto_batches.fetch_add(1, Ordering::Relaxed);
        if size > 1 {
            stats.crypto_batched_jobs.fetch_add(size as u64, Ordering::Relaxed);
        }
        let (mut tasks, jobs): (Vec<_>, Vec<_>) =
            batch.into_iter().map(|t| ((t.conn, t.reply), t.job)).unzip();
        let dones = if size == 1 {
            vec![jobs.into_iter().next().expect("size checked").execute(config.key())]
        } else {
            CryptoJob::execute_batch(jobs, config.key())
        };
        if let (Some(metrics), Some(done)) = (metrics, dones.first()) {
            metrics.note_crypto_batch(size, done.exec());
        }
        for ((conn, reply), done) in tasks.drain(..).zip(dones) {
            stats.crypto_queue_wait_cycles.fetch_add(done.queue_wait().get(), Ordering::Relaxed);
            stats.crypto_batch_wait_cycles.fetch_add(done.batch_wait().get(), Ordering::Relaxed);
            stats.crypto_exec_cycles.fetch_add(done.exec().get(), Ordering::Relaxed);
            // A send failure means the shard is gone; the result is moot.
            let _ = reply.send((conn, done));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sslperf_rng::SslRng;
    use sslperf_rsa::RsaPrivateKey;
    use sslperf_ssl::{CipherSuite, Engine, SslClient, SslServer};

    fn config() -> Arc<ServerConfig> {
        let mut rng = SslRng::from_seed(b"cryptopool-test-key");
        let key = RsaPrivateKey::generate(512, &mut rng).expect("keygen");
        Arc::new(ServerConfig::new(key, "pool.test").expect("config"))
    }

    /// Drives an offloaded engine handshake through the pool end to end.
    #[test]
    fn pool_executes_suspended_jobs() {
        let config = config();
        let stats = Arc::new(ServerStats::default());
        let pool = CryptoPool::start(2, Arc::clone(&config), Arc::clone(&stats));
        let (reply_tx, reply_rx) = mpsc::channel();

        let mut client =
            Engine::new(SslClient::new(CipherSuite::RsaDesCbc3Sha, SslRng::from_seed(b"cp-c")))
                .expect("client engine");
        let mut server = Engine::new(SslServer::new(&config, SslRng::from_seed(b"cp-s")))
            .expect("server engine");
        server.set_crypto_offload(true);

        let mut wire = vec![0u8; 16 * 1024];
        let mut spins = 0;
        while !(client.is_established() && server.is_established()) {
            let n = client.take_output(&mut wire);
            let mut offset = 0;
            while offset < n {
                offset += server.feed(&wire[offset..n]).expect("server feed");
            }
            if let Some(job) = server.take_crypto_job() {
                pool.try_submit(7, job, &reply_tx).expect("queue has room");
            }
            if server.crypto_pending() {
                let (conn, done) = reply_rx.recv().expect("pool reply");
                assert_eq!(conn, 7);
                server.complete_crypto(done).expect("resume");
            }
            let n = server.take_output(&mut wire);
            let mut offset = 0;
            while offset < n {
                offset += client.feed(&wire[offset..n]).expect("client feed");
            }
            spins += 1;
            assert!(spins < 16, "handshake did not converge");
        }
        assert_eq!(stats.crypto_jobs(), 1);
        assert!(stats.crypto_queue_depth_max() >= 1);
        // An unbatched pool reports one batch per job, all solo.
        assert_eq!(stats.crypto_batches(), 1);
        assert_eq!(stats.crypto_batched_jobs(), 0);
        assert_eq!(stats.crypto_batch_wait(), sslperf_profile::Cycles::ZERO);
        pool.shutdown();
    }

    /// A full queue hands the job back instead of blocking the caller.
    #[test]
    fn full_queue_returns_job_for_parking() {
        let config = config();
        let stats = Arc::new(ServerStats::default());
        let pool = CryptoPool::start(1, Arc::clone(&config), Arc::clone(&stats));
        let (reply_tx, reply_rx) = mpsc::channel();

        // Saturate: 1 worker × QUEUE_DEPTH_PER_WORKER slots, plus however
        // many the worker dequeues while we enqueue; keep submitting fresh
        // jobs until one bounces.
        let mut submitted = 0u64;
        let bounced = loop {
            let (_, job) = suspended_job(&config, submitted);
            match pool.try_submit(submitted, job, &reply_tx) {
                Ok(()) => submitted += 1,
                Err(SubmitError::QueueFull(job)) => break job,
                Err(SubmitError::ShutDown(_)) => panic!("pool is running"),
            }
            assert!(submitted < 256, "queue never filled");
        };
        // The bounced job is intact: executing it directly still works.
        let done = bounced.execute(config.key());
        assert!(done.exec().get() > 0);
        // Every accepted job eventually completes and replies.
        for _ in 0..submitted {
            let _ = reply_rx.recv().expect("reply for accepted job");
        }
        assert_eq!(stats.crypto_jobs(), submitted);
        pool.shutdown();
    }

    /// A batched pool combines queued jobs and each result still resumes
    /// its own handshake (results route by connection id).
    #[test]
    fn batched_pool_combines_queued_jobs() {
        let config = config();
        let stats = Arc::new(ServerStats::default());
        // One worker so every job lands in the same collector; a generous
        // deadline so the whole burst combines deterministically.
        let pool = CryptoPool::start_batched(
            1,
            4,
            Duration::from_millis(200),
            Arc::clone(&config),
            Arc::clone(&stats),
            None,
        );
        let (reply_tx, reply_rx) = mpsc::channel();

        let mut engines = Vec::new();
        for seq in 0..4u64 {
            let (server, job) = suspended_job(&config, seq);
            pool.try_submit(seq, job, &reply_tx).expect("queue has room");
            engines.push((seq, server));
        }
        for _ in 0..4 {
            let (conn, done) = reply_rx.recv().expect("batched reply");
            let (_, server) = engines.iter_mut().find(|(seq, _)| *seq == conn).expect("known conn");
            server.complete_crypto(done).expect("resume with batched result");
        }
        assert_eq!(stats.crypto_jobs(), 4);
        assert!(stats.crypto_batches() >= 1);
        assert!(stats.crypto_batched_jobs() >= 2, "at least one real batch formed");
        pool.shutdown();
    }

    /// Submitting into a shut-down pool reports `ShutDown`, not
    /// `QueueFull` — the event loop must fail the connection, not park it.
    #[test]
    fn shutdown_pool_reports_shutdown_distinctly() {
        let config = config();
        let stats = Arc::new(ServerStats::default());
        let mut pool = CryptoPool::start(1, Arc::clone(&config), Arc::clone(&stats));
        let (reply_tx, _reply_rx) = mpsc::channel();
        // Simulate shutdown without consuming the pool (stop_workers is
        // what `shutdown` and `Drop` both call).
        pool.stop_workers();
        let (_, job) = suspended_job(&config, 99);
        match pool.try_submit(99, job, &reply_tx) {
            Err(SubmitError::ShutDown(job)) => {
                // The job survives for a caller that wants inline fallback.
                let done = job.execute(config.key());
                assert!(done.exec().get() > 0);
            }
            Err(SubmitError::QueueFull(_)) => panic!("shutdown must not report full"),
            Ok(()) => panic!("shutdown pool accepted a job"),
        }
        assert_eq!(stats.crypto_jobs(), 0);
    }

    /// Builds a server engine suspended at the RSA boundary and returns
    /// its crypto job.
    fn suspended_job(config: &Arc<ServerConfig>, seq: u64) -> (Engine<SslServer<'_>>, CryptoJob) {
        let seed = format!("cp-fq-c-{seq}");
        let mut client = Engine::new(SslClient::new(
            CipherSuite::RsaDesCbc3Sha,
            SslRng::from_seed(seed.as_bytes()),
        ))
        .expect("client engine");
        let seed = format!("cp-fq-s-{seq}");
        let mut server = Engine::new(SslServer::new(config, SslRng::from_seed(seed.as_bytes())))
            .expect("server engine");
        server.set_crypto_offload(true);
        let mut wire = vec![0u8; 16 * 1024];
        while !server.crypto_pending() {
            let n = client.take_output(&mut wire);
            let mut offset = 0;
            while offset < n {
                offset += server.feed(&wire[offset..n]).expect("server feed");
            }
            let n = server.take_output(&mut wire);
            let mut offset = 0;
            while offset < n {
                offset += client.feed(&wire[offset..n]).expect("client feed");
            }
        }
        let job = server.take_crypto_job().expect("suspended job");
        (server, job)
    }
}
