//! The crypto worker pool: parallel, possibly *heterogeneous* crypto
//! engines for the event-loop server.
//!
//! The paper's §5 observes that ~90% of a full handshake is one RSA
//! private-key decryption and proposes parallel crypto engines as the
//! server-side fix; the multi-core SSL processor literature goes further
//! and models *unequal* engines — a dedicated modexp unit next to
//! general-purpose cores — behind a preferential scheduler. [`CryptoPool`]
//! implements both: every worker thread carries an [`EngineProfile`]
//! (per-job-class cost multipliers, plus optional bulk-cipher capability),
//! and submission routes each job by job-class → engine affinity.
//!
//! Scheduling, in order:
//!
//! * **Affinity**: a job goes to the live engine with the lowest cost
//!   multiplier for its class ([`CryptoOp::RsaDecrypt`],
//!   [`CryptoOp::DheAgree`], or [`CryptoOp::BulkSeal`]); ties break to
//!   the shortest queue.
//! * **Spill**: when the preferred engine's queue is full the job spills
//!   to the next-cheapest engine with room (`crypto_spilled_jobs`).
//! * **Stealing**: an idle engine steals the oldest *compatible* job from
//!   a queue that is backed up past one batch, or from a dead engine's
//!   queue ([`CryptoPool::kill_engine`]) regardless of length
//!   (`crypto_stolen_jobs`). Bulk jobs are only ever stolen by
//!   bulk-capable engines.
//!
//! Backpressure and fairness: queues are bounded
//! ([`QUEUE_DEPTH_PER_WORKER`] slots per engine) and submission never
//! blocks — [`CryptoPool::try_submit`] hands the job back inside
//! [`SubmitError::QueueFull`] together with a **ticket**. Freed slots are
//! reserved for ticket holders in FIFO order: a fresh submission is
//! refused while longer-waiting parked jobs could use the free slots, so
//! a shard parked on a saturated queue is re-admitted in bounded order
//! instead of being starved by fresh traffic from other shards
//! ([`CryptoPool::resubmit`] / [`CryptoPool::cancel_ticket`]).
//!
//! Depth accounting: `crypto_queue_depth` counts jobs queued *or
//! executing* and is sampled (and `crypto_queue_depth_max` raised) at
//! enqueue, inside the submission lock; the accepted depth travels back
//! to the shard in [`PoolReply::depth_at_submit`] so metrics report the
//! burst the job actually experienced, not whatever the counter reads
//! after the collector has drained.
//!
//! Batching ([`CryptoPool::start_batched`]): the engine that dequeues a
//! first job keeps collecting from *its own* queue up to `batch_max`
//! jobs, waiting at most `batch_deadline` after the first. Execution
//! happens outside the lock via [`CryptoJob::execute_batch`]; each job's
//! result fans back to its own shard's reply channel. A `batch_max` of 1
//! skips collection entirely and behaves exactly like the unbatched pool.
//!
//! Engine slowdown is simulated, not faked: after executing, a worker
//! whose multiplier for the job class exceeds 1.0 busy-waits the extra
//! cycles out and stretches the recorded exec cost to match, so both the
//! wall-clock behaviour and the ledger see the cost the modelled engine
//! would have paid — while wire flights stay byte-identical (the job's
//! rng discipline is untouched).

use crate::metrics::ServerMetrics;
use crate::server::ServerStats;
use sslperf_profile::{Cycles, Stopwatch};
use sslperf_ssl::{CryptoDone, CryptoJob, CryptoOp, ServerConfig};
use std::collections::VecDeque;
use std::sync::atomic::Ordering;
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Queue slots per engine: deep enough that a handshake burst keeps the
/// workers saturated without bouncing jobs back to the shards (a parked
/// job waits a whole sweep before retrying), shallow enough that the
/// queue stays bounded and saturation still surfaces as backpressure.
pub const QUEUE_DEPTH_PER_WORKER: usize = 32;

/// How long workers sleep between condition checks; submissions, kills
/// and shutdown all notify, so this only bounds the staleness of checks
/// no one signalled.
const IDLE_WAIT: Duration = Duration::from_millis(10);

/// Reservations older than this are presumed abandoned (the parked
/// connection died without [`CryptoPool::cancel_ticket`] — e.g. its
/// process was killed) and stop blocking fresh submissions.
const TICKET_TTL: Duration = Duration::from_secs(5);

/// The scheduling class of a queued job, derived from its [`CryptoOp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JobClass {
    Rsa,
    Dhe,
    Bulk,
}

fn class_of(job: &CryptoJob) -> JobClass {
    match job.op() {
        CryptoOp::RsaDecrypt { .. } => JobClass::Rsa,
        CryptoOp::DheAgree { .. } => JobClass::Dhe,
        CryptoOp::BulkSeal { .. } => JobClass::Bulk,
    }
}

/// The simulated hardware behind one pool worker: per-job-class cost
/// multipliers relative to a native core (1.0 = native speed; a machine
/// with one native-speed RSA engine and 3.0-multiplier general cores
/// models an RSA engine three times faster than its cores), plus whether
/// the engine can run bulk-cipher jobs at all.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineProfile {
    /// Display name for reports and experiment labels.
    pub name: String,
    /// Cost multiplier for RSA private-key jobs (>= 1.0).
    pub rsa_cost: f64,
    /// Cost multiplier for DHE agreement jobs (>= 1.0).
    pub dhe_cost: f64,
    /// Bulk-cipher capability: `Some(multiplier)` when the engine also
    /// accepts record-sealing jobs, `None` for a dedicated key-exchange
    /// engine that cannot run them.
    pub bulk_cost: Option<f64>,
}

impl EngineProfile {
    /// A native-speed general-purpose core: every class at 1.0.
    #[must_use]
    pub fn general() -> Self {
        EngineProfile { name: "general".into(), rsa_cost: 1.0, dhe_cost: 1.0, bulk_cost: Some(1.0) }
    }

    /// A general-purpose core slowed by `factor` in every class — the
    /// standard way to model an accelerator: run the accelerator at 1.0
    /// and the plain cores at `factor`.
    #[must_use]
    pub fn general_slowed(factor: f64) -> Self {
        EngineProfile {
            name: format!("general-x{factor}"),
            rsa_cost: factor,
            dhe_cost: factor,
            bulk_cost: Some(factor),
        }
    }

    /// A dedicated key-exchange engine: native-speed modexp (RSA and DHE
    /// both reduce to Montgomery exponentiation), no bulk capability.
    #[must_use]
    pub fn rsa_engine() -> Self {
        EngineProfile { name: "rsa-engine".into(), rsa_cost: 1.0, dhe_cost: 1.0, bulk_cost: None }
    }

    /// Whether every multiplier is finite and at least 1.0 (the pool
    /// simulates slowdown by busy-waiting; it cannot make real hardware
    /// faster than native).
    #[must_use]
    pub fn is_valid(&self) -> bool {
        let ok = |c: f64| c.is_finite() && c >= 1.0;
        ok(self.rsa_cost) && ok(self.dhe_cost) && self.bulk_cost.is_none_or(ok)
    }

    fn accepts(&self, class: JobClass) -> bool {
        class != JobClass::Bulk || self.bulk_cost.is_some()
    }

    fn cost(&self, class: JobClass) -> f64 {
        match class {
            JobClass::Rsa => self.rsa_cost,
            JobClass::Dhe => self.dhe_cost,
            JobClass::Bulk => self.bulk_cost.unwrap_or(f64::INFINITY),
        }
    }
}

/// Why [`CryptoPool::try_submit`] did not accept a job. Both variants hand
/// the job back, but they demand different reactions from the event loop:
/// a full queue is transient (park the job on the connection and retry
/// next sweep, quoting the ticket), a shut-down pool is permanent (fail
/// the connection — a parked job would wait forever).
#[derive(Debug)]
pub enum SubmitError {
    /// Every slot this job's class could use is taken or reserved for a
    /// longer-waiting parked job. Park the job and retry with
    /// [`CryptoPool::resubmit`], quoting `ticket` — the ticket holds the
    /// connection's place in the FIFO admission order.
    QueueFull {
        /// The refused job, handed back for parking.
        job: CryptoJob,
        /// The connection's place in the admission queue.
        ticket: u64,
    },
    /// The pool has stopped accepting jobs (shut down, or no live engine
    /// can ever run this job class) and will never drain this one.
    ShutDown(CryptoJob),
}

impl SubmitError {
    /// Recovers the job for parking or inline execution.
    #[must_use]
    pub fn into_job(self) -> CryptoJob {
        match self {
            SubmitError::QueueFull { job, .. } | SubmitError::ShutDown(job) => job,
        }
    }
}

/// An executed job on its way back to the submitting shard.
#[derive(Debug)]
pub struct PoolReply {
    /// Shard-local connection id, echoed back from submission.
    pub conn: u64,
    /// Jobs queued-or-executing the instant this job was accepted (this
    /// job included) — the burst depth the job actually experienced,
    /// sampled inside the submission lock.
    pub depth_at_submit: u64,
    /// The executed result.
    pub done: CryptoDone,
}

/// One queued request: the suspended job plus the routing needed to get
/// the result back to the owning connection.
struct CryptoTask {
    conn: u64,
    class: JobClass,
    depth_at_submit: u64,
    job: CryptoJob,
    reply: Sender<PoolReply>,
}

/// A parked connection's place in the FIFO admission order.
struct Waiter {
    ticket: u64,
    class: JobClass,
    since: Instant,
}

/// Everything the submission path and the workers share under one lock.
struct PoolState {
    /// One bounded queue per engine.
    queues: Vec<VecDeque<CryptoTask>>,
    /// Which engines are alive ([`CryptoPool::kill_engine`] clears one).
    live: Vec<bool>,
    /// FIFO of parked connections waiting for a slot, per ticket.
    waiters: VecDeque<Waiter>,
    next_ticket: u64,
    /// Cleared at shutdown; workers drain and exit.
    open: bool,
}

impl PoolState {
    fn prune_stale_waiters(&mut self) {
        self.waiters.retain(|w| w.since.elapsed() <= TICKET_TTL);
    }

    fn remove_waiter(&mut self, ticket: u64) {
        self.waiters.retain(|w| w.ticket != ticket);
    }

    /// Same-class waiters ahead of `ticket` (all of them when the ticket
    /// is absent — a fresh submission queues behind every parked job).
    fn waiters_ahead(&self, class: JobClass, ticket: Option<u64>) -> usize {
        let same_class = self.waiters.iter().filter(|w| w.class == class);
        match ticket {
            Some(t) => same_class.take_while(|w| w.ticket != t).count(),
            None => same_class.count(),
        }
    }

    fn ensure_waiter(&mut self, ticket: u64, class: JobClass) {
        if !self.waiters.iter().any(|w| w.ticket == ticket) {
            self.waiters.push_back(Waiter { ticket, class, since: Instant::now() });
        }
    }

    fn issue_ticket(&mut self, class: JobClass) -> u64 {
        let ticket = self.next_ticket;
        self.next_ticket += 1;
        self.waiters.push_back(Waiter { ticket, class, since: Instant::now() });
        ticket
    }
}

struct Shared {
    state: Mutex<PoolState>,
    ready: Condvar,
    profiles: Vec<EngineProfile>,
    batch_max: usize,
    batch_deadline: Duration,
}

/// Worker threads — one per [`EngineProfile`] — draining bounded
/// per-engine queues behind the preferential scheduler.
///
/// Shared by every shard of an [`EventLoopServer`](crate::EventLoopServer)
/// started with [`ServerOptions::crypto_workers`](crate::ServerOptions)
/// &gt; 0 or with explicit engine profiles. Workers execute jobs against
/// the shared [`ServerConfig`]'s private key and update the crypto
/// counters in [`ServerStats`]; with
/// [`ServerOptions::batch_max`](crate::ServerOptions) &gt; 1 they collect
/// queued jobs into amortized decrypt batches first.
#[derive(Debug)]
pub struct CryptoPool {
    shared: Arc<SharedOpaque>,
    workers: Vec<JoinHandle<()>>,
    stats: Arc<ServerStats>,
}

/// Newtype so [`CryptoPool`] can derive `Debug` without exposing the
/// scheduler internals.
struct SharedOpaque(Shared);

impl std::fmt::Debug for SharedOpaque {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CryptoPoolShared").field("engines", &self.0.profiles.len()).finish()
    }
}

impl CryptoPool {
    /// Spawns `workers` identical native-speed engines, executing every
    /// job solo — [`CryptoPool::start_batched`] with a `batch_max` of 1.
    ///
    /// # Panics
    ///
    /// Panics when `workers` is zero.
    #[must_use]
    pub fn start(workers: usize, config: Arc<ServerConfig>, stats: Arc<ServerStats>) -> Self {
        Self::start_batched(workers, 1, Duration::ZERO, config, stats, None)
    }

    /// Spawns `workers` identical native-speed engines with the given
    /// batching parameters — the homogeneous special case of
    /// [`CryptoPool::start_heterogeneous`].
    ///
    /// # Panics
    ///
    /// Panics when `workers` or `batch_max` is zero (the builder's
    /// [`OptionsError`](crate::OptionsError) catches both earlier for
    /// server-configured pools).
    #[must_use]
    pub fn start_batched(
        workers: usize,
        batch_max: usize,
        batch_deadline: Duration,
        config: Arc<ServerConfig>,
        stats: Arc<ServerStats>,
        metrics: Option<Arc<ServerMetrics>>,
    ) -> Self {
        assert!(workers > 0, "at least one crypto worker");
        let profiles = vec![EngineProfile::general(); workers];
        Self::start_heterogeneous(profiles, batch_max, batch_deadline, config, stats, metrics)
    }

    /// Spawns one worker thread per profile. Jobs route to the live
    /// engine with the lowest multiplier for their class (shortest queue
    /// among ties), spill to the next-cheapest engine when the preferred
    /// queue is full, and idle engines steal compatible work from
    /// backed-up or dead queues.
    ///
    /// # Panics
    ///
    /// Panics when `profiles` is empty, any profile has a multiplier
    /// below 1.0 (see [`EngineProfile::is_valid`]), or `batch_max` is
    /// zero.
    #[must_use]
    pub fn start_heterogeneous(
        profiles: Vec<EngineProfile>,
        batch_max: usize,
        batch_deadline: Duration,
        config: Arc<ServerConfig>,
        stats: Arc<ServerStats>,
        metrics: Option<Arc<ServerMetrics>>,
    ) -> Self {
        assert!(!profiles.is_empty(), "at least one engine profile");
        assert!(profiles.iter().all(EngineProfile::is_valid), "multipliers must be >= 1.0");
        assert!(batch_max > 0, "a batch holds at least one job");
        let engines = profiles.len();
        let shared = Arc::new(SharedOpaque(Shared {
            state: Mutex::new(PoolState {
                queues: (0..engines).map(|_| VecDeque::new()).collect(),
                live: vec![true; engines],
                waiters: VecDeque::new(),
                next_ticket: 0,
                open: true,
            }),
            ready: Condvar::new(),
            profiles,
            batch_max,
            batch_deadline,
        }));
        let workers = (0..engines)
            .map(|index| {
                let shared = Arc::clone(&shared);
                let config = Arc::clone(&config);
                let stats = Arc::clone(&stats);
                let metrics = metrics.clone();
                std::thread::spawn(move || {
                    worker_loop(index, &shared.0, &config, &stats, metrics.as_deref());
                })
            })
            .collect();
        CryptoPool { shared, workers, stats }
    }

    /// How many engines (live or killed) the pool was started with.
    #[must_use]
    pub fn engines(&self) -> usize {
        self.shared.0.profiles.len()
    }

    /// Submits a fresh job without blocking. The job always comes back
    /// inside the error on refusal — the backpressure contract that keeps
    /// shards sweeping.
    ///
    /// # Errors
    ///
    /// [`SubmitError::QueueFull`] when every usable slot is taken or
    /// reserved (transient: park the job and [`CryptoPool::resubmit`]
    /// with the returned ticket); [`SubmitError::ShutDown`] when the pool
    /// no longer accepts jobs (permanent: fail the connection).
    // The error variants carry the job handed back for parking — a
    // payload, not an error condition — so their size is inherent to the
    // contract.
    #[allow(clippy::result_large_err)]
    pub fn try_submit(
        &self,
        conn: u64,
        job: CryptoJob,
        reply: &Sender<PoolReply>,
    ) -> Result<(), SubmitError> {
        self.submit_inner(conn, job, reply, None)
    }

    /// Retries a previously refused job, quoting the ticket from
    /// [`SubmitError::QueueFull`]. Ticket holders are admitted in FIFO
    /// order before any fresh submission of the same class, which bounds
    /// how long a parked handshake can be deferred under saturation.
    ///
    /// # Errors
    ///
    /// Same contract as [`CryptoPool::try_submit`]; on refusal the same
    /// ticket comes back (the place in line is kept).
    #[allow(clippy::result_large_err)]
    pub fn resubmit(
        &self,
        conn: u64,
        job: CryptoJob,
        ticket: u64,
        reply: &Sender<PoolReply>,
    ) -> Result<(), SubmitError> {
        self.submit_inner(conn, job, reply, Some(ticket))
    }

    /// Releases a parked connection's admission reservation — called when
    /// a connection dies with a parked job, so its reserved slot does not
    /// block fresh submissions until the ticket goes stale.
    pub fn cancel_ticket(&self, ticket: u64) {
        if let Ok(mut st) = self.shared.0.state.lock() {
            st.remove_waiter(ticket);
        }
    }

    /// Marks one engine dead: it stops dequeuing, its queued jobs become
    /// stealable by any compatible engine regardless of backlog, and new
    /// submissions never route to it. Returns false when the index is out
    /// of range or the engine is already dead. The fleet keeps serving on
    /// the survivors — this is the scheduler-degradation experiment's
    /// fault injection.
    pub fn kill_engine(&self, index: usize) -> bool {
        let mut st = self.shared.0.state.lock().expect("pool lock");
        if index >= st.live.len() || !st.live[index] {
            return false;
        }
        st.live[index] = false;
        drop(st);
        self.shared.0.ready.notify_all();
        true
    }

    #[allow(clippy::result_large_err)] // both variants hand the job back by design
    fn submit_inner(
        &self,
        conn: u64,
        job: CryptoJob,
        reply: &Sender<PoolReply>,
        ticket: Option<u64>,
    ) -> Result<(), SubmitError> {
        let class = class_of(&job);
        let shared = &self.shared.0;
        let mut st = shared.state.lock().expect("pool lock");
        if !st.open {
            return Err(SubmitError::ShutDown(job));
        }
        let capable: Vec<usize> = (0..shared.profiles.len())
            .filter(|&i| st.live[i] && shared.profiles[i].accepts(class))
            .collect();
        if capable.is_empty() {
            // No live engine can ever run this class: permanent, like a
            // shut-down pool.
            if let Some(t) = ticket {
                st.remove_waiter(t);
            }
            return Err(SubmitError::ShutDown(job));
        }
        st.prune_stale_waiters();
        let free: usize = capable
            .iter()
            .map(|&i| QUEUE_DEPTH_PER_WORKER.saturating_sub(st.queues[i].len()))
            .sum();
        // FIFO admission: free slots belong to longer-waiting parked jobs
        // first. A fresh submission counts every parked job of its class
        // as ahead of it.
        let ahead = st.waiters_ahead(class, ticket);
        if free <= ahead {
            let ticket = match ticket {
                Some(t) => {
                    st.ensure_waiter(t, class);
                    t
                }
                None => st.issue_ticket(class),
            };
            return Err(SubmitError::QueueFull { job, ticket });
        }
        if let Some(t) = ticket {
            st.remove_waiter(t);
        }
        // Preferential routing: cheapest multiplier first, shortest queue
        // among equals; spill to the next-cheapest engine with room when
        // the preferred one is full.
        let target = capable
            .iter()
            .copied()
            .filter(|&i| st.queues[i].len() < QUEUE_DEPTH_PER_WORKER)
            .min_by(|&a, &b| {
                let (ca, cb) = (shared.profiles[a].cost(class), shared.profiles[b].cost(class));
                ca.partial_cmp(&cb)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(st.queues[a].len().cmp(&st.queues[b].len()))
            })
            .expect("free > ahead >= 0 implies a capable engine has room");
        let cheapest =
            capable.iter().map(|&i| shared.profiles[i].cost(class)).fold(f64::INFINITY, f64::min);
        if shared.profiles[target].cost(class) > cheapest {
            self.stats.crypto_spilled_jobs.fetch_add(1, Ordering::Relaxed);
        }
        if class == JobClass::Bulk {
            self.stats.crypto_bulk_jobs.fetch_add(1, Ordering::Relaxed);
        }
        // Depth counts queued + executing and is sampled here, inside the
        // lock, so burst high-water marks are exact; the worker decrements
        // when the job *finishes executing*, not when a collector dequeues
        // it.
        let depth = self.stats.crypto_queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.stats.crypto_jobs.fetch_add(1, Ordering::Relaxed);
        self.stats.crypto_queue_depth_max.fetch_max(depth, Ordering::Relaxed);
        st.queues[target].push_back(CryptoTask {
            conn,
            class,
            depth_at_submit: depth,
            job,
            reply: reply.clone(),
        });
        drop(st);
        shared.ready.notify_all();
        Ok(())
    }

    /// Stops accepting jobs, lets workers drain what they can, and joins
    /// them.
    pub fn shutdown(mut self) {
        self.stop_workers();
    }

    fn stop_workers(&mut self) {
        if let Ok(mut st) = self.shared.0.state.lock() {
            st.open = false;
        }
        self.shared.0.ready.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for CryptoPool {
    fn drop(&mut self) {
        self.stop_workers();
    }
}

/// Takes the next task engine `index` should run: its own queue front
/// first, then — only when idle — the oldest compatible job stolen from a
/// dead engine's queue (any length) or a live queue backed up past one
/// batch.
fn take_task(
    st: &mut MutexGuard<'_, PoolState>,
    index: usize,
    shared: &Shared,
    stats: &ServerStats,
) -> Option<CryptoTask> {
    if let Some(task) = st.queues[index].pop_front() {
        return Some(task);
    }
    let me = &shared.profiles[index];
    let mut victim: Option<(usize, usize, usize)> = None; // (queue len, engine, position)
    for j in 0..st.queues.len() {
        if j == index || st.queues[j].is_empty() {
            continue;
        }
        let dead = !st.live[j];
        if !dead && st.queues[j].len() <= shared.batch_max {
            continue; // a live engine will drain its own short queue
        }
        if let Some(pos) = st.queues[j].iter().position(|t| me.accepts(t.class)) {
            let len = st.queues[j].len();
            if victim.is_none_or(|(best, _, _)| len > best) {
                victim = Some((len, j, pos));
            }
        }
    }
    let (_, j, pos) = victim?;
    let task = st.queues[j].remove(pos).expect("position just found");
    stats.crypto_stolen_jobs.fetch_add(1, Ordering::Relaxed);
    Some(task)
}

/// Collects one batch for engine `index`: the first job from its own
/// queue (or stolen), then — with `batch_max` &gt; 1 — more from its own
/// queue within `batch_deadline` of the first. Returns `None` when the
/// engine is dead or the pool shut down with nothing left this engine
/// can take.
fn collect_batch(index: usize, shared: &Shared, stats: &ServerStats) -> Option<Vec<CryptoTask>> {
    let mut st = shared.state.lock().expect("pool lock");
    let first = loop {
        if !st.live[index] {
            return None;
        }
        if let Some(task) = take_task(&mut st, index, shared, stats) {
            break task;
        }
        if !st.open {
            return None;
        }
        st = shared.ready.wait_timeout(st, IDLE_WAIT).expect("pool lock").0;
    };
    let mut batch = Vec::with_capacity(shared.batch_max);
    batch.push(first);
    if shared.batch_max > 1 {
        batch[0].job.collect();
        let deadline = Instant::now() + shared.batch_deadline;
        while batch.len() < shared.batch_max && st.live[index] {
            if let Some(mut task) = st.queues[index].pop_front() {
                task.job.collect();
                batch.push(task);
                continue;
            }
            if !st.open {
                break;
            }
            let Some(remaining) = deadline.checked_duration_since(Instant::now()) else { break };
            st = shared.ready.wait_timeout(st, remaining.min(IDLE_WAIT)).expect("pool lock").0;
        }
    }
    Some(batch)
}

fn worker_loop(
    index: usize,
    shared: &Shared,
    config: &ServerConfig,
    stats: &ServerStats,
    metrics: Option<&ServerMetrics>,
) {
    let profile = &shared.profiles[index];
    loop {
        let Some(batch) = collect_batch(index, shared, stats) else { return };
        let size = batch.len();
        stats.crypto_batches.fetch_add(1, Ordering::Relaxed);
        if size > 1 {
            stats.crypto_batched_jobs.fetch_add(size as u64, Ordering::Relaxed);
        }
        let mut routes = Vec::with_capacity(size);
        let mut classes = Vec::with_capacity(size);
        let mut jobs = Vec::with_capacity(size);
        for task in batch {
            routes.push((task.conn, task.depth_at_submit, task.reply));
            classes.push(task.class);
            jobs.push(task.job);
        }
        let mut dones = if size == 1 {
            vec![jobs.into_iter().next().expect("size checked").execute(config.key())]
        } else {
            CryptoJob::execute_batch(jobs, config.key())
        };
        // Simulate the engine's speed: busy-wait the modelled extra cycles
        // out, then stretch the recorded exec costs so the ledger and
        // stats see what this engine would actually have charged.
        let extras: Vec<u64> = classes
            .iter()
            .zip(&dones)
            .map(|(class, done)| {
                let mult = profile.cost(*class);
                if mult > 1.0 {
                    (done.exec().get() as f64 * (mult - 1.0)) as u64
                } else {
                    0
                }
            })
            .collect();
        let extra_total: u64 = extras.iter().sum();
        if extra_total > 0 {
            let sw = Stopwatch::start();
            while sw.elapsed().get() < extra_total {
                std::hint::spin_loop();
            }
        }
        for (done, extra) in dones.iter_mut().zip(&extras) {
            if *extra > 0 {
                done.stretch_exec(Cycles::new(*extra));
            }
        }
        if let (Some(metrics), Some(done)) = (metrics, dones.first()) {
            metrics.note_crypto_batch(size, done.exec());
        }
        for ((conn, depth_at_submit, reply), done) in routes.into_iter().zip(dones) {
            stats.crypto_queue_wait_cycles.fetch_add(done.queue_wait().get(), Ordering::Relaxed);
            stats.crypto_batch_wait_cycles.fetch_add(done.batch_wait().get(), Ordering::Relaxed);
            stats.crypto_exec_cycles.fetch_add(done.exec().get(), Ordering::Relaxed);
            // The job is no longer queued *or* executing.
            stats.crypto_queue_depth.fetch_sub(1, Ordering::Relaxed);
            // A send failure means the shard is gone; the result is moot.
            let _ = reply.send(PoolReply { conn, depth_at_submit, done });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sslperf_rng::SslRng;
    use sslperf_rsa::RsaPrivateKey;
    use sslperf_ssl::{CipherSuite, CryptoOutput, Engine, SslClient, SslServer};
    use std::sync::mpsc;

    fn config() -> Arc<ServerConfig> {
        let mut rng = SslRng::from_seed(b"cryptopool-test-key");
        let key = RsaPrivateKey::generate(512, &mut rng).expect("keygen");
        Arc::new(ServerConfig::new(key, "pool.test").expect("config"))
    }

    /// Drives an offloaded engine handshake through the pool end to end.
    #[test]
    fn pool_executes_suspended_jobs() {
        let config = config();
        let stats = Arc::new(ServerStats::default());
        let pool = CryptoPool::start(2, Arc::clone(&config), Arc::clone(&stats));
        let (reply_tx, reply_rx) = mpsc::channel();

        let mut client =
            Engine::new(SslClient::new(CipherSuite::RsaDesCbc3Sha, SslRng::from_seed(b"cp-c")))
                .expect("client engine");
        let mut server = Engine::new(SslServer::new(&config, SslRng::from_seed(b"cp-s")))
            .expect("server engine");
        server.set_crypto_offload(true);

        let mut wire = vec![0u8; 16 * 1024];
        let mut spins = 0;
        while !(client.is_established() && server.is_established()) {
            let n = client.take_output(&mut wire);
            let mut offset = 0;
            while offset < n {
                offset += server.feed(&wire[offset..n]).expect("server feed");
            }
            if let Some(job) = server.take_crypto_job() {
                pool.try_submit(7, job, &reply_tx).expect("queue has room");
            }
            if server.crypto_pending() {
                let reply = reply_rx.recv().expect("pool reply");
                assert_eq!(reply.conn, 7);
                assert_eq!(reply.depth_at_submit, 1);
                server.complete_crypto(reply.done).expect("resume");
            }
            let n = server.take_output(&mut wire);
            let mut offset = 0;
            while offset < n {
                offset += client.feed(&wire[offset..n]).expect("client feed");
            }
            spins += 1;
            assert!(spins < 16, "handshake did not converge");
        }
        assert_eq!(stats.crypto_jobs(), 1);
        assert!(stats.crypto_queue_depth_max() >= 1);
        // An unbatched pool reports one batch per job, all solo.
        assert_eq!(stats.crypto_batches(), 1);
        assert_eq!(stats.crypto_batched_jobs(), 0);
        assert_eq!(stats.crypto_batch_wait(), sslperf_profile::Cycles::ZERO);
        pool.shutdown();
    }

    /// A full queue hands the job back instead of blocking the caller.
    #[test]
    fn full_queue_returns_job_for_parking() {
        let config = config();
        let stats = Arc::new(ServerStats::default());
        let pool = CryptoPool::start(1, Arc::clone(&config), Arc::clone(&stats));
        let (reply_tx, reply_rx) = mpsc::channel();

        // Saturate: 1 worker × QUEUE_DEPTH_PER_WORKER slots, plus however
        // many the worker dequeues while we enqueue; keep submitting fresh
        // jobs until one bounces.
        let mut submitted = 0u64;
        let bounced = loop {
            let (_, job) = suspended_job(&config, submitted);
            match pool.try_submit(submitted, job, &reply_tx) {
                Ok(()) => submitted += 1,
                Err(SubmitError::QueueFull { job, .. }) => break job,
                Err(SubmitError::ShutDown(_)) => panic!("pool is running"),
            }
            assert!(submitted < 256, "queue never filled");
        };
        // The bounced job is intact: executing it directly still works.
        let done = bounced.execute(config.key());
        assert!(done.exec().get() > 0);
        // Every accepted job eventually completes and replies.
        for _ in 0..submitted {
            let _ = reply_rx.recv().expect("reply for accepted job");
        }
        assert_eq!(stats.crypto_jobs(), submitted);
        pool.shutdown();
    }

    /// A batched pool combines queued jobs and each result still resumes
    /// its own handshake (results route by connection id).
    #[test]
    fn batched_pool_combines_queued_jobs() {
        let config = config();
        let stats = Arc::new(ServerStats::default());
        // One worker so every job lands in the same collector; a generous
        // deadline so the whole burst combines deterministically.
        let pool = CryptoPool::start_batched(
            1,
            4,
            Duration::from_millis(200),
            Arc::clone(&config),
            Arc::clone(&stats),
            None,
        );
        let (reply_tx, reply_rx) = mpsc::channel();

        let mut engines = Vec::new();
        for seq in 0..4u64 {
            let (server, job) = suspended_job(&config, seq);
            pool.try_submit(seq, job, &reply_tx).expect("queue has room");
            engines.push((seq, server));
        }
        for _ in 0..4 {
            let reply = reply_rx.recv().expect("batched reply");
            let (_, server) =
                engines.iter_mut().find(|(seq, _)| *seq == reply.conn).expect("known conn");
            server.complete_crypto(reply.done).expect("resume with batched result");
        }
        assert_eq!(stats.crypto_jobs(), 4);
        assert!(stats.crypto_batches() >= 1);
        assert!(stats.crypto_batched_jobs() >= 2, "at least one real batch formed");
        pool.shutdown();
    }

    /// Submitting into a shut-down pool reports `ShutDown`, not
    /// `QueueFull` — the event loop must fail the connection, not park it.
    #[test]
    fn shutdown_pool_reports_shutdown_distinctly() {
        let config = config();
        let stats = Arc::new(ServerStats::default());
        let mut pool = CryptoPool::start(1, Arc::clone(&config), Arc::clone(&stats));
        let (reply_tx, _reply_rx) = mpsc::channel();
        // Simulate shutdown without consuming the pool (stop_workers is
        // what `shutdown` and `Drop` both call).
        pool.stop_workers();
        let (_, job) = suspended_job(&config, 99);
        match pool.try_submit(99, job, &reply_tx) {
            Err(SubmitError::ShutDown(job)) => {
                // The job survives for a caller that wants inline fallback.
                let done = job.execute(config.key());
                assert!(done.exec().get() > 0);
            }
            Err(SubmitError::QueueFull { .. }) => panic!("shutdown must not report full"),
            Ok(()) => panic!("shutdown pool accepted a job"),
        }
        assert_eq!(stats.crypto_jobs(), 0);
    }

    /// The burst-accounting regression: depth counts queued + executing
    /// and its high-water mark is sampled at enqueue, so a burst parked
    /// behind a slow collector is fully visible. Before the fix the
    /// collector decremented the depth as it *dequeued* into a batch, so
    /// a burst absorbed into one batch under-reported its depth.
    #[test]
    fn burst_depth_high_water_is_sampled_at_enqueue() {
        let config = config();
        let stats = Arc::new(ServerStats::default());
        // One engine whose collector waits generously for a full batch:
        // every job of the burst is enqueued (and its depth sampled)
        // before anything finishes executing.
        let burst = 6;
        let pool = CryptoPool::start_batched(
            1,
            burst,
            Duration::from_secs(5),
            Arc::clone(&config),
            Arc::clone(&stats),
            None,
        );
        let (reply_tx, reply_rx) = mpsc::channel();
        let jobs: Vec<_> = (0..burst as u64).map(|seq| suspended_job(&config, seq).1).collect();
        for (seq, job) in jobs.into_iter().enumerate() {
            pool.try_submit(seq as u64, job, &reply_tx).expect("queue has room");
        }
        let mut max_seen = 0;
        for _ in 0..burst {
            let reply = reply_rx.recv().expect("burst reply");
            max_seen = max_seen.max(reply.depth_at_submit);
        }
        assert_eq!(stats.crypto_queue_depth_max(), burst as u64, "burst fully visible");
        assert_eq!(max_seen, burst as u64, "the last job saw the whole burst");
        assert_eq!(stats.crypto_queue_depth(), 0, "depth settles once execution completes");
        pool.shutdown();
    }

    /// The park-and-retry fairness regression: once a submission bounces,
    /// freed slots belong to it — fresh submissions from other shards are
    /// refused until the ticket holder is re-admitted, so a parked
    /// handshake is deferred at most one sweep after a slot frees instead
    /// of being starved indefinitely.
    #[test]
    fn parked_ticket_is_admitted_before_fresh_submissions() {
        let config = config();
        let stats = Arc::new(ServerStats::default());
        let pool = CryptoPool::start(1, Arc::clone(&config), Arc::clone(&stats));
        let (reply_tx, reply_rx) = mpsc::channel();

        // Saturate the queue with fresh jobs until one bounces: that
        // bounced submission is shard A's parked handshake.
        let mut submitted = 0u64;
        let (mut parked_job, ticket) = loop {
            let (_, job) = suspended_job(&config, submitted);
            match pool.try_submit(submitted, job, &reply_tx) {
                Ok(()) => submitted += 1,
                Err(SubmitError::QueueFull { job, ticket }) => break (job, ticket),
                Err(SubmitError::ShutDown(_)) => panic!("pool is running"),
            }
            assert!(submitted < 256, "queue never filled");
        };

        // Shard B floods fresh submissions while shard A retries each
        // sweep. Pre-fix, any freed slot went to whichever fresh job won
        // the race and A could starve behind B's traffic forever; with
        // FIFO tickets, A must be admitted, and within a bounded number
        // of sweeps once slots start freeing.
        let (_, fresh_job) = suspended_job(&config, 9_000);
        let mut fresh_job = Some(fresh_job);
        let mut fresh_accepted = 0u64;
        let mut admitted_after = None;
        for sweep in 0..2_000 {
            // B first, so B would win the freed slot under the old policy.
            if let Some(job) = fresh_job.take() {
                match pool.try_submit(10_000 + sweep, job, &reply_tx) {
                    Ok(()) => {
                        fresh_accepted += 1;
                        let (_, next) = suspended_job(&config, 9_001 + sweep);
                        fresh_job = Some(next);
                    }
                    Err(SubmitError::QueueFull { job, ticket: fresh_ticket }) => {
                        // B's fresh traffic queues *behind* A.
                        assert!(fresh_ticket > ticket, "fresh tickets issue behind parked ones");
                        pool.cancel_ticket(fresh_ticket);
                        fresh_job = Some(job);
                    }
                    Err(SubmitError::ShutDown(_)) => panic!("pool is running"),
                }
            }
            match pool.resubmit(submitted, parked_job, ticket, &reply_tx) {
                Ok(()) => {
                    admitted_after = Some(sweep);
                    break;
                }
                Err(SubmitError::QueueFull { job, ticket: same }) => {
                    assert_eq!(same, ticket, "the place in line is kept across retries");
                    parked_job = job;
                }
                Err(SubmitError::ShutDown(_)) => panic!("pool is running"),
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        let admitted_after = admitted_after.expect("parked job admitted");
        assert!(
            fresh_accepted == 0 || admitted_after <= 64,
            "parked job deferred {admitted_after} sweeps while {fresh_accepted} fresh jobs passed"
        );
        // Drain every accepted reply (parked + initial burst + B's).
        for _ in 0..(submitted + 1 + fresh_accepted) {
            let _ = reply_rx.recv().expect("reply for accepted job");
        }
        pool.shutdown();
    }

    /// Preferential routing sends every key-exchange job to the cheapest
    /// engine; killing that engine mid-backlog lets the slower survivor
    /// steal the queue and finish every handshake.
    #[test]
    fn killed_preferred_engine_is_drained_by_stealing() {
        let config = config();
        let stats = Arc::new(ServerStats::default());
        // Engine 0 is preferred (2x); engine 1 is the slow survivor (6x).
        let profiles = vec![EngineProfile::general_slowed(2.0), EngineProfile::general_slowed(6.0)];
        let pool = CryptoPool::start_heterogeneous(
            profiles,
            1,
            Duration::ZERO,
            Arc::clone(&config),
            Arc::clone(&stats),
            None,
        );
        let (reply_tx, reply_rx) = mpsc::channel();
        let burst = 8u64;
        let mut engines = Vec::new();
        for seq in 0..burst {
            let (server, job) = suspended_job(&config, seq);
            pool.try_submit(seq, job, &reply_tx).expect("queue has room");
            engines.push((seq, server));
        }
        assert!(pool.kill_engine(0), "preferred engine dies mid-backlog");
        assert!(!pool.kill_engine(0), "already dead");
        // Every handshake still completes: the survivor steals the dead
        // engine's backlog.
        for _ in 0..burst {
            let reply = reply_rx.recv_timeout(Duration::from_secs(30)).expect("reply");
            let (_, server) =
                engines.iter_mut().find(|(seq, _)| *seq == reply.conn).expect("known conn");
            server.complete_crypto(reply.done).expect("resume after engine death");
        }
        assert_eq!(stats.crypto_jobs(), burst);
        assert!(stats.crypto_stolen_jobs() >= 1, "the survivor stole from the dead queue");
        pool.shutdown();
    }

    /// Bulk-cipher jobs only route to (and are only stolen by)
    /// bulk-capable engines, and their sealed records come back through
    /// the same reply path as key-exchange results.
    #[test]
    fn bulk_jobs_respect_engine_capability() {
        let config = config();
        let stats = Arc::new(ServerStats::default());
        // One dedicated key-exchange engine (no bulk capability) and one
        // general core.
        let profiles = vec![EngineProfile::rsa_engine(), EngineProfile::general()];
        let pool = CryptoPool::start_heterogeneous(
            profiles,
            1,
            Duration::ZERO,
            Arc::clone(&config),
            Arc::clone(&stats),
            None,
        );
        let (reply_tx, reply_rx) = mpsc::channel();
        for seq in 0..4u64 {
            let rng = SslRng::from_seed(format!("bulk-{seq}").as_bytes());
            let job = CryptoJob::new_bulk(vec![0xA5; 1024], rng);
            pool.try_submit(seq, job, &reply_tx).expect("general engine has room");
        }
        for _ in 0..4 {
            let reply = reply_rx.recv().expect("bulk reply");
            match reply.done.output() {
                Ok(CryptoOutput::Sealed(record)) => {
                    assert!(record.len() > 1024, "MAC-then-encrypt grows the payload");
                }
                other => panic!("bulk job must seal: {other:?}"),
            }
        }
        assert_eq!(stats.crypto_bulk_jobs(), 4);
        // Kill the only bulk-capable engine: bulk submission becomes a
        // permanent refusal (ShutDown), while key-exchange jobs still run.
        assert!(pool.kill_engine(1));
        let rng = SslRng::from_seed(b"bulk-after-kill");
        match pool.try_submit(50, CryptoJob::new_bulk(vec![1, 2, 3], rng), &reply_tx) {
            Err(SubmitError::ShutDown(_)) => {}
            other => panic!("no bulk-capable engine must be permanent: {other:?}"),
        }
        let (mut server, job) = suspended_job(&config, 77);
        pool.try_submit(77, job, &reply_tx).expect("rsa engine still serves key exchange");
        let reply = reply_rx.recv().expect("kx reply");
        server.complete_crypto(reply.done).expect("resume");
        pool.shutdown();
    }

    /// With the heterogeneous pool enabled (slow engines included), the
    /// server's wire flights are byte-identical to the inline path under
    /// the same seeds — the rng discipline survives routing, stealing and
    /// the simulated slowdown.
    #[test]
    fn heterogeneous_pool_keeps_flights_byte_identical() {
        let config = config();

        // Inline reference: same seeds, no offload.
        let inline_flights = {
            let mut client = Engine::new(SslClient::new(
                CipherSuite::RsaDesCbc3Sha,
                SslRng::from_seed(b"het-pin-c"),
            ))
            .expect("client engine");
            let mut server = Engine::new(SslServer::new(&config, SslRng::from_seed(b"het-pin-s")))
                .expect("server engine");
            drive_and_capture(&mut client, &mut server, None)
        };

        let stats = Arc::new(ServerStats::default());
        let profiles = vec![EngineProfile::rsa_engine(), EngineProfile::general_slowed(3.0)];
        let pool = CryptoPool::start_heterogeneous(
            profiles,
            1,
            Duration::ZERO,
            Arc::clone(&config),
            Arc::clone(&stats),
            None,
        );
        let offloaded_flights = {
            let mut client = Engine::new(SslClient::new(
                CipherSuite::RsaDesCbc3Sha,
                SslRng::from_seed(b"het-pin-c"),
            ))
            .expect("client engine");
            let mut server = Engine::new(SslServer::new(&config, SslRng::from_seed(b"het-pin-s")))
                .expect("server engine");
            server.set_crypto_offload(true);
            drive_and_capture(&mut client, &mut server, Some(&pool))
        };
        assert_eq!(stats.crypto_jobs(), 1, "the handshake offloaded its key exchange");
        assert_eq!(
            inline_flights, offloaded_flights,
            "flights must stay byte-identical with the heterogeneous pool enabled"
        );
        pool.shutdown();
    }

    /// Runs a full handshake, returning every server flight byte in order.
    fn drive_and_capture(
        client: &mut Engine<SslClient>,
        server: &mut Engine<SslServer<'_>>,
        pool: Option<&CryptoPool>,
    ) -> Vec<u8> {
        let (reply_tx, reply_rx) = mpsc::channel();
        let mut wire = vec![0u8; 16 * 1024];
        let mut server_bytes = Vec::new();
        let mut spins = 0;
        while !(client.is_established() && server.is_established()) {
            let n = client.take_output(&mut wire);
            let mut offset = 0;
            while offset < n {
                offset += server.feed(&wire[offset..n]).expect("server feed");
            }
            if let Some(pool) = pool {
                if let Some(job) = server.take_crypto_job() {
                    pool.try_submit(1, job, &reply_tx).expect("queue has room");
                }
                if server.crypto_pending() {
                    let reply = reply_rx.recv().expect("pool reply");
                    server.complete_crypto(reply.done).expect("resume");
                }
            }
            let n = server.take_output(&mut wire);
            server_bytes.extend_from_slice(&wire[..n]);
            let mut offset = 0;
            while offset < n {
                offset += client.feed(&wire[offset..n]).expect("client feed");
            }
            spins += 1;
            assert!(spins < 16, "handshake did not converge");
        }
        server_bytes
    }

    /// Builds a server engine suspended at the RSA boundary and returns
    /// its crypto job.
    fn suspended_job(config: &Arc<ServerConfig>, seq: u64) -> (Engine<SslServer<'_>>, CryptoJob) {
        let seed = format!("cp-fq-c-{seq}");
        let mut client = Engine::new(SslClient::new(
            CipherSuite::RsaDesCbc3Sha,
            SslRng::from_seed(seed.as_bytes()),
        ))
        .expect("client engine");
        let seed = format!("cp-fq-s-{seq}");
        let mut server = Engine::new(SslServer::new(config, SslRng::from_seed(seed.as_bytes())))
            .expect("server engine");
        server.set_crypto_offload(true);
        let mut wire = vec![0u8; 16 * 1024];
        while !server.crypto_pending() {
            let n = client.take_output(&mut wire);
            let mut offset = 0;
            while offset < n {
                offset += server.feed(&wire[offset..n]).expect("server feed");
            }
            let n = server.take_output(&mut wire);
            let mut offset = 0;
            while offset < n {
                offset += client.feed(&wire[offset..n]).expect("client feed");
            }
        }
        let job = server.take_crypto_job().expect("suspended job");
        (server, job)
    }
}
