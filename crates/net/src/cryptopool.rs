//! The crypto worker pool: parallel RSA engines for the event-loop server.
//!
//! The paper's §5 observes that ~90% of a full handshake is one RSA
//! private-key decryption and proposes parallel crypto engines as the
//! server-side fix. [`CryptoPool`] is that fix for the event-loop
//! architecture: a small set of worker threads draining a **bounded** MPMC
//! job queue. A shard that hits the RSA boundary takes the suspended
//! [`CryptoJob`] from the connection's engine, submits it here, and keeps
//! sweeping its other sockets; the executed result comes back on the
//! shard's reply channel and resumes the handshake exactly where it
//! suspended.
//!
//! Backpressure: the queue is a `sync_channel` of fixed depth. Submission
//! never blocks — [`CryptoPool::try_submit`] hands the job back on a full
//! queue so the shard can park it on the connection and retry next sweep,
//! keeping the event loop latency-bounded even when the pool is saturated.
//! Shutdown drops the sender side; workers drain what is queued and exit.

use crate::server::ServerStats;
use sslperf_ssl::{CryptoDone, CryptoJob, ServerConfig};
use std::sync::atomic::Ordering;
use std::sync::mpsc::{Receiver, Sender, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;

/// Queue slots per worker: deep enough that a handshake burst keeps the
/// workers saturated without bouncing jobs back to the shards (a parked
/// job waits a whole sweep before retrying), shallow enough that the
/// queue stays bounded and saturation still surfaces as backpressure.
const QUEUE_DEPTH_PER_WORKER: usize = 32;

/// One queued decrypt request: the suspended job plus the routing needed
/// to get the result back to the owning connection.
struct CryptoTask {
    /// Shard-local connection id, echoed back with the result.
    conn: u64,
    job: CryptoJob,
    /// The submitting shard's reply channel.
    reply: Sender<(u64, CryptoDone)>,
}

/// N worker threads draining a bounded MPMC queue of [`CryptoJob`]s.
///
/// Shared by every shard of an [`EventLoopServer`](crate::EventLoopServer)
/// started with [`ServerOptions::crypto_workers`](crate::ServerOptions)
/// &gt; 0. Workers execute jobs against the shared [`ServerConfig`]'s
/// private key and update the crypto counters in [`ServerStats`].
#[derive(Debug)]
pub struct CryptoPool {
    tx: Option<SyncSender<CryptoTask>>,
    workers: Vec<JoinHandle<()>>,
    stats: Arc<ServerStats>,
}

impl CryptoPool {
    /// Spawns `workers` threads sharing one bounded queue (MPMC through
    /// the same mutex-guarded receiver idiom the worker-pool server uses).
    ///
    /// # Panics
    ///
    /// Panics when `workers` is zero.
    #[must_use]
    pub fn start(workers: usize, config: Arc<ServerConfig>, stats: Arc<ServerStats>) -> Self {
        assert!(workers > 0, "at least one crypto worker");
        let (tx, rx) = mpsc::sync_channel::<CryptoTask>(workers * QUEUE_DEPTH_PER_WORKER);
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..workers)
            .map(|_| {
                let rx = Arc::clone(&rx);
                let config = Arc::clone(&config);
                let stats = Arc::clone(&stats);
                std::thread::spawn(move || worker_loop(&rx, &config, &stats))
            })
            .collect();
        CryptoPool { tx: Some(tx), workers, stats }
    }

    /// Submits a job without blocking. On a full queue the job comes back
    /// as `Err` so the caller can park it and retry — the backpressure
    /// contract that keeps shards sweeping.
    ///
    /// # Errors
    ///
    /// Returns the job when the queue is full or the pool is shut down.
    // The Err variant is the job handed back for parking — a payload, not
    // an error condition — so its size is inherent to the contract.
    #[allow(clippy::result_large_err)]
    pub fn try_submit(
        &self,
        conn: u64,
        job: CryptoJob,
        reply: &Sender<(u64, CryptoDone)>,
    ) -> Result<(), CryptoJob> {
        let Some(tx) = &self.tx else { return Err(job) };
        let task = CryptoTask { conn, job, reply: reply.clone() };
        // Count the depth *before* the send: a worker may dequeue (and
        // decrement) the instant the task lands, and the counter must
        // never underflow.
        let depth = self.stats.crypto_queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
        match tx.try_send(task) {
            Ok(()) => {
                self.stats.crypto_jobs.fetch_add(1, Ordering::Relaxed);
                self.stats.crypto_queue_depth_max.fetch_max(depth, Ordering::Relaxed);
                Ok(())
            }
            Err(TrySendError::Full(task) | TrySendError::Disconnected(task)) => {
                self.stats.crypto_queue_depth.fetch_sub(1, Ordering::Relaxed);
                Err(task.job)
            }
        }
    }

    /// Stops accepting jobs, lets workers drain the queue, and joins them.
    pub fn shutdown(mut self) {
        self.stop_workers();
    }

    fn stop_workers(&mut self) {
        // Dropping the sender disconnects the queue; workers exit once the
        // backlog is drained.
        self.tx = None;
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for CryptoPool {
    fn drop(&mut self) {
        self.stop_workers();
    }
}

fn worker_loop(rx: &Mutex<Receiver<CryptoTask>>, config: &ServerConfig, stats: &ServerStats) {
    loop {
        let task = {
            let rx = rx.lock().expect("crypto queue lock");
            rx.recv()
        };
        let Ok(task) = task else { return };
        stats.crypto_queue_depth.fetch_sub(1, Ordering::Relaxed);
        let done = task.job.execute(config.key());
        stats.crypto_queue_wait_cycles.fetch_add(done.queue_wait().get(), Ordering::Relaxed);
        stats.crypto_exec_cycles.fetch_add(done.exec().get(), Ordering::Relaxed);
        // A send failure means the shard is gone; the result is moot.
        let _ = task.reply.send((task.conn, done));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sslperf_rng::SslRng;
    use sslperf_rsa::RsaPrivateKey;
    use sslperf_ssl::{CipherSuite, Engine, SslClient, SslServer};

    fn config() -> Arc<ServerConfig> {
        let mut rng = SslRng::from_seed(b"cryptopool-test-key");
        let key = RsaPrivateKey::generate(512, &mut rng).expect("keygen");
        Arc::new(ServerConfig::new(key, "pool.test").expect("config"))
    }

    /// Drives an offloaded engine handshake through the pool end to end.
    #[test]
    fn pool_executes_suspended_jobs() {
        let config = config();
        let stats = Arc::new(ServerStats::default());
        let pool = CryptoPool::start(2, Arc::clone(&config), Arc::clone(&stats));
        let (reply_tx, reply_rx) = mpsc::channel();

        let mut client =
            Engine::new(SslClient::new(CipherSuite::RsaDesCbc3Sha, SslRng::from_seed(b"cp-c")))
                .expect("client engine");
        let mut server = Engine::new(SslServer::new(&config, SslRng::from_seed(b"cp-s")))
            .expect("server engine");
        server.set_crypto_offload(true);

        let mut wire = vec![0u8; 16 * 1024];
        let mut spins = 0;
        while !(client.is_established() && server.is_established()) {
            let n = client.take_output(&mut wire);
            let mut offset = 0;
            while offset < n {
                offset += server.feed(&wire[offset..n]).expect("server feed");
            }
            if let Some(job) = server.take_crypto_job() {
                pool.try_submit(7, job, &reply_tx).expect("queue has room");
            }
            if server.crypto_pending() {
                let (conn, done) = reply_rx.recv().expect("pool reply");
                assert_eq!(conn, 7);
                server.complete_crypto(done).expect("resume");
            }
            let n = server.take_output(&mut wire);
            let mut offset = 0;
            while offset < n {
                offset += client.feed(&wire[offset..n]).expect("client feed");
            }
            spins += 1;
            assert!(spins < 16, "handshake did not converge");
        }
        assert_eq!(stats.crypto_jobs(), 1);
        assert!(stats.crypto_queue_depth_max() >= 1);
        pool.shutdown();
    }

    /// A full queue hands the job back instead of blocking the caller.
    #[test]
    fn full_queue_returns_job_for_parking() {
        let config = config();
        let stats = Arc::new(ServerStats::default());
        let pool = CryptoPool::start(1, Arc::clone(&config), Arc::clone(&stats));
        let (reply_tx, reply_rx) = mpsc::channel();

        // Saturate: 1 worker × QUEUE_DEPTH_PER_WORKER slots, plus however
        // many the worker dequeues while we enqueue; keep submitting fresh
        // jobs until one bounces.
        let mut submitted = 0u64;
        let bounced = loop {
            let (_, job) = suspended_job(&config, submitted);
            match pool.try_submit(submitted, job, &reply_tx) {
                Ok(()) => submitted += 1,
                Err(job) => break job,
            }
            assert!(submitted < 256, "queue never filled");
        };
        // The bounced job is intact: executing it directly still works.
        let done = bounced.execute(config.key());
        assert!(done.exec().get() > 0);
        // Every accepted job eventually completes and replies.
        for _ in 0..submitted {
            let _ = reply_rx.recv().expect("reply for accepted job");
        }
        assert_eq!(stats.crypto_jobs(), submitted);
        pool.shutdown();
    }

    /// Builds a server engine suspended at the RSA boundary and returns
    /// its crypto job.
    fn suspended_job(config: &Arc<ServerConfig>, seq: u64) -> (Engine<SslServer<'_>>, CryptoJob) {
        let seed = format!("cp-fq-c-{seq}");
        let mut client = Engine::new(SslClient::new(
            CipherSuite::RsaDesCbc3Sha,
            SslRng::from_seed(seed.as_bytes()),
        ))
        .expect("client engine");
        let seed = format!("cp-fq-s-{seq}");
        let mut server = Engine::new(SslServer::new(config, SslRng::from_seed(seed.as_bytes())))
            .expect("server engine");
        server.set_crypto_offload(true);
        let mut wire = vec![0u8; 16 * 1024];
        while !server.crypto_pending() {
            let n = client.take_output(&mut wire);
            let mut offset = 0;
            while offset < n {
                offset += server.feed(&wire[offset..n]).expect("server feed");
            }
            let n = server.take_output(&mut wire);
            let mut offset = 0;
            while offset < n {
                offset += client.feed(&wire[offset..n]).expect("client feed");
            }
        }
        let job = server.take_crypto_job().expect("suspended job");
        (server, job)
    }
}
