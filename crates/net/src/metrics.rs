//! Live handshake-anatomy metrics for the serving layer.
//!
//! The paper's Tables 1–3 come from profiling an Apache/mod_ssl server
//! under load; [`ServerMetrics`] reproduces that anatomy *live* from real
//! sockets instead of post-hoc from a profiler. Every connection feeds its
//! per-step handshake ledger ([`HandshakeLedger`]) and per-record crypto
//! cycles into one shared registry built from the lock-cheap primitives in
//! `sslperf-metrics`: atomic counters for totals, log-linear histograms
//! for latency quantiles (p50/p95/p99 without storing samples). Recording
//! is a handful of relaxed atomic adds — no locks, no allocation — so the
//! steady-state record path stays zero-copy *and* zero-alloc with metrics
//! enabled.
//!
//! [`ServerMetrics::snapshot`] freezes the registry into a
//! [`MetricsSnapshot`], whose [`render`](MetricsSnapshot::render) lays the
//! live data out in the paper's shapes: Table 2 (step latency shares of
//! the full handshake), Table 3 (crypto share of handshake processing),
//! and Table 1 (libcrypto/libssl/other split per transaction). The same
//! text is served over `GET /metrics` when
//! [`ServerOptions::metrics`](crate::ServerOptions::metrics) is on — the
//! exposition-endpoint pattern, minus any wire-format commitments.

use sslperf_metrics::{Gauge, Histogram, HistogramSnapshot};
use sslperf_profile::{Align, Cycles, Table};
use sslperf_ssl::{HandshakeLedger, Protocol, SERVER_STEP_NAMES, TLS13_STEP_NAMES};
use std::sync::atomic::{AtomicU64, Ordering};

/// The shared, lock-cheap metrics registry for one running server.
///
/// Handed to every shard/worker as `Option<&ServerMetrics>`; `None` keeps
/// the serving paths free of even the atomic adds. All recording methods
/// take `&self` and are safe to call from any thread.
#[derive(Debug)]
pub struct ServerMetrics {
    /// Per-step SSLv3 handshake latency, full handshakes only (Table 2
    /// rows).
    steps: [Histogram; 10],
    /// Per-step TLS 1.3 handshake latency, keyed by [`TLS13_STEP_NAMES`].
    tls13_steps: [Histogram; 10],
    /// Key-exchange offload split (both protocols): cycles queued in the
    /// crypto pool.
    kx_queue_wait: Histogram,
    /// Offload split: cycles parked waiting for batch siblings.
    kx_batch_wait: Histogram,
    /// Offload split: cycles executing the private operation (RSA decrypt
    /// for SSLv3, the DHE exponentiation pair for TLS 1.3).
    kx_exec: Histogram,
    /// End-to-end SSLv3 handshake cycles, full key exchange.
    full_handshake: Histogram,
    /// End-to-end SSLv3 handshake cycles, session resumption.
    resumed_handshake: Histogram,
    /// End-to-end TLS 1.3 handshake cycles (always a full key exchange).
    tls13_full_handshake: Histogram,
    /// Crypto cycles summed over full SSLv3 handshakes (Table 3
    /// numerator).
    full_crypto_cycles: AtomicU64,
    /// Crypto cycles summed over resumed handshakes.
    resumed_crypto_cycles: AtomicU64,
    /// Crypto cycles summed over TLS 1.3 handshakes.
    tls13_crypto_cycles: AtomicU64,
    /// Application records decrypted / encrypted after the handshake.
    records_opened: AtomicU64,
    records_sealed: AtomicU64,
    /// Application payload bytes through the record layer.
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
    /// Cycles in the record layer's open / seal paths (libssl + libcrypto).
    open_cycles: AtomicU64,
    seal_cycles: AtomicU64,
    /// Cycles inside cipher + MAC kernels during open/seal (libcrypto only).
    record_crypto_cycles: AtomicU64,
    /// Cycles synthesizing HTTP responses (the paper's "other").
    respond_cycles: AtomicU64,
    /// HTTP transactions measured into the counters above.
    transactions: AtomicU64,
    /// Crypto-pool backlog at submission time (gauge tracks the max).
    pool_queue_depth: Gauge,
    /// Per-job crypto-pool queue wait / execution cycles.
    pool_wait: Histogram,
    pool_exec: Histogram,
    /// Per-job cycles spent collected-but-waiting for batch siblings.
    pool_batch_wait: Histogram,
    /// Jobs per executed crypto-pool batch (1 = solo execution).
    batch_size: Histogram,
    /// Cycles per RSA decrypt when executed solo (batch of one).
    exec_solo: Histogram,
    /// Amortized cycles per RSA decrypt inside batches of two or more.
    exec_amortized: Histogram,
    /// Session-ticket outcomes (stateless resumption), per handshake.
    tickets_issued: AtomicU64,
    tickets_accepted: AtomicU64,
    tickets_rejected: AtomicU64,
    tickets_expired: AtomicU64,
}

impl Default for ServerMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl ServerMetrics {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        ServerMetrics {
            steps: std::array::from_fn(|_| Histogram::new()),
            tls13_steps: std::array::from_fn(|_| Histogram::new()),
            kx_queue_wait: Histogram::new(),
            kx_batch_wait: Histogram::new(),
            kx_exec: Histogram::new(),
            full_handshake: Histogram::new(),
            resumed_handshake: Histogram::new(),
            tls13_full_handshake: Histogram::new(),
            full_crypto_cycles: AtomicU64::new(0),
            resumed_crypto_cycles: AtomicU64::new(0),
            tls13_crypto_cycles: AtomicU64::new(0),
            records_opened: AtomicU64::new(0),
            records_sealed: AtomicU64::new(0),
            bytes_in: AtomicU64::new(0),
            bytes_out: AtomicU64::new(0),
            open_cycles: AtomicU64::new(0),
            seal_cycles: AtomicU64::new(0),
            record_crypto_cycles: AtomicU64::new(0),
            respond_cycles: AtomicU64::new(0),
            transactions: AtomicU64::new(0),
            pool_queue_depth: Gauge::new(),
            pool_wait: Histogram::new(),
            pool_exec: Histogram::new(),
            pool_batch_wait: Histogram::new(),
            batch_size: Histogram::new(),
            exec_solo: Histogram::new(),
            exec_amortized: Histogram::new(),
            tickets_issued: AtomicU64::new(0),
            tickets_accepted: AtomicU64::new(0),
            tickets_rejected: AtomicU64::new(0),
            tickets_expired: AtomicU64::new(0),
        }
    }

    /// Feeds one completed handshake's anatomy into the registry.
    ///
    /// The ledger routes by protocol: SSLv3 full handshakes populate the
    /// Table 2 step histograms and the Table 3 crypto accumulators,
    /// resumed handshakes only record their end-to-end latency (their
    /// step mix is not the paper's Table 2), and TLS 1.3 handshakes feed
    /// their own step histograms so the two anatomies render side by
    /// side. The key-exchange offload split is pooled across protocols —
    /// it describes the crypto pool, not a protocol.
    pub fn note_handshake(&self, ledger: &HandshakeLedger) {
        self.tickets_issued.fetch_add(u64::from(ledger.ticket_issued), Ordering::Relaxed);
        self.tickets_accepted.fetch_add(u64::from(ledger.ticket_accepted), Ordering::Relaxed);
        self.tickets_rejected.fetch_add(u64::from(ledger.ticket_rejected), Ordering::Relaxed);
        self.tickets_expired.fetch_add(u64::from(ledger.ticket_expired), Ordering::Relaxed);
        if ledger.resumed {
            self.resumed_handshake.record(ledger.total.get());
            self.resumed_crypto_cycles.fetch_add(ledger.crypto.get(), Ordering::Relaxed);
            return;
        }
        let (handshake, crypto, steps) = match ledger.protocol {
            Protocol::Ssl3 => (&self.full_handshake, &self.full_crypto_cycles, &self.steps),
            Protocol::Tls13 => {
                (&self.tls13_full_handshake, &self.tls13_crypto_cycles, &self.tls13_steps)
            }
        };
        handshake.record(ledger.total.get());
        crypto.fetch_add(ledger.crypto.get(), Ordering::Relaxed);
        for (hist, (_, cycles)) in steps.iter().zip(ledger.steps.iter()) {
            hist.record(cycles.get());
        }
        if ledger.kx_queue_wait.get() > 0 {
            self.kx_queue_wait.record(ledger.kx_queue_wait.get());
        }
        if ledger.kx_batch_wait.get() > 0 {
            self.kx_batch_wait.record(ledger.kx_batch_wait.get());
        }
        if ledger.kx_exec.get() > 0 {
            self.kx_exec.record(ledger.kx_exec.get());
        }
    }

    /// Records one application record decrypted on the read path:
    /// `payload` plaintext bytes, `cycles` across the whole open, of which
    /// `crypto` were inside cipher + MAC kernels.
    pub fn note_record_open(&self, payload: usize, cycles: Cycles, crypto: Cycles) {
        self.records_opened.fetch_add(1, Ordering::Relaxed);
        self.bytes_in.fetch_add(payload as u64, Ordering::Relaxed);
        self.open_cycles.fetch_add(cycles.get(), Ordering::Relaxed);
        self.record_crypto_cycles.fetch_add(crypto.get(), Ordering::Relaxed);
    }

    /// Records one application record sealed on the write path (same
    /// accounting as [`ServerMetrics::note_record_open`]).
    pub fn note_record_seal(&self, payload: usize, cycles: Cycles, crypto: Cycles) {
        self.records_sealed.fetch_add(1, Ordering::Relaxed);
        self.bytes_out.fetch_add(payload as u64, Ordering::Relaxed);
        self.seal_cycles.fetch_add(cycles.get(), Ordering::Relaxed);
        self.record_crypto_cycles.fetch_add(crypto.get(), Ordering::Relaxed);
    }

    /// Records one HTTP transaction: the cycles spent synthesizing the
    /// response (the paper's non-SSL "other" share).
    pub fn note_response(&self, cycles: Cycles) {
        self.transactions.fetch_add(1, Ordering::Relaxed);
        self.respond_cycles.fetch_add(cycles.get(), Ordering::Relaxed);
    }

    /// Records one executed crypto-pool job: a backlog-depth sample taken
    /// as the result lands, queue wait, batch wait, and execution cycles.
    pub fn note_pool_job(&self, depth: u64, wait: Cycles, batch_wait: Cycles, exec: Cycles) {
        self.pool_queue_depth.set(depth);
        self.pool_wait.record(wait.get());
        self.pool_batch_wait.record(batch_wait.get());
        self.pool_exec.record(exec.get());
    }

    /// Records one executed crypto-pool batch: its size, and the per-decrypt
    /// execution cost — into the solo histogram for a batch of one, into
    /// the amortized histogram (weighted by size, so quantiles are
    /// per-job) for real batches. The solo-vs-amortized split is the batch
    /// ablation's headline number.
    pub fn note_crypto_batch(&self, size: usize, per_job_exec: Cycles) {
        self.batch_size.record(size as u64);
        if size <= 1 {
            self.exec_solo.record(per_job_exec.get());
        } else {
            self.exec_amortized.record_n(per_job_exec.get(), size as u64);
        }
    }

    /// Freezes the registry into an owned, renderable snapshot.
    ///
    /// Counters are read individually with relaxed ordering, so a snapshot
    /// taken while traffic is in flight is approximate at record
    /// granularity — fine for an exposition endpoint.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            steps: std::array::from_fn(|i| StepSnapshot {
                name: SERVER_STEP_NAMES[i],
                latency: self.steps[i].snapshot(),
            }),
            tls13_steps: std::array::from_fn(|i| StepSnapshot {
                name: TLS13_STEP_NAMES[i],
                latency: self.tls13_steps[i].snapshot(),
            }),
            kx_queue_wait: self.kx_queue_wait.snapshot(),
            kx_batch_wait: self.kx_batch_wait.snapshot(),
            kx_exec: self.kx_exec.snapshot(),
            full_handshake: self.full_handshake.snapshot(),
            resumed_handshake: self.resumed_handshake.snapshot(),
            tls13_full_handshake: self.tls13_full_handshake.snapshot(),
            full_crypto_cycles: self.full_crypto_cycles.load(Ordering::Relaxed),
            resumed_crypto_cycles: self.resumed_crypto_cycles.load(Ordering::Relaxed),
            tls13_crypto_cycles: self.tls13_crypto_cycles.load(Ordering::Relaxed),
            records_opened: self.records_opened.load(Ordering::Relaxed),
            records_sealed: self.records_sealed.load(Ordering::Relaxed),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
            open_cycles: self.open_cycles.load(Ordering::Relaxed),
            seal_cycles: self.seal_cycles.load(Ordering::Relaxed),
            record_crypto_cycles: self.record_crypto_cycles.load(Ordering::Relaxed),
            respond_cycles: self.respond_cycles.load(Ordering::Relaxed),
            transactions: self.transactions.load(Ordering::Relaxed),
            pool_queue_depth_max: self.pool_queue_depth.max(),
            pool_wait: self.pool_wait.snapshot(),
            pool_exec: self.pool_exec.snapshot(),
            pool_batch_wait: self.pool_batch_wait.snapshot(),
            batch_size: self.batch_size.snapshot(),
            exec_solo: self.exec_solo.snapshot(),
            exec_amortized: self.exec_amortized.snapshot(),
            tickets_issued: self.tickets_issued.load(Ordering::Relaxed),
            tickets_accepted: self.tickets_accepted.load(Ordering::Relaxed),
            tickets_rejected: self.tickets_rejected.load(Ordering::Relaxed),
            tickets_expired: self.tickets_expired.load(Ordering::Relaxed),
        }
    }
}

/// One handshake step's frozen latency distribution.
#[derive(Debug, Clone)]
pub struct StepSnapshot {
    /// The step's name, from [`SERVER_STEP_NAMES`] or
    /// [`TLS13_STEP_NAMES`] depending on which anatomy it belongs to.
    pub name: &'static str,
    /// Cycle latency distribution across full handshakes.
    pub latency: HistogramSnapshot,
}

/// A point-in-time copy of a [`ServerMetrics`] registry.
///
/// All fields are plain owned data; [`MetricsSnapshot::render`] lays them
/// out in the paper's table shapes.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// Per-step SSLv3 latency across full handshakes, in paper order
    /// (Table 2).
    pub steps: [StepSnapshot; 10],
    /// Per-step TLS 1.3 latency across handshakes, in wire order.
    pub tls13_steps: [StepSnapshot; 10],
    /// Key-exchange crypto-pool queue wait, both protocols (empty when
    /// running inline).
    pub kx_queue_wait: HistogramSnapshot,
    /// Key-exchange wait for batch siblings (empty without batching).
    pub kx_batch_wait: HistogramSnapshot,
    /// Key-exchange private-operation execution time (RSA decrypt or DHE
    /// exponentiation pair).
    pub kx_exec: HistogramSnapshot,
    /// End-to-end full SSLv3-handshake latency.
    pub full_handshake: HistogramSnapshot,
    /// End-to-end resumed-handshake latency.
    pub resumed_handshake: HistogramSnapshot,
    /// End-to-end TLS 1.3 handshake latency.
    pub tls13_full_handshake: HistogramSnapshot,
    /// Crypto cycles summed over full SSLv3 handshakes (Table 3
    /// numerator).
    pub full_crypto_cycles: u64,
    /// Crypto cycles summed over resumed handshakes.
    pub resumed_crypto_cycles: u64,
    /// Crypto cycles summed over TLS 1.3 handshakes.
    pub tls13_crypto_cycles: u64,
    /// Application records decrypted after the handshake.
    pub records_opened: u64,
    /// Application records sealed after the handshake.
    pub records_sealed: u64,
    /// Plaintext bytes received through the record layer.
    pub bytes_in: u64,
    /// Plaintext bytes sent through the record layer.
    pub bytes_out: u64,
    /// Total cycles in the record-open path.
    pub open_cycles: u64,
    /// Total cycles in the record-seal path.
    pub seal_cycles: u64,
    /// Cycles inside cipher + MAC kernels during open/seal.
    pub record_crypto_cycles: u64,
    /// Cycles synthesizing HTTP responses.
    pub respond_cycles: u64,
    /// HTTP transactions measured.
    pub transactions: u64,
    /// High-water mark of the crypto-pool backlog.
    pub pool_queue_depth_max: u64,
    /// Per-job crypto-pool queue wait distribution.
    pub pool_wait: HistogramSnapshot,
    /// Per-job crypto-pool execution distribution.
    pub pool_exec: HistogramSnapshot,
    /// Per-job batch-assembly wait distribution.
    pub pool_batch_wait: HistogramSnapshot,
    /// Jobs per executed crypto-pool batch (1 = solo).
    pub batch_size: HistogramSnapshot,
    /// Cycles per RSA decrypt executed solo.
    pub exec_solo: HistogramSnapshot,
    /// Amortized cycles per RSA decrypt inside real batches.
    pub exec_amortized: HistogramSnapshot,
    /// Session tickets sealed and sent with NewSessionTicket.
    pub tickets_issued: u64,
    /// Session tickets opened successfully (stateless resumptions).
    pub tickets_accepted: u64,
    /// Tickets rejected as tampered/undecodable (silent full handshake).
    pub tickets_rejected: u64,
    /// Tickets rejected as expired (silent full handshake).
    pub tickets_expired: u64,
}

impl MetricsSnapshot {
    /// Crypto's share of full-handshake processing, in percent — the live
    /// Table 3 number (the paper reports ~91% at 1024-bit keys).
    #[must_use]
    pub fn handshake_crypto_percent(&self) -> f64 {
        percent(self.full_crypto_cycles, self.full_handshake.sum())
    }

    /// One step's share of full-handshake cycles, in percent (a Table 2
    /// cell). Unknown step names return 0.
    #[must_use]
    pub fn step_percent(&self, name: &str) -> f64 {
        let total = self.full_handshake.sum();
        self.steps.iter().find(|s| s.name == name).map_or(0.0, |s| percent(s.latency.sum(), total))
    }

    /// Crypto's share of TLS 1.3 handshake processing, in percent — the
    /// side-by-side counterpart to [`handshake_crypto_percent`].
    ///
    /// [`handshake_crypto_percent`]: MetricsSnapshot::handshake_crypto_percent
    #[must_use]
    pub fn tls13_crypto_percent(&self) -> f64 {
        percent(self.tls13_crypto_cycles, self.tls13_full_handshake.sum())
    }

    /// One TLS 1.3 step's share of its handshake cycles, in percent.
    /// Unknown step names return 0.
    #[must_use]
    pub fn tls13_step_percent(&self, name: &str) -> f64 {
        let total = self.tls13_full_handshake.sum();
        self.tls13_steps
            .iter()
            .find(|s| s.name == name)
            .map_or(0.0, |s| percent(s.latency.sum(), total))
    }

    /// Cycles per transaction attributed to libcrypto (cipher, hash, RSA
    /// and DHE kernels): the amortized handshake crypto plus bulk record
    /// crypto, across both protocols.
    #[must_use]
    pub fn libcrypto_cycles_per_transaction(&self) -> u64 {
        let handshake =
            self.full_crypto_cycles + self.resumed_crypto_cycles + self.tls13_crypto_cycles;
        per(handshake + self.record_crypto_cycles, self.transactions)
    }

    /// Cycles per transaction attributed to libssl (protocol framing, MAC
    /// scheduling, state machines): handshake and record-path cycles that
    /// were *not* inside crypto kernels.
    #[must_use]
    pub fn libssl_cycles_per_transaction(&self) -> u64 {
        let handshake = (self.full_handshake.sum()
            + self.resumed_handshake.sum()
            + self.tls13_full_handshake.sum())
        .saturating_sub(
            self.full_crypto_cycles + self.resumed_crypto_cycles + self.tls13_crypto_cycles,
        );
        let records =
            (self.open_cycles + self.seal_cycles).saturating_sub(self.record_crypto_cycles);
        per(handshake + records, self.transactions)
    }

    /// Cycles per transaction outside SSL entirely (the HTTP layer).
    #[must_use]
    pub fn other_cycles_per_transaction(&self) -> u64 {
        per(self.respond_cycles, self.transactions)
    }

    /// Renders the snapshot as the paper's three tables plus the serving
    /// quantiles — the text served on `GET /metrics`.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();

        // Table 2: where full-handshake time goes, step by step.
        let mut steps = Table::new("Live Table 2: full-handshake step latencies");
        steps.columns(&[
            ("step", Align::Left),
            ("count", Align::Right),
            ("mean kc", Align::Right),
            ("p95 kc", Align::Right),
            ("share %", Align::Right),
        ]);
        for (i, step) in self.steps.iter().enumerate() {
            steps.row(&[
                format!("{}. {}", i + 1, step.name),
                step.latency.count().to_string(),
                kilo(step.latency.mean()),
                kilo(step.latency.p95()),
                format!("{:.1}", self.step_percent(step.name)),
            ]);
        }
        out.push_str(&steps.to_string());

        // The TLS 1.3 anatomy, side by side, when that machine served
        // traffic — same columns, its own step names, so the two
        // handshakes' cost structures line up row for row.
        if self.tls13_full_handshake.count() > 0 {
            let mut t13 = Table::new("Live anatomy: TLS 1.3 handshake step latencies");
            t13.columns(&[
                ("step", Align::Left),
                ("count", Align::Right),
                ("mean kc", Align::Right),
                ("p95 kc", Align::Right),
                ("share %", Align::Right),
            ]);
            for (i, step) in self.tls13_steps.iter().enumerate() {
                t13.row(&[
                    format!("{}. {}", i + 1, step.name),
                    step.latency.count().to_string(),
                    kilo(step.latency.mean()),
                    kilo(step.latency.p95()),
                    format!("{:.1}", self.tls13_step_percent(step.name)),
                ]);
            }
            out.push('\n');
            out.push_str(&t13.to_string());
        }

        // The key-exchange offload split, when the crypto pool was in
        // play: RSA decrypts (SSLv3 step 5) and DHE exponentiations
        // (TLS 1.3 step 3) share the pool, so the split is pooled. With
        // batching on, the amortization rows break it down further: the
        // wait each job spent collecting batch siblings, and what a job
        // costs solo versus amortized across a batch.
        if self.kx_queue_wait.count() > 0 || self.kx_exec.count() > 0 {
            let mut kx = Table::new("Key-exchange offload split and batch amortization");
            kx.columns(&[
                ("phase", Align::Left),
                ("count", Align::Right),
                ("mean kc", Align::Right),
                ("p95 kc", Align::Right),
            ]);
            for (name, h) in [
                ("kx_queue_wait", &self.kx_queue_wait),
                ("kx_batch_wait", &self.kx_batch_wait),
                ("kx_exec", &self.kx_exec),
                ("exec_solo (per job)", &self.exec_solo),
                ("exec_amortized (per job)", &self.exec_amortized),
            ] {
                if name.starts_with("exec") && h.count() == 0 {
                    continue;
                }
                kx.row(&[name.to_string(), h.count().to_string(), kilo(h.mean()), kilo(h.p95())]);
            }
            out.push('\n');
            out.push_str(&kx.to_string());
        }

        // Table 3: crypto's share of handshake processing.
        let mut crypto = Table::new("Live Table 3: crypto share of handshake");
        crypto.columns(&[
            ("handshake", Align::Left),
            ("count", Align::Right),
            ("total kc", Align::Right),
            ("crypto kc", Align::Right),
            ("crypto %", Align::Right),
        ]);
        crypto.row(&[
            "full".to_string(),
            self.full_handshake.count().to_string(),
            kilo(self.full_handshake.sum()),
            kilo(self.full_crypto_cycles),
            format!("{:.1}", self.handshake_crypto_percent()),
        ]);
        crypto.row(&[
            "resumed".to_string(),
            self.resumed_handshake.count().to_string(),
            kilo(self.resumed_handshake.sum()),
            kilo(self.resumed_crypto_cycles),
            format!("{:.1}", percent(self.resumed_crypto_cycles, self.resumed_handshake.sum())),
        ]);
        if self.tls13_full_handshake.count() > 0 {
            crypto.row(&[
                "tls13".to_string(),
                self.tls13_full_handshake.count().to_string(),
                kilo(self.tls13_full_handshake.sum()),
                kilo(self.tls13_crypto_cycles),
                format!("{:.1}", self.tls13_crypto_percent()),
            ]);
        }
        out.push('\n');
        out.push_str(&crypto.to_string());

        // Table 1: the per-transaction library split.
        let split = [
            ("libcrypto", self.libcrypto_cycles_per_transaction()),
            ("libssl", self.libssl_cycles_per_transaction()),
            ("other", self.other_cycles_per_transaction()),
        ];
        let total: u64 = split.iter().map(|(_, c)| *c).sum();
        let mut table1 = Table::new("Live Table 1: cycles per transaction by library");
        table1.columns(&[
            ("library", Align::Left),
            ("kc/txn", Align::Right),
            ("share %", Align::Right),
        ]);
        for (name, cycles) in split {
            table1.row(&[name.to_string(), kilo(cycles), format!("{:.1}", percent(cycles, total))]);
        }
        out.push('\n');
        out.push_str(&table1.to_string());

        // Serving quantiles and record-path totals.
        let mut quant = Table::new("Serving quantiles and totals");
        quant.columns(&[
            ("metric", Align::Left),
            ("count", Align::Right),
            ("p50 kc", Align::Right),
            ("p95 kc", Align::Right),
            ("p99 kc", Align::Right),
        ]);
        for (name, h) in [
            ("full_handshake", &self.full_handshake),
            ("resumed_handshake", &self.resumed_handshake),
            ("tls13_handshake", &self.tls13_full_handshake),
            ("pool_queue_wait", &self.pool_wait),
            ("pool_batch_wait", &self.pool_batch_wait),
            ("pool_exec", &self.pool_exec),
        ] {
            quant.row(&[
                name.to_string(),
                h.count().to_string(),
                kilo(h.p50()),
                kilo(h.p95()),
                kilo(h.p99()),
            ]);
        }
        out.push('\n');
        out.push_str(&quant.to_string());

        // Batch-RSA amortization, when the pool ran with batching.
        if self.batch_size.count() > 0 {
            let mut batch = Table::new("Crypto-pool batching");
            batch.columns(&[
                ("metric", Align::Left),
                ("count", Align::Right),
                ("mean", Align::Right),
                ("p95", Align::Right),
            ]);
            let mean_size = if self.batch_size.count() == 0 {
                0.0
            } else {
                self.batch_size.sum() as f64 / self.batch_size.count() as f64
            };
            batch.row(&[
                "batch_size (jobs)".to_string(),
                self.batch_size.count().to_string(),
                format!("{mean_size:.2}"),
                self.batch_size.p95().to_string(),
            ]);
            for (name, h) in
                [("exec_solo kc", &self.exec_solo), ("exec_amortized kc", &self.exec_amortized)]
            {
                batch.row(&[
                    name.to_string(),
                    h.count().to_string(),
                    kilo(h.mean()),
                    kilo(h.p95()),
                ]);
            }
            out.push('\n');
            out.push_str(&batch.to_string());
        }
        out.push_str(&format!(
            "\ntransactions {} | records in/out {}/{} | bytes in/out {}/{} | \
             pool depth max {}\n",
            self.transactions,
            self.records_opened,
            self.records_sealed,
            self.bytes_in,
            self.bytes_out,
            self.pool_queue_depth_max,
        ));
        out.push_str(&format!(
            "tickets issued/accepted/rejected/expired {}/{}/{}/{}\n",
            self.tickets_issued, self.tickets_accepted, self.tickets_rejected, self.tickets_expired,
        ));
        out
    }
}

/// `part / whole` in percent; 0 when the denominator is empty.
fn percent(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        part as f64 / whole as f64 * 100.0
    }
}

/// Integer average; 0 when the denominator is empty.
fn per(total: u64, count: u64) -> u64 {
    total.checked_div(count).unwrap_or(0)
}

/// Cycles rendered in thousands, one decimal.
fn kilo(cycles: u64) -> String {
    format!("{:.1}", cycles as f64 / 1000.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ledger(resumed: bool, step_cost: u64, crypto: u64) -> HandshakeLedger {
        HandshakeLedger {
            protocol: Protocol::Ssl3,
            resumed,
            steps: std::array::from_fn(|i| (SERVER_STEP_NAMES[i], Cycles::new(step_cost))),
            total: Cycles::new(step_cost * 10),
            crypto: Cycles::new(crypto),
            kx_queue_wait: Cycles::new(0),
            kx_batch_wait: Cycles::new(0),
            kx_exec: Cycles::new(crypto / 2),
            ticket_issued: false,
            ticket_accepted: false,
            ticket_rejected: false,
            ticket_expired: false,
        }
    }

    fn tls13_ledger(step_cost: u64, crypto: u64) -> HandshakeLedger {
        HandshakeLedger {
            protocol: Protocol::Tls13,
            resumed: false,
            steps: std::array::from_fn(|i| (TLS13_STEP_NAMES[i], Cycles::new(step_cost))),
            total: Cycles::new(step_cost * 10),
            crypto: Cycles::new(crypto),
            kx_queue_wait: Cycles::new(0),
            kx_batch_wait: Cycles::new(0),
            kx_exec: Cycles::new(crypto / 2),
            ticket_issued: false,
            ticket_accepted: false,
            ticket_rejected: false,
            ticket_expired: false,
        }
    }

    #[test]
    fn full_handshake_populates_steps_and_crypto_share() {
        let m = ServerMetrics::new();
        m.note_handshake(&ledger(false, 100, 900));
        let snap = m.snapshot();
        assert_eq!(snap.full_handshake.count(), 1);
        assert_eq!(snap.full_handshake.sum(), 1000);
        assert_eq!(snap.full_crypto_cycles, 900);
        assert!((snap.handshake_crypto_percent() - 90.0).abs() < 1e-9);
        for step in &snap.steps {
            assert_eq!(step.latency.count(), 1, "step {}", step.name);
        }
        assert_eq!(snap.kx_exec.count(), 1);
        assert_eq!(snap.kx_queue_wait.count(), 0);
    }

    #[test]
    fn tls13_ledgers_route_to_their_own_anatomy() {
        let m = ServerMetrics::new();
        m.note_handshake(&ledger(false, 100, 900));
        m.note_handshake(&tls13_ledger(80, 600));
        let snap = m.snapshot();
        // Protocols do not bleed into each other's histograms...
        assert_eq!(snap.full_handshake.count(), 1);
        assert_eq!(snap.tls13_full_handshake.count(), 1);
        assert_eq!(snap.tls13_full_handshake.sum(), 800);
        assert_eq!(snap.full_crypto_cycles, 900);
        assert_eq!(snap.tls13_crypto_cycles, 600);
        assert!((snap.tls13_crypto_percent() - 75.0).abs() < 1e-9);
        assert!((snap.tls13_step_percent("dhe_key_exchange") - 10.0).abs() < 1e-9);
        for step in &snap.tls13_steps {
            assert_eq!(step.latency.count(), 1, "tls13 step {}", step.name);
        }
        // ...but the pooled key-exchange split sees both.
        assert_eq!(snap.kx_exec.count(), 2);
        let text = snap.render();
        assert!(text.contains("Live anatomy: TLS 1.3"), "{text}");
        assert!(text.contains("dhe_key_exchange"), "{text}");
        assert!(text.contains("tls13"), "{text}");
    }

    #[test]
    fn tls13_section_absent_without_tls13_traffic() {
        let m = ServerMetrics::new();
        m.note_handshake(&ledger(false, 100, 900));
        let text = m.snapshot().render();
        assert!(!text.contains("Live anatomy: TLS 1.3"), "{text}");
    }

    #[test]
    fn resumed_handshake_skips_step_histograms() {
        let m = ServerMetrics::new();
        m.note_handshake(&ledger(true, 10, 50));
        let snap = m.snapshot();
        assert_eq!(snap.resumed_handshake.count(), 1);
        assert_eq!(snap.full_handshake.count(), 0);
        assert_eq!(snap.resumed_crypto_cycles, 50);
        for step in &snap.steps {
            assert_eq!(step.latency.count(), 0);
        }
    }

    #[test]
    fn per_transaction_split_accounts_every_cycle_once() {
        let m = ServerMetrics::new();
        m.note_handshake(&ledger(false, 100, 800));
        m.note_record_open(64, Cycles::new(300), Cycles::new(200));
        m.note_record_seal(128, Cycles::new(500), Cycles::new(400));
        m.note_response(Cycles::new(250));
        m.note_response(Cycles::new(150));
        let snap = m.snapshot();
        assert_eq!(snap.transactions, 2);
        // libcrypto: (800 handshake + 600 record) / 2 txns.
        assert_eq!(snap.libcrypto_cycles_per_transaction(), 700);
        // libssl: (1000-800 handshake) + (800-600 record) = 400 / 2.
        assert_eq!(snap.libssl_cycles_per_transaction(), 200);
        assert_eq!(snap.other_cycles_per_transaction(), 200);
        assert_eq!(snap.bytes_in, 64);
        assert_eq!(snap.bytes_out, 128);
    }

    #[test]
    fn render_contains_all_three_tables() {
        let m = ServerMetrics::new();
        m.note_handshake(&ledger(false, 100, 850));
        m.note_pool_job(3, Cycles::new(40), Cycles::new(5), Cycles::new(400));
        m.note_response(Cycles::new(10));
        let text = m.snapshot().render();
        assert!(text.contains("Live Table 1"), "{text}");
        assert!(text.contains("Live Table 2"), "{text}");
        assert!(text.contains("Live Table 3"), "{text}");
        assert!(text.contains("get_client_kx"), "{text}");
        assert!(text.contains("Key-exchange offload split"), "{text}");
        assert!(text.contains("pool depth max 3"), "{text}");
    }

    #[test]
    fn batch_wait_and_ticket_flags_reach_the_snapshot() {
        let m = ServerMetrics::new();
        let mut full = ledger(false, 100, 800);
        full.kx_queue_wait = Cycles::new(50);
        full.kx_batch_wait = Cycles::new(25);
        full.ticket_issued = true;
        m.note_handshake(&full);
        let mut resumed = ledger(true, 10, 40);
        resumed.ticket_accepted = true;
        m.note_handshake(&resumed);
        let mut fallback = ledger(false, 100, 800);
        fallback.ticket_rejected = true;
        m.note_handshake(&fallback);
        let snap = m.snapshot();
        assert_eq!(snap.kx_batch_wait.count(), 1);
        assert_eq!(snap.kx_batch_wait.sum(), 25);
        assert_eq!(snap.tickets_issued, 1);
        assert_eq!(snap.tickets_accepted, 1);
        assert_eq!(snap.tickets_rejected, 1);
        assert_eq!(snap.tickets_expired, 0);
        let text = snap.render();
        assert!(text.contains("kx_batch_wait"), "{text}");
        assert!(text.contains("batch amortization"), "{text}");
        assert!(text.contains("tickets issued/accepted/rejected/expired 1/1/1/0"), "{text}");
    }

    #[test]
    fn empty_snapshot_renders_without_division_blowups() {
        let text = ServerMetrics::new().snapshot().render();
        assert!(text.contains("Live Table 2"));
        assert_eq!(ServerMetrics::new().snapshot().handshake_crypto_percent(), 0.0);
    }
}
