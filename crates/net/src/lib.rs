//! Real-socket SSL serving layer.
//!
//! The paper measures a loaded Apache/mod_ssl server; the in-memory
//! experiments in `sslperf-websim` reproduce its cost anatomy, and this
//! crate supplies the missing serving substrate in two architectures: a
//! TCP listener with a fixed worker thread pool ([`TcpSslServer`], one
//! blocking thread per connection over [`sslperf_ssl::Transport`]) and an
//! event-driven loop ([`EventLoopServer`], many non-blocking sockets per
//! shard thread driven through the sans-io
//! [`ServerEngine`](sslperf_ssl::ServerEngine)). Both share a sharded LRU
//! session cache ([`ShardedSessionCache`]) that makes §4.1's session
//! re-negotiation work across connections — the baseline every scaling
//! experiment (batching, parallel crypto, sharding) gets measured against.
//!
//! # Examples
//!
//! ```
//! use sslperf_net::{ServerOptions, TcpSslServer};
//! use sslperf_rng::SslRng;
//! use sslperf_rsa::RsaPrivateKey;
//! use sslperf_ssl::{CipherSuite, SslClient};
//! use std::net::TcpStream;
//!
//! let mut rng = SslRng::from_seed(b"net-doc");
//! let key = RsaPrivateKey::generate(512, &mut rng)?;
//! let server = TcpSslServer::start(key, "doc.example", &ServerOptions::default())?;
//!
//! let mut socket = TcpStream::connect(server.local_addr())?;
//! let mut client = SslClient::new(CipherSuite::RsaDesCbc3Sha, SslRng::from_seed(b"c"));
//! client.handshake_transport(&mut socket)?;
//! client.close_transport(&mut socket)?;
//!
//! server.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod cryptopool;
mod eventloop;
mod fleet;
mod metrics;
mod server;

pub use cache::ShardedSessionCache;
pub use cryptopool::{CryptoPool, EngineProfile, PoolReply, SubmitError};
pub use eventloop::EventLoopServer;
pub use fleet::{FleetSnapshot, ServerFleet};
pub use metrics::{MetricsSnapshot, ServerMetrics, StepSnapshot};
pub use server::{OptionsError, ServerOptions, ServerOptionsBuilder, ServerStats, TcpSslServer};
