//! The TCP serving front-end: listener, worker pool, per-connection SSL.
//!
//! One listener thread accepts sockets and queues them on a channel; a
//! fixed pool of worker threads pops connections, runs the instrumented
//! SSLv3 handshake over the socket ([`Transport`] backend
//! `std::net::TcpStream`), and serves HTTP documents until the client
//! sends `close_notify` or disconnects. Session state lands in the shared
//! [`ShardedSessionCache`], so a client reconnecting on any worker resumes
//! without the RSA private-key operation — the cross-connection version of
//! the paper's §4.1 session re-negotiation.

use crate::cache::ShardedSessionCache;
use crate::cryptopool::EngineProfile;
use crate::metrics::ServerMetrics;
use sslperf_profile::{measure, Cycles};
use sslperf_rng::SslRng;
use sslperf_rsa::RsaPrivateKey;
use sslperf_ssl::alert::{Alert, AlertDescription};
use sslperf_ssl::{
    RecordBuffer, ServerConfig, SslError, SslServer, TicketKeyring, TicketSessionStore, Transport,
};
use sslperf_websim::http::{synthesize_document, HttpRequest, HttpResponse};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Tunables shared by both serving modes ([`TcpSslServer::start`] and
/// [`EventLoopServer::start`](crate::EventLoopServer::start)).
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Address to bind; port 0 picks a free port.
    pub addr: String,
    /// Worker threads handling connections (pool mode).
    pub workers: usize,
    /// Event-loop shard threads multiplexing connections (event-loop mode).
    pub shards: usize,
    /// One knob for both modes' slowloris guard: socket read/write
    /// timeouts on pool workers, per-connection idle/handshake deadlines
    /// on event-loop shards. `None` waits forever.
    pub io_timeout: Option<Duration>,
    /// Shards in the session cache.
    pub cache_shards: usize,
    /// Sessions each shard retains before LRU eviction.
    pub cache_capacity_per_shard: usize,
    /// Crypto worker threads for the event-loop mode's RSA offload pool
    /// (the paper's §5 "parallel crypto engines"). `0` — the default —
    /// keeps every decryption inline on its shard; the pool mode always
    /// decrypts inline regardless, so the two architectures stay
    /// comparable.
    pub crypto_workers: usize,
    /// Session lifetime for the cache: sessions older than this are
    /// treated as cache misses (full handshake) and removed on lookup.
    /// `None` — the default — never expires sessions by age.
    pub session_ttl: Option<Duration>,
    /// When true, every connection feeds its handshake-step ledger and
    /// record-path crypto cycles into a [`ServerMetrics`] registry
    /// (retrieved with [`TcpSslServer::metrics`] /
    /// [`EventLoopServer::metrics`](crate::EventLoopServer::metrics)), and
    /// `GET /metrics` returns the rendered
    /// [`MetricsSnapshot`](crate::MetricsSnapshot) instead of a document.
    /// Off by default: the anatomy costs a few atomics per record.
    pub metrics: bool,
    /// Most RSA jobs one crypto-pool batch may combine. `1` — the default
    /// — executes every job solo, exactly as before batching existed.
    /// Values above 1 require `crypto_workers > 0` and let the pool's
    /// collector drain up to this many queued jobs into one
    /// amortized decrypt batch.
    pub batch_max: usize,
    /// Longest a batch collector waits for sibling jobs after the first
    /// one, before executing a partial batch. Small by design (~200µs
    /// default) so p50 latency at low load does not pay for throughput at
    /// high load; irrelevant when `batch_max` is 1.
    pub batch_deadline: Duration,
    /// Session-ticket keyring. `None` — the default — serves id-cache
    /// resumption only, exactly as before tickets existed. With a keyring
    /// installed the server negotiates the session-ticket extension, and
    /// every instance sharing the same `Arc` (or a keyring derived from
    /// the same secret) can resume each other's sessions with no shared
    /// cache — the shared-nothing multi-instance topology.
    pub ticket_keys: Option<Arc<TicketKeyring>>,
    /// Explicit heterogeneous crypto engines for the event-loop offload
    /// pool, one worker per profile (the multi-core SSL processor's
    /// dedicated-engine topology). `None` — the default — spawns
    /// `crypto_workers` identical native-speed engines instead; when set,
    /// this takes precedence over `crypto_workers`.
    pub engine_profiles: Option<Vec<EngineProfile>>,
}

/// Default batch-collection deadline: long enough for a saturated queue to
/// fill a batch (jobs are already waiting), short enough to be noise next
/// to an RSA decrypt when traffic is light.
pub(crate) const DEFAULT_BATCH_DEADLINE: Duration = Duration::from_micros(200);

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            shards: 2,
            io_timeout: Some(Duration::from_secs(30)),
            cache_shards: 8,
            cache_capacity_per_shard: 1024,
            crypto_workers: 0,
            session_ttl: None,
            metrics: false,
            batch_max: 1,
            batch_deadline: DEFAULT_BATCH_DEADLINE,
            ticket_keys: None,
            engine_profiles: None,
        }
    }
}

impl ServerOptions {
    /// Starts a validated, fluent construction of [`ServerOptions`] —
    /// plain struct literals keep working, but the builder rejects
    /// inconsistent combinations (zero workers, batching without a crypto
    /// pool) at build time instead of panicking at server start.
    #[must_use]
    pub fn builder() -> ServerOptionsBuilder {
        ServerOptionsBuilder { options: ServerOptions::default() }
    }
}

/// Why a [`ServerOptionsBuilder`] refused to produce options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum OptionsError {
    /// `workers` was zero — the pool server needs at least one.
    ZeroWorkers,
    /// `shards` was zero — the event-loop server needs at least one.
    ZeroShards,
    /// `cache_shards` was zero — the session cache needs at least one.
    ZeroCacheShards,
    /// `batch_max` was zero — a batch holds at least one job.
    ZeroBatch,
    /// `batch_max > 1` with no crypto pool (neither `crypto_workers` nor
    /// `engine_profiles`): batching happens in the crypto pool's
    /// collector, so there is nothing to batch inline.
    BatchWithoutPool,
    /// `engine_profiles` was `Some` but empty — a heterogeneous pool
    /// needs at least one engine.
    NoEngines,
    /// An [`EngineProfile`] carried a cost multiplier below 1.0 (or not
    /// finite): the pool simulates slowdown by busy-waiting and cannot
    /// make real hardware faster than native.
    SubNativeEngineCost,
}

impl std::fmt::Display for OptionsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let msg = match self {
            OptionsError::ZeroWorkers => "workers must be at least 1",
            OptionsError::ZeroShards => "shards must be at least 1",
            OptionsError::ZeroCacheShards => "cache_shards must be at least 1",
            OptionsError::ZeroBatch => "batch_max must be at least 1",
            OptionsError::BatchWithoutPool => {
                "batch_max > 1 requires a crypto pool (crypto_workers > 0 or engine_profiles)"
            }
            OptionsError::NoEngines => "engine_profiles must list at least one engine",
            OptionsError::SubNativeEngineCost => {
                "engine_profiles cost multipliers must be finite and at least 1.0"
            }
        };
        f.write_str(msg)
    }
}

impl std::error::Error for OptionsError {}

/// Fluent, validated construction of [`ServerOptions`]; see
/// [`ServerOptions::builder`]. Every setter mirrors the field of the same
/// name; [`ServerOptionsBuilder::build`] validates the combination.
#[derive(Debug, Clone)]
pub struct ServerOptionsBuilder {
    options: ServerOptions,
}

impl ServerOptionsBuilder {
    /// Address to bind; port 0 picks a free port.
    #[must_use]
    pub fn addr(mut self, addr: impl Into<String>) -> Self {
        self.options.addr = addr.into();
        self
    }

    /// Worker threads handling connections (pool mode).
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.options.workers = workers;
        self
    }

    /// Event-loop shard threads multiplexing connections.
    #[must_use]
    pub fn shards(mut self, shards: usize) -> Self {
        self.options.shards = shards;
        self
    }

    /// Socket timeouts / event-loop deadlines; `None` waits forever.
    #[must_use]
    pub fn io_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.options.io_timeout = timeout;
        self
    }

    /// Shards in the session cache.
    #[must_use]
    pub fn cache_shards(mut self, shards: usize) -> Self {
        self.options.cache_shards = shards;
        self
    }

    /// Sessions each cache shard retains before LRU eviction.
    #[must_use]
    pub fn cache_capacity_per_shard(mut self, capacity: usize) -> Self {
        self.options.cache_capacity_per_shard = capacity;
        self
    }

    /// Crypto worker threads for the event-loop RSA offload pool.
    #[must_use]
    pub fn crypto_workers(mut self, workers: usize) -> Self {
        self.options.crypto_workers = workers;
        self
    }

    /// Session lifetime for the cache; `None` never expires by age.
    #[must_use]
    pub fn session_ttl(mut self, ttl: Option<Duration>) -> Self {
        self.options.session_ttl = ttl;
        self
    }

    /// Enables the live handshake-anatomy metrics registry.
    #[must_use]
    pub fn metrics(mut self, enabled: bool) -> Self {
        self.options.metrics = enabled;
        self
    }

    /// Most RSA jobs one crypto-pool batch may combine (default 1).
    #[must_use]
    pub fn batch_max(mut self, batch_max: usize) -> Self {
        self.options.batch_max = batch_max;
        self
    }

    /// Longest a batch collector waits for sibling jobs.
    #[must_use]
    pub fn batch_deadline(mut self, deadline: Duration) -> Self {
        self.options.batch_deadline = deadline;
        self
    }

    /// Installs a session-ticket keyring, enabling stateless resumption.
    #[must_use]
    pub fn ticket_keys(mut self, keyring: Option<Arc<TicketKeyring>>) -> Self {
        self.options.ticket_keys = keyring;
        self
    }

    /// Installs explicit heterogeneous crypto engines, one pool worker
    /// per profile (takes precedence over `crypto_workers`).
    #[must_use]
    pub fn engine_profiles(mut self, profiles: Option<Vec<EngineProfile>>) -> Self {
        self.options.engine_profiles = profiles;
        self
    }

    /// Validates the combination and returns the options.
    ///
    /// # Errors
    ///
    /// Returns the first [`OptionsError`] violated: zero `workers`,
    /// `shards` or `cache_shards`; zero `batch_max`; or `batch_max > 1`
    /// without a crypto pool to batch in.
    pub fn build(self) -> Result<ServerOptions, OptionsError> {
        let o = &self.options;
        if o.workers == 0 {
            return Err(OptionsError::ZeroWorkers);
        }
        if o.shards == 0 {
            return Err(OptionsError::ZeroShards);
        }
        if o.cache_shards == 0 {
            return Err(OptionsError::ZeroCacheShards);
        }
        if o.batch_max == 0 {
            return Err(OptionsError::ZeroBatch);
        }
        if o.batch_max > 1 && o.crypto_workers == 0 && o.engine_profiles.is_none() {
            return Err(OptionsError::BatchWithoutPool);
        }
        if let Some(profiles) = &o.engine_profiles {
            if profiles.is_empty() {
                return Err(OptionsError::NoEngines);
            }
            if !profiles.iter().all(EngineProfile::is_valid) {
                return Err(OptionsError::SubNativeEngineCost);
            }
        }
        Ok(self.options)
    }
}

/// Monotonic serving counters, shared across workers.
#[derive(Debug, Default)]
pub struct ServerStats {
    pub(crate) connections: AtomicU64,
    pub(crate) transactions: AtomicU64,
    pub(crate) full_handshakes: AtomicU64,
    pub(crate) resumed_handshakes: AtomicU64,
    pub(crate) errors: AtomicU64,
    pub(crate) timeouts: AtomicU64,
    pub(crate) alerts_sent: AtomicU64,
    pub(crate) crypto_jobs: AtomicU64,
    /// Jobs currently queued or executing. Incremented at enqueue inside
    /// the pool's submission lock, decremented when execution *completes*
    /// (not when a batch collector dequeues), so bursts absorbed into one
    /// batch stay fully visible to the max below.
    pub(crate) crypto_queue_depth: AtomicU64,
    pub(crate) crypto_queue_depth_max: AtomicU64,
    pub(crate) crypto_queue_wait_cycles: AtomicU64,
    pub(crate) crypto_exec_cycles: AtomicU64,
    /// Deadline expiries forgiven because the connection was waiting on
    /// the crypto pool, not on the client.
    pub(crate) crypto_deadline_deferrals: AtomicU64,
    /// Batches the crypto pool executed (each counts 1, whatever its size).
    pub(crate) crypto_batches: AtomicU64,
    /// Jobs executed inside batches of two or more.
    pub(crate) crypto_batched_jobs: AtomicU64,
    /// Total cycles jobs spent collected-but-waiting for batch siblings.
    pub(crate) crypto_batch_wait_cycles: AtomicU64,
    /// NewSessionTickets issued on full handshakes.
    pub(crate) tickets_issued: AtomicU64,
    /// Handshakes resumed from a client-presented ticket.
    pub(crate) tickets_accepted: AtomicU64,
    /// Tickets rejected as tampered/unknown (fell back to full handshake).
    pub(crate) tickets_rejected: AtomicU64,
    /// Tickets rejected as expired (fell back to full handshake).
    pub(crate) tickets_expired: AtomicU64,
    /// Jobs an idle engine stole from a backed-up or dead engine's queue.
    pub(crate) crypto_stolen_jobs: AtomicU64,
    /// Jobs routed past their preferred (cheapest) engine because its
    /// queue was full.
    pub(crate) crypto_spilled_jobs: AtomicU64,
    /// Bulk-cipher (record sealing) jobs accepted by the pool.
    pub(crate) crypto_bulk_jobs: AtomicU64,
}

impl ServerStats {
    /// Connections whose handshake completed.
    #[must_use]
    pub fn connections(&self) -> u64 {
        self.connections.load(Ordering::Relaxed)
    }

    /// HTTP request/response exchanges served.
    #[must_use]
    pub fn transactions(&self) -> u64 {
        self.transactions.load(Ordering::Relaxed)
    }

    /// Handshakes that ran the full RSA key exchange.
    #[must_use]
    pub fn full_handshakes(&self) -> u64 {
        self.full_handshakes.load(Ordering::Relaxed)
    }

    /// Handshakes resumed from the session cache.
    #[must_use]
    pub fn resumed_handshakes(&self) -> u64 {
        self.resumed_handshakes.load(Ordering::Relaxed)
    }

    /// Connections dropped on protocol or transport errors.
    #[must_use]
    pub fn errors(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }

    /// Connections evicted after stalling past the I/O timeout (the
    /// slowloris guard; not double-counted in [`ServerStats::errors`]).
    #[must_use]
    pub fn timeouts(&self) -> u64 {
        self.timeouts.load(Ordering::Relaxed)
    }

    /// Alert records sent before closing, including orderly `close_notify`
    /// replies — every error path says goodbye on the wire.
    #[must_use]
    pub fn alerts_sent(&self) -> u64 {
        self.alerts_sent.load(Ordering::Relaxed)
    }

    /// RSA decrypt jobs submitted to the crypto pool (0 in inline modes).
    #[must_use]
    pub fn crypto_jobs(&self) -> u64 {
        self.crypto_jobs.load(Ordering::Relaxed)
    }

    /// Jobs currently queued or executing in the crypto pool (transient;
    /// settles to 0 when the pool is idle).
    #[must_use]
    pub fn crypto_queue_depth(&self) -> u64 {
        self.crypto_queue_depth.load(Ordering::Relaxed)
    }

    /// High-water mark of in-flight crypto jobs (queued + executing),
    /// sampled at enqueue inside the submission lock — how deep the
    /// parallel-engine backlog ever got, burst-accurate even when a batch
    /// collector absorbs the whole burst at once.
    #[must_use]
    pub fn crypto_queue_depth_max(&self) -> u64 {
        self.crypto_queue_depth_max.load(Ordering::Relaxed)
    }

    /// Total cycles jobs spent waiting in the crypto queue before a
    /// worker picked them up.
    #[must_use]
    pub fn crypto_queue_wait(&self) -> Cycles {
        Cycles::new(self.crypto_queue_wait_cycles.load(Ordering::Relaxed))
    }

    /// Total cycles workers spent executing RSA decryptions.
    #[must_use]
    pub fn crypto_exec(&self) -> Cycles {
        Cycles::new(self.crypto_exec_cycles.load(Ordering::Relaxed))
    }

    /// Event-loop deadline expiries that were *deferred* rather than
    /// evicted because the connection's RSA job was queued, executing, or
    /// parked — crypto-pool wait is the server's latency, not the
    /// client's, so it must not trip the slowloris guard. A nonzero value
    /// under load means the pool is saturated enough that queue wait
    /// exceeds [`ServerOptions::io_timeout`].
    #[must_use]
    pub fn crypto_deadline_deferrals(&self) -> u64 {
        self.crypto_deadline_deferrals.load(Ordering::Relaxed)
    }

    /// Batches the crypto pool executed — one per collector drain, whether
    /// it gathered one job or `batch_max`.
    #[must_use]
    pub fn crypto_batches(&self) -> u64 {
        self.crypto_batches.load(Ordering::Relaxed)
    }

    /// Jobs that ran inside a real batch (two or more combined). Solo
    /// executions are `crypto_jobs - crypto_batched_jobs`.
    #[must_use]
    pub fn crypto_batched_jobs(&self) -> u64 {
        self.crypto_batched_jobs.load(Ordering::Relaxed)
    }

    /// Total cycles jobs spent collected-but-waiting for their batch to
    /// assemble (bounded per job by
    /// [`ServerOptions::batch_deadline`]).
    #[must_use]
    pub fn crypto_batch_wait(&self) -> Cycles {
        Cycles::new(self.crypto_batch_wait_cycles.load(Ordering::Relaxed))
    }

    /// NewSessionTickets issued on full handshakes (0 without a keyring).
    #[must_use]
    pub fn tickets_issued(&self) -> u64 {
        self.tickets_issued.load(Ordering::Relaxed)
    }

    /// Handshakes resumed from a client-presented ticket.
    #[must_use]
    pub fn tickets_accepted(&self) -> u64 {
        self.tickets_accepted.load(Ordering::Relaxed)
    }

    /// Tickets rejected as tampered or sealed under an unknown key; each
    /// fell back silently to a full handshake.
    #[must_use]
    pub fn tickets_rejected(&self) -> u64 {
        self.tickets_rejected.load(Ordering::Relaxed)
    }

    /// Tickets rejected as expired; each fell back silently to a full
    /// handshake.
    #[must_use]
    pub fn tickets_expired(&self) -> u64 {
        self.tickets_expired.load(Ordering::Relaxed)
    }

    /// Jobs an idle engine stole from a backed-up or dead engine's queue
    /// (0 in homogeneous pools that never back up unevenly).
    #[must_use]
    pub fn crypto_stolen_jobs(&self) -> u64 {
        self.crypto_stolen_jobs.load(Ordering::Relaxed)
    }

    /// Jobs routed past their preferred (cheapest) engine because its
    /// queue was full — how often affinity gave way to load.
    #[must_use]
    pub fn crypto_spilled_jobs(&self) -> u64 {
        self.crypto_spilled_jobs.load(Ordering::Relaxed)
    }

    /// Bulk-cipher (record sealing) jobs the pool accepted; only
    /// bulk-capable engines run them.
    #[must_use]
    pub fn crypto_bulk_jobs(&self) -> u64 {
        self.crypto_bulk_jobs.load(Ordering::Relaxed)
    }

    /// Bumps the ticket counters from one completed handshake's flags.
    pub(crate) fn note_ticket_flags(
        &self,
        issued: bool,
        accepted: bool,
        rejected: bool,
        expired: bool,
    ) {
        if issued {
            self.tickets_issued.fetch_add(1, Ordering::Relaxed);
        }
        if accepted {
            self.tickets_accepted.fetch_add(1, Ordering::Relaxed);
        }
        if rejected {
            self.tickets_rejected.fetch_add(1, Ordering::Relaxed);
        }
        if expired {
            self.tickets_expired.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Builds the [`ServerConfig`] both serving modes share: the sharded cache
/// as the id-keyed store, wrapped by a [`TicketSessionStore`] when a
/// keyring is installed.
pub(crate) fn build_config(
    key: RsaPrivateKey,
    name: &str,
    cache: &Arc<ShardedSessionCache>,
    ticket_keys: Option<&Arc<TicketKeyring>>,
) -> Result<ServerConfig, SslError> {
    match ticket_keys {
        Some(keyring) => ServerConfig::with_store(
            key,
            name,
            Box::new(TicketSessionStore::new(Arc::clone(keyring), Box::new(Arc::clone(cache)))),
        ),
        None => ServerConfig::with_cache(key, name, Box::new(Arc::clone(cache))),
    }
}

/// The alert to send before closing a connection that hit `error`.
///
/// Timeouts get an orderly `close_notify` when established (an idle but
/// healthy client) and a fatal `handshake_failure` mid-handshake (a
/// slowloris suspect). Hard transport failures and peer-initiated alerts
/// get none — there is nobody left to tell. Everything else maps through
/// [`Alert::for_error`], defaulting to a fatal `illegal_parameter` for
/// decode-class errors the mapping leaves out.
pub(crate) fn alert_for_close(error: &SslError, established: bool) -> Option<Alert> {
    if error.is_timeout() {
        return Some(if established {
            Alert::close_notify()
        } else {
            Alert::fatal(AlertDescription::HandshakeFailure)
        });
    }
    match error {
        SslError::Io(_) | SslError::PeerAlert(_) => None,
        _ => Some(
            Alert::for_error(error)
                .unwrap_or_else(|| Alert::fatal(AlertDescription::IllegalParameter)),
        ),
    }
}

/// A running SSL web server on a real socket.
///
/// Started with [`TcpSslServer::start`]; serves until
/// [`TcpSslServer::shutdown`] (or drop, which also stops the threads).
#[derive(Debug)]
pub struct TcpSslServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    listener: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    stats: Arc<ServerStats>,
    cache: Arc<ShardedSessionCache>,
    config: Arc<ServerConfig>,
    metrics: Option<Arc<ServerMetrics>>,
}

impl TcpSslServer {
    /// Binds the listener, installs a sharded session cache into the
    /// server configuration, and spawns the listener plus worker threads.
    ///
    /// # Errors
    ///
    /// Returns [`SslError::Io`] when the bind fails and certificate errors
    /// from [`ServerConfig::with_cache`].
    ///
    /// # Panics
    ///
    /// Panics when `options.workers` is zero.
    pub fn start(
        key: RsaPrivateKey,
        name: &str,
        options: &ServerOptions,
    ) -> Result<Self, SslError> {
        assert!(options.workers > 0, "at least one worker");
        let cache = Arc::new(ShardedSessionCache::with_ttl(
            options.cache_shards,
            options.cache_capacity_per_shard,
            options.session_ttl,
        ));
        let config = Arc::new(build_config(key, name, &cache, options.ticket_keys.as_ref())?);
        let listener = TcpListener::bind(&options.addr).map_err(|e| SslError::Io(e.to_string()))?;
        let addr = listener.local_addr().map_err(|e| SslError::Io(e.to_string()))?;

        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(ServerStats::default());
        let (conn_tx, conn_rx) = mpsc::channel::<TcpStream>();
        let conn_rx = Arc::new(Mutex::new(conn_rx));

        let io_timeout = options.io_timeout;
        let metrics = options.metrics.then(|| Arc::new(ServerMetrics::new()));
        let workers = (0..options.workers)
            .map(|_| {
                let conn_rx = Arc::clone(&conn_rx);
                let config = Arc::clone(&config);
                let stats = Arc::clone(&stats);
                let metrics = metrics.clone();
                std::thread::spawn(move || {
                    worker_loop(&conn_rx, &config, &stats, io_timeout, metrics.as_deref());
                })
            })
            .collect();

        let listener_thread = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || accept_loop(&listener, &conn_tx, &stop))
        };

        Ok(TcpSslServer {
            addr,
            stop,
            listener: Some(listener_thread),
            workers,
            stats,
            cache,
            config,
            metrics,
        })
    }

    /// The bound address clients should connect to.
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared serving counters.
    #[must_use]
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// The sharded session cache (hit/miss counters live here).
    #[must_use]
    pub fn session_cache(&self) -> &Arc<ShardedSessionCache> {
        &self.cache
    }

    /// The underlying SSL server configuration.
    #[must_use]
    pub fn config(&self) -> &Arc<ServerConfig> {
        &self.config
    }

    /// The live anatomy registry, present when
    /// [`ServerOptions::metrics`] was set.
    #[must_use]
    pub fn metrics(&self) -> Option<&ServerMetrics> {
        self.metrics.as_deref()
    }

    /// Stops accepting, drains queued connections, and joins every thread.
    pub fn shutdown(mut self) {
        self.stop_threads();
    }

    fn stop_threads(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept call so the listener sees the flag; dropping
        // the listener's sender then releases the workers.
        let _ = TcpStream::connect(self.addr);
        if let Some(listener) = self.listener.take() {
            let _ = listener.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for TcpSslServer {
    fn drop(&mut self) {
        self.stop_threads();
    }
}

fn accept_loop(listener: &TcpListener, conn_tx: &Sender<TcpStream>, stop: &AtomicBool) {
    // Owning conn_tx here means worker queues close exactly when the
    // accept loop exits.
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        if conn_tx.send(stream).is_err() {
            break;
        }
    }
}

fn worker_loop(
    conn_rx: &Mutex<Receiver<TcpStream>>,
    config: &ServerConfig,
    stats: &ServerStats,
    io_timeout: Option<Duration>,
    metrics: Option<&ServerMetrics>,
) {
    static CONN_SEQ: AtomicU64 = AtomicU64::new(0);
    loop {
        let stream = {
            let rx = conn_rx.lock().expect("connection queue lock");
            rx.recv()
        };
        let Ok(stream) = stream else { return };
        let conn_id = CONN_SEQ.fetch_add(1, Ordering::Relaxed);
        serve_connection(config, stats, stream, conn_id, io_timeout, metrics);
    }
}

/// Best-effort alert before closing on `error`; counts what actually made
/// it onto the wire.
fn send_closing_alert(
    server: &mut SslServer<'_>,
    transport: &mut TcpStream,
    error: &SslError,
    stats: &ServerStats,
) {
    if let Some(alert) = alert_for_close(error, server.is_established()) {
        if let Ok(wire) = server.seal_alert(&alert) {
            if Transport::send(transport, &wire).is_ok() {
                stats.alerts_sent.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// Runs one connection to completion: handshake, then HTTP transactions
/// until `close_notify` or disconnect.
fn serve_connection(
    config: &ServerConfig,
    stats: &ServerStats,
    stream: TcpStream,
    conn_id: u64,
    io_timeout: Option<Duration>,
    metrics: Option<&ServerMetrics>,
) {
    // Handshake flights are small back-to-back writes; Nagle + delayed
    // ACK would add ~40ms stalls to every resumed transaction.
    let _ = stream.set_nodelay(true);
    // Slowloris guard: a client trickling or withholding bytes cannot pin
    // this worker past the timeout.
    let _ = stream.set_read_timeout(io_timeout);
    let _ = stream.set_write_timeout(io_timeout);
    let mut transport = stream;
    // Session ids come from this rng; the connection counter keeps them
    // unique across the process.
    let rng = SslRng::from_seed(format!("sslperf-net-conn-{conn_id}").as_bytes());
    let mut server = SslServer::new(config, rng);
    if let Err(e) = server.handshake_transport(&mut transport) {
        if e.is_timeout() {
            stats.timeouts.fetch_add(1, Ordering::Relaxed);
        } else {
            stats.errors.fetch_add(1, Ordering::Relaxed);
        }
        send_closing_alert(&mut server, &mut transport, &e, stats);
        return;
    }
    stats.connections.fetch_add(1, Ordering::Relaxed);
    if server.resumed() {
        stats.resumed_handshakes.fetch_add(1, Ordering::Relaxed);
    } else {
        stats.full_handshakes.fetch_add(1, Ordering::Relaxed);
    }
    stats.note_ticket_flags(
        server.ticket_issued(),
        server.ticket_accepted(),
        server.ticket_rejected(),
        server.ticket_expired(),
    );
    if let Some(m) = metrics {
        m.note_handshake(&server.ledger());
    }

    // One reusable buffer pair per connection: every record of the
    // session is received, decrypted, sealed and sent inside these two
    // allocations (the zero-copy record pipeline).
    let mut rx_buf = RecordBuffer::with_record_capacity();
    let mut tx_buf = RecordBuffer::with_record_capacity();
    loop {
        // Pool-mode record timing: recv/send block on the socket, so
        // wall-clock around them measures the client, not the server. The
        // crypto-kernel delta is clean either way, so pool records report
        // crypto cycles for both the total and crypto columns (the
        // event-loop mode, being sans-io, measures both properly).
        let crypto_before = server.record_crypto_cycles();
        let payload_range = match server.recv_buffered(&mut transport, &mut rx_buf) {
            Ok(range) => range,
            Err(SslError::PeerAlert(alert)) if alert.is_close_notify() => {
                if server.close_transport(&mut transport).is_ok() {
                    stats.alerts_sent.fetch_add(1, Ordering::Relaxed);
                }
                return;
            }
            Err(e) if e.is_timeout() => {
                stats.timeouts.fetch_add(1, Ordering::Relaxed);
                send_closing_alert(&mut server, &mut transport, &e, stats);
                return;
            }
            Err(SslError::Io(_)) => return, // disconnect without close_notify
            Err(e) => {
                stats.errors.fetch_add(1, Ordering::Relaxed);
                send_closing_alert(&mut server, &mut transport, &e, stats);
                return;
            }
        };
        if let Some(m) = metrics {
            let crypto = server.record_crypto_cycles() - crypto_before;
            m.note_record_open(payload_range.len(), crypto, crypto);
        }
        let response = match HttpRequest::parse(&rx_buf.as_slice()[payload_range]) {
            Ok(request) => serve_request(&request, metrics),
            Err(_) => {
                // Application-level garbage over a healthy session: close
                // the SSL layer in an orderly way.
                stats.errors.fetch_add(1, Ordering::Relaxed);
                if server.close_transport(&mut transport).is_ok() {
                    stats.alerts_sent.fetch_add(1, Ordering::Relaxed);
                }
                return;
            }
        };
        let body = response.to_bytes();
        let crypto_before = server.record_crypto_cycles();
        if server.send_buffered(&mut transport, &body, &mut tx_buf).is_err() {
            stats.errors.fetch_add(1, Ordering::Relaxed);
            return;
        }
        if let Some(m) = metrics {
            let crypto = server.record_crypto_cycles() - crypto_before;
            m.note_record_seal(body.len(), crypto, crypto);
        }
        stats.transactions.fetch_add(1, Ordering::Relaxed);
    }
}

/// Builds the response for one parsed request: the live-metrics exposition
/// for `GET /metrics` when the registry is on, the synthesized document
/// otherwise. Document synthesis is measured into the registry's "other"
/// bucket (Table 1's non-SSL share); the exposition itself is not — it is
/// observability, not workload.
pub(crate) fn serve_request(
    request: &HttpRequest,
    metrics: Option<&ServerMetrics>,
) -> HttpResponse {
    if let Some(m) = metrics {
        if request.path() == "/metrics" {
            return HttpResponse::ok(m.snapshot().render().into_bytes());
        }
        let (response, cycles) = measure(|| respond(request));
        m.note_response(cycles);
        return response;
    }
    respond(request)
}

pub(crate) fn respond(request: &HttpRequest) -> HttpResponse {
    match document_size(request.path()) {
        Some(size) => HttpResponse::ok(synthesize_document(request.path(), size)),
        None => HttpResponse::not_found(),
    }
}

/// Parses the size out of the `/doc_{size}.bin` paths the load generator
/// and the websim experiments request.
pub(crate) fn document_size(path: &str) -> Option<usize> {
    let rest = path.strip_prefix("/doc_")?;
    let digits = rest.strip_suffix(".bin")?;
    digits.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn document_size_parses_loadgen_paths() {
        assert_eq!(document_size("/doc_1024.bin"), Some(1024));
        assert_eq!(document_size("/doc_0.bin"), Some(0));
        assert_eq!(document_size("/index.html"), None);
        assert_eq!(document_size("/doc_x.bin"), None);
    }

    #[test]
    fn builder_defaults_match_field_construction() {
        let built = ServerOptions::builder().build().expect("defaults are valid");
        let fields = ServerOptions::default();
        assert_eq!(built.addr, fields.addr);
        assert_eq!(built.workers, fields.workers);
        assert_eq!(built.shards, fields.shards);
        assert_eq!(built.crypto_workers, fields.crypto_workers);
        assert_eq!(built.batch_max, fields.batch_max);
        assert_eq!(built.batch_deadline, fields.batch_deadline);
    }

    #[test]
    fn builder_sets_every_knob() {
        let options = ServerOptions::builder()
            .addr("127.0.0.1:4433")
            .workers(3)
            .shards(2)
            .io_timeout(Some(Duration::from_secs(5)))
            .cache_shards(4)
            .cache_capacity_per_shard(64)
            .crypto_workers(2)
            .session_ttl(Some(Duration::from_secs(30)))
            .metrics(true)
            .batch_max(4)
            .batch_deadline(Duration::from_micros(250))
            .ticket_keys(Some(Arc::new(TicketKeyring::new(b"builder-secret"))))
            .engine_profiles(Some(vec![
                EngineProfile::rsa_engine(),
                EngineProfile::general_slowed(3.0),
            ]))
            .build()
            .expect("valid combination");
        assert_eq!(options.addr, "127.0.0.1:4433");
        assert_eq!(options.workers, 3);
        assert_eq!(options.shards, 2);
        assert_eq!(options.io_timeout, Some(Duration::from_secs(5)));
        assert_eq!(options.cache_shards, 4);
        assert_eq!(options.cache_capacity_per_shard, 64);
        assert_eq!(options.crypto_workers, 2);
        assert_eq!(options.session_ttl, Some(Duration::from_secs(30)));
        assert!(options.metrics);
        assert_eq!(options.batch_max, 4);
        assert_eq!(options.batch_deadline, Duration::from_micros(250));
        assert!(options.ticket_keys.is_some());
        assert_eq!(options.engine_profiles.as_ref().map(Vec::len), Some(2));
    }

    #[test]
    fn builder_rejects_invalid_combinations() {
        assert_eq!(
            ServerOptions::builder().workers(0).build().unwrap_err(),
            OptionsError::ZeroWorkers
        );
        assert_eq!(
            ServerOptions::builder().shards(0).build().unwrap_err(),
            OptionsError::ZeroShards
        );
        assert_eq!(
            ServerOptions::builder().cache_shards(0).build().unwrap_err(),
            OptionsError::ZeroCacheShards
        );
        assert_eq!(
            ServerOptions::builder().batch_max(0).build().unwrap_err(),
            OptionsError::ZeroBatch
        );
        // Batching needs a pool to batch in.
        assert_eq!(
            ServerOptions::builder().crypto_workers(0).batch_max(2).build().unwrap_err(),
            OptionsError::BatchWithoutPool
        );
        // batch_max == 1 without a pool stays legal: that is the inline
        // (unbatched, un-offloaded) baseline every experiment starts from.
        assert!(ServerOptions::builder().crypto_workers(0).batch_max(1).build().is_ok());
        // Explicit engines count as a pool for the batching rule.
        assert!(ServerOptions::builder()
            .crypto_workers(0)
            .batch_max(2)
            .engine_profiles(Some(vec![EngineProfile::general()]))
            .build()
            .is_ok());
        assert_eq!(
            ServerOptions::builder().engine_profiles(Some(Vec::new())).build().unwrap_err(),
            OptionsError::NoEngines
        );
        // A multiplier below native speed is impossible to simulate.
        let sub_native = EngineProfile { bulk_cost: Some(0.5), ..EngineProfile::general() };
        assert_eq!(
            ServerOptions::builder().engine_profiles(Some(vec![sub_native])).build().unwrap_err(),
            OptionsError::SubNativeEngineCost
        );
    }

    #[test]
    fn options_error_displays_are_actionable() {
        for (err, needle) in [
            (OptionsError::ZeroWorkers, "worker"),
            (OptionsError::ZeroShards, "shard"),
            (OptionsError::ZeroCacheShards, "cache"),
            (OptionsError::ZeroBatch, "batch_max"),
            (OptionsError::BatchWithoutPool, "crypto_workers"),
            (OptionsError::NoEngines, "engine_profiles"),
            (OptionsError::SubNativeEngineCost, "at least 1.0"),
        ] {
            let text = err.to_string();
            assert!(text.contains(needle), "{err:?} display {text:?} lacks {needle:?}");
        }
    }
}
