//! A sharded, bounded session cache for multi-threaded serving.
//!
//! The default [`SimpleSessionCache`](sslperf_ssl::SimpleSessionCache)
//! funnels every connection through one mutex; under a worker pool that
//! lock is the first thing to contend. [`ShardedSessionCache`] stripes the
//! id space over N independently locked shards (FNV-1a of the session id
//! picks the shard), bounds each shard with least-recently-used eviction,
//! optionally expires sessions by age ([`ShardedSessionCache::with_ttl`] —
//! an expired entry is removed on lookup and counts as a miss, forcing the
//! client back through a full handshake), and counts hits and misses so
//! load generators can report resumption rates.

use sslperf_ssl::{CachedSession, SessionCache};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Per-shard state: the id map plus a logical clock for LRU stamps.
#[derive(Debug, Default)]
struct Shard {
    entries: HashMap<Vec<u8>, Entry>,
    clock: u64,
}

#[derive(Debug)]
struct Entry {
    session: CachedSession,
    stamp: u64,
    /// When the session was stored; compared against the cache TTL on
    /// lookup (refreshing a hit does *not* reset it — session lifetime is
    /// measured from key establishment, not last use).
    created: Instant,
}

/// Mutex-striped LRU session cache; see the module docs.
#[derive(Debug)]
pub struct ShardedSessionCache {
    shards: Vec<Mutex<Shard>>,
    capacity_per_shard: usize,
    /// Session lifetime: entries older than this are removed on lookup and
    /// count as misses. `None` (the default) never expires by age.
    ttl: Option<Duration>,
    hits: AtomicU64,
    misses: AtomicU64,
    expired: AtomicU64,
}

impl ShardedSessionCache {
    /// A cache with `shards` stripes holding at most `capacity_per_shard`
    /// sessions each and no age-based expiry.
    ///
    /// # Panics
    ///
    /// Panics when either parameter is zero.
    #[must_use]
    pub fn new(shards: usize, capacity_per_shard: usize) -> Self {
        Self::with_ttl(shards, capacity_per_shard, None)
    }

    /// A cache whose sessions additionally expire `ttl` after being
    /// stored. An expired entry behaves exactly like an absent one — the
    /// lookup counts as a miss, the entry is removed, and the client falls
    /// back to a full handshake — which is SSL's defense against
    /// indefinitely resumable master secrets.
    ///
    /// # Panics
    ///
    /// Panics when `shards` or `capacity_per_shard` is zero.
    #[must_use]
    pub fn with_ttl(shards: usize, capacity_per_shard: usize, ttl: Option<Duration>) -> Self {
        assert!(shards > 0, "at least one shard");
        assert!(capacity_per_shard > 0, "shards must hold at least one session");
        ShardedSessionCache {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            capacity_per_shard,
            ttl,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            expired: AtomicU64::new(0),
        }
    }

    /// Which shard a session id maps to (FNV-1a over the id bytes,
    /// xor-folded — the hash's low bits alone cluster on structured ids).
    #[must_use]
    pub fn shard_index(&self, id: &[u8]) -> usize {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &b in id {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^= h >> 32;
        (h % self.shards.len() as u64) as usize
    }

    /// Number of shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Sessions currently held by shard `index`.
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of range.
    #[must_use]
    pub fn shard_len(&self, index: usize) -> usize {
        self.shards[index].lock().expect("shard lock").entries.len()
    }

    /// Lookups that found a cached session.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Non-empty-id lookups that found nothing (evicted, expired,
    /// tampered, or never stored).
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Lookups that found an entry past the session TTL (a subset of
    /// [`ShardedSessionCache::misses`]).
    #[must_use]
    pub fn expired(&self) -> u64 {
        self.expired.load(Ordering::Relaxed)
    }

    /// Resets the hit/miss/expired counters (entries are untouched).
    pub fn reset_stats(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.expired.store(0, Ordering::Relaxed);
    }
}

impl SessionCache for ShardedSessionCache {
    fn lookup(&self, id: &[u8]) -> Option<CachedSession> {
        if id.is_empty() {
            // No id offered: not a resumption attempt, not a miss.
            return None;
        }
        let mut shard = self.shards[self.shard_index(id)].lock().expect("shard lock");
        shard.clock += 1;
        let stamp = shard.clock;
        let expired = shard
            .entries
            .get(id)
            .is_some_and(|e| self.ttl.is_some_and(|ttl| e.created.elapsed() >= ttl));
        if expired {
            shard.entries.remove(id);
            self.expired.fetch_add(1, Ordering::Relaxed);
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        match shard.entries.get_mut(id) {
            Some(entry) => {
                entry.stamp = stamp;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(entry.session.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn store(&self, id: Vec<u8>, session: CachedSession) {
        let mut shard = self.shards[self.shard_index(&id)].lock().expect("shard lock");
        shard.clock += 1;
        let stamp = shard.clock;
        shard.entries.insert(id, Entry { session, stamp, created: Instant::now() });
        if shard.entries.len() > self.capacity_per_shard {
            let oldest = shard
                .entries
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(id, _)| id.clone())
                .expect("non-empty over capacity");
            shard.entries.remove(&oldest);
        }
    }

    fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().expect("shard lock").entries.len()).sum()
    }

    fn clear(&self) {
        for shard in &self.shards {
            shard.lock().expect("shard lock").entries.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sslperf_ssl::CipherSuite;

    fn session(n: u8) -> CachedSession {
        CachedSession { master: vec![n; 48], suite: CipherSuite::RsaDesCbc3Sha }
    }

    #[test]
    fn ids_spread_over_shards() {
        let cache = ShardedSessionCache::new(8, 64);
        for i in 0..64u8 {
            cache.store(vec![i; 32], session(i));
        }
        assert_eq!(cache.len(), 64);
        let populated = (0..8).filter(|&s| cache.shard_len(s) > 0).count();
        assert!(populated >= 4, "FNV should touch most shards, got {populated}");
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let cache = ShardedSessionCache::new(1, 2);
        cache.store(vec![1], session(1));
        cache.store(vec![2], session(2));
        // Touch id 1 so id 2 becomes the LRU entry, then overflow.
        assert!(cache.lookup(&[1]).is_some());
        cache.store(vec![3], session(3));
        assert_eq!(cache.len(), 2);
        assert!(cache.lookup(&[1]).is_some(), "recently used survives");
        assert!(cache.lookup(&[2]).is_none(), "LRU entry evicted");
        assert!(cache.lookup(&[3]).is_some(), "new entry present");
    }

    #[test]
    fn counters_track_hits_and_misses() {
        let cache = ShardedSessionCache::new(4, 8);
        cache.store(vec![7; 32], session(7));
        assert!(cache.lookup(&[7; 32]).is_some());
        assert!(cache.lookup(&[8; 32]).is_none());
        assert!(cache.lookup(&[]).is_none());
        assert_eq!((cache.hits(), cache.misses()), (1, 1), "empty id is not a miss");
        cache.reset_stats();
        assert_eq!((cache.hits(), cache.misses()), (0, 0));
    }

    #[test]
    fn ttl_expires_entries_on_lookup() {
        let cache = ShardedSessionCache::with_ttl(2, 8, Some(Duration::ZERO));
        cache.store(vec![1; 16], session(1));
        assert_eq!(cache.len(), 1);
        // Zero TTL: already expired by lookup time — removed, counted as a
        // miss, and flagged in the expired counter.
        assert!(cache.lookup(&[1; 16]).is_none());
        assert_eq!(cache.len(), 0, "expired entry is removed");
        assert_eq!((cache.hits(), cache.misses(), cache.expired()), (0, 1, 1));
        // A second lookup is a plain miss, not another expiry.
        assert!(cache.lookup(&[1; 16]).is_none());
        assert_eq!((cache.misses(), cache.expired()), (2, 1));
    }

    #[test]
    fn ttl_keeps_fresh_entries() {
        let cache = ShardedSessionCache::with_ttl(2, 8, Some(Duration::from_secs(3600)));
        cache.store(vec![2; 16], session(2));
        assert!(cache.lookup(&[2; 16]).is_some(), "fresh entry survives");
        assert_eq!((cache.hits(), cache.misses(), cache.expired()), (1, 0, 0));
    }

    #[test]
    fn no_ttl_never_expires() {
        let cache = ShardedSessionCache::new(1, 4);
        cache.store(vec![3; 16], session(3));
        assert!(cache.lookup(&[3; 16]).is_some());
        assert_eq!(cache.expired(), 0);
    }

    #[test]
    fn clear_empties_every_shard() {
        let cache = ShardedSessionCache::new(4, 8);
        for i in 0..16u8 {
            cache.store(vec![i; 16], session(i));
        }
        cache.clear();
        assert_eq!(cache.len(), 0);
        assert!(cache.is_empty());
    }
}
