//! Shared-nothing multi-instance serving.
//!
//! One machine-scale SSL deployment is not one server process: it is N
//! independent instances behind one address, each with its own session
//! cache, crypto pool, and metrics. With id-based resumption that
//! topology breaks §4.1's optimization — a session cached by instance A
//! is a miss on instance B, and dies entirely when A restarts. With
//! encrypted session tickets ([`sslperf_ssl::TicketKeyring`]) the
//! instances share only the ticket keys: any instance can resume any
//! other instance's sessions, and a restart loses nothing. That contrast
//! is the restart-survival experiment this module exists to serve.
//!
//! The kernel-native way to fan one port across processes is
//! `SO_REUSEPORT`; setting socket options needs `setsockopt` and
//! therefore unsafe code, which this workspace forbids. [`ServerFleet`]
//! substitutes an accept-fan thread: it owns the one bound listener and
//! round-robins accepted sockets over channels to the instances' shard
//! loops (the `Intake::Fed` path in the event-loop module). The
//! distribution point moves from kernel to userspace, but the serving
//! topology under study — N shared-nothing engines behind one address —
//! is the same.

use crate::eventloop::{EventLoopServer, Intake};
use crate::server::{ServerOptions, ServerStats};
use sslperf_rsa::RsaPrivateKey;
use sslperf_ssl::SslError;
use std::io::ErrorKind;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// How long the accept-fan thread sleeps when the backlog is empty.
const ACCEPT_IDLE: Duration = Duration::from_micros(500);

/// The routing table the accept-fan thread distributes sockets through:
/// one sender per instance slot, `None` while that instance is down.
type FeedTable = Arc<Mutex<Vec<Option<Sender<TcpStream>>>>>;

/// N independent [`EventLoopServer`] instances behind one listening
/// address, fed by an accept-fan thread.
///
/// Instances are shared-nothing: each has its own session cache, stats,
/// and (optional) metrics registry. They share at most the ticket keyring
/// passed in [`ServerOptions::ticket_keys`] — which is exactly the point:
/// ticket resumption needs no other shared state. Individual instances
/// can be [killed](ServerFleet::kill) and
/// [restarted](ServerFleet::restart) while the fleet keeps serving, and
/// [`ServerFleet::aggregated`] keeps counting a killed instance's traffic
/// toward the fleet totals.
#[derive(Debug)]
pub struct ServerFleet {
    addr: SocketAddr,
    key: RsaPrivateKey,
    name: String,
    options: ServerOptions,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    feeds: FeedTable,
    slots: Vec<Option<EventLoopServer>>,
    /// Stats handles of killed instances, so their traffic stays in the
    /// aggregate after the instance is gone.
    retired: Vec<Arc<ServerStats>>,
    /// Instances ever started (restarts included) — tags each instance's
    /// RNG seed stream so no two fleet instances, dead or alive, draw the
    /// same "random" session ids for their nth connections.
    spawned: u64,
}

impl ServerFleet {
    /// Binds one listener at `options.addr`, starts `instances`
    /// independent event-loop servers, and spawns the accept-fan thread
    /// distributing sockets round-robin among them.
    ///
    /// # Errors
    ///
    /// Returns [`SslError::Io`] when the bind fails and certificate
    /// errors from the server configuration.
    ///
    /// # Panics
    ///
    /// Panics when `instances` is zero.
    pub fn start(
        key: RsaPrivateKey,
        name: &str,
        instances: usize,
        options: &ServerOptions,
    ) -> Result<Self, SslError> {
        assert!(instances > 0, "at least one instance");
        let listener = TcpListener::bind(&options.addr).map_err(|e| SslError::Io(e.to_string()))?;
        listener.set_nonblocking(true).map_err(|e| SslError::Io(e.to_string()))?;
        let addr = listener.local_addr().map_err(|e| SslError::Io(e.to_string()))?;

        let mut fleet = ServerFleet {
            addr,
            key,
            name: name.to_string(),
            options: options.clone(),
            stop: Arc::new(AtomicBool::new(false)),
            acceptor: None,
            feeds: Arc::new(Mutex::new(vec![None; instances])),
            slots: std::iter::repeat_with(|| None).take(instances).collect(),
            retired: Vec::new(),
            spawned: 0,
        };
        for index in 0..instances {
            fleet.restart(index)?;
        }
        let feeds = Arc::clone(&fleet.feeds);
        let stop = Arc::clone(&fleet.stop);
        fleet.acceptor = Some(std::thread::spawn(move || accept_fan(&listener, &feeds, &stop)));
        Ok(fleet)
    }

    /// The one address clients connect to, whichever instance serves them.
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Instance slots, live or not.
    #[must_use]
    pub fn instances(&self) -> usize {
        self.slots.len()
    }

    /// Slots currently holding a running instance.
    #[must_use]
    pub fn live_instances(&self) -> usize {
        self.slots.iter().filter(|slot| slot.is_some()).count()
    }

    /// The running instance in `index`'s slot, when it is up.
    #[must_use]
    pub fn instance(&self, index: usize) -> Option<&EventLoopServer> {
        self.slots.get(index)?.as_ref()
    }

    /// Kills one instance: unroutes it, closes its connections, joins its
    /// threads, and retires its stats into the aggregate. In-flight
    /// connections on that instance are dropped — that is the failure the
    /// restart-survival experiment injects on purpose. Returns false when
    /// the slot is already empty or out of range.
    pub fn kill(&mut self, index: usize) -> bool {
        let Some(server) = self.slots.get_mut(index).and_then(Option::take) else {
            return false;
        };
        if let Ok(mut feeds) = self.feeds.lock() {
            feeds[index] = None;
        }
        self.retired.push(server.stats_arc());
        server.shutdown();
        true
    }

    /// Starts a fresh instance in `index`'s slot and routes new
    /// connections to it. The instance starts empty: no session cache
    /// entries, zeroed stats — like a restarted process. A no-op when the
    /// slot is still occupied.
    ///
    /// # Errors
    ///
    /// Returns certificate errors from the server configuration.
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of range.
    pub fn restart(&mut self, index: usize) -> Result<(), SslError> {
        assert!(index < self.slots.len(), "instance index in range");
        if self.slots[index].is_some() {
            return Ok(());
        }
        let (tx, rx) = mpsc::channel();
        self.spawned += 1;
        let server = EventLoopServer::start_with_intake(
            self.key.clone(),
            &self.name,
            &self.options,
            Intake::Fed(Arc::new(Mutex::new(rx))),
            self.addr,
            &format!("fleet-{}", self.spawned),
        )?;
        self.slots[index] = Some(server);
        if let Ok(mut feeds) = self.feeds.lock() {
            feeds[index] = Some(tx);
        }
        Ok(())
    }

    /// Sums serving counters across every instance the fleet ever ran —
    /// live slots plus retired (killed) ones.
    #[must_use]
    pub fn aggregated(&self) -> FleetSnapshot {
        let mut snap = FleetSnapshot {
            live_instances: self.live_instances(),
            retired_instances: self.retired.len(),
            ..FleetSnapshot::default()
        };
        let live = self.slots.iter().flatten().map(EventLoopServer::stats);
        let retired = self.retired.iter().map(Arc::as_ref);
        for stats in live.chain(retired) {
            snap.connections += stats.connections();
            snap.transactions += stats.transactions();
            snap.full_handshakes += stats.full_handshakes();
            snap.resumed_handshakes += stats.resumed_handshakes();
            snap.errors += stats.errors();
            snap.timeouts += stats.timeouts();
            snap.tickets_issued += stats.tickets_issued();
            snap.tickets_accepted += stats.tickets_accepted();
            snap.tickets_rejected += stats.tickets_rejected();
            snap.tickets_expired += stats.tickets_expired();
        }
        snap
    }

    /// Stops the accept-fan thread and every live instance.
    pub fn shutdown(mut self) {
        self.stop_all();
    }

    fn stop_all(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for slot in &mut self.slots {
            if let Some(server) = slot.take() {
                server.shutdown();
            }
        }
    }
}

impl Drop for ServerFleet {
    fn drop(&mut self) {
        self.stop_all();
    }
}

/// The accept-fan loop: accept from the shared listener, hand each socket
/// to the next live instance round-robin. An instance whose channel is
/// gone is unrouted; with no live instance at all the socket is dropped
/// (the client sees a reset — the same outcome as connecting to a dead
/// process).
fn accept_fan(listener: &TcpListener, feeds: &FeedTable, stop: &AtomicBool) {
    let mut cursor = 0usize;
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let Ok(mut feeds) = feeds.lock() else { return };
                let slots = feeds.len();
                let mut pending = Some(stream);
                for step in 0..slots {
                    let slot = (cursor + step) % slots;
                    let Some(tx) = feeds[slot].as_ref() else { continue };
                    match tx.send(pending.take().expect("socket still undelivered")) {
                        Ok(()) => {
                            cursor = (slot + 1) % slots;
                            break;
                        }
                        Err(mpsc::SendError(stream)) => {
                            feeds[slot] = None;
                            pending = Some(stream);
                        }
                    }
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_IDLE),
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => std::thread::sleep(ACCEPT_IDLE),
        }
    }
}

/// Fleet-wide serving counters, summed over live and retired instances.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FleetSnapshot {
    /// Slots holding a running instance at snapshot time.
    pub live_instances: usize,
    /// Instances killed since the fleet started.
    pub retired_instances: usize,
    /// Connections whose handshake completed.
    pub connections: u64,
    /// HTTP request/response exchanges served.
    pub transactions: u64,
    /// Handshakes that ran the full RSA key exchange.
    pub full_handshakes: u64,
    /// Handshakes resumed — from a ticket or an instance-local id cache.
    pub resumed_handshakes: u64,
    /// Connections dropped on protocol or transport errors.
    pub errors: u64,
    /// Connections evicted by the slowloris guard.
    pub timeouts: u64,
    /// NewSessionTickets issued on full handshakes.
    pub tickets_issued: u64,
    /// Handshakes resumed from a client-presented ticket.
    pub tickets_accepted: u64,
    /// Tickets rejected as tampered/unknown (silent full-handshake
    /// fallback).
    pub tickets_rejected: u64,
    /// Tickets rejected as expired (silent full-handshake fallback).
    pub tickets_expired: u64,
}

impl FleetSnapshot {
    /// Resumed handshakes as a share of completed connections, in
    /// percent — the restart-survival experiment's headline number.
    #[must_use]
    pub fn resumption_hit_rate(&self) -> f64 {
        if self.connections == 0 {
            0.0
        } else {
            self.resumed_handshakes as f64 / self.connections as f64 * 100.0
        }
    }
}
