//! Event-driven serving mode: many connections multiplexed per thread.
//!
//! The worker-pool server ([`crate::TcpSslServer`]) dedicates one blocking
//! thread to each in-flight connection, so its concurrency ceiling is the
//! worker count. [`EventLoopServer`] instead runs a small number of *shard*
//! threads, each sweeping a set of non-blocking sockets: every connection
//! holds a sans-io [`ServerEngine`] plus its socket, and a shard makes
//! whatever progress each socket's readiness allows — partial reads feed
//! the engine byte-by-byte, partial writes drain its outbound buffer, and
//! the engine's own buffering reassembles records and handshake messages
//! split across arbitrary TCP boundaries. One shard comfortably carries
//! an order of magnitude more concurrent handshakes than a pool worker,
//! which is the C10k argument the paper's serving analysis leads to.
//!
//! There is no async runtime and no `poll(2)` binding here (the workspace
//! forbids unsafe code and external deps): readiness is discovered by
//! attempting the syscall and treating `WouldBlock` as "not ready", with a
//! short sleep when a full sweep makes no progress. That costs a bounded
//! idle latency (~0.5 ms) but keeps the loop dependency-free while
//! preserving the architecture under study.
//!
//! Stalled connections are evicted by per-connection deadlines (the same
//! [`ServerOptions::io_timeout`] knob the pool uses for socket timeouts):
//! a connection that neither delivers nor accepts bytes before its
//! deadline is counted in [`ServerStats::timeouts`] and closed with an
//! alert — fatal `handshake_failure` mid-handshake (a slowloris suspect),
//! orderly `close_notify` once established.

use crate::cache::ShardedSessionCache;
use crate::server::{alert_for_close, respond, ServerOptions, ServerStats};
use sslperf_rng::SslRng;
use sslperf_rsa::RsaPrivateKey;
use sslperf_ssl::alert::{Alert, AlertDescription};
use sslperf_ssl::{Engine, ServerConfig, ServerEngine, SslError, SslServer};
use sslperf_websim::http::HttpRequest;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long an idle shard sleeps before re-sweeping its sockets.
const IDLE_SLEEP: Duration = Duration::from_micros(500);

/// Per-sweep read buffer; one per shard thread, reused by every
/// connection it owns.
const SCRATCH_LEN: usize = 16 * 1024;

/// A running SSL web server in event-loop mode.
///
/// Started with [`EventLoopServer::start`]; serves until
/// [`EventLoopServer::shutdown`] (or drop). Shares [`ServerOptions`],
/// [`ServerStats`], and the sharded session cache with the worker-pool
/// mode so experiments can compare the two architectures directly.
#[derive(Debug)]
pub struct EventLoopServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    shards: Vec<JoinHandle<()>>,
    stats: Arc<ServerStats>,
    cache: Arc<ShardedSessionCache>,
    config: Arc<ServerConfig>,
}

impl EventLoopServer {
    /// Binds a non-blocking listener, installs a sharded session cache
    /// into the server configuration, and spawns `options.shards` event
    /// loop threads, each accepting from the shared listener.
    ///
    /// # Errors
    ///
    /// Returns [`SslError::Io`] when the bind fails and certificate errors
    /// from [`ServerConfig::with_cache`].
    ///
    /// # Panics
    ///
    /// Panics when `options.shards` is zero.
    pub fn start(
        key: RsaPrivateKey,
        name: &str,
        options: &ServerOptions,
    ) -> Result<Self, SslError> {
        assert!(options.shards > 0, "at least one shard");
        let cache = Arc::new(ShardedSessionCache::new(
            options.cache_shards,
            options.cache_capacity_per_shard,
        ));
        let config = Arc::new(ServerConfig::with_cache(key, name, Box::new(Arc::clone(&cache)))?);
        let listener = TcpListener::bind(&options.addr).map_err(|e| SslError::Io(e.to_string()))?;
        listener.set_nonblocking(true).map_err(|e| SslError::Io(e.to_string()))?;
        let addr = listener.local_addr().map_err(|e| SslError::Io(e.to_string()))?;
        let listener = Arc::new(listener);

        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(ServerStats::default());
        let io_timeout = options.io_timeout;
        let shards = (0..options.shards)
            .map(|shard| {
                let listener = Arc::clone(&listener);
                let config = Arc::clone(&config);
                let stats = Arc::clone(&stats);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    shard_loop(shard, &listener, &config, &stats, &stop, io_timeout);
                })
            })
            .collect();

        Ok(EventLoopServer { addr, stop, shards, stats, cache, config })
    }

    /// The bound address clients should connect to.
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared serving counters.
    #[must_use]
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// The sharded session cache (hit/miss counters live here).
    #[must_use]
    pub fn session_cache(&self) -> &Arc<ShardedSessionCache> {
        &self.cache
    }

    /// The underlying SSL server configuration.
    #[must_use]
    pub fn config(&self) -> &Arc<ServerConfig> {
        &self.config
    }

    /// Stops accepting, closes every in-flight connection, and joins the
    /// shard threads.
    pub fn shutdown(mut self) {
        self.stop_threads();
    }

    fn stop_threads(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // The listener is non-blocking, so shards notice the flag on their
        // next sweep without any unblocking trick.
        for shard in self.shards.drain(..) {
            let _ = shard.join();
        }
    }
}

impl Drop for EventLoopServer {
    fn drop(&mut self) {
        self.stop_threads();
    }
}

/// One shard: accepts new sockets and sweeps every connection it owns,
/// sleeping only when a full pass made no progress anywhere.
fn shard_loop(
    shard: usize,
    listener: &TcpListener,
    config: &ServerConfig,
    stats: &ServerStats,
    stop: &AtomicBool,
    io_timeout: Option<Duration>,
) {
    let mut conns: Vec<Conn<'_>> = Vec::new();
    let mut scratch = vec![0u8; SCRATCH_LEN];
    let mut seq: u64 = 0;
    while !stop.load(Ordering::SeqCst) {
        let mut progress = false;
        // Accept burst: drain the backlog, then get back to serving.
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    progress = true;
                    seq += 1;
                    if let Some(conn) = Conn::accept(stream, config, shard, seq, io_timeout) {
                        conns.push(conn);
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
        let now = Instant::now();
        conns.retain_mut(|conn| {
            progress |= conn.pump(stats, &mut scratch, now);
            !conn.done
        });
        if !progress {
            std::thread::sleep(IDLE_SLEEP);
        }
    }
}

/// One multiplexed connection: a non-blocking socket plus the sans-io
/// engine holding its handshake/record state between readiness events.
struct Conn<'a> {
    stream: TcpStream,
    engine: ServerEngine<'a>,
    /// Evict when `Instant::now()` passes this without traffic.
    deadline: Option<Instant>,
    io_timeout: Option<Duration>,
    /// Whether the completed handshake has been counted in the stats.
    counted: bool,
    /// Closing: no more reads, just flush the outbound buffer (which ends
    /// with an alert) and finish.
    draining: bool,
    /// Finished; the shard drops the connection on its next sweep.
    done: bool,
}

impl<'a> Conn<'a> {
    /// Wraps a freshly accepted socket. Returns `None` when socket setup
    /// fails (the peer is already gone).
    fn accept(
        stream: TcpStream,
        config: &'a ServerConfig,
        shard: usize,
        seq: u64,
        io_timeout: Option<Duration>,
    ) -> Option<Self> {
        stream.set_nonblocking(true).ok()?;
        let _ = stream.set_nodelay(true);
        let rng = SslRng::from_seed(format!("sslperf-eventloop-{shard}-{seq}").as_bytes());
        let engine = Engine::new(SslServer::new(config, rng)).ok()?;
        Some(Conn {
            stream,
            engine,
            deadline: io_timeout.map(|t| Instant::now() + t),
            io_timeout,
            counted: false,
            draining: false,
            done: false,
        })
    }

    /// Pushes the deadline out after any successful read or write.
    fn touch(&mut self, now: Instant) {
        self.deadline = self.io_timeout.map(|t| now + t);
    }

    /// Makes whatever progress the socket allows: deadline check, read +
    /// feed, request serving, write. Returns true when anything moved.
    fn pump(&mut self, stats: &ServerStats, scratch: &mut [u8], now: Instant) -> bool {
        let mut progress = false;

        // Deadline eviction (the event-loop half of the slowloris guard).
        if !self.draining && !self.done {
            if let Some(deadline) = self.deadline {
                if now >= deadline {
                    stats.timeouts.fetch_add(1, Ordering::Relaxed);
                    let alert = if self.engine.is_established() {
                        Alert::close_notify()
                    } else {
                        Alert::fatal(AlertDescription::HandshakeFailure)
                    };
                    if self.engine.queue_alert(alert).is_ok() {
                        stats.alerts_sent.fetch_add(1, Ordering::Relaxed);
                    }
                    self.draining = true;
                    progress = true;
                }
            }
        }

        // Read phase: pull whatever the socket has and feed the engine.
        while !self.draining && !self.done {
            match self.stream.read(scratch) {
                Ok(0) => {
                    self.done = true;
                }
                Ok(n) => {
                    progress = true;
                    self.touch(now);
                    self.feed_bytes(&scratch[..n], stats);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => self.done = true,
            }
        }

        // Serve any complete requests that arrived exactly on a previous
        // sweep's bytes (feed_bytes drains eagerly, this is the catch-all).
        if !self.draining && !self.done && self.engine.is_established() {
            self.drain_requests(stats);
        }

        // Write phase: flush the engine's outbound buffer as far as the
        // socket accepts, keeping the rest queued for the next sweep.
        while !self.done && self.engine.wants_write() {
            match self.stream.write(self.engine.output()) {
                Ok(0) => self.done = true,
                Ok(n) => {
                    progress = true;
                    self.engine.consume_output(n);
                    self.touch(now);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => self.done = true,
            }
        }

        // A draining connection is finished once its goodbye is flushed.
        if self.draining && !self.engine.wants_write() {
            self.done = true;
        }
        progress
    }

    /// Feeds freshly read bytes through the engine, serving requests as
    /// they complete so the inbound buffer keeps making room.
    fn feed_bytes(&mut self, bytes: &[u8], stats: &ServerStats) {
        let mut offset = 0;
        while offset < bytes.len() && !self.draining {
            match self.engine.feed(&bytes[offset..]) {
                Ok(0) => {
                    // Inbound buffer full of unserved records: drain, then
                    // retry. No movement means the connection is stuck.
                    let before = self.engine.unconsumed();
                    self.drain_requests(stats);
                    if self.draining || self.engine.unconsumed() == before {
                        break;
                    }
                }
                Ok(consumed) => {
                    offset += consumed;
                    self.note_established(stats);
                    if self.engine.is_established() {
                        self.drain_requests(stats);
                    }
                }
                Err(e) => {
                    self.fail(&e, stats);
                }
            }
        }
    }

    /// Counts the handshake once, the first sweep that sees it complete.
    fn note_established(&mut self, stats: &ServerStats) {
        if self.counted || !self.engine.is_established() {
            return;
        }
        self.counted = true;
        stats.connections.fetch_add(1, Ordering::Relaxed);
        if self.engine.machine().resumed() {
            stats.resumed_handshakes.fetch_add(1, Ordering::Relaxed);
        } else {
            stats.full_handshakes.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Opens every complete buffered application record and seals a
    /// response for each — the HTTP transaction loop, event-loop style.
    fn drain_requests(&mut self, stats: &ServerStats) {
        while !self.draining {
            match self.engine.open_next() {
                Ok(Some(range)) => {
                    let response = match HttpRequest::parse(&self.engine.buffered()[range]) {
                        Ok(request) => respond(&request),
                        Err(e) => {
                            self.fail(&e, stats);
                            return;
                        }
                    };
                    if let Err(e) = self.engine.seal(&response.to_bytes()) {
                        self.fail(&e, stats);
                        return;
                    }
                    stats.transactions.fetch_add(1, Ordering::Relaxed);
                }
                Ok(None) => return,
                Err(e) => {
                    self.fail(&e, stats);
                    return;
                }
            }
        }
    }

    /// Starts an orderly close after `error`: count it, queue the proper
    /// alert (close_notify reply, fatal alert, or silence for transport
    /// failures), and switch to draining.
    fn fail(&mut self, error: &SslError, stats: &ServerStats) {
        match error {
            SslError::PeerAlert(alert) if alert.is_close_notify() => {
                if self.engine.queue_close_notify().is_ok() {
                    stats.alerts_sent.fetch_add(1, Ordering::Relaxed);
                }
            }
            SslError::Io(_) => {}
            _ => {
                stats.errors.fetch_add(1, Ordering::Relaxed);
                if let Some(alert) = alert_for_close(error, self.engine.is_established()) {
                    if self.engine.queue_alert(alert).is_ok() {
                        stats.alerts_sent.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
        self.draining = true;
    }
}
