//! Event-driven serving mode: many connections multiplexed per thread.
//!
//! The worker-pool server ([`crate::TcpSslServer`]) dedicates one blocking
//! thread to each in-flight connection, so its concurrency ceiling is the
//! worker count. [`EventLoopServer`] instead runs a small number of *shard*
//! threads, each sweeping a set of non-blocking sockets: every connection
//! holds a sans-io [`ServerEngine`] plus its socket, and a shard makes
//! whatever progress each socket's readiness allows — partial reads feed
//! the engine byte-by-byte, partial writes drain its outbound buffer, and
//! the engine's own buffering reassembles records and handshake messages
//! split across arbitrary TCP boundaries. One shard comfortably carries
//! an order of magnitude more concurrent handshakes than a pool worker,
//! which is the C10k argument the paper's serving analysis leads to.
//!
//! There is no async runtime and no `poll(2)` binding here (the workspace
//! forbids unsafe code and external deps): readiness is discovered by
//! attempting the syscall and treating `WouldBlock` as "not ready", with a
//! short sleep when a full sweep makes no progress. That costs a bounded
//! idle latency (~0.5 ms) but keeps the loop dependency-free while
//! preserving the architecture under study.
//!
//! Stalled connections are evicted by per-connection deadlines (the same
//! [`ServerOptions::io_timeout`] knob the pool uses for socket timeouts):
//! a connection that neither delivers nor accepts bytes before its
//! deadline is counted in [`ServerStats::timeouts`] and closed with an
//! alert — fatal `handshake_failure` mid-handshake (a slowloris suspect),
//! orderly `close_notify` once established.

use crate::cache::ShardedSessionCache;
use crate::cryptopool::{CryptoPool, PoolReply, SubmitError};
use crate::metrics::ServerMetrics;
use crate::server::{alert_for_close, build_config, serve_request, ServerOptions, ServerStats};
use sslperf_profile::measure;
use sslperf_rng::SslRng;
use sslperf_rsa::RsaPrivateKey;
use sslperf_ssl::alert::{Alert, AlertDescription};
use sslperf_ssl::{CryptoJob, Engine, ServerConfig, ServerMachine, SslError};
use sslperf_websim::http::HttpRequest;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long an idle shard sleeps before re-sweeping its sockets.
const IDLE_SLEEP: Duration = Duration::from_micros(500);

/// Per-sweep read buffer; one per shard thread, reused by every
/// connection it owns.
const SCRATCH_LEN: usize = 16 * 1024;

/// Where a shard gets new sockets from.
///
/// A standalone [`EventLoopServer`] owns its listener and every shard
/// accepts straight off it (`Bound`). Under [`crate::ServerFleet`] the
/// fleet owns the one bound socket and a fan thread distributes accepted
/// streams to instances over channels (`Fed`) — the std-only stand-in for
/// `SO_REUSEPORT`, which needs `setsockopt` and therefore unsafe code.
#[derive(Debug, Clone)]
pub(crate) enum Intake {
    /// Accept directly from a shared non-blocking listener.
    Bound(Arc<TcpListener>),
    /// Receive sockets pre-accepted by a fan thread.
    Fed(Arc<Mutex<Receiver<TcpStream>>>),
}

impl Intake {
    /// Takes the next pending socket without blocking, or `None` when the
    /// backlog is empty (or the source is gone).
    fn next(&self) -> Option<TcpStream> {
        match self {
            Intake::Bound(listener) => listener.accept().ok().map(|(stream, _)| stream),
            Intake::Fed(feed) => feed.lock().ok()?.try_recv().ok(),
        }
    }
}

/// A running SSL web server in event-loop mode.
///
/// Started with [`EventLoopServer::start`]; serves until
/// [`EventLoopServer::shutdown`] (or drop). Shares [`ServerOptions`],
/// [`ServerStats`], and the sharded session cache with the worker-pool
/// mode so experiments can compare the two architectures directly.
#[derive(Debug)]
pub struct EventLoopServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    shards: Vec<JoinHandle<()>>,
    stats: Arc<ServerStats>,
    cache: Arc<ShardedSessionCache>,
    config: Arc<ServerConfig>,
    /// The RSA offload pool, present when `crypto_workers > 0`.
    pool: Option<Arc<CryptoPool>>,
    metrics: Option<Arc<ServerMetrics>>,
}

impl EventLoopServer {
    /// Binds a non-blocking listener, installs a sharded session cache
    /// into the server configuration, and spawns `options.shards` event
    /// loop threads, each accepting from the shared listener.
    ///
    /// # Errors
    ///
    /// Returns [`SslError::Io`] when the bind fails and certificate errors
    /// from [`ServerConfig::with_cache`].
    ///
    /// # Panics
    ///
    /// Panics when `options.shards` is zero.
    pub fn start(
        key: RsaPrivateKey,
        name: &str,
        options: &ServerOptions,
    ) -> Result<Self, SslError> {
        let listener = TcpListener::bind(&options.addr).map_err(|e| SslError::Io(e.to_string()))?;
        listener.set_nonblocking(true).map_err(|e| SslError::Io(e.to_string()))?;
        let addr = listener.local_addr().map_err(|e| SslError::Io(e.to_string()))?;
        Self::start_with_intake(key, name, options, Intake::Bound(Arc::new(listener)), addr, "")
    }

    /// The shared start path: `start` hands it a bound listener, the fleet
    /// hands it a channel fed by the accept-fan thread. `seed_tag`
    /// distinguishes the per-connection RNG streams of servers that
    /// coexist behind one address — without it, two fleet instances would
    /// draw identical "random" session ids for their nth connections,
    /// and a fresh full-handshake id could collide with the id another
    /// instance handed the same client. Empty keeps the standalone
    /// seeding unchanged.
    pub(crate) fn start_with_intake(
        key: RsaPrivateKey,
        name: &str,
        options: &ServerOptions,
        intake: Intake,
        addr: SocketAddr,
        seed_tag: &str,
    ) -> Result<Self, SslError> {
        assert!(options.shards > 0, "at least one shard");
        let cache = Arc::new(ShardedSessionCache::with_ttl(
            options.cache_shards,
            options.cache_capacity_per_shard,
            options.session_ttl,
        ));
        let config = Arc::new(build_config(key, name, &cache, options.ticket_keys.as_ref())?);
        let seed_prefix: Arc<str> = if seed_tag.is_empty() {
            Arc::from("sslperf-eventloop")
        } else {
            Arc::from(format!("sslperf-eventloop-{seed_tag}"))
        };

        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(ServerStats::default());
        let io_timeout = options.io_timeout;
        let metrics = options.metrics.then(|| Arc::new(ServerMetrics::new()));
        let pool = if let Some(profiles) = options.engine_profiles.clone() {
            Some(Arc::new(CryptoPool::start_heterogeneous(
                profiles,
                options.batch_max,
                options.batch_deadline,
                Arc::clone(&config),
                Arc::clone(&stats),
                metrics.clone(),
            )))
        } else {
            (options.crypto_workers > 0).then(|| {
                Arc::new(CryptoPool::start_batched(
                    options.crypto_workers,
                    options.batch_max,
                    options.batch_deadline,
                    Arc::clone(&config),
                    Arc::clone(&stats),
                    metrics.clone(),
                ))
            })
        };
        let shards = (0..options.shards)
            .map(|shard| {
                let intake = intake.clone();
                let config = Arc::clone(&config);
                let stats = Arc::clone(&stats);
                let stop = Arc::clone(&stop);
                let pool = pool.clone();
                let metrics = metrics.clone();
                let seed_prefix = Arc::clone(&seed_prefix);
                std::thread::spawn(move || {
                    shard_loop(
                        shard,
                        &seed_prefix,
                        &intake,
                        &config,
                        &stats,
                        &stop,
                        io_timeout,
                        pool.as_deref(),
                        metrics.as_deref(),
                    );
                })
            })
            .collect();

        Ok(EventLoopServer { addr, stop, shards, stats, cache, config, pool, metrics })
    }

    /// The bound address clients should connect to.
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared serving counters.
    #[must_use]
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// A shared handle to the counters, so the fleet can keep aggregating
    /// an instance's numbers after the instance itself is killed.
    pub(crate) fn stats_arc(&self) -> Arc<ServerStats> {
        Arc::clone(&self.stats)
    }

    /// The sharded session cache (hit/miss counters live here).
    #[must_use]
    pub fn session_cache(&self) -> &Arc<ShardedSessionCache> {
        &self.cache
    }

    /// The underlying SSL server configuration.
    #[must_use]
    pub fn config(&self) -> &Arc<ServerConfig> {
        &self.config
    }

    /// The live anatomy registry, present when
    /// [`ServerOptions::metrics`] was set.
    #[must_use]
    pub fn metrics(&self) -> Option<&ServerMetrics> {
        self.metrics.as_deref()
    }

    /// Kills one crypto engine by index (see
    /// [`CryptoPool::kill_engine`]): its queue becomes stealable by the
    /// surviving engines and the server keeps serving. Returns false when
    /// the server has no pool, the index is out of range, or the engine
    /// is already dead.
    pub fn kill_crypto_engine(&self, index: usize) -> bool {
        self.pool.as_deref().is_some_and(|pool| pool.kill_engine(index))
    }

    /// Stops accepting, closes every in-flight connection, and joins the
    /// shard threads.
    pub fn shutdown(mut self) {
        self.stop_threads();
    }

    fn stop_threads(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // The listener is non-blocking, so shards notice the flag on their
        // next sweep without any unblocking trick.
        for shard in self.shards.drain(..) {
            let _ = shard.join();
        }
        // With every shard joined this is the last pool handle; dropping
        // it drains the queue and joins the crypto workers.
        self.pool = None;
    }
}

impl Drop for EventLoopServer {
    fn drop(&mut self) {
        self.stop_threads();
    }
}

/// A shard's handle to the crypto offload machinery: the shared pool plus
/// this shard's reply channel for executed jobs.
struct Offload<'p> {
    pool: &'p CryptoPool,
    reply: Sender<PoolReply>,
}

/// One shard: accepts new sockets and sweeps every connection it owns,
/// sleeping only when a full pass made no progress anywhere. With a
/// crypto pool attached, RSA decryptions leave the sweep as jobs and
/// return through the shard's reply channel — one stalled handshake no
/// longer blocks the whole shard.
// One parameter per shared serving facility; bundling them would only
// re-create this list as a struct.
#[allow(clippy::too_many_arguments)]
fn shard_loop(
    shard: usize,
    seed_prefix: &str,
    intake: &Intake,
    config: &ServerConfig,
    stats: &ServerStats,
    stop: &AtomicBool,
    io_timeout: Option<Duration>,
    pool: Option<&CryptoPool>,
    metrics: Option<&ServerMetrics>,
) {
    let mut conns: Vec<Conn<'_>> = Vec::new();
    let mut scratch = vec![0u8; SCRATCH_LEN];
    let mut seq: u64 = 0;
    let (reply_tx, reply_rx) = mpsc::channel::<PoolReply>();
    let offload = pool.map(|pool| Offload { pool, reply: reply_tx });
    while !stop.load(Ordering::SeqCst) {
        let mut progress = false;
        // Accept burst: drain the backlog, then get back to serving.
        while let Some(stream) = intake.next() {
            progress = true;
            seq += 1;
            let seed = format!("{seed_prefix}-{shard}-{seq}");
            if let Some(conn) =
                Conn::accept(stream, config, seq, &seed, io_timeout, offload.is_some(), metrics)
            {
                conns.push(conn);
            }
        }
        // Route executed crypto jobs back to their connections first, so
        // the pump below can flush the resumed handshake's flight.
        while let Ok(reply) = reply_rx.try_recv() {
            progress = true;
            route_reply(&mut conns, reply, stats);
        }
        let now = Instant::now();
        conns.retain_mut(|conn| {
            progress |= conn.pump(stats, &mut scratch, now, offload.as_ref());
            if conn.done {
                // A connection dying with a parked job releases its
                // admission reservation so it stops blocking fresh traffic.
                if let Some((_, ticket)) = conn.parked.take() {
                    if let Some(offload) = offload.as_ref() {
                        offload.pool.cancel_ticket(ticket);
                    }
                }
                return false;
            }
            true
        });
        if !progress {
            // With jobs in flight, park on the reply channel instead of a
            // flat sleep: the shard wakes the instant a decrypt lands
            // rather than up to IDLE_SLEEP later — the difference between
            // offloaded and inline tail latency when crypto is the
            // bottleneck.
            if conns.iter().any(|c| c.inflight) {
                if let Ok(reply) = reply_rx.recv_timeout(IDLE_SLEEP) {
                    route_reply(&mut conns, reply, stats);
                }
            } else {
                std::thread::sleep(IDLE_SLEEP);
            }
        }
    }
}

/// Hands an executed crypto result to the connection that submitted it.
/// A missing id means the connection was evicted mid-decrypt; the result
/// is dropped.
fn route_reply(conns: &mut [Conn<'_>], reply: PoolReply, stats: &ServerStats) {
    if let Some(conn) = conns.iter_mut().find(|c| c.id == reply.conn) {
        conn.finish_crypto(reply, stats);
    }
}

/// One multiplexed connection: a non-blocking socket plus the sans-io
/// engine holding its handshake/record state between readiness events.
struct Conn<'a> {
    stream: TcpStream,
    engine: Engine<ServerMachine<'a>>,
    /// Shard-local id: routes crypto-pool replies back to this connection.
    id: u64,
    /// Evict when `Instant::now()` passes this without traffic.
    deadline: Option<Instant>,
    io_timeout: Option<Duration>,
    /// Whether the completed handshake has been counted in the stats.
    counted: bool,
    /// A crypto job is queued or executing; its result has not come back.
    inflight: bool,
    /// A job the pool bounced (queue full) plus the admission ticket that
    /// holds its place in line; resubmitted next sweep.
    parked: Option<(CryptoJob, u64)>,
    /// Closing: no more reads, just flush the outbound buffer (which ends
    /// with an alert) and finish.
    draining: bool,
    /// Finished; the shard drops the connection on its next sweep.
    done: bool,
    /// The live anatomy registry, when the server enabled it.
    metrics: Option<&'a ServerMetrics>,
}

impl<'a> Conn<'a> {
    /// Wraps a freshly accepted socket. Returns `None` when socket setup
    /// fails (the peer is already gone).
    fn accept(
        stream: TcpStream,
        config: &'a ServerConfig,
        seq: u64,
        seed: &str,
        io_timeout: Option<Duration>,
        offload: bool,
        metrics: Option<&'a ServerMetrics>,
    ) -> Option<Self> {
        stream.set_nonblocking(true).ok()?;
        let _ = stream.set_nodelay(true);
        let rng = SslRng::from_seed(seed.as_bytes());
        let mut engine = Engine::new(ServerMachine::new(config, rng)).ok()?;
        engine.set_crypto_offload(offload);
        Some(Conn {
            stream,
            engine,
            id: seq,
            deadline: io_timeout.map(|t| Instant::now() + t),
            io_timeout,
            counted: false,
            inflight: false,
            parked: None,
            draining: false,
            done: false,
            metrics,
        })
    }

    /// Pushes the deadline out after any successful read or write.
    fn touch(&mut self, now: Instant) {
        self.deadline = self.io_timeout.map(|t| now + t);
    }

    /// True while this connection's RSA decryption is queued, executing,
    /// parked for resubmission, or suspended in the engine — time that
    /// must not count against the client's `io_timeout`.
    fn crypto_pending(&self) -> bool {
        self.inflight || self.parked.is_some() || self.engine.crypto_pending()
    }

    /// Makes whatever progress the socket allows: deadline check, parked
    /// crypto-job retry, read + feed, job submission, request serving,
    /// write. Returns true when anything moved.
    fn pump(
        &mut self,
        stats: &ServerStats,
        scratch: &mut [u8],
        now: Instant,
        offload: Option<&Offload<'_>>,
    ) -> bool {
        let mut progress = false;

        // Resubmit a job the pool bounced on an earlier sweep.
        progress |= self.submit_crypto(offload, stats);

        // Deadline eviction (the event-loop half of the slowloris guard).
        // A connection whose RSA job sits in the crypto queue is stalled on
        // *us*, not the client: evicting it would count a spurious timeout
        // and deliver the executed result to a dead slot. Defer the
        // deadline instead, and count the deferral so saturation stays
        // visible in the stats.
        if !self.draining && !self.done {
            if let Some(deadline) = self.deadline {
                if now >= deadline {
                    if self.crypto_pending() {
                        stats.crypto_deadline_deferrals.fetch_add(1, Ordering::Relaxed);
                        self.touch(now);
                    } else {
                        stats.timeouts.fetch_add(1, Ordering::Relaxed);
                        let alert = if self.engine.is_established() {
                            Alert::close_notify()
                        } else {
                            Alert::fatal(AlertDescription::HandshakeFailure)
                        };
                        if self.engine.queue_alert(alert).is_ok() {
                            stats.alerts_sent.fetch_add(1, Ordering::Relaxed);
                        }
                        self.draining = true;
                        progress = true;
                    }
                }
            }
        }

        // Read phase: pull whatever the socket has and feed the engine.
        while !self.draining && !self.done {
            match self.stream.read(scratch) {
                Ok(0) => {
                    self.done = true;
                }
                Ok(n) => {
                    progress = true;
                    self.touch(now);
                    self.feed_bytes(&scratch[..n], stats);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => self.done = true,
            }
        }

        // The bytes just fed may have suspended the engine at the RSA
        // boundary: hand the job to the pool and keep sweeping.
        progress |= self.submit_crypto(offload, stats);

        // Serve any complete requests that arrived exactly on a previous
        // sweep's bytes (feed_bytes drains eagerly, this is the catch-all).
        if !self.draining && !self.done && self.engine.is_established() {
            self.drain_requests(stats);
        }

        // Write phase: flush the engine's outbound buffer as far as the
        // socket accepts, keeping the rest queued for the next sweep.
        while !self.done && self.engine.wants_write() {
            match self.stream.write(self.engine.output()) {
                Ok(0) => self.done = true,
                Ok(n) => {
                    progress = true;
                    self.engine.consume_output(n);
                    self.touch(now);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => self.done = true,
            }
        }

        // A draining connection is finished once its goodbye is flushed.
        if self.draining && !self.engine.wants_write() {
            self.done = true;
        }
        progress
    }

    /// Feeds freshly read bytes through the engine, serving requests as
    /// they complete so the inbound buffer keeps making room.
    fn feed_bytes(&mut self, bytes: &[u8], stats: &ServerStats) {
        let mut offset = 0;
        while offset < bytes.len() && !self.draining {
            match self.engine.feed(&bytes[offset..]) {
                Ok(0) => {
                    // Inbound buffer full of unserved records: drain, then
                    // retry. No movement means the connection is stuck.
                    let before = self.engine.unconsumed();
                    self.drain_requests(stats);
                    if self.draining || self.engine.unconsumed() == before {
                        break;
                    }
                }
                Ok(consumed) => {
                    offset += consumed;
                    self.note_established(stats);
                    if self.engine.is_established() {
                        self.drain_requests(stats);
                    }
                }
                Err(e) => {
                    self.fail(&e, stats);
                }
            }
        }
    }

    /// Moves a suspended RSA decryption to the crypto pool: resubmits a
    /// parked job first, otherwise takes a freshly suspended one from the
    /// engine. A bounced job parks on the connection for the next sweep;
    /// a shut-down pool fails the connection outright — parking would
    /// wait on a queue that will never drain. Returns true when a job
    /// entered the queue (or the connection transitioned to draining).
    fn submit_crypto(&mut self, offload: Option<&Offload<'_>>, stats: &ServerStats) -> bool {
        let Some(offload) = offload else { return false };
        if self.draining || self.done || self.inflight {
            return false;
        }
        let (job, ticket) = match self.parked.take() {
            Some((job, ticket)) => (job, Some(ticket)),
            None => match self.engine.take_crypto_job() {
                Some(job) => (job, None),
                None => return false,
            },
        };
        let outcome = match ticket {
            // A parked job retries with its ticket so it keeps its place
            // in the pool's FIFO admission order.
            Some(ticket) => offload.pool.resubmit(self.id, job, ticket, &offload.reply),
            None => offload.pool.try_submit(self.id, job, &offload.reply),
        };
        match outcome {
            Ok(()) => {
                self.inflight = true;
                true
            }
            Err(SubmitError::QueueFull { job, ticket }) => {
                self.parked = Some((job, ticket));
                false
            }
            Err(SubmitError::ShutDown(_)) => {
                // The handshake can never resume: its decrypt has nowhere
                // to run. Fail fast with a fatal alert (SSLv3 has no
                // internal_error description) instead of retrying forever.
                stats.errors.fetch_add(1, Ordering::Relaxed);
                if self.engine.queue_alert(Alert::fatal(AlertDescription::HandshakeFailure)).is_ok()
                {
                    stats.alerts_sent.fetch_add(1, Ordering::Relaxed);
                }
                self.draining = true;
                true
            }
        }
    }

    /// Resumes the handshake with an executed crypto result: the engine
    /// picks up exactly where it suspended, and the response flight the
    /// resume produced is flushed by the next write phase.
    fn finish_crypto(&mut self, reply: PoolReply, stats: &ServerStats) {
        self.inflight = false;
        // The queue wait is over; the client's timeout window restarts
        // now rather than from its last pre-suspension byte.
        self.touch(Instant::now());
        if self.draining || self.done {
            return;
        }
        let done = reply.done;
        if let Some(m) = self.metrics {
            // The depth the job saw when it was accepted — sampled inside
            // the pool's submission lock, not read back after the
            // collector has already drained the burst.
            m.note_pool_job(
                reply.depth_at_submit,
                done.queue_wait(),
                done.batch_wait(),
                done.exec(),
            );
        }
        match self.engine.complete_crypto(done) {
            Ok(()) => {
                self.note_established(stats);
                if self.engine.is_established() {
                    self.drain_requests(stats);
                }
            }
            Err(e) => self.fail(&e, stats),
        }
    }

    /// Counts the handshake once, the first sweep that sees it complete.
    fn note_established(&mut self, stats: &ServerStats) {
        if self.counted || !self.engine.is_established() {
            return;
        }
        self.counted = true;
        stats.connections.fetch_add(1, Ordering::Relaxed);
        let machine = self.engine.machine();
        if machine.resumed() {
            stats.resumed_handshakes.fetch_add(1, Ordering::Relaxed);
        } else {
            stats.full_handshakes.fetch_add(1, Ordering::Relaxed);
        }
        stats.note_ticket_flags(
            machine.ticket_issued(),
            machine.ticket_accepted(),
            machine.ticket_rejected(),
            machine.ticket_expired(),
        );
        if let Some(m) = self.metrics {
            m.note_handshake(&self.engine.machine().ledger());
        }
    }

    /// Opens every complete buffered application record and seals a
    /// response for each — the HTTP transaction loop, event-loop style.
    ///
    /// With metrics on, each open and seal is timed end-to-end (pure
    /// compute here — the sans-io engine never touches the socket), and
    /// the crypto-kernel share is read as the delta of the record layer's
    /// monotone crypto counter around the call.
    fn drain_requests(&mut self, stats: &ServerStats) {
        while !self.draining {
            let crypto_before = self.engine.machine().record_crypto_cycles();
            let (opened, open_cycles) = measure(|| self.engine.open_next());
            match opened {
                Ok(Some(range)) => {
                    if let Some(m) = self.metrics {
                        let crypto = self.engine.machine().record_crypto_cycles() - crypto_before;
                        m.note_record_open(range.len(), open_cycles, crypto);
                    }
                    let response = match HttpRequest::parse(&self.engine.buffered()[range]) {
                        Ok(request) => serve_request(&request, self.metrics),
                        Err(e) => {
                            self.fail(&e, stats);
                            return;
                        }
                    };
                    let body = response.to_bytes();
                    let crypto_before = self.engine.machine().record_crypto_cycles();
                    let (sealed, seal_cycles) = measure(|| self.engine.seal(&body));
                    if let Err(e) = sealed {
                        self.fail(&e, stats);
                        return;
                    }
                    if let Some(m) = self.metrics {
                        let crypto = self.engine.machine().record_crypto_cycles() - crypto_before;
                        m.note_record_seal(body.len(), seal_cycles, crypto);
                    }
                    stats.transactions.fetch_add(1, Ordering::Relaxed);
                }
                Ok(None) => return,
                Err(e) => {
                    self.fail(&e, stats);
                    return;
                }
            }
        }
    }

    /// Starts an orderly close after `error`: count it, queue the proper
    /// alert (close_notify reply, fatal alert, or silence for transport
    /// failures), and switch to draining.
    fn fail(&mut self, error: &SslError, stats: &ServerStats) {
        match error {
            SslError::PeerAlert(alert) if alert.is_close_notify() => {
                if self.engine.queue_close_notify().is_ok() {
                    stats.alerts_sent.fetch_add(1, Ordering::Relaxed);
                }
            }
            SslError::Io(_) => {}
            _ => {
                stats.errors.fetch_add(1, Ordering::Relaxed);
                if let Some(alert) = alert_for_close(error, self.engine.is_established()) {
                    if self.engine.queue_alert(alert).is_ok() {
                        stats.alerts_sent.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
        self.draining = true;
    }
}
