//! RSA decryption blinding (the paper's Table 7, step 3).
//!
//! The paper cites Brumley & Boneh's remote timing attack as the reason
//! OpenSSL blinds: before exponentiation the ciphertext is multiplied by
//! `r^e mod N` for a random `r`, and afterwards the result by `r⁻¹ mod N`,
//! so the private exponentiation runs on a value the attacker cannot
//! correlate with the wire ciphertext.

use crate::{RsaError, RsaPublicKey};
use sslperf_bignum::{Bn, EntropySource};
use sslperf_profile::counters;

/// A reusable blinding context `(A = r^e mod N, Aᵢ = r⁻¹ mod N)`.
///
/// Like OpenSSL's `BN_BLINDING`, the factors are squared after each use so
/// consecutive decryptions use different masks without a fresh inversion.
#[derive(Debug, Clone)]
pub struct Blinding {
    n: Bn,
    /// `r^e mod N` — multiplied into the ciphertext.
    factor: Bn,
    /// `r⁻¹ mod N` — multiplied into the recovered plaintext.
    unblind: Bn,
}

impl Blinding {
    /// Draws a random `r` coprime to `N` and prepares the factor pair.
    ///
    /// # Errors
    ///
    /// Returns [`RsaError::KeyGeneration`] if no invertible `r` is found in
    /// a reasonable number of draws (practically impossible for real keys).
    pub fn new<R: EntropySource>(public: &RsaPublicKey, rng: &mut R) -> Result<Self, RsaError> {
        counters::count("blinding_setup", 1);
        for _ in 0..32 {
            let r = rng.next_bn_below(public.modulus());
            if r.is_zero() {
                continue;
            }
            let Ok(unblind) = r.mod_inverse(public.modulus()) else {
                continue;
            };
            let factor = public.raw_encrypt(&r)?;
            return Ok(Blinding { n: public.modulus().clone(), factor, unblind });
        }
        Err(RsaError::KeyGeneration)
    }

    /// Masks a ciphertext: returns `c · r^e mod N`.
    #[must_use]
    pub fn blind(&self, c: &Bn) -> Bn {
        counters::count("blinding_convert", 1);
        c.mod_mul(&self.factor, &self.n)
    }

    /// Unmasks a plaintext: returns `m · r⁻¹ mod N`, then squares the stored
    /// factors so the next call uses a fresh mask.
    #[must_use = "the unblinded plaintext is the result of the decryption"]
    pub fn unblind(&mut self, m: &Bn) -> Bn {
        let result = self.unblind_shared(m);
        self.rotate();
        result
    }

    /// Unmasks a plaintext **without** rotating the factors, so several
    /// values blinded under the same mask — a batch sharing one blinding
    /// acquisition — can all be unmasked; call [`Blinding::rotate`] once
    /// when the batch is done.
    #[must_use = "the unblinded plaintext is the result of the decryption"]
    pub fn unblind_shared(&self, m: &Bn) -> Bn {
        counters::count("blinding_convert", 1);
        m.mod_mul(&self.unblind, &self.n)
    }

    /// Squares the stored factors so the next use gets a fresh mask —
    /// OpenSSL's `BN_BLINDING_update`, split out of [`Blinding::unblind`]
    /// for batch use (one rotation per batch, not per job).
    pub fn rotate(&mut self) {
        self.factor = self.factor.mod_mul(&self.factor.clone(), &self.n);
        self.unblind = self.unblind.mod_mul(&self.unblind.clone(), &self.n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_keys::rsa512;
    use sslperf_rng::SslRng;

    #[test]
    fn blinding_preserves_decryption() {
        let key = rsa512();
        let mut rng = SslRng::from_seed(b"blinding");
        let mut blinding = key.new_blinding(&mut rng).unwrap();
        for v in [5u64, 1234, 0xffff_ffff] {
            let m = Bn::from_u64(v);
            let c = key.public_key().raw_encrypt(&m).unwrap();
            let c_blinded = blinding.blind(&c);
            let m_blinded = key.raw_decrypt(&c_blinded).unwrap();
            assert_eq!(blinding.unblind(&m_blinded), m, "value {v}");
        }
    }

    #[test]
    fn masks_differ_between_uses() {
        let key = rsa512();
        let mut rng = SslRng::from_seed(b"masks");
        let mut blinding = key.new_blinding(&mut rng).unwrap();
        let c = Bn::from_u64(777);
        let first = blinding.blind(&c);
        let _ = blinding.unblind(&Bn::from_u64(1)); // rotates the factors
        let second = blinding.blind(&c);
        assert_ne!(first, second, "factor must rotate after use");
    }

    #[test]
    fn blinded_value_actually_masked() {
        let key = rsa512();
        let mut rng = SslRng::from_seed(b"masked");
        let blinding = key.new_blinding(&mut rng).unwrap();
        let c = Bn::from_u64(42);
        assert_ne!(blinding.blind(&c), c);
    }
}
