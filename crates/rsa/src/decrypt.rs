//! The paper's six-step instrumented RSA decryption pipeline (Table 7).

use crate::{pkcs1, RsaError, RsaPrivateKey};
use sslperf_bignum::{Bn, EntropySource};
use sslperf_profile::{measure, PhaseSet};

/// Step names exactly as the experiment tables print them.
pub const STEP_NAMES: [&str; 6] =
    ["Init", "data_to_bn", "blinding", "computation", "bn_to_data", "block_parsing"];

impl RsaPrivateKey {
    /// Decrypts a PKCS #1 ciphertext while timing each of the paper's six
    /// steps, recording them into `phases` under [`STEP_NAMES`].
    ///
    /// Step 3 performs the blind **and** (after the exponentiation) the
    /// unblind conversion, both charged to "blinding" as in the paper.
    ///
    /// # Errors
    ///
    /// Returns [`RsaError::Padding`] on malformed padding,
    /// [`RsaError::CiphertextOutOfRange`] for an oversized ciphertext, or a
    /// blinding-setup failure.
    pub fn decrypt_instrumented<R: EntropySource>(
        &self,
        cipher: &[u8],
        rng: &mut R,
        phases: &mut PhaseSet,
    ) -> Result<Vec<u8>, RsaError> {
        // Step 1: Init — internal structures and buffers. The blinding
        // state is cached on the key (OpenSSL's lazy `RSA->blinding`), so
        // after the first decryption this step is just a lock and an
        // allocation — which is why the paper's Init row is tiny.
        let (init_result, cycles) = measure(|| {
            let mut guard = self.blinding.lock().unwrap_or_else(|e| e.into_inner());
            let blinding = match guard.take() {
                Some(b) => b,
                None => self.new_blinding(rng)?,
            };
            let buf = Vec::with_capacity(self.modulus_bytes());
            Ok::<_, RsaError>((blinding, buf))
        });
        phases.add(STEP_NAMES[0], cycles);
        let (mut blinding, mut c_init) = init_result?;
        c_init.extend_from_slice(cipher);

        // Step 2: octet string → multi-precision integer.
        let (c, cycles) = measure(|| Bn::from_bytes_be(&c_init));
        phases.add(STEP_NAMES[1], cycles);
        if &c >= self.modulus() {
            return Err(RsaError::CiphertextOutOfRange);
        }

        // Step 3a: blind the ciphertext.
        let (c_blinded, cycles) = measure(|| blinding.blind(&c));
        phases.add(STEP_NAMES[2], cycles);

        // Step 4: the CRT exponentiation — the 97–99% step.
        let (m_blinded, cycles) = measure(|| self.raw_decrypt(&c_blinded));
        phases.add(STEP_NAMES[3], cycles);
        let m_blinded = m_blinded?;

        // Step 3b: unblind (charged to "blinding", as in the paper).
        let (m, cycles) = measure(|| blinding.unblind(&m_blinded));
        phases.add(STEP_NAMES[2], cycles);

        // Return the rotated blinding state to the key's cache.
        *self.blinding.lock().unwrap_or_else(|e| e.into_inner()) = Some(blinding);

        // Step 5: integer → octet string.
        let (block, cycles) = measure(|| m.to_bytes_be_padded(self.modulus_bytes()));
        phases.add(STEP_NAMES[4], cycles);

        // Step 6: PKCS #1 block parsing.
        let (msg, cycles) = measure(|| pkcs1::parse_type2(&block));
        phases.add(STEP_NAMES[5], cycles);
        msg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_keys::rsa512;
    use sslperf_rng::SslRng;

    #[test]
    fn instrumented_matches_plain_decrypt() {
        let key = rsa512();
        let mut rng = SslRng::from_seed(b"instr");
        let msg = b"pre-master";
        let cipher = key.public_key().encrypt_pkcs1(msg, &mut rng).unwrap();
        let mut phases = PhaseSet::new();
        let got = key.decrypt_instrumented(&cipher, &mut rng, &mut phases).unwrap();
        assert_eq!(got, msg);
        assert_eq!(got, key.decrypt_pkcs1(&cipher).unwrap());
    }

    #[test]
    fn all_six_steps_recorded() {
        let key = rsa512();
        let mut rng = SslRng::from_seed(b"steps");
        let cipher = key.public_key().encrypt_pkcs1(b"x", &mut rng).unwrap();
        let mut phases = PhaseSet::new();
        key.decrypt_instrumented(&cipher, &mut rng, &mut phases).unwrap();
        for name in STEP_NAMES {
            assert!(phases.get(name).is_some(), "missing step {name}");
        }
        // Blinding is recorded twice (blind + unblind).
        assert_eq!(phases.get("blinding").unwrap().hits(), 2);
    }

    #[test]
    fn computation_dominates() {
        let key = rsa512();
        let mut rng = SslRng::from_seed(b"dominate");
        let cipher = key.public_key().encrypt_pkcs1(b"y", &mut rng).unwrap();
        let mut phases = PhaseSet::new();
        // Accumulate several runs to stabilize against timer noise.
        for _ in 0..10 {
            key.decrypt_instrumented(&cipher, &mut rng, &mut phases).unwrap();
        }
        let comp = phases.percent("computation");
        assert!(comp > 50.0, "computation should dominate, got {comp:.1}%");
    }

    #[test]
    fn bad_padding_still_times_steps() {
        let key = rsa512();
        let mut rng = SslRng::from_seed(b"badpad");
        // Encrypt a raw value that will not carry PKCS#1 structure.
        let c = key.public_key().raw_encrypt(&Bn::from_u64(12345)).unwrap();
        let cipher = c.to_bytes_be_padded(key.modulus_bytes());
        let mut phases = PhaseSet::new();
        assert_eq!(
            key.decrypt_instrumented(&cipher, &mut rng, &mut phases),
            Err(RsaError::Padding)
        );
        assert!(phases.get("computation").is_some());
        assert!(phases.get("block_parsing").is_some());
    }
}
