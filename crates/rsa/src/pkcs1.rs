//! PKCS #1 v1.5 block formatting (RFC 2313), as SSL v3 uses it.
//!
//! Encryption blocks are type 2 (`00 02 ‖ nonzero-random ‖ 00 ‖ M`);
//! signature blocks are type 1 (`00 01 ‖ FF… ‖ 00 ‖ D`). The paper's
//! *block parsing* step (Table 7, step 6) is [`parse_type2`].

use crate::{RsaError, RsaPrivateKey, RsaPublicKey};
use sslperf_bignum::{Bn, EntropySource};
use sslperf_hashes::{HashAlg, Hasher};
use sslperf_profile::counters;

/// Minimum padding-string length required by the standard.
const MIN_PAD: usize = 8;

/// Builds a type-2 (encryption) block of exactly `k` bytes.
///
/// # Errors
///
/// Returns [`RsaError::MessageTooLong`] when `msg.len() > k - 11`.
pub fn pad_type2<R: EntropySource>(msg: &[u8], k: usize, rng: &mut R) -> Result<Vec<u8>, RsaError> {
    if k < MIN_PAD + 3 {
        return Err(RsaError::KeyTooSmall);
    }
    if msg.len() + MIN_PAD + 3 > k {
        return Err(RsaError::MessageTooLong);
    }
    let mut block = Vec::with_capacity(k);
    block.push(0x00);
    block.push(0x02);
    let pad_len = k - 3 - msg.len();
    while block.len() < 2 + pad_len {
        // Draw random bytes, keeping only the nonzero ones.
        let mut byte = [0u8; 1];
        rng.fill(&mut byte);
        if byte[0] != 0 {
            block.push(byte[0]);
        }
    }
    block.push(0x00);
    block.extend_from_slice(msg);
    debug_assert_eq!(block.len(), k);
    Ok(block)
}

/// Parses a type-2 block, returning the embedded message — the paper's
/// *block parsing* step.
///
/// # Errors
///
/// Returns [`RsaError::Padding`] on a bad leading byte pair, a missing zero
/// separator, or a padding string shorter than 8 bytes.
pub fn parse_type2(block: &[u8]) -> Result<Vec<u8>, RsaError> {
    counters::count("pkcs1_parse", block.len() as u64);
    if block.len() < MIN_PAD + 3 || block[0] != 0x00 || block[1] != 0x02 {
        return Err(RsaError::Padding);
    }
    let sep = block[2..].iter().position(|&b| b == 0).ok_or(RsaError::Padding)?;
    if sep < MIN_PAD {
        return Err(RsaError::Padding);
    }
    Ok(block[2 + sep + 1..].to_vec())
}

/// Builds a type-1 (signature) block of exactly `k` bytes.
///
/// # Errors
///
/// Returns [`RsaError::MessageTooLong`] when `digest.len() > k - 11`.
pub fn pad_type1(digest: &[u8], k: usize) -> Result<Vec<u8>, RsaError> {
    if k < MIN_PAD + 3 {
        return Err(RsaError::KeyTooSmall);
    }
    if digest.len() + MIN_PAD + 3 > k {
        return Err(RsaError::MessageTooLong);
    }
    let mut block = Vec::with_capacity(k);
    block.push(0x00);
    block.push(0x01);
    block.resize(k - digest.len() - 1, 0xff);
    block.push(0x00);
    block.extend_from_slice(digest);
    Ok(block)
}

/// Parses a type-1 block, returning the embedded digest.
///
/// # Errors
///
/// Returns [`RsaError::Padding`] if the structure is malformed.
pub fn parse_type1(block: &[u8]) -> Result<Vec<u8>, RsaError> {
    if block.len() < MIN_PAD + 3 || block[0] != 0x00 || block[1] != 0x01 {
        return Err(RsaError::Padding);
    }
    let sep = block[2..].iter().position(|&b| b != 0xff).ok_or(RsaError::Padding)?;
    if sep < MIN_PAD || block[2 + sep] != 0x00 {
        return Err(RsaError::Padding);
    }
    Ok(block[2 + sep + 1..].to_vec())
}

impl RsaPublicKey {
    /// PKCS #1 v1.5 encryption: pad, convert and run the public operation.
    ///
    /// # Errors
    ///
    /// Returns [`RsaError::MessageTooLong`] if `msg` exceeds `k - 11` bytes.
    pub fn encrypt_pkcs1<R: EntropySource>(
        &self,
        msg: &[u8],
        rng: &mut R,
    ) -> Result<Vec<u8>, RsaError> {
        let k = self.modulus_bytes();
        let block = pad_type2(msg, k, rng)?;
        let c = self.raw_encrypt(&Bn::from_bytes_be(&block))?;
        Ok(c.to_bytes_be_padded(k))
    }

    /// Verifies a PKCS #1 v1.5 signature over `msg` hashed with `alg`
    /// (digest signed directly, SSL v3 style — no DigestInfo wrapper).
    ///
    /// # Errors
    ///
    /// Returns [`RsaError::BadSignature`] on any mismatch.
    pub fn verify_pkcs1(&self, alg: HashAlg, msg: &[u8], sig: &[u8]) -> Result<(), RsaError> {
        let s = Bn::from_bytes_be(sig);
        let block = self.raw_encrypt(&s).map_err(|_| RsaError::BadSignature)?;
        let padded = block.to_bytes_be_padded(self.modulus_bytes());
        let digest = parse_type1(&padded).map_err(|_| RsaError::BadSignature)?;
        if digest == Hasher::digest(alg, msg) {
            Ok(())
        } else {
            Err(RsaError::BadSignature)
        }
    }
}

impl RsaPrivateKey {
    /// PKCS #1 v1.5 decryption: raw private operation, then block parsing.
    ///
    /// For the paper's per-step timing, see
    /// [`RsaPrivateKey::decrypt_instrumented`].
    ///
    /// # Errors
    ///
    /// Returns [`RsaError::Padding`] if the recovered block is malformed.
    pub fn decrypt_pkcs1(&self, cipher: &[u8]) -> Result<Vec<u8>, RsaError> {
        let c = Bn::from_bytes_be(cipher);
        let m = self.raw_decrypt(&c)?;
        let block = m.to_bytes_be_padded(self.modulus_bytes());
        parse_type2(&block)
    }

    /// Signs `msg` (hashed with `alg`) under PKCS #1 v1.5 type-1 padding.
    ///
    /// # Errors
    ///
    /// Returns [`RsaError::MessageTooLong`] for absurdly small keys.
    pub fn sign_pkcs1(&self, alg: HashAlg, msg: &[u8]) -> Result<Vec<u8>, RsaError> {
        let digest = Hasher::digest(alg, msg);
        let block = pad_type1(&digest, self.modulus_bytes())?;
        let s = self.raw_decrypt(&Bn::from_bytes_be(&block))?;
        Ok(s.to_bytes_be_padded(self.modulus_bytes()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_keys::rsa512;
    use sslperf_rng::SslRng;

    #[test]
    fn pad_parse_round_trip() {
        let mut rng = SslRng::from_seed(b"pkcs1");
        for len in [0usize, 1, 20, 48, 53] {
            let msg: Vec<u8> = (0..len as u8).collect();
            let block = pad_type2(&msg, 64, &mut rng).unwrap();
            assert_eq!(block.len(), 64);
            assert_eq!(parse_type2(&block).unwrap(), msg, "len {len}");
        }
    }

    #[test]
    fn padding_bytes_are_nonzero() {
        let mut rng = SslRng::from_seed(b"nonzero");
        let block = pad_type2(b"m", 64, &mut rng).unwrap();
        for &b in &block[2..block.len() - 2] {
            if b == 0 {
                // only the separator may be zero, and it sits right before
                // the message
                assert_eq!(b, block[block.len() - 2]);
            }
        }
    }

    #[test]
    fn message_too_long_rejected() {
        let mut rng = SslRng::from_seed(b"long");
        assert_eq!(pad_type2(&[0u8; 54], 64, &mut rng), Err(RsaError::MessageTooLong));
        assert!(pad_type2(&[0u8; 53], 64, &mut rng).is_ok());
        assert_eq!(pad_type1(&[0u8; 54], 64), Err(RsaError::MessageTooLong));
    }

    #[test]
    fn malformed_blocks_rejected() {
        // wrong type byte
        let mut block = vec![0u8, 3];
        block.extend_from_slice(&[0xaa; 20]);
        block.push(0);
        block.push(7);
        assert_eq!(parse_type2(&block), Err(RsaError::Padding));
        // no separator
        let mut block = vec![0u8, 2];
        block.extend_from_slice(&[0xaa; 30]);
        assert_eq!(parse_type2(&block), Err(RsaError::Padding));
        // short padding
        let mut block = vec![0u8, 2];
        block.extend_from_slice(&[0xaa; 4]);
        block.push(0);
        block.extend_from_slice(&[1, 2, 3, 4, 5, 6]);
        assert_eq!(parse_type2(&block), Err(RsaError::Padding));
        // too short overall
        assert_eq!(parse_type2(&[0, 2, 0]), Err(RsaError::Padding));
    }

    #[test]
    fn type1_round_trip_and_rejects() {
        let digest = [0x5au8; 20];
        let block = pad_type1(&digest, 64).unwrap();
        assert_eq!(parse_type1(&block).unwrap(), digest);
        let mut bad = block.clone();
        bad[1] = 2;
        assert_eq!(parse_type1(&bad), Err(RsaError::Padding));
        let mut bad = block.clone();
        bad[10] = 0xfe; // break the FF run before 8 bytes
        assert!(parse_type1(&bad).is_err() || parse_type1(&bad).unwrap() != digest);
    }

    #[test]
    fn encrypt_decrypt_pkcs1() {
        let key = rsa512();
        let mut rng = SslRng::from_seed(b"ed");
        let msg = b"pre-master secret (48 bytes) 0123456789abcdef!!";
        let c = key.public_key().encrypt_pkcs1(msg, &mut rng).unwrap();
        assert_eq!(c.len(), 64);
        assert_eq!(key.decrypt_pkcs1(&c).unwrap(), msg);
    }

    #[test]
    fn decrypt_rejects_garbage() {
        let key = rsa512();
        let garbage = vec![0x17u8; 64];
        // Either out-of-range or padding failure, never a silent success.
        assert!(key.decrypt_pkcs1(&garbage).is_err());
    }

    #[test]
    fn sign_verify() {
        let key = rsa512();
        let msg = b"handshake transcript";
        for alg in [HashAlg::Md5, HashAlg::Sha1] {
            let sig = key.sign_pkcs1(alg, msg).unwrap();
            key.public_key().verify_pkcs1(alg, msg, &sig).unwrap();
            assert_eq!(
                key.public_key().verify_pkcs1(alg, b"other message", &sig),
                Err(RsaError::BadSignature)
            );
            let mut bad_sig = sig.clone();
            bad_sig[0] ^= 1;
            assert_eq!(
                key.public_key().verify_pkcs1(alg, msg, &bad_sig),
                Err(RsaError::BadSignature)
            );
        }
    }

    #[test]
    fn ciphertexts_are_randomized() {
        let key = rsa512();
        let mut rng = SslRng::from_seed(b"random-ct");
        let c1 = key.public_key().encrypt_pkcs1(b"msg", &mut rng).unwrap();
        let c2 = key.public_key().encrypt_pkcs1(b"msg", &mut rng).unwrap();
        assert_ne!(c1, c2);
    }
}
