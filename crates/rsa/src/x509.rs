//! A miniature certificate format standing in for X.509.
//!
//! The paper's handshake step 3 charges 232 kcycles to "X509 functions"
//! (encoding and handling the server certificate). Real X.509/ASN.1 is far
//! outside the paper's scope, so this module defines a small TLV-encoded
//! certificate carrying the same cryptographic work: serialize subject,
//! validity and public key, hash the body, and sign it with the issuer's
//! RSA key.

use crate::{RsaError, RsaPrivateKey, RsaPublicKey};
use sslperf_bignum::Bn;
use sslperf_hashes::HashAlg;
use sslperf_profile::counters;

/// A simplistic TLV certificate: subject, issuer, validity window, RSA
/// public key and an RSA/SHA-1 signature by the issuer.
///
/// # Examples
///
/// ```
/// use sslperf_rng::SslRng;
/// use sslperf_rsa::{x509::Certificate, RsaPrivateKey};
///
/// let mut rng = SslRng::from_seed(b"cert-doc");
/// let key = RsaPrivateKey::generate(512, &mut rng)?;
/// let cert = Certificate::self_signed("srv.example", &key, 2005, 2006)?;
/// cert.verify(key.public_key())?;
/// let wire = cert.to_bytes();
/// let parsed = Certificate::from_bytes(&wire)?;
/// assert_eq!(parsed.subject(), "srv.example");
/// # Ok::<(), sslperf_rsa::RsaError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Certificate {
    subject: String,
    issuer: String,
    not_before: u32,
    not_after: u32,
    modulus: Vec<u8>,
    exponent: Vec<u8>,
    signature: Vec<u8>,
}

fn push_tlv(out: &mut Vec<u8>, tag: u8, value: &[u8]) {
    out.push(tag);
    out.extend_from_slice(&(value.len() as u32).to_be_bytes());
    out.extend_from_slice(value);
}

fn read_tlv<'a>(input: &mut &'a [u8], expect_tag: u8) -> Result<&'a [u8], RsaError> {
    if input.len() < 5 || input[0] != expect_tag {
        return Err(RsaError::Padding);
    }
    let len = u32::from_be_bytes(input[1..5].try_into().expect("4 bytes")) as usize;
    if input.len() < 5 + len {
        return Err(RsaError::Padding);
    }
    let value = &input[5..5 + len];
    *input = &input[5 + len..];
    Ok(value)
}

const TAG_SUBJECT: u8 = 1;
const TAG_ISSUER: u8 = 2;
const TAG_VALIDITY: u8 = 3;
const TAG_MODULUS: u8 = 4;
const TAG_EXPONENT: u8 = 5;
const TAG_SIGNATURE: u8 = 6;

impl Certificate {
    /// Issues a certificate for `subject_key` signed by `issuer_key`.
    ///
    /// # Errors
    ///
    /// Propagates RSA signing errors.
    pub fn issue(
        subject: &str,
        subject_key: &RsaPublicKey,
        issuer: &str,
        issuer_key: &RsaPrivateKey,
        not_before: u32,
        not_after: u32,
    ) -> Result<Self, RsaError> {
        counters::count("x509_encode", 1);
        let mut cert = Certificate {
            subject: subject.to_owned(),
            issuer: issuer.to_owned(),
            not_before,
            not_after,
            modulus: subject_key.modulus().to_bytes_be(),
            exponent: subject_key.exponent().to_bytes_be(),
            signature: Vec::new(),
        };
        cert.signature = issuer_key.sign_pkcs1(HashAlg::Sha1, &cert.tbs_bytes())?;
        Ok(cert)
    }

    /// Issues a self-signed certificate (subject == issuer), the common case
    /// for the paper's single-server measurements.
    ///
    /// # Errors
    ///
    /// Propagates RSA signing errors.
    pub fn self_signed(
        name: &str,
        key: &RsaPrivateKey,
        not_before: u32,
        not_after: u32,
    ) -> Result<Self, RsaError> {
        Certificate::issue(name, key.public_key(), name, key, not_before, not_after)
    }

    /// The certified subject name.
    #[must_use]
    pub fn subject(&self) -> &str {
        &self.subject
    }

    /// The issuer name.
    #[must_use]
    pub fn issuer(&self) -> &str {
        &self.issuer
    }

    /// The certified RSA public key.
    ///
    /// # Errors
    ///
    /// Returns [`RsaError::KeyGeneration`] if the embedded modulus is
    /// degenerate (even or trivial).
    pub fn public_key(&self) -> Result<RsaPublicKey, RsaError> {
        RsaPublicKey::from_parts(
            Bn::from_bytes_be(&self.modulus),
            Bn::from_bytes_be(&self.exponent),
        )
    }

    /// The to-be-signed body (everything except the signature).
    fn tbs_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        push_tlv(&mut out, TAG_SUBJECT, self.subject.as_bytes());
        push_tlv(&mut out, TAG_ISSUER, self.issuer.as_bytes());
        let mut validity = [0u8; 8];
        validity[..4].copy_from_slice(&self.not_before.to_be_bytes());
        validity[4..].copy_from_slice(&self.not_after.to_be_bytes());
        push_tlv(&mut out, TAG_VALIDITY, &validity);
        push_tlv(&mut out, TAG_MODULUS, &self.modulus);
        push_tlv(&mut out, TAG_EXPONENT, &self.exponent);
        out
    }

    /// Serializes the certificate for the wire.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        counters::count("x509_encode", 1);
        let mut out = self.tbs_bytes();
        push_tlv(&mut out, TAG_SIGNATURE, &self.signature);
        out
    }

    /// Parses a certificate from its wire form.
    ///
    /// # Errors
    ///
    /// Returns [`RsaError::Padding`] on any structural error.
    pub fn from_bytes(mut input: &[u8]) -> Result<Self, RsaError> {
        counters::count("x509_decode", 1);
        let subject = String::from_utf8(read_tlv(&mut input, TAG_SUBJECT)?.to_vec())
            .map_err(|_| RsaError::Padding)?;
        let issuer = String::from_utf8(read_tlv(&mut input, TAG_ISSUER)?.to_vec())
            .map_err(|_| RsaError::Padding)?;
        let validity = read_tlv(&mut input, TAG_VALIDITY)?;
        if validity.len() != 8 {
            return Err(RsaError::Padding);
        }
        let not_before = u32::from_be_bytes(validity[..4].try_into().expect("4 bytes"));
        let not_after = u32::from_be_bytes(validity[4..].try_into().expect("4 bytes"));
        let modulus = read_tlv(&mut input, TAG_MODULUS)?.to_vec();
        let exponent = read_tlv(&mut input, TAG_EXPONENT)?.to_vec();
        let signature = read_tlv(&mut input, TAG_SIGNATURE)?.to_vec();
        if !input.is_empty() {
            return Err(RsaError::Padding);
        }
        Ok(Certificate { subject, issuer, not_before, not_after, modulus, exponent, signature })
    }

    /// Verifies the issuer's signature over the certificate body.
    ///
    /// # Errors
    ///
    /// Returns [`RsaError::BadSignature`] on mismatch.
    pub fn verify(&self, issuer_key: &RsaPublicKey) -> Result<(), RsaError> {
        counters::count("x509_verify", 1);
        issuer_key.verify_pkcs1(HashAlg::Sha1, &self.tbs_bytes(), &self.signature)
    }

    /// Checks the validity window against a year stamp.
    #[must_use]
    pub fn valid_at(&self, year: u32) -> bool {
        (self.not_before..=self.not_after).contains(&year)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_keys::rsa512;
    use sslperf_rng::SslRng;

    #[test]
    fn self_signed_round_trip() {
        let key = rsa512();
        let cert = Certificate::self_signed("server.test", key, 2004, 2006).unwrap();
        cert.verify(key.public_key()).unwrap();
        let wire = cert.to_bytes();
        let parsed = Certificate::from_bytes(&wire).unwrap();
        assert_eq!(parsed, cert);
        parsed.verify(key.public_key()).unwrap();
        assert!(parsed.valid_at(2005));
        assert!(!parsed.valid_at(2007));
    }

    #[test]
    fn issued_by_separate_ca() {
        let ca = rsa512();
        let mut rng = SslRng::from_seed(b"leaf");
        let leaf = crate::RsaPrivateKey::generate(256, &mut rng).unwrap();
        let cert =
            Certificate::issue("leaf.test", leaf.public_key(), "ca.test", ca, 2004, 2006).unwrap();
        cert.verify(ca.public_key()).unwrap();
        // The embedded key is the leaf's, not the CA's.
        assert_eq!(cert.public_key().unwrap().modulus(), leaf.modulus());
        // Verifying against the wrong key fails.
        assert_eq!(cert.verify(leaf.public_key()), Err(RsaError::BadSignature));
    }

    #[test]
    fn tampered_certificate_fails() {
        let key = rsa512();
        let cert = Certificate::self_signed("honest", key, 2004, 2006).unwrap();
        let mut wire = cert.to_bytes();
        // Flip a subject byte.
        wire[5] ^= 0x20;
        let parsed = Certificate::from_bytes(&wire).unwrap();
        assert_eq!(parsed.verify(key.public_key()), Err(RsaError::BadSignature));
    }

    #[test]
    fn truncated_wire_rejected() {
        let key = rsa512();
        let wire = Certificate::self_signed("x", key, 2004, 2006).unwrap().to_bytes();
        for cut in [0usize, 3, 10, wire.len() - 1] {
            assert!(Certificate::from_bytes(&wire[..cut]).is_err(), "cut {cut}");
        }
        // Trailing junk also rejected.
        let mut extended = wire.clone();
        extended.push(0);
        assert!(Certificate::from_bytes(&extended).is_err());
    }
}
