//! RSA as used by SSL v3, mirroring OpenSSL 0.9.7's structure.
//!
//! The paper partitions RSA decryption into six steps (Table 7): *Init*,
//! *data→bn*, *blinding*, *computation*, *bn→data* and *block parsing* —
//! and shows the computation (CRT Montgomery exponentiation) at 97–99%.
//! This crate implements that exact pipeline:
//!
//! * [`RsaPrivateKey::generate`] — Miller–Rabin prime generation, e = 65537,
//!   CRT parameters, cached Montgomery contexts.
//! * [`RsaPrivateKey::raw_decrypt`] — CRT exponentiation
//!   (`m₁ = c^dP mod p`, `m₂ = c^dQ mod q`, Garner recombination), with a
//!   non-CRT variant for the ablation bench.
//! * [`Blinding`] — Kocher-style timing-attack blinding (the paper's step 3,
//!   citing Brumley & Boneh).
//! * [`pkcs1`] — PKCS #1 v1.5 block formats (the paper's step 6 parses
//!   these).
//! * [`RsaPrivateKey::decrypt_instrumented`] — the six-step pipeline with a
//!   per-step [`PhaseSet`], feeding the Table 7 experiment.
//! * [`x509`] — a miniature certificate (issue/verify), standing in for the
//!   "X509 functions" the paper charges to handshake step 3.
//!
//! # Examples
//!
//! ```
//! use sslperf_rng::SslRng;
//! use sslperf_rsa::RsaPrivateKey;
//!
//! let mut rng = SslRng::from_seed(b"doc-example");
//! let key = RsaPrivateKey::generate(512, &mut rng)?;
//! let secret = b"48-byte pre-master secret simulated here!!!!!!!";
//! let cipher = key.public_key().encrypt_pkcs1(secret, &mut rng)?;
//! assert_eq!(key.decrypt_pkcs1(&cipher)?, secret);
//! # Ok::<(), sslperf_rsa::RsaError>(())
//! ```
//!
//! # Security
//!
//! Performance-study code: no constant-time guarantees, PKCS#1 v1.5 padding
//! oracle not mitigated. Never use for real secrets.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod blinding;
mod decrypt;
mod keys;
pub mod pkcs1;
pub mod x509;

pub use batch::BatchCipher;
pub use blinding::Blinding;
pub use decrypt::STEP_NAMES;
pub use keys::{RsaPrivateKey, RsaPublicKey};
// `RsaPrivateKey::set_limb_width` takes this; re-export so callers of the
// key API don't need a direct bignum dependency.
pub use sslperf_bignum::LimbWidth;
pub use sslperf_profile::PhaseSet;

use std::fmt;

/// Errors from RSA operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RsaError {
    /// Message too long for the modulus under the required padding.
    MessageTooLong,
    /// Ciphertext is not smaller than the modulus.
    CiphertextOutOfRange,
    /// PKCS #1 block parsing failed (bad type byte, missing separator or
    /// short padding).
    Padding,
    /// Signature did not verify.
    BadSignature,
    /// Key generation failed to produce usable parameters.
    KeyGeneration,
    /// Requested key size is too small to hold any padded message.
    KeyTooSmall,
    /// A batch decrypt could not combine this job with its siblings
    /// (exponents not pairwise coprime / not invertible, or a combined
    /// value had no modular inverse).
    BatchCombine,
}

impl fmt::Display for RsaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let msg = match self {
            RsaError::MessageTooLong => "message too long for modulus",
            RsaError::CiphertextOutOfRange => "ciphertext out of range",
            RsaError::Padding => "invalid PKCS#1 padding",
            RsaError::BadSignature => "signature verification failed",
            RsaError::KeyGeneration => "key generation failed",
            RsaError::KeyTooSmall => "modulus too small",
            RsaError::BatchCombine => "batch decrypt could not combine the jobs",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for RsaError {}

#[cfg(test)]
pub(crate) mod test_keys {
    //! Shared deterministic test keys (generation is the slow part of the
    //! test suite, so each size is generated once).

    use crate::RsaPrivateKey;
    use sslperf_rng::SslRng;
    use std::sync::OnceLock;

    pub fn rsa512() -> &'static RsaPrivateKey {
        static KEY: OnceLock<RsaPrivateKey> = OnceLock::new();
        KEY.get_or_init(|| {
            let mut rng = SslRng::from_seed(b"test-key-512");
            RsaPrivateKey::generate(512, &mut rng).expect("keygen")
        })
    }

    pub fn rsa1024() -> &'static RsaPrivateKey {
        static KEY: OnceLock<RsaPrivateKey> = OnceLock::new();
        KEY.get_or_init(|| {
            let mut rng = SslRng::from_seed(b"test-key-1024");
            RsaPrivateKey::generate(1024, &mut rng).expect("keygen")
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert_eq!(RsaError::Padding.to_string(), "invalid PKCS#1 padding");
        assert_eq!(RsaError::MessageTooLong.to_string(), "message too long for modulus");
    }
}
