//! RSA key types, generation and the raw modular-exponentiation operations.

use crate::{Blinding, RsaError};
use sslperf_bignum::{generate_prime, Bn, EntropySource, LimbWidth, MontCtx};
use sslperf_profile::counters;

/// An RSA public key `(N, e)`.
///
/// # Examples
///
/// ```
/// use sslperf_rng::SslRng;
/// use sslperf_rsa::RsaPrivateKey;
///
/// let mut rng = SslRng::from_seed(b"pub-key-doc");
/// let key = RsaPrivateKey::generate(512, &mut rng)?;
/// let public = key.public_key();
/// assert_eq!(public.modulus_bytes(), 64);
/// # Ok::<(), sslperf_rsa::RsaError>(())
/// ```
#[derive(Debug, Clone)]
pub struct RsaPublicKey {
    n: Bn,
    e: Bn,
    pub(crate) mont_n: MontCtx,
}

impl RsaPublicKey {
    pub(crate) fn from_parts(n: Bn, e: Bn) -> Result<Self, RsaError> {
        let mont_n = MontCtx::new(&n).map_err(|_| RsaError::KeyGeneration)?;
        Ok(RsaPublicKey { n, e, mont_n })
    }

    /// The modulus `N`.
    #[must_use]
    pub fn modulus(&self) -> &Bn {
        &self.n
    }

    /// The public exponent `e`.
    #[must_use]
    pub fn exponent(&self) -> &Bn {
        &self.e
    }

    /// Modulus length in whole bytes (the PKCS #1 block length `k`).
    #[must_use]
    pub fn modulus_bytes(&self) -> usize {
        self.n.bit_len().div_ceil(8)
    }

    /// The raw public operation `m^e mod N`.
    ///
    /// # Errors
    ///
    /// Returns [`RsaError::CiphertextOutOfRange`] if `m >= N`.
    pub fn raw_encrypt(&self, m: &Bn) -> Result<Bn, RsaError> {
        if m >= &self.n {
            return Err(RsaError::CiphertextOutOfRange);
        }
        counters::count("rsa_public_op", 1);
        Ok(self.mont_n.mod_exp(m, &self.e))
    }
}

/// An RSA private key with CRT parameters, cached Montgomery contexts and
/// a cached blinding state (like OpenSSL's `RSA->blinding`, set up once per
/// key rather than per operation).
#[derive(Debug)]
pub struct RsaPrivateKey {
    pub(crate) public: RsaPublicKey,
    pub(crate) d: Bn,
    pub(crate) p: Bn,
    pub(crate) q: Bn,
    /// `d mod (p-1)`.
    pub(crate) dp: Bn,
    /// `d mod (q-1)`.
    pub(crate) dq: Bn,
    /// `q⁻¹ mod p` (Garner's coefficient).
    pub(crate) qinv: Bn,
    pub(crate) mont_p: MontCtx,
    pub(crate) mont_q: MontCtx,
    pub(crate) blinding: std::sync::Mutex<Option<Blinding>>,
}

impl Clone for RsaPrivateKey {
    fn clone(&self) -> Self {
        RsaPrivateKey {
            public: self.public.clone(),
            d: self.d.clone(),
            p: self.p.clone(),
            q: self.q.clone(),
            dp: self.dp.clone(),
            dq: self.dq.clone(),
            qinv: self.qinv.clone(),
            mont_p: self.mont_p.clone(),
            mont_q: self.mont_q.clone(),
            // The blinding cache is per-instance state, re-created lazily.
            blinding: std::sync::Mutex::new(None),
        }
    }
}

impl RsaPrivateKey {
    /// Generates a key with a modulus of exactly `bits` bits and `e = 65537`.
    ///
    /// Deterministic given the RNG seed, which keeps the experiments
    /// reproducible.
    ///
    /// # Errors
    ///
    /// Returns [`RsaError::KeyGeneration`] if parameter construction fails
    /// (retries internally on the common `gcd(e, φ) ≠ 1` case).
    ///
    /// # Panics
    ///
    /// Panics if `bits < 32` (too small even for toy keys).
    pub fn generate<R: EntropySource>(bits: usize, rng: &mut R) -> Result<Self, RsaError> {
        assert!(bits >= 32, "key must be at least 32 bits");
        let e = Bn::from_u64(65537);
        for _attempt in 0..64 {
            let p = generate_prime(bits - bits / 2, rng);
            let q = generate_prime(bits / 2, rng);
            if p == q {
                continue;
            }
            let (p, q) = if p > q { (p, q) } else { (q, p) };
            let n = p.mul(&q);
            if n.bit_len() != bits {
                continue;
            }
            let p1 = p.sub(&Bn::one());
            let q1 = q.sub(&Bn::one());
            let phi = p1.mul(&q1);
            if !e.gcd(&phi).is_one() {
                continue;
            }
            let d = e.mod_inverse(&phi).map_err(|_| RsaError::KeyGeneration)?;
            let dp = d.mod_op(&p1);
            let dq = d.mod_op(&q1);
            let qinv = q.mod_inverse(&p).map_err(|_| RsaError::KeyGeneration)?;
            let mont_p = MontCtx::new(&p).map_err(|_| RsaError::KeyGeneration)?;
            let mont_q = MontCtx::new(&q).map_err(|_| RsaError::KeyGeneration)?;
            let public = RsaPublicKey::from_parts(n, e.clone())?;
            return Ok(RsaPrivateKey {
                public,
                d,
                p,
                q,
                dp,
                dq,
                qinv,
                mont_p,
                mont_q,
                blinding: std::sync::Mutex::new(None),
            });
        }
        Err(RsaError::KeyGeneration)
    }

    /// The public half of the key.
    #[must_use]
    pub fn public_key(&self) -> &RsaPublicKey {
        &self.public
    }

    /// The modulus `N`.
    #[must_use]
    pub fn modulus(&self) -> &Bn {
        &self.public.n
    }

    /// Modulus length in whole bytes.
    #[must_use]
    pub fn modulus_bytes(&self) -> usize {
        self.public.modulus_bytes()
    }

    /// The private exponent `d`.
    #[must_use]
    pub fn exponent(&self) -> &Bn {
        &self.d
    }

    /// The raw private operation `c^d mod N` using the Chinese Remainder
    /// Theorem — OpenSSL's `rsa_private_decryption`, the paper's
    /// *computation* step.
    ///
    /// # Errors
    ///
    /// Returns [`RsaError::CiphertextOutOfRange`] if `c >= N`.
    pub fn raw_decrypt(&self, c: &Bn) -> Result<Bn, RsaError> {
        if c >= &self.public.n {
            return Err(RsaError::CiphertextOutOfRange);
        }
        counters::count("rsa_private_op", 1);
        // m1 = c^dP mod p ; m2 = c^dQ mod q
        let m1 = self.mont_p.mod_exp(&c.mod_op(&self.p), &self.dp);
        let m2 = self.mont_q.mod_exp(&c.mod_op(&self.q), &self.dq);
        // h = qInv (m1 - m2) mod p ; m = m2 + h q
        let h = self.qinv.mod_mul(&m1.mod_sub(&m2, &self.p), &self.p);
        Ok(m2.add(&h.mul(&self.q)))
    }

    /// The raw private operation without CRT (`c^d mod N` directly), kept as
    /// the baseline for the CRT ablation bench (~4× slower).
    ///
    /// # Errors
    ///
    /// Returns [`RsaError::CiphertextOutOfRange`] if `c >= N`.
    pub fn raw_decrypt_no_crt(&self, c: &Bn) -> Result<Bn, RsaError> {
        if c >= &self.public.n {
            return Err(RsaError::CiphertextOutOfRange);
        }
        counters::count("rsa_private_op", 1);
        Ok(self.public.mont_n.mod_exp(c, &self.d))
    }

    /// Rebuilds every cached Montgomery context (`mod p`, `mod q`, `mod N`)
    /// on the given limb width, so all subsequent decryptions with this key
    /// run on that kernel family.
    ///
    /// Keys are born on [`sslperf_bignum::default_limb_width`]; this is the
    /// per-key override the differential tests, the flight pins and the
    /// kernel bench use to compare the paper-faithful u32 path against the
    /// raw-speed u64 path in one process. The cached blinding state is
    /// dropped and re-derived lazily.
    ///
    /// # Panics
    ///
    /// Never in practice: the moduli were accepted by `MontCtx` at key
    /// construction and do not change.
    pub fn set_limb_width(&mut self, limbs: LimbWidth) {
        self.mont_p = MontCtx::with_limb_width(&self.p, limbs).expect("p stays odd");
        self.mont_q = MontCtx::with_limb_width(&self.q, limbs).expect("q stays odd");
        self.public.mont_n = MontCtx::with_limb_width(&self.public.n, limbs).expect("n stays odd");
        *self.blinding.lock().expect("blinding lock poisoned") = None;
    }

    /// The limb width this key's Montgomery contexts run on.
    #[must_use]
    pub fn limb_width(&self) -> LimbWidth {
        self.mont_p.limb_width()
    }

    /// Creates a fresh blinding context for this key.
    ///
    /// # Errors
    ///
    /// Propagates [`RsaError::KeyGeneration`] if a blinding factor cannot be
    /// inverted (vanishingly rare; retried internally).
    pub fn new_blinding<R: EntropySource>(&self, rng: &mut R) -> Result<Blinding, RsaError> {
        Blinding::new(&self.public, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_keys::{rsa1024, rsa512};
    use sslperf_rng::SslRng;

    #[test]
    fn generated_key_shape() {
        let key = rsa512();
        assert_eq!(key.modulus().bit_len(), 512);
        assert_eq!(key.modulus_bytes(), 64);
        assert_eq!(key.public_key().exponent(), &Bn::from_u64(65537));
        assert!(key.p > key.q);
        assert_eq!(key.p.mul(&key.q), *key.modulus());
    }

    #[test]
    fn encrypt_decrypt_round_trip_raw() {
        let key = rsa512();
        for m in [0u64, 1, 42, 0xdead_beef] {
            let m = Bn::from_u64(m);
            let c = key.public_key().raw_encrypt(&m).unwrap();
            assert_eq!(key.raw_decrypt(&c).unwrap(), m);
        }
    }

    #[test]
    fn crt_equals_plain_exponentiation() {
        let key = rsa512();
        let mut rng = SslRng::from_seed(b"crt-check");
        for _ in 0..5 {
            let c = rng.next_bn_below(key.modulus());
            assert_eq!(key.raw_decrypt(&c).unwrap(), key.raw_decrypt_no_crt(&c).unwrap());
        }
    }

    #[test]
    fn euler_identity() {
        // (m^e)^d == m for random m — full RSA correctness.
        let key = rsa1024();
        let mut rng = SslRng::from_seed(b"euler");
        for _ in 0..3 {
            let m = rng.next_bn_below(key.modulus());
            let c = key.public_key().raw_encrypt(&m).unwrap();
            assert_eq!(key.raw_decrypt(&c).unwrap(), m);
        }
    }

    #[test]
    fn out_of_range_rejected() {
        let key = rsa512();
        let too_big = key.modulus().clone();
        assert_eq!(key.public_key().raw_encrypt(&too_big), Err(RsaError::CiphertextOutOfRange));
        assert_eq!(key.raw_decrypt(&too_big), Err(RsaError::CiphertextOutOfRange));
        assert_eq!(key.raw_decrypt_no_crt(&too_big), Err(RsaError::CiphertextOutOfRange));
    }

    #[test]
    fn determinism_of_generation() {
        let mut rng1 = SslRng::from_seed(b"same-seed");
        let mut rng2 = SslRng::from_seed(b"same-seed");
        let k1 = RsaPrivateKey::generate(256, &mut rng1).unwrap();
        let k2 = RsaPrivateKey::generate(256, &mut rng2).unwrap();
        assert_eq!(k1.modulus(), k2.modulus());
    }

    #[test]
    fn distinct_seeds_distinct_keys() {
        let mut rng1 = SslRng::from_seed(b"seed-one");
        let mut rng2 = SslRng::from_seed(b"seed-two");
        let k1 = RsaPrivateKey::generate(256, &mut rng1).unwrap();
        let k2 = RsaPrivateKey::generate(256, &mut rng2).unwrap();
        assert_ne!(k1.modulus(), k2.modulus());
    }

    #[test]
    fn counters_attribute_private_op() {
        let mut key = rsa512().clone();
        key.set_limb_width(LimbWidth::U32);
        let (_, snap) = counters::counted(|| {
            let _ = key.raw_decrypt(&Bn::from_u64(12345)).unwrap();
        });
        assert_eq!(snap.calls("rsa_private_op"), 1);
        assert!(snap.calls("bn_mul_add_words") > 100, "CRT exponentiation is word-kernel heavy");
        key.set_limb_width(LimbWidth::U64);
        let (_, snap) = counters::counted(|| {
            let _ = key.raw_decrypt(&Bn::from_u64(12345)).unwrap();
        });
        assert!(snap.calls("bn_mul_add_words64") > 50, "u64 CRT rides the 64-bit kernels");
    }

    #[test]
    fn limb_widths_decrypt_identically() {
        let base = rsa512();
        let mut k32 = base.clone();
        k32.set_limb_width(LimbWidth::U32);
        let mut k64 = base.clone();
        k64.set_limb_width(LimbWidth::U64);
        assert_eq!(k32.limb_width(), LimbWidth::U32);
        assert_eq!(k64.limb_width(), LimbWidth::U64);
        let mut rng = SslRng::from_seed(b"limb-diff");
        for _ in 0..4 {
            let c = rng.next_bn_below(base.modulus());
            assert_eq!(k32.raw_decrypt(&c).unwrap(), k64.raw_decrypt(&c).unwrap());
            assert_eq!(k32.raw_decrypt_no_crt(&c).unwrap(), k64.raw_decrypt_no_crt(&c).unwrap());
        }
    }
}
