//! Batched RSA decryption: several private-key operations per entry.
//!
//! Two regimes, picked per batch by [`RsaPrivateKey::decrypt_batch`]:
//!
//! * **Fiat combined exponentiation** (Fiat; Shacham & Boneh's batch RSA):
//!   when every job carries a distinct, pairwise-coprime public exponent
//!   over this key's modulus, the whole batch collapses into *one*
//!   full-size private exponentiation. Upward percolation combines the
//!   ciphertexts into `V = M^E` (`E = ∏ eᵢ`), one CRT exponentiation by
//!   `d_E = E⁻¹ mod φ(N)` recovers `M = ∏ mᵢ`, and downward percolation
//!   splits the product back into the individual plaintexts with only
//!   small-exponent work. This is the 2–2.5× regime the batch-RSA paper
//!   reports — but it *requires* distinct exponents.
//!
//! * **Shared-context interleaved fallback**: the serving path's jobs all
//!   use the key's own `e = 65537`, which Fiat batching cannot combine
//!   (the exponents are not coprime — they are equal). Those batches still
//!   amortize the per-job overheads: one blinding acquisition for the
//!   whole batch (a cache-miss blinding setup costs a modular inversion
//!   plus a full public exponentiation), one reusable
//!   [`MontScratch`](sslperf_bignum::MontScratch) for every Montgomery
//!   product (no steady-state allocation), and the CRT halves run
//!   *op-major* — every job's mod-`p` half, then every job's mod-`q` half
//!   — so each Montgomery context stays hot across the batch.
//!
//! Error isolation: one bad ciphertext (out of range, bad padding) fails
//! only its own slot; sibling jobs complete normally. Blinding still
//! cancels out of every plaintext, so batched results are byte-identical
//! to sequential ones.

use crate::{pkcs1, RsaError, RsaPrivateKey};
use sslperf_bignum::{Bn, EntropySource, MontScratch};
use sslperf_profile::counters;

/// One ciphertext in a batch, with an optional public-exponent override.
///
/// Jobs from the serving path use [`BatchCipher::new`] (the key's own
/// exponent, Fiat-ineligible). The Fiat regime needs ciphertexts produced
/// under distinct small exponents — [`BatchCipher::with_exponent`].
#[derive(Debug, Clone)]
pub struct BatchCipher {
    cipher: Vec<u8>,
    exponent: Option<u64>,
}

impl BatchCipher {
    /// A ciphertext under the key's own public exponent.
    #[must_use]
    pub fn new(cipher: Vec<u8>) -> Self {
        BatchCipher { cipher, exponent: None }
    }

    /// A ciphertext produced under `exponent` (instead of the key's own)
    /// over the same modulus — the Fiat-batching setup.
    #[must_use]
    pub fn with_exponent(cipher: Vec<u8>, exponent: u64) -> Self {
        BatchCipher { cipher, exponent: Some(exponent) }
    }

    /// The ciphertext bytes.
    #[must_use]
    pub fn cipher(&self) -> &[u8] {
        &self.cipher
    }

    /// The exponent override, if any.
    #[must_use]
    pub fn exponent(&self) -> Option<u64> {
        self.exponent
    }
}

fn gcd_u64(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let r = a % b;
        a = b;
        b = r;
    }
    a
}

impl RsaPrivateKey {
    /// Decrypts a batch of PKCS #1 ciphertexts, one result slot per item,
    /// in item order.
    ///
    /// Routes the batch to Fiat combined exponentiation when every item
    /// carries a distinct pairwise-coprime exponent override (one big
    /// exponentiation for the whole batch), and to the shared-context
    /// interleaved path otherwise — see the module docs. A failing item
    /// (out-of-range ciphertext, bad padding, uncombinable exponent)
    /// occupies only its own slot; siblings decrypt normally.
    ///
    /// `rng` seeds the blinding draw when the key's blinding cache is cold,
    /// exactly like [`RsaPrivateKey::decrypt_instrumented`]; blinding
    /// cancels out of the plaintexts, so batched output is byte-identical
    /// to sequential decryption.
    pub fn decrypt_batch<R: EntropySource>(
        &self,
        items: &[BatchCipher],
        rng: &mut R,
    ) -> Vec<Result<Vec<u8>, RsaError>> {
        if items.is_empty() {
            return Vec::new();
        }
        counters::count("rsa_batch", 1);
        if self.fiat_eligible(items) {
            self.decrypt_batch_fiat(items)
        } else {
            self.decrypt_batch_shared(items, rng)
        }
    }

    /// True when the whole batch can ride one Fiat tree: at least two
    /// items, every item overriding the exponent, exponents pairwise
    /// coprime and jointly invertible modulo `φ(N)`.
    fn fiat_eligible(&self, items: &[BatchCipher]) -> bool {
        if items.len() < 2 {
            return false;
        }
        let mut exps = Vec::with_capacity(items.len());
        for item in items {
            let Some(e) = item.exponent else { return false };
            if e < 2 {
                return false;
            }
            exps.push(e);
        }
        for (i, &a) in exps.iter().enumerate() {
            for &b in &exps[i + 1..] {
                if gcd_u64(a, b) != 1 {
                    return false;
                }
            }
        }
        let phi = self.phi();
        let mut product = Bn::one();
        for &e in &exps {
            product = product.mul(&Bn::from_u64(e));
        }
        product.gcd(&phi).is_one()
    }

    /// `φ(N) = (p-1)(q-1)`.
    fn phi(&self) -> Bn {
        self.p.sub(&Bn::one()).mul(&self.q.sub(&Bn::one()))
    }

    /// The serving-path regime: same exponent across the batch, so no
    /// combined exponentiation — amortize blinding, allocation, and cache
    /// locality instead.
    fn decrypt_batch_shared<R: EntropySource>(
        &self,
        items: &[BatchCipher],
        rng: &mut R,
    ) -> Vec<Result<Vec<u8>, RsaError>> {
        let own_e = self.public.exponent().to_u64();
        // One blinding acquisition for the whole batch (the contended
        // `guard.take()` happens once, and a cache miss pays the setup —
        // inversion plus public exponentiation — once, not per job).
        let cached = self.blinding.lock().unwrap_or_else(|e| e.into_inner()).take();
        let mut blinding = match cached {
            Some(b) => Ok(b),
            None => self.new_blinding(rng),
        };
        let mut scratch = MontScratch::new();

        // data→bn, range check, blind — per item. Items overriding the
        // exponent (a mixed, Fiat-ineligible batch) skip blinding: the
        // cached mask is `r^e` under the *key's* exponent and would not
        // cancel under a foreign one. They fall back per job below.
        enum Slot {
            Standard(Bn),
            Foreign(Bn, u64),
            Failed(RsaError),
        }
        let mut slots: Vec<Slot> = items
            .iter()
            .map(|item| {
                let c = Bn::from_bytes_be(&item.cipher);
                if &c >= self.modulus() {
                    return Slot::Failed(RsaError::CiphertextOutOfRange);
                }
                match item.exponent {
                    Some(e) if Some(e) != own_e => Slot::Foreign(c, e),
                    _ => match &blinding {
                        Ok(b) => Slot::Standard(b.blind(&c)),
                        Err(e) => Slot::Failed(*e),
                    },
                }
            })
            .collect();

        // Op-major interleaved CRT: every job's mod-p half first, then
        // every job's mod-q half — mont_p's modulus and window table stay
        // hot across the whole batch, and the shared scratch means no
        // steady-state allocation inside either loop.
        let mut p_halves: Vec<Option<Bn>> = slots
            .iter()
            .map(|slot| match slot {
                Slot::Standard(c) => {
                    Some(self.mont_p.mod_exp_scratch(&c.mod_op(&self.p), &self.dp, &mut scratch))
                }
                _ => None,
            })
            .collect();
        let q_halves: Vec<Option<Bn>> = slots
            .iter()
            .map(|slot| match slot {
                Slot::Standard(c) => {
                    Some(self.mont_q.mod_exp_scratch(&c.mod_op(&self.q), &self.dq, &mut scratch))
                }
                _ => None,
            })
            .collect();

        let results = slots
            .iter_mut()
            .enumerate()
            .map(|(i, slot)| match slot {
                Slot::Standard(_) => {
                    counters::count("rsa_private_op", 1);
                    let m1 = p_halves[i].take().expect("p-half computed");
                    let m2 = q_halves[i].as_ref().expect("q-half computed");
                    // Garner recombination, then unmask under the shared
                    // blinding factor (rotation happens once, below).
                    let h = self.qinv.mod_mul(&m1.mod_sub(m2, &self.p), &self.p);
                    let m_blinded = m2.add(&h.mul(&self.q));
                    let b = blinding.as_ref().expect("standard slot implies blinding");
                    self.finish_block(&b.unblind_shared(&m_blinded))
                }
                Slot::Foreign(c, e) => self
                    .raw_decrypt_with_exponent(c, *e, &mut scratch)
                    .and_then(|m| self.finish_block(&m)),
                Slot::Failed(e) => Err(*e),
            })
            .collect();

        // One rotation per batch keeps consecutive batches under distinct
        // masks; the rotated state goes back to the key's cache.
        if let Ok(b) = &mut blinding {
            b.rotate();
        }
        *self.blinding.lock().unwrap_or_else(|e| e.into_inner()) = blinding.ok();
        results
    }

    /// bn→data plus PKCS #1 block parsing — the per-item tail every
    /// regime shares.
    fn finish_block(&self, m: &Bn) -> Result<Vec<u8>, RsaError> {
        let block = m.to_bytes_be_padded(self.modulus_bytes());
        pkcs1::parse_type2(&block)
    }

    /// Per-job fallback for an exponent the batch could not combine: a
    /// fresh private exponent `dᵢ = eᵢ⁻¹ mod φ(N)` and a CRT
    /// exponentiation of its own.
    fn raw_decrypt_with_exponent(
        &self,
        c: &Bn,
        e: u64,
        scratch: &mut MontScratch,
    ) -> Result<Bn, RsaError> {
        counters::count("rsa_private_op", 1);
        let p1 = self.p.sub(&Bn::one());
        let q1 = self.q.sub(&Bn::one());
        let phi = p1.mul(&q1);
        let d = Bn::from_u64(e).mod_inverse(&phi).map_err(|_| RsaError::BatchCombine)?;
        let m1 = self.mont_p.mod_exp_scratch(&c.mod_op(&self.p), &d.mod_op(&p1), scratch);
        let m2 = self.mont_q.mod_exp_scratch(&c.mod_op(&self.q), &d.mod_op(&q1), scratch);
        let h = self.qinv.mod_mul(&m1.mod_sub(&m2, &self.p), &self.p);
        Ok(m2.add(&h.mul(&self.q)))
    }

    /// The Fiat regime: one CRT exponentiation for the whole batch.
    fn decrypt_batch_fiat(&self, items: &[BatchCipher]) -> Vec<Result<Vec<u8>, RsaError>> {
        counters::count("rsa_batch_fiat", 1);
        let n = self.modulus();
        let mut scratch = MontScratch::new();

        // Collect the valid leaves; a bad ciphertext fails alone and the
        // rest of the batch still combines.
        let mut results: Vec<Result<Vec<u8>, RsaError>> =
            vec![Err(RsaError::BatchCombine); items.len()];
        let mut leaves: Vec<Leaf> = Vec::with_capacity(items.len());
        for (i, item) in items.iter().enumerate() {
            let v = Bn::from_bytes_be(&item.cipher);
            if &v >= n {
                results[i] = Err(RsaError::CiphertextOutOfRange);
                continue;
            }
            let e = item.exponent.expect("fiat eligibility checked");
            leaves.push(Leaf { index: i, e: Bn::from_u64(e), v });
        }
        match leaves.len() {
            0 => return results,
            1 => {
                // A batch reduced to one survivor has nothing to combine.
                let leaf = &leaves[0];
                let e = leaf.e.to_u64().expect("leaf exponent fits u64");
                results[leaf.index] = self
                    .raw_decrypt_with_exponent(&leaf.v, e, &mut scratch)
                    .and_then(|m| self.finish_block(&m));
                return results;
            }
            _ => {}
        }

        // Upward percolation: combine to the root value V = M^E. The tree
        // keeps every internal node's (E, V) so the downward pass reuses
        // them instead of recombining subtrees.
        let tree = self.percolate_up(&leaves, &mut scratch);
        // One big exponentiation, CRT-accelerated: M = V^(E⁻¹ mod φ).
        let phi = self.phi();
        let Ok(d_e) = tree.e.mod_inverse(&phi) else {
            // Eligibility already checked gcd(E, φ) = 1; unreachable in
            // practice, but fail the batch rather than panic.
            return results;
        };
        counters::count("rsa_private_op", leaves.len() as u64);
        let p1 = self.p.sub(&Bn::one());
        let q1 = self.q.sub(&Bn::one());
        let m1 =
            self.mont_p.mod_exp_scratch(&tree.v.mod_op(&self.p), &d_e.mod_op(&p1), &mut scratch);
        let m2 =
            self.mont_q.mod_exp_scratch(&tree.v.mod_op(&self.q), &d_e.mod_op(&q1), &mut scratch);
        let h = self.qinv.mod_mul(&m1.mod_sub(&m2, &self.p), &self.p);
        let m_root = m2.add(&h.mul(&self.q));

        // Downward percolation: split M back into the leaf plaintexts.
        let mut plains = Vec::with_capacity(leaves.len());
        match self.percolate_down(&tree, m_root, &mut plains, &mut scratch) {
            Ok(()) => {
                for (leaf, m) in leaves.iter().zip(plains) {
                    results[leaf.index] = self.finish_block(&m);
                }
            }
            Err(e) => {
                for leaf in &leaves {
                    results[leaf.index] = Err(e);
                }
            }
        }
        results
    }

    /// Bottom-up pass of the Fiat tree over a slice of leaves: builds the
    /// node holding `E = ∏ eᵢ` and `V = ∏ vᵢ^(E/eᵢ) = M^E mod N`, keeping
    /// the children so the downward pass can reuse their `(E, V)` pairs.
    fn percolate_up(&self, leaves: &[Leaf], scratch: &mut MontScratch) -> FiatNode {
        if leaves.len() == 1 {
            return FiatNode { e: leaves[0].e.clone(), v: leaves[0].v.clone(), children: None };
        }
        let mont_n = &self.public.mont_n;
        let (a, b) = leaves.split_at(leaves.len() / 2);
        let left = self.percolate_up(a, scratch);
        let right = self.percolate_up(b, scratch);
        // V = v_A^{E_B} · v_B^{E_A} = (m_A·m_B)^{E_A·E_B}.
        let v = mont_n
            .mod_exp_scratch(&left.v, &right.e, scratch)
            .mod_mul(&mont_n.mod_exp_scratch(&right.v, &left.e, scratch), self.modulus());
        let e = left.e.mul(&right.e);
        FiatNode { e, v, children: Some(Box::new((left, right))) }
    }

    /// Top-down pass of the Fiat tree: splits a node's product plaintext
    /// `m = m_A · m_B mod N` into its two children, recursing to leaves.
    /// Plaintexts land in `out` in leaf order.
    fn percolate_down(
        &self,
        node: &FiatNode,
        m: Bn,
        out: &mut Vec<Bn>,
        scratch: &mut MontScratch,
    ) -> Result<(), RsaError> {
        let Some(children) = &node.children else {
            out.push(m);
            return Ok(());
        };
        let (left, right) = &**children;
        let n = self.modulus();
        let mont_n = &self.public.mont_n;
        // X ≡ 0 (mod E_A), X ≡ 1 (mod E_B): X = E_A · (E_A⁻¹ mod E_B).
        // Then u = m^X = v_A^s · v_B^t · m_B with s = X/E_A, t = (X-1)/E_B,
        // so m_B = u·known⁻¹ and m_A = m·m_B⁻¹. A full-size mod_inverse
        // costs a quarter of the root CRT exponentiation, so the two
        // inversions are folded into one via Montgomery's simultaneous-
        // inversion trick: with P = known·u, known⁻¹ = P⁻¹·u and
        // u⁻¹ = P⁻¹·known, giving m_B = u²·P⁻¹ and m_A = m·known²·P⁻¹.
        let inv = left.e.mod_inverse(&right.e).map_err(|_| RsaError::BatchCombine)?;
        let x = left.e.mul(&inv);
        let s = inv;
        let (t, rem) = x.sub(&Bn::one()).div_rem(&right.e);
        debug_assert!(rem.is_zero(), "X ≡ 1 mod E_B by construction");
        let known = mont_n
            .mod_exp_scratch(&left.v, &s, scratch)
            .mod_mul(&mont_n.mod_exp_scratch(&right.v, &t, scratch), n);
        let u = mont_n.mod_exp_scratch(&m, &x, scratch);
        let p_inv = known.mod_mul(&u, n).mod_inverse(n).map_err(|_| RsaError::BatchCombine)?;
        let m_b = u.mod_mul(&u, n).mod_mul(&p_inv, n);
        let m_a = m.mod_mul(&known.mod_mul(&known, n), n).mod_mul(&p_inv, n);

        self.percolate_down(left, m_a, out, scratch)?;
        self.percolate_down(right, m_b, out, scratch)
    }
}

/// One Fiat leaf: the original slot index, its exponent, its ciphertext.
struct Leaf {
    index: usize,
    e: Bn,
    v: Bn,
}

/// An internal node of the Fiat combining tree: the subtree's exponent
/// product `E`, combined value `V = M^E`, and its children (leaves have
/// none). Built once on the way up, reused on the way down.
struct FiatNode {
    e: Bn,
    v: Bn,
    children: Option<Box<(FiatNode, FiatNode)>>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_keys::{rsa1024, rsa512};
    use sslperf_rng::SslRng;

    /// The first `count` odd primes that are invertible mod φ(N) for this
    /// key — distinct primes are pairwise coprime for free, but each must
    /// also avoid the factors of `p-1` and `q-1`.
    fn usable_exponents(key: &RsaPrivateKey, count: usize) -> Vec<u64> {
        const CANDIDATES: [u64; 16] = [3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59];
        let phi = key.phi();
        let picked: Vec<u64> = CANDIDATES
            .into_iter()
            .filter(|&e| Bn::from_u64(e).gcd(&phi).is_one())
            .take(count)
            .collect();
        assert_eq!(picked.len(), count, "test key admits too few coprime exponents");
        picked
    }

    fn pkcs1_cipher(key: &RsaPrivateKey, msg: &[u8], rng: &mut SslRng) -> Vec<u8> {
        key.public_key().encrypt_pkcs1(msg, rng).unwrap()
    }

    /// PKCS #1-pads `msg` and encrypts it under a small exponent `e`.
    fn fiat_cipher(key: &RsaPrivateKey, msg: &[u8], e: u64, rng: &mut SslRng) -> Vec<u8> {
        let k = key.modulus_bytes();
        let block = pkcs1::pad_type2(msg, k, rng).unwrap();
        let m = Bn::from_bytes_be(&block);
        let c = m.mod_exp(&Bn::from_u64(e), key.modulus());
        c.to_bytes_be_padded(k)
    }

    #[test]
    fn shared_batch_matches_sequential() {
        let key = rsa512();
        let mut rng = SslRng::from_seed(b"batch-shared");
        for size in 1..=8usize {
            let msgs: Vec<Vec<u8>> =
                (0..size).map(|i| format!("pre-master-{size}-{i}").into_bytes()).collect();
            let items: Vec<BatchCipher> =
                msgs.iter().map(|m| BatchCipher::new(pkcs1_cipher(key, m, &mut rng))).collect();
            let got = key.decrypt_batch(&items, &mut rng);
            for (i, (msg, result)) in msgs.iter().zip(&got).enumerate() {
                assert_eq!(result.as_ref().unwrap(), msg, "size {size} item {i}");
                assert_eq!(
                    result.as_ref().unwrap(),
                    &key.decrypt_pkcs1(items[i].cipher()).unwrap(),
                    "batched != sequential, size {size} item {i}"
                );
            }
        }
    }

    #[test]
    fn corrupt_item_fails_alone() {
        let key = rsa512();
        let mut rng = SslRng::from_seed(b"batch-corrupt");
        let good: Vec<Vec<u8>> = (0..3).map(|i| format!("ok-{i}").into_bytes()).collect();
        let mut items: Vec<BatchCipher> =
            good.iter().map(|m| BatchCipher::new(pkcs1_cipher(key, m, &mut rng))).collect();
        // Slot 1: a raw encryption of a small value — valid RSA, garbage
        // PKCS#1 padding.
        let raw = key.public_key().raw_encrypt(&Bn::from_u64(7)).unwrap();
        items.insert(1, BatchCipher::new(raw.to_bytes_be_padded(key.modulus_bytes())));
        // Slot 3: ciphertext >= N — rejected before the computation.
        items.insert(3, BatchCipher::new(key.modulus().to_bytes_be_padded(key.modulus_bytes())));
        let got = key.decrypt_batch(&items, &mut rng);
        assert_eq!(got[0].as_ref().unwrap(), &good[0]);
        assert_eq!(got[1], Err(RsaError::Padding));
        assert_eq!(got[2].as_ref().unwrap(), &good[1]);
        assert_eq!(got[3], Err(RsaError::CiphertextOutOfRange));
        assert_eq!(got[4].as_ref().unwrap(), &good[2]);
    }

    #[test]
    fn batch_leaves_connection_rng_untouched_by_cached_blinding() {
        // With a warm blinding cache the batch must not draw from the rng
        // at all — the byte-identical-flights invariant depends on it.
        let key = rsa512();
        let mut rng = SslRng::from_seed(b"batch-rng-warm");
        let cipher = pkcs1_cipher(key, b"warmup", &mut rng);
        // Warm the cache.
        let _ = key.decrypt_batch(&[BatchCipher::new(cipher.clone())], &mut rng);
        let mut a = SslRng::from_seed(b"probe");
        let mut b = SslRng::from_seed(b"probe");
        let _ = key.decrypt_batch(&[BatchCipher::new(cipher)], &mut a);
        assert_eq!(a.next_u64(), b.next_u64(), "warm-cache batch advanced the rng");
    }

    #[test]
    fn fiat_batch_matches_individual_decrypts() {
        let key = rsa1024();
        let mut rng = SslRng::from_seed(b"fiat");
        for size in 2..=8usize {
            let msgs: Vec<Vec<u8>> =
                (0..size).map(|i| format!("fiat-msg-{size}-{i}").into_bytes()).collect();
            let items: Vec<BatchCipher> = msgs
                .iter()
                .zip(usable_exponents(key, size))
                .map(|(m, e)| BatchCipher::with_exponent(fiat_cipher(key, m, e, &mut rng), e))
                .collect();
            let got = key.decrypt_batch(&items, &mut rng);
            for (i, (msg, result)) in msgs.iter().zip(&got).enumerate() {
                assert_eq!(result.as_ref().unwrap(), msg, "size {size} item {i}");
            }
        }
    }

    #[test]
    fn fiat_uses_one_big_exponentiation() {
        // The Fiat win: BN_mod_exp bits for the batch stay near one
        // full-size CRT decrypt instead of four. Pinned to u32 limbs so the
        // exponentiation work and the plain-domain tree glue land on the
        // same counter family and the ratio measures the algorithm, not
        // the kernel mix.
        let mut key = rsa1024().clone();
        key.set_limb_width(sslperf_bignum::LimbWidth::U32);
        let key = &key;
        let mut rng = SslRng::from_seed(b"fiat-count");
        let items: Vec<BatchCipher> = usable_exponents(key, 4)
            .into_iter()
            .map(|e| BatchCipher::with_exponent(fiat_cipher(key, b"x", e, &mut rng), e))
            .collect();
        let solo_items: Vec<BatchCipher> = items
            .iter()
            .map(|i| BatchCipher::with_exponent(i.cipher().to_vec(), i.exponent().unwrap()))
            .collect();
        let (_, fiat) = counters::counted(|| {
            let got = key.decrypt_batch(&items, &mut rng);
            assert!(got.iter().all(Result::is_ok));
        });
        let (_, solo) = counters::counted(|| {
            for item in &solo_items {
                // One at a time: ineligible for combining (len 1), so each
                // runs its own full-size exponentiation.
                let got = key.decrypt_batch(std::slice::from_ref(item), &mut rng);
                assert!(got[0].is_ok());
            }
        });
        let fiat_work = fiat.calls("bn_mul_add_words");
        let solo_work = solo.calls("bn_mul_add_words");
        assert!(
            fiat_work * 2 < solo_work,
            "fiat batch should at least halve the word work: {fiat_work} vs {solo_work}"
        );
    }

    #[test]
    fn fiat_corrupt_ciphertext_fails_alone() {
        let key = rsa1024();
        let mut rng = SslRng::from_seed(b"fiat-corrupt");
        let exps = usable_exponents(key, 3);
        let mut items: Vec<BatchCipher> = exps
            .iter()
            .enumerate()
            .map(|(i, &e)| {
                BatchCipher::with_exponent(
                    fiat_cipher(key, format!("m{i}").as_bytes(), e, &mut rng),
                    e,
                )
            })
            .collect();
        items[1] = BatchCipher::with_exponent(
            key.modulus().to_bytes_be_padded(key.modulus_bytes()),
            exps[1],
        );
        let got = key.decrypt_batch(&items, &mut rng);
        assert_eq!(got[0].as_ref().unwrap(), b"m0");
        assert_eq!(got[1], Err(RsaError::CiphertextOutOfRange));
        assert_eq!(got[2].as_ref().unwrap(), b"m2");
    }

    #[test]
    fn shared_exponents_are_not_fiat_eligible() {
        let key = rsa512();
        let e = usable_exponents(key, 3);
        // Equal exponents have gcd > 1 with each other.
        let items = vec![
            BatchCipher::with_exponent(vec![1], e[0]),
            BatchCipher::with_exponent(vec![2], e[0]),
        ];
        assert!(!key.fiat_eligible(&items));
        // Even one shared factor between composites breaks the whole batch.
        let items = vec![
            BatchCipher::with_exponent(vec![1], e[0] * e[1]),
            BatchCipher::with_exponent(vec![2], e[1] * e[2]),
        ];
        assert!(!key.fiat_eligible(&items));
        let items = vec![
            BatchCipher::with_exponent(vec![1], e[0]),
            BatchCipher::with_exponent(vec![2], e[1]),
        ];
        assert!(key.fiat_eligible(&items));
        // No override → the serving path → never eligible.
        let items = vec![BatchCipher::new(vec![1]), BatchCipher::new(vec![2])];
        assert!(!key.fiat_eligible(&items));
    }

    #[test]
    fn mixed_foreign_exponent_falls_back_per_job() {
        // A batch where exponents collide (gcd > 1) routes to the shared
        // path, which still decrypts the foreign-exponent jobs correctly
        // via their own private exponents.
        let key = rsa1024();
        let mut rng = SslRng::from_seed(b"mixed");
        let e = usable_exponents(key, 1)[0];
        // e and e² share a factor, so the batch is Fiat-ineligible and
        // routes to the shared path; e² is still invertible mod φ, so the
        // per-job fallback decrypts both correctly.
        let items = vec![
            BatchCipher::with_exponent(fiat_cipher(key, b"small", e, &mut rng), e),
            BatchCipher::with_exponent(fiat_cipher(key, b"square", e * e, &mut rng), e * e),
        ];
        let got = key.decrypt_batch(&items, &mut rng);
        assert_eq!(got[0].as_ref().unwrap(), b"small");
        assert_eq!(got[1].as_ref().unwrap(), b"square");
    }

    #[test]
    fn empty_batch_is_empty() {
        let key = rsa512();
        let mut rng = SslRng::from_seed(b"empty");
        assert!(key.decrypt_batch(&[], &mut rng).is_empty());
    }
}
